//go:build amd64

package vecf

// hasAVX2 gates the vector kernels. Detection follows the Intel
// manual's sequence: CPUID.1:ECX must report AVX and OSXSAVE, XGETBV
// must confirm the OS saves XMM+YMM state, and CPUID.7:EBX bit 5
// reports AVX2 itself. Baseline amd64 without AVX2 takes the generic
// kernels, which are bit-identical by the package contract.
var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if c&osxsave == 0 || c&avx == 0 {
		return false
	}
	if eax, _ := xgetbv(); eax&6 != 6 { // XMM and YMM state enabled
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0
}

func mulAccLanes(acc, x []float64, w []float64) {
	if hasAVX2 {
		mulAccLanes64AVX2(&acc[0], &x[0], &w[0], len(w))
		return
	}
	mulAccLanesGeneric(acc, x, w)
}

func gtMask64(x []float64, thr float64) uint64 {
	if hasAVX2 {
		return gtMask64AVX2(&x[0], thr)
	}
	return gtMask64Generic(x, thr)
}

func convWin4(x, w []float64, off []int64, rowMask uint64, thr float64, masks *[4]uint64) {
	if hasAVX2 {
		convWin4AVX2(&x[0], &w[0], &off[0], rowMask, thr, &masks[0])
		return
	}
	convWin4Generic(x, w, off, rowMask, thr, masks)
}

func addRowLanes(acc, row []float64, laneWord uint64) {
	if hasAVX2 {
		addRowLanesAVX2(&acc[0], &row[0], int64(len(row)), laneWord)
		return
	}
	addRowLanesGeneric(acc, row, laneWord)
}

// Implemented in vecf_amd64.s.

//go:noescape
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv() (eax, edx uint32)

//go:noescape
func mulAccLanes64AVX2(acc, x, w *float64, m int)

//go:noescape
func gtMask64AVX2(x *float64, thr float64) uint64

//go:noescape
func convWin4AVX2(x, w *float64, off *int64, rowMask uint64, thr float64, masks *uint64)

//go:noescape
func addRowLanesAVX2(acc, row *float64, m int64, laneWord uint64)
