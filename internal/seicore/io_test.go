package seicore

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"sei/internal/nn"
)

func TestDesignSaveLoadRoundTrip(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.CalibImages = 20
	design, err := BuildSEI(f.q, f.train, cfg, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := design.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDesign(bytes.NewReader(buf.Bytes()), 1)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded design must predict bit-identically: it carries the
	// programmed effective weights and calibrated thresholds, not a
	// rebuild recipe.
	sub := f.test.Subset(150)
	for i, img := range sub.Images {
		if a, b := design.Predict(img), loaded.Predict(img); a != b {
			t.Fatalf("image %d: saved design predicts %d, loaded %d", i, a, b)
		}
	}
	if len(loaded.CalibResults) != len(design.CalibResults) {
		t.Fatalf("calibration results lost: %d vs %d", len(loaded.CalibResults), len(design.CalibResults))
	}
	for stage, want := range design.CalibResults {
		got, ok := loaded.CalibResults[stage]
		if !ok || got.Gamma != want.Gamma || got.DigitalThreshold != want.DigitalThreshold {
			t.Fatalf("stage %d calibration %+v, want %+v", stage, got, want)
		}
	}
}

func TestDesignSaveLoadNoisyModelDeterministicEval(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	cfg.Layer.Model.ReadNoiseSigma = 0.03
	design, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := design.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDesign(bytes.NewReader(buf.Bytes()), 99)
	if err != nil {
		t.Fatal(err)
	}
	// Dataset evaluation re-seeds noise per chunk through CloneForEval,
	// so saved and loaded noisy designs agree bit-identically for every
	// worker count despite their different base seeds.
	sub := f.test.Subset(120)
	want := nn.ClassifierErrorRateWorkers(design, sub, 1)
	for _, workers := range []int{1, 4} {
		if got := nn.ClassifierErrorRateWorkers(loaded, sub, workers); got != want {
			t.Fatalf("workers=%d: loaded noisy design error %v, want %v", workers, got, want)
		}
	}
}

func TestDesignSaveLoadFile(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	design, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "designs", "net2.design")
	if err := design.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDesignFile(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Predict(f.test.Images[0]) != design.Predict(f.test.Images[0]) {
		t.Fatal("file round trip changed a prediction")
	}
	if _, err := LoadDesignFile(filepath.Join(t.TempDir(), "missing.design"), 1); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

func TestLoadDesignRejectsGarbage(t *testing.T) {
	if _, err := LoadDesign(bytes.NewReader([]byte("not a gob stream")), 1); err == nil {
		t.Fatal("garbage accepted as a design")
	}
	// A valid gob of the wrong version must be rejected too.
	var buf bytes.Buffer
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	design, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	if err := design.Save(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadDesign(bytes.NewReader(truncated), 1); err == nil {
		t.Fatal("truncated design accepted")
	}
}
