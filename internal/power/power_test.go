package power

import (
	"math"
	"testing"
)

func TestDefaultLibraryValid(t *testing.T) {
	if err := DefaultLibrary().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesNonPositive(t *testing.T) {
	l := DefaultLibrary()
	l.ADCEnergyPJ = 0
	if l.Validate() == nil {
		t.Fatal("accepted zero ADC energy")
	}
	l = DefaultLibrary()
	l.CellAreaUM2 = -1
	if l.Validate() == nil {
		t.Fatal("accepted negative cell area")
	}
}

func TestLibraryOrderings(t *testing.T) {
	// The relations the paper's argument depends on: an SA is orders of
	// magnitude cheaper than an ADC; a cell read is far cheaper than
	// any interface operation.
	l := DefaultLibrary()
	if l.SAEnergyPJ*100 > l.ADCEnergyPJ {
		t.Fatalf("SA (%g pJ) not ≪ ADC (%g pJ)", l.SAEnergyPJ, l.ADCEnergyPJ)
	}
	if l.SAAreaUM2*10 > l.ADCAreaUM2 {
		t.Fatalf("SA area (%g) not ≪ ADC area (%g)", l.SAAreaUM2, l.ADCAreaUM2)
	}
	if l.CellReadEnergyPJ*1000 > l.SAEnergyPJ {
		t.Fatalf("cell read (%g pJ) not ≪ SA (%g pJ)", l.CellReadEnergyPJ, l.SAEnergyPJ)
	}
}

func TestEnergyLinear(t *testing.T) {
	l := DefaultLibrary()
	c := Counts{ADCConversions: 10, DACConversions: 4, SAEvaluations: 100, CellReads: 1000}
	b := l.Energy(c)
	if b.ADC != 10*l.ADCEnergyPJ || b.DAC != 4*l.DACEnergyPJ {
		t.Fatalf("interface energy wrong: %+v", b)
	}
	if b.SA != 100*l.SAEnergyPJ || b.RRAM != 1000*l.CellReadEnergyPJ {
		t.Fatalf("SA/RRAM energy wrong: %+v", b)
	}
	c2 := c
	c2.ADCConversions *= 2
	c2.DACConversions *= 2
	c2.SAEvaluations *= 2
	c2.CellReads *= 2
	b2 := l.Energy(c2)
	if math.Abs(b2.Total()-2*b.Total()) > 1e-9 {
		t.Fatal("energy is not linear in counts")
	}
}

func TestAreaComputation(t *testing.T) {
	l := DefaultLibrary()
	v := Inventory{ADCs: 2, DACs: 3, SAs: 4, Cells: 1000, BufferBytes: 10}
	b := l.Area(v)
	want := 2*l.ADCAreaUM2 + 3*l.DACAreaUM2 + 4*l.SAAreaUM2 + 1000*l.CellAreaUM2 + 10*l.BufferAreaUM2PerByte
	if math.Abs(b.Total()-want) > 1e-9 {
		t.Fatalf("area total %v, want %v", b.Total(), want)
	}
}

func TestBreakdownAccounting(t *testing.T) {
	b := Breakdown{DAC: 10, ADC: 80, RRAM: 5, SA: 1, Digital: 2, Buffer: 1, Driver: 0.5, DRAM: 0.5}
	if math.Abs(b.Total()-100) > 1e-12 {
		t.Fatalf("Total = %v, want 100", b.Total())
	}
	if math.Abs(b.Other()-5) > 1e-12 {
		t.Fatalf("Other = %v, want 5", b.Other())
	}
	if math.Abs(b.InterfaceFraction()-0.9) > 1e-12 {
		t.Fatalf("InterfaceFraction = %v, want 0.9", b.InterfaceFraction())
	}
	var zero Breakdown
	if zero.InterfaceFraction() != 0 {
		t.Fatal("zero breakdown InterfaceFraction should be 0")
	}
}

func TestCountsAndInventoryAdd(t *testing.T) {
	a := Counts{ADCConversions: 1, Adds: 2, BufferBytes: 3}
	a.Add(Counts{ADCConversions: 10, Adds: 20, BufferBytes: 30, DRAMBytes: 5})
	if a.ADCConversions != 11 || a.Adds != 22 || a.BufferBytes != 33 || a.DRAMBytes != 5 {
		t.Fatalf("Counts.Add wrong: %+v", a)
	}
	v := Inventory{ADCs: 1, Cells: 2}
	v.Add(Inventory{ADCs: 3, Cells: 4, SAs: 5})
	if v.ADCs != 4 || v.Cells != 6 || v.SAs != 5 {
		t.Fatalf("Inventory.Add wrong: %+v", v)
	}
}

func TestBreakdownAdd(t *testing.T) {
	a := Breakdown{DAC: 1, ADC: 2}
	a.Add(Breakdown{DAC: 10, RRAM: 5, DRAM: 1})
	if a.DAC != 11 || a.ADC != 2 || a.RRAM != 5 || a.DRAM != 1 {
		t.Fatalf("Breakdown.Add wrong: %+v", a)
	}
}

func TestUnitConversions(t *testing.T) {
	b := Breakdown{ADC: 2.5e6} // 2.5e6 pJ = 2.5 µJ
	if math.Abs(MicroJoules(b)-2.5) > 1e-12 {
		t.Fatalf("MicroJoules = %v, want 2.5", MicroJoules(b))
	}
	a := Breakdown{ADC: 1e6} // 1e6 µm² = 1 mm²
	if math.Abs(SquareMM(a)-1) > 1e-12 {
		t.Fatalf("SquareMM = %v, want 1", SquareMM(a))
	}
}

func TestGOPsPerJoule(t *testing.T) {
	// 1000 ops at 1000 pJ = 1 op/pJ = 1e12 ops/J = 1000 GOPs/J.
	b := Breakdown{SA: 1000}
	if got := GOPsPerJoule(1000, b); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("GOPsPerJoule = %v, want 1000", got)
	}
	if GOPsPerJoule(100, Breakdown{}) != 0 {
		t.Fatal("zero-energy GOPs/J should be 0")
	}
}
