package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if x.Dims() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape: %v", x.Shape())
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	cases := [][]int{{}, {0}, {-1, 3}, {2, 0, 4}}
	for _, shape := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestFromSliceLengthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4, 5)
	want := map[[3]int]float64{}
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 30; n++ {
		i, j, k := rng.Intn(3), rng.Intn(4), rng.Intn(5)
		v := rng.NormFloat64()
		x.Set(v, i, j, k)
		want[[3]int{i, j, k}] = v
	}
	for idx, v := range want {
		if got := x.At(idx[0], idx[1], idx[2]); got != v {
			t.Fatalf("At(%v) = %v, want %v", idx, got, v)
		}
	}
}

func TestAtRowMajorLayout(t *testing.T) {
	x := FromSlice([]float64{0, 1, 2, 3, 4, 5}, 2, 3)
	if x.At(0, 2) != 2 || x.At(1, 0) != 3 || x.At(1, 2) != 5 {
		t.Fatalf("row-major layout violated: %v", x.Data())
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	x := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%v) did not panic", idx)
				}
			}()
			x.At(idx...)
		}()
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 1)
	if x.At(0, 1) != 99 {
		t.Fatal("Reshape did not share underlying data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape to mismatched size did not panic")
		}
	}()
	x.Reshape(4, 2)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Set(42, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone shares data with original")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	a.AddInPlace(b)
	if a.At(1, 1) != 44 {
		t.Fatalf("AddInPlace: got %v", a.Data())
	}
	a.SubInPlace(b)
	if a.At(0, 0) != 1 {
		t.Fatalf("SubInPlace: got %v", a.Data())
	}
	a.Scale(2)
	if a.At(0, 1) != 4 {
		t.Fatalf("Scale: got %v", a.Data())
	}
	a.AXPY(0.5, b)
	if a.At(0, 0) != 2+5 {
		t.Fatalf("AXPY: got %v", a.Data())
	}
}

func TestAddInPlaceShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	New(2, 2).AddInPlace(New(4))
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-1, 5, 2, 0}, 4)
	if x.Max() != 5 || x.Min() != -1 || x.Sum() != 6 || x.Mean() != 1.5 {
		t.Fatalf("reductions wrong: max=%v min=%v sum=%v mean=%v", x.Max(), x.Min(), x.Sum(), x.Mean())
	}
	if x.ArgMax() != 1 {
		t.Fatalf("ArgMax = %d, want 1", x.ArgMax())
	}
}

func TestArgMaxFirstOnTie(t *testing.T) {
	x := FromSlice([]float64{3, 7, 7, 1}, 4)
	if x.ArgMax() != 1 {
		t.Fatalf("ArgMax tie = %d, want 1", x.ArgMax())
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
	}, 2, 3)
	y := MatVec(a, []float64{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Fatalf("MatVec = %v, want [-2 -2]", y)
	}
}

func TestMatVecT(t *testing.T) {
	a := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
	}, 2, 3)
	y := MatVecT(a, []float64{1, -1})
	want := []float64{-3, -3, -3}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MatVecT = %v, want %v", y, want)
		}
	}
}

func TestMatVecTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := New(5, 9)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64()
	}
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := MatVecT(a, x)
	want := MatVec(Transpose2D(a), x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MatVecT mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestMatMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data()[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
}

func TestMatMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul dimension mismatch did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// Property: (A·B)·x == A·(B·x) for random matrices — checks MatMul and
// MatVec against each other.
func TestMatMulMatVecAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed) + rng.Int63n(1000)))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, b := New(m, k), New(k, n)
		for i := range a.Data() {
			a.Data()[i] = r.NormFloat64()
		}
		for i := range b.Data() {
			b.Data()[i] = r.NormFloat64()
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		left := MatVec(MatMul(a, b), x)
		right := MatVec(a, MatVec(b, x))
		for i := range left {
			if math.Abs(left[i]-right[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose2D(a)
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("transpose shape %v", at.Shape())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", at.Data())
	}
}

// Property: transpose is an involution.
func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(8), 1+r.Intn(8)
		a := New(m, n)
		for i := range a.Data() {
			a.Data()[i] = r.NormFloat64()
		}
		return EqualApprox(Transpose2D(Transpose2D(a)), a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualApprox(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1.0005, 2}, 2)
	if !EqualApprox(a, b, 1e-3) {
		t.Fatal("EqualApprox false for close tensors")
	}
	if EqualApprox(a, b, 1e-6) {
		t.Fatal("EqualApprox true beyond tolerance")
	}
	if EqualApprox(a, New(3), 1) {
		t.Fatal("EqualApprox true for different shapes")
	}
}
