package seicore

// Runtime activation bounds: input-dependent early termination for the
// binary SEI stages (the CompRRAE idea of PAPERS.md, arXiv 1906.03180,
// hosted on 1-bit activations where per-row max-contribution tables
// make the bound exact up to float rounding). For each crossbar block
// we precompute, at a fixed checkpoint stride over the block's local
// rows, the suffix sums of every column's positive weights (the
// largest contribution the remaining rows could still add), negative
// weights (the smallest), and absolute weights (the slack scale). The
// bounded row walk — per-image in fast.go, per-lane in sliced.go —
// evaluates the bound the first time it meets an active row at or past
// each checkpoint: a column whose partial sum plus the best remaining
// contribution cannot exceed the sense-amp reference emits 0 without
// scanning further; one whose partial plus the worst remaining
// contribution already exceeds it emits 1. Once every column of the
// block is decided the remaining active rows are never driven.
//
// Soundness under float rounding: the unbounded paths accumulate rows
// in ascending local order, so at any scan point the bounded walk's
// partial sum is bit-identical to the unbounded sum's prefix. Let k
// rows remain, let R be the exact remaining contribution of the active
// suffix rows (sufNeg ≤ R ≤ sufPos in exact arithmetic) and ŝ the
// float value the full scan would produce. Standard forward error
// analysis gives |ŝ − (partial + R)| ≤ γ_k·(|partial| + Σ|terms|) with
// γ_k = k·u/(1−k·u), u = 2⁻⁵³. The tables themselves are float sums
// and may under-report their exact values by another γ_n·Σ|w|. The
// per-checkpoint slack factor slackU = 4·u·(rows remaining) covers
// both error sources plus the rounding of the decision expression
// itself, so a bound decision can never contradict the full scan's
// `s > ref` compare: labels are bit-identical to the unbounded paths.
// The slack is kept out of the tables so they stay tight — with
// exactly representable weights sufPos equals the true maximum over
// every subset of the remaining rows (pinned by a property test).
//
// Decidability: the final checkpoint's suffix covers at most
// boundStride−1 unscanned rows, and when the walk exhausts a block's
// active rows the undecided columns fall through to the ordinary
// sense-amp compare on the (complete, bit-identical) column sums — so
// every column always resolves, bounds or not.
//
// Bounds apply only to blocks with a static sense-amp reference: a
// dynamic-threshold slope (Gamma ≠ 0) or a unipolar dynamic column
// (w0 ≠ nil) makes the reference depend on the not-yet-scanned rows.
// Those blocks keep full scans but still benefit from the cross-block
// digital-threshold skip in evalBoundedCounts: once every output
// column's fired count either reached DigitalThreshold or can no
// longer reach it, the layer's remaining blocks are skipped wholesale.

import (
	"math"
	"math/bits"

	"sei/internal/bitvec"
	"sei/internal/tensor"
	"sei/internal/vecf"
)

// boundStride is the checkpoint spacing in local rows. Smaller strides
// decide earlier but pay more bound evaluations; 8 keeps the digital
// side (2 compares per undecided column per checkpoint) well under the
// analog work it can save on the paper's 3×3-kernel stages.
const boundStride = 8

// boundSlackU is the per-remaining-row slack coefficient: 4·2⁻⁵³, twice
// the first-order γ coefficient of the accumulation error so table
// rounding and the decision expression's own rounding are covered too.
const boundSlackU = 4 * 0x1p-53

// boundMaxCols caps bounded layers at one machine word of columns: the
// undecided set travels as a uint64 mask. Every network in the repo is
// far under it (widest stage: 64 filters).
const boundMaxCols = 64

// colBounds is one block's precomputed suffix-bound table.
type colBounds struct {
	n, m, stride int
	// Checkpoint cp (0 ≤ cp < ncp, ncp = ceil(n/stride)) summarizes the
	// rows at local index ≥ cp·stride: sufPos[cp·m+c] is column c's
	// suffix sum of positive weights, sufNeg of negative weights,
	// sufAbs of absolute values.
	sufPos, sufNeg, sufAbs []float64
	// slackU[cp] = boundSlackU · (n − cp·stride), the float-safety slack
	// per unit of (|partial| + sufAbs).
	slackU []float64
}

// checkpoints returns the number of checkpoint rows for n rows at
// stride s.
func checkpoints(n, stride int) int { return (n + stride - 1) / stride }

// newColBounds builds the suffix table for one block's effective
// weight matrix. Returns nil when the block cannot be bounded (more
// columns than the undecided mask holds, or no rows).
func newColBounds(eff *tensor.Tensor) *colBounds {
	n, m := eff.Dim(0), eff.Dim(1)
	if n == 0 || m > boundMaxCols {
		return nil
	}
	ncp := checkpoints(n, boundStride)
	cb := &colBounds{
		n: n, m: m, stride: boundStride,
		sufPos: make([]float64, ncp*m),
		sufNeg: make([]float64, ncp*m),
		sufAbs: make([]float64, ncp*m),
		slackU: make([]float64, ncp),
	}
	pos := make([]float64, m)
	neg := make([]float64, m)
	abs := make([]float64, m)
	data := eff.Data()
	for r := n - 1; r >= 0; r-- {
		row := data[r*m : (r+1)*m]
		for c, v := range row {
			if v > 0 {
				pos[c] += v
			} else {
				neg[c] += v
			}
			abs[c] += math.Abs(v)
		}
		if r%boundStride == 0 {
			cp := r / boundStride
			copy(cb.sufPos[cp*m:(cp+1)*m], pos)
			copy(cb.sufNeg[cp*m:(cp+1)*m], neg)
			copy(cb.sufAbs[cp*m:(cp+1)*m], abs)
			cb.slackU[cp] = boundSlackU * float64(n-r)
		}
	}
	return cb
}

// valid reports whether a table (possibly restored from a snapshot)
// is structurally consistent with an n×m block.
func (cb *colBounds) valid(n, m int) bool {
	if cb == nil || cb.n != n || cb.m != m || cb.stride <= 0 {
		return false
	}
	ncp := checkpoints(n, cb.stride)
	return len(cb.sufPos) == ncp*m && len(cb.sufNeg) == ncp*m &&
		len(cb.sufAbs) == ncp*m && len(cb.slackU) == ncp
}

// boundState is one block's bounded-scan outcome.
type boundState struct {
	fired1    uint64 // columns decided 1 by the bound
	undecided uint64 // columns still needing the final SA compare
	ones      int    // active rows actually driven
	skipped   int    // active rows skipped after every column decided
	evals     int    // per-column bound evaluations performed
}

// colMask returns the m-column full mask (m ≤ 64).
func colMask(m int) uint64 {
	if m >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(m) - 1
}

// sumsBitsBounded is sumsBits with the bounded row walk: rows are
// visited in ascending local order exactly as sumsBits visits them, and
// before processing the first active row at or past each checkpoint the
// undecided columns are tested against the suffix bound. When every
// column has decided the remaining active rows are counted but not
// driven. Column sums for the rows actually processed land in main
// (len m, zeroed here) — for undecided columns they equal the full
// sumsBits values bit for bit, because the walk only ever stops once
// no compare depends on the sums. Only called for blocks with a static
// reference (w0 == nil) and a built table.
func (b *seiBlock) sumsBitsBounded(in *bitvec.Vec, main []float64, ref float64) boundState {
	for c := range main {
		main[c] = 0
	}
	m := len(main)
	cb := b.bnd
	st := boundState{undecided: colMask(m)}
	lastCp := -1
	data := b.eff.Data()
	if b.contig {
		lo := b.inputs[0]
		hi := lo + len(b.inputs)
		for j := in.NextSet(lo); j >= 0 && j < hi; j = in.NextSet(j + 1) {
			local := j - lo
			if cp := local / cb.stride; cp > lastCp {
				lastCp = cp
				st.evals += bits.OnesCount64(st.undecided)
				base := cp * m
				dec0, dec1 := vecf.BoundCols(main,
					cb.sufPos[base:base+m], cb.sufNeg[base:base+m], cb.sufAbs[base:base+m],
					cb.slackU[cp], ref, st.undecided)
				st.fired1 |= dec1
				st.undecided &^= dec0 | dec1
				if st.undecided == 0 {
					for ; j >= 0 && j < hi; j = in.NextSet(j + 1) {
						st.skipped++
					}
					return st
				}
			}
			st.ones++
			row := data[local*m : (local+1)*m]
			for c, v := range row {
				main[c] += v
			}
		}
		return st
	}
	for local, j := range b.inputs {
		if !in.Get(j) {
			continue
		}
		if cp := local / cb.stride; cp > lastCp {
			lastCp = cp
			st.evals += bits.OnesCount64(st.undecided)
			base := cp * m
			dec0, dec1 := vecf.BoundCols(main,
				cb.sufPos[base:base+m], cb.sufNeg[base:base+m], cb.sufAbs[base:base+m],
				cb.slackU[cp], ref, st.undecided)
			st.fired1 |= dec1
			st.undecided &^= dec0 | dec1
			if st.undecided == 0 {
				for _, jj := range b.inputs[local:] {
					if in.Get(jj) {
						st.skipped++
					}
				}
				return st
			}
		}
		st.ones++
		row := data[local*m : (local+1)*m]
		for c, v := range row {
			main[c] += v
		}
	}
	return st
}

// sumsBounded is the float-input twin of sumsBitsBounded for the
// approximate mode of the noisy float path (SEIConvLayer.Eval): the
// active rows arrive as a 0/1 float vector instead of a packed window.
// The bound is computed against the ideal (noise-free) sums, so under
// read noise a decision is approximate — that is the mode's explicit
// accuracy trade-off.
func (b *seiBlock) sumsBounded(in []float64, m int, ref float64) ([]float64, boundState) {
	main := make([]float64, m)
	cb := b.bnd
	st := boundState{undecided: colMask(m)}
	lastCp := -1
	data := b.eff.Data()
	for local, j := range b.inputs {
		if in[j] == 0 {
			continue
		}
		if cp := local / cb.stride; cp > lastCp {
			lastCp = cp
			st.evals += bits.OnesCount64(st.undecided)
			base := cp * m
			dec0, dec1 := vecf.BoundCols(main,
				cb.sufPos[base:base+m], cb.sufNeg[base:base+m], cb.sufAbs[base:base+m],
				cb.slackU[cp], ref, st.undecided)
			st.fired1 |= dec1
			st.undecided &^= dec0 | dec1
			if st.undecided == 0 {
				for _, jj := range b.inputs[local:] {
					if in[jj] != 0 {
						st.skipped++
					}
				}
				return main, st
			}
		}
		st.ones++
		row := data[local*m : (local+1)*m]
		for c, v := range row {
			main[c] += v
		}
	}
	return main, st
}

// countOnes counts the block's active rows without driving them — the
// skipped-row accounting for blocks the cross-block digital-threshold
// logic skips wholesale.
func (b *seiBlock) countOnes(in *bitvec.Vec) int {
	if b.contig {
		lo := b.inputs[0]
		hi := lo + len(b.inputs)
		n := 0
		for j := in.NextSet(lo); j >= 0 && j < hi; j = in.NextSet(j + 1) {
			n++
		}
		return n
	}
	n := 0
	for _, j := range b.inputs {
		if in.Get(j) {
			n++
		}
	}
	return n
}

// boundable reports whether the layer's columns fit the undecided mask;
// wider layers fall back to the unbounded scan even in bounded mode.
func (l *SEIConvLayer) boundable() bool { return l.M <= boundMaxCols }

// initBounds builds the suffix tables for every block that can use
// them (static dynamic-column-free blocks of mask-width layers) and
// validates any tables restored from a snapshot, rebuilding stale
// ones. Tables depend only on the programmed effective weights, so a
// rebuilt table is identical to a persisted one.
func (d *SEIDesign) initBounds() {
	for _, l := range d.Convs {
		if !l.boundable() {
			for bi := range l.blocks {
				l.blocks[bi].bnd = nil
			}
			continue
		}
		for bi := range l.blocks {
			b := &l.blocks[bi]
			if b.w0 != nil {
				b.bnd = nil
				continue
			}
			if !b.bnd.valid(len(b.inputs), l.M) {
				b.bnd = newColBounds(b.eff)
			}
		}
	}
}

// evalBoundedCounts is evalFastCounts with runtime activation bounds:
// statically-referenced blocks run the bounded row walk, every block
// participates in the cross-block digital-threshold skip, and the
// hardware counters record only the work actually performed (rows
// driven, sense-amp compares actually taken). Labels — the fired
// counts compared against DigitalThreshold by the caller — are
// bit-identical to evalFastCounts; counter totals shrink exactly where
// work was skipped, with the skipped work recorded on the sei_* skip
// counters instead.
func (l *SEIConvLayer) evalBoundedCounts(in *bitvec.Vec, fired []int, col []float64) {
	if !l.boundable() {
		l.evalFastCounts(in, fired, col)
		return
	}
	for c := range fired {
		fired[c] = 0
	}
	full := colMask(l.M)
	outUndec := full // output columns the digital threshold hasn't resolved
	var mvms, saCmps, driven, skipped, colsEarly, evals, blocksSkipped int64
	for bi := range l.blocks {
		b := &l.blocks[bi]
		if outUndec == 0 {
			// Every output is resolved: the remaining blocks' rows are
			// never driven.
			blocksSkipped++
			skipped += int64(b.countOnes(in))
			continue
		}
		if b.bnd != nil && l.Gamma == 0 {
			ref := l.BaseThr[bi]
			st := b.sumsBitsBounded(in, col, ref)
			l.hw.ActiveInputs(int64(st.ones))
			mvms++
			driven += int64(st.ones)
			skipped += int64(st.skipped)
			evals += int64(st.evals)
			colsEarly += int64(bits.OnesCount64(full &^ st.undecided))
			saCmps += int64(bits.OnesCount64(st.undecided))
			firedMask := st.fired1
			for t := st.undecided; t != 0; t &= t - 1 {
				c := bits.TrailingZeros64(t)
				if col[c] > ref {
					firedMask |= 1 << uint(c)
				}
			}
			for t := firedMask; t != 0; t &= t - 1 {
				fired[bits.TrailingZeros64(t)]++
			}
		} else {
			// Dynamic reference (Gamma slope or unipolar w0 column): the
			// reference depends on unscanned rows, so the block scans in
			// full — cross-block skipping still applies.
			w0sum, ones := b.sumsBits(in, col)
			l.hw.ActiveInputs(int64(ones))
			mvms++
			driven += int64(ones)
			saCmps += int64(l.M)
			ref := l.BaseThr[bi] + l.Gamma*(float64(ones)-l.OnesMean[bi]) + w0sum
			for c, s := range col {
				if s > ref {
					fired[c]++
				}
			}
		}
		if l.K > 1 {
			rem := l.K - 1 - bi
			undec := uint64(0)
			for t := outUndec; t != 0; t &= t - 1 {
				c := bits.TrailingZeros64(t)
				if fired[c] >= l.DigitalThreshold {
					continue // already fires whatever the remaining blocks do
				}
				if fired[c]+rem < l.DigitalThreshold {
					continue // can no longer reach the digital threshold
				}
				undec |= 1 << uint(c)
			}
			outUndec = undec
		}
	}
	if h := l.hw; h != nil {
		h.MVM(mvms)
		h.SACompares(saCmps)
		h.ColumnActivations(saCmps)
	}
	l.skip.Record(driven, skipped, colsEarly, evals, blocksSkipped)
}
