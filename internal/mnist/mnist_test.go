package mnist

import (
	"bytes"
	"compress/gzip"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"sei/internal/tensor"
)

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(20, 42)
	b := Synthetic(20, 42)
	if a.Len() != 20 {
		t.Fatalf("Len = %d, want 20", a.Len())
	}
	for i := range a.Images {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("labels diverge at %d", i)
		}
		if !tensor.EqualApprox(a.Images[i], b.Images[i], 0) {
			t.Fatalf("images diverge at %d", i)
		}
	}
}

func TestSyntheticSeedsDiffer(t *testing.T) {
	a := Synthetic(10, 1)
	b := Synthetic(10, 2)
	same := true
	for i := range a.Images {
		if !tensor.EqualApprox(a.Images[i], b.Images[i], 0) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestSyntheticValid(t *testing.T) {
	d := Synthetic(50, 3)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticClassBalance(t *testing.T) {
	d := Synthetic(200, 4)
	counts := d.ClassCounts()
	for c, n := range counts {
		if n != 20 {
			t.Fatalf("class %d has %d samples, want 20 (counts %v)", c, n, counts)
		}
	}
}

func TestSyntheticImagesHaveInk(t *testing.T) {
	d := Synthetic(40, 5)
	for i, img := range d.Images {
		frac := img.FractionAbove(0.5)
		if frac < 0.01 {
			t.Fatalf("image %d (label %d) nearly blank: %.4f ink fraction", i, d.Labels[i], frac)
		}
		if frac > 0.6 {
			t.Fatalf("image %d (label %d) nearly solid: %.4f ink fraction", i, d.Labels[i], frac)
		}
	}
}

// Different digits must be visually distinct on average, otherwise the
// classification task is degenerate. Compare undistorted-ish class
// means pairwise.
func TestSyntheticClassesDistinct(t *testing.T) {
	opt := DefaultGenOptions()
	opt.Rotate, opt.ScaleJit, opt.Shear, opt.Translate, opt.Jitter, opt.Noise = 0, 0, 0, 0, 0, 0
	d := SyntheticWithOptions(40, 9, opt)
	means := make([]*tensor.Tensor, NumClasses)
	counts := make([]int, NumClasses)
	for i, img := range d.Images {
		l := d.Labels[i]
		if means[l] == nil {
			means[l] = tensor.New(1, Side, Side)
		}
		means[l].AddInPlace(img)
		counts[l]++
	}
	for c := range means {
		if counts[c] == 0 {
			t.Fatalf("class %d unseen", c)
		}
		means[c].Scale(1 / float64(counts[c]))
	}
	for a := 0; a < NumClasses; a++ {
		for b := a + 1; b < NumClasses; b++ {
			if dist := tensor.L2Distance(means[a], means[b]); dist < 0.5 {
				t.Fatalf("digits %d and %d are nearly identical (L2 %.3f)", a, b, dist)
			}
		}
	}
}

func TestSyntheticSplitDisjointStreams(t *testing.T) {
	train, test := SyntheticSplit(30, 30, 7)
	if train.Len() != 30 || test.Len() != 30 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	// Same index, same label cycle position — but different streams, so
	// the images must differ.
	identical := 0
	for i := range train.Images {
		if tensor.EqualApprox(train.Images[i], test.Images[i], 0) {
			identical++
		}
	}
	if identical > 0 {
		t.Fatalf("%d train/test images identical; streams not independent", identical)
	}
}

func TestSubsetClamps(t *testing.T) {
	d := Synthetic(10, 1)
	if d.Subset(100).Len() != 10 {
		t.Fatal("Subset did not clamp")
	}
	if d.Subset(3).Len() != 3 {
		t.Fatal("Subset wrong length")
	}
}

func TestShuffleKeepsPairs(t *testing.T) {
	d := Synthetic(30, 8)
	type pair struct {
		sum   float64
		label int
	}
	before := map[pair]int{}
	for i, img := range d.Images {
		before[pair{img.Sum(), d.Labels[i]}]++
	}
	d.Shuffle(rand.New(rand.NewSource(1)))
	after := map[pair]int{}
	for i, img := range d.Images {
		after[pair{img.Sum(), d.Labels[i]}]++
	}
	if len(before) != len(after) {
		t.Fatal("shuffle changed the multiset of samples")
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatal("shuffle broke an image/label pairing")
		}
	}
}

func TestValidateCatchesBadLabel(t *testing.T) {
	d := Synthetic(5, 1)
	d.Labels[2] = 11
	if d.Validate() == nil {
		t.Fatal("Validate accepted out-of-range label")
	}
}

func TestValidateCatchesBadShape(t *testing.T) {
	d := Synthetic(5, 1)
	d.Images[0] = tensor.New(1, 5, 5)
	if d.Validate() == nil {
		t.Fatal("Validate accepted wrong image shape")
	}
}

func TestIDXRoundTrip(t *testing.T) {
	d := Synthetic(17, 6)
	var imgBuf, lblBuf bytes.Buffer
	if err := WriteIDX(d, &imgBuf, &lblBuf); err != nil {
		t.Fatal(err)
	}
	images, err := ReadIDXImages(&imgBuf)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := ReadIDXLabels(&lblBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(images) != 17 || len(labels) != 17 {
		t.Fatalf("round trip lengths %d/%d", len(images), len(labels))
	}
	for i := range images {
		if labels[i] != d.Labels[i] {
			t.Fatalf("label %d mismatch", i)
		}
		// 8-bit quantization error bound: half a level.
		if !tensor.EqualApprox(images[i], d.Images[i], 0.5/255+1e-9) {
			t.Fatalf("image %d drifted beyond quantization error", i)
		}
	}
}

func TestReadIDXRejectsBadMagic(t *testing.T) {
	if _, err := ReadIDXImages(bytes.NewReader(make([]byte, 16))); err == nil {
		t.Fatal("accepted zero magic for images")
	}
	if _, err := ReadIDXLabels(bytes.NewReader(make([]byte, 8))); err == nil {
		t.Fatal("accepted zero magic for labels")
	}
}

func TestReadIDXRejectsTruncated(t *testing.T) {
	d := Synthetic(3, 2)
	var imgBuf, lblBuf bytes.Buffer
	if err := WriteIDX(d, &imgBuf, &lblBuf); err != nil {
		t.Fatal(err)
	}
	trunc := imgBuf.Bytes()[:imgBuf.Len()-10]
	if _, err := ReadIDXImages(bytes.NewReader(trunc)); err == nil {
		t.Fatal("accepted truncated image stream")
	}
}

func TestLoadIDXDirMissing(t *testing.T) {
	if _, _, err := LoadIDXDir(t.TempDir()); err == nil {
		t.Fatal("LoadIDXDir succeeded on empty dir")
	}
}

// writeIDXFiles writes a dataset pair to dir under the standard MNIST
// names, optionally gzipped.
func writeIDXFiles(t *testing.T, dir, imgName, lblName string, d *Dataset, gzipped bool) {
	t.Helper()
	var imgBuf, lblBuf bytes.Buffer
	if err := WriteIDX(d, &imgBuf, &lblBuf); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		path := filepath.Join(dir, name)
		if gzipped {
			var z bytes.Buffer
			zw := gzip.NewWriter(&z)
			if _, err := zw.Write(data); err != nil {
				t.Fatal(err)
			}
			if err := zw.Close(); err != nil {
				t.Fatal(err)
			}
			data = z.Bytes()
			path += ".gz"
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(imgName, imgBuf.Bytes())
	write(lblName, lblBuf.Bytes())
}

func TestLoadIDXDirPlainAndGzip(t *testing.T) {
	for _, gzipped := range []bool{false, true} {
		dir := t.TempDir()
		train := Synthetic(12, 31)
		test := Synthetic(6, 32)
		writeIDXFiles(t, dir, "train-images-idx3-ubyte", "train-labels-idx1-ubyte", train, gzipped)
		writeIDXFiles(t, dir, "t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte", test, gzipped)
		gotTrain, gotTest, err := LoadIDXDir(dir)
		if err != nil {
			t.Fatalf("gzipped=%v: %v", gzipped, err)
		}
		if gotTrain.Len() != 12 || gotTest.Len() != 6 {
			t.Fatalf("gzipped=%v: sizes %d/%d", gzipped, gotTrain.Len(), gotTest.Len())
		}
		for i := range gotTrain.Labels {
			if gotTrain.Labels[i] != train.Labels[i] {
				t.Fatalf("gzipped=%v: label %d mismatch", gzipped, i)
			}
		}
		if err := gotTrain.Validate(); err != nil {
			t.Fatalf("gzipped=%v: %v", gzipped, err)
		}
	}
}

func TestLoadIDXDirCorruptGzip(t *testing.T) {
	dir := t.TempDir()
	// A .gz file that isn't gzip must fail cleanly.
	if err := os.WriteFile(filepath.Join(dir, "train-images-idx3-ubyte.gz"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "train-labels-idx1-ubyte"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadIDXDir(dir); err == nil {
		t.Fatal("accepted corrupt gzip")
	}
}

func TestLoadIDXDirMismatchedCounts(t *testing.T) {
	dir := t.TempDir()
	train := Synthetic(5, 1)
	labels := Synthetic(7, 2)
	var imgBuf, lblBuf, lblBuf2 bytes.Buffer
	if err := WriteIDX(train, &imgBuf, &lblBuf); err != nil {
		t.Fatal(err)
	}
	if err := WriteIDX(labels, &bytes.Buffer{}, &lblBuf2); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "train-images-idx3-ubyte"), imgBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "train-labels-idx1-ubyte"), lblBuf2.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadIDXDir(dir); err == nil {
		t.Fatal("accepted mismatched image/label counts")
	}
}

// Property: every rendered digit has finite pixel values in [0,1] for
// arbitrary seeds.
func TestSyntheticPixelRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		d := Synthetic(NumClasses, seed)
		for _, img := range d.Images {
			for _, v := range img.Data() {
				if math.IsNaN(v) || v < 0 || v > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
