// Command seibench is the repository's observability front door: one
// binary that runs the benchmark suites, captures machine metadata,
// derives energy-per-inference from the hardware counters, and gates
// trends across runs.
//
// Usage:
//
//	seibench run  [-quick] [-dir bench-reports] [-seed N] [-rate R] [-requests N] [suite...]
//	seibench compare [-dir bench-reports] [baseline.json current.json]
//	seibench gate [-dir bench-reports] [-tolerance 10] [baseline.json current.json]
//	seibench list [-dir bench-reports]
//
// `run` executes the requested suites (default: all of inference,
// search, serve, energy) and writes bench-reports/<date>-<sha>.json.
// The inference and search suites shell out to the repo's own `go
// test -bench` benchmarks; the serve suite stands up the real HTTP
// stack in-process and drives it with the deterministic open-loop
// generator (internal/load); the energy suite joins obs hardware
// counters against the power library for pJ/inference.
//
// `compare` diffs the newest report against its most recent comparable
// baseline (same GOOS/GOARCH/CPU/core-count and quick/full mode).
// `gate` does the same and exits non-zero when any headline metric —
// images/sec, predict ns/op, search ns/op, serve p99, pJ/inference —
// regressed by strictly more than the tolerance. A first run with no
// comparable baseline passes with a note, as does a metric missing
// from one side. `make ci` runs `seibench run -quick` + `seibench
// gate`.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: seibench <command> [flags]

commands:
  run      run benchmark suites and write a report (suites: inference search serve energy)
  compare  diff the newest report against its most recent comparable baseline
  gate     like compare, but exit 1 on >tolerance% headline regression
  list     list stored reports

run 'seibench <command> -h' for command flags`)
}

// run dispatches to a subcommand and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "run":
		err = cmdRun(args[1:], stdout, stderr)
	case "compare":
		err = cmdCompareGate(args[1:], stdout, stderr, false)
	case "gate":
		err = cmdCompareGate(args[1:], stdout, stderr, true)
	case "list":
		err = cmdList(args[1:], stdout, stderr)
	case "-h", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "seibench: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		return 0
	case errors.Is(err, errGateFailed):
		fmt.Fprintln(stderr, "seibench:", err)
		return 1
	default:
		fmt.Fprintln(stderr, "seibench:", err)
		return 2
	}
}

// errGateFailed distinguishes "regression detected" (exit 1, the
// signal CI keys on) from operational errors (exit 2).
var errGateFailed = errors.New("gate failed: headline metric regressed beyond tolerance")

func cmdRun(args []string, stdout, stderr io.Writer) error {
	cfg := runConfig{Suites: map[string]bool{}}
	fs := flag.NewFlagSet("seibench run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.BoolVar(&cfg.Quick, "quick", false, "fast mode: single benchmark iterations, smaller fixture and load (CI)")
	fs.StringVar(&cfg.Dir, "dir", DefaultReportDir, "report directory")
	fs.Int64Var(&cfg.Seed, "seed", 1, "seed for the fixture pipeline and the load schedule")
	fs.Float64Var(&cfg.Rate, "rate", 0, "serve suite offered load in requests/sec (0 = mode default)")
	fs.IntVar(&cfg.Requests, "requests", 0, "serve suite request count (0 = mode default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		for _, s := range allSuites {
			cfg.Suites[s] = true
		}
	}
	for _, s := range fs.Args() {
		ok := false
		for _, known := range allSuites {
			if s == known {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("unknown suite %q (suites: %v)", s, allSuites)
		}
		cfg.Suites[s] = true
	}
	rep, err := runAll(cfg, time.Now().UTC(), stderr)
	if err != nil {
		return err
	}
	path, err := writeReport(cfg.Dir, rep)
	if err != nil {
		return err
	}
	printRunSummary(stdout, rep, path)
	return nil
}

// cmdCompareGate implements both compare (report only) and gate
// (non-zero exit on regression): the two differ only in what a
// regression means for the exit code.
func cmdCompareGate(args []string, stdout, stderr io.Writer, gating bool) error {
	name := "seibench compare"
	if gating {
		name = "seibench gate"
	}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", DefaultReportDir, "report directory")
	tol := fs.Float64("tolerance", 10, "allowed headline-metric worsening in percent; strictly beyond it fails")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tol < 0 {
		return fmt.Errorf("negative tolerance %g", *tol)
	}

	var base, cur *Report
	switch fs.NArg() {
	case 2:
		var err error
		if base, err = loadReport(fs.Arg(0)); err != nil {
			return err
		}
		if cur, err = loadReport(fs.Arg(1)); err != nil {
			return err
		}
	case 0:
		history, err := loadReports(*dir)
		if err != nil {
			return err
		}
		if len(history) == 0 {
			return fmt.Errorf("no reports in %s — run `seibench run` first", *dir)
		}
		cur = history[len(history)-1]
		base = baselineFor(cur, history)
		if base == nil {
			fmt.Fprintf(stdout, "current: %s\n", describe(cur))
			fmt.Fprintln(stdout, "no comparable baseline (first run on this machine/mode): nothing to gate, passing")
			return nil
		}
	default:
		return fmt.Errorf("want zero or two report paths, got %d", fs.NArg())
	}

	findings := evaluateGate(base, cur, *tol)
	printFindings(stdout, base, cur, findings)
	for _, f := range findings {
		if f.Status == statusMissing {
			fmt.Fprintf(stderr, "%s: warning: headline metric %s missing from one report\n", name, f.Metric)
		}
	}
	if n := regressions(findings); n > 0 && gating {
		return fmt.Errorf("%w (%d of %d headline metrics, tolerance %g%%)", errGateFailed, n, len(headlineMetrics), *tol)
	}
	return nil
}

func cmdList(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("seibench list", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", DefaultReportDir, "report directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	history, err := loadReports(*dir)
	if err != nil {
		return err
	}
	if len(history) == 0 {
		fmt.Fprintf(stdout, "no reports in %s\n", *dir)
		return nil
	}
	fmt.Fprintf(stdout, "%-17s %-9s %-6s %13s %13s %10s %10s  %s\n",
		"started (UTC)", "sha", "mode", "images/sec", "predict ns", "p99 ms", "pJ/inf", "file")
	for _, rep := range history {
		mode := "full"
		if rep.Quick {
			mode = "quick"
		}
		cell := func(name string) string {
			if v, ok := rep.Metrics[name]; ok {
				return fmt.Sprintf("%.1f", v)
			}
			return "-"
		}
		sha := rep.GitSHA
		if sha == "" {
			sha = "-"
		}
		fmt.Fprintf(stdout, "%-17s %-9s %-6s %13s %13s %10s %10s  %s\n",
			rep.StartedAt.Format("2006-01-02 15:04"), sha, mode,
			cell("images_per_sec"), cell("predict_ns_per_op"),
			cell("serve_p99_ms"), cell("pj_per_inference"), rep.path)
	}
	return nil
}
