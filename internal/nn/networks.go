package nn

import (
	"fmt"
	"math/rand"
)

// The three 4-layer CNNs of the paper's Table 2. All take a 28×28
// single-channel input; pooling is 2×2. "4-layer" counts input, two
// Conv layers and one FC layer, as the paper does.
//
//	Network 1: 12×(5×5) conv → pool → 64×(5×5) conv → pool → FC 1024→10
//	Network 2:  4×(3×3) conv → pool →  8×(3×3) conv → pool → FC  200→10
//	Network 3:  6×(3×3) conv → pool → 12×(3×3) conv → pool → FC  300→10

// NetworkSpec describes one Table-2 configuration.
type NetworkSpec struct {
	Name              string
	Conv1Filters      int
	Conv1Kernel       int
	Conv2Filters      int
	Conv2Kernel       int
	FCIn              int
	FCOut             int
	WeightMatrix1Rows int // Conv-kernel matrix as mapped on RRAM (paper row "Weight Matrix 1")
	WeightMatrix1Cols int
	WeightMatrix2Rows int
	WeightMatrix2Cols int
}

// Specs returns the three paper configurations, indexed 1–3.
func Specs() map[int]NetworkSpec {
	return map[int]NetworkSpec{
		1: {
			Name:         "Network1",
			Conv1Filters: 12, Conv1Kernel: 5,
			Conv2Filters: 64, Conv2Kernel: 5,
			FCIn: 1024, FCOut: 10,
			WeightMatrix1Rows: 25, WeightMatrix1Cols: 12,
			WeightMatrix2Rows: 300, WeightMatrix2Cols: 64,
		},
		2: {
			Name:         "Network2",
			Conv1Filters: 4, Conv1Kernel: 3,
			Conv2Filters: 8, Conv2Kernel: 3,
			FCIn: 200, FCOut: 10,
			WeightMatrix1Rows: 9, WeightMatrix1Cols: 4,
			WeightMatrix2Rows: 36, WeightMatrix2Cols: 8,
		},
		3: {
			Name:         "Network3",
			Conv1Filters: 6, Conv1Kernel: 3,
			Conv2Filters: 12, Conv2Kernel: 3,
			FCIn: 300, FCOut: 10,
			WeightMatrix1Rows: 9, WeightMatrix1Cols: 6,
			WeightMatrix2Rows: 54, WeightMatrix2Cols: 12,
		},
	}
}

// NewTableNetwork builds Table-2 network id (1, 2 or 3) with
// seed-deterministic initialization.
func NewTableNetwork(id int, seed int64) *Network {
	spec, ok := Specs()[id]
	if !ok {
		panic(fmt.Sprintf("nn: unknown Table-2 network id %d", id))
	}
	return NewFromSpec(spec, seed)
}

// NewDeepNetwork builds a three-conv-stage CNN (28×28 → 8@3×3 → pool →
// 16@3×3 → 16@3×3 → pool → FC 256×10). It is not one of the paper's
// Table-2 networks; it exists to demonstrate that the quantization and
// SEI mapping pipelines generalize beyond two conv stages and to
// layers without pooling.
func NewDeepNetwork(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	net := &Network{
		Name: "DeepNet",
		Layers: []Layer{
			NewConv2D(8, 1, 3, 3, 1, rng),
			NewReLU(),
			NewMaxPool2D(2),
			NewConv2D(16, 8, 3, 3, 1, rng),
			NewReLU(),
			NewConv2D(16, 16, 3, 3, 1, rng),
			NewReLU(),
			NewMaxPool2D(2),
			NewFlatten(),
			NewDense(256, 10, rng),
		},
	}
	if _, err := net.CheckShapes([]int{1, 28, 28}); err != nil {
		panic(fmt.Sprintf("nn: deep network does not compose: %v", err))
	}
	return net
}

// NewFromSpec builds a network from an arbitrary spec, verifying that
// the layer stack composes to the spec's FC dimensions on a 28×28
// input.
func NewFromSpec(spec NetworkSpec, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	net := &Network{
		Name: spec.Name,
		Layers: []Layer{
			NewConv2D(spec.Conv1Filters, 1, spec.Conv1Kernel, spec.Conv1Kernel, 1, rng),
			NewReLU(),
			NewMaxPool2D(2),
			NewConv2D(spec.Conv2Filters, spec.Conv1Filters, spec.Conv2Kernel, spec.Conv2Kernel, 1, rng),
			NewReLU(),
			NewMaxPool2D(2),
			NewFlatten(),
			NewDense(spec.FCIn, spec.FCOut, rng),
		},
	}
	out, err := net.CheckShapes([]int{1, 28, 28})
	if err != nil {
		panic(fmt.Sprintf("nn: spec %q does not compose: %v", spec.Name, err))
	}
	if len(out) != 1 || out[0] != spec.FCOut {
		panic(fmt.Sprintf("nn: spec %q output %v, want [%d]", spec.Name, out, spec.FCOut))
	}
	return net
}
