package vecf

import (
	"math"
	"math/rand"
	"testing"
)

// adversarialValues are the float64 inputs most likely to expose a
// kernel that rounds differently from the scalar expression: signed
// zeros, denormals, values near cancellation, NaN and infinities.
var adversarialValues = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.5, -0.5,
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	math.MaxFloat64, -math.MaxFloat64,
	1e-308, -1e-308, 1e308, 3.141592653589793, -2.718281828459045,
	math.NaN(), math.Inf(1), math.Inf(-1),
	1.0000000000000002, 0.9999999999999999,
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		if rng.Intn(8) == 0 {
			v[i] = adversarialValues[rng.Intn(len(adversarialValues))]
		} else {
			v[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(20)-10))
		}
	}
	return v
}

// bitsEqual compares exact bit patterns, except that any NaN equals
// any NaN: when both operands of an add are NaNs with different
// payloads, x86 propagates the first source operand's payload, and
// neither the Go spec nor this package pins which operand that is —
// only NaN-ness itself is deterministic.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.IsNaN(a[i]) && math.IsNaN(b[i]) {
			continue
		}
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestMulAccLanesMatchesScalar pins the dispatched kernel bit-identical
// to the scalar mul-then-add expression on random and adversarial
// inputs, across weight-vector lengths.
func TestMulAccLanesMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(12)
		x := randVec(rng, Lanes)
		w := randVec(rng, m)
		acc := randVec(rng, m*Lanes)
		want := append([]float64(nil), acc...)
		for c := 0; c < m; c++ {
			for i := 0; i < Lanes; i++ {
				want[c*Lanes+i] += w[c] * x[i]
			}
		}
		MulAccLanes(acc, x, w)
		if !bitsEqual(acc, want) {
			t.Fatalf("trial %d (m=%d): kernel diverges from scalar mul-then-add", trial, m)
		}
	}
	// Zero-length weights: a no-op that must not touch acc.
	acc := []float64{1, 2}
	MulAccLanes(acc, make([]float64, Lanes), nil)
	if acc[0] != 1 || acc[1] != 2 {
		t.Fatal("empty weight vector modified acc")
	}
}

// TestMulAccLanesZeroIdentity pins the property the sliced stage-0
// path relies on: accumulating a w*x product that is ±0 never changes
// an accumulator, because a sum of products under round-to-nearest can
// be +0 or nonzero but never -0.
func TestMulAccLanesZeroIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		x := make([]float64, Lanes) // all-zero lanes (±0 mixed in)
		for i := range x {
			if rng.Intn(2) == 0 {
				x[i] = math.Copysign(0, -1)
			}
		}
		// The identity requires finite weights (NaN·0 and Inf·0 are NaN)
		// and accumulators that are not -0 — both invariants of the
		// sliced path, whose weights and partial sums are always finite
		// and whose sums can never round to -0.
		w := randVec(rng, 4)
		for i := range w {
			if math.IsNaN(w[i]) || math.IsInf(w[i], 0) {
				w[i] = float64(i) - 1.5
			}
		}
		acc := randVec(rng, 4*Lanes)
		for i := range acc {
			if math.Signbit(acc[i]) && acc[i] == 0 {
				acc[i] = 0 // accumulators are never -0 in the sliced path
			}
		}
		want := append([]float64(nil), acc...)
		MulAccLanes(acc, x, w)
		if !bitsEqual(acc, want) {
			t.Fatalf("trial %d: zero-valued lanes changed the accumulator", trial)
		}
	}
}

// TestGtMask64MatchesScalar pins the compare kernel against the Go `>`
// operator lane by lane, including NaN (false) and threshold-equal
// (false) lanes.
func TestGtMask64MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		x := randVec(rng, Lanes)
		thr := adversarialValues[rng.Intn(len(adversarialValues))]
		if trial%3 == 0 {
			thr = x[rng.Intn(Lanes)] // exercise the equal-compares-false edge
		}
		var want uint64
		for i, v := range x {
			if v > thr {
				want |= 1 << uint(i)
			}
		}
		if got := GtMask64(x, thr); got != want {
			t.Fatalf("trial %d: mask %016x, want %016x (thr=%v)", trial, got, want, thr)
		}
	}
}

// TestConvWin4MatchesScalar pins the fused window kernel against the
// scalar composition: ascending-row mul-then-add accumulation from +0,
// then a `>` compare per lane. Offsets overlap and repeat, rowMask is
// sparse and sometimes empty, and thresholds include negative values
// (which an all-skipped window must still fire) and NaN.
func TestConvWin4MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 300; trial++ {
		rows := 1 + rng.Intn(12)
		x := randVec(rng, (rows+4)*Lanes)
		w := randVec(rng, rows*4)
		off := make([]int64, rows)
		for r := range off {
			off[r] = int64(rng.Intn(len(x) - Lanes + 1))
		}
		var rowMask uint64
		for r := 0; r < rows; r++ {
			if rng.Intn(4) != 0 {
				rowMask |= 1 << uint(r)
			}
		}
		thr := adversarialValues[rng.Intn(len(adversarialValues))]
		var want [4]uint64
		var acc [4 * Lanes]float64
		for r := 0; r < rows; r++ {
			if rowMask&(1<<uint(r)) == 0 {
				continue
			}
			for c := 0; c < 4; c++ {
				for i := 0; i < Lanes; i++ {
					acc[c*Lanes+i] += w[r*4+c] * x[off[r]+int64(i)]
				}
			}
		}
		for c := 0; c < 4; c++ {
			for i := 0; i < Lanes; i++ {
				if acc[c*Lanes+i] > thr {
					want[c] |= 1 << uint(i)
				}
			}
		}
		var got [4]uint64
		ConvWin4(x, w, off, rowMask, thr, &got)
		if got != want {
			t.Fatalf("trial %d (rows=%d mask=%x thr=%v): got %x, want %x",
				trial, rows, rowMask, thr, got, want)
		}
	}
}

// TestAddRowLanesMatchesScalar pins the lane-major row add against the
// scalar loop on adversarial values, across row lengths and sparse to
// dense lane words.
func TestAddRowLanesMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(13)
		row := randVec(rng, m)
		acc := randVec(rng, Lanes*m)
		word := rng.Uint64() & rng.Uint64() // biased sparse
		if trial%5 == 0 {
			word = rng.Uint64()
		}
		want := append([]float64(nil), acc...)
		for lane := 0; lane < Lanes; lane++ {
			if word&(1<<uint(lane)) == 0 {
				continue
			}
			for c, v := range row {
				want[lane*m+c] += v
			}
		}
		AddRowLanes(acc, row, word)
		if !bitsEqual(acc, want) {
			t.Fatalf("trial %d (m=%d word=%x): row add diverges from scalar", trial, m, word)
		}
	}
	// Empty word and empty row: no-ops that must not touch acc.
	acc := []float64{1, 2}
	AddRowLanes(acc, []float64{5}, 0)
	AddRowLanes(acc, nil, ^uint64(0))
	if acc[0] != 1 || acc[1] != 2 {
		t.Fatal("no-op row add modified acc")
	}
}

func BenchmarkMulAccLanes(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := randVec(rng, Lanes)
	w := []float64{0.25, -0.5, 1.5, -2}
	acc := make([]float64, len(w)*Lanes)
	b.SetBytes(int64(len(acc) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAccLanes(acc, x, w)
	}
}

func BenchmarkGtMask64(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := randVec(rng, Lanes)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink ^= GtMask64(x, 0.125)
	}
	_ = sink
}
