package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestParetoStudy(t *testing.T) {
	c := ctx(t)
	points, err := ParetoStudy(c, 2, []int{2, 4, 6}, []float64{0, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d points, want 6", len(points))
	}
	// At least one point must be on the frontier.
	frontier := 0
	for _, p := range points {
		if !p.Dominated {
			frontier++
		}
	}
	if frontier == 0 {
		t.Fatal("no frontier points")
	}
	// Fewer bits per cell → more slices → more RRAM/driver energy.
	var e2, e6 float64
	for _, p := range points {
		if p.Sigma == 0 {
			switch p.DeviceBits {
			case 2:
				e2 = p.EnergyUJ
			case 6:
				e6 = p.EnergyUJ
			}
		}
	}
	if e2 <= e6 {
		t.Fatalf("2-bit energy %.3f not above 6-bit %.3f", e2, e6)
	}
	var buf bytes.Buffer
	PrintPareto(&buf, 2, points)
	if !strings.Contains(buf.String(), "frontier") {
		t.Fatal("print missing frontier column")
	}
}

func TestMarkDominated(t *testing.T) {
	points := []ParetoPoint{
		{ErrorRate: 0.1, EnergyUJ: 1},   // dominated by #2
		{ErrorRate: 0.05, EnergyUJ: 1},  // frontier
		{ErrorRate: 0.2, EnergyUJ: 0.5}, // frontier (cheapest)
		{ErrorRate: 0.05, EnergyUJ: 1},  // tie with #1: neither dominates
	}
	markDominated(points)
	if !points[0].Dominated {
		t.Fatal("point 0 should be dominated")
	}
	if points[1].Dominated || points[2].Dominated || points[3].Dominated {
		t.Fatalf("frontier misidentified: %+v", points)
	}
}
