package seicore

// The bit-packed inference fast path. After 1-bit quantization every
// inter-layer activation is binary, so the crossbar MVM degenerates to
// summing the effective-weight rows whose input bit is set and max
// pooling to an OR of bits (the paper's core observation; Section 3).
// This file carries those activations as uint64-word-packed bit
// vectors end to end — packed activation maps, bit-blitted im2col
// windows, OR-fused pooling — and reuses one per-goroutine scratch
// arena for every buffer the forward pass needs, making steady-state
// Predict allocation-free.
//
// Contract (pinned by determinism_test.go and fast_test.go): the fast
// path is bit-identical to the float path in predictions AND in
// hardware-counter totals. Every float accumulation visits rows in the
// exact order of the float path's skip-zero loops, every counter is
// recorded at the same logical event, and the fused OR pool writes the
// same output bits as quant.orPool (OR is order-independent on bits).
// The path applies only to ideal-analog designs — no read noise, no IR
// drop, no I-V nonlinearity (the Table 4/5 default device) — because
// those effects perturb sums in ways the packed kernels do not model;
// noisy/nonlinear designs keep the float path, selected at the single
// dispatch point in SEIDesign.Predict.

import (
	"sei/internal/bitvec"
	"sei/internal/quant"
	"sei/internal/rram"
	"sei/internal/tensor"
)

// stageGeom is the pre-resolved geometry of one conv stage: input map
// dims, output grid, pooled output grid.
type stageGeom struct {
	kh, kw, stride, pool int
	inC, inH, inW        int
	outH, outW           int // pre-pool output grid
	pooledH, pooledW     int // post-pool dims (== outH/outW when pool ≤ 1)
	fan                  int // receptive-field size inC·kh·kw
	filters              int
}

// fastGeometry chains the quantized net's stage shapes from InShape,
// mirroring the shape arithmetic of quant.convStage/orPool (including
// the floor division that drops pool-uncovered edge rows).
func fastGeometry(q *quant.QuantizedNet) []stageGeom {
	inC, inH, inW := q.InShape[0], q.InShape[1], q.InShape[2]
	gs := make([]stageGeom, len(q.Convs))
	for l := range q.Convs {
		c := &q.Convs[l]
		g := stageGeom{
			kh: c.W.Dim(2), kw: c.W.Dim(3), stride: c.Stride, pool: c.PoolSize,
			inC: inC, inH: inH, inW: inW,
			fan: c.FanIn(), filters: c.Filters(),
		}
		g.outH = (inH-g.kh)/g.stride + 1
		g.outW = (inW-g.kw)/g.stride + 1
		g.pooledH, g.pooledW = g.outH, g.outW
		if g.pool > 1 {
			g.pooledH, g.pooledW = g.outH/g.pool, g.outW/g.pool
		}
		gs[l] = g
		inC, inH, inW = g.filters, g.pooledH, g.pooledW
	}
	return gs
}

// seiScratch is one goroutine's arena for the fast path: every buffer
// a full forward pass touches, sized once for the design's largest
// stage. Predict borrows a scratch from the design's pool, so
// steady-state inference performs zero heap allocations per image.
type seiScratch struct {
	geom      []stageGeom
	cur, next *bitvec.Vec // packed activation maps, ping-pong
	win       *bitvec.Vec // packed receptive-field window
	field     []float64   // stage-0 float im2col window (DAC-driven)
	strip     []float64   // stage-0 output-row column sums (fastnoisy.go)
	col       []float64   // per-block column sums
	fired     []int       // per-column fired-block counts
	scores    []float64   // FC classifier scores
	gauss     []float64   // noise-draw block (fastnoisy.go)
	varsum    []float64   // aggregated-noise per-column variances
}

// newSEIScratch sizes an arena for d.
func newSEIScratch(d *SEIDesign) *seiScratch {
	s := &seiScratch{geom: fastGeometry(d.Q)}
	maxMap, maxFan, maxM := 0, 0, 0
	for l, g := range s.geom {
		if n := g.filters * g.pooledH * g.pooledW; n > maxMap {
			maxMap = n
		}
		if l > 0 && g.fan > maxFan {
			maxFan = g.fan
		}
		if g.filters > maxM {
			maxM = g.filters
		}
	}
	if d.FC.M > maxM {
		maxM = d.FC.M
	}
	s.cur = bitvec.New(maxMap)
	s.next = bitvec.New(maxMap)
	s.win = bitvec.New(maxFan)
	s.field = make([]float64, s.geom[0].fan)
	s.strip = make([]float64, s.geom[0].outW*s.geom[0].filters)
	s.col = make([]float64, maxM)
	s.fired = make([]int, maxM)
	s.scores = make([]float64, d.FC.M)
	s.gauss = make([]float64, maxM)
	s.varsum = make([]float64, maxM)
	return s
}

// idealAnalog reports whether a device model's read-out is exact: no
// read noise, no IR drop, no I-V nonlinearity. Programming-time
// effects (variation, stuck faults, quantized levels) are already
// baked into the effective weights and do not disqualify the fast
// path.
func idealAnalog(m rram.DeviceModel) bool {
	return m.Readout().Ideal()
}

// fastEligible reports whether every stage of the design reads out
// exactly, which is what makes the packed kernels bit-identical to the
// float path.
func (d *SEIDesign) fastEligible() bool {
	if !idealAnalog(d.Input.model) {
		return false
	}
	for _, l := range d.Convs {
		if !idealAnalog(l.model) {
			return false
		}
	}
	return idealAnalog(d.FC.model)
}

// gatherFloatWindow copies one receptive-field window out of the float
// input map into dst, in exactly tensor.Im2Col's element order
// (channel-major, then kernel row, then kernel column).
func gatherFloatWindow(data []float64, g *stageGeom, oy, ox int, dst []float64) {
	di := 0
	for ch := 0; ch < g.inC; ch++ {
		base := ch * g.inH * g.inW
		for ky := 0; ky < g.kh; ky++ {
			src := base + (oy*g.stride+ky)*g.inW + ox*g.stride
			copy(dst[di:di+g.kw], data[src:src+g.kw])
			di += g.kw
		}
	}
}

// gatherBitWindow is gatherFloatWindow on a packed activation map:
// each kernel row is a kw-bit blit, so a window costs O(fan/64 + rows)
// word operations instead of fan float copies.
func gatherBitWindow(in *bitvec.Vec, g *stageGeom, oy, ox int, dst *bitvec.Vec) {
	di := 0
	for ch := 0; ch < g.inC; ch++ {
		base := ch * g.inH * g.inW
		for ky := 0; ky < g.kh; ky++ {
			src := base + (oy*g.stride+ky)*g.inW + ox*g.stride
			bitvec.CopyRange(dst, di, in, src, g.kw)
			di += g.kw
		}
	}
}

// poolSet writes one fired output bit into the (pool-fused) output
// map: with pooling the bit lands OR-wise in its pool window's slot,
// and positions in edge rows/columns the floor-division pool grid
// never covers are dropped — exactly what quant.orPool computes.
func poolSet(out *bitvec.Vec, g *stageGeom, k, oy, ox int) {
	py, px := oy, ox
	if g.pool > 1 {
		py /= g.pool
		px /= g.pool
		if py >= g.pooledH || px >= g.pooledW {
			return
		}
	}
	out.Set((k*g.pooledH+py)*g.pooledW + px)
}

// predictFast classifies one image on the bit-packed path. The caller
// owns s for the duration of the call.
func (d *SEIDesign) predictFast(img *tensor.Tensor, s *seiScratch) int {
	if d.bounded {
		return d.predictFastBounded(img, s)
	}
	q := d.Q

	// Stage 0 keeps the DAC+ADC organization (Section 3.2): float
	// image windows through the merged input layer, binarized by the
	// stage threshold, pooled into the first packed map.
	g := &s.geom[0]
	out := s.cur
	out.Reset(g.filters * g.pooledH * g.pooledW)
	thr := q.Thresholds[0]
	col := s.col[:g.filters]
	data := img.Data()
	for oy := 0; oy < g.outH; oy++ {
		for ox := 0; ox < g.outW; ox++ {
			gatherFloatWindow(data, g, oy, ox, s.field)
			d.Input.evalIdealInto(s.field, col)
			for k, v := range col {
				if v > thr {
					poolSet(out, g, k, oy, ox)
				}
			}
		}
	}
	if g.pool > 1 {
		q.CountORPool(int64(g.filters * g.pooledH * g.pooledW))
	}

	// Deeper conv stages are SEI crossbars: packed windows in, SA
	// threshold counts out, OR-fused pooling.
	for l := 1; l < len(q.Convs); l++ {
		layer := d.Convs[l-1]
		g := &s.geom[l]
		in := s.cur
		out := s.next
		out.Reset(g.filters * g.pooledH * g.pooledW)
		s.win.Reset(g.fan)
		fired := s.fired[:layer.M]
		col := s.col[:layer.M]
		for oy := 0; oy < g.outH; oy++ {
			for ox := 0; ox < g.outW; ox++ {
				gatherBitWindow(in, g, oy, ox, s.win)
				layer.evalFastCounts(s.win, fired, col)
				for k, f := range fired {
					if f >= layer.DigitalThreshold {
						poolSet(out, g, k, oy, ox)
					}
				}
			}
		}
		if g.pool > 1 {
			q.CountORPool(int64(g.filters * g.pooledH * g.pooledW))
		}
		s.cur, s.next = out, in
	}

	// FC stage: the flattened final map is already the packed input.
	d.FC.evalFastInto(s.cur, s.scores, s.col[:d.FC.M])
	best, bi := s.scores[0], 0
	for i, v := range s.scores {
		if v > best { // strict >: first maximum wins, as tensor.ArgMax
			best, bi = v, i
		}
	}
	return bi
}
