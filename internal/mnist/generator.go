package mnist

import (
	"math"
	"math/rand"

	"sei/internal/tensor"
)

// point is a 2-D coordinate in glyph space (x right, y down, both
// nominally in [0,1]).
type point struct{ x, y float64 }

// stroke is a polyline in glyph space.
type stroke []point

// arc approximates an elliptical arc centred at (cx,cy) with radii
// (rx,ry) from angle a0 to a1 (radians, y-down screen convention) as
// an n-segment polyline.
func arc(cx, cy, rx, ry, a0, a1 float64, n int) stroke {
	s := make(stroke, n+1)
	for i := 0; i <= n; i++ {
		a := a0 + (a1-a0)*float64(i)/float64(n)
		s[i] = point{cx + rx*math.Cos(a), cy + ry*math.Sin(a)}
	}
	return s
}

func line(x0, y0, x1, y1 float64) stroke {
	return stroke{{x0, y0}, {x1, y1}}
}

// glyphs defines each digit as a set of strokes in the unit square.
// The shapes are deliberately canonical; all variability comes from
// the per-sample distortion pipeline.
var glyphs = [NumClasses][]stroke{
	// 0: an ellipse.
	{arc(0.5, 0.5, 0.21, 0.32, 0, 2*math.Pi, 20)},
	// 1: a vertical bar with a small leading flag.
	{line(0.5, 0.18, 0.5, 0.82), line(0.38, 0.3, 0.5, 0.18)},
	// 2: top arc, descending diagonal, bottom bar.
	{
		arc(0.5, 0.33, 0.2, 0.15, math.Pi, 2*math.Pi+math.Pi/3, 12),
		line(0.67, 0.43, 0.3, 0.82),
		line(0.3, 0.82, 0.72, 0.82),
	},
	// 3: two right-facing arcs stacked.
	{
		arc(0.47, 0.33, 0.18, 0.15, -3*math.Pi/4, math.Pi/2, 12),
		arc(0.47, 0.66, 0.2, 0.17, -math.Pi/2, 3*math.Pi/4, 12),
	},
	// 4: diagonal, horizontal bar, vertical.
	{
		line(0.55, 0.18, 0.3, 0.58),
		line(0.3, 0.58, 0.72, 0.58),
		line(0.6, 0.3, 0.6, 0.82),
	},
	// 5: top bar, upper-left vertical, lower bowl.
	{
		line(0.68, 0.18, 0.35, 0.18),
		line(0.35, 0.18, 0.33, 0.48),
		arc(0.48, 0.63, 0.2, 0.19, -math.Pi/2, 3*math.Pi/4, 12),
	},
	// 6: a sweeping left curve with a closed lower loop.
	{
		arc(0.58, 0.38, 0.22, 0.28, math.Pi*0.9, math.Pi*1.45, 8),
		arc(0.5, 0.65, 0.17, 0.17, 0, 2*math.Pi, 16),
	},
	// 7: top bar and steep diagonal.
	{
		line(0.3, 0.2, 0.7, 0.2),
		line(0.7, 0.2, 0.42, 0.82),
	},
	// 8: two stacked loops.
	{
		arc(0.5, 0.34, 0.16, 0.15, 0, 2*math.Pi, 16),
		arc(0.5, 0.66, 0.19, 0.17, 0, 2*math.Pi, 16),
	},
	// 9: upper loop and a tail.
	{
		arc(0.5, 0.35, 0.17, 0.16, 0, 2*math.Pi, 16),
		line(0.66, 0.38, 0.56, 0.82),
	},
}

// GenOptions controls the synthetic distortion pipeline. The zero
// value is not useful; start from DefaultGenOptions.
type GenOptions struct {
	Rotate    float64 // max |rotation| in radians
	ScaleJit  float64 // max relative scale deviation per axis
	Shear     float64 // max |shear| factor
	Translate float64 // max |translation| in pixels
	Jitter    float64 // per-control-point Gaussian sigma in pixels
	Thickness float64 // nominal stroke half-width in pixels
	ThickJit  float64 // max relative thickness deviation
	Noise     float64 // background Gaussian noise sigma
	MinInk    float64 // minimum foreground intensity
}

// DefaultGenOptions are tuned so that the Table-2 CNNs reach a low
// single-digit percent error — the regime the paper's MNIST results
// live in — while leaving enough ambiguity that method deltas
// (quantization, splitting) are measurable.
func DefaultGenOptions() GenOptions {
	return GenOptions{
		Rotate:    0.30,
		ScaleJit:  0.18,
		Shear:     0.25,
		Translate: 2.2,
		Jitter:    0.9,
		Thickness: 1.1,
		ThickJit:  0.35,
		Noise:     0.06,
		MinInk:    0.72,
	}
}

// Synthetic generates n labelled digit images deterministically from
// seed using DefaultGenOptions. Labels cycle through the classes so
// every class is (nearly) equally represented.
func Synthetic(n int, seed int64) *Dataset {
	return SyntheticWithOptions(n, seed, DefaultGenOptions())
}

// SyntheticWithOptions is Synthetic with explicit distortion options.
func SyntheticWithOptions(n int, seed int64, opt GenOptions) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		Images: make([]*tensor.Tensor, 0, n),
		Labels: make([]int, 0, n),
	}
	perm := rng.Perm(NumClasses)
	for i := 0; i < n; i++ {
		label := perm[i%NumClasses]
		if i%NumClasses == NumClasses-1 {
			perm = rng.Perm(NumClasses)
		}
		d.Images = append(d.Images, renderDigit(label, rng, opt))
		d.Labels = append(d.Labels, label)
	}
	return d
}

// SyntheticSplit returns disjoint train and test sets. The test set
// uses an independent generator stream so it is not a subset of the
// training distribution's samples (mirroring the paper's 60k/10k
// split).
func SyntheticSplit(nTrain, nTest int, seed int64) (train, test *Dataset) {
	return Synthetic(nTrain, seed), Synthetic(nTest, seed+0x9E3779B9)
}

// renderDigit rasterizes one distorted glyph into a [1,28,28] tensor.
func renderDigit(label int, rng *rand.Rand, opt GenOptions) *tensor.Tensor {
	// Build the affine transform: glyph space [0,1]² → pixel space.
	theta := (rng.Float64()*2 - 1) * opt.Rotate
	sx := float64(Side) * (1 + (rng.Float64()*2-1)*opt.ScaleJit)
	sy := float64(Side) * (1 + (rng.Float64()*2-1)*opt.ScaleJit)
	sh := (rng.Float64()*2 - 1) * opt.Shear
	tx := float64(Side)/2 + (rng.Float64()*2-1)*opt.Translate
	ty := float64(Side)/2 + (rng.Float64()*2-1)*opt.Translate
	cosT, sinT := math.Cos(theta), math.Sin(theta)

	transform := func(p point) point {
		// Centre, shear, scale, rotate, translate.
		x := (p.x - 0.5)
		y := (p.y - 0.5)
		x += sh * y
		x *= sx
		y *= sy
		xr := x*cosT - y*sinT
		yr := x*sinT + y*cosT
		return point{xr + tx, yr + ty}
	}

	// Transform and jitter every stroke's control points.
	var segs [][2]point
	for _, st := range glyphs[label] {
		prev := point{}
		for i, p := range st {
			q := transform(p)
			q.x += rng.NormFloat64() * opt.Jitter
			q.y += rng.NormFloat64() * opt.Jitter
			if i > 0 {
				segs = append(segs, [2]point{prev, q})
			}
			prev = q
		}
	}

	thick := opt.Thickness * (1 + (rng.Float64()*2-1)*opt.ThickJit)
	ink := opt.MinInk + rng.Float64()*(1-opt.MinInk)

	img := tensor.New(1, Side, Side)
	data := img.Data()
	for py := 0; py < Side; py++ {
		for px := 0; px < Side; px++ {
			c := point{float64(px) + 0.5, float64(py) + 0.5}
			d := math.Inf(1)
			for _, s := range segs {
				if dd := distToSegment(c, s[0], s[1]); dd < d {
					d = dd
				}
			}
			// Soft-edged stroke: full ink inside the half-width,
			// linear falloff over one pixel of anti-aliasing.
			v := 0.0
			switch {
			case d <= thick:
				v = ink
			case d <= thick+1:
				v = ink * (1 - (d - thick))
			}
			v += rng.NormFloat64() * opt.Noise
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			data[py*Side+px] = v
		}
	}
	return img
}

// distToSegment returns the Euclidean distance from p to segment ab.
func distToSegment(p, a, b point) float64 {
	dx, dy := b.x-a.x, b.y-a.y
	l2 := dx*dx + dy*dy
	t := 0.0
	if l2 > 0 {
		t = ((p.x-a.x)*dx + (p.y-a.y)*dy) / l2
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	qx, qy := a.x+t*dx, a.y+t*dy
	return math.Hypot(p.x-qx, p.y-qy)
}
