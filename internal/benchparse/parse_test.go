package benchparse

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: sei
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSEIPredictFloat-8 	    8922	    278289 ns/op	      3593 images/sec	  276104 B/op	    6173 allocs/op
BenchmarkSEIPredictBatch 	     122	  19678956 ns/op	     10163 images/sec	    4944 B/op	     201 allocs/op
BenchmarkSEIPredict      	   28508	     83641 ns/op	       0 B/op	       0 allocs/op
some test log line that is not a benchmark
PASS
ok  	sei	15.591s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Pkg != "sei" {
		t.Errorf("header = %q/%q/%q", rep.GOOS, rep.GOARCH, rep.Pkg)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	float := rep.Benchmarks[0]
	if float.Name != "SEIPredictFloat" { // -8 suffix stripped
		t.Errorf("name = %q", float.Name)
	}
	if float.Iterations != 8922 {
		t.Errorf("iterations = %d", float.Iterations)
	}
	want := map[string]float64{
		"ns/op": 278289, "images/sec": 3593, "B/op": 276104, "allocs/op": 6173,
	}
	for unit, v := range want {
		if float.Metrics[unit] != v {
			t.Errorf("%s = %v, want %v", unit, float.Metrics[unit], v)
		}
	}
	if got := rep.Benchmarks[2].Metrics["allocs/op"]; got != 0 {
		t.Errorf("fast-path allocs/op = %v, want 0", got)
	}
	speedup := rep.Derived["sei_predict_speedup_x"]
	if speedup < 3.3 || speedup > 3.4 {
		t.Errorf("speedup = %v, want 278289/83641 ≈ 3.33", speedup)
	}
}

func TestDeriveSearchPair(t *testing.T) {
	const searchSample = `BenchmarkSearchThresholds-8      5	 200000000 ns/op	  0.95 skip_rate	 1000000 B/op	    2000 allocs/op
BenchmarkSearchThresholdsNaive-8 1	 900000000 ns/op	50000000 B/op	  100000 allocs/op
`
	rep, err := Parse(strings.NewReader(searchSample))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Derived["search_thresholds_speedup_x"]; got != 4.5 {
		t.Errorf("search speedup = %v, want 900/200 = 4.5", got)
	}
	if got := rep.Derived["search_thresholds_alloc_reduction_x"]; got != 50 {
		t.Errorf("alloc reduction = %v, want 100000/2000 = 50", got)
	}
	if _, ok := rep.Derived["sei_predict_speedup_x"]; ok {
		t.Error("sei predict pair derived without its benchmarks present")
	}
}

func TestDeriveSlicedBatchPair(t *testing.T) {
	const slicedSample = `BenchmarkSEIPredictBatchSliced 	 1494	 2388976 ns/op	 80369 images/sec	 298 B/op	 0 allocs/op
BenchmarkSEIPredict            	39513	   88136 ns/op	 11346 images/sec	   0 B/op	 0 allocs/op
`
	rep, err := Parse(strings.NewReader(slicedSample))
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Derived["sei_batch_sliced_speedup_x"]
	if got < 7.0 || got > 7.1 {
		t.Errorf("sliced speedup = %v, want 80369/11346 ≈ 7.08", got)
	}
}

func TestParseSkipsMalformedLines(t *testing.T) {
	rep, err := Parse(strings.NewReader("BenchmarkOddFieldCount 12 34\nBenchmarkBad x ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from malformed input, want 0", len(rep.Benchmarks))
	}
}
