package homog

import (
	"testing"
)

func TestAnnealReducesDistance(t *testing.T) {
	w := randomMatrix(100, 6, 11)
	cfg := DefaultSAConfig()
	cfg.Iterations = 8000
	res, err := Anneal(w, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance > res.NaturalDistance {
		t.Fatalf("SA worse than natural: %v > %v", res.Distance, res.NaturalDistance)
	}
	if res.Reduction() < 0.5 {
		t.Fatalf("SA reduction %.2f too small", res.Reduction())
	}
	seen := make([]bool, 100)
	for _, idx := range res.Order {
		if seen[idx] {
			t.Fatal("SA order is not a permutation")
		}
		seen[idx] = true
	}
}

func TestAnnealDeterministic(t *testing.T) {
	w := randomMatrix(40, 4, 12)
	cfg := DefaultSAConfig()
	cfg.Iterations = 2000
	a, _ := Anneal(w, 2, cfg)
	b, _ := Anneal(w, 2, cfg)
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatal("SA not deterministic under fixed seed")
		}
	}
}

func TestAnnealCompetitiveWithGA(t *testing.T) {
	w := randomMatrix(120, 8, 13)
	ga, err := Homogenize(w, 3, DefaultGAConfig())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := Anneal(w, 3, DefaultSAConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("GA %.4f vs SA %.4f (natural %.4f)", ga.Distance, sa.Distance, ga.NaturalDistance)
	if sa.Distance > ga.Distance*2 {
		t.Fatalf("SA (%.4f) not competitive with GA (%.4f)", sa.Distance, ga.Distance)
	}
}

func TestAnnealValidation(t *testing.T) {
	w := randomMatrix(10, 2, 14)
	if _, err := Anneal(w, 0, DefaultSAConfig()); err == nil {
		t.Fatal("accepted k=0")
	}
	bad := DefaultSAConfig()
	bad.Iterations = 0
	if _, err := Anneal(w, 2, bad); err == nil {
		t.Fatal("accepted zero iterations")
	}
	bad = DefaultSAConfig()
	bad.EndTemp = 1
	bad.StartTemp = 0.01
	if _, err := Anneal(w, 2, bad); err == nil {
		t.Fatal("accepted inverted temperatures")
	}
}

func TestAnnealK1(t *testing.T) {
	w := randomMatrix(10, 2, 15)
	res, err := Anneal(w, 1, DefaultSAConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance != 0 {
		t.Fatal("K=1 distance should be 0")
	}
}

func TestNaturalOrderHelper(t *testing.T) {
	o := NaturalOrder(4)
	for i, v := range o {
		if v != i {
			t.Fatalf("NaturalOrder = %v", o)
		}
	}
}
