package seicore

// Per-cell read noise: the seed-addressed draw stream and the noise
// passes shared by the float path (sei.go, merged.go) and the packed
// non-ideal path (fastnoisy.go).
//
// The per-column model (DeviceModel.ReadNoiseSigma alone) keeps its
// original math/rand ziggurat stream untouched — every existing noisy
// design, calibration run and snapshot stays bit-for-bit identical.
// The per-cell model (ReadNoisePerCell) draws far more values — one
// per active cell instead of one per column — and must replay the
// identical draw sequence on both the float and the packed path at
// every worker count, so it uses the counter-indexed vecf kernel: a
// draw is a pure function of (seed, index), blocks of any size
// reproduce the scalar stream, and consumption is countable
// (sei_noise_draws) rather than hidden generator state.
//
// Both paths visit a block's active rows in ascending local order —
// the float path's skip-zero loop and the packed path's NextSet walk
// enumerate the same rows in the same order — and draw one length-M
// block per active row, so the stream position after any prefix of
// the work is identical on both paths. That is the whole bit-identity
// argument; determinism_test.go pins it end to end.

import (
	"math"

	"sei/internal/bitvec"
	"sei/internal/vecf"
)

// noiseStream is one layer's per-cell draw stream: a cursor over the
// counter-indexed Gaussian sequence of a seed. Cloned per evaluation
// chunk (parallel.go) exactly like the per-column RNGs, so worker
// count never changes which draws an image sees.
type noiseStream struct {
	seed uint64
	pos  uint64
}

func newNoiseStream(seed int64) *noiseStream {
	return &noiseStream{seed: uint64(seed)}
}

// block fills dst with the next len(dst) draws.
func (s *noiseStream) block(dst []float64) {
	vecf.GaussBlock(s.seed, s.pos, dst)
	s.pos += uint64(len(dst))
}

// cellNoiseFloat adds per-cell read noise to one block's column sums
// for a float 0/1 (or analog, for the DAC-driven input stage) input
// vector: for each active row, in ascending local order, one length-m
// Gaussian block perturbs the row's contribution by σ·in·w·g per
// column. Returns the number of draws consumed.
func cellNoiseFloat(cells *noiseStream, sigma float64, b *seiBlock, in, main, g []float64) int {
	m := len(main)
	data := b.eff.Data()
	draws := 0
	for local, j := range b.inputs {
		x := in[j]
		if x == 0 {
			continue
		}
		cells.block(g[:m])
		draws += m
		row := data[local*m : (local+1)*m]
		for c, v := range row {
			main[c] += sigma * x * v * g[c]
		}
	}
	return draws
}

// cellNoiseBits is cellNoiseFloat on a packed input window: the same
// rows in the same ascending order (sumsBits's walk), the same draws,
// the same accumulation — bit-identical column sums.
func cellNoiseBits(cells *noiseStream, sigma float64, b *seiBlock, in *bitvec.Vec, main, g []float64) int {
	m := len(main)
	data := b.eff.Data()
	draws := 0
	if b.contig {
		lo := b.inputs[0]
		hi := lo + len(b.inputs)
		for j := in.NextSet(lo); j >= 0 && j < hi; j = in.NextSet(j + 1) {
			local := j - lo
			cells.block(g[:m])
			draws += m
			row := data[local*m : (local+1)*m]
			for c, v := range row {
				main[c] += sigma * v * g[c]
			}
		}
		return draws
	}
	for local, j := range b.inputs {
		if !in.Get(j) {
			continue
		}
		cells.block(g[:m])
		draws += m
		row := data[local*m : (local+1)*m]
		for c, v := range row {
			main[c] += sigma * v * g[c]
		}
	}
	return draws
}

// cellNoiseAggregated is the opt-in approximate mode (SetNoiseApprox):
// instead of one Gaussian per active cell, each column gets a single
// draw scaled by the summed per-cell variance — the exact pass
// perturbs column c by Σ_active σ·w·g, a zero-mean Gaussian with
// variance σ²·Σ_active w², and this pass samples that distribution
// directly from the block's precomputed squared-weight table (b.sq).
// Distributionally identical to the exact pass (pinned by the KS and
// moment tests in noise_test.go), ~ones× cheaper in draws, and by
// design NOT bit-identical to it. vs is the per-column variance
// scratch; returns the number of draws consumed (always m).
func cellNoiseAggregated(cells *noiseStream, sigma float64, b *seiBlock, in *bitvec.Vec, main, g, vs []float64) int {
	m := len(main)
	for c := range vs[:m] {
		vs[c] = 0
	}
	sq := b.sq.Data()
	if b.contig {
		lo := b.inputs[0]
		hi := lo + len(b.inputs)
		for j := in.NextSet(lo); j >= 0 && j < hi; j = in.NextSet(j + 1) {
			row := sq[(j-lo)*m : (j-lo+1)*m]
			for c, v := range row {
				vs[c] += v
			}
		}
	} else {
		for local, j := range b.inputs {
			if !in.Get(j) {
				continue
			}
			row := sq[local*m : (local+1)*m]
			for c, v := range row {
				vs[c] += v
			}
		}
	}
	cells.block(g[:m])
	for c := range main {
		main[c] += sigma * sqrtNonneg(vs[c]) * g[c]
	}
	return m
}

// sqrtNonneg is math.Sqrt clamped at zero for the float-rounding case
// where a variance accumulation lands at −0 or a denormal negative.
func sqrtNonneg(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
