package seicore

import (
	"math/rand"
	"testing"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/quant"
	"sei/internal/rram"
)

// testFixture trains and quantizes Network 2 once per test binary.
type fixture struct {
	net   *nn.Network
	q     *quant.QuantizedNet
	train *mnist.Dataset
	test  *mnist.Dataset
}

var sharedFixture *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if sharedFixture != nil {
		return sharedFixture
	}
	train, test := mnist.SyntheticSplit(1500, 300, 5)
	net := nn.NewTableNetwork(2, 7)
	nn.Train(net, train, nn.DefaultTrainConfig())
	cfg := quant.DefaultSearchConfig()
	cfg.Samples = 300
	q, _, err := quant.QuantizeNetwork(net, train, []int{1, 28, 28}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := quant.RecalibrateFC(q, train, quant.DefaultRecalibrateConfig()); err != nil {
		t.Fatal(err)
	}
	sharedFixture = &fixture{net: net, q: q, train: train, test: test}
	return sharedFixture
}

func TestBuildSEIIdealMatchesDigital(t *testing.T) {
	// With ideal devices and no splitting needed beyond the FC (whose
	// block merge is exact), SEI classification must be extremely close
	// to the digital quantized network (the only difference is 8-bit
	// weight quantization).
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.Layer.Model = rram.IdealDeviceModel(4)
	cfg.DynamicThreshold = false
	design, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	sub := f.test.Subset(120)
	digitalErr := f.q.ErrorRate(sub)
	seiErr := nn.ClassifierErrorRate(design, sub)
	t.Logf("digital %.4f sei %.4f", digitalErr, seiErr)
	if diff := seiErr - digitalErr; diff > 0.05 || diff < -0.05 {
		t.Fatalf("ideal SEI error %.4f diverges from digital %.4f", seiErr, digitalErr)
	}
}

func TestBuildSEILayerShapes(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	design, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Network 2: conv1 (input stage) 9×4 merged; conv2 SEI 36×8; FC SEI
	// 200×10 → 800 rows → 2 blocks at 512.
	if design.Input.N != 9 || design.Input.M != 4 {
		t.Fatalf("input stage %dx%d, want 9x4", design.Input.N, design.Input.M)
	}
	if len(design.Convs) != 1 || design.Convs[0].N != 36 || design.Convs[0].K != 1 {
		t.Fatalf("conv stages wrong: %+v", design.Convs)
	}
	if design.FC.N != 200 || design.FC.K != 2 {
		t.Fatalf("FC N=%d K=%d, want 200/2", design.FC.N, design.FC.K)
	}
}

func TestBuildOneBitADCMatchesDigital(t *testing.T) {
	f := getFixture(t)
	design, err := BuildOneBitADC(f.q, rram.IdealDeviceModel(4), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	sub := f.test.Subset(120)
	digitalErr := f.q.ErrorRate(sub)
	hwErr := nn.ClassifierErrorRate(design, sub)
	if diff := hwErr - digitalErr; diff > 0.05 || diff < -0.05 {
		t.Fatalf("1-bit+ADC error %.4f diverges from digital %.4f", hwErr, digitalErr)
	}
}

func TestBuildDACADCMatchesFloat(t *testing.T) {
	f := getFixture(t)
	design, err := BuildDACADC(f.net, []int{1, 28, 28}, rram.IdealDeviceModel(4), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	sub := f.test.Subset(120)
	floatErr := nn.ErrorRate(f.net, sub)
	hwErr := nn.ClassifierErrorRate(design, sub)
	t.Logf("float %.4f dacadc %.4f", floatErr, hwErr)
	if diff := hwErr - floatErr; diff > 0.05 || diff < -0.05 {
		t.Fatalf("DAC+ADC error %.4f diverges from float %.4f", hwErr, floatErr)
	}
}

func TestDeviceVariationDegradesGracefully(t *testing.T) {
	f := getFixture(t)
	model := rram.DefaultDeviceModel() // σ = 0.02
	design, err := BuildOneBitADC(f.q, model, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	sub := f.test.Subset(120)
	digitalErr := f.q.ErrorRate(sub)
	hwErr := nn.ClassifierErrorRate(design, sub)
	if hwErr > digitalErr+0.10 {
		t.Fatalf("mild variation exploded error: %.4f vs %.4f", hwErr, digitalErr)
	}
}

func TestCalibrateImprovesAgreementOnSplitLayer(t *testing.T) {
	// Force conv2 of Network 2 to split by shrinking the crossbar, then
	// verify calibration does not reduce bit agreement.
	f := getFixture(t)
	opt := DefaultLayerOptions()
	opt.Model = rram.IdealDeviceModel(4)
	opt.MaxCrossbar = 48 // 36×4 = 144 rows → K = ceil(36/12) = 3
	rng := rand.New(rand.NewSource(6))
	layer, err := NewSEIConvLayer(f.q.ConvMatrix(1), f.q.Thresholds[1], opt, rng)
	if err != nil {
		t.Fatal(err)
	}
	if layer.K != 3 {
		t.Fatalf("K = %d, want 3", layer.K)
	}
	// Collect calibration samples through the design helper.
	d := &SEIDesign{Q: f.q}
	samples := d.collectCalibration(1, f.train.Images[:40], 16, 0, nil)
	if len(samples) == 0 {
		t.Fatal("no calibration samples")
	}
	res, err := layer.Calibrate(samples, DefaultCalibrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("agreement %.4f → %.4f (gamma %.4g, D %d)", res.AgreementBefore, res.AgreementAfter, res.Gamma, res.DigitalThreshold)
	if res.AgreementAfter < res.AgreementBefore {
		t.Fatalf("calibration reduced agreement: %.4f → %.4f", res.AgreementBefore, res.AgreementAfter)
	}
	if res.AgreementAfter < 0.8 {
		t.Fatalf("post-calibration agreement %.4f too low", res.AgreementAfter)
	}
}

func TestCalibrateRejectsBadInput(t *testing.T) {
	f := getFixture(t)
	opt := DefaultLayerOptions()
	opt.MaxCrossbar = 48
	layer, err := NewSEIConvLayer(f.q.ConvMatrix(1), f.q.Thresholds[1], opt, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := layer.Calibrate(nil, DefaultCalibrationConfig()); err == nil {
		t.Fatal("accepted empty samples")
	}
	if _, err := layer.Calibrate([]CalibrationSample{{In: make([]float64, 3), Ref: make([]bool, 8)}}, DefaultCalibrationConfig()); err == nil {
		t.Fatal("accepted wrong-length sample")
	}
	if _, err := layer.Calibrate([]CalibrationSample{{In: make([]float64, 36), Ref: make([]bool, 8)}}, CalibrationConfig{}); err == nil {
		t.Fatal("accepted empty gamma grid")
	}
}

func TestBuildSEIWithDynamicThresholdEndToEnd(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.Layer.Model = rram.DefaultDeviceModel()
	cfg.Layer.MaxCrossbar = 128 // forces conv2 (36×4=144) and FC (800) to split
	cfg.CalibImages = 40
	design, err := BuildSEI(f.q, f.train, cfg, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if design.Convs[0].K < 2 {
		t.Fatalf("conv2 did not split: K=%d", design.Convs[0].K)
	}
	if len(design.CalibResults) == 0 {
		t.Fatal("no calibration results recorded")
	}
	// Splitting a conv layer in natural order is lossy — that is the
	// paper's Section-4.3 observation, and why homogenization exists
	// (Table 4). Here we verify only that the dynamic-threshold
	// calibration does not make things worse than the static split.
	cfgStatic := cfg
	cfgStatic.DynamicThreshold = false
	static, err := BuildSEI(f.q, nil, cfgStatic, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	sub := f.test.Subset(120)
	digitalErr := f.q.ErrorRate(sub)
	staticErr := nn.ClassifierErrorRate(static, sub)
	dynErr := nn.ClassifierErrorRate(design, sub)
	t.Logf("digital %.4f static-split %.4f dynamic-split %.4f", digitalErr, staticErr, dynErr)
	if dynErr > staticErr+0.03 {
		t.Fatalf("dynamic threshold made splitting worse: %.4f vs static %.4f", dynErr, staticErr)
	}
}

func TestSEIDesignPredictInterface(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	design, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	var c nn.Classifier = design
	if got := c.Predict(f.test.Images[0]); got < 0 || got > 9 {
		t.Fatalf("Predict returned %d", got)
	}
}
