// Package cliutil holds the flag handling shared by cmd/seisim and
// cmd/seisweep: the unified -workers validation and the observability
// flag set (-metrics, -trace, -progress, -prom, -pprof) wired to
// internal/obs.
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"time"

	"sei/internal/obs"
	"sei/internal/par"
)

// ErrUsage marks a flag-parsing failure whose message the flag package
// already printed; mains exit 2 without printing it again.
var ErrUsage = errors.New("usage")

// WorkersUsage is the shared -workers help text.
const WorkersUsage = "parallel evaluation workers (0 = all cores, 1 = serial); results are identical for any value"

// CheckWorkers validates a -workers value with the engine's rule and
// wraps the failure in the one actionable message both CLIs print.
func CheckWorkers(workers int) error {
	if err := par.Validate(workers); err != nil {
		return fmt.Errorf("invalid -workers %d: must be 0 (all cores), 1 (serial), or a positive worker count", workers)
	}
	return nil
}

// ObsFlags is the observability flag set shared by the CLIs.
type ObsFlags struct {
	// Metrics is the JSON run-report path ("" = off, "-" = stdout).
	Metrics string
	// Prom is the Prometheus text-format metrics path ("" = off).
	Prom string
	// Trace prints the human-readable span/counter report to stderr.
	Trace bool
	// Progress prints rate-limited progress lines to stderr.
	Progress bool
	// PProf is a listen address (e.g. "localhost:6060") serving
	// net/http/pprof for the duration of the run.
	PProf string
}

// Register installs the observability flags on fs.
func (f *ObsFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Metrics, "metrics", "", "write a JSON run report to this path (\"-\" = stdout)")
	fs.StringVar(&f.Prom, "prom", "", "write Prometheus text-format metrics to this path")
	fs.BoolVar(&f.Trace, "trace", false, "print the span/counter report to stderr when done")
	fs.BoolVar(&f.Progress, "progress", false, "print rate-limited progress lines to stderr")
	fs.StringVar(&f.PProf, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
}

// Enabled reports whether any observability output was requested.
func (f *ObsFlags) Enabled() bool {
	return f.Metrics != "" || f.Prom != "" || f.Trace || f.Progress
}

// Recorder returns a new recorder when any observability output is
// enabled, nil otherwise — so undecorated runs keep the zero-cost
// disabled path. It also starts the pprof server when requested.
func (f *ObsFlags) Recorder() *obs.Recorder {
	if f.PProf != "" {
		go func() {
			if err := http.ListenAndServe(f.PProf, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
	}
	if !f.Enabled() {
		return nil
	}
	rec := obs.New()
	if f.Progress {
		rec.EnableProgress(os.Stderr, 2*time.Second)
	}
	return rec
}

// Finish writes the requested reports from rec. name labels the JSON
// report (typically the experiment or sweep name).
func (f *ObsFlags) Finish(rec *obs.Recorder, name string, stderr io.Writer) error {
	if rec == nil {
		return nil
	}
	if f.Trace {
		rec.WriteText(stderr)
	}
	if f.Metrics == "-" {
		if err := rec.WriteJSON(os.Stdout, name); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	} else if f.Metrics != "" {
		out, err := os.Create(f.Metrics)
		if err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
		if err := rec.WriteJSON(out, name); err != nil {
			out.Close()
			return fmt.Errorf("writing metrics: %w", err)
		}
		if err := out.Close(); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	if f.Prom != "" {
		out, err := os.Create(f.Prom)
		if err != nil {
			return fmt.Errorf("writing prometheus metrics: %w", err)
		}
		rec.WritePrometheus(out)
		if err := out.Close(); err != nil {
			return fmt.Errorf("writing prometheus metrics: %w", err)
		}
	}
	return nil
}
