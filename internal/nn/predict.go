package nn

import (
	"errors"
	"fmt"
	"math"

	"sei/internal/mnist"
	"sei/internal/obs"
	"sei/internal/par"
	"sei/internal/tensor"
)

// ErrBadInput marks a prediction rejected because of a malformed image:
// wrong shape, non-finite pixels, or input-dependent evaluator state
// the layers cannot digest (surfaced as a recovered panic). Callers
// match it with errors.Is and map it to a client error, never a crash.
var ErrBadInput = errors.New("nn: bad input")

// MetricPredictPanics counts evaluator panics contained by the batch
// predict path — each one is a would-have-been process death.
const MetricPredictPanics = "predict_panics"

// SlicedGroupSize is the lane width of the bit-sliced batch path: one
// machine word holds the same activation bit for this many images, so
// full groups of this size go through one packed forward pass.
const SlicedGroupSize = 64

// MetricSlicedGroups counts full 64-image groups classified by one
// bit-sliced pass; MetricSlicedFallbacks counts groups that dropped
// back to per-image prediction (an invalid image in the group, a
// refused kernel, or a contained panic).
const (
	MetricSlicedGroups    = "predict_sliced_groups"
	MetricSlicedFallbacks = "predict_sliced_fallbacks"
)

// SlicedBatchPredictor is a Classifier with a bit-sliced batch kernel:
// PredictBatchSliced classifies up to SlicedGroupSize images in one
// lane-parallel pass, bit-identical to per-image Predict calls, or
// reports false to make the caller fall back per-image. The kernel
// must be safe for concurrent use — eligibility implies a
// deterministic, noise-free evaluator.
type SlicedBatchPredictor interface {
	Classifier
	SlicedBatchEligible() bool
	PredictBatchSliced(imgs []*tensor.Tensor, out []PredictResult) bool
}

// PredictResult is one image's outcome in a batch: a label, or an error
// (in which case Label is -1).
type PredictResult struct {
	Label int
	Err   error
}

// ValidateImage checks that an image is structurally evaluable by the
// paper's networks: non-nil, single-channel Side×Side, with finite
// pixels. Violations return an ErrBadInput-wrapped error. This is the
// gate the serving path applies before an image reaches layer code
// whose shape checks panic.
func ValidateImage(img *tensor.Tensor) error {
	if img == nil {
		return fmt.Errorf("%w: nil image", ErrBadInput)
	}
	// Dimension checks go through Dims/Dim, not Shape(): Shape copies its
	// slice, and this validator runs per image on allocation-free paths.
	if img.Dims() != 3 || img.Dim(0) != 1 || img.Dim(1) != mnist.Side || img.Dim(2) != mnist.Side {
		return fmt.Errorf("%w: image shape %v, want [1 %d %d]", ErrBadInput, img.Shape(), mnist.Side, mnist.Side)
	}
	for i, v := range img.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite pixel %v at index %d", ErrBadInput, v, i)
		}
	}
	return nil
}

// safePredict evaluates one image with panic containment: a malformed
// input is rejected up front, and any panic escaping the layer stack
// (shape checks, index arithmetic on unexpected geometry) comes back as
// an ErrBadInput-wrapped error instead of killing the process.
func safePredict(c Classifier, img *tensor.Tensor, rec *obs.Recorder) (res PredictResult) {
	defer func() {
		if r := recover(); r != nil {
			rec.Counter(MetricPredictPanics).Add(1)
			res = PredictResult{Label: -1, Err: fmt.Errorf("%w: evaluator panic: %v", ErrBadInput, r)}
		}
	}()
	if err := ValidateImage(img); err != nil {
		return PredictResult{Label: -1, Err: err}
	}
	return PredictResult{Label: c.Predict(img)}
}

// Predict classifies one image with validation and panic containment
// (see PredictBatch for the batch form and its determinism contract).
func Predict(c Classifier, img *tensor.Tensor) (int, error) {
	res := safePredict(c, img, nil)
	return res.Label, res.Err
}

// PredictBatch classifies a batch of images on the parallel engine and
// returns one PredictResult per image. It uses the exact chunking and
// per-chunk noise seeding of the error-rate paths, so when imgs is a
// dataset's image slice in dataset order, the labels are bit-identical
// to what ClassifierErrorRate counted — for every worker count and
// batch size. Malformed images and recovered evaluator panics produce
// per-image ErrBadInput errors; valid neighbours in the same batch are
// unaffected.
func PredictBatch(c Classifier, imgs []*tensor.Tensor, workers int) []PredictResult {
	return PredictBatchObs(nil, c, imgs, workers)
}

// PredictBatchObs is PredictBatch with instrumentation: engine
// scheduling counters, the eval_images sharded counter, and
// predict_panics on rec. A nil rec records nothing.
func PredictBatchObs(rec *obs.Recorder, c Classifier, imgs []*tensor.Tensor, workers int) []PredictResult {
	return PredictBatchInto(rec, c, imgs, workers, nil)
}

// PredictBatchInto is PredictBatchObs writing its results into dst,
// which is grown only when its capacity is insufficient — a serving
// loop can reuse one result buffer across flushes instead of
// allocating per batch. Every slot in the returned slice is
// overwritten. Returns dst resliced to len(imgs).
func PredictBatchInto(rec *obs.Recorder, c Classifier, imgs []*tensor.Tensor, workers int, dst []PredictResult) []PredictResult {
	w := evalWorkers(c, workers)
	n := len(imgs)
	if cap(dst) < n {
		dst = make([]PredictResult, n)
	}
	out := dst[:n]
	if sp, ok := c.(SlicedBatchPredictor); ok && n >= SlicedGroupSize && sp.SlicedBatchEligible() {
		predictBatchSliced(rec, sp, imgs, w, out)
		return out
	}
	predictBatchChunked(rec, c, imgs, w, out)
	return out
}

// predictBatchChunked is the per-image engine: fixed-size chunks,
// per-chunk evaluator clones with seeded noise streams — the only
// path noisy designs ever take. Whether a noisy clone then evaluates
// on the float path or the packed non-ideal path (seicore
// fastnoisy.go) is the design's own dispatch decision; the chunk
// boundaries and per-chunk seeds here are what make the two paths
// consume identical noise-stream prefixes at every worker count.
func predictBatchChunked(rec *obs.Recorder, c Classifier, imgs []*tensor.Tensor, workers int, out []PredictResult) {
	n := len(imgs)
	sc := rec.Sharded(MetricEvalImages, par.NumChunks(n, par.DefaultChunkSize))
	par.ForEachChunkRec(rec, workers, n, par.DefaultChunkSize, func(ch par.Chunk) {
		sc.Add(ch.Index, int64(ch.Hi-ch.Lo))
		eval := chunkEvaluator(c, ch)
		for i := ch.Lo; i < ch.Hi; i++ {
			out[i] = safePredict(eval, imgs[i], rec)
		}
	})
	sc.Merge()
}

// predictBatchSliced schedules full SlicedGroupSize-image groups, one
// bit-sliced pass each, and sends the ragged tail through the
// per-image engine. Group boundaries depend only on len(imgs), so
// results are bit-identical for every worker count; eligibility
// implies a noise-free evaluator, so no per-chunk seeding is needed.
func predictBatchSliced(rec *obs.Recorder, sp SlicedBatchPredictor, imgs []*tensor.Tensor, workers int, out []PredictResult) {
	n := len(imgs)
	groups := n / SlicedGroupSize
	if par.Resolve(workers) == 1 || groups == 1 {
		// The serial shape runs inline without the chunk closure — it
		// would heap-escape through ForEachChunk and be the only
		// steady-state allocation of a warm sliced batch.
		par.RecordRegion(rec, groups, 1)
		for g := 0; g < groups; g++ {
			lo := g * SlicedGroupSize
			slicedGroup(rec, sp, imgs[lo:lo+SlicedGroupSize], out[lo:lo+SlicedGroupSize])
		}
	} else {
		par.ForEachChunkRec(rec, workers, groups, 1, func(ch par.Chunk) {
			for g := ch.Lo; g < ch.Hi; g++ {
				lo := g * SlicedGroupSize
				slicedGroup(rec, sp, imgs[lo:lo+SlicedGroupSize], out[lo:lo+SlicedGroupSize])
			}
		})
	}
	if lo := groups * SlicedGroupSize; lo < n {
		predictBatchChunked(rec, sp, imgs[lo:], workers, out[lo:])
	}
}

// slicedGroup classifies one full group with the sliced kernel,
// falling back to per-image prediction — which isolates per-image
// errors exactly like any other batch — when the group contains an
// invalid image or the kernel refuses or panics.
func slicedGroup(rec *obs.Recorder, sp SlicedBatchPredictor, imgs []*tensor.Tensor, out []PredictResult) {
	valid := true
	for _, img := range imgs {
		if ValidateImage(img) != nil {
			valid = false
			break
		}
	}
	if valid && runSlicedGroup(sp, imgs, out) {
		rec.Counter(MetricEvalImages).Add(int64(len(imgs)))
		rec.Counter(MetricSlicedGroups).Add(1)
		return
	}
	rec.Counter(MetricSlicedFallbacks).Add(1)
	rec.Counter(MetricEvalImages).Add(int64(len(imgs)))
	for i, img := range imgs {
		out[i] = safePredict(sp, img, rec)
	}
}

// runSlicedGroup invokes the kernel with panic containment: a panic
// mid-pass reports false (the per-image fallback then overwrites every
// slot and surfaces per-image errors).
func runSlicedGroup(sp SlicedBatchPredictor, imgs []*tensor.Tensor, out []PredictResult) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return sp.PredictBatchSliced(imgs, out)
}
