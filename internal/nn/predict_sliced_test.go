package nn

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"sei/internal/mnist"
	"sei/internal/obs"
	"sei/internal/tensor"
)

// stubSliced is a SlicedBatchPredictor whose sliced kernel delegates
// to a reference network, with injectable refusal and panic behaviour
// — the dispatch layer's contract is tested without a real bit-sliced
// implementation.
type stubSliced struct {
	base     Classifier
	eligible bool
	refuse   bool
	panicky  bool
	groups   atomic.Int64
}

func (s *stubSliced) Predict(img *tensor.Tensor) int { return s.base.Predict(img) }
func (s *stubSliced) SlicedBatchEligible() bool      { return s.eligible }
func (s *stubSliced) PredictBatchSliced(imgs []*tensor.Tensor, out []PredictResult) bool {
	if s.refuse {
		return false
	}
	if s.panicky {
		panic("injected sliced kernel failure")
	}
	s.groups.Add(1)
	for i, img := range imgs {
		out[i] = PredictResult{Label: s.base.Predict(img)}
	}
	return true
}

// referenceLabels is what any dispatch route must produce.
func referenceLabels(t *testing.T, c Classifier, imgs []*tensor.Tensor) []int {
	t.Helper()
	labels := make([]int, len(imgs))
	for i, img := range imgs {
		labels[i] = c.Predict(img)
	}
	return labels
}

func batchLabels(t *testing.T, res []PredictResult) []int {
	t.Helper()
	labels := make([]int, len(res))
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("image %d: %v", i, r.Err)
		}
		labels[i] = r.Label
	}
	return labels
}

// TestSlicedDispatchGroupsAndTail pins the scheduling rule: full
// 64-image groups go through the sliced kernel, the ragged tail
// through the per-image engine, and sub-group batches never touch the
// kernel.
func TestSlicedDispatchGroupsAndTail(t *testing.T) {
	data := mnist.Synthetic(256, 3)
	net := NewTableNetwork(1, 2)
	cases := []struct {
		n, groups int
	}{
		{1, 0}, {63, 0}, {64, 1}, {65, 1}, {128, 2}, {256, 4},
	}
	for _, tc := range cases {
		s := &stubSliced{base: net, eligible: true}
		rec := obs.New()
		imgs := data.Images[:tc.n]
		res := PredictBatchObs(rec, s, imgs, 1)
		if got := batchLabels(t, res); !reflect.DeepEqual(got, referenceLabels(t, net, imgs)) {
			t.Fatalf("n=%d: labels diverge from reference", tc.n)
		}
		counters := rec.CounterValues()
		if got := s.groups.Load(); got != int64(tc.groups) {
			t.Errorf("n=%d: kernel ran %d groups, want %d", tc.n, got, tc.groups)
		}
		if got := counters[MetricSlicedGroups]; got != int64(tc.groups) {
			t.Errorf("n=%d: %s = %d, want %d", tc.n, MetricSlicedGroups, got, tc.groups)
		}
		if got := counters[MetricEvalImages]; got != int64(tc.n) {
			t.Errorf("n=%d: %s = %d, want %d", tc.n, MetricEvalImages, got, tc.n)
		}
	}
}

// TestSlicedDispatchSkipsIneligible pins that an ineligible predictor
// — or one whose kernel refuses the batch — still classifies every
// image through the per-image engine.
func TestSlicedDispatchSkipsIneligible(t *testing.T) {
	data := mnist.Synthetic(64, 4)
	net := NewTableNetwork(1, 2)
	want := referenceLabels(t, net, data.Images)

	ineligible := &stubSliced{base: net, eligible: false}
	rec := obs.New()
	got := batchLabels(t, PredictBatchObs(rec, ineligible, data.Images, 1))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("ineligible predictor labels diverge")
	}
	if ineligible.groups.Load() != 0 || rec.CounterValues()[MetricSlicedGroups] != 0 {
		t.Error("ineligible predictor reached the sliced kernel")
	}

	refusing := &stubSliced{base: net, eligible: true, refuse: true}
	rec = obs.New()
	got = batchLabels(t, PredictBatchObs(rec, refusing, data.Images, 1))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("refused-batch labels diverge")
	}
	counters := rec.CounterValues()
	if counters[MetricSlicedFallbacks] != 1 || counters[MetricSlicedGroups] != 0 {
		t.Errorf("refusal accounting wrong: %v", counters)
	}
	if counters[MetricEvalImages] != 64 {
		t.Errorf("%s = %d, want 64", MetricEvalImages, counters[MetricEvalImages])
	}
}

// TestSlicedGroupFallbackIsolation pins the fallback semantics inside
// one group: an invalid image sends only its own group per-image
// (surfacing a per-image error, leaving neighbours intact) while other
// groups stay sliced; a panicking kernel is contained the same way.
func TestSlicedGroupFallbackIsolation(t *testing.T) {
	data := mnist.Synthetic(128, 5)
	net := NewTableNetwork(1, 2)
	imgs := append([]*tensor.Tensor(nil), data.Images...)
	imgs[7] = tensor.New(2, 2) // poisons group 0 only
	s := &stubSliced{base: net, eligible: true}
	rec := obs.New()
	res := PredictBatchObs(rec, s, imgs, 1)
	for i, r := range res {
		if i == 7 {
			if !errors.Is(r.Err, ErrBadInput) {
				t.Fatalf("bad image err = %v, want ErrBadInput", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("good image %d poisoned: %v", i, r.Err)
		}
		if r.Label != net.Predict(data.Images[i]) {
			t.Fatalf("good image %d label changed", i)
		}
	}
	counters := rec.CounterValues()
	if counters[MetricSlicedGroups] != 1 || counters[MetricSlicedFallbacks] != 1 {
		t.Errorf("group accounting wrong: %v", counters)
	}
	if counters[MetricEvalImages] != int64(len(imgs)) {
		t.Errorf("%s = %d, want %d", MetricEvalImages, counters[MetricEvalImages], len(imgs))
	}

	panicky := &stubSliced{base: net, eligible: true, panicky: true}
	rec = obs.New()
	got := batchLabels(t, PredictBatchObs(rec, panicky, data.Images[:64], 1))
	if !reflect.DeepEqual(got, referenceLabels(t, net, data.Images[:64])) {
		t.Fatal("panicking kernel corrupted results")
	}
	if rec.CounterValues()[MetricSlicedFallbacks] != 1 {
		t.Error("panicking kernel fallback not counted")
	}
}
