package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"sei/internal/load"
	"sei/internal/obs"
	"sei/internal/tensor"
)

// slowClassifier burns a fixed wall time per image — a stand-in for an
// expensive design in saturation tests.
type slowClassifier struct{ perImage time.Duration }

func (s *slowClassifier) Predict(*tensor.Tensor) int {
	time.Sleep(s.perImage)
	return 0
}

// TestBatcherPartialSubmitNoLeak is the regression test for the
// partial-submit leak: a request that cannot fit whole must leave the
// queue untouched — no prefix of its jobs admitted, none of them later
// counted as canceled, no slots burned that other clients were
// rejected for.
func TestBatcherPartialSubmitNoLeak(t *testing.T) {
	f := getFastFixture(t)
	gate := &gatedClassifier{gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	rec := obs.New()
	b, err := NewBatcher(BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond, QueueCap: 4, Workers: 1, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Hold the loop in a flush, then park two single-image predicts in
	// the queue: 2 of 4 slots free.
	results := make(chan error, 3)
	go func() {
		_, err := b.Predict(context.Background(), gate, []*tensor.Tensor{f.data.Images[0]})
		results <- err
	}()
	<-gate.entered
	for i := 1; i <= 2; i++ {
		img := f.data.Images[i]
		go func() {
			_, err := b.Predict(context.Background(), gate, []*tensor.Tensor{img})
			results <- err
		}()
	}
	waitFor(t, func() bool { return b.QueueDepth() == 2 })

	// Three images against two free slots: rejected whole.
	_, err = b.Predict(context.Background(), gate, f.data.Images[3:6])
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("oversized-for-now submit error = %v, want ErrQueueFull", err)
	}
	if got := b.QueueDepth(); got != 2 {
		t.Fatalf("queue depth after rejection = %d, want 2 (rejected request leaked a prefix)", got)
	}
	if got := rec.CounterValues()[MetricQueueFull]; got != 1 {
		t.Fatalf("serve_queue_full = %d, want 1", got)
	}

	close(gate.gate)
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatalf("surviving predict %d failed: %v", i, err)
		}
	}
	// The leak's tell was phantom cancellations: jobs from the rejected
	// request flushing as canceled. None may exist.
	if got := rec.CounterValues()[MetricCanceled]; got != 0 {
		t.Fatalf("serve_canceled = %d, want 0 (rejected request's jobs reached the queue)", got)
	}
}

// TestBatchLargerThanQueueRejectedUpFront pins ErrBatchTooLarge: a
// request that can never fit fails immediately — even against an empty
// queue — and maps to HTTP 413, distinct from 429 backpressure.
func TestBatchLargerThanQueueRejectedUpFront(t *testing.T) {
	f := getFastFixture(t)
	rec := obs.New()
	b, err := NewBatcher(BatcherConfig{MaxBatch: 2, MaxDelay: time.Millisecond, QueueCap: 2, Workers: 1, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	_, err = b.Predict(context.Background(), constClassifier(1), f.data.Images[:3])
	if !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("3 images vs queue of 2: err = %v, want ErrBatchTooLarge", err)
	}
	if got := b.QueueDepth(); got != 0 {
		t.Fatalf("queue depth = %d, want 0", got)
	}
	// Too-large is not backpressure: the queue-full counter stays 0.
	if got := rec.CounterValues()[MetricQueueFull]; got != 0 {
		t.Fatalf("serve_queue_full = %d, want 0 for ErrBatchTooLarge", got)
	}

	reg := NewRegistry("", 0)
	reg.Register("demo", f.net)
	ts, _ := newTestServer(t, reg,
		BatcherConfig{MaxBatch: 2, MaxDelay: time.Millisecond, QueueCap: 2, Workers: 1},
		Options{})
	status, _, err := doPredict(ts.URL, "demo", f.data.Images[:3])
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("HTTP status = %d, want 413", status)
	}
}

// TestFlushLatencyEWMA pins the admission estimator's arithmetic: the
// first observation seeds the EWMA, later ones fold in at ¼ weight.
func TestFlushLatencyEWMA(t *testing.T) {
	b, err := NewBatcher(BatcherConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := b.FlushLatency(); got != 0 {
		t.Fatalf("initial flush latency = %v, want 0", got)
	}
	b.observeFlush(100 * time.Millisecond)
	if got := b.FlushLatency(); got != 100*time.Millisecond {
		t.Fatalf("after first flush = %v, want 100ms", got)
	}
	b.observeFlush(200 * time.Millisecond)
	if got := b.FlushLatency(); got != 125*time.Millisecond {
		t.Fatalf("after second flush = %v, want 125ms ((3·100+200)/4)", got)
	}
}

// TestDeadlineShedding pins deadline-aware admission: once the
// observed flush latency exceeds a request's remaining deadline, the
// request is shed at the door with ErrDeadlineTooTight (HTTP 429)
// instead of burning a queue slot on a guaranteed timeout.
func TestDeadlineShedding(t *testing.T) {
	f := getFastFixture(t)
	rec := obs.New()
	b, err := NewBatcher(BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond, Workers: 1, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Pretend flushes have been taking half a second.
	b.flushNanos.Store(int64(500 * time.Millisecond))

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = b.Predict(ctx, f.net, f.data.Images[:1])
	if !errors.Is(err, ErrDeadlineTooTight) {
		t.Fatalf("50ms deadline vs 500ms flush: err = %v, want ErrDeadlineTooTight", err)
	}
	if got := rec.CounterValues()[MetricDeadlineShed]; got != 1 {
		t.Fatalf("serve_deadline_shed = %d, want 1", got)
	}
	// A deadline with headroom — and a deadline-free request — still
	// pass admission.
	roomy, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if _, err := b.Predict(roomy, f.net, f.data.Images[:1]); err != nil {
		t.Fatalf("roomy deadline rejected: %v", err)
	}
	if _, err := b.Predict(context.Background(), f.net, f.data.Images[:1]); err != nil {
		t.Fatalf("deadline-free request rejected: %v", err)
	}
	if got := rec.CounterValues()[MetricDeadlineShed]; got != 1 {
		t.Fatalf("serve_deadline_shed = %d after admitted requests, want still 1", got)
	}
}

// TestServeDeadlineShedHTTP drives the shed through the HTTP surface:
// server timeout far below the observed flush latency answers 429.
func TestServeDeadlineShedHTTP(t *testing.T) {
	f := getFastFixture(t)
	reg := NewRegistry("", 0)
	reg.Register("demo", f.net)
	rec := obs.New()
	ts, p := newTestServer(t, reg,
		BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond, Workers: 1, Obs: rec},
		Options{Obs: rec, Timeout: 20 * time.Millisecond})
	// Materialize the design's batcher and poison its flush EWMA.
	batcherFor(t, p, "demo").flushNanos.Store(int64(10 * time.Second))

	status, _, err := doPredict(ts.URL, "demo", f.data.Images[:1])
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTooManyRequests {
		t.Fatalf("shed predict status = %d, want 429", status)
	}
	if got := rec.CounterValues()[MetricDeadlineShed]; got != 1 {
		t.Fatalf("serve_deadline_shed = %d, want 1", got)
	}
}

// TestRecordLatencyZeroAllocs pins the histogram-bookkeeping hoist:
// steady-state per-request latency recording must not allocate (the
// bounds slice and histogram are resolved once at construction).
func TestRecordLatencyZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	rec := obs.New()
	s := &server{latency: rec.Histogram(MetricRequestSeconds, obs.LatencyBounds())}
	start := time.Now()
	allocs := testing.AllocsPerRun(200, func() {
		s.recordLatency(start)
	})
	if allocs != 0 {
		t.Fatalf("recordLatency allocates %.1f per request, want 0", allocs)
	}
}

// TestServeSaturationColdDesignUnaffected is the cross-design
// starvation test: one design driven ~2× past its capacity must shed
// on its own queue while a second, cheap design keeps answering with
// zero errors and sane latency — the per-design pool means there is no
// shared queue for the hot design to fill.
func TestServeSaturationColdDesignUnaffected(t *testing.T) {
	f := getFastFixture(t)
	reg := NewRegistry("", 0)
	// Hot design: ~2ms per image, MaxBatch 8, serial → ≈500 images/s
	// capacity. Cold design: the fast fixture network.
	reg.Register("hot", &slowClassifier{perImage: 2 * time.Millisecond})
	reg.Register("cold", f.net)
	rec := obs.New()
	ts, _ := newTestServer(t, reg,
		BatcherConfig{MaxBatch: 8, MaxDelay: time.Millisecond, QueueCap: 16, Workers: 1, Obs: rec},
		Options{Obs: rec})

	// Hot stream: ~1000 rps of single-image predicts — 2× capacity.
	hotDone := make(chan *load.Result, 1)
	hotErr := make(chan error, 1)
	go func() {
		res, err := load.Run(context.Background(), load.Config{
			Rate: 1000, Requests: 300, Seed: 7, MaxInFlight: 64,
		}, func(ctx context.Context, _ int) error {
			status, _, err := doPredict(ts.URL, "hot", f.data.Images[:1])
			if err != nil {
				return err
			}
			if status != http.StatusOK {
				return fmt.Errorf("status %d", status)
			}
			return nil
		})
		hotErr <- err
		hotDone <- res
	}()

	// Meanwhile the cold design answers a steady trickle; every request
	// must succeed promptly.
	var coldMax time.Duration
	for i := 0; i < 40; i++ {
		t0 := time.Now()
		status, pr, err := doPredict(ts.URL, "cold", f.data.Images[i:i+1])
		if err != nil {
			t.Fatalf("cold request %d: %v", i, err)
		}
		if status != http.StatusOK || pr.Results[0].Error != "" {
			t.Fatalf("cold request %d starved: status %d, results %+v", i, status, pr.Results)
		}
		if d := time.Since(t0); d > coldMax {
			coldMax = d
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := <-hotErr; err != nil {
		t.Fatal(err)
	}
	hot := <-hotDone

	// The hot design must actually have been saturated (shed load), or
	// the test proved nothing.
	if hot.Errors == 0 {
		t.Fatalf("hot design shed nothing at 2× capacity (sent %d): saturation never happened", hot.Sent)
	}
	if rec.CounterValues()[MetricQueueFull] == 0 {
		t.Fatal("serve_queue_full = 0 under 2× load")
	}
	// Generous bound — the point is "not starved behind the hot queue",
	// not a latency SLO: a cold predict is microseconds of work, so even
	// a loaded CI box clears 2 s unless it queued behind hot flushes.
	if coldMax > 2*time.Second {
		t.Fatalf("cold design worst latency %v under hot saturation, want < 2s", coldMax)
	}
	if hot.Sent+hot.Dropped+hot.Canceled != 300 {
		t.Fatalf("hot accounting: sent %d + dropped %d + canceled %d != 300", hot.Sent, hot.Dropped, hot.Canceled)
	}
}

// TestPoolShardsPerDesign pins the pool surface itself: one batcher
// per design, lock-free repeat lookups returning the same instance,
// removal tearing the queue down, and close draining everything.
func TestPoolShardsPerDesign(t *testing.T) {
	p, err := NewPool(BatcherConfig{MaxBatch: 2, MaxDelay: time.Millisecond, QueueCap: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := p.For("a")
	if err != nil {
		t.Fatal(err)
	}
	b1, err := p.For("b")
	if err != nil {
		t.Fatal(err)
	}
	if a1 == b1 {
		t.Fatal("two designs share one batcher")
	}
	a2, err := p.For("a")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("repeat lookup built a second batcher")
	}
	if got := p.Size(); got != 2 {
		t.Fatalf("pool size = %d, want 2", got)
	}
	// Concurrent lookups of one new name converge on one batcher.
	const callers = 8
	got := make([]*Batcher, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := p.For("c")
			if err != nil {
				t.Error(err)
			}
			got[i] = b
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent For(\"c\") built distinct batchers")
		}
	}
	p.Remove("a")
	if got := p.Size(); got != 2 {
		t.Fatalf("pool size after remove = %d, want 2", got)
	}
	if _, err := a1.Predict(context.Background(), constClassifier(1), []*tensor.Tensor{tensor.New(1, 1, 1)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("removed design's batcher still accepts: err = %v, want ErrDraining", err)
	}
	// A removed name can come back (re-publish after retire).
	a3, err := p.For("a")
	if err != nil {
		t.Fatal(err)
	}
	if a3 == a1 {
		t.Fatal("revived design reused the closed batcher")
	}
	p.Close()
	if !p.Draining() {
		t.Fatal("pool not draining after Close")
	}
	if _, err := p.For("d"); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-close For error = %v, want ErrDraining", err)
	}
}

// TestPoolPerDesignOverride pins the override contract: a per-design
// config applies on the design's first use, unset fields inherit the
// pool config, other designs are untouched, and the override survives
// the Remove+recreate cycle a design reload/unregister performs.
func TestPoolPerDesignOverride(t *testing.T) {
	p, err := NewPool(BatcherConfig{MaxBatch: 2, MaxDelay: time.Millisecond, QueueCap: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Override("hot", BatcherConfig{MaxBatch: 32, QueueCap: 512}); err != nil {
		t.Fatal(err)
	}
	if err := p.Override("bad", BatcherConfig{Workers: -1}); err == nil {
		t.Fatal("override with invalid workers accepted")
	}
	hot, err := p.For("hot")
	if err != nil {
		t.Fatal(err)
	}
	cfg := hot.Config()
	if cfg.MaxBatch != 32 || cfg.QueueCap != 512 {
		t.Fatalf("override not applied on first use: got MaxBatch=%d QueueCap=%d, want 32/512", cfg.MaxBatch, cfg.QueueCap)
	}
	// Unset override fields inherit the pool config.
	if cfg.MaxDelay != time.Millisecond || cfg.Workers != 1 {
		t.Fatalf("unset fields did not inherit pool config: MaxDelay=%v Workers=%d", cfg.MaxDelay, cfg.Workers)
	}
	cold, err := p.For("cold")
	if err != nil {
		t.Fatal(err)
	}
	if got := cold.Config().MaxBatch; got != 2 {
		t.Fatalf("override leaked onto another design: MaxBatch=%d, want 2", got)
	}
	// Reload/unregister tears the batcher down via Remove; the next use
	// builds a fresh one that must still carry the override.
	p.Remove("hot")
	hot2, err := p.For("hot")
	if err != nil {
		t.Fatal(err)
	}
	if hot2 == hot {
		t.Fatal("Remove did not retire the batcher")
	}
	if got := hot2.Config().MaxBatch; got != 32 {
		t.Fatalf("override lost across Remove/recreate: MaxBatch=%d, want 32", got)
	}
}
