// Package obs is the repository's instrumentation layer: hierarchical
// phase spans, typed counters/gauges/histograms for simulator-level
// hardware events, and exporters for text, JSON run reports and
// Prometheus text format. It is zero-dependency (stdlib only) and
// race-safe: counters, gauges and histogram buckets are atomic, the
// span tree and skip list are mutex-guarded.
//
// Determinism contract (see DESIGN.md §9): every quantity recorded on a
// hot path is an integer event count whose total depends only on the
// work performed, never on scheduling. Counters incremented from
// parallel chunk bodies either use commutative atomic adds or the
// per-chunk ShardedCounter, whose shards merge strictly in chunk-index
// order. Spans call time.Now only in serial orchestration code — never
// inside chunk bodies — so instrumented runs stay bit-identical for
// every worker count; wall time appears only in the report, not in any
// computed result.
//
// A nil *Recorder is valid everywhere and disables everything: every
// method on a nil Recorder (and on the nil Counter/Gauge/Histogram/
// Span/HW values it hands out) is a no-op, so the hot-path cost of
// disabled instrumentation is one nil check per event.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder owns one run's instrumentation state. Create with New; a
// nil Recorder disables all recording at near-zero cost.
type Recorder struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	root     *Span
	cur      *Span
	skipped  []Skipped
	hw       *HW
	progress *progressSink
	start    time.Time
	now      func() time.Time // test hook; defaults to time.Now
}

// New returns an empty recorder whose clock starts now.
func New() *Recorder {
	r := &Recorder{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		now:      time.Now,
	}
	r.start = r.now()
	r.root = &Span{rec: r, Name: "run", start: r.start}
	r.cur = r.root
	r.hw = newHW(r)
	return r
}

// Counter returns the named monotonic counter, creating it on first
// use. A nil recorder returns a nil counter, whose Add is a no-op.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counterLocked(name)
}

func (r *Recorder) counterLocked(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named last-value gauge, creating it on first use.
// Gauges are for serial orchestration state (worker count, dataset
// sizes) — they are last-write-wins and must not be set from chunk
// bodies.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending upper bucket bounds on first use (an implicit +Inf bucket
// is appended). Later calls ignore bounds and return the existing
// histogram.
func (r *Recorder) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HW returns the pre-resolved hardware-event counter bundle, so hot
// paths pay a single nil check per event instead of a map lookup. A
// nil recorder returns a nil bundle, whose methods are no-ops.
func (r *Recorder) HW() *HW {
	if r == nil {
		return nil
	}
	return r.hw
}

// Skipped is one sweep point that produced no row, with the reason.
type Skipped struct {
	Point  string `json:"point"`
	Reason string `json:"reason"`
}

// Skip records a skipped sweep point (and counts it under the
// "sweep_skipped_points" counter) so thinner-than-expected tables are
// explained in the run report instead of only on stderr.
func (r *Recorder) Skip(point, reason string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterLocked("sweep_skipped_points").Add(1)
	r.skipped = append(r.skipped, Skipped{Point: point, Reason: reason})
}

// SkippedPoints returns a copy of the recorded skip list.
func (r *Recorder) SkippedPoints() []Skipped {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Skipped(nil), r.skipped...)
}

// CounterValues snapshots every counter. The determinism tests compare
// these maps across worker counts.
func (r *Recorder) CounterValues() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// GaugeValues snapshots every gauge.
func (r *Recorder) GaugeValues() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// sortedNames returns map keys in deterministic order.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Counter is a monotonic event counter. Add is atomic: increments from
// parallel chunk bodies commute, so the total is identical for every
// worker count. A nil Counter ignores Add.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins value, set only from serial orchestration
// code. A nil Gauge ignores Set.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
