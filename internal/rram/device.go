// Package rram is a behavioural simulator of metal-oxide RRAM devices
// and crossbar arrays: the analog matrix-vector-multiplication
// substrate the paper maps CNN layers onto.
//
// It replaces the paper's SPICE-level Verilog-A device model [21] with
// the behaviour that actually drives the accuracy results: discrete
// conductance levels (the paper uses 4-bit devices), finite on/off
// ratio, lognormal programming variation, optional read noise,
// stuck-at faults, and a first-order IR-drop degradation factor.
// MNSIM and NeuroSim take the same behavioural approach.
package rram

import (
	"fmt"
	"math"
	"math/rand"
)

// DeviceModel describes one RRAM cell's programmable behaviour.
type DeviceModel struct {
	// Bits is the programming precision; the device supports 2^Bits
	// conductance levels. The paper's devices are 4-bit ("state-of-the-
	// art RRAM devices can only support 4 to 6 bit of resistance
	// levels" [13]).
	Bits int
	// GOn and GOff are the maximum and minimum conductances in siemens.
	// Defaults follow the HfOx/AlOx literature the paper cites:
	// R_on ≈ 10 kΩ, R_off ≈ 1 MΩ.
	GOn, GOff float64
	// ProgramSigma is the lognormal sigma of programming variation:
	// a programmed conductance g becomes g·exp(σ·N(0,1)), the standard
	// device-variation model [21].
	ProgramSigma float64
	// ReadNoiseSigma is the relative Gaussian noise applied at read
	// time: to each column current (the default), or — with
	// ReadNoisePerCell — to each selected cell's current individually.
	ReadNoiseSigma float64
	// ReadNoisePerCell selects the finer-grained read-noise model: one
	// independent N(0, ReadNoiseSigma²) draw per selected cell, so a
	// column's perturbation is Σ σ·w·g over its active cells instead of
	// one multiplicative σ·g on the summed current. Column sums then
	// concentrate as active-cell counts grow (variance Σw² rather than
	// (Σw)²), matching per-device noise characterization; the default
	// per-column model remains the pessimistic envelope the Table 5
	// experiments use. Ignored when ReadNoiseSigma is zero.
	ReadNoisePerCell bool
	// StuckOnRate and StuckOffRate are the probabilities that a cell is
	// faulty and reads as GOn or GOff regardless of programming.
	StuckOnRate, StuckOffRate float64
	// IRDropAlpha is a first-order IR-drop degradation coefficient: the
	// column current is scaled by 1 − α·(activeRows/512), modelling the
	// wire-resistance loss that limits crossbars to 512×512 [15].
	// Zero disables the effect.
	IRDropAlpha float64
	// IVNonlinearity is the read voltage expressed in units of the
	// device's sinh-conduction scale V₀ (see iv.go). Zero selects ideal
	// linear conduction.
	IVNonlinearity float64
}

// DefaultDeviceModel returns the paper's experimental device: 4-bit
// precision with mild programming variation and no injected faults.
func DefaultDeviceModel() DeviceModel {
	return DeviceModel{
		Bits:           4,
		GOn:            100e-6, // 10 kΩ
		GOff:           1e-6,   // 1 MΩ
		ProgramSigma:   0.02,
		ReadNoiseSigma: 0,
		IRDropAlpha:    0,
	}
}

// IdealDeviceModel returns a noiseless, fault-free device, used by
// equivalence tests between hardware and digital paths.
func IdealDeviceModel(bits int) DeviceModel {
	return DeviceModel{Bits: bits, GOn: 100e-6, GOff: 1e-6}
}

// Validate checks the model's physical consistency.
func (m DeviceModel) Validate() error {
	if m.Bits < 1 || m.Bits > 8 {
		return fmt.Errorf("rram: device bits %d outside [1,8]", m.Bits)
	}
	if m.GOn <= m.GOff || m.GOff < 0 {
		return fmt.Errorf("rram: conductance range [%g,%g] invalid", m.GOff, m.GOn)
	}
	if m.ProgramSigma < 0 || m.ReadNoiseSigma < 0 {
		return fmt.Errorf("rram: negative noise sigma")
	}
	if m.StuckOnRate < 0 || m.StuckOffRate < 0 || m.StuckOnRate+m.StuckOffRate > 1 {
		return fmt.Errorf("rram: stuck rates %g/%g invalid", m.StuckOnRate, m.StuckOffRate)
	}
	if m.IRDropAlpha < 0 || m.IRDropAlpha >= 1 {
		return fmt.Errorf("rram: IR-drop alpha %g outside [0,1)", m.IRDropAlpha)
	}
	if m.IVNonlinearity < 0 {
		return fmt.Errorf("rram: IV nonlinearity %g negative", m.IVNonlinearity)
	}
	return nil
}

// Levels returns the number of programmable conductance levels.
func (m DeviceModel) Levels() int { return 1 << m.Bits }

// MaxLevel returns the highest programmable level index.
func (m DeviceModel) MaxLevel() int { return m.Levels() - 1 }

// LevelConductance returns the nominal conductance of a level, spacing
// levels linearly between GOff and GOn (linear-G tuning, as in the
// paper's reference [13]).
func (m DeviceModel) LevelConductance(level int) float64 {
	if level < 0 || level > m.MaxLevel() {
		panic(fmt.Sprintf("rram: level %d outside [0,%d]", level, m.MaxLevel()))
	}
	return m.GOff + float64(level)/float64(m.MaxLevel())*(m.GOn-m.GOff)
}

// QuantizeToLevel maps a normalized weight in [0,1] to the nearest
// level index. Out-of-range values clamp to the nearest level; NaN
// (which compares false against both clamp bounds and would otherwise
// flow through math.Round into an out-of-range level) programs the
// lowest level, the same cell state an unprogrammed device holds.
func (m DeviceModel) QuantizeToLevel(v float64) int {
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return int(math.Round(v * float64(m.MaxLevel())))
}

// ProgramConductance returns the conductance a cell actually holds
// after programming the given level: the nominal value perturbed by
// lognormal variation and possibly replaced by a stuck fault.
func (m DeviceModel) ProgramConductance(level int, rng *rand.Rand) float64 {
	if m.StuckOnRate > 0 || m.StuckOffRate > 0 {
		r := rng.Float64()
		if r < m.StuckOnRate {
			return m.GOn
		}
		if r < m.StuckOnRate+m.StuckOffRate {
			return m.GOff
		}
	}
	g := m.LevelConductance(level)
	if m.ProgramSigma > 0 {
		g *= math.Exp(m.ProgramSigma * rng.NormFloat64())
	}
	// A device cannot hold conductance outside its physical range.
	if g > m.GOn*1.5 {
		g = m.GOn * 1.5
	}
	if g < m.GOff*0.5 {
		g = m.GOff * 0.5
	}
	return g
}
