package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"sei/internal/cliutil"
	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/quant"
	"sei/internal/seicore"
	"sei/internal/serve"
)

func TestParseFlags(t *testing.T) {
	if _, err := parseFlags([]string{"-demo", "-workers", "4"}, io.Discard); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if _, err := parseFlags([]string{"-h"}, io.Discard); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: err = %v, want flag.ErrHelp", err)
	}
	if _, err := parseFlags([]string{"-nope"}, io.Discard); !errors.Is(err, cliutil.ErrUsage) {
		t.Fatalf("unknown flag: err = %v, want ErrUsage", err)
	}
	if _, err := parseFlags([]string{"-demo", "-workers", "-3"}, io.Discard); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := parseFlags(nil, io.Discard); err == nil {
		t.Fatal("empty registry (no -designs, no -demo) accepted")
	}
}

// TestServeSmokeSIGTERM is the end-to-end smoke test: start the
// service on an ephemeral port, predict against the demo classifier,
// verify labels match the offline classifier bit-for-bit, then SIGTERM
// the process and require a clean drain.
func TestServeSmokeSIGTERM(t *testing.T) {
	opt, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-demo", "-max-delay", "1ms", "-drain", "5s"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	readyc := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(opt, io.Discard, func(addr string) { readyc <- addr })
	}()
	var addr string
	select {
	case addr = <-readyc:
	case err := <-runErr:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("service not ready in 30s")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	// Predict ten images and compare with the identically seeded
	// offline classifier.
	offline := buildDemo(opt.seed)
	data := mnist.Synthetic(10, 77)
	var req struct {
		Design string      `json:"design"`
		Images [][]float64 `json:"images"`
	}
	req.Design = "demo"
	for _, img := range data.Images {
		req.Images = append(req.Images, img.Data())
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	presp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Results []struct {
			Label int    `json:"label"`
			Error string `json:"error"`
		} `json:"results"`
	}
	err = json.NewDecoder(presp.Body).Decode(&out)
	presp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d", presp.StatusCode)
	}
	if len(out.Results) != data.Len() {
		t.Fatalf("got %d results, want %d", len(out.Results), data.Len())
	}
	for i, r := range out.Results {
		if r.Error != "" {
			t.Fatalf("image %d: %s", i, r.Error)
		}
		if want := offline.Predict(data.Images[i]); r.Label != want {
			t.Fatalf("image %d: served %d, offline %d", i, r.Label, want)
		}
	}

	// A malformed request must not kill the service.
	bresp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader([]byte(`{broken`)))
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed predict: status %d, want 400", bresp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("service did not drain within 15s of SIGTERM")
	}
}

// liveGenerations reads one design's live generation list from
// GET /v1/designs.
func liveGenerations(t *testing.T, base, name string) []int {
	t.Helper()
	resp, err := http.Get(base + "/v1/designs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Live []struct {
			Name        string `json:"name"`
			Generations []int  `json:"generations"`
		} `json:"live"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	for _, d := range out.Live {
		if d.Name == name {
			return d.Generations
		}
	}
	return nil
}

// TestServeSmokeSIGHUPAndAdminReload exercises the live-reload surface
// end to end against a running service: SIGHUP republishes the
// disk-backed design as a new generation without interrupting traffic,
// the admin endpoints start and promote a canary, and the service
// drains cleanly afterwards.
func TestServeSmokeSIGHUPAndAdminReload(t *testing.T) {
	// One small real design on disk.
	train, test := mnist.SyntheticSplit(300, 20, 5)
	net := nn.NewTableNetwork(1, 3)
	tcfg := nn.DefaultTrainConfig()
	tcfg.Epochs = 1
	nn.Train(net, train, tcfg)
	qcfg := quant.DefaultSearchConfig()
	qcfg.Samples = 100
	q, _, err := quant.QuantizeNetwork(net, train, []int{1, 28, 28}, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := seicore.DefaultSEIBuildConfig()
	bcfg.DynamicThreshold = false
	design, err := seicore.BuildSEI(q, nil, bcfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := design.SaveFile(filepath.Join(dir, "net"+serve.DesignExt)); err != nil {
		t.Fatal(err)
	}

	opt, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-designs", dir, "-max-delay", "1ms", "-drain", "5s"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	readyc := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(opt, io.Discard, func(addr string) { readyc <- addr })
	}()
	var addr string
	select {
	case addr = <-readyc:
	case err := <-runErr:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("service not ready in 30s")
	}
	base := "http://" + addr

	predict := func(wantLabels bool) int {
		t.Helper()
		var req struct {
			Design string      `json:"design"`
			Images [][]float64 `json:"images"`
		}
		req.Design = "net"
		for _, img := range test.Images[:4] {
			req.Images = append(req.Images, img.Data())
		}
		body, _ := json.Marshal(req)
		resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Generation int `json:"generation"`
			Results    []struct {
				Label int    `json:"label"`
				Error string `json:"error"`
			} `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict: status %d", resp.StatusCode)
		}
		if wantLabels {
			for i, r := range out.Results {
				if r.Error != "" {
					t.Fatalf("image %d: %s", i, r.Error)
				}
				if want := design.Predict(test.Images[i]); r.Label != want {
					t.Fatalf("image %d: served %d, offline %d", i, r.Label, want)
				}
			}
		}
		return out.Generation
	}

	// Cold-load generation 1 and check bit-identity.
	if gen := predict(true); gen != 1 {
		t.Fatalf("initial predict generation = %d, want 1", gen)
	}

	// SIGHUP: the disk-backed design republishes as generation 2.
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		gens := liveGenerations(t, base, "net")
		if len(gens) == 1 && gens[0] == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("generations after SIGHUP = %v, want [2]", gens)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if gen := predict(true); gen != 2 {
		t.Fatalf("post-SIGHUP predict generation = %d, want 2", gen)
	}

	// Admin reload as a canary, then promote it.
	resp, err := http.Post(base+"/v1/admin/reload?design=net&canary=0.5", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin reload: status %d", resp.StatusCode)
	}
	if gens := liveGenerations(t, base, "net"); len(gens) != 2 || gens[0] != 2 || gens[1] != 3 {
		t.Fatalf("generations after canary reload = %v, want [2 3]", gens)
	}
	resp, err = http.Post(base+"/v1/admin/canary?design=net&weight=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
	if gens := liveGenerations(t, base, "net"); len(gens) != 1 || gens[0] != 3 {
		t.Fatalf("generations after promote = %v, want [3]", gens)
	}
	if gen := predict(true); gen != 3 {
		t.Fatalf("post-promote predict generation = %d, want 3", gen)
	}

	// Health stayed green through every swap; then drain.
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after reloads: status %d", hresp.StatusCode)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("service did not drain within 15s of SIGTERM")
	}
}
