package vecf

import "math/bits"

// The runtime activation-bound decision kernel shared by the per-image
// and bit-sliced SEI fast paths (seicore/bounds.go). Both engines call
// this one function with the same partial sums, suffix tables and
// slack, so a column decides at exactly the same scan point on either
// path — the property the bounded-mode counter-parity contract rests
// on. Pure Go on every architecture: the kernel is a short masked
// reduction over at most 64 columns, not a lane-dense hot loop.

// BoundCols evaluates the early-termination bound for every column
// whose bit is set in undecided, over one crossbar block's partial
// column sums. For column c it computes the float-safety slack
//
//	slack = slackU · (|acc[c]| + sufAbs[c])
//
// and decides
//
//	emit 0  when  acc[c] + sufPos[c] + slack ≤ ref   (can never fire)
//	emit 1  when  acc[c] + sufNeg[c] − slack  > ref   (must fire)
//
// where sufPos/sufNeg bound the best/worst remaining contribution of
// the unscanned rows and slackU absorbs the rounding error of both the
// remaining float accumulation and the table construction (see
// seicore/bounds.go for the derivation). Columns deciding 0 are
// returned in dec0, columns deciding 1 in dec1; bits outside undecided
// are never set. len(sufPos), len(sufNeg) and len(sufAbs) must each be
// at least the index of undecided's highest set bit plus one.
func BoundCols(acc, sufPos, sufNeg, sufAbs []float64, slackU, ref float64, undecided uint64) (dec0, dec1 uint64) {
	for t := undecided; t != 0; t &= t - 1 {
		c := bits.TrailingZeros64(t)
		a := acc[c]
		abs := a
		if abs < 0 {
			abs = -abs
		}
		slack := slackU * (abs + sufAbs[c])
		switch {
		case a+sufPos[c]+slack <= ref:
			dec0 |= 1 << uint(c)
		case a+sufNeg[c]-slack > ref:
			dec1 |= 1 << uint(c)
		}
	}
	return dec0, dec1
}
