package seicore

import (
	"math/rand"

	"sei/internal/nn"
	"sei/internal/par"
)

// The SEI simulators carry mutable state only in their read-noise RNGs
// (l.noise / l.readNoise); everything else an Eval touches is
// read-only. Noise-free designs (the default device model) are
// therefore safe to share across goroutines as-is, and noisy designs
// hand out value clones whose RNGs are re-seeded per chunk so results
// stay bit-identical for every worker count.
//
// The bit-packed fast path adds per-goroutine mutable scratch, but it
// never lives on the shared design: Predict borrows an arena from the
// design's sync.Pool (fast.go), so the chunked engine's workers each
// reuse their own scratch across the images of a chunk — per-position
// allocations are gone and CloneForEval can keep returning the shared
// receiver for noise-free designs.

// evalClone returns a copy sharing the blocks and threshold slices but
// owning its noise source, re-anchored at seed: a fresh per-column RNG
// or a fresh per-cell stream, whichever the layer carries. Noise-free
// layers clone with both sources nil.
func (l *SEIConvLayer) evalClone(seed int64) *SEIConvLayer {
	clone := *l
	if l.noise != nil {
		clone.noise = rand.New(rand.NewSource(seed))
	}
	if l.cells != nil {
		clone.cells = newNoiseStream(seed)
	}
	return &clone
}

// evalClone returns a copy sharing the blocks but owning its noise
// source (see SEIConvLayer.evalClone).
func (l *SEIFCLayer) evalClone(seed int64) *SEIFCLayer {
	clone := *l
	if l.noise != nil {
		clone.noise = rand.New(rand.NewSource(seed))
	}
	if l.cells != nil {
		clone.cells = newNoiseStream(seed)
	}
	return &clone
}

// evalClone returns a copy sharing the effective weights but owning
// its noise source (see SEIConvLayer.evalClone).
func (l *MergedLayer) evalClone(seed int64) *MergedLayer {
	clone := *l
	if l.readNoise != nil {
		clone.readNoise = rand.New(rand.NewSource(seed))
	}
	if l.cells != nil {
		clone.cells = newNoiseStream(seed)
	}
	return &clone
}

// noisy reports whether any layer of the design draws read noise.
func (d *SEIDesign) noisy() bool {
	if d.Input.readNoise != nil || d.Input.cells != nil {
		return true
	}
	for _, l := range d.Convs {
		if l.noise != nil || l.cells != nil {
			return true
		}
	}
	return d.FC.noise != nil || d.FC.cells != nil
}

// layerSeed derives layer idx's noise-source seed for one evaluation
// clone. The per-column RNG built on it (rand.New(rand.NewSource)) is
// exactly the stream the pre-per-cell code derived, so existing noisy
// evaluations reproduce bit for bit.
func layerSeed(seed int64, idx int) int64 {
	return par.ChunkSeed(seed, idx)
}

// layerRNG is layerSeed materialized as a per-column RNG — the load
// path's anchor for snapshot designs (io.go).
func layerRNG(seed int64, idx int) *rand.Rand {
	return rand.New(rand.NewSource(layerSeed(seed, idx)))
}

// CloneForEval implements nn.ParallelClassifier. Noise-free designs
// are read-only under Predict and return the receiver; noisy designs
// return a clone whose per-layer noise streams are re-seeded from
// seed, so evaluation is deterministic for every worker count.
func (d *SEIDesign) CloneForEval(seed int64) nn.Classifier {
	if !d.noisy() {
		return d
	}
	clone := *d
	idx := 0
	if d.Input.readNoise != nil || d.Input.cells != nil {
		clone.Input = d.Input.evalClone(layerSeed(seed, idx))
	}
	idx++
	clone.Convs = make([]*SEIConvLayer, len(d.Convs))
	for i, l := range d.Convs {
		if l.noise != nil || l.cells != nil {
			clone.Convs[i] = l.evalClone(layerSeed(seed, idx+i))
		} else {
			clone.Convs[i] = l
		}
	}
	idx += len(d.Convs)
	if d.FC.noise != nil || d.FC.cells != nil {
		clone.FC = d.FC.evalClone(layerSeed(seed, idx))
	}
	return &clone
}

// CloneForEval implements nn.ParallelClassifier (see SEIDesign).
func (d *MergedDesign) CloneForEval(seed int64) nn.Classifier {
	noisy := d.FC.readNoise != nil || d.FC.cells != nil
	for _, l := range d.Stages {
		noisy = noisy || l.readNoise != nil || l.cells != nil
	}
	if !noisy {
		return d
	}
	clone := *d
	clone.Stages = make([]*MergedLayer, len(d.Stages))
	for i, l := range d.Stages {
		if l.readNoise != nil || l.cells != nil {
			clone.Stages[i] = l.evalClone(layerSeed(seed, i))
		} else {
			clone.Stages[i] = l
		}
	}
	if d.FC.readNoise != nil || d.FC.cells != nil {
		clone.FC = d.FC.evalClone(layerSeed(seed, len(d.Stages)))
	}
	return &clone
}

// CloneForEval implements nn.ParallelClassifier (see SEIDesign).
func (d *FloatDesign) CloneForEval(seed int64) nn.Classifier {
	noisy := d.fc.readNoise != nil || d.fc.cells != nil
	for _, l := range d.conv {
		noisy = noisy || l.readNoise != nil || l.cells != nil
	}
	if !noisy {
		return d
	}
	clone := *d
	clone.conv = make([]*MergedLayer, len(d.conv))
	for i, l := range d.conv {
		if l.readNoise != nil || l.cells != nil {
			clone.conv[i] = l.evalClone(layerSeed(seed, i))
		} else {
			clone.conv[i] = l
		}
	}
	if d.fc.readNoise != nil || d.fc.cells != nil {
		clone.fc = d.fc.evalClone(layerSeed(seed, len(d.conv)))
	}
	return &clone
}

var (
	_ nn.ParallelClassifier = (*SEIDesign)(nil)
	_ nn.ParallelClassifier = (*MergedDesign)(nil)
	_ nn.ParallelClassifier = (*FloatDesign)(nil)
)
