package quant

import (
	"sei/internal/mnist"
	"sei/internal/par"
)

// ActivityFactors measures the mean fraction of active (1) inputs
// entering each mapped layer over a dataset: index 0 is the analog
// input layer (reported as 1.0 — its rows are always driven), indices
// 1..len(Convs)-1 are the binarized conv stages, and the final index
// is the FC stage. The result feeds arch.ApplyActivity, turning the
// Table-1 sparsity observation into a proportional crossbar-energy
// reduction.
func (q *QuantizedNet) ActivityFactors(data *mnist.Dataset) []float64 {
	n := len(q.Convs) + 1
	factors := make([]float64, n)
	factors[0] = 1.0
	if data.Len() == 0 {
		for i := 1; i < n; i++ {
			factors[i] = 1.0
		}
		return factors
	}
	// Per-chunk partial sums folded in chunk order keep the float
	// accumulation bit-identical for every worker count.
	type partial struct{ sums, counts []float64 }
	sums := make([]float64, n)
	counts := make([]float64, n)
	for _, p := range par.MapChunks(0, data.Len(), par.DefaultChunkSize,
		func(c par.Chunk) partial {
			p := partial{sums: make([]float64, n), counts: make([]float64, n)}
			for i := c.Lo; i < c.Hi; i++ {
				acts := q.BinaryActivations(data.Images[i])
				// acts[l] is the map entering conv stage l+1 (or the FC
				// for the last one).
				for l, a := range acts {
					p.sums[l+1] += a.Sum()
					p.counts[l+1] += float64(a.Len())
				}
			}
			return p
		}) {
		for i := 1; i < n; i++ {
			sums[i] += p.sums[i]
			counts[i] += p.counts[i]
		}
	}
	for i := 1; i < n; i++ {
		if counts[i] > 0 {
			factors[i] = sums[i] / counts[i]
		}
		if factors[i] <= 0 {
			// A dead layer would zero the energy model; clamp to a tiny
			// positive activity instead.
			factors[i] = 1e-3
		}
		if factors[i] > 1 {
			factors[i] = 1
		}
	}
	return factors
}
