// Package arch maps a CNN onto one of the paper's three crossbar
// organizations (Table 5) and produces the per-picture usage counts
// and module inventories that package power turns into the Fig.-1
// breakdown, the Table-5 energy/area columns, and the GOPs/J
// efficiency figure.
//
// Accounting model (DESIGN.md §2 records the assumptions):
//   - DAC conversions happen per crossbar row per evaluation: each of
//     a layer's N rows is re-driven for every output position, so an
//     analog-input layer costs Uses·N conversions per picture. With
//     the calibrated library this reproduces the paper's "input layer
//     DACs cost about 3% energy" observation on Network 1.
//   - ADC conversions happen per crossbar column per evaluation: a
//     layer evaluated at `Uses` output positions with R row-blocks and
//     four sign/precision crossbars costs Uses·M·4·R conversions.
//   - The area baseline builds each layer's crossbars once and reuses
//     them across feature-map positions (the paper's area baseline).
package arch

import (
	"fmt"

	"sei/internal/power"
	"sei/internal/quant"
	"sei/internal/rram"
	"sei/internal/seicore"
)

// LayerGeom is the mapping-relevant geometry of one logical layer.
type LayerGeom struct {
	Name string
	// N and M are the logical weight-matrix dimensions (inputs ×
	// outputs), e.g. 300×64 for Network 1's Conv 2.
	N, M int
	// Uses is how many times the matrix is evaluated per picture
	// (output feature-map positions; 1 for FC).
	Uses int
	// UniqueInputs is the number of distinct input values per picture
	// (DAC conversions under sample-and-hold reuse).
	UniqueInputs int
	// OutValues is the number of output values buffered per picture.
	OutValues int
	// InC, InW, KH and PoolSize describe the spatial streaming
	// geometry (input channels and feature-map width, kernel height,
	// pool window) used by the line-buffer sizing; zero for FC layers.
	InC, InW, KH, PoolSize int
	// OutW is the output feature-map width (before pooling).
	OutW int
	// IsFC marks the final classifier layer.
	IsFC bool
}

// LineBufferValues returns how many values the layer needs resident
// when the design streams feature maps through line buffers instead of
// storing them whole — the "register buffer design in Conv layers" the
// paper's Section 6 plans: KH input rows for the sliding window plus
// PoolSize output rows for the pooling reduction.
func (g LayerGeom) LineBufferValues() int {
	if g.IsFC {
		return g.N + g.M // the flattened input vector and the scores
	}
	in := g.InC * g.InW * g.KH
	out := 0
	if g.PoolSize > 1 {
		out = g.M * g.OutW * g.PoolSize
	}
	return in + out
}

// Ops returns the layer's operation count per picture (2 per MAC).
func (g LayerGeom) Ops() int64 {
	return 2 * int64(g.N) * int64(g.M) * int64(g.Uses)
}

// GeometryOf derives the layer geometries of a quantized network.
func GeometryOf(q *quant.QuantizedNet) ([]LayerGeom, error) {
	if len(q.InShape) != 3 {
		return nil, fmt.Errorf("arch: input shape %v, want 3-D", q.InShape)
	}
	c, h, w := q.InShape[0], q.InShape[1], q.InShape[2]
	var geoms []LayerGeom
	for l := range q.Convs {
		cs := &q.Convs[l]
		kh, kw := cs.W.Dim(2), cs.W.Dim(3)
		outH := (h-kh)/cs.Stride + 1
		outW := (w-kw)/cs.Stride + 1
		if outH <= 0 || outW <= 0 {
			return nil, fmt.Errorf("arch: conv stage %d input %dx%d smaller than kernel", l, h, w)
		}
		g := LayerGeom{
			Name:         fmt.Sprintf("Conv %d", l+1),
			N:            cs.FanIn(),
			M:            cs.Filters(),
			Uses:         outH * outW,
			UniqueInputs: c * h * w,
			OutValues:    cs.Filters() * outH * outW,
			InC:          c,
			InW:          w,
			KH:           kh,
			PoolSize:     cs.PoolSize,
			OutW:         outW,
		}
		geoms = append(geoms, g)
		c, h, w = cs.Filters(), outH, outW
		if cs.PoolSize > 1 {
			h /= cs.PoolSize
			w /= cs.PoolSize
		}
	}
	fcIn := q.FC.W.Dim(1)
	if c*h*w != fcIn {
		return nil, fmt.Errorf("arch: conv stages produce %d values but FC expects %d", c*h*w, fcIn)
	}
	geoms = append(geoms, LayerGeom{
		Name:         "FC",
		N:            fcIn,
		M:            q.FC.W.Dim(0),
		Uses:         1,
		UniqueInputs: fcIn,
		OutValues:    q.FC.W.Dim(0),
		IsFC:         true,
	})
	return geoms, nil
}

// Config selects the hardware organization.
type Config struct {
	Structure   seicore.Structure
	MaxCrossbar int
	// DynamicThreshold adds the SEI dynamic-threshold column (one extra
	// RRAM column per split crossbar).
	DynamicThreshold bool
	// Mode selects the SEI signed-weight realization (cells per
	// weight).
	Mode seicore.SignedMode
	// LineBuffers sizes the inter-layer buffers as streaming line
	// buffers (KH input rows + PoolSize output rows) instead of whole
	// feature maps — the Section-6 "register buffer design". Access
	// counts (energy) are unchanged; only resident capacity (area)
	// shrinks.
	LineBuffers bool
}

// DefaultConfig returns the paper's default setup for a structure.
func DefaultConfig(s seicore.Structure) Config {
	return Config{
		Structure:        s,
		MaxCrossbar:      rram.MaxCrossbarSize,
		DynamicThreshold: s == seicore.StructSEI,
		Mode:             seicore.ModeBipolar,
	}
}

// LayerCost is the mapped cost of one layer.
type LayerCost struct {
	Geom      LayerGeom
	RowBlocks int
	Crossbars int64
	Counts    power.Counts
	Inventory power.Inventory
}

// Mapping is a fully mapped network.
type Mapping struct {
	Config Config
	Layers []LayerCost
}

// Map computes the per-layer costs of the geometry under the given
// organization. The picture fetch (DRAM) is charged to the first
// layer.
func Map(geoms []LayerGeom, cfg Config) (*Mapping, error) {
	if cfg.MaxCrossbar <= 0 || cfg.MaxCrossbar > rram.MaxCrossbarSize {
		return nil, fmt.Errorf("arch: max crossbar size %d outside (0,%d]", cfg.MaxCrossbar, rram.MaxCrossbarSize)
	}
	if len(geoms) == 0 {
		return nil, fmt.Errorf("arch: empty geometry")
	}
	m := &Mapping{Config: cfg}
	for i, g := range geoms {
		var (
			lc  LayerCost
			err error
		)
		switch cfg.Structure {
		case seicore.StructDACADC:
			lc, err = mapMerged(g, cfg, true)
		case seicore.StructOneBitADC:
			lc, err = mapMerged(g, cfg, i == 0)
		case seicore.StructSEI:
			lc, err = mapSEI(g, cfg, i == 0)
		default:
			return nil, fmt.Errorf("arch: unknown structure %v", cfg.Structure)
		}
		if err != nil {
			return nil, fmt.Errorf("arch: layer %s: %w", g.Name, err)
		}
		if i == 0 {
			// Picture fetch from off-chip memory (8-bit pixels).
			lc.Counts.DRAMBytes += int64(g.UniqueInputs)
		}
		m.Layers = append(m.Layers, lc)
	}
	return m, nil
}

// ceilDiv is integer ceiling division.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// mapMerged costs one layer in the ADC-merged organization (Fig. 2b):
// four crossbars per tile (pos/neg × high/low nibble), per-column
// ADCs, digital shift/add/subtract merge. analogInput selects whether
// the layer is fed by DACs (8-bit data) or by 1-bit gates.
func mapMerged(g LayerGeom, cfg Config, analogInput bool) (LayerCost, error) {
	s := cfg.MaxCrossbar
	rB := ceilDiv(g.N, s)
	if g.M > s {
		// Column splitting is free of merging (independent outputs) but
		// still bounded by fabrication; none of the paper's layers hit
		// this, and the counts below scale per output column anyway.
		return LayerCost{}, fmt.Errorf("%d output columns exceed crossbar width %d", g.M, s)
	}
	uses, n, mm := int64(g.Uses), int64(g.N), int64(g.M)
	lc := LayerCost{Geom: g, RowBlocks: rB, Crossbars: int64(4 * rB)}
	c := &lc.Counts
	if analogInput {
		c.DACConversions = uses * n
	}
	c.ADCConversions = uses * mm * 4 * int64(rB)
	c.CellReads = uses * 4 * n * mm
	c.RowDrives = uses * 4 * n
	// Merge per output per use: two shifts (high nibbles ×2⁴), two adds
	// (hi+lo per sign), one subtract (pos − neg), per row-block; plus
	// row-block accumulation and the ReLU/pool compare.
	c.Shifts = uses * mm * 2 * int64(rB)
	c.Adds = uses*mm*(2*int64(rB)+int64(rB-1)) + uses*mm
	c.Subs = uses * mm * int64(rB)
	// The DAC+ADC design buffers 8-bit intermediate data; the quantized
	// designs buffer single bits.
	dataBits := int64(8)
	if cfg.Structure != seicore.StructDACADC {
		dataBits = 1
	}
	c.BufferBytes = ceil64(int64(g.OutValues)*dataBits, 8) * 2 // write + read

	v := &lc.Inventory
	if analogInput {
		v.DACs = n
	}
	v.ADCs = 4 * int64(rB) * mm
	v.Cells = 4 * n * mm
	v.DriverRows = 4 * n
	v.Crossbars = lc.Crossbars
	v.DigitalBlocks = lc.Crossbars
	v.BufferBytes = inventoryBufferBytes(g, cfg, dataBits)
	return lc, nil
}

// inventoryBufferBytes sizes a layer's resident inter-layer buffer.
func inventoryBufferBytes(g LayerGeom, cfg Config, dataBits int64) int64 {
	values := int64(g.OutValues)
	if cfg.LineBuffers {
		values = int64(g.LineBufferValues())
	}
	return ceil64(values*dataBits, 8)
}

// mapSEI costs one layer in the SEI organization. The input layer
// (inputStage) keeps DACs and analog-merged crossbars but reads out
// through sense amplifiers (its output is immediately binarized);
// deeper conv layers are SEI crossbars with SA readout and digital
// count thresholds; the FC layer is SEI with per-block column ADCs
// whose results are summed digitally for the argmax.
func mapSEI(g LayerGeom, cfg Config, inputStage bool) (LayerCost, error) {
	s := cfg.MaxCrossbar
	cells := cfg.Mode.CellsPerWeight()
	uses, n, mm := int64(g.Uses), int64(g.N), int64(g.M)

	if inputStage && !g.IsFC {
		if g.N > s {
			return LayerCost{}, fmt.Errorf("input layer with %d rows cannot merge analog across row blocks (max %d)", g.N, s)
		}
		lc := LayerCost{Geom: g, RowBlocks: 1, Crossbars: 4}
		c := &lc.Counts
		c.DACConversions = uses * n
		c.SAEvaluations = uses * mm
		c.CellReads = uses * 4 * n * mm
		c.RowDrives = uses * 4 * n
		c.Adds = uses * mm // pool OR tree
		c.BufferBytes = ceil64(int64(g.OutValues), 8) * 2
		v := &lc.Inventory
		v.DACs = n
		v.SAs = mm
		v.Cells = 4 * n * mm
		v.DriverRows = 4 * n
		v.Crossbars = 4
		v.DigitalBlocks = 4 // analog merge network + OR pool
		v.BufferBytes = inventoryBufferBytes(g, cfg, 1)
		return lc, nil
	}

	if g.M+1 > s {
		return LayerCost{}, fmt.Errorf("%d output columns (+ threshold column) exceed crossbar width %d", g.M, s)
	}
	k := seicore.BlocksFor(g.N, cells, s)
	lc := LayerCost{Geom: g, RowBlocks: k, Crossbars: int64(k)}
	c := &lc.Counts
	c.CellReads = uses * int64(cells) * n * mm
	c.RowDrives = uses * int64(cells) * n
	extraCols := int64(0)
	if cfg.DynamicThreshold || cfg.Mode == seicore.ModeUnipolarDynamic {
		extraCols = 1 // the input-selected threshold column
		c.CellReads += uses * int64(cells) * n
	}
	if g.IsFC {
		c.ADCConversions = mm * int64(k)
		c.Adds = mm*int64(k-1) + mm // block accumulation + bias add
	} else {
		c.SAEvaluations = uses * mm * int64(k)
		c.Popcounts = uses * mm
		c.Adds = uses * mm // pool OR tree
	}
	c.BufferBytes = ceil64(int64(g.OutValues), 8) * 2

	v := &lc.Inventory
	v.Cells = int64(cells) * n * (mm + extraCols)
	v.DriverRows = int64(cells) * n
	v.Crossbars = int64(k)
	v.DigitalBlocks = int64(k)
	if g.IsFC {
		v.ADCs = mm * int64(k)
	} else {
		v.SAs = mm * int64(k)
	}
	v.BufferBytes = inventoryBufferBytes(g, cfg, 1)
	return lc, nil
}

// ceil64 is ceiling division for int64.
func ceil64(a, b int64) int64 { return (a + b - 1) / b }

// TotalCounts sums the per-picture usage counts of all layers.
func (m *Mapping) TotalCounts() power.Counts {
	var t power.Counts
	for _, l := range m.Layers {
		t.Add(l.Counts)
	}
	return t
}

// TotalInventory sums the module inventory of all layers.
func (m *Mapping) TotalInventory() power.Inventory {
	var t power.Inventory
	for _, l := range m.Layers {
		t.Add(l.Inventory)
	}
	return t
}

// Energy returns the per-layer and total per-picture energy breakdowns.
func (m *Mapping) Energy(lib power.Library) ([]power.Breakdown, power.Breakdown) {
	var total power.Breakdown
	per := make([]power.Breakdown, len(m.Layers))
	for i, l := range m.Layers {
		per[i] = lib.Energy(l.Counts)
		total.Add(per[i])
	}
	return per, total
}

// Area returns the per-layer and total area breakdowns.
func (m *Mapping) Area(lib power.Library) ([]power.Breakdown, power.Breakdown) {
	var total power.Breakdown
	per := make([]power.Breakdown, len(m.Layers))
	for i, l := range m.Layers {
		per[i] = lib.Area(l.Inventory)
		total.Add(per[i])
	}
	return per, total
}

// Ops returns the network's operation count per picture.
func (m *Mapping) Ops() int64 {
	var t int64
	for _, l := range m.Layers {
		t += l.Geom.Ops()
	}
	return t
}

// Efficiency returns GOPs/J for one picture under the library.
func (m *Mapping) Efficiency(lib power.Library) float64 {
	_, e := m.Energy(lib)
	return power.GOPsPerJoule(m.Ops(), e)
}
