package rram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sei/internal/tensor"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultDeviceModel().Validate(); err != nil {
		t.Fatal(err)
	}
	if DefaultDeviceModel().Levels() != 16 {
		t.Fatalf("default device has %d levels, want 16 (4-bit)", DefaultDeviceModel().Levels())
	}
}

func TestModelValidation(t *testing.T) {
	bad := []DeviceModel{
		{Bits: 0, GOn: 1e-4, GOff: 1e-6},
		{Bits: 9, GOn: 1e-4, GOff: 1e-6},
		{Bits: 4, GOn: 1e-6, GOff: 1e-4}, // inverted range
		{Bits: 4, GOn: 1e-4, GOff: 1e-6, ProgramSigma: -1},
		{Bits: 4, GOn: 1e-4, GOff: 1e-6, StuckOnRate: 0.6, StuckOffRate: 0.6},
		{Bits: 4, GOn: 1e-4, GOff: 1e-6, IRDropAlpha: 1},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("model %d validated but is invalid: %+v", i, m)
		}
	}
}

func TestLevelConductanceMonotone(t *testing.T) {
	m := DefaultDeviceModel()
	prev := -1.0
	for l := 0; l <= m.MaxLevel(); l++ {
		g := m.LevelConductance(l)
		if g <= prev {
			t.Fatalf("conductance not strictly increasing at level %d", l)
		}
		prev = g
	}
	if m.LevelConductance(0) != m.GOff || m.LevelConductance(m.MaxLevel()) != m.GOn {
		t.Fatal("level endpoints do not hit GOff/GOn")
	}
}

func TestLevelConductancePanics(t *testing.T) {
	m := DefaultDeviceModel()
	for _, l := range []int{-1, 16} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LevelConductance(%d) did not panic", l)
				}
			}()
			m.LevelConductance(l)
		}()
	}
}

func TestQuantizeToLevel(t *testing.T) {
	m := DefaultDeviceModel()
	cases := []struct {
		v    float64
		want int
	}{
		{-0.5, 0}, {0, 0}, {1, 15}, {2, 15},
		{0.5, 8}, {1.0 / 15, 1}, {0.49 / 15, 0},
	}
	for _, c := range cases {
		if got := m.QuantizeToLevel(c.v); got != c.want {
			t.Errorf("QuantizeToLevel(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestProgramConductanceVariationStats(t *testing.T) {
	m := DefaultDeviceModel()
	m.ProgramSigma = 0.1
	rng := rand.New(rand.NewSource(1))
	const n = 4000
	sum, sum2 := 0.0, 0.0
	nominal := m.LevelConductance(10)
	for i := 0; i < n; i++ {
		g := m.ProgramConductance(10, rng)
		r := math.Log(g / nominal)
		sum += r
		sum2 += r * r
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean) > 0.01 {
		t.Fatalf("lognormal mean %.4f, want ≈0", mean)
	}
	if std < 0.08 || std > 0.12 {
		t.Fatalf("lognormal std %.4f, want ≈0.1", std)
	}
}

func TestStuckFaultRates(t *testing.T) {
	m := DefaultDeviceModel()
	m.ProgramSigma = 0
	m.StuckOnRate = 0.1
	m.StuckOffRate = 0.2
	rng := rand.New(rand.NewSource(2))
	const n = 10000
	on, off := 0, 0
	for i := 0; i < n; i++ {
		switch g := m.ProgramConductance(8, rng); g {
		case m.GOn:
			on++
		case m.GOff:
			off++
		}
	}
	if fr := float64(on) / n; fr < 0.08 || fr > 0.12 {
		t.Fatalf("stuck-on rate %.3f, want ≈0.1", fr)
	}
	if fr := float64(off) / n; fr < 0.17 || fr > 0.23 {
		t.Fatalf("stuck-off rate %.3f, want ≈0.2", fr)
	}
}

func TestNewCrossbarLimits(t *testing.T) {
	m := DefaultDeviceModel()
	if _, err := NewCrossbar(513, 10, m); err == nil {
		t.Fatal("accepted crossbar beyond fabrication limit")
	}
	if _, err := NewCrossbar(0, 10, m); err == nil {
		t.Fatal("accepted zero-row crossbar")
	}
	if _, err := NewCrossbar(512, 512, m); err != nil {
		t.Fatalf("rejected legal 512×512 crossbar: %v", err)
	}
}

func TestMVMIdealExact(t *testing.T) {
	m := IdealDeviceModel(4)
	m.ProgramSigma = 0
	cb, err := NewCrossbar(3, 2, m)
	if err != nil {
		t.Fatal(err)
	}
	target := tensor.FromSlice([]float64{
		0, 1,
		0.5, 0.25,
		1, 0,
	}, 3, 2)
	rng := rand.New(rand.NewSource(1))
	if err := cb.Program(target, rng); err != nil {
		t.Fatal(err)
	}
	v := []float64{1, 1, 0.5}
	got, err := cb.MVM(v, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Column currents from first principles.
	for k := 0; k < 2; k++ {
		want := 0.0
		for j := 0; j < 3; j++ {
			want += cb.Conductance(j, k) * v[j]
		}
		if math.Abs(got[k]-want) > 1e-18 {
			t.Fatalf("MVM col %d = %g, want %g", k, got[k], want)
		}
	}
}

func TestWeightedSumRecoversIntegers(t *testing.T) {
	// With an ideal device, WeightedSum over binary inputs must return
	// exact integer dot products in level units.
	m := IdealDeviceModel(4)
	cb, _ := NewCrossbar(8, 3, m)
	rng := rand.New(rand.NewSource(3))
	levels := make([]int, 8*3)
	for i := range levels {
		levels[i] = rng.Intn(16)
	}
	if err := cb.ProgramLevels(levels, rng); err != nil {
		t.Fatal(err)
	}
	v := []float64{1, 0, 1, 1, 0, 0, 1, 1}
	got, err := cb.WeightedSum(v, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		want := 0.0
		for j := 0; j < 8; j++ {
			want += v[j] * float64(levels[j*3+k])
		}
		if math.Abs(got[k]-want) > 1e-9 {
			t.Fatalf("WeightedSum col %d = %v, want %v", k, got[k], want)
		}
	}
}

func TestEffectiveWeightsMatchWeightedSum(t *testing.T) {
	m := DefaultDeviceModel() // includes programming variation
	cb, _ := NewCrossbar(10, 4, m)
	rng := rand.New(rand.NewSource(4))
	target := tensor.New(10, 4)
	for i := range target.Data() {
		target.Data()[i] = rng.Float64()
	}
	if err := cb.Program(target, rng); err != nil {
		t.Fatal(err)
	}
	v := make([]float64, 10)
	for i := range v {
		if rng.Float64() < 0.5 {
			v[i] = 1
		}
	}
	direct, err := cb.WeightedSum(v, nil)
	if err != nil {
		t.Fatal(err)
	}
	eff := cb.EffectiveWeights()
	fast := tensor.MatVecT(eff, v)
	for k := range direct {
		if math.Abs(direct[k]-fast[k]) > 1e-9*(1+math.Abs(direct[k])) {
			t.Fatalf("effective-weight fast path diverges at col %d: %v vs %v", k, fast[k], direct[k])
		}
	}
}

func TestProgramShapeMismatch(t *testing.T) {
	cb, _ := NewCrossbar(4, 4, DefaultDeviceModel())
	if err := cb.Program(tensor.New(3, 4), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted wrong target shape")
	}
	if err := cb.ProgramLevels(make([]int, 5), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted wrong level count")
	}
	if err := cb.ProgramLevels(append(make([]int, 15), 99), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted out-of-range level")
	}
}

func TestIRDropReducesCurrent(t *testing.T) {
	m := IdealDeviceModel(4)
	m.IRDropAlpha = 0.2
	cb, _ := NewCrossbar(100, 1, m)
	rng := rand.New(rand.NewSource(5))
	target := tensor.New(100, 1)
	target.Fill(1)
	cb.Program(target, rng)
	v := make([]float64, 100)
	for i := range v {
		v[i] = 1
	}
	dropOut, err := cb.MVM(v, nil)
	if err != nil {
		t.Fatal(err)
	}
	withDrop := dropOut[0]
	m.IRDropAlpha = 0
	cb2, _ := NewCrossbar(100, 1, m)
	cb2.Program(target, rng)
	idealOut, err := cb2.MVM(v, nil)
	if err != nil {
		t.Fatal(err)
	}
	ideal := idealOut[0]
	wantScale := 1 - 0.2*100.0/512
	if math.Abs(withDrop/ideal-wantScale) > 1e-9 {
		t.Fatalf("IR drop scale %v, want %v", withDrop/ideal, wantScale)
	}
}

func TestReadNoisePerturbsButUnbiased(t *testing.T) {
	m := IdealDeviceModel(4)
	m.ReadNoiseSigma = 0.05
	cb, _ := NewCrossbar(4, 1, m)
	rng := rand.New(rand.NewSource(6))
	target := tensor.New(4, 1)
	target.Fill(0.5)
	cb.Program(target, rng)
	v := []float64{1, 1, 1, 1}
	m.ReadNoiseSigma = 0
	cbClean, _ := NewCrossbar(4, 1, m)
	cbClean.Program(target, rng)
	cleanOut, err := cbClean.MVM(v, nil)
	if err != nil {
		t.Fatal(err)
	}
	clean := cleanOut[0]
	sum := 0.0
	const n = 2000
	sawDifferent := false
	for i := 0; i < n; i++ {
		noisy, err := cb.MVM(v, rng)
		if err != nil {
			t.Fatal(err)
		}
		x := noisy[0]
		if x != clean {
			sawDifferent = true
		}
		sum += x
	}
	if !sawDifferent {
		t.Fatal("read noise had no effect")
	}
	if math.Abs(sum/n-clean) > 0.01*clean {
		t.Fatalf("read noise biased: mean %v vs clean %v", sum/n, clean)
	}
}

func TestReadNoiseRequiresRNG(t *testing.T) {
	// Regression: this used to panic mid-read ("read noise requires an
	// rng"), killing any process that evaluated a noisy model without a
	// noise stream. It must surface as an error instead.
	m := IdealDeviceModel(4)
	m.ReadNoiseSigma = 0.1
	cb, _ := NewCrossbar(2, 2, m)
	if _, err := cb.MVM([]float64{1, 1}, nil); err == nil {
		t.Fatal("MVM with read noise and nil rng did not return an error")
	}
	if _, err := cb.WeightedSum([]float64{1, 1}, nil); err == nil {
		t.Fatal("WeightedSum with read noise and nil rng did not return an error")
	}
	if _, err := cb.MVM([]float64{1, 1}, rand.New(rand.NewSource(1))); err != nil {
		t.Fatalf("MVM with an rng failed: %v", err)
	}
}

func TestMVMWrongLengthReturnsError(t *testing.T) {
	cb, _ := NewCrossbar(4, 2, IdealDeviceModel(4))
	if _, err := cb.MVM([]float64{1, 1}, nil); err == nil {
		t.Fatal("MVM accepted an input of the wrong length")
	}
}

func TestQuantizeToLevelNaN(t *testing.T) {
	// Regression: NaN compares false against both clamp bounds, so it
	// used to flow through math.Round into int(NaN) — an out-of-range
	// level that panicked downstream in LevelConductance.
	m := DefaultDeviceModel()
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -3, 7} {
		lvl := m.QuantizeToLevel(v)
		if lvl < 0 || lvl > m.MaxLevel() {
			t.Fatalf("QuantizeToLevel(%v) = %d outside [0,%d]", v, lvl, m.MaxLevel())
		}
		// The level must be programmable without panicking.
		if g := m.LevelConductance(lvl); g < m.GOff || g > m.GOn {
			t.Fatalf("LevelConductance(%d) = %g outside [%g,%g]", lvl, g, m.GOff, m.GOn)
		}
	}
	if got := m.QuantizeToLevel(math.NaN()); got != 0 {
		t.Fatalf("QuantizeToLevel(NaN) = %d, want 0 (the unprogrammed state)", got)
	}
}

func TestProgramNilRNGRejectedWhenStochastic(t *testing.T) {
	m := DefaultDeviceModel() // ProgramSigma > 0
	cb, _ := NewCrossbar(2, 2, m)
	if err := cb.Program(tensor.New(2, 2), nil); err == nil {
		t.Fatal("Program with stochastic model accepted a nil rng")
	}
	if err := cb.ProgramLevels(make([]int, 4), nil); err == nil {
		t.Fatal("ProgramLevels with stochastic model accepted a nil rng")
	}
	// A deterministic model needs no rng at all.
	det, _ := NewCrossbar(2, 2, IdealDeviceModel(4))
	if err := det.Program(tensor.New(2, 2), nil); err != nil {
		t.Fatalf("deterministic Program rejected nil rng: %v", err)
	}
}

func TestQuantizeSymmetric(t *testing.T) {
	w := tensor.FromSlice([]float64{-2, -1, 0, 0.5, 2}, 5)
	q, scale, err := QuantizeSymmetric(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	if q[0] != -127 || q[4] != 127 || q[2] != 0 {
		t.Fatalf("quantized %v", q)
	}
	if math.Abs(scale-2.0/127) > 1e-12 {
		t.Fatalf("scale %v, want %v", scale, 2.0/127)
	}
	// Round-trip error bounded by scale/2.
	for i, v := range w.Data() {
		if math.Abs(float64(q[i])*scale-v) > scale/2+1e-12 {
			t.Fatalf("round-trip error too large at %d", i)
		}
	}
}

func TestQuantizeSymmetricZeroMatrix(t *testing.T) {
	q, scale, err := QuantizeSymmetric(tensor.New(4), 8)
	if err != nil {
		t.Fatal(err)
	}
	if scale != 1 {
		t.Fatalf("zero-matrix scale %v, want 1", scale)
	}
	for _, v := range q {
		if v != 0 {
			t.Fatal("zero matrix quantized to nonzero")
		}
	}
}

func TestQuantizeSymmetricBadBits(t *testing.T) {
	if _, _, err := QuantizeSymmetric(tensor.New(2), 1); err == nil {
		t.Fatal("accepted 1-bit weights")
	}
}

func TestNibblesAndSliceWeight(t *testing.T) {
	hi, lo := Nibbles(0xAB, 4)
	if hi != 0xA || lo != 0xB {
		t.Fatalf("Nibbles(0xAB) = %x,%x", hi, lo)
	}
	ph, pl, nh, nl := SliceWeight(127, 4)
	if ph != 7 || pl != 15 || nh != 0 || nl != 0 {
		t.Fatalf("SliceWeight(127) = %d,%d,%d,%d", ph, pl, nh, nl)
	}
	ph, pl, nh, nl = SliceWeight(-38, 4)
	if ph != 0 || pl != 0 || nh != 2 || nl != 6 {
		t.Fatalf("SliceWeight(-38) = %d,%d,%d,%d", ph, pl, nh, nl)
	}
}

// Property: SliceWeight/ReconstructWeight round-trip for all 8-bit
// signed weights.
func TestSliceWeightRoundTrip(t *testing.T) {
	f := func(q int16) bool {
		v := int(q % 128)
		ph, pl, nh, nl := SliceWeight(v, 4)
		for _, cell := range []int{ph, pl, nh, nl} {
			if cell < 0 || cell > 15 {
				return false
			}
		}
		return ReconstructWeight(ph, pl, nh, nl, 4) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceCount(t *testing.T) {
	cases := []struct{ wb, db, want int }{
		{8, 4, 2}, {8, 2, 4}, {8, 3, 3}, {8, 5, 2}, {8, 8, 1}, {8, 6, 2},
	}
	for _, c := range cases {
		if got := SliceCount(c.wb, c.db); got != c.want {
			t.Errorf("SliceCount(%d,%d) = %d, want %d", c.wb, c.db, got, c.want)
		}
	}
}

// Property: SliceMagnitude digits reconstruct the magnitude and each
// digit fits the device level range, for every device precision.
func TestSliceMagnitudeRoundTrip(t *testing.T) {
	f := func(raw uint8, bitsRaw uint8) bool {
		m := int(raw)
		bits := 2 + int(bitsRaw)%7 // 2..8
		digits := SliceMagnitude(m, 8, bits)
		recon, coeff := 0, 1
		for _, d := range digits {
			if d < 0 || d >= 1<<bits {
				return false
			}
			recon += d * coeff
			coeff <<= bits
		}
		return recon == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceMagnitudePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative magnitude did not panic")
		}
	}()
	SliceMagnitude(-1, 8, 4)
}

func TestReadEnergyCellCount(t *testing.T) {
	cb, _ := NewCrossbar(4, 3, DefaultDeviceModel())
	if got := cb.ReadEnergyCellCount([]float64{1, 0, 0.5, 0}); got != 6 {
		t.Fatalf("ReadEnergyCellCount = %d, want 6", got)
	}
}

func TestProgramDeterministicWithSeed(t *testing.T) {
	m := DefaultDeviceModel()
	target := tensor.New(6, 6)
	for i := range target.Data() {
		target.Data()[i] = float64(i) / 36
	}
	a, _ := NewCrossbar(6, 6, m)
	b, _ := NewCrossbar(6, 6, m)
	a.Program(target, rand.New(rand.NewSource(7)))
	b.Program(target, rand.New(rand.NewSource(7)))
	for j := 0; j < 6; j++ {
		for k := 0; k < 6; k++ {
			if a.Conductance(j, k) != b.Conductance(j, k) {
				t.Fatal("programming is not deterministic under a fixed seed")
			}
		}
	}
}
