package seicore

// The packed non-ideal inference path. PR 4's fast path, PR 6's
// sliced path and PR 9's bounded path all gate on ideal-analog device
// models, so the evaluations that exercise the paper's robustness
// story — read noise, conductance variation, stuck-at faults (Table
// 5, examples/device_faults) — were stuck on the float path. The
// observation that unsticks them: for a *linear* read-out every
// non-ideality the repo models is a separate pass over the ideal
// column sums —
//
//   - conductance variation, stuck faults and level quantization are
//     programming-time effects already folded into the effective
//     weight tables (matrix.go), so sumsBits computes them for free;
//   - IR drop is a per-column scale determined by the active-row
//     count, which sumsBits already returns;
//   - per-column read noise is one multiplicative Gaussian per column
//     current, drawn from the layer's RNG exactly as the float path
//     draws it;
//   - per-cell read noise is a second walk over the same active rows
//     in the same ascending order (noise.go), drawing one length-M
//     block per row from the counter-indexed vecf kernel — the same
//     draws, in the same order, as the float path's walk.
//
// So the packed path computes the binary sums with the existing
// popcount/bitvec machinery and applies the non-ideality afterwards,
// and is bit-identical to the float path in labels, hardware-counter
// totals and RNG consumption (sei_noise_draws) at every worker count
// — pinned end to end by determinism_test.go. Only the sinh I-V
// transfer breaks the separation (it distorts the analog input stage
// before the product), so those designs keep the float path; see
// SEIDesign.Predict for the dispatch and SetNoiseApprox /
// SetBoundedApprox for the two opt-in approximations layered on top.

import (
	"math/bits"

	"sei/internal/bitvec"
	"sei/internal/rram"
	"sei/internal/tensor"
)

// applyAnalogBits is applyAnalog on a packed input window: the same
// effect order (per-cell noise, IR scale, per-column noise), the same
// draws. agg selects the aggregated-variance approximation for the
// per-cell pass; vs is its variance scratch.
func (l *SEIConvLayer) applyAnalogBits(b *seiBlock, in *bitvec.Vec, sums []float64, ones int, g, vs []float64, agg bool) {
	if l.cells != nil {
		if agg {
			l.hw.NoiseDraws(int64(cellNoiseAggregated(l.cells, l.model.ReadNoiseSigma, b, in, sums, g, vs)))
		} else {
			l.hw.NoiseDraws(int64(cellNoiseBits(l.cells, l.model.ReadNoiseSigma, b, in, sums, g)))
		}
	}
	if a := l.model.IRDropAlpha; a > 0 {
		scale := 1 - a*float64(ones*l.Mode.CellsPerWeightFor(l.model.Bits))/float64(rram.MaxCrossbarSize)
		for c := range sums {
			sums[c] *= scale
		}
	}
	if l.noise != nil {
		for c := range sums {
			sums[c] *= 1 + l.model.ReadNoiseSigma*l.noise.NormFloat64()
		}
		l.hw.NoiseDraws(int64(len(sums)))
	}
}

// wordWindowEligible reports whether a conv layer's noisy evaluation
// can run on a single-word window: the receptive field fits in 64
// bits and every block holds a contiguous ascending input range, so
// block-local rows are bit positions and the row walk is a
// TrailingZeros loop. Per-cell noise keeps the bitvec window (its
// draw walk consumes one).
func (l *SEIConvLayer) wordWindowEligible() bool {
	if l.N > 64 || l.cells != nil {
		return false
	}
	for bi := range l.blocks {
		if !l.blocks[bi].contig {
			return false
		}
	}
	return true
}

// gatherWindowWord packs one receptive-field window (fan ≤ 64) into a
// single machine word, in gatherBitWindow's bit order: kernel-row
// segments of the map, concatenated channel-major.
func gatherWindowWord(in *bitvec.Vec, g *stageGeom, oy, ox int) uint64 {
	words := in.Words()
	var win uint64
	di := 0
	for ch := 0; ch < g.inC; ch++ {
		base := ch * g.inH * g.inW
		for ky := 0; ky < g.kh; ky++ {
			src := base + (oy*g.stride+ky)*g.inW + ox*g.stride
			off := uint(src) & 63
			w := words[src>>6] >> off
			if rem := 64 - int(off); rem < g.kw {
				w |= words[(src>>6)+1] << uint(rem)
			}
			win |= (w & (1<<uint(g.kw) - 1)) << uint(di)
			di += g.kw
		}
	}
	return win
}

// evalNoisyCountsWord is evalNoisyCounts over a single-word window:
// each contiguous block selects its rows by mask and walks set bits
// lowest-first — the same ascending local order, sums, draws and
// counters as the bitvec walk, with no window blit and no second
// pass.
func (l *SEIConvLayer) evalNoisyCountsWord(win uint64, fired []int, col, g, vs []float64, agg bool) {
	for c := range fired {
		fired[c] = 0
	}
	m := len(col)
	for bi := range l.blocks {
		b := &l.blocks[bi]
		w := win >> uint(b.inputs[0])
		if n := len(b.inputs); n < 64 {
			w &= 1<<uint(n) - 1
		}
		for c := range col {
			col[c] = 0
		}
		data := b.eff.Data()
		ones := 0
		w0sum := 0.0
		for bs := w; bs != 0; bs &= bs - 1 {
			local := bits.TrailingZeros64(bs)
			ones++
			row := data[local*m : (local+1)*m]
			for c, v := range row {
				col[c] += v
			}
			if b.w0 != nil {
				w0sum += b.w0[local]
			}
		}
		l.hw.ActiveInputs(int64(ones))
		l.applyAnalogBits(b, nil, col, ones, g, vs, agg)
		ref := l.BaseThr[bi] + l.Gamma*(float64(ones)-l.OnesMean[bi]) + w0sum
		for c, s := range col {
			if s > ref {
				fired[c]++
			}
		}
	}
	if h := l.hw; h != nil {
		h.MVM(int64(l.K))
		h.SACompares(int64(l.K * l.M))
		h.ColumnActivations(int64(l.K * l.M))
	}
}

// evalNoisyCounts is the packed twin of the float Eval's non-approx
// body: bit-summed blocks, the non-ideality applied per block, the
// same sense-amp compare, hardware counters recorded at the same
// logical events.
func (l *SEIConvLayer) evalNoisyCounts(in *bitvec.Vec, fired []int, col, g, vs []float64, agg bool) {
	for c := range fired {
		fired[c] = 0
	}
	for bi := range l.blocks {
		b := &l.blocks[bi]
		w0sum, ones := b.sumsBits(in, col)
		l.hw.ActiveInputs(int64(ones))
		l.applyAnalogBits(b, in, col, ones, g, vs, agg)
		ref := l.BaseThr[bi] + l.Gamma*(float64(ones)-l.OnesMean[bi]) + w0sum
		for c, s := range col {
			if s > ref {
				fired[c]++
			}
		}
	}
	if h := l.hw; h != nil {
		h.MVM(int64(l.K))
		h.SACompares(int64(l.K * l.M))
		h.ColumnActivations(int64(l.K * l.M))
	}
}

// evalNoisyInto is the packed twin of the FC Eval: bias copy, block
// order, effect order and the `s − w0sum` accumulation all match, so
// scores are bit-identical.
func (l *SEIFCLayer) evalNoisyInto(in *bitvec.Vec, out, col, g, vs []float64, agg bool) {
	copy(out, l.Bias)
	for bi := range l.blocks {
		b := &l.blocks[bi]
		w0sum, ones := b.sumsBits(in, col)
		l.hw.ActiveInputs(int64(ones))
		w0sum = l.applyAnalogFCBits(b, in, col, w0sum, ones, g, vs, agg)
		for c, s := range col {
			out[c] += s - w0sum
		}
	}
	if h := l.hw; h != nil {
		h.MVM(int64(l.K))
		h.ColumnActivations(int64(l.K * l.M))
	}
}

// applyAnalogFCBits is applyAnalogFC on a packed input window.
func (l *SEIFCLayer) applyAnalogFCBits(b *seiBlock, in *bitvec.Vec, main []float64, w0sum float64, ones int, g, vs []float64, agg bool) float64 {
	if l.cells != nil {
		if agg {
			l.hw.NoiseDraws(int64(cellNoiseAggregated(l.cells, l.model.ReadNoiseSigma, b, in, main, g, vs)))
		} else {
			l.hw.NoiseDraws(int64(cellNoiseBits(l.cells, l.model.ReadNoiseSigma, b, in, main, g)))
		}
	}
	if a := l.model.IRDropAlpha; a > 0 {
		scale := 1 - a*float64(ones*l.Mode.CellsPerWeightFor(l.model.Bits))/float64(rram.MaxCrossbarSize)
		for c := range main {
			main[c] *= scale
		}
		w0sum *= scale
	}
	if l.noise != nil {
		for c := range main {
			main[c] *= 1 + l.model.ReadNoiseSigma*l.noise.NormFloat64()
		}
		l.hw.NoiseDraws(int64(len(main)))
	}
	return w0sum
}

// predictFastNoisy classifies one image on the packed non-ideal path.
// The caller owns s for the duration of the call. Structure mirrors
// predictFast; the only differences are the noisy layer kernels.
func (d *SEIDesign) predictFastNoisy(img *tensor.Tensor, s *seiScratch) int {
	q := d.Q
	agg := d.approxNoise

	// Stage 0 keeps the DAC+ADC organization: float image windows
	// through the merged input layer — with its read noise drawn
	// exactly as the float path draws it — binarized by the stage
	// threshold, pooled into the first packed map. With per-column
	// noise and no instrumentation (the Monte Carlo campaign
	// configuration) the windows are evaluated one output row at a
	// time: each image row is scanned once per (oy, ky) and its
	// nonzero pixels scattered into the strip of per-window column
	// sums, so a pixel is read kh times instead of kh·kw times. For a
	// fixed window ox at stride 1, ascending pixel index means
	// ascending kernel column, so every window still accumulates its
	// contributions in exactly MatVecTInto's (ch, ky, kx) skip-zero
	// order and the sums stay bit-identical; the noise pass then walks
	// the strip in window order, preserving the RNG stream. Otherwise
	// the windows go through the same gather + evalNoisyInto as
	// before, which also records counters and feeds the per-cell walk
	// its input values.
	g := &s.geom[0]
	out := s.cur
	out.Reset(g.filters * g.pooledH * g.pooledW)
	thr := q.Thresholds[0]
	col := s.col[:g.filters]
	data := img.Data()
	if in := d.Input; in.cells == nil && in.hw == nil && g.stride == 1 {
		eff, m := in.eff.Data(), in.M
		sigma, rng := in.model.ReadNoiseSigma, in.readNoise
		strip := s.strip[:g.outW*m]
		for oy := 0; oy < g.outH; oy++ {
			for i := range strip {
				strip[i] = 0
			}
			for ch := 0; ch < g.inC; ch++ {
				base := ch * g.inH * g.inW
				for ky := 0; ky < g.kh; ky++ {
					row := data[base+(oy+ky)*g.inW : base+(oy+ky+1)*g.inW]
					kbase := (ch*g.kh + ky) * g.kw
					for ix, x := range row {
						if x == 0 {
							continue
						}
						lo := ix - g.kw + 1
						if lo < 0 {
							lo = 0
						}
						hi := ix
						if hi >= g.outW {
							hi = g.outW - 1
						}
						for ox := lo; ox <= hi; ox++ {
							w := eff[(kbase+ix-ox)*m : (kbase+ix-ox+1)*m]
							dst := strip[ox*m : ox*m+m]
							for j, v := range w {
								dst[j] += v * x
							}
						}
					}
				}
			}
			for ox := 0; ox < g.outW; ox++ {
				cw := strip[ox*m : ox*m+m]
				if rng != nil {
					for j := range cw {
						cw[j] *= 1 + sigma*rng.NormFloat64()
					}
				}
				for k, v := range cw {
					if v > thr {
						poolSet(out, g, k, oy, ox)
					}
				}
			}
		}
	} else {
		for oy := 0; oy < g.outH; oy++ {
			for ox := 0; ox < g.outW; ox++ {
				gatherFloatWindow(data, g, oy, ox, s.field)
				d.Input.evalNoisyInto(s.field, col, s.gauss)
				for k, v := range col {
					if v > thr {
						poolSet(out, g, k, oy, ox)
					}
				}
			}
		}
	}
	if g.pool > 1 {
		q.CountORPool(int64(g.filters * g.pooledH * g.pooledW))
	}

	// Deeper conv stages: packed windows in, bit sums plus the layer's
	// non-ideality passes, SA threshold counts out, OR-fused pooling.
	for l := 1; l < len(q.Convs); l++ {
		layer := d.Convs[l-1]
		g := &s.geom[l]
		in := s.cur
		out := s.next
		out.Reset(g.filters * g.pooledH * g.pooledW)
		s.win.Reset(g.fan)
		fired := s.fired[:layer.M]
		col := s.col[:layer.M]
		word := layer.wordWindowEligible()
		for oy := 0; oy < g.outH; oy++ {
			for ox := 0; ox < g.outW; ox++ {
				if word {
					layer.evalNoisyCountsWord(gatherWindowWord(in, g, oy, ox), fired, col, s.gauss, s.varsum, agg)
				} else {
					gatherBitWindow(in, g, oy, ox, s.win)
					layer.evalNoisyCounts(s.win, fired, col, s.gauss, s.varsum, agg)
				}
				for k, f := range fired {
					if f >= layer.DigitalThreshold {
						poolSet(out, g, k, oy, ox)
					}
				}
			}
		}
		if g.pool > 1 {
			q.CountORPool(int64(g.filters * g.pooledH * g.pooledW))
		}
		s.cur, s.next = out, in
	}

	// FC stage: the flattened final map is already the packed input.
	d.FC.evalNoisyInto(s.cur, s.scores, s.col[:d.FC.M], s.gauss, s.varsum, agg)
	best, bi := s.scores[0], 0
	for i, v := range s.scores {
		if v > best { // strict >: first maximum wins, as tensor.ArgMax
			best, bi = v, i
		}
	}
	return bi
}
