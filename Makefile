# Standard entry points; `make ci` mirrors .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race bench bench-json bench-quant bench-smoke bench-scaling bench-report vet staticcheck fmt ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over every package, including the shared-design
# concurrency stress test in internal/seicore. The root package's
# end-to-end determinism suite runs several full pipelines; under the
# race detector on few cores that exceeds go test's default 10m
# per-package timeout, so give it headroom.
race:
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Machine-readable record of the inference fast paths. Pure alias for
# the seibench front door: one trend-gated report under bench-reports/
# replaces the retired ad-hoc BENCH_PR*.json flow (the recorded files
# live in bench-reports/history/ and are not regenerated).
bench-json:
	$(GO) run ./cmd/seibench run inference

# Machine-readable record of the calibration fast path, through the
# same seibench front door (search suite: threshold-search ns/op and
# allocs/op land in the report's gated metrics).
bench-quant:
	$(GO) run ./cmd/seibench run search

# One iteration of every benchmark in every package — including the
# quant calibration benches above: a compile-and-run smoke that keeps
# the bench suite from rotting without paying full measurement time.
# CI runs this on every push.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# The observability front door: run every seibench suite (inference,
# search, serve-under-load, counter-derived energy) at full measurement
# time and write bench-reports/<date>-<sha>.json, then diff against the
# previous comparable report. `seibench gate` turns the same diff into
# an exit code; CI runs the quick variant on every push.
bench-report:
	$(GO) run ./cmd/seibench run
	$(GO) run ./cmd/seibench compare

# Parallel-scaling row: the same deterministic workload at 1, 2 and 4
# workers (Workers=0 tracks GOMAXPROCS, which -cpu sets).
bench-scaling:
	$(GO) test -bench='Parallel|Table5' -cpu 1,2,4 -run='^$$' .

vet:
	$(GO) vet ./...

# Runs staticcheck when it is on PATH and is a no-op otherwise, so
# `make ci` works on machines without it while CI (which installs it)
# always gets the full check.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

fmt:
	gofmt -l -w .

# Exactly what the GitHub Actions workflow runs.
ci:
	$(GO) vet ./...
	$(MAKE) staticcheck
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/obs ./internal/par ./internal/serve ./internal/load ./internal/seicore ./internal/nn ./internal/vecf
	$(GO) test -count=1 -run TestServeSmokeSIGTERM ./cmd/seiserve
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/seibench run -quick
	$(GO) run ./cmd/seibench gate -tolerance 10
