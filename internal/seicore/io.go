package seicore

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sei/internal/quant"
	"sei/internal/rram"
	"sei/internal/tensor"
)

// SEIDesign gob serialization. A design is the expensive end of the
// pipeline (training + Algorithm 1 + programming + γ/D calibration),
// and the serving path loads designs from disk, so the snapshot stores
// the *programmed* state — effective weights after device variation,
// calibrated thresholds — not a recipe to rebuild it. A loaded design
// therefore predicts bit-identically to the design that was saved.
//
// Like the nn and quant snapshots, every layer is reduced to flat
// buffers plus integer configuration, keeping files independent of
// internal struct layout.

type blockSnapshot struct {
	Inputs []int
	Eff    []float64 // row-major [len(Inputs), M]
	W0     []float64 // per-local-row dynamic column; nil unless unipolar

	// Runtime activation-bound suffix tables (version 2, bounds.go).
	// Zero/nil on blocks that are not boundable and in version-1 files;
	// initBounds rebuilds absent tables at load, so old snapshots stay
	// loadable and predict identically.
	BndStride int
	BndPos    []float64 // [checkpoints, M] suffix positive sums
	BndNeg    []float64 // [checkpoints, M] suffix negative sums
	BndAbs    []float64 // [checkpoints, M] suffix absolute sums
	BndSlack  []float64 // [checkpoints] float-safety slack factor
}

type seiLayerSnapshot struct {
	N, M, K int
	Mode    int
	Model   rram.DeviceModel
	Blocks  []blockSnapshot

	// Conv-only threshold state; zero-valued for the FC layer.
	Threshold        float64
	BaseThr          []float64
	Gamma            float64
	OnesMean         []float64
	DigitalThreshold int

	// FC-only bias; nil for conv layers.
	Bias []float64
}

type mergedLayerSnapshot struct {
	N, M  int
	Model rram.DeviceModel
	Eff   []float64 // row-major [N, M]
}

type designSnapshot struct {
	Version      int
	Quant        []byte // nested quant.QuantizedNet gob (quant/io.go)
	Input        mergedLayerSnapshot
	Convs        []seiLayerSnapshot
	FC           seiLayerSnapshot
	CalibResults map[int]CalibrationResult
}

// designSnapshotVersion 2 added the per-block bound tables; version-1
// files load unchanged (tables rebuild from the effective weights).
const designSnapshotVersion = 2

func snapshotBlocks(blocks []seiBlock) []blockSnapshot {
	out := make([]blockSnapshot, len(blocks))
	for i, b := range blocks {
		out[i] = blockSnapshot{
			Inputs: append([]int(nil), b.inputs...),
			Eff:    append([]float64(nil), b.eff.Data()...),
		}
		if b.w0 != nil {
			out[i].W0 = append([]float64(nil), b.w0...)
		}
		if b.bnd != nil {
			out[i].BndStride = b.bnd.stride
			out[i].BndPos = append([]float64(nil), b.bnd.sufPos...)
			out[i].BndNeg = append([]float64(nil), b.bnd.sufNeg...)
			out[i].BndAbs = append([]float64(nil), b.bnd.sufAbs...)
			out[i].BndSlack = append([]float64(nil), b.bnd.slackU...)
		}
	}
	return out
}

func restoreBlocks(snaps []blockSnapshot, m int) ([]seiBlock, error) {
	blocks := make([]seiBlock, len(snaps))
	for i, s := range snaps {
		if len(s.Eff) != len(s.Inputs)*m {
			return nil, fmt.Errorf("seicore: block %d has %d effective weights, want %d×%d", i, len(s.Eff), len(s.Inputs), m)
		}
		if s.W0 != nil && len(s.W0) != len(s.Inputs) {
			return nil, fmt.Errorf("seicore: block %d has %d dynamic-column entries, want %d", i, len(s.W0), len(s.Inputs))
		}
		blocks[i] = seiBlock{
			inputs: append([]int(nil), s.Inputs...),
			eff:    tensor.FromSlice(append([]float64(nil), s.Eff...), len(s.Inputs), m),
		}
		if s.W0 != nil {
			blocks[i].w0 = append([]float64(nil), s.W0...)
		}
		if s.BndStride > 0 {
			cb := &colBounds{
				n: len(s.Inputs), m: m, stride: s.BndStride,
				sufPos: append([]float64(nil), s.BndPos...),
				sufNeg: append([]float64(nil), s.BndNeg...),
				sufAbs: append([]float64(nil), s.BndAbs...),
				slackU: append([]float64(nil), s.BndSlack...),
			}
			// A malformed table is dropped, not fatal: initBounds
			// rebuilds it from the effective weights at load.
			if cb.valid(len(s.Inputs), m) {
				blocks[i].bnd = cb
			}
		}
		blocks[i].initFast()
	}
	return blocks, nil
}

// Save serializes the design — programmed effective weights, calibrated
// thresholds and the underlying quantized network — to w.
func (d *SEIDesign) Save(w io.Writer) error {
	var qbuf bytes.Buffer
	if err := d.Q.Save(&qbuf); err != nil {
		return fmt.Errorf("seicore: saving quantized net: %w", err)
	}
	snap := designSnapshot{
		Version: designSnapshotVersion,
		Quant:   qbuf.Bytes(),
		Input: mergedLayerSnapshot{
			N: d.Input.N, M: d.Input.M,
			Model: d.Input.model,
			Eff:   append([]float64(nil), d.Input.eff.Data()...),
		},
		CalibResults: d.CalibResults,
	}
	for _, l := range d.Convs {
		snap.Convs = append(snap.Convs, seiLayerSnapshot{
			N: l.N, M: l.M, K: l.K, Mode: int(l.Mode),
			Model:            l.model,
			Blocks:           snapshotBlocks(l.blocks),
			Threshold:        l.Threshold,
			BaseThr:          append([]float64(nil), l.BaseThr...),
			Gamma:            l.Gamma,
			OnesMean:         append([]float64(nil), l.OnesMean...),
			DigitalThreshold: l.DigitalThreshold,
		})
	}
	snap.FC = seiLayerSnapshot{
		N: d.FC.N, M: d.FC.M, K: d.FC.K, Mode: int(d.FC.Mode),
		Model:  d.FC.model,
		Blocks: snapshotBlocks(d.FC.blocks),
		Bias:   append([]float64(nil), d.FC.Bias...),
	}
	return gob.NewEncoder(w).Encode(snap)
}

// LoadDesign reads a design written by Save. seed re-anchors the read-
// noise streams of layers whose device model has ReadNoiseSigma > 0
// (single-image predicts draw from them; dataset evaluation re-seeds
// per chunk via CloneForEval regardless). Noise-free designs ignore it.
// The loaded design is uninstrumented; attach counters with Instrument.
func LoadDesign(r io.Reader, seed int64) (*SEIDesign, error) {
	var snap designSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("seicore: decoding design: %w", err)
	}
	if snap.Version < 1 || snap.Version > designSnapshotVersion {
		return nil, fmt.Errorf("seicore: unsupported design version %d", snap.Version)
	}
	q, err := quant.Load(bytes.NewReader(snap.Quant))
	if err != nil {
		return nil, fmt.Errorf("seicore: nested quantized net: %w", err)
	}
	if err := snap.Input.Model.Validate(); err != nil {
		return nil, fmt.Errorf("seicore: input stage device: %w", err)
	}
	if len(snap.Input.Eff) != snap.Input.N*snap.Input.M {
		return nil, fmt.Errorf("seicore: input stage has %d effective weights, want %d×%d",
			len(snap.Input.Eff), snap.Input.N, snap.Input.M)
	}
	d := &SEIDesign{Q: q, CalibResults: snap.CalibResults}
	if d.CalibResults == nil {
		d.CalibResults = map[int]CalibrationResult{}
	}
	d.Input = &MergedLayer{
		N: snap.Input.N, M: snap.Input.M,
		model: snap.Input.Model,
		eff:   tensor.FromSlice(append([]float64(nil), snap.Input.Eff...), snap.Input.N, snap.Input.M),
	}
	rngIdx := 0
	if snap.Input.Model.ReadNoiseSigma > 0 {
		if snap.Input.Model.ReadNoisePerCell {
			d.Input.cells = newNoiseStream(layerSeed(seed, rngIdx))
		} else {
			d.Input.readNoise = layerRNG(seed, rngIdx)
		}
	}
	rngIdx++
	for i, ls := range snap.Convs {
		if err := ls.Model.Validate(); err != nil {
			return nil, fmt.Errorf("seicore: conv stage %d device: %w", i+1, err)
		}
		blocks, err := restoreBlocks(ls.Blocks, ls.M)
		if err != nil {
			return nil, fmt.Errorf("seicore: conv stage %d: %w", i+1, err)
		}
		l := &SEIConvLayer{
			N: ls.N, M: ls.M, K: ls.K, Mode: SignedMode(ls.Mode),
			blocks:           blocks,
			model:            ls.Model,
			Threshold:        ls.Threshold,
			BaseThr:          ls.BaseThr,
			Gamma:            ls.Gamma,
			OnesMean:         ls.OnesMean,
			DigitalThreshold: ls.DigitalThreshold,
		}
		if ls.Model.ReadNoiseSigma > 0 {
			if ls.Model.ReadNoisePerCell {
				l.cells = newNoiseStream(layerSeed(seed, rngIdx+i))
			} else {
				l.noise = layerRNG(seed, rngIdx+i)
			}
		}
		d.Convs = append(d.Convs, l)
	}
	rngIdx += len(snap.Convs)
	if err := snap.FC.Model.Validate(); err != nil {
		return nil, fmt.Errorf("seicore: FC stage device: %w", err)
	}
	fcBlocks, err := restoreBlocks(snap.FC.Blocks, snap.FC.M)
	if err != nil {
		return nil, fmt.Errorf("seicore: FC stage: %w", err)
	}
	d.FC = &SEIFCLayer{
		N: snap.FC.N, M: snap.FC.M, K: snap.FC.K, Mode: SignedMode(snap.FC.Mode),
		blocks: fcBlocks,
		model:  snap.FC.Model,
		Bias:   snap.FC.Bias,
	}
	if snap.FC.Model.ReadNoiseSigma > 0 {
		if snap.FC.Model.ReadNoisePerCell {
			d.FC.cells = newNoiseStream(layerSeed(seed, rngIdx))
		} else {
			d.FC.noise = layerRNG(seed, rngIdx)
		}
	}
	// Snapshots store only programmed state; re-derive the fast-path
	// eligibility and scratch arena so a loaded design predicts on the
	// same path (and with the same zero-allocation profile) as the
	// design that was saved.
	d.initFastPath()
	return d, nil
}

// SaveFile writes the design to path, creating parent directories.
func (d *SEIDesign) SaveFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadDesignFile reads a design from path (see LoadDesign).
func LoadDesignFile(path string, seed int64) (*SEIDesign, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadDesign(f, seed)
}
