package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sei/internal/par"
)

// Pool shards the batching layer per design: each design name gets its
// own Batcher (bounded queue + coalescing loop), created on first use
// and torn down on unregister. Independent queues are what keep one
// hot design's saturation from starving every other design — a full
// queue on "hot" rejects only "hot"'s requests.
//
// The lookup path mirrors the registry: an atomically swapped
// copy-on-write map, so resolving a design's batcher on the request
// hot path takes no lock.
type Pool struct {
	cfg BatcherConfig

	byName atomic.Pointer[map[string]*Batcher]

	mu     sync.Mutex // serializes create/remove/close and overrides
	closed bool
	// overrides holds per-design batcher configs set with Override:
	// name → partial config merged over cfg when name's batcher is
	// created. Guarded by mu — overrides are consulted only on the
	// (locked) create path, never per request.
	overrides map[string]BatcherConfig
}

// NewPool validates the shared per-design batcher config and returns
// an empty pool. Every batcher the pool creates uses cfg (including
// its Obs recorder, so counters aggregate across designs on one scrape
// surface).
func NewPool(cfg BatcherConfig) (*Pool, error) {
	if err := par.Validate(cfg.Workers); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	def := DefaultBatcherConfig()
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = def.MaxBatch
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = def.MaxDelay
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = def.QueueCap
	}
	p := &Pool{cfg: cfg}
	m := map[string]*Batcher{}
	p.byName.Store(&m)
	return p, nil
}

// For returns name's batcher, creating it on first use. Fails with
// ErrDraining once Close has begun.
func (p *Pool) For(name string) (*Batcher, error) {
	if b, ok := (*p.byName.Load())[name]; ok {
		return b, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrDraining
	}
	if b, ok := (*p.byName.Load())[name]; ok {
		return b, nil
	}
	b, err := NewBatcher(p.configFor(name))
	if err != nil {
		return nil, err
	}
	p.store(func(m map[string]*Batcher) { m[name] = b })
	return b, nil
}

// Override pins a per-design batcher config for name: a hot design can
// run a deeper queue or larger batches without changing every other
// design's batcher. Zero fields (and a nil Obs) inherit the pool
// config, so an override states only what differs. It applies when
// name's batcher is created — on first use, or on the next use after
// Remove — so an override set before traffic arrives, or re-applied
// around a teardown, takes effect without restarting the pool;
// overrides themselves persist across Remove (and thus across design
// reload/unregister cycles).
func (p *Pool) Override(name string, cfg BatcherConfig) error {
	if err := par.Validate(cfg.Workers); err != nil {
		return fmt.Errorf("serve: override %q: %w", name, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.overrides == nil {
		p.overrides = map[string]BatcherConfig{}
	}
	p.overrides[name] = cfg
	return nil
}

// configFor merges name's override over the pool config. Callers hold
// p.mu.
func (p *Pool) configFor(name string) BatcherConfig {
	cfg := p.cfg
	ov, ok := p.overrides[name]
	if !ok {
		return cfg
	}
	if ov.MaxBatch > 0 {
		cfg.MaxBatch = ov.MaxBatch
	}
	if ov.MaxDelay > 0 {
		cfg.MaxDelay = ov.MaxDelay
	}
	if ov.QueueCap > 0 {
		cfg.QueueCap = ov.QueueCap
	}
	if ov.Workers != 0 {
		cfg.Workers = ov.Workers
	}
	if ov.Obs != nil {
		cfg.Obs = ov.Obs
	}
	return cfg
}

// store publishes a mutated copy of the batcher map. Callers hold p.mu.
func (p *Pool) store(mutate func(map[string]*Batcher)) {
	old := *p.byName.Load()
	next := make(map[string]*Batcher, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	mutate(next)
	p.byName.Store(&next)
}

// Remove tears down name's batcher: it disappears from the pool first
// (new requests for the name create a fresh batcher, or fail if the
// design was unregistered), then its queue drains and its loop exits.
func (p *Pool) Remove(name string) {
	p.mu.Lock()
	b, ok := (*p.byName.Load())[name]
	if ok {
		p.store(func(m map[string]*Batcher) { delete(m, name) })
	}
	p.mu.Unlock()
	if ok {
		b.Close()
	}
}

// Close stops accepting work and drains every batcher. Safe to call
// more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	m := *p.byName.Load()
	p.mu.Unlock()
	for _, b := range m {
		b.Close()
	}
}

// Draining reports whether Close has begun.
func (p *Pool) Draining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// QueueDepth sums pending predicts across every live batcher (for
// health reporting; inherently racy).
func (p *Pool) QueueDepth() int {
	total := 0
	for _, b := range *p.byName.Load() {
		total += b.QueueDepth()
	}
	return total
}

// Size reports how many designs currently have a live batcher.
func (p *Pool) Size() int { return len(*p.byName.Load()) }
