// Package tensor provides a small dense float64 tensor library used by
// every other package in this repository: the CNN framework, the
// quantizer, and the RRAM crossbar simulator.
//
// The package is deliberately minimal — row-major dense storage, a
// handful of linear-algebra kernels (matrix-vector, matrix-matrix,
// im2col) and the statistics helpers needed for the paper's
// data-distribution analysis (Table 1). It has no external
// dependencies.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float64 tensor. The zero value is an
// empty tensor; use New or FromSlice to create a usable one.
type Tensor struct {
	shape  []int
	stride []int
	data   []float64
}

// New returns a zero-filled tensor with the given shape. Every
// dimension must be positive.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	t := &Tensor{
		shape:  append([]int(nil), shape...),
		stride: strides(shape),
		data:   make([]float64, n),
	}
	return t
}

// FromSlice wraps data in a tensor with the given shape. The slice is
// used directly (not copied); len(data) must equal the shape's element
// count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{
		shape:  append([]int(nil), shape...),
		stride: strides(shape),
		data:   data,
	}
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

func strides(shape []int) []int {
	s := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= shape[i]
	}
	return s
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// offset converts a multi-index into a flat offset, panicking on
// rank or bounds mismatch.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off += x * t.stride[i]
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of the same data with a new shape. The
// element counts must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{
		shape:  append([]int(nil), shape...),
		stride: strides(shape),
		data:   t.data,
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Scale multiplies every element by a in place.
func (t *Tensor) Scale(a float64) {
	for i := range t.data {
		t.data[i] *= a
	}
}

// AddInPlace adds o element-wise into t. Shapes must match exactly.
func (t *Tensor) AddInPlace(o *Tensor) {
	t.requireSameShape(o)
	for i, v := range o.data {
		t.data[i] += v
	}
}

// SubInPlace subtracts o element-wise from t.
func (t *Tensor) SubInPlace(o *Tensor) {
	t.requireSameShape(o)
	for i, v := range o.data {
		t.data[i] -= v
	}
}

// AXPY adds a*o into t (t += a*o).
func (t *Tensor) AXPY(a float64, o *Tensor) {
	t.requireSameShape(o)
	for i, v := range o.data {
		t.data[i] += a * v
	}
}

func (t *Tensor) requireSameShape(o *Tensor) {
	if !SameShape(t, o) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.shape, o.shape))
	}
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports whether a and b have the same shape and all
// elements within tol of each other.
func EqualApprox(a, b *Tensor, tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// Max returns the maximum element. It panics on an empty tensor
// (which cannot be constructed through the public API).
func (t *Tensor) Max() float64 {
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element.
func (t *Tensor) Min() float64 {
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.data)) }

// ArgMax returns the flat index of the largest element (first on tie).
func (t *Tensor) ArgMax() int {
	best, bi := t.data[0], 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// String implements fmt.Stringer with a compact shape+stats summary,
// suitable for debugging without dumping large buffers.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v[min=%.4g max=%.4g mean=%.4g]", t.shape, t.Min(), t.Max(), t.Mean())
}
