// Package mnist provides the handwritten-digit workload the paper
// evaluates on (LeCun's MNIST database, 28×28 grayscale, 10 classes).
//
// The offline build environment has no MNIST files, so the package
// ships a deterministic procedural generator (see generator.go) that
// renders stroke-based digit glyphs with random affine distortion,
// stroke jitter and pixel noise. The resulting task has the properties
// the paper's methods depend on: 10-way classification of 28×28
// images whose trained-CNN activations show the long-tail,
// mostly-zero distribution of Table 1. An IDX-format reader
// (idx.go) loads the real database when its files are present, so the
// same pipelines run unchanged on true MNIST.
package mnist

import (
	"fmt"
	"math/rand"

	"sei/internal/tensor"
)

// Side is the image edge length in pixels; images are Side×Side.
const Side = 28

// NumClasses is the number of digit classes.
const NumClasses = 10

// Dataset is a labelled set of single-channel images. Images[i] has
// shape [1, Side, Side] with pixel values in [0, 1].
type Dataset struct {
	Images []*tensor.Tensor
	Labels []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Images) }

// Subset returns a view of the first n samples. n is clamped to the
// dataset length.
func (d *Dataset) Subset(n int) *Dataset {
	if n > d.Len() {
		n = d.Len()
	}
	return &Dataset{Images: d.Images[:n], Labels: d.Labels[:n]}
}

// Shuffle permutes the samples in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(d.Len(), func(i, j int) {
		d.Images[i], d.Images[j] = d.Images[j], d.Images[i]
		d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
	})
}

// Append adds all samples of o to d.
func (d *Dataset) Append(o *Dataset) {
	d.Images = append(d.Images, o.Images...)
	d.Labels = append(d.Labels, o.Labels...)
}

// ClassCounts returns how many samples each label has.
func (d *Dataset) ClassCounts() [NumClasses]int {
	var c [NumClasses]int
	for _, l := range d.Labels {
		c[l]++
	}
	return c
}

// Validate checks the structural invariants of the dataset: matching
// image/label counts, correct image shapes, labels in range, and pixel
// values in [0, 1]. It returns the first violation found.
func (d *Dataset) Validate() error {
	if len(d.Images) != len(d.Labels) {
		return fmt.Errorf("mnist: %d images but %d labels", len(d.Images), len(d.Labels))
	}
	for i, img := range d.Images {
		s := img.Shape()
		if len(s) != 3 || s[0] != 1 || s[1] != Side || s[2] != Side {
			return fmt.Errorf("mnist: image %d has shape %v, want [1 %d %d]", i, s, Side, Side)
		}
		if d.Labels[i] < 0 || d.Labels[i] >= NumClasses {
			return fmt.Errorf("mnist: label %d out of range: %d", i, d.Labels[i])
		}
		if img.Min() < 0 || img.Max() > 1 {
			return fmt.Errorf("mnist: image %d pixels outside [0,1]: min=%g max=%g", i, img.Min(), img.Max())
		}
	}
	return nil
}
