package sei

import (
	"errors"
	"testing"

	"sei/internal/tensor"
)

func TestPredictBatchBitIdenticalToEvaluateDesign(t *testing.T) {
	q, train, test := designFix(t)
	d, err := BuildDesign(q, train, DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	offline := EvaluateDesign(d, test)
	for _, workers := range []int{1, 2, 8} {
		res, err := PredictBatch(d, test.Images, workers)
		if err != nil {
			t.Fatal(err)
		}
		wrong := 0
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("workers=%d image %d: %v", workers, i, r.Err)
			}
			if r.Label != test.Labels[i] {
				wrong++
			}
		}
		if got := float64(wrong) / float64(test.Len()); got != offline {
			t.Fatalf("workers=%d: batch error rate %v != offline %v", workers, got, offline)
		}
	}
	if _, err := PredictBatch(d, test.Images, -1); err == nil {
		t.Fatal("negative workers accepted")
	}
}

func TestPredictRejectsMalformedImages(t *testing.T) {
	q, train, test := designFix(t)
	d, err := BuildDesign(q, train, DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	for name, img := range map[string]*Image{
		"nil":         nil,
		"empty":       tensor.New(1, 1, 1),
		"wrong shape": tensor.New(1, 14, 14),
	} {
		if _, err := Predict(d, img); !errors.Is(err, ErrBadInput) {
			t.Fatalf("%s image: err = %v, want ErrBadInput", name, err)
		}
	}
	// A valid image still predicts after the failures.
	label, err := Predict(d, test.Images[0])
	if err != nil {
		t.Fatal(err)
	}
	if label < 0 || label > 9 {
		t.Fatalf("label %d out of range", label)
	}
}
