module sei

go 1.22
