package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// progressSink rate-limits per-label progress lines so long sweeps
// report without flooding the terminal.
type progressSink struct {
	mu    sync.Mutex
	w     io.Writer
	every time.Duration
	last  map[string]time.Time
	first map[string]time.Time
}

// EnableProgress makes Progress calls write rate-limited lines to w,
// at most one per label per `every` (completions always print).
// Progress output is operator feedback only: it never feeds back into
// computation, so enabling it cannot perturb results.
func (r *Recorder) EnableProgress(w io.Writer, every time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.progress = &progressSink{
		w:     w,
		every: every,
		last:  map[string]time.Time{},
		first: map[string]time.Time{},
	}
}

// Progress reports done-of-total completion for a labelled stage. The
// line includes percent complete and an ETA extrapolated from the
// label's elapsed time. No-op unless EnableProgress was called.
func (r *Recorder) Progress(label string, done, total int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	p := r.progress
	now := r.now()
	r.mu.Unlock()
	if p == nil || total <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	start, ok := p.first[label]
	if !ok {
		start = now
		p.first[label] = now
	}
	finished := done >= total
	if last, ok := p.last[label]; ok && !finished && now.Sub(last) < p.every {
		return
	}
	p.last[label] = now
	pct := 100 * float64(done) / float64(total)
	line := fmt.Sprintf("obs: %s %d/%d (%.0f%%)", label, done, total, pct)
	if !finished && done > 0 && now.After(start) {
		eta := time.Duration(float64(now.Sub(start)) / float64(done) * float64(total-done))
		line += fmt.Sprintf(" eta %s", eta.Round(time.Second))
	}
	fmt.Fprintln(p.w, line)
}
