package seicore

import (
	"math/rand"
	"reflect"
	"testing"

	"sei/internal/nn"
)

// TestBoundedSlicedMatchesBoundedFast pins the bounded sliced engine's
// parity contract on every design shape and on full, partial and
// single-lane batches: with SetBounded on, one PredictBatchSliced call
// produces bit-identical labels AND bit-identical counter totals —
// hw_* and sei_* alike — to per-image bounded Predict calls.
func TestBoundedSlicedMatchesBoundedFast(t *testing.T) {
	f := getFixture(t)
	perm := rand.New(rand.NewSource(11)).Perm(36)
	cases := []struct {
		name string
		cfg  func() SEIBuildConfig
	}{
		{"default-bipolar", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.DynamicThreshold = false
			return cfg
		}},
		{"split-contiguous", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.Layer.MaxCrossbar = 16
			cfg.DynamicThreshold = false
			return cfg
		}},
		{"split-permuted-order", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.Layer.MaxCrossbar = 16
			cfg.Orders = [][]int{nil, perm}
			cfg.DynamicThreshold = false
			return cfg
		}},
		{"unipolar-dynamic", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.Layer.Mode = ModeUnipolarDynamic
			cfg.DynamicThreshold = false
			return cfg
		}},
		{"calibrated-split", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.Layer.MaxCrossbar = 16
			cfg.CalibImages = 10
			cfg.CalibPositions = 8
			return cfg
		}},
	}
	imgs := f.test.Images
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := BuildSEI(f.q, f.train, tc.cfg(), rand.New(rand.NewSource(3)))
			if err != nil {
				t.Fatal(err)
			}
			d.SetBounded(true)
			defer d.SetBounded(false)
			for _, lanes := range []int{1, 2, 63, 64} {
				batch := imgs[:lanes]
				sLabels, sCounters := evalSliced(t, d, batch)
				pLabels, pCounters := evalPerImage(t, d, batch)
				if !reflect.DeepEqual(sLabels, pLabels) {
					t.Errorf("lanes=%d: bounded sliced labels diverge from per-image bounded path", lanes)
				}
				if !reflect.DeepEqual(sCounters, pCounters) {
					t.Errorf("lanes=%d: bounded counters diverge:\n sliced    %v\n per-image %v", lanes, sCounters, pCounters)
				}
			}
		})
	}
}

// TestBoundedSlicedZeroAllocs pins that the bounded sliced path stays
// allocation-free in steady state.
func TestBoundedSlicedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool is lossy under -race; allocation counts are not meaningful")
	}
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	d.SetBounded(true)
	defer d.SetBounded(false)
	imgs := f.test.Images[:64]
	res := make([]nn.PredictResult, 64)
	if avg := testing.AllocsPerRun(50, func() { d.PredictBatchSliced(imgs, res) }); avg != 0 {
		t.Errorf("bounded sliced batch allocates %.1f objects per call, want 0", avg)
	}
}
