package nn

import (
	"fmt"
	"io"

	"sei/internal/mnist"
)

// ConfusionMatrix evaluates a classifier and returns counts[target][predicted].
func ConfusionMatrix(c Classifier, data *mnist.Dataset) [][]int {
	cm := make([][]int, mnist.NumClasses)
	for i := range cm {
		cm[i] = make([]int, mnist.NumClasses)
	}
	for i, img := range data.Images {
		pred := c.Predict(img)
		if pred >= 0 && pred < mnist.NumClasses {
			cm[data.Labels[i]][pred]++
		}
	}
	return cm
}

// PerClassError returns each class's error rate from a confusion
// matrix (NaN-free: classes with no samples report 0).
func PerClassError(cm [][]int) []float64 {
	out := make([]float64, len(cm))
	for t, row := range cm {
		total, correct := 0, 0
		for p, n := range row {
			total += n
			if p == t {
				correct += n
			}
		}
		if total > 0 {
			out[t] = 1 - float64(correct)/float64(total)
		}
	}
	return out
}

// PrintConfusion renders the matrix with per-class error rates.
func PrintConfusion(w io.Writer, cm [][]int) {
	fmt.Fprintf(w, "      ")
	for p := range cm {
		fmt.Fprintf(w, "%5d", p)
	}
	fmt.Fprintf(w, "   err\n")
	errs := PerClassError(cm)
	for t, row := range cm {
		fmt.Fprintf(w, "  %2d: ", t)
		for _, n := range row {
			fmt.Fprintf(w, "%5d", n)
		}
		fmt.Fprintf(w, " %5.1f%%\n", 100*errs[t])
	}
}

// MostConfusedPair returns the (target, predicted) off-diagonal cell
// with the highest count — the single most frequent mistake.
func MostConfusedPair(cm [][]int) (target, predicted, count int) {
	for t, row := range cm {
		for p, n := range row {
			if t != p && n > count {
				target, predicted, count = t, p, n
			}
		}
	}
	return target, predicted, count
}
