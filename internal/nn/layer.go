// Package nn is a from-scratch convolutional neural network framework:
// the software substrate the paper trains its three MNIST CNNs with
// (Table 2). It provides valid-convolution, ReLU, max-pooling, flatten
// and fully-connected layers, softmax cross-entropy training with
// SGD+momentum backprop, deterministic seeded initialization, model
// (de)serialization, and per-layer activation taps used by the
// quantizer (Algorithm 1) and the data-distribution analysis
// (Table 1).
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"sei/internal/tensor"
)

// Param is a trainable parameter with its gradient accumulator.
type Param struct {
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

func newParam(shape ...int) *Param {
	return &Param{Value: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// Layer is one stage of a feed-forward network. Forward caches
// whatever it needs for the matching Backward call, so a Layer is
// stateful and not safe for concurrent use.
type Layer interface {
	// Name returns a short human-readable identifier.
	Name() string
	// Forward computes the layer output for one sample.
	Forward(in *tensor.Tensor) *tensor.Tensor
	// Backward takes dLoss/dOutput and returns dLoss/dInput,
	// accumulating parameter gradients. It must follow a Forward call.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly none).
	Params() []*Param
	// OutShape returns the output shape for a given input shape.
	OutShape(in []int) []int
	// EvalClone returns a layer that shares this layer's parameters but
	// owns its own Forward scratch state, so concurrent forward-only
	// evaluation is safe (one clone per goroutine). Backward on a clone
	// accumulates into the shared parameter gradients and must not run
	// concurrently with other clones.
	EvalClone() Layer
}

// Conv2D is a valid (no-padding) convolution layer with weight shape
// [Filters, InChannels, KH, KW]. Following the paper ("the bias vector
// ... is only used in FC layer"), convolution has no bias term by
// default; WithBias enables one.
type Conv2D struct {
	Filters    int
	InChannels int
	KH, KW     int
	Stride     int
	Weight     *Param
	Bias       *Param // nil when the layer has no bias

	lastIn   *tensor.Tensor
	lastCols *tensor.Tensor
}

// NewConv2D creates a convolution layer with He-normal initialized
// weights drawn from rng.
func NewConv2D(filters, inChannels, kh, kw, stride int, rng *rand.Rand) *Conv2D {
	if filters <= 0 || inChannels <= 0 || kh <= 0 || kw <= 0 || stride <= 0 {
		panic(fmt.Sprintf("nn: invalid Conv2D config %d/%d/%dx%d/s%d", filters, inChannels, kh, kw, stride))
	}
	c := &Conv2D{
		Filters:    filters,
		InChannels: inChannels,
		KH:         kh,
		KW:         kw,
		Stride:     stride,
		Weight:     newParam(filters, inChannels, kh, kw),
	}
	fanIn := inChannels * kh * kw
	std := math.Sqrt(2 / float64(fanIn))
	for i := range c.Weight.Value.Data() {
		c.Weight.Value.Data()[i] = rng.NormFloat64() * std
	}
	return c
}

// WithBias adds a zero-initialized per-filter bias and returns the
// layer for chaining.
func (c *Conv2D) WithBias() *Conv2D {
	c.Bias = newParam(c.Filters)
	return c
}

func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv%dx%dx%d", c.KH, c.KW, c.Filters)
}

func (c *Conv2D) Params() []*Param {
	if c.Bias != nil {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}

func (c *Conv2D) EvalClone() Layer {
	clone := *c
	clone.lastIn, clone.lastCols = nil, nil
	return &clone
}

func (c *Conv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != c.InChannels {
		panic(fmt.Sprintf("nn: %s input shape %v, want [%d h w]", c.Name(), in, c.InChannels))
	}
	outH := (in[1]-c.KH)/c.Stride + 1
	outW := (in[2]-c.KW)/c.Stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: %s input %v too small", c.Name(), in))
	}
	return []int{c.Filters, outH, outW}
}

func (c *Conv2D) Forward(in *tensor.Tensor) *tensor.Tensor {
	out := c.OutShape(in.Shape())
	cols := tensor.Im2Col(in, c.KH, c.KW, c.Stride) // [P, fanIn]
	c.lastIn, c.lastCols = in, cols
	wmat := c.Weight.Value.Reshape(c.Filters, c.InChannels*c.KH*c.KW)
	prod := tensor.MatMul(wmat, tensor.Transpose2D(cols)) // [F, P]
	if c.Bias != nil {
		b := c.Bias.Value.Data()
		p := out[1] * out[2]
		for f := 0; f < c.Filters; f++ {
			row := prod.Data()[f*p : (f+1)*p]
			for i := range row {
				row[i] += b[f]
			}
		}
	}
	return prod.Reshape(out...)
}

func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.lastIn == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	f := c.Filters
	p := grad.Len() / f
	g := grad.Reshape(f, p) // [F, P]

	// dW = g · cols  →  [F, fanIn]
	dw := tensor.MatMul(g, c.lastCols)
	c.Weight.Grad.Reshape(f, c.InChannels*c.KH*c.KW).AddInPlace(dw)

	if c.Bias != nil {
		bg := c.Bias.Grad.Data()
		for fi := 0; fi < f; fi++ {
			row := g.Data()[fi*p : (fi+1)*p]
			s := 0.0
			for _, v := range row {
				s += v
			}
			bg[fi] += s
		}
	}

	// dCols = gᵀ · W  →  [P, fanIn], then scatter back with Col2Im.
	wmat := c.Weight.Value.Reshape(f, c.InChannels*c.KH*c.KW)
	dcols := tensor.MatMul(tensor.Transpose2D(g), wmat)
	in := c.lastIn.Shape()
	return tensor.Col2Im(dcols, in[0], in[1], in[2], c.KH, c.KW, c.Stride)
}

// ReLU applies max(x, 0) element-wise.
type ReLU struct {
	lastIn *tensor.Tensor
}

func NewReLU() *ReLU { return &ReLU{} }

func (r *ReLU) Name() string            { return "relu" }
func (r *ReLU) Params() []*Param        { return nil }
func (r *ReLU) OutShape(in []int) []int { return append([]int(nil), in...) }
func (r *ReLU) EvalClone() Layer        { return &ReLU{} }

func (r *ReLU) Forward(in *tensor.Tensor) *tensor.Tensor {
	r.lastIn = in
	out := in.Clone()
	for i, v := range out.Data() {
		if v < 0 {
			out.Data()[i] = 0
		}
	}
	return out
}

func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.lastIn == nil {
		panic("nn: ReLU.Backward before Forward")
	}
	out := grad.Clone()
	for i, v := range r.lastIn.Data() {
		if v <= 0 {
			out.Data()[i] = 0
		}
	}
	return out
}

// MaxPool2D pools non-overlapping Size×Size windows (stride == Size),
// discarding ragged edges, exactly as the paper's 2×2 pooling stages
// do (e.g. 11×11 → 5×5 in Network 2).
type MaxPool2D struct {
	Size int

	lastArg []int // flat input index of each output's max
	inShape []int
}

func NewMaxPool2D(size int) *MaxPool2D {
	if size <= 0 {
		panic("nn: MaxPool2D size must be positive")
	}
	return &MaxPool2D{Size: size}
}

func (m *MaxPool2D) Name() string     { return fmt.Sprintf("maxpool%d", m.Size) }
func (m *MaxPool2D) Params() []*Param { return nil }
func (m *MaxPool2D) EvalClone() Layer { return &MaxPool2D{Size: m.Size} }

func (m *MaxPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s input shape %v, want 3-D", m.Name(), in))
	}
	return []int{in[0], in[1] / m.Size, in[2] / m.Size}
}

func (m *MaxPool2D) Forward(in *tensor.Tensor) *tensor.Tensor {
	s := in.Shape()
	os := m.OutShape(s)
	out := tensor.New(os...)
	m.lastArg = make([]int, out.Len())
	m.inShape = s
	c, h, w := s[0], s[1], s[2]
	oh, ow := os[1], os[2]
	o := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := math.Inf(-1)
				bi := -1
				for ky := 0; ky < m.Size; ky++ {
					row := base + (oy*m.Size+ky)*w + ox*m.Size
					for kx := 0; kx < m.Size; kx++ {
						if v := in.Data()[row+kx]; v > best {
							best, bi = v, row+kx
						}
					}
				}
				out.Data()[o] = best
				m.lastArg[o] = bi
				o++
			}
		}
	}
	return out
}

func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if m.lastArg == nil {
		panic("nn: MaxPool2D.Backward before Forward")
	}
	out := tensor.New(m.inShape...)
	for o, idx := range m.lastArg {
		out.Data()[idx] += grad.Data()[o]
	}
	return out
}

// Flatten reshapes any input to a vector.
type Flatten struct {
	inShape []int
}

func NewFlatten() *Flatten { return &Flatten{} }

func (f *Flatten) Name() string     { return "flatten" }
func (f *Flatten) Params() []*Param { return nil }
func (f *Flatten) EvalClone() Layer { return &Flatten{} }

func (f *Flatten) OutShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}
}

func (f *Flatten) Forward(in *tensor.Tensor) *tensor.Tensor {
	f.inShape = in.Shape()
	return in.Reshape(in.Len())
}

func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if f.inShape == nil {
		panic("nn: Flatten.Backward before Forward")
	}
	return grad.Reshape(f.inShape...)
}

// Dense is a fully-connected layer: out = W·in + b, with weight shape
// [Out, In]. Matching the paper, FC layers always carry a bias.
type Dense struct {
	In, Out int
	Weight  *Param
	Bias    *Param

	lastIn *tensor.Tensor
}

// NewDense creates a fully-connected layer with He-normal weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid Dense config %dx%d", in, out))
	}
	d := &Dense{In: in, Out: out, Weight: newParam(out, in), Bias: newParam(out)}
	std := math.Sqrt(2 / float64(in))
	for i := range d.Weight.Value.Data() {
		d.Weight.Value.Data()[i] = rng.NormFloat64() * std
	}
	return d
}

func (d *Dense) Name() string     { return fmt.Sprintf("fc%dx%d", d.In, d.Out) }
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

func (d *Dense) EvalClone() Layer {
	clone := *d
	clone.lastIn = nil
	return &clone
}

func (d *Dense) OutShape(in []int) []int {
	if len(in) != 1 || in[0] != d.In {
		panic(fmt.Sprintf("nn: %s input shape %v, want [%d]", d.Name(), in, d.In))
	}
	return []int{d.Out}
}

func (d *Dense) Forward(in *tensor.Tensor) *tensor.Tensor {
	d.OutShape(in.Shape())
	d.lastIn = in
	y := tensor.MatVec(d.Weight.Value, in.Data())
	b := d.Bias.Value.Data()
	for i := range y {
		y[i] += b[i]
	}
	return tensor.FromSlice(y, d.Out)
}

func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.lastIn == nil {
		panic("nn: Dense.Backward before Forward")
	}
	g := grad.Data()
	in := d.lastIn.Data()
	wg := d.Weight.Grad.Data()
	for o := 0; o < d.Out; o++ {
		go_ := g[o]
		if go_ != 0 {
			row := wg[o*d.In : (o+1)*d.In]
			for j, x := range in {
				row[j] += go_ * x
			}
		}
		d.Bias.Grad.Data()[o] += go_
	}
	dx := tensor.MatVecT(d.Weight.Value, g)
	return tensor.FromSlice(dx, d.In)
}
