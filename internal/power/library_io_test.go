package power

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLibraryJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLibrary(&buf, DefaultLibrary()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLibrary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != DefaultLibrary() {
		t.Fatalf("round trip changed library:\n%+v\nvs\n%+v", got, DefaultLibrary())
	}
}

func TestReadLibraryPartialOverride(t *testing.T) {
	lib, err := ReadLibrary(strings.NewReader(`{"adc_energy_pj": 450}`))
	if err != nil {
		t.Fatal(err)
	}
	if lib.ADCEnergyPJ != 450 {
		t.Fatalf("override lost: %v", lib.ADCEnergyPJ)
	}
	if lib.DACEnergyPJ != DefaultLibrary().DACEnergyPJ {
		t.Fatal("unspecified field did not inherit the default")
	}
}

func TestReadLibraryRejects(t *testing.T) {
	if _, err := ReadLibrary(strings.NewReader(`{"bogus_field": 1}`)); err == nil {
		t.Fatal("accepted unknown field")
	}
	if _, err := ReadLibrary(strings.NewReader(`not json`)); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := ReadLibrary(strings.NewReader(`{"adc_energy_pj": -5}`)); err == nil {
		t.Fatal("accepted negative energy")
	}
}

func TestLoadLibraryFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lib.json")
	if err := os.WriteFile(path, []byte(`{"sa_energy_pj": 2.5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	lib, err := LoadLibraryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lib.SAEnergyPJ != 2.5 {
		t.Fatalf("file override lost: %v", lib.SAEnergyPJ)
	}
	if _, err := LoadLibraryFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("accepted missing file")
	}
}
