// Package hdl exports digital golden models of a quantized network's
// stages as synthesizable Verilog-2001. Each SEI conv stage becomes a
// module computing the integer-exact binarized matrix-vector product
// (the function the analog crossbar block implements), and the FC
// stage becomes a score module with an argmax. The generated RTL
// serves as the verification reference a tape-out of the paper's
// structure would be checked against, plus self-checking testbenches
// whose expected outputs are computed by the same integer semantics in
// Go.
package hdl

import (
	"fmt"
	"io"
	"math"
	"strings"

	"sei/internal/quant"
	"sei/internal/rram"
)

// StageModel is the integer-exact model of one conv stage: signed
// 8-bit weights (row-major [N][M]) and the integer threshold such that
// an output bit fires iff Σ_{in_j=1} w[j][c] > Thr.
type StageModel struct {
	Name string
	N, M int
	// W holds the quantized weights, row-major.
	W []int
	// Thr is the integer threshold (floor of the real threshold in
	// weight-integer units; the strict > compare reproduces the float
	// compare exactly for integer sums).
	Thr int64
	// Scale converts integer units back to real weights.
	Scale float64
}

// Eval computes the stage's output bits with the exact integer
// semantics the RTL implements.
func (s *StageModel) Eval(in []bool) []bool {
	if len(in) != s.N {
		panic(fmt.Sprintf("hdl: input length %d, want %d", len(in), s.N))
	}
	out := make([]bool, s.M)
	for c := 0; c < s.M; c++ {
		var acc int64
		for j := 0; j < s.N; j++ {
			if in[j] {
				acc += int64(s.W[j*s.M+c])
			}
		}
		out[c] = acc > s.Thr
	}
	return out
}

// FCModel is the integer model of the final stage: scores[c] =
// Σ_{in_j=1} w[j][c] + b[c], argmax over c.
type FCModel struct {
	Name  string
	N, M  int
	W     []int
	B     []int64 // bias in the same integer units
	Scale float64
}

// Eval computes the integer scores and the argmax class.
func (f *FCModel) Eval(in []bool) ([]int64, int) {
	scores := make([]int64, f.M)
	copy(scores, f.B)
	for j := 0; j < f.N; j++ {
		if in[j] {
			for c := 0; c < f.M; c++ {
				scores[c] += int64(f.W[j*f.M+c])
			}
		}
	}
	best := 0
	for c, s := range scores {
		if s > scores[best] {
			best = c
		}
	}
	return scores, best
}

// Models extracts integer-exact stage models from a quantized network.
// Stage 0 (the DAC-driven input layer) has no 1-bit digital model and
// is skipped; the returned conv models cover stages 1..len(Convs)-1.
func Models(q *quant.QuantizedNet) ([]*StageModel, *FCModel, error) {
	var stages []*StageModel
	for l := 1; l < len(q.Convs); l++ {
		w := q.ConvMatrix(l)
		ints, scale, err := rram.QuantizeSymmetric(w, rram.WeightBits)
		if err != nil {
			return nil, nil, err
		}
		stages = append(stages, &StageModel{
			Name:  fmt.Sprintf("sei_stage%d", l),
			N:     w.Dim(0),
			M:     w.Dim(1),
			W:     ints,
			Thr:   int64(math.Floor(q.Thresholds[l] / scale)),
			Scale: scale,
		})
	}
	fcw := q.FCMatrix()
	ints, scale, err := rram.QuantizeSymmetric(fcw, rram.WeightBits)
	if err != nil {
		return nil, nil, err
	}
	fc := &FCModel{
		Name:  "sei_fc",
		N:     fcw.Dim(0),
		M:     fcw.Dim(1),
		W:     ints,
		B:     make([]int64, fcw.Dim(1)),
		Scale: scale,
	}
	for c, b := range q.FC.B {
		fc.B[c] = int64(math.Round(b / scale))
	}
	return stages, fc, nil
}

// writeWeightROM emits a Verilog function mapping a flat index to a
// signed 8-bit weight.
func writeWeightROM(w io.Writer, fname string, weights []int) {
	fmt.Fprintf(w, "  function signed [7:0] %s;\n", fname)
	fmt.Fprintf(w, "    input integer idx;\n")
	fmt.Fprintf(w, "    begin\n      case (idx)\n")
	for i, v := range weights {
		fmt.Fprintf(w, "        %d: %s = %s;\n", i, fname, verilogSigned8(v))
	}
	fmt.Fprintf(w, "        default: %s = 8'sd0;\n", fname)
	fmt.Fprintf(w, "      endcase\n    end\n  endfunction\n")
}

// verilogSigned8 renders an integer as a signed 8-bit Verilog literal.
func verilogSigned8(v int) string {
	if v < 0 {
		return fmt.Sprintf("-8'sd%d", -v)
	}
	return fmt.Sprintf("8'sd%d", v)
}

// WriteStageModule emits the synthesizable module for one conv stage.
func WriteStageModule(w io.Writer, s *StageModel) {
	fmt.Fprintf(w, "// %s: binarized MVM + threshold, N=%d inputs, M=%d kernels.\n", s.Name, s.N, s.M)
	fmt.Fprintf(w, "// Golden digital model of the analog SEI crossbar block\n")
	fmt.Fprintf(w, "// (weights scale %.6g, integer threshold %d).\n", s.Scale, s.Thr)
	fmt.Fprintf(w, "module %s (\n  input  wire [%d:0] in,\n  output reg  [%d:0] out\n);\n", s.Name, s.N-1, s.M-1)
	writeWeightROM(w, "weight", s.W)
	fmt.Fprintf(w, "  localparam signed [31:0] THRESHOLD = %d;\n", s.Thr)
	fmt.Fprintf(w, "  integer j, c;\n  reg signed [31:0] acc;\n")
	fmt.Fprintf(w, "  always @* begin\n")
	fmt.Fprintf(w, "    for (c = 0; c < %d; c = c + 1) begin\n", s.M)
	fmt.Fprintf(w, "      acc = 0;\n")
	fmt.Fprintf(w, "      for (j = 0; j < %d; j = j + 1)\n", s.N)
	fmt.Fprintf(w, "        if (in[j]) acc = acc + weight(j*%d + c);\n", s.M)
	fmt.Fprintf(w, "      out[c] = (acc > THRESHOLD);\n")
	fmt.Fprintf(w, "    end\n  end\nendmodule\n\n")
}

// WriteFCModule emits the final-stage score module with argmax.
func WriteFCModule(w io.Writer, f *FCModel) {
	fmt.Fprintf(w, "// %s: FC scores + argmax, N=%d inputs, M=%d classes.\n", f.Name, f.N, f.M)
	fmt.Fprintf(w, "module %s (\n  input  wire [%d:0] in,\n  output reg  [31:0] class_out\n);\n", f.Name, f.N-1)
	writeWeightROM(w, "weight", f.W)
	fmt.Fprintf(w, "  function signed [31:0] bias;\n    input integer idx;\n    begin\n      case (idx)\n")
	for c, b := range f.B {
		fmt.Fprintf(w, "        %d: bias = %d;\n", c, b)
	}
	fmt.Fprintf(w, "        default: bias = 0;\n      endcase\n    end\n  endfunction\n")
	fmt.Fprintf(w, "  integer j, c;\n  reg signed [31:0] acc, best;\n")
	fmt.Fprintf(w, "  always @* begin\n")
	fmt.Fprintf(w, "    class_out = 0;\n    best = -32'sd2147483647;\n")
	fmt.Fprintf(w, "    for (c = 0; c < %d; c = c + 1) begin\n", f.M)
	fmt.Fprintf(w, "      acc = bias(c);\n")
	fmt.Fprintf(w, "      for (j = 0; j < %d; j = j + 1)\n", f.N)
	fmt.Fprintf(w, "        if (in[j]) acc = acc + weight(j*%d + c);\n", f.M)
	fmt.Fprintf(w, "      if (acc > best) begin best = acc; class_out = c; end\n")
	fmt.Fprintf(w, "    end\n  end\nendmodule\n\n")
}

// Export writes the full golden-model RTL for a quantized network: one
// module per SEI conv stage plus the FC/argmax module.
func Export(q *quant.QuantizedNet, w io.Writer) error {
	stages, fc, err := Models(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "// Auto-generated by sei/internal/hdl — golden digital models of the\n")
	fmt.Fprintf(w, "// SEI (Switched-by-Input, DAC 2016) crossbar stages for %q.\n", q.Name)
	fmt.Fprintf(w, "// Verilog-2001, synthesizable, combinational.\n\n")
	for _, s := range stages {
		WriteStageModule(w, s)
	}
	WriteFCModule(w, fc)
	return nil
}

// bitsLiteral renders a bool vector as a Verilog bit-vector literal
// (LSB = index 0).
func bitsLiteral(bits []bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d'b", len(bits))
	for i := len(bits) - 1; i >= 0; i-- {
		if bits[i] {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// WriteTestbench emits a self-checking testbench for one stage module:
// the expected outputs are computed by StageModel.Eval (the same
// integer semantics) so simulation mismatches indicate an RTL bug.
func WriteTestbench(w io.Writer, s *StageModel, vectors [][]bool) error {
	for i, v := range vectors {
		if len(v) != s.N {
			return fmt.Errorf("hdl: vector %d has %d bits, want %d", i, len(v), s.N)
		}
	}
	fmt.Fprintf(w, "`timescale 1ns/1ps\n")
	fmt.Fprintf(w, "module %s_tb;\n", s.Name)
	fmt.Fprintf(w, "  reg  [%d:0] in;\n  wire [%d:0] out;\n  integer errors;\n", s.N-1, s.M-1)
	fmt.Fprintf(w, "  %s dut (.in(in), .out(out));\n", s.Name)
	fmt.Fprintf(w, "  initial begin\n    errors = 0;\n")
	for _, v := range vectors {
		want := s.Eval(v)
		fmt.Fprintf(w, "    in = %s; #1;\n", bitsLiteral(v))
		fmt.Fprintf(w, "    if (out !== %s) begin errors = errors + 1; $display(\"FAIL in=%%b out=%%b want=%s\", in, out); end\n",
			bitsLiteral(want), bitsLiteral(want))
	}
	fmt.Fprintf(w, "    if (errors == 0) $display(\"PASS %s: all %d vectors\");\n", s.Name, len(vectors))
	fmt.Fprintf(w, "    $finish;\n  end\nendmodule\n")
	return nil
}
