package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramPaperBins(t *testing.T) {
	// The bins of Table 1 in the paper: 0–1/16, 1/16–1/8, 1/8–1/4, 1/4–1.
	edges := []float64{0, 1.0 / 16, 1.0 / 8, 1.0 / 4, 1}
	x := FromSlice([]float64{0, 0.01, 0.0624, 0.07, 0.2, 0.9, 1.0}, 7)
	got := x.Histogram(edges)
	want := []int{3, 1, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Histogram = %v, want %v", got, want)
		}
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	edges := []float64{0, 1, 2}
	x := FromSlice([]float64{0, 1, 2}, 3)
	got := x.Histogram(edges)
	// 0 → first bin, 1 → second bin (interior edge belongs right),
	// 2 → second bin (max is closed).
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("Histogram edge handling = %v, want [1 2]", got)
	}
}

func TestHistogramIgnoresOutOfRange(t *testing.T) {
	x := FromSlice([]float64{-5, 0.5, 10}, 3)
	got := x.Histogram([]float64{0, 1})
	if got[0] != 1 {
		t.Fatalf("Histogram = %v, want [1]", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	x := New(2)
	for _, edges := range [][]float64{{1}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Histogram(%v) did not panic", edges)
				}
			}()
			x.Histogram(edges)
		}()
	}
}

// Property: histogram counts over full-covering bins sum to Len.
func TestHistogramConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		x := New(n)
		for i := range x.Data() {
			x.Data()[i] = r.Float64() // in [0,1)
		}
		counts := x.Histogram([]float64{0, 0.25, 0.5, 0.75, 1})
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceStd(t *testing.T) {
	x := FromSlice([]float64{2, 4, 4, 4, 5, 5, 7, 9}, 8)
	if math.Abs(x.Variance()-4) > 1e-12 {
		t.Fatalf("Variance = %v, want 4", x.Variance())
	}
	if math.Abs(x.Std()-2) > 1e-12 {
		t.Fatalf("Std = %v, want 2", x.Std())
	}
}

func TestFractionAbove(t *testing.T) {
	x := FromSlice([]float64{0, 0.5, 1, 2}, 4)
	if got := x.FractionAbove(0.5); got != 0.5 {
		t.Fatalf("FractionAbove(0.5) = %v, want 0.5", got)
	}
}

func TestL2Distance(t *testing.T) {
	a := FromSlice([]float64{0, 0}, 2)
	b := FromSlice([]float64{3, 4}, 2)
	if d := L2Distance(a, b); math.Abs(d-5) > 1e-12 {
		t.Fatalf("L2Distance = %v, want 5", d)
	}
}

// Property: L2 distance satisfies the triangle inequality.
func TestL2TriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		a, b, c := New(n), New(n), New(n)
		for i := 0; i < n; i++ {
			a.Data()[i] = r.NormFloat64()
			b.Data()[i] = r.NormFloat64()
			c.Data()[i] = r.NormFloat64()
		}
		return L2Distance(a, c) <= L2Distance(a, b)+L2Distance(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
