//go:build amd64

package vecf

import (
	"math"
	"math/rand"
	"testing"
)

// TestAVX2MatchesGeneric runs the AVX2 kernels head to head against
// the portable loops on the same inputs — the direct check that the
// vector instructions round identically to scalar Go. Skipped on
// hardware without AVX2, where dispatch already takes the generic
// path.
func TestAVX2MatchesGeneric(t *testing.T) {
	if !hasAVX2 {
		t.Skip("no AVX2 on this machine; dispatch uses the generic kernels")
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		m := 1 + rng.Intn(12)
		x := randVec(rng, Lanes)
		w := randVec(rng, m)
		accA := randVec(rng, m*Lanes)
		accG := append([]float64(nil), accA...)
		mulAccLanes64AVX2(&accA[0], &x[0], &w[0], m)
		mulAccLanesGeneric(accG, x, w)
		if !bitsEqual(accA, accG) {
			t.Fatalf("trial %d (m=%d): AVX2 mul-acc diverges from generic", trial, m)
		}
		thr := x[rng.Intn(Lanes)]
		if trial%2 == 0 {
			thr = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(12)-6))
		}
		if a, g := gtMask64AVX2(&x[0], thr), gtMask64Generic(x, thr); a != g {
			t.Fatalf("trial %d: AVX2 mask %016x, generic %016x (thr=%v)", trial, a, g, thr)
		}
	}
}

// TestConvWin4AVX2MatchesGeneric runs the fused window kernel head to
// head against the portable loop on the same inputs.
func TestConvWin4AVX2MatchesGeneric(t *testing.T) {
	if !hasAVX2 {
		t.Skip("no AVX2 on this machine; dispatch uses the generic kernels")
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 500; trial++ {
		rows := 1 + rng.Intn(12)
		x := randVec(rng, (rows+2)*Lanes)
		w := randVec(rng, rows*4)
		off := make([]int64, rows)
		for r := range off {
			off[r] = int64(rng.Intn(len(x) - Lanes + 1))
		}
		rowMask := rng.Uint64() & (1<<uint(rows) - 1)
		if rowMask == 0 {
			rowMask = 1
		}
		thr := (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(12)-6))
		var a, g [4]uint64
		convWin4AVX2(&x[0], &w[0], &off[0], rowMask, thr, &a[0])
		convWin4Generic(x, w, off, rowMask, thr, &g)
		if a != g {
			t.Fatalf("trial %d (rows=%d mask=%x): AVX2 %x, generic %x", trial, rows, rowMask, a, g)
		}
	}
}

// TestAddRowLanesAVX2MatchesGeneric runs the row-add kernel head to
// head against the portable loop on the same inputs.
func TestAddRowLanesAVX2MatchesGeneric(t *testing.T) {
	if !hasAVX2 {
		t.Skip("no AVX2 on this machine; dispatch uses the generic kernels")
	}
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 500; trial++ {
		m := 1 + rng.Intn(13)
		row := randVec(rng, m)
		accA := randVec(rng, Lanes*m)
		accG := append([]float64(nil), accA...)
		word := rng.Uint64()
		if word == 0 {
			word = 1
		}
		addRowLanesAVX2(&accA[0], &row[0], int64(m), word)
		addRowLanesGeneric(accG, row, word)
		if !bitsEqual(accA, accG) {
			t.Fatalf("trial %d (m=%d word=%x): AVX2 row add diverges from generic", trial, m, word)
		}
	}
}
