package experiments

import (
	"bytes"
	"strings"
	"testing"

	"sei/internal/seicore"
)

// sharedCtx is built once per test binary with the quick sizing and
// exercises only Network 2 (the smallest Table-2 network).
var sharedCtx *Context

func ctx(t *testing.T) *Context {
	t.Helper()
	if sharedCtx == nil {
		sharedCtx = NewContext(QuickConfig())
	}
	return sharedCtx
}

func TestContextDeterministicDatasets(t *testing.T) {
	a := NewContext(QuickConfig())
	b := NewContext(QuickConfig())
	if a.Train.Len() != b.Train.Len() || a.Test.Len() != b.Test.Len() {
		t.Fatal("dataset sizes differ between identical contexts")
	}
	for i := range a.Train.Labels {
		if a.Train.Labels[i] != b.Train.Labels[i] {
			t.Fatal("training labels differ between identical contexts")
		}
	}
}

func TestContextTrainsAndCaches(t *testing.T) {
	c := ctx(t)
	net1 := c.Network(2)
	net2 := c.Network(2)
	if net1 != net2 {
		t.Fatal("Network(2) not cached in memory")
	}
	if e := c.FloatError(2); e > 0.30 {
		t.Fatalf("trained network error %.3f too high", e)
	}
}

func TestContextDiskCache(t *testing.T) {
	cfg := QuickConfig()
	cfg.TrainSamples = 300
	cfg.Epochs = 1
	cfg.CacheDir = t.TempDir()
	a := NewContext(cfg)
	netA := a.Network(2)
	// A fresh context must load the identical model from disk.
	b := NewContext(cfg)
	netB := b.Network(2)
	if netA.NumParams() != netB.NumParams() {
		t.Fatal("cached model differs")
	}
	img := a.Test.Images[0]
	if netA.Predict(img) != netB.Predict(img) {
		t.Fatal("cached model predicts differently")
	}
}

func TestQuantizedPipeline(t *testing.T) {
	c := ctx(t)
	q := c.Quantized(2)
	if len(q.Thresholds) != 2 {
		t.Fatalf("quantized net has %d thresholds", len(q.Thresholds))
	}
	qe := c.QuantError(2)
	ce := c.QuantCalibratedError(2)
	fe := c.FloatError(2)
	t.Logf("float %.4f quant %.4f calibrated %.4f", fe, qe, ce)
	if ce > qe+0.02 {
		t.Fatalf("calibration made things worse: %.4f vs %.4f", ce, qe)
	}
	if qe > fe+0.20 {
		t.Fatalf("quantization cost too much: %.4f vs %.4f", qe, fe)
	}
	// The plain quantized model must not be mutated by calibration.
	if got := c.Quantized(2).ErrorRate(c.Test); got != qe {
		t.Fatalf("plain quantized model was mutated: %.4f vs %.4f", got, qe)
	}
}

func TestFigure1Shape(t *testing.T) {
	c := ctx(t)
	res, err := Figure1(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.InterfacePowerFraction < 0.98 {
		t.Fatalf("interface power fraction %.4f < 0.98", res.InterfacePowerFraction)
	}
	if res.InterfaceAreaFraction < 0.95 {
		t.Fatalf("interface area fraction %.4f < 0.95", res.InterfaceAreaFraction)
	}
	if res.InputDACFraction <= 0 || res.InputDACFraction > 0.15 {
		t.Fatalf("input DAC fraction %.4f outside (0,0.15]", res.InputDACFraction)
	}
	if len(res.Power) != 4 || len(res.Area) != 4 { // conv1, conv2, FC, total
		t.Fatalf("row counts %d/%d, want 4/4", len(res.Power), len(res.Area))
	}
	for _, row := range res.Power {
		sum := row.DAC + row.ADC + row.RRAM + row.Other
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("power row %s fractions sum to %v", row.Layer, sum)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Fatal("Print output missing header")
	}
}

func TestTable1LongTail(t *testing.T) {
	c := ctx(t)
	res := Table1(c, 2)
	rows := res.Networks[2]
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, d := range rows {
		if d.Fractions[0] < 0.5 {
			t.Fatalf("%s lowest bin %.3f; long tail missing", d.LayerName, d.Fractions[0])
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Network 2") {
		t.Fatal("Print output missing network")
	}
}

func TestTable2MatchesPaperConfigs(t *testing.T) {
	c := ctx(t)
	rows := Table2(c)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Complexity ordering: Network1 > Network3 > Network2 (paper:
	// 0.006 / 0.0003 / 0.00016 GOPs).
	if !(rows[0].Ops > rows[2].Ops && rows[2].Ops > rows[1].Ops) {
		t.Fatalf("ops ordering wrong: %d/%d/%d", rows[0].Ops, rows[1].Ops, rows[2].Ops)
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "Network 1") {
		t.Fatal("Print output missing rows")
	}
}

func TestTable3Shape(t *testing.T) {
	c := ctx(t)
	rows := Table3(c, 2)
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.BeforeQuantization > r.AfterQuantization {
		t.Logf("note: quantized beat float (%.4f vs %.4f) — possible on small test sets", r.AfterQuantization, r.BeforeQuantization)
	}
	if r.AfterQuantization > r.BeforeQuantization+0.20 {
		t.Fatalf("quantization delta too large: %.4f -> %.4f", r.BeforeQuantization, r.AfterQuantization)
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "After Quantization") {
		t.Fatal("Print output missing rows")
	}
}

func TestTable4SplittingStudy(t *testing.T) {
	c := ctx(t)
	// Force conv2 of Network 2 to split with a small crossbar.
	res := Table4(c, 2, []int{64})
	if len(res.Columns) != 1 {
		t.Fatalf("got %d columns", len(res.Columns))
	}
	col := res.Columns[0]
	if len(col.SplitStages) == 0 {
		t.Fatal("no conv stage split at crossbar size 64")
	}
	if col.RandomMax < col.RandomMin {
		t.Fatalf("random range inverted: %.4f-%.4f", col.RandomMin, col.RandomMax)
	}
	// The paper's qualitative claims: random splitting can be much
	// worse than homogenized; dynamic threshold does not hurt.
	if col.Homogenized > col.RandomMax+0.01 {
		t.Fatalf("homogenized (%.4f) worse than worst random (%.4f)", col.Homogenized, col.RandomMax)
	}
	if col.DynamicThreshold > col.Homogenized+0.03 {
		t.Fatalf("dynamic threshold (%.4f) worse than static homogenized (%.4f)", col.DynamicThreshold, col.Homogenized)
	}
	if col.HomogReduction < 0.3 {
		t.Fatalf("homogenization distance reduction %.2f too small", col.HomogReduction)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Random Order Splitting") {
		t.Fatal("Print output missing rows")
	}
}

func TestTable5Shape(t *testing.T) {
	c := ctx(t)
	res, err := Table5(c, []Table5Point{{NetworkID: 2, MaxCrossbar: 512}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	base, onebit, sei := res.Rows[0], res.Rows[1], res.Rows[2]
	if base.Structure != seicore.StructDACADC || sei.Structure != seicore.StructSEI {
		t.Fatal("row order wrong")
	}
	if base.DataBits != 8 || onebit.DataBits != 1 {
		t.Fatal("data bits wrong")
	}
	if sei.EnergySaving < 0.90 {
		t.Fatalf("SEI energy saving %.4f < 0.90", sei.EnergySaving)
	}
	if sei.AreaSaving < 0.70 {
		t.Fatalf("SEI area saving %.4f < 0.70", sei.AreaSaving)
	}
	if onebit.EnergySaving <= 0 || onebit.EnergySaving > 0.5 {
		t.Fatalf("1-bit saving %.4f out of band", onebit.EnergySaving)
	}
	if sei.GOPsPerJ < 10*base.GOPsPerJ {
		t.Fatalf("SEI efficiency %.1f not ≫ base %.1f", sei.GOPsPerJ, base.GOPsPerJ)
	}
	// Functional error rates through hardware must stay in the
	// neighbourhood of the software results.
	if base.ErrorRate > c.FloatError(2)+0.05 {
		t.Fatalf("DAC+ADC error %.4f far from float %.4f", base.ErrorRate, c.FloatError(2))
	}
	if onebit.ErrorRate > c.QuantCalibratedError(2)+0.05 {
		t.Fatalf("1-bit error %.4f far from quant %.4f", onebit.ErrorRate, c.QuantCalibratedError(2))
	}
	if sei.ErrorRate > c.QuantCalibratedError(2)+0.10 {
		t.Fatalf("SEI error %.4f far from quant %.4f", sei.ErrorRate, c.QuantCalibratedError(2))
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Table 5") {
		t.Fatal("Print output missing header")
	}
}

func TestHomogenizationStudy(t *testing.T) {
	c := ctx(t)
	rows := HomogenizationStudy(c, 2, 64)
	if len(rows) == 0 {
		t.Fatal("no split stages in study")
	}
	for _, r := range rows {
		if r.GADist > r.NaturalDist {
			t.Fatalf("stage %d: GA (%.4f) worse than natural (%.4f)", r.Stage, r.GADist, r.NaturalDist)
		}
		if r.GADist > r.GreedyDist+1e-9 {
			t.Fatalf("stage %d: GA (%.4f) worse than greedy (%.4f)", r.Stage, r.GADist, r.GreedyDist)
		}
	}
	var buf bytes.Buffer
	PrintHomogStudy(&buf, 2, rows)
	if !strings.Contains(buf.String(), "GA") {
		t.Fatal("Print output missing columns")
	}
}

func TestTimingStudy(t *testing.T) {
	c := ctx(t)
	rows, err := TimingStudy(c, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 structures × {1, 8} replicas
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		one, eight := rows[i], rows[i+1]
		if eight.LatencyUS >= one.LatencyUS {
			t.Fatalf("%s: 8 replicas latency %.2f not below 1 replica %.2f",
				one.Structure, eight.LatencyUS, one.LatencyUS)
		}
		if eight.AreaMM2 <= one.AreaMM2 {
			t.Fatalf("%s: 8 replicas area %.4f not above 1 replica %.4f",
				one.Structure, eight.AreaMM2, one.AreaMM2)
		}
	}
	var buf bytes.Buffer
	PrintTiming(&buf, 2, rows)
	if !strings.Contains(buf.String(), "replicas") {
		t.Fatal("Print output missing columns")
	}
}

func TestEfficiencyComparison(t *testing.T) {
	c := ctx(t)
	rows := EfficiencyComparison(c, 2)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	sei := rows[2]
	if sei.VsFPGA < 8 {
		t.Fatalf("SEI vs FPGA %.1fx, want ≥ 8x", sei.VsFPGA)
	}
	var buf bytes.Buffer
	PrintEfficiency(&buf, rows)
	if !strings.Contains(buf.String(), "FPGA") {
		t.Fatal("Print output missing baselines")
	}
}

func TestNoisyStudy(t *testing.T) {
	c := ctx(t)
	res, err := NoisyStudy(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ColMatch {
		t.Error("per-column packed path diverged from the float path")
	}
	if !res.CellMatch {
		t.Error("per-cell packed path diverged from the float path")
	}
	if res.CellDraws == 0 || res.AggDraws == 0 {
		t.Errorf("draw ledger empty: cell %d agg %d", res.CellDraws, res.AggDraws)
	}
	if res.AggDraws >= res.CellDraws {
		t.Errorf("aggregated mode drew %d >= exact %d", res.AggDraws, res.CellDraws)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "IDENTICAL") || !strings.Contains(buf.String(), "aggregated") {
		t.Fatal("Print output missing expected lines")
	}
}
