package obs

import "strings"

// Runtime activation-bound skip metrics (seicore bounded inference,
// DESIGN.md §16). These count work the bounded fast paths provably
// avoided: rows whose analog drive was skipped because every column of
// their block had already decided, columns decided by the suffix bound
// before the final sense-amp compare, digital bound evaluations paid
// to earn the skips, and whole blocks skipped by the cross-block
// digital-threshold test. Each metric exists as an aggregate counter
// and as per-stage "<name>_stageN" variants so skip rates can be read
// per conv stage.
const (
	// SEIRowsDriven counts active input rows actually driven in bounded
	// mode (the complement of SEIRowsSkipped over the active rows).
	SEIRowsDriven = "sei_rows_driven"
	// SEIRowsSkipped counts active input rows whose crossbar drive was
	// skipped: rows after a block fully decided, rows of wholly-skipped
	// blocks, and rows of pool-cropped windows whose output is never
	// read.
	SEIRowsSkipped = "sei_rows_skipped"
	// SEIColsEarlyExit counts output columns decided by the suffix
	// bound before the block's scan completed.
	SEIColsEarlyExit = "sei_cols_early_exit"
	// SEIBoundEvals counts per-column bound evaluations — the digital
	// work (two compares and a multiply-add) paid per checkpoint per
	// undecided column; power accounting charges these as adder events.
	SEIBoundEvals = "sei_bound_evals"
	// SEIBlocksSkipped counts split blocks skipped wholesale after the
	// cross-block digital threshold resolved every output column.
	SEIBlocksSkipped = "sei_blocks_skipped"
	// SEISkipRate is the derived gauge skipped/(driven+skipped),
	// published by PublishSkipRates as an aggregate and per stage.
	SEISkipRate = "sei_skip_rate"
)

// SkipHW is the pre-resolved bundle of activation-bound skip counters
// for one pipeline stage: every event lands on both the aggregate
// counter and the stage-suffixed one. All methods are no-ops on nil,
// so uninstrumented bounded runs pay one nil check per block.
type SkipHW struct {
	driven, skipped, cols, evals, blocks           *Counter
	stDriven, stSkipped, stCols, stEvals, stBlocks *Counter
}

// SkipHW returns the skip-counter bundle for the named stage (e.g.
// "stage1"), creating the aggregate and stage-suffixed counters on
// first use so they appear in reports — at value 0 — even when nothing
// is ever skipped. A nil recorder returns a nil bundle.
func (r *Recorder) SkipHW(stage string) *SkipHW {
	if r == nil {
		return nil
	}
	suf := "_" + stage
	return &SkipHW{
		driven:    r.Counter(SEIRowsDriven),
		skipped:   r.Counter(SEIRowsSkipped),
		cols:      r.Counter(SEIColsEarlyExit),
		evals:     r.Counter(SEIBoundEvals),
		blocks:    r.Counter(SEIBlocksSkipped),
		stDriven:  r.Counter(SEIRowsDriven + suf),
		stSkipped: r.Counter(SEIRowsSkipped + suf),
		stCols:    r.Counter(SEIColsEarlyExit + suf),
		stEvals:   r.Counter(SEIBoundEvals + suf),
		stBlocks:  r.Counter(SEIBlocksSkipped + suf),
	}
}

// Record adds one bounded-evaluation outcome: driven/skipped active
// rows, columns decided early, bound evaluations paid, and blocks
// skipped wholesale. Atomic adds commute, so totals are identical for
// every worker count.
func (s *SkipHW) Record(driven, skipped, colsEarly, boundEvals, blocksSkipped int64) {
	if s == nil {
		return
	}
	if driven != 0 {
		s.driven.Add(driven)
		s.stDriven.Add(driven)
	}
	if skipped != 0 {
		s.skipped.Add(skipped)
		s.stSkipped.Add(skipped)
	}
	if colsEarly != 0 {
		s.cols.Add(colsEarly)
		s.stCols.Add(colsEarly)
	}
	if boundEvals != 0 {
		s.evals.Add(boundEvals)
		s.stEvals.Add(boundEvals)
	}
	if blocksSkipped != 0 {
		s.blocks.Add(blocksSkipped)
		s.stBlocks.Add(blocksSkipped)
	}
}

// PublishSkipRates derives the sei_skip_rate gauges from the recorded
// skip counters: for the aggregate pair and every stage-suffixed pair
// with any activity, it sets Gauge(sei_skip_rate<suffix>) to
// skipped/(driven+skipped). Call from serial orchestration code after
// an instrumented evaluation.
func (r *Recorder) PublishSkipRates() {
	if r == nil {
		return
	}
	counters := r.CounterValues()
	for name, skipped := range counters {
		suffix, ok := strings.CutPrefix(name, SEIRowsSkipped)
		if !ok {
			continue
		}
		if suffix != "" && !strings.HasPrefix(suffix, "_") {
			continue
		}
		driven := counters[SEIRowsDriven+suffix]
		if total := driven + skipped; total > 0 {
			r.Gauge(SEISkipRate + suffix).Set(float64(skipped) / float64(total))
		}
	}
}
