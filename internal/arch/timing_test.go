package arch

import (
	"testing"

	"sei/internal/power"
	"sei/internal/seicore"
)

func TestTimingValidation(t *testing.T) {
	bad := []TimingConfig{
		{CrossbarReadNS: 0, ADCConversionNS: 1, SAEvalNS: 1, DigitalCycleNS: 1, Replicas: 1},
		{CrossbarReadNS: 10, ADCConversionNS: 1, SAEvalNS: 1, DigitalCycleNS: 1, Replicas: 0},
	}
	geoms := netGeometry(t, 2)
	m, _ := Map(geoms, DefaultConfig(seicore.StructSEI))
	for i, cfg := range bad {
		if _, err := m.Timing(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestTimingLatencyComposition(t *testing.T) {
	geoms := netGeometry(t, 1)
	m, _ := Map(geoms, DefaultConfig(seicore.StructDACADC))
	tm, err := m.Timing(DefaultTimingConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, l := range tm.Layers {
		if l.Waves != l.Geom.Uses {
			t.Fatalf("layer %s waves %d, want uses %d (1 replica)", l.Geom.Name, l.Waves, l.Geom.Uses)
		}
		sum += l.LatencyNS
	}
	if sum != tm.LatencyNS {
		t.Fatalf("latency %v != layer sum %v", tm.LatencyNS, sum)
	}
	// Conv 1 runs 576 waves — it must be the bottleneck.
	if tm.Bottleneck != 0 {
		t.Fatalf("bottleneck layer %d, want 0 (conv1)", tm.Bottleneck)
	}
	if tm.ThroughputPicsPerSec <= 0 {
		t.Fatal("no throughput computed")
	}
}

func TestTimingSEIFasterPerEval(t *testing.T) {
	// SA readout beats ADC conversion, so an SEI conv evaluation is
	// never slower than the merged design's.
	geoms := netGeometry(t, 1)
	base, _ := Map(geoms, DefaultConfig(seicore.StructDACADC))
	sei, _ := Map(geoms, DefaultConfig(seicore.StructSEI))
	cfg := DefaultTimingConfig()
	tb, _ := base.Timing(cfg)
	ts, _ := sei.Timing(cfg)
	for i := range ts.Layers {
		if ts.Layers[i].Geom.IsFC {
			continue
		}
		if ts.Layers[i].EvalNS > tb.Layers[i].EvalNS {
			t.Fatalf("layer %d: SEI eval %v ns > merged %v ns", i, ts.Layers[i].EvalNS, tb.Layers[i].EvalNS)
		}
	}
}

func TestTimingReplicasTradeTimeForArea(t *testing.T) {
	geoms := netGeometry(t, 1)
	m, _ := Map(geoms, DefaultConfig(seicore.StructSEI))
	cfg := DefaultTimingConfig()
	t1, _ := m.Timing(cfg)
	cfg.Replicas = 4
	t4, _ := m.Timing(cfg)
	if t4.LatencyNS >= t1.LatencyNS {
		t.Fatalf("4 replicas latency %v not below 1 replica %v", t4.LatencyNS, t1.LatencyNS)
	}
	// Conv waves shrink ~4×; FC stays at 1 wave.
	if t4.Layers[0].Waves != (t1.Layers[0].Waves+3)/4 {
		t.Fatalf("conv1 waves %d, want ceil(%d/4)", t4.Layers[0].Waves, t1.Layers[0].Waves)
	}
	if t4.Layers[2].Waves != 1 {
		t.Fatal("FC should stay at one wave")
	}

	lib := power.DefaultLibrary()
	a1, err := m.ReplicaArea(lib, 1)
	if err != nil {
		t.Fatal(err)
	}
	a4, err := m.ReplicaArea(lib, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a4.Total() <= a1.Total() {
		t.Fatalf("replica area %v not above base %v", a4.Total(), a1.Total())
	}
	// The single-replica path must agree with the plain Area sum.
	_, plain := m.Area(lib)
	if a1.Total() != plain.Total() {
		t.Fatalf("ReplicaArea(1) %v != Area %v", a1.Total(), plain.Total())
	}
	if _, err := m.ReplicaArea(lib, 0); err == nil {
		t.Fatal("accepted zero replicas")
	}
}

func TestTimingRowBlocksSerializeMerge(t *testing.T) {
	// More row blocks → longer digital merge → slower evaluation, once
	// the merge exceeds the readout.
	geoms := netGeometry(t, 1)
	big, _ := Map(geoms, DefaultConfig(seicore.StructDACADC))
	cfg512 := DefaultTimingConfig()
	tBig, _ := big.Timing(cfg512)

	small := DefaultConfig(seicore.StructDACADC)
	small.MaxCrossbar = 128
	m128, _ := Map(geoms, small)
	tSmall, _ := m128.Timing(cfg512)
	// FC at 128 rows: 8 row blocks → merge 8 ns > 1 ns readout.
	if tSmall.Layers[2].EvalNS <= tBig.Layers[2].EvalNS {
		t.Fatalf("FC eval at 128 (%v ns) not slower than at 512 (%v ns)",
			tSmall.Layers[2].EvalNS, tBig.Layers[2].EvalNS)
	}
}
