package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-boundary distribution of observed values.
// Bucket counts are atomic integers: observations from parallel chunk
// bodies commute, so bucket totals are identical for every worker
// count. The running sum is exact for integer-valued observations
// (which is all the simulator records — event counts per operation).
// A nil Histogram ignores Observe.
type Histogram struct {
	bounds []float64 // ascending upper bounds; implicit +Inf appended
	counts []atomic.Int64
	sum    atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	if !sort.Float64sAreSorted(b) {
		panic(fmt.Sprintf("obs: histogram bounds %v are not ascending", bounds))
	}
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value into the first bucket whose upper bound is
// ≥ v (the final bucket is +Inf).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
}

// Bounds returns the configured upper bounds (without the implicit
// +Inf bucket).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// Counts returns the per-bucket counts; the final entry is the +Inf
// bucket.
func (h *Histogram) Counts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var total int64
	for _, c := range h.Counts() {
		total += c
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.value()
}

// atomicFloat is a float64 accumulated with a CAS loop. Addition of
// the integer-valued observations the simulator records is exact and
// therefore commutative, keeping sums worker-count independent.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		cur := math.Float64frombits(old)
		if f.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }
