package nn

import (
	"sei/internal/mnist"
	"sei/internal/par"
)

// ParallelClassifier is a Classifier whose evaluation can be spread
// across goroutines: CloneForEval hands out a classifier for
// exclusive use by one goroutine. seed re-seeds any internal
// stochastic state (e.g. RRAM read noise) from the engine's per-chunk
// seeding scheme; noise-free evaluators ignore it and may return the
// receiver when Predict is already read-only.
type ParallelClassifier interface {
	Classifier
	CloneForEval(seed int64) Classifier
}

// evalSeedBase anchors the per-chunk noise streams of dataset
// evaluation. It is a fixed constant so evaluation results are
// reproducible run to run and independent of the worker count (the
// chunk grid depends only on the dataset size).
const evalSeedBase int64 = 0x5E1C0DE

// chunkEvaluator returns the classifier chunk c should use: a
// goroutine-exclusive clone when the classifier supports it, the
// shared classifier itself otherwise (in which case the caller must
// have forced the serial path).
func chunkEvaluator(c Classifier, chunk par.Chunk) Classifier {
	if pc, ok := c.(ParallelClassifier); ok {
		return pc.CloneForEval(par.ChunkSeed(evalSeedBase, chunk.Index))
	}
	return c
}

// evalWorkers resolves the worker count for a classifier: classifiers
// that cannot hand out clones are evaluated serially regardless of
// the requested parallelism.
func evalWorkers(c Classifier, workers int) int {
	if _, ok := c.(ParallelClassifier); !ok {
		return 1
	}
	return par.Resolve(workers)
}

// ClassifierErrorRateWorkers evaluates a classifier on a dataset with
// the given worker count (0 = all cores, 1 = the serial path). The
// result is bit-identical for every worker count: misclassification
// counting is order-independent and any evaluator noise is drawn from
// per-chunk seeded streams.
func ClassifierErrorRateWorkers(c Classifier, data *mnist.Dataset, workers int) float64 {
	return ClassifierErrorRateObs(nil, c, data, workers)
}

// ErrorRateWorkers evaluates a float network on a dataset with the
// given worker count (see ClassifierErrorRateWorkers).
func ErrorRateWorkers(net *Network, data *mnist.Dataset, workers int) float64 {
	return ClassifierErrorRateWorkers(net, data, workers)
}
