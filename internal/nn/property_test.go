package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sei/internal/mnist"
	"sei/internal/tensor"
)

// Property: softmax is invariant under adding a constant to all
// logits.
func TestSoftmaxTranslationInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		logits := make([]float64, n)
		shifted := make([]float64, n)
		c := rng.NormFloat64() * 10
		for i := range logits {
			logits[i] = rng.NormFloat64()
			shifted[i] = logits[i] + c
		}
		a, b := Softmax(logits), Softmax(shifted)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: one SGD step on a single sample reduces that sample's
// loss (for a small enough learning rate).
func TestSGDStepReducesSampleLoss(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := NewTableNetwork(2, seed)
		img := mnist.Synthetic(1, seed).Images[0]
		label := rng.Intn(10)

		logits := net.Forward(img)
		before, grad := CrossEntropyLoss(logits, label)
		net.ZeroGrads()
		net.Backward(grad)
		const lr = 1e-3
		for _, p := range net.Params() {
			p.Value.AXPY(-lr, p.Grad)
		}
		after, _ := CrossEntropyLoss(net.Forward(img), label)
		return after <= before+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: gradients accumulate additively — backprop twice gives
// exactly double the gradient.
func TestGradientAccumulationLinear(t *testing.T) {
	net := NewTableNetwork(2, 3)
	img := mnist.Synthetic(1, 4).Images[0]
	logits := net.Forward(img)
	_, grad := CrossEntropyLoss(logits, 3)

	net.ZeroGrads()
	net.Backward(grad)
	once := make([]*tensor.Tensor, 0)
	for _, p := range net.Params() {
		once = append(once, p.Grad.Clone())
	}

	// Second identical pass accumulates on top.
	net.Forward(img)
	net.Backward(grad)
	for i, p := range net.Params() {
		doubled := once[i].Clone()
		doubled.Scale(2)
		if !tensor.EqualApprox(p.Grad, doubled, 1e-9) {
			t.Fatalf("param %d gradient did not double on accumulation", i)
		}
	}
}

// Property: the forward pass is deterministic and side-effect-free on
// the input.
func TestForwardPure(t *testing.T) {
	net := NewTableNetwork(3, 5)
	img := mnist.Synthetic(1, 6).Images[0]
	orig := img.Clone()
	a := net.Forward(img)
	b := net.Forward(img)
	if !tensor.EqualApprox(a, b, 0) {
		t.Fatal("forward pass not deterministic")
	}
	if !tensor.EqualApprox(img, orig, 0) {
		t.Fatal("forward pass mutated its input")
	}
}

// Property: scaling the FC weights and bias by a positive constant
// never changes the argmax (the invariance the paper's weight
// re-scaling relies on).
func TestPositiveScalingPreservesArgmax(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := NewTableNetwork(2, seed)
		img := mnist.Synthetic(1, seed+1).Images[0]
		before := net.Predict(img)
		scale := 0.1 + rng.Float64()*10
		fc := net.Layers[len(net.Layers)-1].(*Dense)
		fc.Weight.Value.Scale(scale)
		fc.Bias.Value.Scale(scale)
		return net.Predict(img) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
