package nn

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sei/internal/mnist"
)

func TestConfusionMatrixSums(t *testing.T) {
	data := mnist.Synthetic(120, 9)
	net := NewTableNetwork(2, 3)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	Train(net, data, cfg)
	cm := ConfusionMatrix(net, data)
	total := 0
	diag := 0
	for tgt, row := range cm {
		for p, n := range row {
			total += n
			if tgt == p {
				diag += n
			}
		}
	}
	if total != data.Len() {
		t.Fatalf("confusion total %d, want %d", total, data.Len())
	}
	// Error rate from the matrix must equal ErrorRate.
	want := ErrorRate(net, data)
	got := 1 - float64(diag)/float64(total)
	if got != want {
		t.Fatalf("matrix error %.4f, ErrorRate %.4f", got, want)
	}
}

func TestPerClassErrorAndPrint(t *testing.T) {
	cm := make([][]int, mnist.NumClasses)
	for i := range cm {
		cm[i] = make([]int, mnist.NumClasses)
	}
	cm[0][0] = 8
	cm[0][1] = 2 // class 0: 20% error
	cm[1][1] = 5 // class 1: perfect
	errs := PerClassError(cm)
	if math.Abs(errs[0]-0.2) > 1e-12 || errs[1] != 0 {
		t.Fatalf("per-class errors %v", errs[:2])
	}
	if errs[5] != 0 {
		t.Fatal("empty class should report 0")
	}
	var buf bytes.Buffer
	PrintConfusion(&buf, cm)
	if !strings.Contains(buf.String(), "20.0%") {
		t.Fatalf("print missing per-class error:\n%s", buf.String())
	}
}

func TestMostConfusedPair(t *testing.T) {
	cm := make([][]int, mnist.NumClasses)
	for i := range cm {
		cm[i] = make([]int, mnist.NumClasses)
	}
	cm[3][3] = 100 // diagonal must be ignored
	cm[3][8] = 7
	cm[9][4] = 11
	tgt, pred, n := MostConfusedPair(cm)
	if tgt != 9 || pred != 4 || n != 11 {
		t.Fatalf("MostConfusedPair = (%d,%d,%d)", tgt, pred, n)
	}
}
