//go:build !race

package seicore

const raceEnabled = false
