package quant

import (
	"fmt"
	"math/rand"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/par"
)

// RecalibrateConfig controls the optional FC recalibration step.
type RecalibrateConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
	// Workers parallelizes the frozen-feature precomputation (0 = all
	// cores, 1 = serial). The SGD loop itself stays serial: it is
	// order-dependent and cheap next to the feature extraction.
	Workers int
	// Obs, when set, receives the engine scheduling metrics for the
	// feature precomputation.
	Obs *obs.Recorder
}

// DefaultRecalibrateConfig trains the classifier head for a few cheap
// epochs.
func DefaultRecalibrateConfig() RecalibrateConfig {
	return RecalibrateConfig{Epochs: 5, BatchSize: 16, LR: 0.05, Seed: 1}
}

// RecalibrateFC retrains only the final FC layer on the binarized
// features (softmax regression; the conv stages and thresholds are
// frozen). The paper does not need this step — its Caffe-trained
// networks lose <1 % from binarization — but on a weaker substrate the
// FC layer, trained against real-valued activations, can be mis-scaled
// for 0/1 inputs; recalibration removes exactly that mismatch without
// touching the hardware-relevant parts of the design. It is opt-in and
// reported separately in EXPERIMENTS.md.
func RecalibrateFC(q *QuantizedNet, train *mnist.Dataset, cfg RecalibrateConfig) error {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.LR <= 0 {
		return fmt.Errorf("quant: invalid recalibrate config %+v", cfg)
	}
	if err := par.Validate(cfg.Workers); err != nil {
		return fmt.Errorf("quant: recalibrate config: %w", err)
	}
	// Precompute the frozen binary features once, one slot per sample.
	features := make([][]float64, train.Len())
	par.ForEachRec(cfg.Obs, cfg.Workers, train.Len(), func(i int) {
		acts := q.BinaryActivations(train.Images[i])
		features[i] = acts[len(acts)-1].Data()
	})

	out, in := q.FC.W.Dim(0), q.FC.W.Dim(1)
	w := q.FC.W.Data()
	b := q.FC.B
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := rng.Perm(train.Len())

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			gw := make([]float64, len(w))
			gb := make([]float64, len(b))
			for _, s := range idx[start:end] {
				x := features[s]
				logits := make([]float64, out)
				for o := 0; o < out; o++ {
					row := w[o*in : (o+1)*in]
					acc := b[o]
					for j, xv := range x {
						if xv != 0 {
							acc += row[j]
						}
					}
					logits[o] = acc
				}
				p := nn.Softmax(logits)
				p[train.Labels[s]] -= 1
				for o := 0; o < out; o++ {
					if p[o] == 0 {
						continue
					}
					row := gw[o*in : (o+1)*in]
					for j, xv := range x {
						if xv != 0 {
							row[j] += p[o]
						}
					}
					gb[o] += p[o]
				}
			}
			scale := cfg.LR / float64(end-start)
			for i := range w {
				w[i] -= scale * gw[i]
			}
			for i := range b {
				b[i] -= scale * gb[i]
			}
		}
	}
	return nil
}
