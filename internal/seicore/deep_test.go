package seicore

import (
	"math/rand"
	"testing"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/quant"
	"sei/internal/rram"
)

// The whole pipeline must generalize beyond the paper's two-conv-stage
// shape: three conv stages, one of them without pooling, all mapped on
// SEI.
func TestPipelineGeneralizesToDeeperNetwork(t *testing.T) {
	train, test := mnist.SyntheticSplit(1200, 250, 31)
	net := nn.NewDeepNetwork(17)
	cfg := nn.DefaultTrainConfig()
	nn.Train(net, train, cfg)
	floatErr := nn.ErrorRate(net, test)
	if floatErr > 0.30 {
		t.Fatalf("deep network failed to train: %.4f", floatErr)
	}

	scfg := quant.DefaultSearchConfig()
	scfg.Samples = 250
	q, report, err := quant.QuantizeNetwork(net, train, []int{1, 28, 28}, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Layers) != 3 {
		t.Fatalf("quantized %d stages, want 3", len(report.Layers))
	}
	if q.Convs[1].PoolSize != 0 || q.Convs[0].PoolSize != 2 {
		t.Fatalf("pool sizes wrong: %d/%d/%d",
			q.Convs[0].PoolSize, q.Convs[1].PoolSize, q.Convs[2].PoolSize)
	}
	if err := quant.RecalibrateFC(q, train, quant.DefaultRecalibrateConfig()); err != nil {
		t.Fatal(err)
	}
	quantErr := q.ErrorRate(test)

	bcfg := DefaultSEIBuildConfig()
	bcfg.Layer.Model = rram.DefaultDeviceModel()
	design, err := BuildSEI(q, train, bcfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(design.Convs) != 2 { // stages 1 and 2 are SEI; stage 0 is the input layer
		t.Fatalf("SEI conv stages %d, want 2", len(design.Convs))
	}
	seiErr := nn.ClassifierErrorRate(design, test)
	t.Logf("deep network: float %.4f quant %.4f sei %.4f", floatErr, quantErr, seiErr)
	// conv3 splits (576 physical rows) in natural order here, which
	// costs accuracy by design — homogenization, tested in package
	// experiments, is the cure. This test asserts the pipeline composes
	// and stays in a sane band, not split-free accuracy.
	if seiErr > quantErr+0.12 {
		t.Fatalf("deep SEI error %.4f far above digital %.4f", seiErr, quantErr)
	}
}
