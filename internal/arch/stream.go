package arch

import (
	"fmt"
)

// Streaming (wavefront) execution model. arch.Timing assumes layers
// run sequentially per picture; a real design with the line buffers of
// LineBufferValues overlaps them — a conv layer can fire as soon as
// its KH input rows exist, so computation flows through the network as
// a wavefront. StreamMakespan simulates that row-level pipeline with
// an exact recurrence and reports the end-to-end makespan and the
// per-layer stall time, validating the closed-form model from the
// optimistic side (Timing.LatencyNS is an upper bound, the bottleneck
// layer's latency a lower bound).

// StreamLayer is one layer's streaming statistics.
type StreamLayer struct {
	Geom LayerGeom
	// BusyNS is time spent evaluating waves; StallNS is time spent
	// waiting for the producer layer.
	BusyNS, StallNS float64
	// FinishNS is when the layer's last output became available.
	FinishNS float64
}

// StreamResult is the wavefront simulation outcome.
type StreamResult struct {
	Layers []StreamLayer
	// MakespanNS is the single-picture latency with row-level
	// inter-layer overlap: when every computed row (including rows a
	// ragged pool discards) has finished. The classification itself is
	// ready at Layers[last].FinishNS, which can be slightly earlier.
	MakespanNS float64
}

// StreamMakespan runs the row-streaming recurrence under the timing
// constants. It supports the stride-1 square-kernel geometry of the
// paper's networks (GeometryOf provides it); FC layers synchronize on
// the full feature map.
func (m *Mapping) StreamMakespan(cfg TimingConfig) (*StreamResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	closed, err := m.Timing(cfg)
	if err != nil {
		return nil, err
	}
	res := &StreamResult{}
	// availRow[r] is when input row r of the current layer becomes
	// available; initially the image rows (all at t = 0).
	var availRow []float64

	for li, l := range m.Layers {
		g := l.Geom
		evalNS := closed.Layers[li].EvalNS
		replicas := cfg.Replicas
		if g.IsFC || replicas < 1 {
			replicas = 1
		}

		if g.IsFC {
			start := 0.0
			for _, t := range availRow {
				if t > start {
					start = t
				}
			}
			finish := start + evalNS
			res.Layers = append(res.Layers, StreamLayer{
				Geom: g, BusyNS: evalNS, StallNS: start, FinishNS: finish,
			})
			if finish > res.MakespanNS {
				res.MakespanNS = finish
			}
			availRow = []float64{finish}
			continue
		}

		if g.OutW <= 0 || g.Uses%g.OutW != 0 {
			return nil, fmt.Errorf("arch: layer %s lacks streaming geometry (OutW=%d, Uses=%d)", g.Name, g.OutW, g.Uses)
		}
		outH := g.Uses / g.OutW
		if availRow == nil {
			// First layer: image rows all present at t = 0.
			availRow = make([]float64, outH+g.KH-1)
		}
		if len(availRow) < outH+g.KH-1 {
			return nil, fmt.Errorf("arch: layer %s needs %d input rows, producer supplies %d",
				g.Name, outH+g.KH-1, len(availRow))
		}
		rowTime := float64((g.OutW+replicas-1)/replicas) * evalNS

		sl := StreamLayer{Geom: g}
		finishRow := make([]float64, outH)
		prevFinish := 0.0
		for r := 0; r < outH; r++ {
			ready := availRow[r+g.KH-1] // last row of the window
			start := prevFinish
			if ready > start {
				sl.StallNS += ready - start
				start = ready
			}
			finishRow[r] = start + rowTime
			sl.BusyNS += rowTime
			prevFinish = finishRow[r]
		}
		sl.FinishNS = prevFinish
		res.Layers = append(res.Layers, sl)
		if prevFinish > res.MakespanNS {
			res.MakespanNS = prevFinish
		}

		// Next layer's input rows: pooled output rows (the OR pool emits
		// row p once its PoolSize source rows are done).
		if g.PoolSize > 1 {
			pooled := make([]float64, outH/g.PoolSize)
			for p := range pooled {
				pooled[p] = finishRow[p*g.PoolSize+g.PoolSize-1]
			}
			availRow = pooled
		} else {
			availRow = finishRow
		}
	}
	return res, nil
}
