package nn

import (
	"fmt"
	"io"
	"math/rand"

	"sei/internal/mnist"
	"sei/internal/obs"
	"sei/internal/tensor"
)

// TrainConfig controls SGD training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	LRDecay   float64   // multiplicative LR decay applied per epoch
	Seed      int64     // shuffling seed
	Log       io.Writer // optional progress sink; nil silences logging

	// Val, when set, is evaluated after every epoch and its error
	// rate logged. Validation runs on the parallel engine with
	// Workers goroutines (0 = all cores, 1 = serial); the gradient
	// loop itself stays serial because SGD is order-dependent.
	Val     *mnist.Dataset
	Workers int

	// Obs, when set, receives training counters (train_images,
	// train_batches) and per-epoch progress; nil disables recording.
	Obs *obs.Recorder
}

// DefaultTrainConfig returns settings that train the Table-2 networks
// to low error on the synthetic MNIST task.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:    3,
		BatchSize: 16,
		LR:        0.05,
		Momentum:  0.9,
		LRDecay:   0.7,
		Seed:      1,
	}
}

// Train runs minibatch SGD with momentum over the dataset and returns
// the average loss of the final epoch.
func Train(net *Network, data *mnist.Dataset, cfg TrainConfig) float64 {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		panic(fmt.Sprintf("nn: invalid train config %+v", cfg))
	}
	if cfg.Workers < 0 {
		panic(fmt.Sprintf("nn: train config Workers %d is negative (0 means all cores, 1 the serial path)", cfg.Workers))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	params := net.Params()
	vel := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		vel[i] = tensor.New(p.Value.Shape()...)
	}

	// Work on a shuffled copy of the sample order, not the caller's
	// dataset.
	idx := make([]int, data.Len())
	for i := range idx {
		idx[i] = i
	}

	lr := cfg.LR
	lastEpochLoss := 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss := 0.0
		seen := 0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			net.ZeroGrads()
			batchLoss := 0.0
			for _, s := range idx[start:end] {
				logits := net.Forward(data.Images[s])
				loss, grad := CrossEntropyLoss(logits, data.Labels[s])
				batchLoss += loss
				net.Backward(grad)
			}
			bs := float64(end - start)
			for i, p := range params {
				v := vel[i]
				v.Scale(cfg.Momentum)
				v.AXPY(-lr/bs, p.Grad)
				p.Value.AddInPlace(v)
			}
			epochLoss += batchLoss
			seen += end - start
			cfg.Obs.Counter("train_images").Add(int64(end - start))
			cfg.Obs.Counter("train_batches").Add(1)
		}
		lastEpochLoss = epochLoss / float64(seen)
		cfg.Obs.Progress("train/"+net.Name, epoch+1, cfg.Epochs)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "nn: %s epoch %d/%d loss %.4f lr %.4f\n",
				net.Name, epoch+1, cfg.Epochs, lastEpochLoss, lr)
		}
		if cfg.Val != nil && cfg.Val.Len() > 0 {
			valErr := ErrorRateObs(cfg.Obs, net, cfg.Val, cfg.Workers)
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "nn: %s epoch %d/%d val error %.2f%%\n",
					net.Name, epoch+1, cfg.Epochs, 100*valErr)
			}
		}
		if cfg.LRDecay > 0 {
			lr *= cfg.LRDecay
		}
	}
	return lastEpochLoss
}

// ErrorRate returns the fraction of misclassified samples in [0,1].
// It runs on the parallel engine with all cores; the result is
// bit-identical to the serial path (see ClassifierErrorRateWorkers).
func ErrorRate(net *Network, data *mnist.Dataset) float64 {
	return ErrorRateWorkers(net, data, 0)
}

// Classifier is anything that maps an image to a class. The quantized
// and hardware-mapped networks implement it alongside *Network.
type Classifier interface {
	Predict(in *tensor.Tensor) int
}

// ClassifierErrorRate evaluates any Classifier on a dataset. When the
// classifier supports ParallelClassifier the evaluation fans out over
// all cores; plain classifiers are evaluated serially.
func ClassifierErrorRate(c Classifier, data *mnist.Dataset) float64 {
	return ClassifierErrorRateWorkers(c, data, 0)
}
