package vecf

import (
	"math"
	"testing"
)

// TestGaussSeedStabilityAcrossBlockSizes is the satellite property
// test: the same seed yields the same stream no matter how it is
// sliced into blocks — scalar GaussAt, one big block, and every block
// size a worker might use all agree bit for bit.
func TestGaussSeedStabilityAcrossBlockSizes(t *testing.T) {
	const n = 1024
	for _, seed := range []uint64{0, 1, 0xDEADBEEF, ^uint64(0)} {
		ref := make([]float64, n)
		for i := range ref {
			ref[i] = GaussAt(seed, uint64(i))
		}
		for _, block := range []int{1, 2, 3, 8, 64, 100, n} {
			got := make([]float64, n)
			for start := 0; start < n; start += block {
				end := start + block
				if end > n {
					end = n
				}
				GaussBlock(seed, uint64(start), got[start:end])
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("seed %#x block %d: draw %d = %v, scalar %v",
						seed, block, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestGaussSeedStabilityAcrossOffsets pins that a block starting
// mid-stream reads the same values the prefix draws saw — the property
// that lets a resumed stream (e.g. a per-chunk clone that drew k
// values) continue exactly where a fresh walk of the whole stream
// would be.
func TestGaussSeedStabilityAcrossOffsets(t *testing.T) {
	const seed, n = 42, 512
	full := make([]float64, n)
	GaussBlock(seed, 0, full)
	for _, off := range []int{1, 7, 63, 64, 65, 500} {
		tail := make([]float64, n-off)
		GaussBlock(seed, uint64(off), tail)
		for i, v := range tail {
			if v != full[off+i] {
				t.Fatalf("offset %d: draw %d = %v, want %v", off, i, v, full[off+i])
			}
		}
	}
}

// TestGaussSeedsDiffer guards against a degenerate seed mix: distinct
// seeds must give distinct streams.
func TestGaussSeedsDiffer(t *testing.T) {
	same := 0
	for i := uint64(0); i < 64; i++ {
		if GaussAt(1, i) == GaussAt(2, i) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d of 64 draws identical across seeds 1 and 2", same)
	}
}

// TestGaussMoments checks the stream is standard normal to sampling
// accuracy: mean ≈ 0, variance ≈ 1, symmetric tails. Deterministic
// (fixed seed), so the tolerances cannot flake.
func TestGaussMoments(t *testing.T) {
	const n = 200000
	var sum, sumSq float64
	tails := 0
	for i := 0; i < n; i++ {
		g := GaussAt(7, uint64(i))
		sum += g
		sumSq += g * g
		if math.Abs(g) > 1.959964 {
			tails++
		}
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean %v, want ≈ 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("variance %v, want ≈ 1", variance)
	}
	// P(|Z| > 1.96) = 5%; allow ±0.5% absolute.
	if frac := float64(tails) / n; math.Abs(frac-0.05) > 0.005 {
		t.Errorf("two-sided 5%% tail mass %v, want ≈ 0.05", frac)
	}
}

// TestGaussInverseCDFMonotone pins the uniform→normal map: larger
// uniforms give larger normals, and the median uniform maps to ≈ 0.
func TestGaussInverseCDFMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for u := 0.01; u < 1; u += 0.01 {
		g := math.Sqrt2 * math.Erfinv(2*u-1)
		if g <= prev {
			t.Fatalf("Φ⁻¹ not increasing at u=%v", u)
		}
		prev = g
	}
	if g := math.Sqrt2 * math.Erfinv(0); g != 0 {
		t.Fatalf("Φ⁻¹(0.5) = %v, want 0", g)
	}
}

func BenchmarkGaussBlock(b *testing.B) {
	dst := make([]float64, 64)
	b.SetBytes(64 * 8)
	for i := 0; i < b.N; i++ {
		GaussBlock(9, uint64(i)*64, dst)
	}
}
