package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/seicore"
)

// NoisyResult reports the packed non-ideal inference study (DESIGN.md
// §17): how much faster the packed path evaluates a Table-5-style
// noisy design than the float path it is bit-identical to, and what
// the opt-in aggregated-variance approximation buys (fewer RNG draws)
// and costs (a measured accuracy delta) on per-cell noise models.
type NoisyResult struct {
	NetworkID int
	Images    int
	Sigma     float64

	// Per-column model (the Table-5 pessimistic envelope): the float
	// path vs the packed path, which must agree label for label.
	ColFloatErr  float64
	ColPackedErr float64
	ColMatch     bool
	ColFloatSec  float64
	ColPackedSec float64
	ColSpeedup   float64

	// Per-cell model: exact packed vs float (again bit-identical), and
	// the aggregated-variance approximation with its draw savings.
	CellFloatErr  float64
	CellPackedErr float64
	CellMatch     bool
	CellFloatSec  float64
	CellPackedSec float64
	CellSpeedup   float64
	CellDraws     int64 // exact per-cell draws over the run
	AggDraws      int64 // aggregated-mode draws over the same run
	AggErr        float64
	AggDeltaPP    float64 // (AggErr − CellPackedErr) in percentage points
	AggSec        float64
	AggSpeedup    float64 // vs the per-cell float path
}

// noisyEval runs d over data on the current dispatch settings and
// returns labels, error rate, wall seconds and the noise-draw total.
func noisyEval(d *seicore.SEIDesign, data *mnist.Dataset, workers int) ([]int, float64, float64, int64) {
	rec := obs.New()
	d.Instrument(rec)
	start := time.Now()
	res := nn.PredictBatchObs(rec, d, data.Images, workers)
	sec := time.Since(start).Seconds()
	d.Instrument(nil)
	labels := make([]int, len(res))
	wrong := 0
	for i, r := range res {
		if r.Err != nil {
			panic(fmt.Sprintf("experiments: noisy study predict image %d: %v", i, r.Err))
		}
		labels[i] = r.Label
		if r.Label != data.Labels[i] {
			wrong++
		}
	}
	return labels, float64(wrong) / float64(len(labels)), sec, rec.CounterValues()[obs.SEINoiseDraws]
}

// NoisyStudy measures the packed non-ideal path on one network: a
// per-column read-noise design (the Table-5 robustness configuration)
// and a per-cell design, each evaluated on the float path and the
// packed path — which must agree bit for bit — plus the per-cell
// aggregated-variance approximation with its measured accuracy delta.
// This is the study behind Monte Carlo device-variation campaigns: the
// speedup multiplies directly into how many noise samples a campaign
// can afford.
func NoisyStudy(c *Context, networkID int) (*NoisyResult, error) {
	q := c.QuantizedCalibrated(networkID)
	workers := c.Cfg.Workers
	res := &NoisyResult{
		NetworkID: networkID,
		Images:    c.Test.Len(),
		Sigma:     0.05,
	}

	run := func(perCell bool) (*seicore.SEIDesign, error) {
		cfg := seicore.DefaultSEIBuildConfig()
		cfg.DynamicThreshold = false
		cfg.Layer.Model.ReadNoiseSigma = res.Sigma
		cfg.Layer.Model.ReadNoisePerCell = perCell
		return seicore.BuildSEI(q, nil, cfg, rand.New(rand.NewSource(c.Cfg.Seed)))
	}
	match := func(a, b []int) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	c.logf("noisy study: per-column sigma=%.2f over %d images\n", res.Sigma, res.Images)
	d, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("building per-column noisy design: %w", err)
	}
	d.SetFastPath(false)
	floatLabels, floatErr, floatSec, _ := noisyEval(d, c.Test, workers)
	d.SetFastPath(true)
	packedLabels, packedErr, packedSec, _ := noisyEval(d, c.Test, workers)
	res.ColFloatErr, res.ColPackedErr = floatErr, packedErr
	res.ColFloatSec, res.ColPackedSec = floatSec, packedSec
	res.ColMatch = match(floatLabels, packedLabels)
	if packedSec > 0 {
		res.ColSpeedup = floatSec / packedSec
	}

	c.logf("noisy study: per-cell sigma=%.2f\n", res.Sigma)
	d, err = run(true)
	if err != nil {
		return nil, fmt.Errorf("building per-cell noisy design: %w", err)
	}
	d.SetFastPath(false)
	floatLabels, floatErr, floatSec, _ = noisyEval(d, c.Test, workers)
	d.SetFastPath(true)
	packedLabels, packedErr, packedSec, draws := noisyEval(d, c.Test, workers)
	res.CellFloatErr, res.CellPackedErr = floatErr, packedErr
	res.CellFloatSec, res.CellPackedSec = floatSec, packedSec
	res.CellMatch = match(floatLabels, packedLabels)
	res.CellDraws = draws
	if packedSec > 0 {
		res.CellSpeedup = floatSec / packedSec
	}

	c.logf("noisy study: per-cell aggregated-variance mode\n")
	d.SetNoiseApprox(true)
	_, aggErr, aggSec, aggDraws := noisyEval(d, c.Test, workers)
	d.SetNoiseApprox(false)
	res.AggErr = aggErr
	res.AggDeltaPP = 100 * (aggErr - res.CellPackedErr)
	res.AggSec = aggSec
	res.AggDraws = aggDraws
	if aggSec > 0 {
		res.AggSpeedup = floatSec / aggSec
	}
	return res, nil
}

// Print renders the noisy study.
func (r *NoisyResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Packed non-ideal inference (Network %d, %d images, sigma=%.2f)\n",
		r.NetworkID, r.Images, r.Sigma)
	label := func(m bool) string {
		if m {
			return "IDENTICAL"
		}
		return "DIVERGED (bug: the packed path must be exact)"
	}
	fmt.Fprintf(w, "  per-column noise: labels %s (err %.2f%%)\n", label(r.ColMatch), 100*r.ColPackedErr)
	fmt.Fprintf(w, "    float %.2fs -> packed %.2fs  (%.1fx)\n", r.ColFloatSec, r.ColPackedSec, r.ColSpeedup)
	fmt.Fprintf(w, "  per-cell noise:   labels %s (err %.2f%%)\n", label(r.CellMatch), 100*r.CellPackedErr)
	fmt.Fprintf(w, "    float %.2fs -> packed %.2fs  (%.1fx), %d draws\n",
		r.CellFloatSec, r.CellPackedSec, r.CellSpeedup, r.CellDraws)
	fmt.Fprintf(w, "  aggregated-variance mode: err %.2f%% (delta %+.2f pp), %d draws (%.1fx fewer), %.2fs (%.1fx vs float)\n",
		100*r.AggErr, r.AggDeltaPP, r.AggDraws, safeRatio(float64(r.CellDraws), float64(r.AggDraws)), r.AggSec, r.AggSpeedup)
	fmt.Fprintln(w, "  (speedups multiply directly into Monte Carlo campaign size: same noise statistics, more samples per budget)")
}

// safeRatio is a/b guarded against a zero denominator.
func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
