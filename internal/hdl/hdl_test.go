package hdl

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/quant"
	"sei/internal/tensor"
)

var fixtureQ *quant.QuantizedNet

func getQ(t *testing.T) *quant.QuantizedNet {
	t.Helper()
	if fixtureQ == nil {
		train := mnist.Synthetic(1000, 5)
		net := nn.NewTableNetwork(2, 7)
		nn.Train(net, train, nn.DefaultTrainConfig())
		cfg := quant.DefaultSearchConfig()
		cfg.Samples = 200
		q, _, err := quant.QuantizeNetwork(net, train, []int{1, 28, 28}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fixtureQ = q
	}
	return fixtureQ
}

func TestModelsShape(t *testing.T) {
	q := getQ(t)
	stages, fc, err := Models(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 1 { // conv stage 1 only (stage 0 is the input layer)
		t.Fatalf("got %d stage models, want 1", len(stages))
	}
	s := stages[0]
	if s.N != 36 || s.M != 8 || len(s.W) != 36*8 {
		t.Fatalf("stage model shape %dx%d (%d weights)", s.N, s.M, len(s.W))
	}
	if fc.N != 200 || fc.M != 10 {
		t.Fatalf("FC model shape %dx%d", fc.N, fc.M)
	}
	for _, v := range s.W {
		if v < -127 || v > 127 {
			t.Fatalf("weight %d outside int8 range", v)
		}
	}
}

// The integer stage model must agree with the float digital evaluator
// on almost all bits (they differ only when a sum lands within one
// quantization step of the threshold).
func TestStageModelMatchesDigital(t *testing.T) {
	q := getQ(t)
	stages, _, err := Models(q)
	if err != nil {
		t.Fatal(err)
	}
	s := stages[0]
	digital := q.Digital()
	rng := rand.New(rand.NewSource(3))
	agree, total := 0, 0
	for trial := 0; trial < 200; trial++ {
		in := make([]bool, s.N)
		inF := make([]float64, s.N)
		for j := range in {
			if rng.Float64() < 0.3 {
				in[j] = true
				inF[j] = 1
			}
		}
		got := s.Eval(in)
		want := digital.EvalConv(1, inF)
		for c := range got {
			total++
			if got[c] == want[c] {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.98 {
		t.Fatalf("integer model agrees on %.4f of bits, want ≥ 0.98", frac)
	}
}

func TestFCModelArgmaxMatchesDigital(t *testing.T) {
	q := getQ(t)
	_, fc, err := Models(q)
	if err != nil {
		t.Fatal(err)
	}
	digital := q.Digital()
	rng := rand.New(rand.NewSource(4))
	agree := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		in := make([]bool, fc.N)
		inF := make([]float64, fc.N)
		for j := range in {
			if rng.Float64() < 0.1 {
				in[j] = true
				inF[j] = 1
			}
		}
		_, got := fc.Eval(in)
		scores := digital.EvalFC(inF)
		want := tensor.FromSlice(scores, len(scores)).ArgMax()
		if got == want {
			agree++
		}
	}
	if agree < trials*9/10 {
		t.Fatalf("FC argmax agrees on %d/%d trials", agree, trials)
	}
}

func TestExportWellFormed(t *testing.T) {
	q := getQ(t)
	var buf bytes.Buffer
	if err := Export(q, &buf); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"module sei_stage1 (", "module sei_fc (",
		"endmodule", "function signed [7:0] weight;",
		"localparam signed [31:0] THRESHOLD",
	} {
		if !strings.Contains(v, want) {
			t.Fatalf("generated RTL missing %q", want)
		}
	}
	// Balanced module/endmodule and case/endcase.
	decl := strings.Count(v, "\nmodule ")
	end := strings.Count(v, "\nendmodule")
	if decl != end || decl != 2 {
		t.Fatalf("module/endmodule mismatch: %d/%d", decl, end)
	}
	if strings.Count(v, "case (") != strings.Count(v, "endcase") {
		t.Fatal("case/endcase mismatch")
	}
	// Every weight literal must be 8-bit signed decimal.
	if strings.Contains(v, "8'sd128") {
		t.Fatal("weight literal overflows signed 8-bit")
	}
}

func TestVerilogSigned8(t *testing.T) {
	if verilogSigned8(-38) != "-8'sd38" || verilogSigned8(127) != "8'sd127" || verilogSigned8(0) != "8'sd0" {
		t.Fatal("signed literal rendering wrong")
	}
}

func TestBitsLiteral(t *testing.T) {
	got := bitsLiteral([]bool{true, false, false, true}) // LSB first
	if got != "4'b1001" {
		t.Fatalf("bitsLiteral = %q, want 4'b1001", got)
	}
}

func TestTestbenchSelfChecking(t *testing.T) {
	q := getQ(t)
	stages, _, err := Models(q)
	if err != nil {
		t.Fatal(err)
	}
	s := stages[0]
	rng := rand.New(rand.NewSource(5))
	vectors := make([][]bool, 5)
	for i := range vectors {
		v := make([]bool, s.N)
		for j := range v {
			v[j] = rng.Float64() < 0.3
		}
		vectors[i] = v
	}
	var buf bytes.Buffer
	if err := WriteTestbench(&buf, s, vectors); err != nil {
		t.Fatal(err)
	}
	tb := buf.String()
	if !strings.Contains(tb, "module sei_stage1_tb;") || !strings.Contains(tb, "$finish") {
		t.Fatal("testbench malformed")
	}
	if strings.Count(tb, "in = ") != 5 {
		t.Fatalf("testbench has %d stimulus lines, want 5", strings.Count(tb, "in = "))
	}
	// Expected values embedded must match the Go model.
	want := bitsLiteral(s.Eval(vectors[0]))
	if !strings.Contains(tb, want) {
		t.Fatalf("testbench missing expected literal %s", want)
	}
}

func TestTestbenchRejectsBadVector(t *testing.T) {
	q := getQ(t)
	stages, _, _ := Models(q)
	var buf bytes.Buffer
	if err := WriteTestbench(&buf, stages[0], [][]bool{make([]bool, 3)}); err == nil {
		t.Fatal("accepted wrong-length vector")
	}
}

func TestStageEvalLengthPanics(t *testing.T) {
	q := getQ(t)
	stages, _, _ := Models(q)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input length did not panic")
		}
	}()
	stages[0].Eval(make([]bool, 2))
}
