package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/tensor"
)

// HTTP limits. Requests beyond them are rejected with 400, never
// buffered.
const (
	// MaxImagesPerRequest bounds one predict request; larger batches
	// should be split client-side (the batcher re-coalesces them).
	// Note it deliberately exceeds the default QueueCap (256): a
	// maximal request against a default queue is rejected up front
	// with ErrBatchTooLarge → 413 rather than admitted piecemeal —
	// raise -queue to serve bigger single requests.
	MaxImagesPerRequest = 1024
	// maxBodyBytes bounds the request body (1024 images of 784 JSON
	// floats fit comfortably).
	maxBodyBytes = 32 << 20
)

// MetricHTTPPanics counts handler panics contained by the recovery
// middleware (500 to the client, process stays up).
const MetricHTTPPanics = "serve_http_panics"

// MetricReloads counts generation publishes through the admin surface
// (reload, canary promote/rollback) and SIGHUP.
const MetricReloads = "serve_reloads"

// MetricRequestSeconds is the end-to-end predict latency histogram:
// request decode through batcher queue wait, engine evaluation and
// response encode, observed once per POST /v1/predict (including
// rejected and failed requests — backpressure latency is part of the
// distribution). Buckets are obs.LatencyBounds(); /metrics exposes it
// as a standard cumulative Prometheus histogram, and seibench derives
// serve p50/p99/p999 from the same bounds client-side. The histogram
// is resolved once at handler construction, so steady-state recording
// is two atomic adds — no per-request lookups or bound rebuilds.
const MetricRequestSeconds = "serve_request_seconds"

// MetricQueueDepth is the pool's pending-predict gauge (summed across
// per-design queues), sampled at scrape/health time (queues drain in
// microseconds, so a sampled gauge is the honest representation — a
// per-event gauge would only ever show the scraper its own flush).
const MetricQueueDepth = "serve_queue_depth"

// Options wires a handler together.
type Options struct {
	Registry *Registry
	// Pool shards batching per design; one hot design's queue cannot
	// reject or delay another design's requests.
	Pool *Pool
	// Obs backs /metrics and the handler counters; sharing it with the
	// pool gives one scrape surface. Nil disables recording.
	Obs *obs.Recorder
	// Timeout bounds one predict request end to end (queue wait plus
	// evaluation). Zero means DefaultTimeout.
	Timeout time.Duration
}

// DefaultTimeout bounds a predict request when Options.Timeout is 0.
const DefaultTimeout = 30 * time.Second

// predictRequest is the POST /v1/predict body: a design name and a
// batch of flattened 28×28 images (784 pixels each, values in [0,1]).
type predictRequest struct {
	Design string      `json:"design"`
	Images [][]float64 `json:"images"`
}

// predictResult is one image's outcome. Failed images carry label -1
// and an error string; the rest of the batch is unaffected.
type predictResult struct {
	Label int    `json:"label"`
	Error string `json:"error,omitempty"`
}

type predictResponse struct {
	Design string `json:"design"`
	// Generation is the design generation that served the whole
	// request (one request never spans generations).
	Generation int             `json:"generation"`
	Results    []predictResult `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

type server struct {
	opts Options
	// latency is MetricRequestSeconds, resolved once at construction —
	// the per-request path must not rebuild obs.LatencyBounds() or
	// re-resolve the histogram (nil when Obs is nil; Observe is a
	// no-op then).
	latency *obs.Histogram
}

// NewHandler returns the service's HTTP surface:
//
//	POST /v1/predict        — batched classification (?generation= pins one)
//	GET  /v1/designs        — resolvable design names + live generations
//	POST /v1/admin/reload   — publish a new generation from disk (?design=&canary=)
//	POST /v1/admin/canary   — adjust/promote/rollback a canary split
//	POST /v1/admin/unregister — retire a design and tear down its queue
//	GET  /healthz           — liveness and drain state
//	GET  /metrics           — Prometheus text exposition
//
// Every handler is wrapped in panic recovery: a bug answers 500 and
// increments serve_http_panics instead of killing the process.
func NewHandler(opts Options) http.Handler {
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	s := &server{opts: opts}
	if opts.Obs != nil {
		s.latency = opts.Obs.Histogram(MetricRequestSeconds, obs.LatencyBounds())
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("GET /v1/designs", s.handleDesigns)
	mux.HandleFunc("POST /v1/admin/reload", s.handleReload)
	mux.HandleFunc("POST /v1/admin/canary", s.handleCanary)
	mux.HandleFunc("POST /v1/admin/unregister", s.handleUnregister)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.recoverPanics(mux)
}

func (s *server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.opts.Obs.Counter(MetricHTTPPanics).Add(1)
				writeJSON(w, http.StatusInternalServerError,
					errorResponse{Error: fmt.Sprintf("internal error: %v", rec)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// statusFor maps the service's typed errors onto HTTP codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownDesign), errors.Is(err, ErrUnknownGeneration):
		return http.StatusNotFound
	case errors.Is(err, nn.ErrBadInput):
		return http.StatusBadRequest
	case errors.Is(err, ErrBatchTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDeadlineTooTight):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNoCanary), errors.Is(err, ErrNoSnapshot):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	default:
		return http.StatusInternalServerError
	}
}

// recordLatency is the per-request histogram bookkeeping: two atomic
// adds on the pre-resolved histogram, zero allocations (pinned by
// TestRecordLatencyZeroAllocs).
func (s *server) recordLatency(start time.Time) {
	s.latency.Observe(time.Since(start).Seconds())
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer s.recordLatency(start)
	var req predictRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed request body: " + err.Error()})
		return
	}
	if req.Design == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing design name"})
		return
	}
	if len(req.Images) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no images"})
		return
	}
	if len(req.Images) > MaxImagesPerRequest {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("%d images exceeds the per-request limit of %d", len(req.Images), MaxImagesPerRequest)})
		return
	}
	pin := 0
	if g := r.URL.Query().Get("generation"); g != "" {
		n, err := strconv.Atoi(g)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid generation %q", g)})
			return
		}
		pin = n
	}
	c, gen, err := s.opts.Registry.Resolve(req.Design, pin)
	if err != nil {
		writeJSON(w, statusFor(err), errorResponse{Error: err.Error()})
		return
	}
	b, err := s.opts.Pool.For(req.Design)
	if err != nil {
		writeJSON(w, statusFor(err), errorResponse{Error: err.Error()})
		return
	}
	imgs := make([]*tensor.Tensor, len(req.Images))
	for i, px := range req.Images {
		if len(px) != mnist.Side*mnist.Side {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: fmt.Sprintf("image %d has %d pixels, want %d", i, len(px), mnist.Side*mnist.Side)})
			return
		}
		imgs[i] = tensor.FromSlice(px, 1, mnist.Side, mnist.Side)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	res, err := b.Predict(ctx, c, imgs)
	if err != nil {
		writeJSON(w, statusFor(err), errorResponse{Error: err.Error()})
		return
	}
	resp := predictResponse{Design: req.Design, Generation: gen, Results: make([]predictResult, len(res))}
	failed := 0
	for i, pr := range res {
		resp.Results[i].Label = pr.Label
		if pr.Err != nil {
			resp.Results[i].Error = pr.Err.Error()
			failed++
		}
	}
	// Per-image failures ride inside a 200 as long as something
	// succeeded; a fully failed batch answers with the first error's
	// status so single-image clients see a plain 4xx/5xx.
	status := http.StatusOK
	if failed == len(res) {
		for _, pr := range res {
			if pr.Err != nil {
				status = statusFor(pr.Err)
				break
			}
		}
	}
	writeJSON(w, status, resp)
}

// designInfo is one design's entry in GET /v1/designs.
type designInfo struct {
	Name        string  `json:"name"`
	Generations []int   `json:"generations"`
	Canary      float64 `json:"canary"`
}

func (s *server) handleDesigns(w http.ResponseWriter, _ *http.Request) {
	names := s.opts.Registry.Names()
	var live []designInfo
	for _, name := range names {
		if d := s.opts.Registry.Lookup(name); d != nil {
			live = append(live, designInfo{Name: name, Generations: d.Generations(), Canary: d.Canary})
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Designs []string     `json:"designs"`
		Live    []designInfo `json:"live,omitempty"`
	}{Designs: names, Live: live})
}

// reloadResponse answers the admin mutations.
type reloadResponse struct {
	Design     string   `json:"design,omitempty"`
	Generation int      `json:"generation,omitempty"`
	Canary     float64  `json:"canary,omitempty"`
	Reloaded   []string `json:"reloaded,omitempty"`
}

// handleReload publishes a new generation of ?design= from its snapshot
// file. ?canary= in (0,1) keeps the previous generation live behind a
// weighted split; omitted (or 1) swaps fully — in-flight batches drain
// on the generation they resolved either way. An empty design reloads
// every disk-backed design (the SIGHUP semantics over HTTP).
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	weight := 1.0
	if c := q.Get("canary"); c != "" {
		f, err := strconv.ParseFloat(c, 64)
		if err != nil || f < 0 || f > 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid canary weight %q", c)})
			return
		}
		weight = f
	}
	name := q.Get("design")
	if name == "" {
		reloaded, err := s.opts.Registry.ReloadAll()
		if err != nil {
			writeJSON(w, statusFor(err), errorResponse{Error: err.Error()})
			return
		}
		s.opts.Obs.Counter(MetricReloads).Add(int64(len(reloaded)))
		writeJSON(w, http.StatusOK, reloadResponse{Reloaded: reloaded})
		return
	}
	gen, err := s.opts.Registry.Reload(name, weight)
	if err != nil {
		writeJSON(w, statusFor(err), errorResponse{Error: err.Error()})
		return
	}
	s.opts.Obs.Counter(MetricReloads).Add(1)
	writeJSON(w, http.StatusOK, reloadResponse{Design: name, Generation: gen, Canary: weight})
}

// handleCanary adjusts ?design='s split: ?weight= ≥ 1 promotes the new
// generation, ≤ 0 rolls back to the old, anything between reweights.
func (s *server) handleCanary(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("design")
	if name == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing design parameter"})
		return
	}
	weight, err := strconv.ParseFloat(q.Get("weight"), 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid weight %q", q.Get("weight"))})
		return
	}
	if err := s.opts.Registry.SetCanary(name, weight); err != nil {
		writeJSON(w, statusFor(err), errorResponse{Error: err.Error()})
		return
	}
	s.opts.Obs.Counter(MetricReloads).Add(1)
	d := s.opts.Registry.Lookup(name)
	writeJSON(w, http.StatusOK, reloadResponse{Design: name, Generation: d.Gens[len(d.Gens)-1].Number, Canary: d.Canary})
}

// handleUnregister retires ?design= and tears down its batcher; queued
// predicts drain first.
func (s *server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("design")
	if name == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing design parameter"})
		return
	}
	if !s.opts.Registry.Unregister(name) {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("%v: %q", ErrUnknownDesign, name)})
		return
	}
	s.opts.Pool.Remove(name)
	writeJSON(w, http.StatusOK, reloadResponse{Design: name})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	type health struct {
		Status     string `json:"status"`
		QueueDepth int    `json:"queue_depth"`
		Batchers   int    `json:"batchers"`
	}
	h := health{Status: "ok", QueueDepth: s.opts.Pool.QueueDepth(), Batchers: s.opts.Pool.Size()}
	if s.opts.Pool.Draining() {
		h.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if s.opts.Obs != nil {
		// Sample the queue depth at scrape time so the gauge reflects
		// standing backlog rather than the scraper's own flush cycle.
		s.opts.Obs.Gauge(MetricQueueDepth).Set(float64(s.opts.Pool.QueueDepth()))
		s.opts.Obs.WritePrometheus(w)
	}
}
