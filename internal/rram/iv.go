package rram

import "math"

// Nonlinear conduction. Metal-oxide RRAM cells conduct as
// I ∝ sinh(V/V₀) rather than linearly (the Al/AlOx/WOx/W devices of
// the paper's reference [16]); at read voltages well below V₀ the
// linear approximation I = G·V holds, and crossbar designs choose
// VRead accordingly. The model here expresses the read voltage in
// units of V₀ through DeviceModel.IVNonlinearity:
//
//	0      — ideal linear conduction (default)
//	VRead/V₀ > 0 — sinh conduction; larger means more distortion
//
// A 1-bit input drives a row at either 0 or VRead, so nonlinearity
// only rescales every contribution by the same factor f(1) — which is
// why the quantized/SEI designs are inherently immune to it — whereas
// an analog (DAC-driven) input spreads across the curve and distorts
// the multiply.

// Transfer returns the normalized conduction transfer function
// f(x) for a row driven at x·VRead, x ∈ [0,1], such that the cell
// current is G·VRead·f(x). For the linear device f(x) = x; for the
// sinh device f(x) = sinh(x·r)/r with r = IVNonlinearity = VRead/V₀,
// which satisfies f(x) → x as r → 0 and f'(0) = 1.
func (m DeviceModel) Transfer() func(float64) float64 {
	r := m.IVNonlinearity
	if r <= 0 {
		return func(x float64) float64 { return x }
	}
	return func(x float64) float64 { return math.Sinh(x*r) / r }
}

// TransferGain returns f(1): the uniform scale a full-swing (1-bit)
// input experiences under the nonlinearity.
func (m DeviceModel) TransferGain() float64 { return m.Transfer()(1) }

// TransferCalibrated returns the transfer normalized at full swing,
// f̂(x) = sinh(x·r)/sinh(r), so f̂(1) = 1. This is what a deployed
// design sees after one-point calibration: full-swing (1-bit) inputs
// are exact and only *intermediate* voltages — analog DAC-driven
// inputs — are distorted (f̂(x) < x for 0 < x < 1).
func (m DeviceModel) TransferCalibrated() func(float64) float64 {
	r := m.IVNonlinearity
	if r <= 0 {
		return func(x float64) float64 { return x }
	}
	denom := math.Sinh(r)
	return func(x float64) float64 { return math.Sinh(x*r) / denom }
}
