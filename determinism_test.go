package sei

// End-to-end determinism contract of the parallel evaluation engine:
// every stage of the pipeline — float evaluation, Algorithm-1 threshold
// search, SEI build+evaluation — produces bit-identical results at any
// worker count. Workers=1 is the exact serial path, so the table pins
// the parallel engine to the pre-engine serial numbers.

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/quant"
	"sei/internal/seicore"
	"sei/internal/tensor"
)

func TestPipelineWorkerCountInvariant(t *testing.T) {
	train, test := mnist.SyntheticSplit(300, 120, 7)
	net := nn.NewTableNetwork(1, 7)
	tcfg := nn.DefaultTrainConfig()
	tcfg.Epochs = 1
	tcfg.Seed = 7
	nn.Train(net, train, tcfg)

	type result struct {
		floatErr   float64
		thresholds []float64
		quantErr   float64
		seiErr     float64
	}
	run := func(workers int) result {
		var res result
		res.floatErr = nn.ErrorRateWorkers(net, test, workers)

		scfg := quant.DefaultSearchConfig()
		scfg.Samples = 120
		scfg.Workers = workers
		q, _, err := quant.QuantizeNetwork(net, train, []int{1, 28, 28}, scfg)
		if err != nil {
			t.Fatalf("workers=%d: quantize: %v", workers, err)
		}
		res.thresholds = q.Thresholds
		res.quantErr = q.ErrorRateWorkers(test, workers)

		bcfg := seicore.DefaultSEIBuildConfig()
		bcfg.Layer.MaxCrossbar = 128 // force a split so calibration runs
		bcfg.CalibImages = 20
		bcfg.Workers = workers
		d, err := seicore.BuildSEI(q, train, bcfg, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatalf("workers=%d: build SEI: %v", workers, err)
		}
		res.seiErr = nn.ClassifierErrorRateWorkers(d, test, workers)
		return res
	}

	serial := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if got.floatErr != serial.floatErr {
			t.Errorf("workers=%d: float error %v != serial %v", workers, got.floatErr, serial.floatErr)
		}
		if len(got.thresholds) != len(serial.thresholds) {
			t.Fatalf("workers=%d: %d thresholds != serial %d", workers, len(got.thresholds), len(serial.thresholds))
		}
		for i := range got.thresholds {
			if got.thresholds[i] != serial.thresholds[i] {
				t.Errorf("workers=%d: threshold[%d] %v != serial %v", workers, i, got.thresholds[i], serial.thresholds[i])
			}
		}
		if got.quantErr != serial.quantErr {
			t.Errorf("workers=%d: quantized error %v != serial %v", workers, got.quantErr, serial.quantErr)
		}
		if got.seiErr != serial.seiErr {
			t.Errorf("workers=%d: SEI error %v != serial %v", workers, got.seiErr, serial.seiErr)
		}
	}
}

// Instrumentation must not perturb results, and the recorded counters
// must themselves be worker-count independent: every counter is an
// integer event count that depends only on the work performed
// (DESIGN.md §9). Workers=0 (all cores) rides along with the explicit
// counts because the engine's chunk boundaries don't depend on the
// resolved worker count.
func TestInstrumentedPipelineWorkerCountInvariant(t *testing.T) {
	train, test := mnist.SyntheticSplit(300, 120, 7)
	net := nn.NewTableNetwork(1, 7)
	tcfg := nn.DefaultTrainConfig()
	tcfg.Epochs = 1
	tcfg.Seed = 7
	nn.Train(net, train, tcfg)

	type result struct {
		floatErr float64
		quantErr float64
		seiErr   float64
		counters map[string]int64
	}
	run := func(workers int) result {
		rec := obs.New()
		var res result
		res.floatErr = nn.ErrorRateObs(rec, net, test, workers)

		scfg := quant.DefaultSearchConfig()
		scfg.Samples = 120
		scfg.Workers = workers
		scfg.Obs = rec
		q, _, err := quant.QuantizeNetwork(net, train, []int{1, 28, 28}, scfg)
		if err != nil {
			t.Fatalf("workers=%d: quantize: %v", workers, err)
		}
		res.quantErr = q.ErrorRateObs(rec, test, workers)

		bcfg := seicore.DefaultSEIBuildConfig()
		bcfg.Layer.MaxCrossbar = 128 // force a split so calibration runs
		bcfg.CalibImages = 20
		bcfg.Workers = workers
		bcfg.Obs = rec
		d, err := seicore.BuildSEI(q, train, bcfg, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatalf("workers=%d: build SEI: %v", workers, err)
		}
		res.seiErr = nn.ClassifierErrorRateObs(rec, d, test, workers)
		res.counters = rec.CounterValues()
		return res
	}

	serial := run(1)
	plain := func() result {
		var res result
		res.floatErr = nn.ErrorRateWorkers(net, test, 1)
		scfg := quant.DefaultSearchConfig()
		scfg.Samples = 120
		scfg.Workers = 1
		q, _, err := quant.QuantizeNetwork(net, train, []int{1, 28, 28}, scfg)
		if err != nil {
			t.Fatalf("plain quantize: %v", err)
		}
		res.quantErr = q.ErrorRateWorkers(test, 1)
		bcfg := seicore.DefaultSEIBuildConfig()
		bcfg.Layer.MaxCrossbar = 128
		bcfg.CalibImages = 20
		bcfg.Workers = 1
		d, err := seicore.BuildSEI(q, train, bcfg, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatalf("plain build SEI: %v", err)
		}
		res.seiErr = nn.ClassifierErrorRateWorkers(d, test, 1)
		return res
	}()
	if serial.floatErr != plain.floatErr || serial.quantErr != plain.quantErr || serial.seiErr != plain.seiErr {
		t.Errorf("instrumented run %+v != uninstrumented %+v: recording perturbed results",
			serial, plain)
	}

	hwCounters := 0
	for _, name := range []string{
		obs.HWMVMOps, obs.HWSAComparisons, obs.HWColumnActivations,
		obs.HWActiveInputs, obs.HWORPoolReductions,
	} {
		if serial.counters[name] > 0 {
			hwCounters++
		}
	}
	if hwCounters < 5 {
		t.Errorf("only %d hardware counters nonzero, want 5; counters = %v", hwCounters, serial.counters)
	}

	for _, workers := range []int{0, 2, 8} {
		got := run(workers)
		if got.floatErr != serial.floatErr || got.quantErr != serial.quantErr || got.seiErr != serial.seiErr {
			t.Errorf("workers=%d: instrumented results %+v != serial %+v", workers, got, serial)
		}
		if !reflect.DeepEqual(got.counters, serial.counters) {
			t.Errorf("workers=%d: counters diverge from serial:\n got  %v\n want %v",
				workers, got.counters, serial.counters)
		}
	}
}

// The crossing-aware incremental search engine (internal/quant/engine.go)
// and the retained naive sweep are two implementations of Algorithm 1:
// thresholds, per-layer accuracies, and every comparable counter total
// must be bit-identical, at every worker count. par_* scheduling counts
// and the incremental-only skip/eval accounting are the only legitimate
// differences (the engine runs one parallel region per candidate list
// instead of one per candidate).
func TestSearchEngineMatchesNaiveReference(t *testing.T) {
	train, _ := mnist.SyntheticSplit(300, 120, 7)
	net := nn.NewTableNetwork(1, 7)
	tcfg := nn.DefaultTrainConfig()
	tcfg.Epochs = 1
	tcfg.Seed = 7
	nn.Train(net, train, tcfg)

	comparable := func(all map[string]int64) map[string]int64 {
		out := map[string]int64{}
		for k, v := range all {
			if strings.HasPrefix(k, "par_") {
				continue
			}
			switch k {
			case quant.MetricRemainderSkipped, quant.MetricRemainderEvals, quant.MetricFCDeltaUpdates:
				continue
			}
			out[k] = v
		}
		return out
	}
	run := func(workers int, search func(*quant.QuantizedNet, *mnist.Dataset, quant.SearchConfig) (*quant.SearchReport, error)) (*quant.SearchReport, []float64, map[string]int64) {
		q, err := quant.Extract(net, []int{1, 28, 28})
		if err != nil {
			t.Fatalf("workers=%d: extract: %v", workers, err)
		}
		rec := obs.New()
		q.Instrument(rec)
		cfg := quant.DefaultSearchConfig()
		cfg.Samples = 120
		cfg.Workers = workers
		cfg.Obs = rec
		report, err := search(q, train, cfg)
		if err != nil {
			t.Fatalf("workers=%d: search: %v", workers, err)
		}
		return report, q.Thresholds, comparable(rec.CounterValues())
	}

	refReport, refThresholds, refCounters := run(1, quant.SearchThresholdsReference)
	for _, workers := range []int{1, 2, 8} {
		report, thresholds, counters := run(workers, quant.SearchThresholds)
		if !reflect.DeepEqual(report.Layers, refReport.Layers) {
			t.Errorf("workers=%d: layer results diverge from naive reference:\n got  %+v\n want %+v",
				workers, report.Layers, refReport.Layers)
		}
		if !reflect.DeepEqual(thresholds, refThresholds) {
			t.Errorf("workers=%d: thresholds %v != reference %v", workers, thresholds, refThresholds)
		}
		if !reflect.DeepEqual(counters, refCounters) {
			t.Errorf("workers=%d: counters diverge from naive reference:\n got  %v\n want %v",
				workers, counters, refCounters)
		}
		if report.Stats.Evaluations == 0 {
			t.Errorf("workers=%d: incremental engine recorded no evaluations", workers)
		}
	}
}

// comparablePredictCounters strips the counters that legitimately
// differ between prediction paths: par_* scheduling counts (the
// bit-sliced batch path schedules 64-image groups instead of 16-image
// chunks) and the sliced-dispatch accounting itself. Everything else —
// every hardware counter, eval_images, predict_panics — must match
// bit for bit.
func comparablePredictCounters(all map[string]int64) map[string]int64 {
	out := map[string]int64{}
	for k, v := range all {
		if strings.HasPrefix(k, "par_") || strings.HasPrefix(k, "predict_sliced_") {
			continue
		}
		out[k] = v
	}
	return out
}

// The bit-packed fast path (internal/seicore/fast.go) and the float
// path are two implementations of one contract: for an ideal-analog
// design, predictions AND hardware-counter totals must be bit-identical
// between the paths, at every worker count. This pins the fast path's
// accumulation-order and counter-placement guarantees end to end, on a
// design forced to split so multi-block kernels are exercised.
func TestFastPathFloatPathWorkerCountInvariant(t *testing.T) {
	train, test := mnist.SyntheticSplit(300, 120, 7)
	net := nn.NewTableNetwork(1, 7)
	tcfg := nn.DefaultTrainConfig()
	tcfg.Epochs = 1
	tcfg.Seed = 7
	nn.Train(net, train, tcfg)
	scfg := quant.DefaultSearchConfig()
	scfg.Samples = 120
	q, _, err := quant.QuantizeNetwork(net, train, []int{1, 28, 28}, scfg)
	if err != nil {
		t.Fatalf("quantize: %v", err)
	}
	bcfg := seicore.DefaultSEIBuildConfig()
	bcfg.Layer.MaxCrossbar = 128 // force a split so multi-block kernels run
	bcfg.CalibImages = 20
	d, err := seicore.BuildSEI(q, train, bcfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("build SEI: %v", err)
	}

	type result struct {
		labels   []int
		counters map[string]int64
	}
	run := func(fast bool, workers int) result {
		rec := obs.New()
		d.Instrument(rec)
		q.Instrument(rec)
		d.SetFastPath(fast)
		defer func() {
			d.Instrument(nil)
			q.Instrument(nil)
			d.SetFastPath(true)
		}()
		res := nn.PredictBatchObs(rec, d, test.Images, workers)
		labels := make([]int, len(res))
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("fast=%v workers=%d image %d: %v", fast, workers, i, r.Err)
			}
			labels[i] = r.Label
		}
		return result{labels: labels, counters: comparablePredictCounters(rec.CounterValues())}
	}

	base := run(true, 1)
	for _, workers := range []int{1, 2, 8} {
		for _, fast := range []bool{true, false} {
			if fast && workers == 1 {
				continue // the baseline itself
			}
			got := run(fast, workers)
			if !reflect.DeepEqual(got.labels, base.labels) {
				t.Errorf("fast=%v workers=%d: labels diverge from fast serial baseline", fast, workers)
			}
			if !reflect.DeepEqual(got.counters, base.counters) {
				t.Errorf("fast=%v workers=%d: counters diverge:\n got  %v\n want %v",
					fast, workers, got.counters, base.counters)
			}
		}
	}
}

// The bit-sliced batch path (internal/seicore/sliced.go), the
// per-image fast path and the float path are three implementations of
// one contract. This pins label-for-label equality and
// hardware-counter-total equality across all three, for every worker
// count and for batch sizes straddling the 64-image group boundary —
// on designs exercising permuted splits and unipolar dynamic columns.
func TestSlicedPathThreeWayDeterminism(t *testing.T) {
	train, test := mnist.SyntheticSplit(300, 256, 7)
	net := nn.NewTableNetwork(1, 7)
	tcfg := nn.DefaultTrainConfig()
	tcfg.Epochs = 1
	tcfg.Seed = 7
	nn.Train(net, train, tcfg)
	scfg := quant.DefaultSearchConfig()
	scfg.Samples = 120
	q, _, err := quant.QuantizeNetwork(net, train, []int{1, 28, 28}, scfg)
	if err != nil {
		t.Fatalf("quantize: %v", err)
	}
	perm := rand.New(rand.NewSource(13)).Perm(q.Convs[1].FanIn())
	designs := map[string]func() seicore.SEIBuildConfig{
		"split-permuted": func() seicore.SEIBuildConfig {
			cfg := seicore.DefaultSEIBuildConfig()
			cfg.Layer.MaxCrossbar = 128
			cfg.Orders = [][]int{nil, perm}
			cfg.CalibImages = 20
			return cfg
		},
		"unipolar-dynamic": func() seicore.SEIBuildConfig {
			cfg := seicore.DefaultSEIBuildConfig()
			cfg.Layer.Mode = seicore.ModeUnipolarDynamic
			cfg.DynamicThreshold = false
			return cfg
		},
	}
	type path struct {
		name           string
		sliced, fastOn bool
	}
	paths := []path{
		{"sliced", true, true},
		{"per-image-fast", false, true},
		{"float", false, false},
	}
	for name, mk := range designs {
		t.Run(name, func(t *testing.T) {
			d, err := seicore.BuildSEI(q, train, mk(), rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatalf("build SEI: %v", err)
			}
			run := func(p path, imgs []*tensor.Tensor, workers int) ([]int, map[string]int64) {
				rec := obs.New()
				d.Instrument(rec)
				q.Instrument(rec)
				d.SetFastPath(p.fastOn)
				d.SetSlicedPath(p.sliced)
				defer func() {
					d.Instrument(nil)
					q.Instrument(nil)
					d.SetFastPath(true)
					d.SetSlicedPath(true)
				}()
				res := nn.PredictBatchObs(rec, d, imgs, workers)
				labels := make([]int, len(res))
				for i, r := range res {
					if r.Err != nil {
						t.Fatalf("%s workers=%d image %d: %v", p.name, workers, i, r.Err)
					}
					labels[i] = r.Label
				}
				return labels, comparablePredictCounters(rec.CounterValues())
			}
			for _, size := range []int{1, 63, 64, 65, 256} {
				imgs := test.Images[:size]
				baseLabels, baseCounters := run(paths[0], imgs, 1)
				for _, workers := range []int{1, 2, 8} {
					for _, p := range paths {
						if p.name == "sliced" && workers == 1 {
							continue // the baseline itself
						}
						labels, counters := run(p, imgs, workers)
						if !reflect.DeepEqual(labels, baseLabels) {
							t.Errorf("size=%d %s workers=%d: labels diverge from sliced serial baseline", size, p.name, workers)
						}
						if !reflect.DeepEqual(counters, baseCounters) {
							t.Errorf("size=%d %s workers=%d: counters diverge:\n got  %v\n want %v",
								size, p.name, workers, counters, baseCounters)
						}
					}
				}
			}
		})
	}
}

// The packed non-ideal path (internal/seicore/fastnoisy.go) and the
// float path are two implementations of the noisy prediction contract:
// for a linearly non-ideal design — read noise (per-column or
// per-cell) and/or IR drop — labels, hardware-counter totals AND the
// RNG-consumption ledger (sei_noise_draws) must be bit-identical
// between the paths, at every worker count, on split/permuted and
// unipolar-dynamic designs. Counter equality is the strong form of the
// contract: equal sei_noise_draws totals at equal per-chunk seeds mean
// the two paths consumed identical noise-stream prefixes, not merely
// noise that happened to round to the same labels.
func TestNoisyPackedPathWorkerCountInvariant(t *testing.T) {
	train, test := mnist.SyntheticSplit(300, 120, 7)
	net := nn.NewTableNetwork(1, 7)
	tcfg := nn.DefaultTrainConfig()
	tcfg.Epochs = 1
	tcfg.Seed = 7
	nn.Train(net, train, tcfg)
	scfg := quant.DefaultSearchConfig()
	scfg.Samples = 120
	q, _, err := quant.QuantizeNetwork(net, train, []int{1, 28, 28}, scfg)
	if err != nil {
		t.Fatalf("quantize: %v", err)
	}
	perm := rand.New(rand.NewSource(13)).Perm(q.Convs[1].FanIn())
	designs := map[string]func() seicore.SEIBuildConfig{
		"per-column-split-permuted": func() seicore.SEIBuildConfig {
			cfg := seicore.DefaultSEIBuildConfig()
			cfg.Layer.MaxCrossbar = 128
			cfg.Layer.Model.ReadNoiseSigma = 0.05
			cfg.Orders = [][]int{nil, perm}
			cfg.DynamicThreshold = false
			return cfg
		},
		"per-cell-split": func() seicore.SEIBuildConfig {
			cfg := seicore.DefaultSEIBuildConfig()
			cfg.Layer.MaxCrossbar = 128
			cfg.Layer.Model.ReadNoiseSigma = 0.05
			cfg.Layer.Model.ReadNoisePerCell = true
			cfg.DynamicThreshold = false
			return cfg
		},
		"unipolar-per-cell-ir": func() seicore.SEIBuildConfig {
			cfg := seicore.DefaultSEIBuildConfig()
			cfg.Layer.Mode = seicore.ModeUnipolarDynamic
			cfg.Layer.Model.ReadNoiseSigma = 0.05
			cfg.Layer.Model.ReadNoisePerCell = true
			cfg.Layer.Model.IRDropAlpha = 0.05
			cfg.DynamicThreshold = false
			return cfg
		},
	}
	for name, mk := range designs {
		t.Run(name, func(t *testing.T) {
			d, err := seicore.BuildSEI(q, nil, mk(), rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatalf("build SEI: %v", err)
			}
			run := func(packed bool, workers int) ([]int, map[string]int64) {
				rec := obs.New()
				d.Instrument(rec)
				q.Instrument(rec)
				d.SetFastPath(packed)
				defer func() {
					d.Instrument(nil)
					q.Instrument(nil)
					d.SetFastPath(true)
				}()
				res := nn.PredictBatchObs(rec, d, test.Images, workers)
				labels := make([]int, len(res))
				for i, r := range res {
					if r.Err != nil {
						t.Fatalf("packed=%v workers=%d image %d: %v", packed, workers, i, r.Err)
					}
					labels[i] = r.Label
				}
				return labels, comparablePredictCounters(rec.CounterValues())
			}
			baseLabels, baseCounters := run(true, 1)
			if baseCounters[obs.SEINoiseDraws] == 0 {
				t.Fatalf("noisy evaluation recorded zero sei_noise_draws")
			}
			for _, workers := range []int{1, 2, 8} {
				for _, packed := range []bool{true, false} {
					if packed && workers == 1 {
						continue // the baseline itself
					}
					labels, counters := run(packed, workers)
					if !reflect.DeepEqual(labels, baseLabels) {
						t.Errorf("packed=%v workers=%d: labels diverge from packed serial baseline", packed, workers)
					}
					if !reflect.DeepEqual(counters, baseCounters) {
						t.Errorf("packed=%v workers=%d: counters diverge:\n got  %v\n want %v",
							packed, workers, counters, baseCounters)
					}
				}
			}
		})
	}
}

// Runtime activation bounds (internal/seicore/bounds.go) add a fourth
// implementation of the prediction contract: the bounded fast path
// must be label-identical to the unbounded fast path and the float
// path — the bounds only skip work that provably cannot change a
// sense-amp decision — at every worker count, on split/permuted and
// unipolar-dynamic designs. The bounded run's own counters (hw_* and
// sei_* alike) must also be worker-count invariant.
func TestBoundedPathThreeWayDeterminism(t *testing.T) {
	train, test := mnist.SyntheticSplit(300, 120, 7)
	net := nn.NewTableNetwork(1, 7)
	tcfg := nn.DefaultTrainConfig()
	tcfg.Epochs = 1
	tcfg.Seed = 7
	nn.Train(net, train, tcfg)
	scfg := quant.DefaultSearchConfig()
	scfg.Samples = 120
	q, _, err := quant.QuantizeNetwork(net, train, []int{1, 28, 28}, scfg)
	if err != nil {
		t.Fatalf("quantize: %v", err)
	}
	perm := rand.New(rand.NewSource(13)).Perm(q.Convs[1].FanIn())
	designs := map[string]func() seicore.SEIBuildConfig{
		"split-permuted": func() seicore.SEIBuildConfig {
			cfg := seicore.DefaultSEIBuildConfig()
			cfg.Layer.MaxCrossbar = 128
			cfg.Orders = [][]int{nil, perm}
			cfg.CalibImages = 20
			return cfg
		},
		"unipolar-dynamic": func() seicore.SEIBuildConfig {
			cfg := seicore.DefaultSEIBuildConfig()
			cfg.Layer.Mode = seicore.ModeUnipolarDynamic
			cfg.DynamicThreshold = false
			return cfg
		},
		"default-static": func() seicore.SEIBuildConfig {
			cfg := seicore.DefaultSEIBuildConfig()
			cfg.DynamicThreshold = false
			return cfg
		},
	}
	for name, mk := range designs {
		t.Run(name, func(t *testing.T) {
			d, err := seicore.BuildSEI(q, train, mk(), rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatalf("build SEI: %v", err)
			}
			run := func(bounded, fast bool, workers int) ([]int, map[string]int64) {
				rec := obs.New()
				d.Instrument(rec)
				d.SetFastPath(fast)
				d.SetBounded(bounded)
				defer func() {
					d.Instrument(nil)
					d.SetFastPath(true)
					d.SetBounded(false)
				}()
				res := nn.PredictBatchObs(rec, d, test.Images, workers)
				labels := make([]int, len(res))
				for i, r := range res {
					if r.Err != nil {
						t.Fatalf("bounded=%v fast=%v workers=%d image %d: %v", bounded, fast, workers, i, r.Err)
					}
					labels[i] = r.Label
				}
				return labels, comparablePredictCounters(rec.CounterValues())
			}
			baseLabels, boundedCounters := run(true, true, 1)
			for _, workers := range []int{1, 2, 8} {
				// Bounded fast: counters must match the serial bounded run.
				if workers > 1 {
					labels, counters := run(true, true, workers)
					if !reflect.DeepEqual(labels, baseLabels) {
						t.Errorf("bounded workers=%d: labels diverge from serial bounded run", workers)
					}
					if !reflect.DeepEqual(counters, boundedCounters) {
						t.Errorf("bounded workers=%d: counters diverge:\n got  %v\n want %v",
							workers, counters, boundedCounters)
					}
				}
				// Unbounded fast and float: labels must match the bounded run.
				for _, fast := range []bool{true, false} {
					labels, _ := run(false, fast, workers)
					if !reflect.DeepEqual(labels, baseLabels) {
						t.Errorf("fast=%v workers=%d: labels diverge from bounded path", fast, workers)
					}
				}
			}
		})
	}
}
