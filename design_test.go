package sei

import (
	"testing"
)

var designFixture struct {
	train, test *Dataset
	net         *Network
	q           *QuantizedNet
}

func designFix(t *testing.T) (*QuantizedNet, *Dataset, *Dataset) {
	t.Helper()
	if designFixture.q == nil {
		designFixture.train, designFixture.test = SyntheticSplit(1200, 200, 21)
		designFixture.net = TrainTableNetwork(2, designFixture.train, 3, 5)
		q, err := Quantize(designFixture.net, designFixture.train)
		if err != nil {
			t.Fatal(err)
		}
		designFixture.q = q
	}
	return designFixture.q, designFixture.train, designFixture.test
}

func TestBuildDesignDefaults(t *testing.T) {
	q, train, test := designFix(t)
	d, err := BuildDesign(q, train, DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := EvaluateDesign(d, test)
	digital := EvaluateQuantized(q, test)
	t.Logf("digital %.4f sei %.4f", digital, e)
	if e > digital+0.08 {
		t.Fatalf("SEI error %.4f far above digital %.4f", e, digital)
	}
}

func TestBuildDesignZeroValuesFilled(t *testing.T) {
	q, train, _ := designFix(t)
	opt := BuildOptions{DynamicThreshold: true, Order: OrderHomogenized, Seed: 1}
	if _, err := BuildDesign(q, train, opt); err != nil {
		t.Fatalf("zero-value device/crossbar not defaulted: %v", err)
	}
}

func TestBuildDesignValidation(t *testing.T) {
	q, _, _ := designFix(t)
	opt := DefaultBuildOptions()
	opt.DynamicThreshold = true
	if _, err := BuildDesign(q, nil, opt); err == nil {
		t.Fatal("dynamic threshold without training set accepted")
	}
	opt = DefaultBuildOptions()
	opt.Order = OrderStrategy(9)
	opt.DynamicThreshold = false
	if _, err := BuildDesign(q, nil, opt); err == nil {
		t.Fatal("unknown order strategy accepted")
	}
}

func TestBuildDesignUnipolar(t *testing.T) {
	q, train, test := designFix(t)
	opt := DefaultBuildOptions()
	opt.Unipolar = true
	d, err := BuildDesign(q, train, opt)
	if err != nil {
		t.Fatal(err)
	}
	e := EvaluateDesign(d, test)
	digital := EvaluateQuantized(q, test)
	if e > digital+0.10 {
		t.Fatalf("unipolar SEI error %.4f far above digital %.4f", e, digital)
	}
}

func TestBuildDesignOrderStrategiesDiffer(t *testing.T) {
	q, _, test := designFix(t)
	opt := DefaultBuildOptions()
	opt.MaxCrossbar = 64 // force conv splitting so order matters
	opt.DynamicThreshold = false
	build := func(o OrderStrategy) int {
		opt.Order = o
		d, err := BuildDesign(q, nil, opt)
		if err != nil {
			t.Fatal(err)
		}
		return d.Convs[0].K
	}
	if build(OrderNatural) < 2 {
		t.Fatal("crossbar 64 did not force a split")
	}
	// All strategies must build; functional differences are covered by
	// the experiments tests.
	for _, o := range []OrderStrategy{OrderNatural, OrderRandom, OrderHomogenized} {
		opt.Order = o
		d, err := BuildDesign(q, nil, opt)
		if err != nil {
			t.Fatalf("order %d failed: %v", o, err)
		}
		if e := EvaluateDesign(d, test.Subset(50)); e > 0.9 {
			t.Fatalf("order %d produced degenerate design (err %.2f)", o, e)
		}
	}
}

func TestMapCostsShape(t *testing.T) {
	q, _, _ := designFix(t)
	costs, err := MapCosts(q, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 3 {
		t.Fatalf("got %d cost rows", len(costs))
	}
	base, sein := costs[0], costs[2]
	if base.Structure != StructDACADC || sein.Structure != StructSEI {
		t.Fatal("cost row order wrong")
	}
	if sein.EnergyUJ >= base.EnergyUJ*0.1 {
		t.Fatalf("SEI energy %.3f not ≪ baseline %.3f", sein.EnergyUJ, base.EnergyUJ)
	}
	if base.InterfaceEnergyFraction < 0.98 {
		t.Fatalf("baseline interface fraction %.4f", base.InterfaceEnergyFraction)
	}
}

func TestSpikingErrorRateConverges(t *testing.T) {
	q, _, test := designFix(t)
	sub := test.Subset(80)
	one, err := SpikingErrorRate(q, nil, sub, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	many, err := SpikingErrorRate(q, nil, sub, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	analog := EvaluateQuantized(q, sub)
	t.Logf("spiking: 1 step %.4f, 12 steps %.4f, analog %.4f", one, many, analog)
	if many > one+0.03 {
		t.Fatalf("more timesteps made spiking worse: %.4f vs %.4f", many, one)
	}
	if many > analog+0.12 {
		t.Fatalf("12-step spiking error %.4f far above analog %.4f", many, analog)
	}
}

func TestSpikingErrorRateOnHardware(t *testing.T) {
	q, train, test := designFix(t)
	d, err := BuildDesign(q, train, DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	e, err := SpikingErrorRate(q, d, test.Subset(60), 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e > 0.6 {
		t.Fatalf("hardware spiking error %.4f implausibly high", e)
	}
}

func TestDeploymentCost(t *testing.T) {
	q, _, _ := designFix(t)
	// Network 2: (9·4 + 36·8 + 200·10)·4 cells.
	wantCells := int64(4 * (9*4 + 36*8 + 200*10))
	ideal := IdealDeviceModel(4)
	uj, pulses, cells := DeploymentCost(q, ideal)
	if cells != wantCells {
		t.Fatalf("cells %d, want %d", cells, wantCells)
	}
	if pulses != 1 {
		t.Fatalf("ideal pulses %v, want 1", pulses)
	}
	if uj <= 0 {
		t.Fatal("no deployment energy")
	}
	noisy := ideal
	noisy.ProgramSigma = 0.1
	uj2, pulses2, _ := DeploymentCost(q, noisy)
	if pulses2 <= pulses || uj2 <= uj {
		t.Fatal("variation did not raise the write cost")
	}
}

func TestDeviceModelHelpers(t *testing.T) {
	if DefaultDeviceModel().Bits != 4 {
		t.Fatal("default device not 4-bit")
	}
	m := IdealDeviceModel(6)
	if m.Bits != 6 || m.ProgramSigma != 0 {
		t.Fatal("ideal device wrong")
	}
}
