package obs

// Hardware-event metric names. The counts are logical simulator
// events, independent of worker count and of wall time; README's
// "Observability" section documents each one's exact semantics.
const (
	// HWMVMOps counts analog matrix-vector operations — one per
	// crossbar block evaluation (a MergedLayer eval is one logical op;
	// an SEI layer eval is K, one per split block).
	HWMVMOps = "hw_mvm_ops"
	// HWSAComparisons counts sense-amplifier threshold comparisons in
	// SEI conv readout (K blocks × M columns per eval).
	HWSAComparisons = "hw_sa_comparisons"
	// HWColumnActivations counts crossbar column read-outs driven by
	// MVMs (M columns per block evaluation).
	HWColumnActivations = "hw_column_activations"
	// HWActiveInputs counts input lines actually selected/driven
	// (nonzero inputs per block evaluation) — the activity statistic
	// behind the paper's data-dependent energy refinement.
	HWActiveInputs = "hw_active_inputs"
	// HWORPoolReductions counts OR-pool window reductions on the
	// binarized data path (shared by the digital reference and the
	// hardware simulators).
	HWORPoolReductions = "hw_orpool_reductions"
	// HWActiveInputsPerMVM is the histogram of selected input lines
	// per block evaluation.
	HWActiveInputsPerMVM = "hw_active_inputs_per_mvm"
	// SEINoiseDraws counts read-noise RNG draws consumed by the
	// simulator — not a hardware event (analog noise is free) but the
	// RNG-consumption ledger that lets two inference paths prove they
	// replayed the same noise stream: equal totals at equal seeds mean
	// identical stream prefixes. Per-column models draw one per column
	// current; per-cell models one per selected cell; the aggregated
	// approximation one per column from the summed variance.
	SEINoiseDraws = "sei_noise_draws"
)

// activeInputBounds buckets the per-MVM selected-line distribution in
// powers of two up to the maximum crossbar height.
var activeInputBounds = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// HW is the pre-resolved bundle of simulator hardware counters.
// Instrumented layers hold one pointer and pay a single nil check per
// event when recording is disabled. All methods are no-ops on nil.
type HW struct {
	mvm, sa, col, active, orpool, noise *Counter
	activeHist                          *Histogram
}

func newHW(r *Recorder) *HW {
	return &HW{
		mvm:        r.Counter(HWMVMOps),
		sa:         r.Counter(HWSAComparisons),
		col:        r.Counter(HWColumnActivations),
		active:     r.Counter(HWActiveInputs),
		orpool:     r.Counter(HWORPoolReductions),
		noise:      r.Counter(SEINoiseDraws),
		activeHist: r.Histogram(HWActiveInputsPerMVM, activeInputBounds),
	}
}

// MVM records n analog matrix-vector operations.
func (h *HW) MVM(n int64) {
	if h == nil {
		return
	}
	h.mvm.Add(n)
}

// SACompares records n sense-amplifier comparisons.
func (h *HW) SACompares(n int64) {
	if h == nil {
		return
	}
	h.sa.Add(n)
}

// ColumnActivations records n crossbar column read-outs.
func (h *HW) ColumnActivations(n int64) {
	if h == nil {
		return
	}
	h.col.Add(n)
}

// ActiveInputs records one block evaluation that selected n input
// lines: the counter total and the per-MVM distribution.
func (h *HW) ActiveInputs(n int64) {
	if h == nil {
		return
	}
	h.active.Add(n)
	h.activeHist.Observe(float64(n))
}

// ORPool records n OR-pool window reductions.
func (h *HW) ORPool(n int64) {
	if h == nil {
		return
	}
	h.orpool.Add(n)
}

// NoiseDraws records n read-noise RNG draws.
func (h *HW) NoiseDraws(n int64) {
	if h == nil || n == 0 {
		return
	}
	h.noise.Add(n)
}
