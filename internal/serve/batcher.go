package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/par"
	"sei/internal/tensor"
)

// Typed rejection errors. Handlers map them onto HTTP status codes
// (413, 429 and 503); match with errors.Is.
var (
	// ErrQueueFull is backpressure: the bounded queue cannot hold the
	// whole request and it was rejected up front rather than buffered
	// unboundedly or admitted piecemeal.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrBatchTooLarge marks a request with more images than the queue
	// can ever hold — it would be rejected even against an empty queue,
	// so the client must split it.
	ErrBatchTooLarge = errors.New("serve: request exceeds queue capacity")
	// ErrDeadlineTooTight is deadline-aware load shedding: the
	// request's remaining deadline is already below the observed flush
	// latency, so queueing it would only burn a slot on a guaranteed
	// timeout.
	ErrDeadlineTooTight = errors.New("serve: deadline below observed flush latency")
	// ErrDraining marks predicts submitted after Close began.
	ErrDraining = errors.New("serve: draining")
)

// Metric names the batcher feeds (scraped through /metrics). The
// engine-level eval_images / predict_panics counters from internal/nn
// appear alongside these when the same Recorder is shared.
const (
	MetricBatches      = "serve_batches"
	MetricPredicts     = "serve_predicts"
	MetricQueueFull    = "serve_queue_full"
	MetricCanceled     = "serve_canceled"
	MetricBatchSize    = "serve_batch_size"
	MetricDeadlineShed = "serve_deadline_shed"
)

var batchSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// BatcherConfig sizes the micro-batcher.
type BatcherConfig struct {
	// MaxBatch is the most images coalesced into one engine call.
	MaxBatch int
	// MaxDelay bounds how long the first predict of a batch waits for
	// company; latency cost of coalescing is at most this.
	MaxDelay time.Duration
	// QueueCap bounds the pending-predict queue. A full queue rejects
	// with ErrQueueFull instead of buffering without limit.
	QueueCap int
	// Workers bounds the parallel engine per flush (0 = all cores,
	// 1 = serial); labels are identical for any value.
	Workers int
	// Obs receives batcher and engine counters; nil disables recording.
	Obs *obs.Recorder
}

// DefaultBatcherConfig returns serving defaults: batches of up to 64,
// 2 ms of coalescing patience, a 256-deep queue, all cores.
func DefaultBatcherConfig() BatcherConfig {
	return BatcherConfig{MaxBatch: 64, MaxDelay: 2 * time.Millisecond, QueueCap: 256}
}

// job is one image's passage through the batcher. res is buffered so
// a flush never blocks on a caller that stopped listening.
type job struct {
	c   nn.Classifier
	img *tensor.Tensor
	ctx context.Context
	res chan nn.PredictResult
}

// Batcher coalesces concurrent predicts into bounded batches and runs
// each batch on the deterministic parallel engine. Because the engine
// validates, chunks and seeds a served batch exactly as the offline
// evaluation path does, serving returns bit-identical labels to
// EvaluateDesign for any batch composition and worker count.
//
// Classifiers submitted to one batch are grouped by identity, so they
// must be comparable (the pipeline's classifiers are all pointers).
type Batcher struct {
	cfg   BatcherConfig
	queue chan *job
	done  chan struct{}

	// scr holds the coalescing loop's flush scratch — batch, group,
	// image and result buffers reused across flushes so steady-state
	// serving does not allocate per batch. Touched only by the loop
	// goroutine; pointer slots are cleared after every flush so a
	// drained batch's jobs and images are not retained.
	scr flushScratch

	// flushNanos is an EWMA of recent flush wall times, feeding the
	// deadline-aware admission estimate. 0 until the first flush.
	flushNanos atomic.Int64

	mu     sync.Mutex
	closed bool
}

// group is one classifier's share of a batch.
type group struct {
	c    nn.Classifier
	jobs []*job
}

// flushScratch is the loop's reusable flush state.
type flushScratch struct {
	batch  []*job
	groups []group
	imgs   []*tensor.Tensor
	res    []nn.PredictResult
}

// NewBatcher validates the config, applies defaults for zero fields
// and starts the coalescing loop.
func NewBatcher(cfg BatcherConfig) (*Batcher, error) {
	if err := par.Validate(cfg.Workers); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	def := DefaultBatcherConfig()
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = def.MaxBatch
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = def.MaxDelay
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = def.QueueCap
	}
	b := &Batcher{
		cfg:   cfg,
		queue: make(chan *job, cfg.QueueCap),
		done:  make(chan struct{}),
	}
	go b.loop()
	return b, nil
}

// QueueDepth reports how many predicts are waiting (for health
// reporting; inherently racy).
func (b *Batcher) QueueDepth() int { return len(b.queue) }

// Config returns the batcher's effective configuration (defaults and
// any pool override applied).
func (b *Batcher) Config() BatcherConfig { return b.cfg }

// Draining reports whether Close has begun.
func (b *Batcher) Draining() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// Close stops accepting predicts, drains everything already queued
// and waits for the loop to finish. Safe to call more than once.
func (b *Batcher) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.queue)
	}
	b.mu.Unlock()
	<-b.done
}

// submitAll enqueues a request's jobs all-or-nothing. The mutex
// serializes senders against each other and against Close, so the
// free-slot check cannot be invalidated by a concurrent sender (the
// loop only drains, which frees more room) and a drain can never race
// a send on the closed channel. Rejecting up front instead of
// admitting image-by-image is what keeps a doomed request from leaking
// its prefix into the queue: those jobs would flush as canceled,
// inflate serve_canceled and burn slots other clients were rejected
// for.
func (b *Batcher) submitAll(jobs []*job) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrDraining
	}
	if len(jobs) > cap(b.queue) {
		return fmt.Errorf("%w: %d images against a queue of %d", ErrBatchTooLarge, len(jobs), cap(b.queue))
	}
	if len(jobs) > cap(b.queue)-len(b.queue) {
		b.cfg.Obs.Counter(MetricQueueFull).Add(1)
		return ErrQueueFull
	}
	for _, j := range jobs {
		b.queue <- j
	}
	return nil
}

// FlushLatency reports the EWMA of recent flush wall times (0 before
// the first flush), the basis of deadline-aware admission.
func (b *Batcher) FlushLatency() time.Duration {
	return time.Duration(b.flushNanos.Load())
}

// observeFlush folds one flush duration into the EWMA (¾ old, ¼ new —
// reactive enough to track a load shift within a few flushes, smooth
// enough that one outlier does not start shedding).
func (b *Batcher) observeFlush(d time.Duration) {
	for {
		old := b.flushNanos.Load()
		next := int64(d)
		if old != 0 {
			next = (3*old + int64(d)) / 4
		}
		if b.flushNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// admissionEstimate predicts how long a request submitted now waits
// before its results exist: one flush per MaxBatch-sized chunk already
// queued ahead of it, plus its own flush. 0 when no flush has been
// observed yet (admit optimistically until there is data).
func (b *Batcher) admissionEstimate() time.Duration {
	flush := time.Duration(b.flushNanos.Load())
	if flush == 0 {
		return 0
	}
	return flush * time.Duration(1+len(b.queue)/b.cfg.MaxBatch)
}

// Predict classifies imgs against c through the batcher, returning one
// result per image in order. The whole request is admitted or rejected
// atomically: ErrBatchTooLarge when it can never fit, ErrQueueFull
// when the queue lacks room now, ErrDeadlineTooTight when the caller's
// remaining deadline is below the observed flush latency (shedding at
// the door instead of wasting a slot on a guaranteed timeout), and
// ErrDraining after Close. It abandons with ctx.Err() when the context
// ends first; queued-but-unprocessed images of an abandoned request
// are skipped at flush time.
func (b *Batcher) Predict(ctx context.Context, c nn.Classifier, imgs []*tensor.Tensor) ([]nn.PredictResult, error) {
	if dl, ok := ctx.Deadline(); ok {
		if est := b.admissionEstimate(); est > 0 && time.Until(dl) < est {
			b.cfg.Obs.Counter(MetricDeadlineShed).Add(1)
			return nil, fmt.Errorf("%w: %v remaining, ~%v to flush", ErrDeadlineTooTight, time.Until(dl).Round(time.Millisecond), est.Round(time.Millisecond))
		}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make([]*job, len(imgs))
	for i, img := range imgs {
		jobs[i] = &job{c: c, img: img, ctx: ctx, res: make(chan nn.PredictResult, 1)}
	}
	if err := b.submitAll(jobs); err != nil {
		return nil, err
	}
	out := make([]nn.PredictResult, len(jobs))
	for i, j := range jobs {
		select {
		case r := <-j.res:
			out[i] = r
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// loop gathers jobs into batches: the first job of a batch waits at
// most MaxDelay for up to MaxBatch-1 companions, then the batch
// flushes. Exits when the queue is closed and drained.
func (b *Batcher) loop() {
	defer close(b.done)
	for j := range b.queue {
		batch := append(b.scr.batch[:0], j)
		timer := time.NewTimer(b.cfg.MaxDelay)
	gather:
		for len(batch) < b.cfg.MaxBatch {
			select {
			case next, ok := <-b.queue:
				if !ok {
					break gather
				}
				batch = append(batch, next)
			case <-timer.C:
				break gather
			}
		}
		timer.Stop()
		b.scr.batch = batch
		t0 := time.Now()
		b.flush(batch)
		b.observeFlush(time.Since(t0))
		b.scr.clear()
	}
}

// flush groups a batch by classifier and runs each group through the
// engine. Per-image panics are already contained inside the engine
// (nn.PredictBatchObs); the recover here is the last line of defense
// keeping the loop alive if the batcher's own bookkeeping fails.
func (b *Batcher) flush(batch []*job) {
	defer func() {
		if r := recover(); r != nil {
			for _, j := range batch {
				select {
				case j.res <- nn.PredictResult{Label: -1, Err: fmt.Errorf("%w: internal failure: %v", nn.ErrBadInput, r)}:
				default:
				}
			}
		}
	}()
	b.cfg.Obs.Counter(MetricBatches).Add(1)
	b.cfg.Obs.Histogram(MetricBatchSize, batchSizeBounds).Observe(float64(len(batch)))
	groups := b.scr.groups[:0]
next:
	for _, j := range batch {
		if j.ctx != nil && j.ctx.Err() != nil {
			b.cfg.Obs.Counter(MetricCanceled).Add(1)
			j.res <- nn.PredictResult{Label: -1, Err: j.ctx.Err()}
			continue
		}
		for gi := range groups {
			if groups[gi].c == j.c {
				groups[gi].jobs = append(groups[gi].jobs, j)
				continue next
			}
		}
		// Reuse the retired group slot's jobs buffer when one exists.
		if n := len(groups); n < cap(groups) {
			groups = groups[:n+1]
			groups[n].c = j.c
			groups[n].jobs = append(groups[n].jobs[:0], j)
		} else {
			groups = append(groups, group{c: j.c, jobs: []*job{j}})
		}
	}
	b.scr.groups = groups
	for gi := range groups {
		g := &groups[gi]
		imgs := b.scr.imgs[:0]
		for _, j := range g.jobs {
			imgs = append(imgs, j.img)
		}
		b.scr.imgs = imgs
		res := nn.PredictBatchInto(b.cfg.Obs, g.c, imgs, b.cfg.Workers, b.scr.res)
		b.scr.res = res
		b.cfg.Obs.Counter(MetricPredicts).Add(int64(len(res)))
		for i, j := range g.jobs {
			j.res <- res[i]
		}
	}
}

// clear drops every pointer the last flush parked in the scratch so
// finished jobs, their images and their errors become collectable; the
// backing arrays themselves are kept for the next flush.
func (s *flushScratch) clear() {
	for i := range s.batch {
		s.batch[i] = nil
	}
	s.batch = s.batch[:0]
	for gi := range s.groups {
		g := &s.groups[gi]
		g.c = nil
		for i := range g.jobs {
			g.jobs[i] = nil
		}
		g.jobs = g.jobs[:0]
	}
	s.groups = s.groups[:0]
	for i := range s.imgs {
		s.imgs[i] = nil
	}
	s.imgs = s.imgs[:0]
	for i := range s.res {
		s.res[i] = nn.PredictResult{}
	}
}
