package nn

import (
	"fmt"
	"math"

	"sei/internal/tensor"
)

// Network is an ordered stack of layers ending in a logits vector.
type Network struct {
	Name   string
	Layers []Layer
}

// Forward runs one sample through every layer and returns the logits.
func (n *Network) Forward(in *tensor.Tensor) *tensor.Tensor {
	x := in
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Tap is one recorded intermediate activation: the output of layer
// LayerIndex (0-based, counted over n.Layers) for the sample.
type Tap struct {
	LayerIndex int
	LayerName  string
	Value      *tensor.Tensor
}

// ForwardTaps runs a forward pass recording the output of every layer.
// The quantizer and the Table-1 distribution analysis consume these.
func (n *Network) ForwardTaps(in *tensor.Tensor) (*tensor.Tensor, []Tap) {
	x := in
	taps := make([]Tap, 0, len(n.Layers))
	for i, l := range n.Layers {
		x = l.Forward(x)
		taps = append(taps, Tap{LayerIndex: i, LayerName: l.Name(), Value: x})
	}
	return x, taps
}

// Predict returns the argmax class for one sample.
func (n *Network) Predict(in *tensor.Tensor) int {
	return n.Forward(in).ArgMax()
}

// EvalClone returns a network sharing this network's parameters whose
// layers own fresh Forward scratch, for goroutine-exclusive forward
// evaluation (see Layer.EvalClone).
func (n *Network) EvalClone() *Network {
	layers := make([]Layer, len(n.Layers))
	for i, l := range n.Layers {
		layers[i] = l.EvalClone()
	}
	return &Network{Name: n.Name, Layers: layers}
}

// CloneForEval implements ParallelClassifier. The float network is
// noise-free, so the seed is ignored.
func (n *Network) CloneForEval(seed int64) Classifier { return n.EvalClone() }

// Backward propagates dLoss/dLogits through the stack, accumulating
// parameter gradients. It must follow a Forward call on the same
// sample.
func (n *Network) Backward(grad *tensor.Tensor) {
	g := grad
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(g)
	}
}

// Params returns every trainable parameter in the network.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears all parameter gradients.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// NumParams returns the total trainable parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Value.Len()
	}
	return total
}

// CheckShapes validates that the layer stack composes for the given
// input shape and returns the output shape.
func (n *Network) CheckShapes(in []int) ([]int, error) {
	shape := append([]int(nil), in...)
	for i, l := range n.Layers {
		func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("nn: layer %d (%s): %v", i, l.Name(), r)
				}
			}()
			shape = l.OutShape(shape)
			return nil
		}()
		if shape == nil {
			return nil, fmt.Errorf("nn: layer %d (%s) rejected its input shape", i, l.Name())
		}
	}
	return shape, nil
}

// Ops returns the multiply-accumulate-based operation count for one
// forward pass with the given input shape, counting 2 ops per MAC
// (the GOPs convention of the paper's Table 2).
func (n *Network) Ops(in []int) int64 {
	shape := append([]int(nil), in...)
	var total int64
	for _, l := range n.Layers {
		out := l.OutShape(shape)
		switch ll := l.(type) {
		case *Conv2D:
			macs := int64(out[0]) * int64(out[1]) * int64(out[2]) *
				int64(ll.InChannels) * int64(ll.KH) * int64(ll.KW)
			total += 2 * macs
		case *Dense:
			total += 2 * int64(ll.In) * int64(ll.Out)
		}
		shape = out
	}
	return total
}

// Softmax returns the softmax of a logits vector, computed stably.
func Softmax(logits []float64) []float64 {
	max := math.Inf(-1)
	for _, v := range logits {
		if v > max {
			max = v
		}
	}
	out := make([]float64, len(logits))
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - max)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// CrossEntropyLoss returns the softmax cross-entropy loss and the
// gradient dLoss/dLogits for a single sample.
func CrossEntropyLoss(logits *tensor.Tensor, label int) (float64, *tensor.Tensor) {
	p := Softmax(logits.Data())
	loss := -math.Log(math.Max(p[label], 1e-300))
	grad := tensor.FromSlice(p, logits.Shape()...)
	grad.Data()[label] -= 1
	return loss, grad
}
