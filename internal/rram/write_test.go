package rram

import (
	"math"
	"math/rand"
	"testing"

	"sei/internal/tensor"
)

func writeTarget(n, m int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	tgt := tensor.New(n, m)
	for i := range tgt.Data() {
		tgt.Data()[i] = rng.Float64()
	}
	return tgt
}

func TestProgramVerifyIdealOnePulse(t *testing.T) {
	m := IdealDeviceModel(4)
	cb, _ := NewCrossbar(8, 8, m)
	stats, err := cb.ProgramVerify(writeTarget(8, 8, 1), DefaultWriteConfig(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalPulses != 64 || stats.MeanPulses() != 1 {
		t.Fatalf("ideal device needed %.2f pulses/cell, want 1", stats.MeanPulses())
	}
	if stats.FailedCells != 0 || stats.MaxRelError != 0 {
		t.Fatalf("ideal device stats wrong: %+v", stats)
	}
}

func TestProgramVerifyTightensPrecision(t *testing.T) {
	m := DefaultDeviceModel()
	m.ProgramSigma = 0.1 // heavy variation
	cfg := DefaultWriteConfig()
	cfg.Tolerance = 0.03
	cfg.MaxPulses = 200
	cb, _ := NewCrossbar(12, 12, m)
	tgt := writeTarget(12, 12, 3)
	stats, err := cb.ProgramVerify(tgt, cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.FailedCells != 0 {
		t.Fatalf("%d cells failed with generous pulse budget", stats.FailedCells)
	}
	if stats.MeanPulses() <= 1.5 {
		t.Fatalf("heavy variation verified in %.2f pulses/cell; expected retries", stats.MeanPulses())
	}
	// Every cell within tolerance of its nominal level.
	for j := 0; j < 12; j++ {
		for k := 0; k < 12; k++ {
			nominal := m.LevelConductance(cb.Level(j, k))
			if rel := math.Abs(cb.Conductance(j, k)-nominal) / nominal; rel > cfg.Tolerance+1e-12 {
				t.Fatalf("cell (%d,%d) error %.4f beyond tolerance", j, k, rel)
			}
		}
	}
	if stats.EnergyPJ != float64(stats.TotalPulses)*cfg.PulseEnergyPJ {
		t.Fatal("energy accounting wrong")
	}
}

func TestProgramVerifyMorePulsesWithMoreVariation(t *testing.T) {
	pulses := func(sigma float64) float64 {
		m := DefaultDeviceModel()
		m.ProgramSigma = sigma
		cb, _ := NewCrossbar(16, 16, m)
		cfg := DefaultWriteConfig()
		cfg.MaxPulses = 500
		stats, err := cb.ProgramVerify(writeTarget(16, 16, 5), cfg, rand.New(rand.NewSource(6)))
		if err != nil {
			t.Fatal(err)
		}
		return stats.MeanPulses()
	}
	low, high := pulses(0.01), pulses(0.08)
	if high <= low {
		t.Fatalf("more variation did not need more pulses: %.2f vs %.2f", high, low)
	}
}

func TestProgramVerifyStuckCellsFail(t *testing.T) {
	m := DefaultDeviceModel()
	m.StuckOffRate = 1 // every cell stuck at GOff
	cb, _ := NewCrossbar(4, 4, m)
	tgt := tensor.New(4, 4)
	tgt.Fill(1) // want GOn everywhere
	cfg := DefaultWriteConfig()
	cfg.MaxPulses = 5
	stats, err := cb.ProgramVerify(tgt, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.FailedCells != 16 {
		t.Fatalf("stuck cells failed: %d, want 16", stats.FailedCells)
	}
	if stats.TotalPulses != 16*5 {
		t.Fatalf("pulses %d, want full budget 80", stats.TotalPulses)
	}
}

func TestProgramVerifyValidation(t *testing.T) {
	cb, _ := NewCrossbar(4, 4, DefaultDeviceModel())
	rng := rand.New(rand.NewSource(1))
	if _, err := cb.ProgramVerify(tensor.New(3, 4), DefaultWriteConfig(), rng); err == nil {
		t.Fatal("accepted wrong target shape")
	}
	bad := DefaultWriteConfig()
	bad.Tolerance = 0
	if _, err := cb.ProgramVerify(tensor.New(4, 4), bad, rng); err == nil {
		t.Fatal("accepted zero tolerance")
	}
}

func TestExpectedPulsesMatchesMonteCarlo(t *testing.T) {
	m := DefaultDeviceModel()
	m.ProgramSigma = 0.05
	cfg := DefaultWriteConfig()
	cfg.Tolerance = 0.03
	cfg.MaxPulses = 500
	want := ExpectedPulses(m, cfg)

	cb, _ := NewCrossbar(24, 24, m)
	stats, err := cb.ProgramVerify(writeTarget(24, 24, 21), cfg, rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}
	got := stats.MeanPulses()
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("closed-form pulses %.2f vs Monte-Carlo %.2f (>25%% apart)", want, got)
	}
}

func TestExpectedPulsesEdgeCases(t *testing.T) {
	cfg := DefaultWriteConfig()
	m := IdealDeviceModel(4)
	if ExpectedPulses(m, cfg) != 1 {
		t.Fatal("ideal device should need one pulse")
	}
	m.ProgramSigma = 10 // hopeless variation → capped at MaxPulses
	if got := ExpectedPulses(m, cfg); got != float64(cfg.MaxPulses) {
		t.Fatalf("hopeless device pulses %.1f, want cap %d", got, cfg.MaxPulses)
	}
}

func TestDeploymentEnergy(t *testing.T) {
	m := IdealDeviceModel(4)
	cfg := DefaultWriteConfig()
	// 1000 cells × 1 pulse × 10 pJ.
	if got := DeploymentEnergyPJ(1000, m, cfg); got != 10000 {
		t.Fatalf("deployment energy %v, want 10000", got)
	}
}

func TestProgramVerifyImprovesOverPlainProgram(t *testing.T) {
	// The verified array's MVM must be closer to the ideal result than
	// the plain-programmed one under the same heavy variation.
	m := DefaultDeviceModel()
	m.ProgramSigma = 0.15
	tgt := writeTarget(32, 8, 9)

	ideal, _ := NewCrossbar(32, 8, IdealDeviceModel(4))
	ideal.Program(tgt, rand.New(rand.NewSource(1)))
	plain, _ := NewCrossbar(32, 8, m)
	plain.Program(tgt, rand.New(rand.NewSource(2)))
	verified, _ := NewCrossbar(32, 8, m)
	cfg := DefaultWriteConfig()
	cfg.MaxPulses = 300
	if _, err := verified.ProgramVerify(tgt, cfg, rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}

	v := make([]float64, 32)
	rng := rand.New(rand.NewSource(3))
	for i := range v {
		if rng.Float64() < 0.5 {
			v[i] = 1
		}
	}
	ref, err := ideal.WeightedSum(v, nil)
	if err != nil {
		t.Fatal(err)
	}
	errOf := func(c *Crossbar) float64 {
		out, err := c.WeightedSum(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for k := range out {
			d := out[k] - ref[k]
			s += d * d
		}
		return s
	}
	if errOf(verified) >= errOf(plain) {
		t.Fatalf("verify did not improve MVM fidelity: %.4f vs %.4f", errOf(verified), errOf(plain))
	}
}
