package quant

import (
	"bytes"
	"math/rand"
	"testing"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/tensor"
)

// trainedNet2 trains a small Table-2 Network 2 once per test binary.
var trainedCache = map[string]*nn.Network{}

func trainedNet2(t *testing.T) *nn.Network {
	t.Helper()
	if n, ok := trainedCache["net2"]; ok {
		return n
	}
	train := mnist.Synthetic(1200, 5)
	net := nn.NewTableNetwork(2, 7)
	cfg := nn.DefaultTrainConfig()
	nn.Train(net, train, cfg)
	trainedCache["net2"] = net
	return net
}

func TestExtractShapes(t *testing.T) {
	net := nn.NewTableNetwork(2, 1)
	q, err := Extract(net, []int{1, 28, 28})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Convs) != 2 {
		t.Fatalf("got %d conv stages, want 2", len(q.Convs))
	}
	if q.Convs[0].PoolSize != 2 || q.Convs[1].PoolSize != 2 {
		t.Fatalf("pool sizes %d/%d, want 2/2", q.Convs[0].PoolSize, q.Convs[1].PoolSize)
	}
	if q.Convs[1].FanIn() != 36 || q.Convs[1].Filters() != 8 {
		t.Fatalf("conv2 matrix %dx%d, want 36x8", q.Convs[1].FanIn(), q.Convs[1].Filters())
	}
	if q.FC.W.Dim(0) != 10 || q.FC.W.Dim(1) != 200 {
		t.Fatalf("FC shape %v, want [10 200]", q.FC.W.Shape())
	}
}

func TestExtractRejectsConvBias(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := &nn.Network{Layers: []nn.Layer{
		nn.NewConv2D(2, 1, 3, 3, 1, rng).WithBias(),
		nn.NewFlatten(),
		nn.NewDense(2*26*26, 10, rng),
	}}
	if _, err := Extract(net, []int{1, 28, 28}); err == nil {
		t.Fatal("Extract accepted conv bias")
	}
}

func TestExtractRejectsHiddenDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := &nn.Network{Layers: []nn.Layer{
		nn.NewConv2D(2, 1, 3, 3, 1, rng),
		nn.NewFlatten(),
		nn.NewDense(2*26*26, 32, rng),
		nn.NewDense(32, 10, rng),
	}}
	if _, err := Extract(net, []int{1, 28, 28}); err == nil {
		t.Fatal("Extract accepted hidden dense layer")
	}
}

func TestExtractCopiesWeights(t *testing.T) {
	net := nn.NewTableNetwork(2, 1)
	q, err := Extract(net, []int{1, 28, 28})
	if err != nil {
		t.Fatal(err)
	}
	q.Convs[0].W.Fill(0)
	if net.Layers[0].(*nn.Conv2D).Weight.Value.Max() == 0 {
		t.Fatal("Extract shares weight storage with the source network")
	}
}

func TestConvMatrixOrientation(t *testing.T) {
	net := nn.NewTableNetwork(2, 1)
	q, _ := Extract(net, []int{1, 28, 28})
	m := q.ConvMatrix(0)
	// Column k of the RRAM matrix must equal kernel k flattened.
	conv := net.Layers[0].(*nn.Conv2D)
	for k := 0; k < conv.Filters; k++ {
		for j := 0; j < 9; j++ {
			want := conv.Weight.Value.Data()[k*9+j]
			if got := m.At(j, k); got != want {
				t.Fatalf("ConvMatrix[%d,%d] = %v, want %v", j, k, got, want)
			}
		}
	}
	fm := q.FCMatrix()
	if fm.Dim(0) != 200 || fm.Dim(1) != 10 {
		t.Fatalf("FCMatrix shape %v, want [200 10]", fm.Shape())
	}
}

func TestOrPool(t *testing.T) {
	bits := tensor.FromSlice([]float64{
		0, 0, 1, 0,
		0, 0, 0, 0,
		1, 1, 0, 0,
		1, 1, 0, 0,
	}, 1, 4, 4)
	out := orPool(bits, 2)
	want := []float64{0, 1, 1, 0}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("orPool = %v, want %v", out.Data(), want)
		}
	}
}

// The paper's equivalence: quantizing after max pooling with threshold
// T equals OR-pooling the pre-pool bits with the same T.
func TestPoolThenThresholdEqualsORPool(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		x := tensor.New(2, 6, 6)
		for i := range x.Data() {
			x.Data()[i] = rng.Float64()
		}
		thr := rng.Float64() * 0.5
		// Path A: max-pool then threshold.
		pooled := maxPool(x, 2)
		a := binarize(pooled, thr)
		// Path B: threshold then OR-pool.
		b := orPool(binarize(x, thr), 2)
		if !tensor.EqualApprox(a, b, 0) {
			t.Fatalf("trial %d: pool-then-threshold != threshold-then-OR", trial)
		}
	}
}

func TestBinarize(t *testing.T) {
	x := tensor.FromSlice([]float64{-1, 0.05, 0.2, 0.5}, 4)
	b := binarize(x, 0.1)
	want := []float64{0, 0, 1, 1}
	for i, v := range want {
		if b.Data()[i] != v {
			t.Fatalf("binarize = %v, want %v", b.Data(), want)
		}
	}
}

func TestSearchThresholdsRunsAndBounds(t *testing.T) {
	net := trainedNet2(t)
	train := mnist.Synthetic(300, 6)
	cfg := DefaultSearchConfig()
	cfg.Samples = 150
	q, report, err := QuantizeNetwork(net, train, []int{1, 28, 28}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Layers) != 2 {
		t.Fatalf("report has %d layers, want 2", len(report.Layers))
	}
	for _, lr := range report.Layers {
		if lr.Threshold < cfg.ThresMin || lr.Threshold > cfg.ThresMax {
			t.Fatalf("layer %d threshold %v outside [%v,%v]", lr.Layer, lr.Threshold, cfg.ThresMin, cfg.ThresMax)
		}
		if lr.MaxOutput <= 0 {
			t.Fatalf("layer %d max output %v, want > 0", lr.Layer, lr.MaxOutput)
		}
		if lr.Accuracy < 0.5 {
			t.Fatalf("layer %d search accuracy %.3f; quantization collapsed", lr.Layer, lr.Accuracy)
		}
	}
	// After re-scaling, stage outputs must lie in [0,1] on the search set.
	for l := range q.Convs {
		// Spot check on a few images.
		for _, img := range train.Images[:10] {
			acts := q.BinaryActivations(img)
			_ = acts
			out := floatConv(&q.Convs[l], stageInput(q, l, img))
			if out.Max() > 1.5 {
				t.Fatalf("stage %d output max %.3f after re-scaling", l, out.Max())
			}
		}
	}
}

// stageInput computes the binarized input entering conv stage l.
func stageInput(q *QuantizedNet, l int, img *tensor.Tensor) *tensor.Tensor {
	cur := img
	eval := q.Digital()
	for m := 0; m < l; m++ {
		cur = q.convStage(eval, m, cur)
	}
	return cur
}

func TestQuantizedAccuracyCloseToFloat(t *testing.T) {
	// The headline Table-3 property: quantization costs only a small
	// accuracy delta.
	net := trainedNet2(t)
	train := mnist.Synthetic(1200, 5)
	test := mnist.Synthetic(400, 99)
	cfg := DefaultSearchConfig()
	cfg.Samples = 300
	q, _, err := QuantizeNetwork(net, train, []int{1, 28, 28}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	floatErr := nn.ErrorRate(net, test)
	quantErr := q.ErrorRate(test)
	t.Logf("float err %.4f, quantized err %.4f", floatErr, quantErr)
	if quantErr > floatErr+0.10 {
		t.Fatalf("quantization degraded error %.3f → %.3f (> +10pp)", floatErr, quantErr)
	}
}

func TestSearchRejectsBadConfig(t *testing.T) {
	net := nn.NewTableNetwork(2, 1)
	q, _ := Extract(net, []int{1, 28, 28})
	_, err := SearchThresholds(q, mnist.Synthetic(10, 1), SearchConfig{ThresMin: 0.1, ThresMax: 0})
	if err == nil {
		t.Fatal("accepted inverted search interval")
	}
}

func TestPredictWithDigitalMatchesPredict(t *testing.T) {
	net := trainedNet2(t)
	q, _ := Extract(net, []int{1, 28, 28})
	q.Thresholds = []float64{0.02, 0.02}
	img := mnist.Synthetic(3, 8).Images[2]
	if q.Predict(img) != q.PredictWith(q.Digital(), img) {
		t.Fatal("PredictWith(Digital) != Predict")
	}
}

func TestBinaryActivationsAreBits(t *testing.T) {
	net := trainedNet2(t)
	q, _ := Extract(net, []int{1, 28, 28})
	q.Thresholds = []float64{0.01, 0.01}
	img := mnist.Synthetic(2, 3).Images[1]
	acts := q.BinaryActivations(img)
	if len(acts) != 2 {
		t.Fatalf("got %d activation maps, want 2", len(acts))
	}
	for ai, a := range acts {
		for _, v := range a.Data() {
			if v != 0 && v != 1 {
				t.Fatalf("activation map %d has non-binary value %v", ai, v)
			}
		}
	}
	// Shapes: conv1 bits pooled 13×13×4; conv2 bits pooled 5×5×8.
	if s := acts[0].Shape(); s[0] != 4 || s[1] != 13 || s[2] != 13 {
		t.Fatalf("act0 shape %v", s)
	}
	if s := acts[1].Shape(); s[0] != 8 || s[1] != 5 || s[2] != 5 {
		t.Fatalf("act1 shape %v", s)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	net := trainedNet2(t)
	q, _ := Extract(net, []int{1, 28, 28})
	q.Thresholds = []float64{0.013, 0.027}
	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	img := mnist.Synthetic(4, 12).Images[3]
	a := q.ForwardWith(q.Digital(), img)
	b := got.ForwardWith(got.Digital(), img)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loaded quantized net diverges at score %d: %v vs %v", i, a[i], b[i])
		}
	}
	if got.Thresholds[1] != 0.027 {
		t.Fatalf("threshold lost: %v", got.Thresholds)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

func TestSaveLoadFile(t *testing.T) {
	net := nn.NewTableNetwork(2, 1)
	q, _ := Extract(net, []int{1, 28, 28})
	path := t.TempDir() + "/q/model.gob"
	if err := q.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeDistributionLongTail(t *testing.T) {
	// Trained ReLU networks must show the Table-1 long tail: the lowest
	// bin dominates.
	net := trainedNet2(t)
	data := mnist.Synthetic(60, 21)
	dist := AnalyzeDistribution(net, data)
	if len(dist) != 3 { // 2 conv layers + aggregate
		t.Fatalf("got %d distribution rows, want 3", len(dist))
	}
	for _, d := range dist {
		sum := d.Fractions[0] + d.Fractions[1] + d.Fractions[2] + d.Fractions[3]
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s fractions sum to %v", d.LayerName, sum)
		}
		if d.Fractions[0] < 0.5 {
			t.Fatalf("%s lowest bin %.3f; expected long-tail dominance", d.LayerName, d.Fractions[0])
		}
	}
	if dist[len(dist)-1].LayerName != "All Layers" {
		t.Fatalf("last row %q, want aggregate", dist[len(dist)-1].LayerName)
	}
}

func TestDistributionOfEmptyAndZero(t *testing.T) {
	d := distributionOf("empty", nil)
	if d.Count != 0 {
		t.Fatal("empty count wrong")
	}
	d = distributionOf("zeros", []float64{0, 0, 0})
	if d.Fractions[0] != 1 {
		t.Fatalf("all-zero layer fractions %v, want [1 0 0 0]", d.Fractions)
	}
}
