// Package serve is the batched inference service over the sei
// pipeline: a sharded design registry backed by gob snapshots on disk,
// per-design micro-batchers that coalesce concurrent predicts onto the
// deterministic parallel engine, and an HTTP front end with panic
// containment, backpressure, deadline-aware admission, live generation
// reload and graceful drain. Results are bit-identical to the offline
// evaluation path (nn.PredictBatch / EvaluateDesign) per generation,
// for any batch composition and worker count.
package serve

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"sei/internal/nn"
	"sei/internal/seicore"
)

// Typed registry errors. Match with errors.Is.
var (
	// ErrUnknownDesign marks lookups of names that are neither
	// registered nor present as a snapshot file.
	ErrUnknownDesign = errors.New("serve: unknown design")
	// ErrUnknownGeneration marks a ?generation= pin that names a
	// generation no longer (or not yet) live for the design.
	ErrUnknownGeneration = errors.New("serve: unknown generation")
	// ErrNoCanary marks a canary-weight change on a design that does
	// not currently have two live generations.
	ErrNoCanary = errors.New("serve: no canary in progress")
	// ErrNoSnapshot marks a reload of a design that has no snapshot
	// file on disk (purely programmatic registration).
	ErrNoSnapshot = errors.New("serve: no snapshot on disk")
)

// DesignExt is the snapshot filename extension the registry scans for.
const DesignExt = ".design"

// Generation is one immutable published version of a design. Numbers
// are per-design, ascending from 1; a reload mints the next number.
type Generation struct {
	Number     int
	Classifier nn.Classifier
}

// Design is an immutable record of one served name: its live
// generations (ascending) and the canary split. The two newest
// generations form the routing pair — the stable one plus a canary —
// and any older entries are retained pin-only history (reachable via
// ?generation=, never routed unpinned; see Registry.SetRetain).
// Mutation happens by building a new Design and swapping the registry
// snapshot; readers never see a torn state.
type Design struct {
	Name string
	// Gens holds the live generations, oldest first. One entry in
	// steady state; two while a canary is in flight; up to the
	// registry's retain cap when older generations are kept for
	// pinned rollback/comparison.
	Gens []Generation
	// Canary is the fraction of unpinned traffic routed to the newest
	// generation when two are live. 1 after a full swap.
	Canary float64
	// ctr drives the deterministic weighted split. It is shared across
	// snapshot swaps of the same name so the split stays exact.
	ctr *atomic.Int64
}

// Generations returns the live generation numbers, oldest first.
func (d *Design) Generations() []int {
	nums := make([]int, len(d.Gens))
	for i, g := range d.Gens {
		nums[i] = g.Number
	}
	return nums
}

// route picks the generation serving one request. pin > 0 selects any
// exact live generation, including retained history. Unpinned traffic
// goes to the newest generation, except during a canary where a
// deterministic counter split sends exactly the Canary fraction to
// the newest and the rest to the previous newest (retained history
// older than the routing pair never receives unpinned traffic):
// request n routes new iff floor(n·w) > floor((n-1)·w), so every
// prefix of the request stream is within one request of the
// configured weight.
func (d *Design) route(pin int) (Generation, error) {
	if pin > 0 {
		for _, g := range d.Gens {
			if g.Number == pin {
				return g, nil
			}
		}
		return Generation{}, fmt.Errorf("%w: design %q has no live generation %d (live: %v)",
			ErrUnknownGeneration, d.Name, pin, d.Generations())
	}
	newest := d.Gens[len(d.Gens)-1]
	if len(d.Gens) == 1 || d.Canary >= 1 {
		return newest, nil
	}
	stable := d.Gens[len(d.Gens)-2]
	if d.Canary <= 0 {
		return stable, nil
	}
	n := float64(d.ctr.Add(1))
	if math.Floor(n*d.Canary) > math.Floor((n-1)*d.Canary) {
		return newest, nil
	}
	return stable, nil
}

// snapshot is the registry's immutable name → design map. Readers load
// it through one atomic pointer; writers copy, mutate and swap.
type snapshot map[string]*Design

// Registry resolves design names to classifiers. Programmatic entries
// come in through Register/Publish; everything else is loaded lazily
// from <dir>/<name>.design snapshots (seicore.LoadDesignFile) and
// cached, so repeated predicts against the same design pay the gob
// decode once.
//
// The read path is lock-free: resolved designs live in an atomically
// swapped copy-on-write snapshot, so a Get never waits on another
// design's cold load or on a writer. Cold loads run outside every lock
// under per-name singleflight — concurrent requests for the same
// uncached design share one decode, and a slow decode never blocks
// cache hits.
// DefaultRetain is a registry's generation cap per design: the
// routing pair (stable + canary) with no pin-only history — the
// original two-live behavior.
const DefaultRetain = 2

type Registry struct {
	dir  string
	seed int64

	// retain caps live generations per design (≥ 2): the two newest
	// are the routing pair, the remaining retain−2 oldest stay live
	// for pinned requests only. Mutated under mu, read under mu by
	// the publish path.
	retain int

	// loadFn decodes one snapshot file; swapped by tests to observe or
	// slow cold loads.
	loadFn func(path string, seed int64) (nn.Classifier, error)

	snap atomic.Pointer[snapshot]

	// mu serializes writers (Register, Unregister, Reload, cold-load
	// commits). Readers never take it.
	mu sync.Mutex

	// flightMu guards the singleflight table for cold loads.
	flightMu sync.Mutex
	flight   map[string]*flightCall
}

// flightCall is one in-progress cold load other callers wait on.
type flightCall struct {
	done chan struct{}
	d    *Design
	err  error
}

// NewRegistry returns a registry over dir (may be empty for a purely
// programmatic registry). seed re-anchors read-noise streams of noisy
// loaded designs, as in seicore.LoadDesign.
func NewRegistry(dir string, seed int64) *Registry {
	r := &Registry{
		dir:    dir,
		seed:   seed,
		retain: DefaultRetain,
		loadFn: func(path string, seed int64) (nn.Classifier, error) {
			return seicore.LoadDesignFile(path, seed)
		},
		flight: map[string]*flightCall{},
	}
	s := snapshot{}
	r.snap.Store(&s)
	return r
}

// swap applies mutate to a copy of the current snapshot and publishes
// it. Callers hold r.mu.
func (r *Registry) swap(mutate func(snapshot)) {
	old := *r.snap.Load()
	next := make(snapshot, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	mutate(next)
	r.snap.Store(&next)
}

// nextDesign builds the successor Design record for name: c becomes
// generation prev.newest+1 (or 1), either as a full swap (sole
// unpinned target) or as a canary next to the previous newest. The
// previous generations that fit the registry's pin-only history slots
// (retain−2; none at the default two-live cap) stay live for pinned
// requests, oldest evicted first — a canary additionally keeps the
// previous newest as its routing partner, beyond those slots. The
// split counter is carried over so routing fractions stay exact
// across publishes. Callers hold r.mu.
func nextDesign(prev *Design, name string, c nn.Classifier, canary float64, retain int) *Design {
	d := &Design{Name: name, Canary: 1, ctr: new(atomic.Int64)}
	num := 1
	hist := retain - 2
	var kept []Generation
	if prev != nil {
		num = prev.Gens[len(prev.Gens)-1].Number + 1
		d.ctr = prev.ctr
		kept = prev.Gens
		if canary > 0 && canary < 1 {
			d.Canary = canary
			// Previous newest is the canary's routing partner; only
			// the generations before it compete for history slots.
			if n := len(kept) - 1; n > hist {
				kept = kept[n-hist:]
			}
		} else if len(kept) > hist {
			kept = kept[len(kept)-hist:]
		}
	}
	g := Generation{Number: num, Classifier: c}
	d.Gens = append(append(make([]Generation, 0, len(kept)+1), kept...), g)
	return d
}

// SetRetain sets the registry's per-design live-generation cap: the
// two newest generations route unpinned traffic (stable + canary) and
// the remaining n−2 stay live for pinned requests only. n below the
// two-live minimum is clamped to DefaultRetain. The cap applies on
// subsequent publishes; already-live generation sets shrink as new
// generations arrive.
func (r *Registry) SetRetain(n int) {
	if n < DefaultRetain {
		n = DefaultRetain
	}
	r.mu.Lock()
	r.retain = n
	r.mu.Unlock()
}

// Register publishes a named classifier as a new full-swap generation,
// shadowing any snapshot file of the same name. In-flight batches keep
// the classifier pointer they resolved, so they drain on the old
// generation.
func (r *Registry) Register(name string, c nn.Classifier) {
	r.Publish(name, c, 1)
}

// Publish is Register with a canary weight: weight in (0,1) keeps the
// previous generation live and routes that fraction of unpinned
// traffic to the new one; weight outside (0,1) (or a first publish) is
// a full swap.
func (r *Registry) Publish(name string, c nn.Classifier, weight float64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var gen int
	r.swap(func(s snapshot) {
		d := nextDesign(s[name], name, c, weight, r.retain)
		gen = d.Gens[len(d.Gens)-1].Number
		s[name] = d
	})
	return gen
}

// Unregister removes a design from the registry, reporting whether it
// was present. In-flight batches drain normally; later lookups fall
// back to the snapshot directory (a disk-backed design reappears as a
// fresh generation 1 on next use — pair with deleting the file to
// retire it fully).
func (r *Registry) Unregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := (*r.snap.Load())[name]
	if ok {
		r.swap(func(s snapshot) { delete(s, name) })
	}
	return ok
}

// SetCanary adjusts the split of a multi-generation design: weight >=
// 1 promotes the new generation (the previous stable drops into a
// pin-only history slot when the retain cap has one, and is retired
// otherwise — always retired at the default two-live cap), weight <=
// 0 rolls back to the old (retires the new), anything between updates
// the fraction routed to the new one.
func (r *Registry) SetCanary(name string, weight float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := (*r.snap.Load())[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDesign, name)
	}
	if len(d.Gens) < 2 {
		return fmt.Errorf("%w: design %q has one live generation", ErrNoCanary, name)
	}
	next := &Design{Name: name, Canary: weight, ctr: d.ctr, Gens: d.Gens}
	switch {
	case weight >= 1:
		kept := d.Gens[:len(d.Gens)-1]
		if hist := r.retain - 2; len(kept) > hist {
			kept = kept[len(kept)-hist:]
		}
		next.Gens = append(append(make([]Generation, 0, len(kept)+1), kept...), d.Gens[len(d.Gens)-1])
		next.Canary = 1
	case weight <= 0:
		next.Gens = d.Gens[:len(d.Gens)-1]
		next.Canary = 1
	}
	r.swap(func(s snapshot) { s[name] = next })
	return nil
}

// validName rejects anything that could escape the snapshot directory
// or hide files: path separators, traversal, leading dots.
func validName(name string) bool {
	if name == "" || strings.HasPrefix(name, ".") {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// Get resolves a design name to its routed classifier, loading and
// caching its snapshot on first use. Unknown names (and names that do
// not survive path validation) fail with ErrUnknownDesign.
func (r *Registry) Get(name string) (nn.Classifier, error) {
	c, _, err := r.Resolve(name, 0)
	return c, err
}

// Resolve routes one request: pin > 0 selects that exact live
// generation, 0 follows the canary split. It returns the classifier
// and the generation number that served it. The hot path is one atomic
// load plus a map hit — no locks.
func (r *Registry) Resolve(name string, pin int) (nn.Classifier, int, error) {
	if d, ok := (*r.snap.Load())[name]; ok {
		g, err := d.route(pin)
		if err != nil {
			return nil, 0, err
		}
		return g.Classifier, g.Number, nil
	}
	d, err := r.coldLoad(name)
	if err != nil {
		return nil, 0, err
	}
	g, err := d.route(pin)
	if err != nil {
		return nil, 0, err
	}
	return g.Classifier, g.Number, nil
}

// Lookup returns the live Design record (nil when absent) without
// triggering a cold load.
func (r *Registry) Lookup(name string) *Design {
	return (*r.snap.Load())[name]
}

// path returns the snapshot file for name, or "" when the name is
// invalid or the registry has no directory.
func (r *Registry) path(name string) string {
	if !validName(name) || r.dir == "" {
		return ""
	}
	return filepath.Join(r.dir, name+DesignExt)
}

// coldLoad resolves an uncached name from disk under per-name
// singleflight. The gob decode runs outside every registry lock, so a
// slow load neither serializes unrelated lookups nor blocks writers.
func (r *Registry) coldLoad(name string) (*Design, error) {
	path := r.path(name)
	if path == "" {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDesign, name)
	}
	r.flightMu.Lock()
	// Re-check the snapshot under flightMu: a flight that just finished
	// committed before deleting its entry, so a miss here after the
	// deletion is guaranteed to see the committed design — without this
	// a caller descheduled between its snapshot miss and this point
	// would start a second decode.
	if d, ok := (*r.snap.Load())[name]; ok {
		r.flightMu.Unlock()
		return d, nil
	}
	if call, ok := r.flight[name]; ok {
		r.flightMu.Unlock()
		<-call.done
		return call.d, call.err
	}
	call := &flightCall{done: make(chan struct{})}
	r.flight[name] = call
	r.flightMu.Unlock()

	call.d, call.err = r.loadAndCommit(name, path)

	r.flightMu.Lock()
	delete(r.flight, name)
	r.flightMu.Unlock()
	close(call.done)
	return call.d, call.err
}

// loadAndCommit decodes one snapshot file and publishes it as the
// name's design — unless a concurrent Register won the race, in which
// case the registered design wins (matching Register's "shadows any
// snapshot file" contract).
func (r *Registry) loadAndCommit(name, path string) (*Design, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDesign, name)
	}
	c, err := r.loadFn(path, r.seed)
	if err != nil {
		return nil, fmt.Errorf("serve: loading design %q: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := (*r.snap.Load())[name]; ok {
		return d, nil
	}
	var d *Design
	r.swap(func(s snapshot) {
		d = nextDesign(nil, name, c, 1, r.retain)
		s[name] = d
	})
	return d, nil
}

// Reload decodes the name's snapshot file again and publishes it as
// the next generation: weight in (0,1) starts a canary split, anything
// else is a full atomic swap (unpinned traffic moves wholesale; jobs
// already admitted drain on the generation they resolved). Returns the
// new generation number.
func (r *Registry) Reload(name string, weight float64) (int, error) {
	path := r.path(name)
	if path == "" {
		return 0, fmt.Errorf("%w: %q", ErrUnknownDesign, name)
	}
	if _, err := os.Stat(path); err != nil {
		if r.Lookup(name) != nil {
			return 0, fmt.Errorf("%w: design %q is registered programmatically", ErrNoSnapshot, name)
		}
		return 0, fmt.Errorf("%w: %q", ErrUnknownDesign, name)
	}
	c, err := r.loadFn(path, r.seed)
	if err != nil {
		return 0, fmt.Errorf("serve: reloading design %q: %w", name, err)
	}
	return r.Publish(name, c, weight), nil
}

// ReloadAll reloads every currently live design that has a snapshot
// file on disk as a full-swap generation (the SIGHUP path). It returns
// the reloaded names and the first error encountered (the sweep
// continues past per-design failures).
func (r *Registry) ReloadAll() ([]string, error) {
	var reloaded []string
	var firstErr error
	for name := range *r.snap.Load() {
		if p := r.path(name); p == "" {
			continue
		} else if _, err := os.Stat(p); err != nil {
			continue
		}
		if _, err := r.Reload(name, 1); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		reloaded = append(reloaded, name)
	}
	sort.Strings(reloaded)
	return reloaded, firstErr
}

// Names lists every resolvable design: live registered designs plus
// snapshot files in the directory, sorted and deduplicated.
func (r *Registry) Names() []string {
	seen := map[string]bool{}
	for name := range *r.snap.Load() {
		seen[name] = true
	}
	if r.dir != "" {
		if entries, err := os.ReadDir(r.dir); err == nil {
			for _, e := range entries {
				name := strings.TrimSuffix(e.Name(), DesignExt)
				if !e.IsDir() && strings.HasSuffix(e.Name(), DesignExt) && validName(name) {
					seen[name] = true
				}
			}
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
