package quant

import (
	"bytes"
	"math"
	"testing"

	"sei/internal/mnist"
	"sei/internal/tensor"
)

var calibFixture struct {
	q     *QuantizedNet
	train *mnist.Dataset
	test  *mnist.Dataset
}

// quantizedFixture returns a fresh deep copy of a quantized Network 2
// (built once per test binary) plus shared datasets, so tests can
// mutate their copy freely.
func quantizedFixture(t *testing.T) (*QuantizedNet, *mnist.Dataset, *mnist.Dataset) {
	t.Helper()
	if calibFixture.q == nil {
		net := trainedNet2(t)
		calibFixture.train = mnist.Synthetic(1200, 5)
		calibFixture.test = mnist.Synthetic(300, 77)
		cfg := DefaultSearchConfig()
		cfg.Samples = 200
		q, _, err := QuantizeNetwork(net, calibFixture.train, []int{1, 28, 28}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		calibFixture.q = q
	}
	var buf bytes.Buffer
	if err := calibFixture.q.Save(&buf); err != nil {
		t.Fatal(err)
	}
	clone, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return clone, calibFixture.train, calibFixture.test
}

func TestRecalibrateFCImprovesOrHolds(t *testing.T) {
	q, train, test := quantizedFixture(t)
	before := q.ErrorRate(test)
	if err := RecalibrateFC(q, train, DefaultRecalibrateConfig()); err != nil {
		t.Fatal(err)
	}
	after := q.ErrorRate(test)
	t.Logf("recalibrate: %.4f -> %.4f", before, after)
	if after > before+0.03 {
		t.Fatalf("recalibration degraded error: %.4f -> %.4f", before, after)
	}
}

func TestRecalibrateFCOnlyTouchesFC(t *testing.T) {
	q, train, _ := quantizedFixture(t)
	convBefore := q.Convs[0].W.Clone()
	thrBefore := append([]float64(nil), q.Thresholds...)
	if err := RecalibrateFC(q, train, DefaultRecalibrateConfig()); err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualApprox(q.Convs[0].W, convBefore, 0) {
		t.Fatal("recalibration mutated conv weights")
	}
	for i := range thrBefore {
		if q.Thresholds[i] != thrBefore[i] {
			t.Fatal("recalibration mutated thresholds")
		}
	}
}

func TestRecalibrateFCRejectsBadConfig(t *testing.T) {
	q, train, _ := quantizedFixture(t)
	for _, cfg := range []RecalibrateConfig{
		{Epochs: 0, BatchSize: 8, LR: 0.1},
		{Epochs: 1, BatchSize: 0, LR: 0.1},
		{Epochs: 1, BatchSize: 8, LR: 0},
	} {
		if err := RecalibrateFC(q, train, cfg); err == nil {
			t.Fatalf("accepted config %+v", cfg)
		}
	}
}

func TestRecalibrateFCReducesTrainingLossDirection(t *testing.T) {
	// The FC update is plain softmax regression; training accuracy on
	// the binarized features must not drop.
	q, train, _ := quantizedFixture(t)
	sub := train.Subset(200)
	acc := func() float64 {
		correct := 0
		for i, img := range sub.Images {
			if q.Predict(img) == sub.Labels[i] {
				correct++
			}
		}
		return float64(correct) / float64(sub.Len())
	}
	before := acc()
	if err := RecalibrateFC(q, train, DefaultRecalibrateConfig()); err != nil {
		t.Fatal(err)
	}
	after := acc()
	if after < before-0.02 {
		t.Fatalf("training accuracy dropped: %.4f -> %.4f", before, after)
	}
}

func TestRefineThresholdsNeverWorseOnSearchSet(t *testing.T) {
	q, train, _ := quantizedFixture(t)
	cfg := DefaultRefineConfig()
	cfg.Samples = 200
	sub := train.Subset(cfg.Samples)
	acc := func() float64 {
		correct := 0
		for i, img := range sub.Images {
			if q.Predict(img) == sub.Labels[i] {
				correct++
			}
		}
		return float64(correct) / float64(sub.Len())
	}
	before := acc()
	best, err := RefineThresholds(q, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if best < before-1e-9 {
		t.Fatalf("refinement returned accuracy %.4f below starting %.4f", best, before)
	}
	if got := acc(); math.Abs(got-best) > 1e-9 {
		t.Fatalf("reported accuracy %.4f does not match state %.4f", best, got)
	}
	for i, thr := range q.Thresholds {
		if thr < 0 {
			t.Fatalf("threshold %d went negative: %v", i, thr)
		}
	}
}

func TestRefineThresholdsRejectsBadConfig(t *testing.T) {
	q, train, _ := quantizedFixture(t)
	for _, cfg := range []RefineConfig{
		{Rounds: 0, Step: 0.01, Radius: 2},
		{Rounds: 1, Step: 0, Radius: 2},
		{Rounds: 1, Step: 0.01, Radius: 0},
	} {
		if _, err := RefineThresholds(q, train, cfg); err == nil {
			t.Fatalf("accepted config %+v", cfg)
		}
	}
}

func TestActivityFactors(t *testing.T) {
	q, _, test := quantizedFixture(t)
	factors := q.ActivityFactors(test.Subset(40))
	if len(factors) != 3 { // input layer + conv2 input + FC input
		t.Fatalf("got %d factors, want 3", len(factors))
	}
	if factors[0] != 1.0 {
		t.Fatalf("analog input activity %v, want 1.0", factors[0])
	}
	for i := 1; i < 3; i++ {
		if factors[i] <= 0 || factors[i] > 1 {
			t.Fatalf("factor %d = %v outside (0,1]", i, factors[i])
		}
		// The Table-1 long tail: binary activations are sparse.
		if factors[i] > 0.6 {
			t.Fatalf("factor %d = %v; expected sparse activations", i, factors[i])
		}
	}
}

func TestActivityFactorsEmptyDataset(t *testing.T) {
	q, _, _ := quantizedFixture(t)
	factors := q.ActivityFactors(&mnist.Dataset{})
	for i, f := range factors {
		if f != 1.0 {
			t.Fatalf("empty dataset factor %d = %v, want 1.0", i, f)
		}
	}
}

func TestRefineThresholdsStopsWhenConverged(t *testing.T) {
	// With a huge step every candidate is terrible, so round 1 finds no
	// improvement and the loop must exit without mutating thresholds.
	q, train, _ := quantizedFixture(t)
	before := append([]float64(nil), q.Thresholds...)
	cfg := RefineConfig{Rounds: 5, Step: 10, Radius: 2, Samples: 100}
	if _, err := RefineThresholds(q, train, cfg); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if q.Thresholds[i] != before[i] {
			t.Fatalf("thresholds changed despite no improvement: %v -> %v", before, q.Thresholds)
		}
	}
}
