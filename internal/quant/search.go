package quant

import (
	"fmt"
	"math"

	"sei/internal/mnist"
	"sei/internal/obs"
	"sei/internal/par"
	"sei/internal/tensor"
)

// SearchConfig controls Algorithm 1 (Threshold Searching Algorithm).
type SearchConfig struct {
	// ThresMin/ThresMax bound the brute-force interval. The paper
	// searches [0, 0.1]: after re-scaling, outputs lie in [0,1] and the
	// long-tail distribution puts the optimum well below 0.1.
	ThresMin, ThresMax float64
	// CoarseStep is the first sweep's step; FineStep refines around the
	// coarse optimum (a two-resolution version of the paper's single
	// SearchStep, same brute-force spirit at lower cost).
	CoarseStep, FineStep float64
	// Samples caps how many training samples drive the search
	// (0 = use the whole set). The paper uses all 60k; a subsample
	// preserves the optimum because only the argmax over a smooth
	// accuracy curve matters.
	Samples int
	// Workers bounds the parallel engine's goroutines (0 = all cores,
	// 1 = the serial path). Every worker count yields bit-identical
	// thresholds: candidate scoring is an order-independent count and
	// sample chunking is fixed.
	Workers int
	// Obs, when set, receives search counters (quant_threshold_candidates
	// and the engine scheduling metrics); nil disables recording.
	Obs *obs.Recorder
}

// DefaultSearchConfig uses a wider interval than the paper's [0, 0.1]:
// the synthetic-MNIST networks place their accuracy optimum above 0.1
// (denser early-layer features than CaffeNet's), and since weight
// re-scaling bounds outputs to [0,1] a wider brute-force sweep is
// harmless. PaperSearchConfig reproduces the paper's exact interval.
func DefaultSearchConfig() SearchConfig {
	return SearchConfig{
		ThresMin:   0,
		ThresMax:   0.6,
		CoarseStep: 0.03,
		FineStep:   0.005,
		Samples:    500,
	}
}

// PaperSearchConfig is the literal Algorithm-1 interval: thresholds
// searched from 0 to 0.1.
func PaperSearchConfig() SearchConfig {
	return SearchConfig{
		ThresMin:   0,
		ThresMax:   0.1,
		CoarseStep: 0.01,
		FineStep:   0.002,
		Samples:    500,
	}
}

// LayerSearchResult records one layer's outcome.
type LayerSearchResult struct {
	Layer     int
	MaxOutput float64 // re-scaling divisor (max activation before scaling)
	Threshold float64
	Accuracy  float64 // training-subsample accuracy at the chosen threshold
}

// SearchReport is the outcome of Algorithm 1.
type SearchReport struct {
	Layers []LayerSearchResult
}

// SearchThresholds runs Algorithm 1 on q in place: for each conv stage
// in order it (1) computes the stage's outputs under the already-
// quantized prefix, (2) re-scales the stage weights so outputs lie in
// [0,1], and (3) brute-force searches the binarization threshold that
// maximizes training accuracy through the *float* remainder of the
// network (the layer-by-layer greedy strategy).
func SearchThresholds(q *QuantizedNet, train *mnist.Dataset, cfg SearchConfig) (*SearchReport, error) {
	if cfg.ThresMax <= cfg.ThresMin || cfg.CoarseStep <= 0 || cfg.FineStep <= 0 {
		return nil, fmt.Errorf("quant: invalid search config %+v", cfg)
	}
	if err := par.Validate(cfg.Workers); err != nil {
		return nil, fmt.Errorf("quant: search config: %w", err)
	}
	data := train
	if cfg.Samples > 0 && cfg.Samples < train.Len() {
		data = train.Subset(cfg.Samples)
	}
	if data.Len() == 0 {
		return nil, fmt.Errorf("quant: empty training set")
	}
	report := &SearchReport{}
	eval := q.Digital()

	// entries[i] is the activation entering the stage currently being
	// searched; starts as the raw images and is advanced through each
	// finished stage's binarized pipeline.
	entries := make([]*tensor.Tensor, data.Len())
	copy(entries, data.Images)

	for l := range q.Convs {
		// Step 1: stage outputs under the quantized prefix. Each
		// sample's output lands in its own slot; the per-chunk maxima
		// fold in chunk order (max is order-independent anyway).
		convOut := make([]*tensor.Tensor, data.Len())
		maxOut := par.MapReduceRec(cfg.Obs, cfg.Workers, data.Len(), par.DefaultChunkSize,
			func(c par.Chunk) float64 {
				m := 0.0
				for i := c.Lo; i < c.Hi; i++ {
					convOut[i] = floatConv(&q.Convs[l], entries[i])
					if v := convOut[i].Max(); v > m {
						m = v
					}
				}
				return m
			},
			math.Max, 0)
		if maxOut <= 1e-12 {
			return nil, fmt.Errorf("quant: conv stage %d produces no positive outputs; network is dead", l)
		}

		// Step 2: weight re-scaling (Algorithm 1 line 4). Scaling the
		// weights scales the outputs; it cannot change the float
		// network's classification.
		q.Convs[l].W.Scale(1 / maxOut)
		par.ForEachRec(cfg.Obs, cfg.Workers, len(convOut), func(i int) {
			convOut[i].Scale(1 / maxOut)
		})

		// Step 3: brute-force threshold search, coarse then fine.
		// Candidate scoring fans out over samples; q is read-only here.
		evalT := func(t float64) float64 {
			cfg.Obs.Counter("quant_threshold_candidates").Add(1)
			correct := par.CountRec(cfg.Obs, cfg.Workers, len(convOut), func(i int) bool {
				bits := binarize(convOut[i], t)
				if q.Convs[l].PoolSize > 1 {
					bits = orPool(bits, q.Convs[l].PoolSize)
				}
				return floatRemainder(q, l+1, bits) == data.Labels[i]
			})
			return float64(correct) / float64(len(convOut))
		}
		bestT, bestAcc := cfg.ThresMin, -1.0
		for t := cfg.ThresMin; t <= cfg.ThresMax+1e-12; t += cfg.CoarseStep {
			if acc := evalT(t); acc > bestAcc {
				bestT, bestAcc = t, acc
			}
		}
		lo := math.Max(cfg.ThresMin, bestT-cfg.CoarseStep)
		hi := math.Min(cfg.ThresMax, bestT+cfg.CoarseStep)
		for t := lo; t <= hi+1e-12; t += cfg.FineStep {
			if acc := evalT(t); acc > bestAcc {
				bestT, bestAcc = t, acc
			}
		}
		q.Thresholds[l] = bestT
		report.Layers = append(report.Layers, LayerSearchResult{
			Layer: l, MaxOutput: maxOut, Threshold: bestT, Accuracy: bestAcc,
		})

		// Advance the cached entries through the now-final stage.
		par.ForEachRec(cfg.Obs, cfg.Workers, len(entries), func(i int) {
			entries[i] = q.convStage(eval, l, entries[i])
		})
	}
	return report, nil
}

// floatConv computes the real-valued convolution of one stage on an
// input map (no ReLU, no pooling): the "Output(L)" of Algorithm 1.
func floatConv(c *ConvSpec, in *tensor.Tensor) *tensor.Tensor {
	kh, kw := c.W.Dim(2), c.W.Dim(3)
	cols := tensor.Im2Col(in, kh, kw, c.Stride)
	wmat := c.W.Reshape(c.Filters(), c.FanIn())
	prod := tensor.MatMul(wmat, tensor.Transpose2D(cols))
	h, w := in.Dim(1), in.Dim(2)
	outH := (h-kh)/c.Stride + 1
	outW := (w-kw)/c.Stride + 1
	return prod.Reshape(c.Filters(), outH, outW)
}

// binarize thresholds a real map into a 0/1 map.
func binarize(x *tensor.Tensor, t float64) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	for i, v := range x.Data() {
		if v > t {
			out.Data()[i] = 1
		}
	}
	return out
}

// maxPool is float max pooling (used only in the float remainder of
// the greedy search; the quantized pipeline uses orPool).
func maxPool(x *tensor.Tensor, size int) *tensor.Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := h/size, w/size
	out := tensor.New(c, oh, ow)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := math.Inf(-1)
				for ky := 0; ky < size; ky++ {
					for kx := 0; kx < size; kx++ {
						if v := x.At(ch, oy*size+ky, ox*size+kx); v > best {
							best = v
						}
					}
				}
				out.Set(best, ch, oy, ox)
			}
		}
	}
	return out
}

// floatRemainder runs stages from (the input of conv stage `from`)
// through the original float semantics — conv, ReLU, max-pool — and
// the FC classifier, returning the predicted class. This is the
// not-yet-quantized tail of the greedy search.
func floatRemainder(q *QuantizedNet, from int, x *tensor.Tensor) int {
	for l := from; l < len(q.Convs); l++ {
		x = floatConv(&q.Convs[l], x)
		for i, v := range x.Data() {
			if v < 0 {
				x.Data()[i] = 0
			}
		}
		if q.Convs[l].PoolSize > 1 {
			x = maxPool(x, q.Convs[l].PoolSize)
		}
	}
	y := tensor.MatVec(q.FC.W, x.Data())
	for i := range y {
		y[i] += q.FC.B[i]
	}
	return tensor.FromSlice(y, len(y)).ArgMax()
}
