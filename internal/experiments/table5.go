package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"sei/internal/arch"
	"sei/internal/baseline"
	"sei/internal/nn"
	"sei/internal/par"
	"sei/internal/power"
	"sei/internal/rram"
	"sei/internal/seicore"
)

// Table5Row is one row of Table 5: a network × structure × crossbar
// size design point.
type Table5Row struct {
	NetworkID   int
	DataBits    int
	Structure   seicore.Structure
	MaxCrossbar int
	ErrorRate   float64
	EnergyUJ    float64
	// EnergySaving and AreaSaving are relative to the DAC+ADC row of
	// the same network and crossbar size.
	EnergySaving float64
	AreaSaving   float64
	AreaMM2      float64
	GOPsPerJ     float64
}

// Table5Result reproduces Table 5 plus the Section-5.3 efficiency
// comparison.
type Table5Result struct {
	Rows      []Table5Row
	Baselines []baseline.Platform
}

// Table5Point selects one network/crossbar-size block of the table.
type Table5Point struct {
	NetworkID   int
	MaxCrossbar int
}

// PaperTable5Points returns the paper's layout: Network 1 at 512 and
// 256, Networks 2 and 3 at 512.
func PaperTable5Points() []Table5Point {
	return []Table5Point{
		{1, 512}, {1, 256}, {2, 512}, {3, 512},
	}
}

// Table5 evaluates the three structures at each point: functional
// error through the hardware simulators, energy/area through the
// mapper. The context's lazy caches are populated serially up front;
// the independent design points then fan out, each point splitting
// the worker budget with the others, and rows concatenate in point
// order so the result is worker-count independent.
func Table5(c *Context, points []Table5Point) (*Table5Result, error) {
	lib := power.DefaultLibrary()
	res := &Table5Result{Baselines: baseline.All()}

	// Serial prefetch: everything that writes the context's lazy maps.
	for _, pt := range points {
		c.QuantizedCalibrated(pt.NetworkID)
		c.dacadcError(pt.NetworkID)
		c.oneBitError(pt.NetworkID)
	}

	sp := c.Cfg.Obs.StartSpan("evaluate/table5")
	defer sp.End()

	inner := par.Resolve(c.Cfg.Workers) / len(points)
	if inner < 1 {
		inner = 1
	}
	type pointResult struct {
		rows []Table5Row
		err  error
	}
	perPoint := make([]pointResult, len(points))
	par.ForEachChunkRec(c.Cfg.Obs, c.Cfg.Workers, len(points), 1, func(ch par.Chunk) {
		pt := points[ch.Lo]
		pr := &perPoint[ch.Lo]
		q := c.QuantizedCalibrated(pt.NetworkID)
		geoms, err := arch.GeometryOf(q)
		if err != nil {
			pr.err = err
			return
		}
		var baseEnergy, baseArea float64
		for _, structure := range []seicore.Structure{seicore.StructDACADC, seicore.StructOneBitADC, seicore.StructSEI} {
			cfg := arch.DefaultConfig(structure)
			cfg.MaxCrossbar = pt.MaxCrossbar
			m, err := arch.Map(geoms, cfg)
			if err != nil {
				pr.err = err
				return
			}
			_, e := m.Energy(lib)
			_, a := m.Area(lib)
			row := Table5Row{
				NetworkID:   pt.NetworkID,
				Structure:   structure,
				MaxCrossbar: pt.MaxCrossbar,
				DataBits:    1,
				EnergyUJ:    power.MicroJoules(e),
				AreaMM2:     power.SquareMM(a),
				GOPsPerJ:    m.Efficiency(lib),
			}
			switch structure {
			case seicore.StructDACADC:
				row.DataBits = 8
				baseEnergy, baseArea = row.EnergyUJ, row.AreaMM2
				row.ErrorRate = c.dacadcError(pt.NetworkID)
			case seicore.StructOneBitADC:
				row.ErrorRate = c.oneBitError(pt.NetworkID)
			case seicore.StructSEI:
				orders, _ := homogenizedOrders(c, q, pt.MaxCrossbar, seicore.ModeBipolar)
				row.ErrorRate = seiError(c, q, pt.MaxCrossbar, orders, true, c.Cfg.Seed+int64(pt.MaxCrossbar), inner)
			}
			if baseEnergy > 0 {
				row.EnergySaving = 1 - row.EnergyUJ/baseEnergy
			}
			if baseArea > 0 {
				row.AreaSaving = 1 - row.AreaMM2/baseArea
			}
			c.logf("experiments: table5 net%d @%d %s: err %.4f energy %.3f uJ area %.4f mm2\n",
				pt.NetworkID, pt.MaxCrossbar, structure, row.ErrorRate, row.EnergyUJ, row.AreaMM2)
			pr.rows = append(pr.rows, row)
		}
	})
	for _, pr := range perPoint {
		if pr.err != nil {
			return nil, pr.err
		}
		res.Rows = append(res.Rows, pr.rows...)
	}
	return res, nil
}

// dacadcError evaluates the full-precision hardware design (cached per
// network).
func (c *Context) dacadcError(id int) float64 {
	key := -id // negative keys hold hardware-path errors
	if e, ok := c.floatErr[key]; ok {
		return e
	}
	design, err := seicore.BuildDACADC(c.Network(id), []int{1, 28, 28}, rram.DefaultDeviceModel(),
		rand.New(rand.NewSource(c.Cfg.Seed)))
	if err != nil {
		panic(fmt.Sprintf("experiments: building DAC+ADC design: %v", err))
	}
	design.Instrument(c.Cfg.Obs)
	e := nn.ClassifierErrorRateObs(c.Cfg.Obs, design, c.Test, c.Cfg.Workers)
	c.floatErr[key] = e
	return e
}

// oneBitError evaluates the 1-bit-input ADC-merged design (cached).
func (c *Context) oneBitError(id int) float64 {
	key := -id
	if e, ok := c.quantErr[key]; ok {
		return e
	}
	design, err := seicore.BuildOneBitADC(c.QuantizedCalibrated(id), rram.DefaultDeviceModel(),
		rand.New(rand.NewSource(c.Cfg.Seed)))
	if err != nil {
		panic(fmt.Sprintf("experiments: building 1-bit+ADC design: %v", err))
	}
	design.Instrument(c.Cfg.Obs)
	e := nn.ClassifierErrorRateObs(c.Cfg.Obs, design, c.Test, c.Cfg.Workers)
	c.quantErr[key] = e
	return e
}

// Print renders the result like the paper's Table 5.
func (r *Table5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 5: results of the proposed method using a 4-bit RRAM device")
	fmt.Fprintf(w, "  %-5s %-5s %-17s %-6s %8s %11s %9s %9s %9s\n",
		"net", "bits", "structure", "size", "err", "energy(uJ)", "E-save", "A-save", "GOPs/J")
	for _, row := range r.Rows {
		save := "-"
		asave := "-"
		if row.Structure != seicore.StructDACADC {
			save = fmt.Sprintf("%.2f%%", 100*row.EnergySaving)
			asave = fmt.Sprintf("%.2f%%", 100*row.AreaSaving)
		}
		fmt.Fprintf(w, "  %-5d %-5d %-17s %-6d %7.2f%% %11.3f %9s %9s %9.0f\n",
			row.NetworkID, row.DataBits, row.Structure, row.MaxCrossbar,
			100*row.ErrorRate, row.EnergyUJ, save, asave, row.GOPsPerJ)
	}
	fmt.Fprintln(w, "  Comparison platforms:")
	for _, p := range r.Baselines {
		fmt.Fprintf(w, "    %-22s %8.2f GOPs/J (%s)\n", p.Name, p.EfficiencyGOPsPerJ(), p.Source)
	}
}
