package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"

	"sei/internal/arch"
	"sei/internal/nn"
	"sei/internal/par"
	"sei/internal/power"
	"sei/internal/rram"
	"sei/internal/seicore"
)

// ParetoPoint is one device design point: precision and variation
// against accuracy and energy.
type ParetoPoint struct {
	DeviceBits int
	Sigma      float64
	ErrorRate  float64
	EnergyUJ   float64
	// Dominated marks points that another point beats on both axes.
	Dominated bool
}

// ParetoStudy sweeps device precision × programming variation for the
// SEI design of one network and marks the accuracy/energy Pareto
// frontier. It quantifies the paper's device-choice argument: 4-bit
// cells (two per weight slice) sit on the frontier because fewer bits
// multiply the cell count while more bits exceed what state-of-the-art
// devices can hold [13].
func ParetoStudy(c *Context, networkID int, bitsList []int, sigmas []float64) ([]ParetoPoint, error) {
	q := c.QuantizedCalibrated(networkID)
	geoms, err := arch.GeometryOf(q)
	if err != nil {
		return nil, err
	}
	lib := power.DefaultLibrary()
	test := c.Test.Subset(200)

	// Energy per precision (cheap, and Map can fail — keep it serial).
	// The mapper's default accounting assumes 4-bit devices (2 slices);
	// scale the data-dependent portion by the slice ratio.
	energyFor := make([]float64, len(bitsList))
	for bi, bits := range bitsList {
		cfg := arch.DefaultConfig(seicore.StructSEI)
		m, err := arch.Map(geoms, cfg)
		if err != nil {
			return nil, err
		}
		_, e := m.Energy(lib)
		sliceRatio := float64(rram.SliceCount(rram.WeightBits, bits)) / float64(rram.SliceCount(rram.WeightBits, 4))
		energyFor[bi] = power.MicroJoules(power.Breakdown{
			DAC: e.DAC, ADC: e.ADC, SA: e.SA, Digital: e.Digital,
			Buffer: e.Buffer, DRAM: e.DRAM,
			RRAM:   e.RRAM * sliceRatio,
			Driver: e.Driver * sliceRatio,
		})
	}

	// The grid points are independent designs: build and evaluate each
	// in its own slot, evaluation on the serial inner path. Each point
	// seeds its own RNG, so results match the serial sweep exactly.
	sp := c.Cfg.Obs.StartSpan("evaluate/pareto")
	defer sp.End()
	points := make([]ParetoPoint, len(bitsList)*len(sigmas))
	errs := make([]error, len(points))
	var done atomic.Int64
	par.ForEachChunkRec(c.Cfg.Obs, c.Cfg.Workers, len(points), 1, func(ch par.Chunk) {
		i := ch.Lo
		bits, sigma := bitsList[i/len(sigmas)], sigmas[i%len(sigmas)]
		model := rram.IdealDeviceModel(bits)
		model.ProgramSigma = sigma
		design, err := seicore.BuildOneBitADC(q, model, rand.New(rand.NewSource(c.Cfg.Seed)))
		if err != nil {
			errs[i] = err
			return
		}
		design.Instrument(c.Cfg.Obs)
		points[i] = ParetoPoint{
			DeviceBits: bits,
			Sigma:      sigma,
			ErrorRate:  nn.ClassifierErrorRateObs(c.Cfg.Obs, design, test, 1),
			EnergyUJ:   energyFor[i/len(sigmas)],
		}
		c.Cfg.Obs.Progress("pareto points", int(done.Add(1)), len(points))
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	markDominated(points)
	return points, nil
}

// markDominated flags points strictly worse than another on both axes.
func markDominated(points []ParetoPoint) {
	for i := range points {
		for j := range points {
			if i == j {
				continue
			}
			if points[j].ErrorRate <= points[i].ErrorRate &&
				points[j].EnergyUJ <= points[i].EnergyUJ &&
				(points[j].ErrorRate < points[i].ErrorRate || points[j].EnergyUJ < points[i].EnergyUJ) {
				points[i].Dominated = true
				break
			}
		}
	}
}

// PrintPareto renders the sweep with frontier markers.
func PrintPareto(w io.Writer, networkID int, points []ParetoPoint) {
	fmt.Fprintf(w, "Device Pareto study (Network %d, SEI): accuracy vs energy\n", networkID)
	fmt.Fprintf(w, "  %-6s %-7s %9s %12s %9s\n", "bits", "sigma", "error", "energy(uJ)", "frontier")
	for _, p := range points {
		mark := "*"
		if p.Dominated {
			mark = ""
		}
		fmt.Fprintf(w, "  %-6d %-7.2f %8.2f%% %12.3f %9s\n",
			p.DeviceBits, p.Sigma, 100*p.ErrorRate, p.EnergyUJ, mark)
	}
}
