// Package seicore implements the paper's primary contribution: the
// SElected-by-Input (SEI) crossbar structure (Section 4) and the
// ADC-merged baseline it is compared against.
//
// In SEI the 1-bit input data drive the crossbar's transmission gates
// (selection), freeing the original input port to carry common
// information of the weights in a row — the bit-significance
// coefficient 2⁴ and the sign. One crossbar column therefore holds all
// four cells (positive/negative × high/low nibble) of a signed 8-bit
// weight, the weighted merge happens inside the analog sum (Equ. 6),
// and a sense amplifier replaces the ADC. Large logical columns are
// split across crossbars, each sub-block thresholding locally with a
// digital count threshold on the fired bits, compensated by matrix
// homogenization (package homog) and an input-dynamic threshold
// column (Section 4.2/4.3).
package seicore

import (
	"fmt"
	"math/rand"

	"sei/internal/rram"
	"sei/internal/tensor"
)

// EffectiveSignedMatrix programs a real weight matrix [N,M] onto RRAM
// cells using the paper's signed 8-bit representation — positive and
// negative groups of ceil(8/Bits) precision slices each (the four-cell
// pos/neg × high/low form for the paper's 4-bit devices) — and
// returns the effective real-valued matrix the analog array actually
// computes with: scale·Σᵢ 2^(Bits·i)·(cellᵢ⁺ − cellᵢ⁻) per weight,
// where each stored slice carries the device model's programming
// variation and faults. This one matrix is algebraically identical
// whether the cells live in separate ADC-merged crossbars (Fig. 2b)
// or stacked in one SEI column (Fig. 2c) — the structures differ in
// interface cost, not in the computed sum.
func EffectiveSignedMatrix(w *tensor.Tensor, model rram.DeviceModel, rng *rand.Rand) (*tensor.Tensor, float64, error) {
	if err := model.Validate(); err != nil {
		return nil, 0, err
	}
	if w.Dims() != 2 {
		return nil, 0, fmt.Errorf("seicore: weight matrix must be 2-D, got %v", w.Shape())
	}
	q, scale, err := rram.QuantizeSymmetric(w, rram.WeightBits)
	if err != nil {
		return nil, 0, err
	}
	maxLvl := float64(model.MaxLevel())
	gSpan := model.GOn - model.GOff
	cell := func(digit int) float64 {
		// Program the digit as a device level and read back the
		// effective stored value in level units.
		g := model.ProgramConductance(digit, rng)
		return (g - model.GOff) / gSpan * maxLvl
	}
	eff := tensor.New(w.Shape()...)
	// One column stores ceil(8/Bits) positive and as many negative
	// cells per weight; the extra port carries the per-slice
	// coefficients 2^(Bits·i) (the paper's A_k, = {1, 2⁴} for 4-bit
	// devices).
	for i, qv := range q {
		mag := qv
		sign := 1.0
		if mag < 0 {
			mag, sign = -mag, -1
		}
		slices := rram.SliceMagnitude(mag, rram.WeightBits, model.Bits)
		v := 0.0
		coeff := 1.0
		for _, d := range slices {
			// The opposite sign's cells hold zero but still exist
			// physically; program them too so their variation is real.
			v += coeff * (cell(d) - cell(0))
			coeff *= float64(int(1) << model.Bits)
		}
		eff.Data()[i] = scale * sign * v
	}
	return eff, scale, nil
}

// EffectiveUnipolarMatrix programs the matrix in the Section-4.2
// linear-transform representation for unipolar devices: each weight is
// mapped to w* = (q − qmin)/(qmax − qmin) ∈ [0,1], stored as
// ceil(8/Bits) positive cells (base-2^Bits digits of the 8-bit w*),
// and the extra port
// carries the slope k = (qmax − qmin)·scale. It returns the effective
// matrix in original weight units before bias correction — entry
// (j,c) ≈ w_{j,c} − qmin·scale, a positive value since qmin ≤ 0 —
// plus the per-active-input bias w0Eff ≈ −qmin·scale that the
// dynamic-threshold column accumulates for the subtraction of Equ. 9,
// including that column's own device variation. For any active input
// set S: Σ_{j∈S} eff[j][c] − Σ_{j∈S} w0Eff[j] ≈ Σ_{j∈S} w_{j,c}.
func EffectiveUnipolarMatrix(w *tensor.Tensor, model rram.DeviceModel, rng *rand.Rand) (eff *tensor.Tensor, w0Eff []float64, err error) {
	if err := model.Validate(); err != nil {
		return nil, nil, err
	}
	if w.Dims() != 2 {
		return nil, nil, fmt.Errorf("seicore: weight matrix must be 2-D, got %v", w.Shape())
	}
	q, scale, err := rram.QuantizeSymmetric(w, rram.WeightBits)
	if err != nil {
		return nil, nil, err
	}
	qmin, qmax := 0, 0
	for _, v := range q {
		if v < qmin {
			qmin = v
		}
		if v > qmax {
			qmax = v
		}
	}
	span := qmax - qmin
	if span == 0 {
		span = 1
	}
	maxLvl := float64(model.MaxLevel())
	gSpan := model.GOn - model.GOff
	cell := func(nibble int) float64 {
		g := model.ProgramConductance(nibble, rng)
		return (g - model.GOff) / gSpan * maxLvl
	}
	full := float64(int(1)<<rram.WeightBits - 1) // 255
	k := float64(span) * scale / full            // slope on the extra port per w*-unit
	stored := func(value int) float64 {
		v, coeff := 0.0, 1.0
		for _, d := range rram.SliceMagnitude(value, rram.WeightBits, model.Bits) {
			v += coeff * cell(d)
			coeff *= float64(int(1) << model.Bits)
		}
		return v
	}
	eff = tensor.New(w.Shape()...)
	for i, qv := range q {
		wstarInt := int(float64(qv-qmin)*full/float64(span) + 0.5)
		eff.Data()[i] = k * stored(wstarInt)
	}
	// The dynamic-threshold column stores w0 = −qmin/span per input row
	// (same multi-cell precision), selected by the same inputs.
	n := w.Dim(0)
	w0Eff = make([]float64, n)
	w0Int := int(float64(-qmin)*full/float64(span) + 0.5)
	for j := 0; j < n; j++ {
		w0Eff[j] = k * stored(w0Int)
	}
	return eff, w0Eff, nil
}
