// Command seisim regenerates the tables and figures of "Switched by
// Input: Power Efficient Structure for RRAM-based Convolutional Neural
// Network" (DAC 2016).
//
// Usage:
//
//	seisim [flags] <experiment>
//
// Experiments:
//
//	fig1        power/area breakdown of the DAC+ADC baseline (Fig. 1)
//	table1      intermediate-data distribution (Table 1)
//	table2      network setup and complexity (Table 2)
//	table3      quantization error rates (Table 3)
//	table4      matrix-splitting study (Table 4)
//	table5      energy/area of the three structures (Table 5)
//	homog       homogenization ordering study (Section 4.3)
//	efficiency  GOPs/J vs FPGA/GPU (Section 5.3)
//	timing      latency/throughput and the replica trade-off (Section 5.3)
//	map         per-layer floorplan with measured-activity energy
//	bounded     runtime activation-bound study: skip rates, energy, approx delta
//	noisy       packed non-ideal inference study: speedup, draw ledger, approx delta
//	pareto      device precision/variation Pareto frontier
//	vgg         VGG-19 motivation numbers (Section 2.3)
//	verilog     golden digital RTL of the SEI stages (internal/hdl)
//	pipeline    one end-to-end train→quantize→SEI run
//	all         every table and figure, in paper order
//
// Observability: -metrics writes a JSON run report (phase spans,
// hardware counters, skipped points), -trace dumps the same report as
// text to stderr, -progress prints live progress lines, -prom writes
// Prometheus text format, -pprof serves net/http/pprof. Calibration
// cost shows up alongside the inference counters: per-layer
// `search/convN` spans carry the threshold-search wall time, the
// `quant_search_skip_rate` gauge and the `quant_remainder_skipped` /
// `quant_remainder_evals` / `quant_fc_delta_updates` counters expose
// how much remainder work the incremental engine avoided. Counter
// values are identical for any -workers setting.
//
// The synthetic MNIST substitute is used unless $MNIST_DIR points at
// the real IDX files. Results are deterministic for a fixed -seed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sei"
	"sei/internal/arch"
	"sei/internal/cliutil"
	"sei/internal/experiments"
	"sei/internal/hdl"
	"sei/internal/power"
	"sei/internal/seicore"
)

// options is the parsed command line.
type options struct {
	what  string
	cfg   experiments.Config
	netID int
	sizes []int
	quiet bool
	obs   cliutil.ObsFlags
}

// parseFlags parses args (without the program name) into options. It
// returns cliutil.ErrUsage for failures the flag package has already
// reported on stderr, flag.ErrHelp for -h, and a descriptive error —
// including the unified -workers message — otherwise.
func parseFlags(args []string, stderr io.Writer) (*options, error) {
	opt := &options{}
	fs := flag.NewFlagSet("seisim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		train   = fs.Int("train", 3000, "training samples")
		test    = fs.Int("test", 600, "test samples")
		epochs  = fs.Int("epochs", 4, "training epochs")
		seed    = fs.Int64("seed", 1, "global random seed")
		search  = fs.Int("search", 400, "Algorithm-1 threshold-search samples")
		orders  = fs.Int("orders", 20, "random orders sampled in table4 (paper: 500)")
		calib   = fs.Int("calib", 50, "dynamic-threshold calibration images")
		cache   = fs.String("cache", "", "model cache directory (empty = no cache)")
		quick   = fs.Bool("quick", false, "use the small smoke-test sizing")
		net     = fs.Int("net", 1, "network id for fig1/table4/homog (1-3)")
		sizes   = fs.String("sizes", "512,256", "comma-separated crossbar sizes for table4")
		quiet   = fs.Bool("quiet", false, "suppress progress logging")
		workers = fs.Int("workers", 0, cliutil.WorkersUsage)
	)
	opt.obs.Register(fs)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: seisim [flags] <fig1|table1..5|homog|efficiency|timing|map|vgg|verilog|pipeline|all>\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil, err
		}
		return nil, cliutil.ErrUsage
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return nil, cliutil.ErrUsage
	}
	if err := cliutil.CheckWorkers(*workers); err != nil {
		return nil, err
	}
	parsedSizes, err := parseSizes(*sizes)
	if err != nil {
		return nil, err
	}

	opt.cfg = experiments.Config{
		TrainSamples:  *train,
		TestSamples:   *test,
		Epochs:        *epochs,
		Seed:          *seed,
		SearchSamples: *search,
		RandomOrders:  *orders,
		CalibImages:   *calib,
		CacheDir:      *cache,
		Workers:       *workers,
	}
	if *quick {
		opt.cfg = experiments.QuickConfig()
		opt.cfg.CacheDir = *cache
		opt.cfg.Workers = *workers
	}
	opt.what = fs.Arg(0)
	opt.netID = *net
	opt.sizes = parsedSizes
	opt.quiet = *quiet
	return opt, nil
}

func main() {
	opt, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		if !errors.Is(err, cliutil.ErrUsage) {
			fmt.Fprintf(os.Stderr, "seisim: %v\n", err)
		}
		os.Exit(2)
	}
	if !opt.quiet {
		opt.cfg.Log = os.Stderr
	}
	rec := opt.obs.Recorder()
	opt.cfg.Obs = rec

	if err := run(opt.what, opt.cfg, opt.netID, opt.sizes); err != nil {
		fmt.Fprintf(os.Stderr, "seisim: %v\n", err)
		os.Exit(1)
	}
	if err := opt.obs.Finish(rec, opt.what, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "seisim: %v\n", err)
		os.Exit(1)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(what string, cfg experiments.Config, netID int, sizes []int) error {
	w := os.Stdout
	if what == "all" {
		return sei.RunAllExperiments(cfg, w)
	}
	if what == "pipeline" {
		pcfg := sei.DefaultPipelineConfig()
		pcfg.NetworkID = netID
		pcfg.TrainSamples = cfg.TrainSamples
		pcfg.TestSamples = cfg.TestSamples
		pcfg.Epochs = cfg.Epochs
		pcfg.Seed = cfg.Seed
		pcfg.Log = cfg.Log
		pcfg.Workers = cfg.Workers
		pcfg.Obs = cfg.Obs
		res, err := sei.RunPipeline(pcfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "pipeline (Network %d):\n", netID)
		fmt.Fprintf(w, "  error: float %.2f%%  quantized %.2f%%  SEI hardware %.2f%%\n",
			100*res.FloatError, 100*res.QuantError, 100*res.SEIError)
		fmt.Fprintf(w, "  energy: %.3f uJ/pic vs %.3f uJ/pic baseline (%.1f%% saving)\n",
			res.EnergyUJ, res.BaseEnergyUJ, 100*res.EnergySaving)
		fmt.Fprintf(w, "  area:   %.4f mm2 vs %.4f mm2 baseline (%.1f%% saving)\n",
			res.AreaMM2, res.BaseAreaMM2, 100*res.AreaSaving)
		fmt.Fprintf(w, "  efficiency: %.0f GOPs/J\n", res.GOPsPerJ)
		return nil
	}

	c := experiments.NewContext(cfg)
	switch what {
	case "fig1":
		res, err := experiments.Figure1(c, netID)
		if err != nil {
			return err
		}
		res.Print(w)
	case "table1":
		experiments.Table1(c, 1, 2, 3).Print(w)
	case "table2":
		experiments.PrintTable2(w, experiments.Table2(c))
	case "table3":
		experiments.PrintTable3(w, experiments.Table3(c, 1, 2, 3))
	case "table4":
		experiments.Table4(c, netID, sizes).Print(w)
	case "table5":
		res, err := experiments.Table5(c, experiments.PaperTable5Points())
		if err != nil {
			return err
		}
		res.Print(w)
	case "homog":
		size := 512
		if len(sizes) > 0 {
			size = sizes[0]
		}
		experiments.PrintHomogStudy(w, netID, experiments.HomogenizationStudy(c, netID, size))
	case "efficiency":
		experiments.PrintEfficiency(w, experiments.EfficiencyComparison(c, 1, 2, 3))
	case "timing":
		rows, err := experiments.TimingStudy(c, netID, 8)
		if err != nil {
			return err
		}
		experiments.PrintTiming(w, netID, rows)
	case "map":
		// Per-layer floorplan of each structure with measured-activity
		// energy refinement.
		q := c.QuantizedCalibrated(netID)
		geoms, err := arch.GeometryOf(q)
		if err != nil {
			return err
		}
		activity := q.ActivityFactors(c.Test.Subset(50))
		fmt.Fprintf(w, "measured input activity per layer: %.3f\n", activity)
		lib := power.DefaultLibrary()
		for _, s := range []seicore.Structure{seicore.StructDACADC, seicore.StructOneBitADC, seicore.StructSEI} {
			m, err := arch.Map(geoms, arch.DefaultConfig(s))
			if err != nil {
				return err
			}
			if err := m.ApplyActivity(activity); err != nil {
				return err
			}
			m.Describe(w, lib)
			fmt.Fprintln(w)
		}
	case "bounded":
		res, err := experiments.BoundedStudy(c, netID)
		if err != nil {
			return err
		}
		res.Print(w)
	case "noisy":
		res, err := experiments.NoisyStudy(c, netID)
		if err != nil {
			return err
		}
		res.Print(w)
	case "pareto":
		points, err := experiments.ParetoStudy(c, netID, []int{2, 3, 4, 5, 6}, []float64{0, 0.02, 0.05, 0.1})
		if err != nil {
			return err
		}
		experiments.PrintPareto(w, netID, points)
	case "vgg":
		res, err := experiments.VGGAnalysis()
		if err != nil {
			return err
		}
		experiments.PrintVGG(w, res)
	case "verilog":
		// Golden digital RTL for the trained+quantized network's SEI
		// stages (see internal/hdl).
		if err := hdl.Export(c.QuantizedCalibrated(netID), w); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown experiment %q", what)
	}
	return nil
}
