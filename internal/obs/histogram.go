package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// LatencyBounds returns the default latency bucket upper bounds in
// seconds: 50 µs growing by 25 % per bucket up to one minute (~63
// buckets), fine enough that interpolated p50/p99/p999 land within a
// bucket ratio of the exact order statistics. Shared by the serving
// request histogram and the internal/load generator so client- and
// server-side latency distributions are directly comparable.
func LatencyBounds() []float64 {
	var b []float64
	for v := 50e-6; v < 60; v *= 1.25 {
		b = append(b, v)
	}
	return b
}

// Histogram is a fixed-boundary distribution of observed values.
// Bucket counts are atomic integers: observations from parallel chunk
// bodies commute, so bucket totals are identical for every worker
// count. The running sum is exact for integer-valued observations
// (which is all the simulator records — event counts per operation).
// A nil Histogram ignores Observe.
type Histogram struct {
	bounds []float64 // ascending upper bounds; implicit +Inf appended
	counts []atomic.Int64
	sum    atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	if !sort.Float64sAreSorted(b) {
		panic(fmt.Sprintf("obs: histogram bounds %v are not ascending", bounds))
	}
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value into the first bucket whose upper bound is
// ≥ v (the final bucket is +Inf).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
}

// Bounds returns the configured upper bounds (without the implicit
// +Inf bucket).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// Counts returns the per-bucket counts; the final entry is the +Inf
// bucket.
func (h *Histogram) Counts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var total int64
	for _, c := range h.Counts() {
		total += c
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.value()
}

// Quantile returns the q-th quantile (q in [0,1]) of the observed
// distribution, estimated by linear interpolation inside the bucket
// holding the target rank — the same estimator Prometheus's
// histogram_quantile applies server-side, computed here from the exact
// bucket counts so every caller (load generator, bench reports, tests)
// gets one deterministic number. Values in the +Inf bucket clamp to
// the largest finite bound. Returns NaN for an empty histogram or a q
// outside [0,1].
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	return quantile(h.bounds, h.Counts(), q)
}

// quantile is the shared bucket-interpolation estimator behind
// Histogram.Quantile and HistogramReport.Quantile. counts has one
// entry per bound plus the final +Inf bucket.
func quantile(bounds []float64, counts []int64, q float64) float64 {
	if math.IsNaN(q) || q < 0 || q > 1 || len(counts) == 0 {
		return math.NaN()
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cumPrev float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		cum := cumPrev + float64(c)
		if cum >= rank {
			if i >= len(bounds) {
				// +Inf bucket: clamp to the largest finite bound (0 when
				// every bound is +Inf-bucketed away).
				if len(bounds) == 0 {
					return 0
				}
				return bounds[len(bounds)-1]
			}
			hi := bounds[i]
			lo := 0.0
			switch {
			case i > 0:
				lo = bounds[i-1]
			case hi <= 0:
				// Unknowable lower edge of a non-positive first bucket:
				// report the bound itself, as histogram_quantile does.
				return hi
			}
			frac := (rank - cumPrev) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cumPrev = cum
	}
	// Unreachable: the cumulative count reaches total ≥ rank.
	return math.NaN()
}

// atomicFloat is a float64 accumulated with a CAS loop. Addition of
// the integer-valued observations the simulator records is exact and
// therefore commutative, keeping sums worker-count independent.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		cur := math.Float64frombits(old)
		if f.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }
