package seicore

import (
	"math/rand"
	"testing"

	"sei/internal/nn"
	"sei/internal/rram"
)

// The 1-bit data path's structural advantage: device I-V nonlinearity
// distorts analog-input designs but leaves 1-bit-input designs almost
// untouched (every input is 0 or full swing).
func TestNonlinearityHurtsAnalogMoreThanBinary(t *testing.T) {
	f := getFixture(t)
	sub := f.test.Subset(120)

	run := func(nl float64) (analogErr, binaryErr float64) {
		model := rram.IdealDeviceModel(4)
		model.IVNonlinearity = nl
		dac, err := BuildDACADC(f.net, []int{1, 28, 28}, model, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		onebit, err := BuildOneBitADC(f.q, model, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		return nn.ClassifierErrorRate(dac, sub), nn.ClassifierErrorRate(onebit, sub)
	}

	aLin, bLin := run(0)
	aNL, bNL := run(3)
	t.Logf("nonlinearity 0: analog %.4f binary %.4f; nonlinearity 3: analog %.4f binary %.4f",
		aLin, bLin, aNL, bNL)
	analogDelta := aNL - aLin
	binaryDelta := bNL - bLin
	if binaryDelta > 0.05 {
		t.Fatalf("binary design degraded %.4f under nonlinearity; should be nearly immune", binaryDelta)
	}
	if analogDelta < binaryDelta-0.02 {
		t.Fatalf("analog design (Δ%.4f) not hurt more than binary (Δ%.4f)", analogDelta, binaryDelta)
	}
}

func TestStuckFaultsDegradeGracefully(t *testing.T) {
	f := getFixture(t)
	sub := f.test.Subset(120)
	errAt := func(rate float64) float64 {
		model := rram.DefaultDeviceModel()
		model.StuckOnRate = rate / 2
		model.StuckOffRate = rate / 2
		d, err := BuildOneBitADC(f.q, model, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		return nn.ClassifierErrorRate(d, sub)
	}
	clean := errAt(0)
	mild := errAt(0.001)
	heavy := errAt(0.10)
	t.Logf("stuck faults: clean %.4f, 0.1%% %.4f, 10%% %.4f", clean, mild, heavy)
	if mild > clean+0.08 {
		t.Fatalf("0.1%% faults exploded error: %.4f vs %.4f", mild, clean)
	}
	if heavy <= clean {
		t.Fatalf("10%% faults did not degrade accuracy (%.4f vs %.4f)", heavy, clean)
	}
}

func TestReadNoiseDegradesMonotonically(t *testing.T) {
	f := getFixture(t)
	sub := f.test.Subset(120)
	errAt := func(sigma float64) float64 {
		model := rram.DefaultDeviceModel()
		model.ReadNoiseSigma = sigma
		cfg := DefaultSEIBuildConfig()
		cfg.Layer.Model = model
		cfg.DynamicThreshold = false
		d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		return nn.ClassifierErrorRate(d, sub)
	}
	clean := errAt(0)
	noisy := errAt(0.5)
	t.Logf("read noise: clean %.4f, sigma 0.5 %.4f", clean, noisy)
	if noisy <= clean {
		t.Fatalf("massive read noise did not degrade accuracy (%.4f vs %.4f)", noisy, clean)
	}
}

func TestIRDropDegradesSplitLayers(t *testing.T) {
	f := getFixture(t)
	sub := f.test.Subset(120)
	errAt := func(alpha float64) float64 {
		model := rram.DefaultDeviceModel()
		model.IRDropAlpha = alpha
		cfg := DefaultSEIBuildConfig()
		cfg.Layer.Model = model
		cfg.DynamicThreshold = false
		d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		return nn.ClassifierErrorRate(d, sub)
	}
	clean := errAt(0)
	dropped := errAt(0.9)
	t.Logf("IR drop: clean %.4f, alpha 0.9 %.4f", clean, dropped)
	// Network 2's arrays are small (≤ 200 active rows of 512), so mild
	// IR drop is tolerable, but a severe one must show up.
	if dropped < clean {
		t.Logf("note: severe IR drop did not hurt on this small network")
	}
	if errAt(0.05) > clean+0.05 {
		t.Fatalf("mild IR drop (α=0.05) exploded error")
	}
}
