package rram

import (
	"fmt"
	"math"
	"math/rand"

	"sei/internal/tensor"
)

// Iterative program-and-verify, the "adaptable variation-tolerant
// algorithm" of the paper's reference [13] (Alibart et al.): each cell
// is pulsed, read back, and re-pulsed until its conductance lands
// within tolerance of the target level, bounding the effect of
// programming variation at the cost of write pulses. This is the
// one-time cost of deploying weights that the per-picture energy
// metric (Table 5) excludes; ProgramVerify quantifies it.

// WriteConfig controls the program-and-verify loop.
type WriteConfig struct {
	// Tolerance is the relative conductance error that passes
	// verification.
	Tolerance float64
	// MaxPulses bounds the attempts per cell; a cell that never
	// verifies (e.g. a stuck fault) is counted as a failure and left at
	// its last state.
	MaxPulses int
	// PulseEnergyPJ is the energy of one SET/RESET pulse plus its
	// verify read.
	PulseEnergyPJ float64
}

// DefaultWriteConfig verifies to 2 % with up to 50 pulses at 10 pJ per
// pulse (nanosecond-scale switching at ~1 V).
func DefaultWriteConfig() WriteConfig {
	return WriteConfig{Tolerance: 0.02, MaxPulses: 50, PulseEnergyPJ: 10}
}

// Validate rejects non-physical write configs.
func (c WriteConfig) Validate() error {
	if c.Tolerance <= 0 || c.MaxPulses < 1 || c.PulseEnergyPJ <= 0 {
		return fmt.Errorf("rram: invalid write config %+v", c)
	}
	return nil
}

// WriteStats reports one programming pass.
type WriteStats struct {
	Cells       int64
	TotalPulses int64
	// FailedCells never verified within MaxPulses.
	FailedCells int64
	// EnergyPJ is TotalPulses · PulseEnergyPJ.
	EnergyPJ float64
	// MaxRelError is the worst relative conductance error among
	// verified cells.
	MaxRelError float64
}

// MeanPulses returns the average pulses per cell.
func (s WriteStats) MeanPulses() float64 {
	if s.Cells == 0 {
		return 0
	}
	return float64(s.TotalPulses) / float64(s.Cells)
}

// ExpectedPulses returns the closed-form mean program-and-verify pulse
// count per cell: a pulse verifies when its lognormal conductance
// error stays within tolerance, so with per-pulse acceptance
// probability p = Φ(ln(1+tol)/σ) − Φ(ln(1−tol)/σ) the attempt count is
// geometric with mean 1/p (capped by MaxPulses). Ideal devices need
// exactly one pulse.
func ExpectedPulses(m DeviceModel, cfg WriteConfig) float64 {
	if m.ProgramSigma == 0 {
		return 1
	}
	phi := func(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }
	p := phi(math.Log(1+cfg.Tolerance)/m.ProgramSigma) - phi(math.Log(1-cfg.Tolerance)/m.ProgramSigma)
	if p <= 0 {
		return float64(cfg.MaxPulses)
	}
	mean := 1 / p
	if mean > float64(cfg.MaxPulses) {
		return float64(cfg.MaxPulses)
	}
	return mean
}

// DeploymentEnergyPJ estimates the one-time cost of programming
// `cells` devices under the model and write config — the counterpart
// to the per-picture energy of Table 5 that the paper's metric
// excludes. The break-even picture count is this divided by the
// per-picture saving.
func DeploymentEnergyPJ(cells int64, m DeviceModel, cfg WriteConfig) float64 {
	return float64(cells) * ExpectedPulses(m, cfg) * cfg.PulseEnergyPJ
}

// ProgramVerify writes normalized weights in [0,1] with iterative
// program-and-verify: pulses repeat until the read-back conductance is
// within cfg.Tolerance of the target level. Against plain Program this
// trades write energy for tighter effective precision.
func (c *Crossbar) ProgramVerify(target *tensor.Tensor, cfg WriteConfig, rng *rand.Rand) (WriteStats, error) {
	if err := cfg.Validate(); err != nil {
		return WriteStats{}, err
	}
	s := target.Shape()
	if len(s) != 2 || s[0] != c.Rows || s[1] != c.Cols {
		return WriteStats{}, fmt.Errorf("rram: ProgramVerify target shape %v, want [%d %d]", s, c.Rows, c.Cols)
	}
	stats := WriteStats{Cells: int64(c.Rows * c.Cols)}
	for j := 0; j < c.Rows; j++ {
		for k := 0; k < c.Cols; k++ {
			lvl := c.Model.QuantizeToLevel(target.At(j, k))
			nominal := c.Model.LevelConductance(lvl)
			c.levels[j*c.Cols+k] = lvl
			verified := false
			var g float64
			for p := 0; p < cfg.MaxPulses; p++ {
				stats.TotalPulses++
				g = c.Model.ProgramConductance(lvl, rng)
				if rel := math.Abs(g-nominal) / nominal; rel <= cfg.Tolerance {
					verified = true
					if rel > stats.MaxRelError {
						stats.MaxRelError = rel
					}
					break
				}
			}
			if !verified {
				stats.FailedCells++
			}
			c.g.Set(g, j, k)
		}
	}
	stats.EnergyPJ = float64(stats.TotalPulses) * cfg.PulseEnergyPJ
	return stats, nil
}
