package power

import (
	"strings"
	"testing"
)

func TestBarWidthAndComposition(t *testing.T) {
	b := Breakdown{DAC: 25, ADC: 50, RRAM: 0, Digital: 25}
	bar := Bar(b, 40)
	if len(bar) != 40 {
		t.Fatalf("bar length %d, want 40", len(bar))
	}
	if n := strings.Count(bar, "A"); n < 18 || n > 22 {
		t.Fatalf("ADC segment %d cells of 40, want ≈20: %q", n, bar)
	}
	if n := strings.Count(bar, "D"); n < 8 || n > 12 {
		t.Fatalf("DAC segment %d cells, want ≈10: %q", n, bar)
	}
	if strings.Contains(bar, "R") {
		t.Fatalf("zero RRAM rendered: %q", bar)
	}
}

func TestBarZeroTotal(t *testing.T) {
	bar := Bar(Breakdown{}, 10)
	if bar != ".........." {
		t.Fatalf("zero bar %q", bar)
	}
}

func TestBarMinWidth(t *testing.T) {
	if len(Bar(Breakdown{ADC: 1}, 1)) != 4 {
		t.Fatal("minimum width not enforced")
	}
}

func TestBarDominantComponent(t *testing.T) {
	b := Breakdown{ADC: 99, Buffer: 1}
	bar := Bar(b, 50)
	if n := strings.Count(bar, "A"); n < 48 {
		t.Fatalf("dominant ADC only %d/50 cells: %q", n, bar)
	}
	if !strings.Contains(bar, "o") {
		t.Fatalf("1%% other invisible despite rounding rule: %q", bar)
	}
}
