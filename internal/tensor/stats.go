package tensor

import (
	"fmt"
	"math"
	"sort"
)

// Histogram counts how many elements of t fall in each half-open bin
// [edges[i], edges[i+1]); the final bin is closed on the right so the
// maximum value is counted. edges must be strictly increasing and have
// at least two entries. Values outside [edges[0], edges[last]] are
// ignored.
func (t *Tensor) Histogram(edges []float64) []int {
	if len(edges) < 2 {
		panic("tensor: Histogram needs at least two bin edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic(fmt.Sprintf("tensor: Histogram edges not strictly increasing: %v", edges))
		}
	}
	counts := make([]int, len(edges)-1)
	for _, v := range t.data {
		if v < edges[0] || v > edges[len(edges)-1] {
			continue
		}
		// sort.SearchFloat64s finds the first edge >= v.
		i := sort.SearchFloat64s(edges, v)
		switch {
		case i == 0:
			counts[0]++ // v == edges[0]
		case v == edges[i] && i == len(edges)-1:
			counts[i-1]++ // maximum value, closed last bin
		case v == edges[i]:
			counts[i]++ // on an interior edge: belongs to the right bin
		default:
			counts[i-1]++
		}
	}
	return counts
}

// Variance returns the population variance of all elements.
func (t *Tensor) Variance() float64 {
	mean := t.Mean()
	s := 0.0
	for _, v := range t.data {
		d := v - mean
		s += d * d
	}
	return s / float64(len(t.data))
}

// Std returns the population standard deviation of all elements.
func (t *Tensor) Std() float64 { return math.Sqrt(t.Variance()) }

// FractionAbove returns the fraction of elements strictly greater
// than x.
func (t *Tensor) FractionAbove(x float64) float64 {
	n := 0
	for _, v := range t.data {
		if v > x {
			n++
		}
	}
	return float64(n) / float64(len(t.data))
}

// L2Distance returns the Euclidean distance between two equally shaped
// tensors.
func L2Distance(a, b *Tensor) float64 {
	a.requireSameShape(b)
	s := 0.0
	for i := range a.data {
		d := a.data[i] - b.data[i]
		s += d * d
	}
	return math.Sqrt(s)
}
