package experiments

import (
	"fmt"
	"io"

	"sei/internal/arch"
	"sei/internal/power"
	"sei/internal/seicore"
)

// Figure1Row is one bar of Fig. 1: a layer's power or area split into
// the paper's four segments (DAC / ADC / RRAM / Other), as fractions
// of the layer total.
type Figure1Row struct {
	Layer string
	DAC   float64
	ADC   float64
	RRAM  float64
	Other float64
}

// Figure1Result reproduces Fig. 1: per-layer and total power and area
// consumption breakdowns of the 4-layer Network 1 with 8-bit data on
// the traditional DAC+ADC structure.
type Figure1Result struct {
	NetworkID int
	Power     []Figure1Row // Conv 1, Conv 2, FC, Total
	Area      []Figure1Row
	// InterfacePowerFraction and InterfaceAreaFraction back the paper's
	// ">98% of the area and power" claim.
	InterfacePowerFraction float64
	InterfaceAreaFraction  float64
	// InputDACFraction is the input layer's DAC share of total energy
	// (Section 3.2: ≈3%).
	InputDACFraction float64
	TotalEnergyUJ    float64
	TotalAreaMM2     float64
}

// Figure1 runs the Fig.-1 analysis on Network 1 (or another Table-2
// network) with the default component library.
func Figure1(c *Context, networkID int) (*Figure1Result, error) {
	q := c.Quantized(networkID) // geometry only; thresholds irrelevant here
	geoms, err := arch.GeometryOf(q)
	if err != nil {
		return nil, err
	}
	m, err := arch.Map(geoms, arch.DefaultConfig(seicore.StructDACADC))
	if err != nil {
		return nil, err
	}
	lib := power.DefaultLibrary()
	perE, totalE := m.Energy(lib)
	perA, totalA := m.Area(lib)

	res := &Figure1Result{
		NetworkID:              networkID,
		InterfacePowerFraction: totalE.InterfaceFraction(),
		InterfaceAreaFraction:  totalA.InterfaceFraction(),
		TotalEnergyUJ:          power.MicroJoules(totalE),
		TotalAreaMM2:           power.SquareMM(totalA),
	}
	if totalE.Total() > 0 {
		res.InputDACFraction = perE[0].DAC / totalE.Total()
	}
	row := func(name string, b power.Breakdown) Figure1Row {
		t := b.Total()
		if t == 0 {
			return Figure1Row{Layer: name}
		}
		return Figure1Row{
			Layer: name,
			DAC:   b.DAC / t,
			ADC:   b.ADC / t,
			RRAM:  b.RRAM / t,
			Other: b.Other() / t,
		}
	}
	for i, g := range geoms {
		res.Power = append(res.Power, row(g.Name, perE[i]))
		res.Area = append(res.Area, row(g.Name, perA[i]))
	}
	res.Power = append(res.Power, row("Total", totalE))
	res.Area = append(res.Area, row("Total", totalA))
	return res, nil
}

// Print renders the result in the layout of Fig. 1.
func (r *Figure1Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 1: power and area breakdown, Network %d, 8-bit data, DAC+ADC structure\n", r.NetworkID)
	fmt.Fprintf(w, "  total energy %.2f uJ/picture, total area %.3f mm^2\n", r.TotalEnergyUJ, r.TotalAreaMM2)
	print := func(kind string, rows []Figure1Row) {
		fmt.Fprintf(w, "  %s breakdown:\n    %-8s %7s %7s %7s %7s   %s\n", kind, "layer", "DAC", "ADC", "RRAM", "Other", "D=DAC A=ADC R=RRAM o=other")
		for _, row := range rows {
			bar := power.Bar(power.Breakdown{DAC: row.DAC, ADC: row.ADC, RRAM: row.RRAM, Digital: row.Other}, 32)
			fmt.Fprintf(w, "    %-8s %6.1f%% %6.1f%% %6.2f%% %6.2f%%   |%s|\n",
				row.Layer, 100*row.DAC, 100*row.ADC, 100*row.RRAM, 100*row.Other, bar)
		}
	}
	print("power", r.Power)
	print("area", r.Area)
	fmt.Fprintf(w, "  interfaces: %.1f%% of power, %.1f%% of area (paper: >98%%)\n",
		100*r.InterfacePowerFraction, 100*r.InterfaceAreaFraction)
	fmt.Fprintf(w, "  input-layer DACs: %.1f%% of energy (paper Sec 3.2: ~3%%)\n", 100*r.InputDACFraction)
}
