package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the exporter golden files")

// goldenRecorder builds one fixed instrumentation state under the test
// clock, so every exporter's output is byte-stable.
func goldenRecorder() *Recorder {
	r := New()
	withTestClock(r)
	sp := r.StartSpan("train") // t+1
	sp.AddSamples(300)
	sp.End()                       // t+2
	sp = r.StartSpan("evaluate")   // t+3
	inner := r.StartSpan("table5") // t+4
	inner.AddSamples(600)
	inner.End() // t+5
	sp.End()    // t+6
	r.Counter("eval_images").Add(600)
	r.Counter("hw_mvm_ops").Add(1234)
	r.Gauge("workers").Set(8)
	h := r.Histogram("hw_active_inputs_per_mvm", []float64{0, 1, 2, 4})
	h.Observe(0)
	h.Observe(2)
	h.Observe(2)
	h.Observe(7)
	r.Skip("SEI@64", "crossbar too small")
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteJSON(&buf, "golden"); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.json", buf.Bytes())
}

func TestWriteTextGolden(t *testing.T) {
	var buf bytes.Buffer
	goldenRecorder().WriteText(&buf)
	checkGolden(t, "report.txt", buf.Bytes())
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	goldenRecorder().WritePrometheus(&buf)
	checkGolden(t, "metrics.prom", buf.Bytes())
}

// The report must be identical however the same logical events were
// interleaved — the exporter-level face of the determinism contract.
func TestReportIgnoresEventOrder(t *testing.T) {
	a := goldenRecorder().Report("x")
	b := goldenRecorder().Report("x")
	var ab, bb bytes.Buffer
	if err := goldenRecorder().WriteJSON(&ab, "x"); err != nil {
		t.Fatal(err)
	}
	if err := goldenRecorder().WriteJSON(&bb, "x"); err != nil {
		t.Fatal(err)
	}
	if ab.String() != bb.String() {
		t.Error("two identical recorders serialized differently")
	}
	if a.Counters["hw_mvm_ops"] != b.Counters["hw_mvm_ops"] {
		t.Error("counter snapshots differ")
	}
}
