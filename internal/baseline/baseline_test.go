package baseline

import "testing"

func TestFPGAEfficiency(t *testing.T) {
	// 61.62 / 18.61 ≈ 3.31 GOPs/J — the number behind the paper's "two
	// orders of magnitude" claim.
	eff := FPGA().EfficiencyGOPsPerJ()
	if eff < 3.2 || eff > 3.4 {
		t.Fatalf("FPGA efficiency %.3f, want ≈3.31", eff)
	}
}

func TestGPUEfficiency(t *testing.T) {
	eff := GPU().EfficiencyGOPsPerJ()
	if eff < 15 || eff > 25 {
		t.Fatalf("GPU efficiency %.3f, want ≈18", eff)
	}
}

func TestZeroPower(t *testing.T) {
	p := Platform{ThroughputGOPs: 1}
	if p.EfficiencyGOPsPerJ() != 0 {
		t.Fatal("zero-power platform should report 0 efficiency")
	}
}

func TestAll(t *testing.T) {
	all := All()
	if len(all) != 2 {
		t.Fatalf("got %d platforms", len(all))
	}
	for _, p := range all {
		if p.Name == "" || p.Source == "" || p.EfficiencyGOPsPerJ() <= 0 {
			t.Fatalf("platform %+v incomplete", p)
		}
	}
}
