package arch

import (
	"testing"

	"sei/internal/power"
	"sei/internal/seicore"
)

func TestLineBufferValuesConv(t *testing.T) {
	// Network 1 conv2: 12 input channels, 12×12 input, 5×5 kernel, 8×8
	// output, pool 2. Line buffers: 12·12·5 input values + 64·8·2
	// output values.
	geoms := netGeometry(t, 1)
	g := geoms[1]
	if g.InC != 12 || g.InW != 12 || g.KH != 5 || g.PoolSize != 2 || g.OutW != 8 {
		t.Fatalf("conv2 streaming geometry wrong: %+v", g)
	}
	want := 12*12*5 + 64*8*2
	if got := g.LineBufferValues(); got != want {
		t.Fatalf("LineBufferValues = %d, want %d", got, want)
	}
	// Far below the whole feature map.
	if g.LineBufferValues() >= g.OutValues+g.UniqueInputs {
		t.Fatal("line buffers not smaller than whole maps")
	}
}

func TestLineBufferValuesFC(t *testing.T) {
	geoms := netGeometry(t, 1)
	fc := geoms[2]
	if got := fc.LineBufferValues(); got != 1024+10 {
		t.Fatalf("FC LineBufferValues = %d, want 1034", got)
	}
}

func TestLineBuffersShrinkAreaNotEnergy(t *testing.T) {
	geoms := netGeometry(t, 1)
	lib := power.DefaultLibrary()

	plain := DefaultConfig(seicore.StructDACADC)
	lb := plain
	lb.LineBuffers = true
	mPlain, err := Map(geoms, plain)
	if err != nil {
		t.Fatal(err)
	}
	mLB, err := Map(geoms, lb)
	if err != nil {
		t.Fatal(err)
	}
	// Energy identical: access counts don't change.
	_, ePlain := mPlain.Energy(lib)
	_, eLB := mLB.Energy(lib)
	if ePlain.Total() != eLB.Total() {
		t.Fatalf("line buffers changed energy: %v vs %v", eLB.Total(), ePlain.Total())
	}
	// Buffer area strictly shrinks.
	_, aPlain := mPlain.Area(lib)
	_, aLB := mLB.Area(lib)
	if aLB.Buffer >= aPlain.Buffer {
		t.Fatalf("line-buffer area %v not below whole-map %v", aLB.Buffer, aPlain.Buffer)
	}
	if aLB.Total() >= aPlain.Total() {
		t.Fatal("total area did not shrink")
	}
}

func TestLineBuffersWorkForSEI(t *testing.T) {
	geoms := netGeometry(t, 2)
	cfg := DefaultConfig(seicore.StructSEI)
	cfg.LineBuffers = true
	m, err := Map(geoms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalInventory().BufferBytes <= 0 {
		t.Fatal("no buffer capacity accounted")
	}
	plain, _ := Map(geoms, DefaultConfig(seicore.StructSEI))
	if m.TotalInventory().BufferBytes >= plain.TotalInventory().BufferBytes {
		t.Fatal("SEI line buffers not smaller than whole maps")
	}
}
