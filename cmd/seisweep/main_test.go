package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseFlagsDefaults(t *testing.T) {
	var buf bytes.Buffer
	opt, err := parseFlags(nil, &buf)
	if err != nil {
		t.Fatalf("parseFlags: %v", err)
	}
	if opt.netID != 2 || opt.workers != 0 || opt.accuracy {
		t.Errorf("defaults = %+v", opt)
	}
	if got, want := opt.sizes, []int{512, 256, 128}; len(got) != 3 || got[0] != want[0] || got[2] != want[2] {
		t.Errorf("sizes = %v, want %v", got, want)
	}
	if len(opt.sigmas) != 1 || opt.sigmas[0] != 0.02 {
		t.Errorf("sigmas = %v, want [0.02]", opt.sigmas)
	}
	if opt.obs.Enabled() {
		t.Error("observability enabled by default")
	}
}

func TestParseFlagsObservability(t *testing.T) {
	var buf bytes.Buffer
	opt, err := parseFlags([]string{"-metrics", "-", "-trace", "-accuracy"}, &buf)
	if err != nil {
		t.Fatalf("parseFlags: %v", err)
	}
	if opt.obs.Metrics != "-" || !opt.obs.Trace || !opt.accuracy {
		t.Errorf("flags = %+v obs = %+v", opt, opt.obs)
	}
}

// TestParseFlagsWorkersValidation pins the unified -workers error both
// CLIs share (see cmd/seisim for its twin).
func TestParseFlagsWorkersValidation(t *testing.T) {
	var buf bytes.Buffer
	_, err := parseFlags([]string{"-workers", "-2"}, &buf)
	if err == nil {
		t.Fatal("parseFlags accepted -workers -2")
	}
	want := "invalid -workers -2: must be 0 (all cores), 1 (serial), or a positive worker count"
	if err.Error() != want {
		t.Errorf("error = %q, want %q", err.Error(), want)
	}
}

func TestParseFlagsBadLists(t *testing.T) {
	var buf bytes.Buffer
	if _, err := parseFlags([]string{"-bits", "4,x"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "bad int") {
		t.Errorf("bits error = %v, want bad int", err)
	}
	if _, err := parseFlags([]string{"-sigmas", "0.02,?"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "bad float") {
		t.Errorf("sigmas error = %v, want bad float", err)
	}
}
