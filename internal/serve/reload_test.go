package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/quant"
	"sei/internal/seicore"
	"sei/internal/tensor"
)

// diskDesign is what a snapshot file round-trips to: a classifier that
// can also save itself.
type diskDesign interface {
	nn.Classifier
	SaveFile(string) error
}

// buildDiskDesign trains and builds one small real SEI design,
// deterministic in (dataSeed, buildSeed).
func buildDiskDesign(t *testing.T, dataSeed, buildSeed int64) diskDesign {
	t.Helper()
	train, _ := mnist.SyntheticSplit(300, 30, dataSeed)
	net := nn.NewTableNetwork(1, 3)
	tcfg := nn.DefaultTrainConfig()
	tcfg.Epochs = 1
	nn.Train(net, train, tcfg)
	qcfg := quant.DefaultSearchConfig()
	qcfg.Samples = 120
	q, _, err := quant.QuantizeNetwork(net, train, []int{1, 28, 28}, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := seicore.DefaultSEIBuildConfig()
	bcfg.DynamicThreshold = false
	design, err := seicore.BuildSEI(q, nil, bcfg, rand.New(rand.NewSource(buildSeed)))
	if err != nil {
		t.Fatal(err)
	}
	return design
}

// doPredictGen is doPredict with a ?generation= pin (0 = unpinned).
func doPredictGen(url, design string, gen int, imgs []*tensor.Tensor) (int, predictResponse, error) {
	req := predictRequest{Design: design}
	for _, img := range imgs {
		req.Images = append(req.Images, img.Data())
	}
	body, err := json.Marshal(req)
	if err != nil {
		return 0, predictResponse{}, err
	}
	target := url + "/v1/predict"
	if gen > 0 {
		target += fmt.Sprintf("?generation=%d", gen)
	}
	resp, err := http.Post(target, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, predictResponse{}, err
	}
	defer resp.Body.Close()
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return resp.StatusCode, predictResponse{}, fmt.Errorf("decoding response (status %d): %w", resp.StatusCode, err)
	}
	return resp.StatusCode, pr, nil
}

// checkGenLabels asserts one response is wholly the given offline
// design's labels — the bit-identity acceptance criterion per
// generation.
func checkGenLabels(t *testing.T, pr predictResponse, wantGen int, offline nn.Classifier, imgs []*tensor.Tensor) {
	t.Helper()
	if wantGen > 0 && pr.Generation != wantGen {
		t.Fatalf("response generation = %d, want %d", pr.Generation, wantGen)
	}
	if len(pr.Results) != len(imgs) {
		t.Fatalf("%d results for %d images", len(pr.Results), len(imgs))
	}
	for i, r := range pr.Results {
		if r.Error != "" {
			t.Fatalf("image %d: %s", i, r.Error)
		}
		if want := offline.Predict(imgs[i]); r.Label != want {
			t.Fatalf("generation %d image %d: served %d, offline design predicts %d",
				pr.Generation, i, r.Label, want)
		}
	}
}

// TestServeLiveReloadBitIdentityPerGeneration is the live-reload
// acceptance test: overwrite a design's snapshot on disk, publish it
// through POST /v1/admin/reload as a 50% canary, and require every
// served response to be bit-identical to exactly one generation's
// offline EvaluateDesign path — pinned requests address each
// generation, unpinned traffic splits deterministically, and promotion
// retires the old generation atomically.
func TestServeLiveReloadBitIdentityPerGeneration(t *testing.T) {
	designA := buildDiskDesign(t, 5, 9)
	designB := buildDiskDesign(t, 11, 23)
	_, test := mnist.SyntheticSplit(300, 30, 5)
	imgs := test.Images[:8]

	dir := t.TempDir()
	path := filepath.Join(dir, "net"+DesignExt)
	if err := designA.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(dir, 1)
	ts, _ := newTestServer(t, reg,
		BatcherConfig{MaxBatch: 16, MaxDelay: time.Millisecond, Workers: 2},
		Options{})

	// Generation 1, loaded cold from disk.
	status, pr, err := doPredictGen(ts.URL, "net", 0, imgs)
	if err != nil || status != http.StatusOK {
		t.Fatalf("initial predict: status %d err %v", status, err)
	}
	checkGenLabels(t, pr, 1, designA, imgs)

	// Overwrite the snapshot and reload it as a 50% canary.
	if err := designB.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/admin/reload?design=net&canary=0.5", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr reloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rr.Generation != 2 || rr.Canary != 0.5 {
		t.Fatalf("reload: status %d response %+v, want 200/generation 2/canary 0.5", resp.StatusCode, rr)
	}

	// Pinned requests address each generation and stay bit-identical to
	// that generation's design — the old generation still serves even
	// though its bytes on disk were overwritten.
	for _, tc := range []struct {
		gen     int
		offline nn.Classifier
	}{{1, designA}, {2, designB}} {
		status, pr, err := doPredictGen(ts.URL, "net", tc.gen, imgs)
		if err != nil || status != http.StatusOK {
			t.Fatalf("pinned gen %d: status %d err %v", tc.gen, status, err)
		}
		checkGenLabels(t, pr, tc.gen, tc.offline, imgs)
	}

	// Unpinned traffic splits deterministically: with weight 0.5 and a
	// fresh counter, every 2nd request routes to generation 2 — and
	// each response is wholly one generation, never a blend.
	gens := map[int]int{}
	for i := 0; i < 20; i++ {
		status, pr, err := doPredictGen(ts.URL, "net", 0, imgs)
		if err != nil || status != http.StatusOK {
			t.Fatalf("unpinned %d: status %d err %v", i, status, err)
		}
		switch pr.Generation {
		case 1:
			checkGenLabels(t, pr, 1, designA, imgs)
		case 2:
			checkGenLabels(t, pr, 2, designB, imgs)
		default:
			t.Fatalf("unpinned %d: generation %d", i, pr.Generation)
		}
		gens[pr.Generation]++
	}
	if gens[1] != 10 || gens[2] != 10 {
		t.Fatalf("canary 0.5 split = %v over 20 requests, want exactly 10/10", gens)
	}

	// Promote through the admin surface: generation 1 retires.
	resp, err = http.Post(ts.URL+"/v1/admin/canary?design=net&weight=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
	status, pr, err = doPredictGen(ts.URL, "net", 0, imgs)
	if err != nil || status != http.StatusOK {
		t.Fatalf("post-promote predict: status %d err %v", status, err)
	}
	checkGenLabels(t, pr, 2, designB, imgs)
	if status, _, _ := doPredictGen(ts.URL, "net", 1, imgs); status != http.StatusNotFound {
		t.Fatalf("retired generation pin: status %d, want 404", status)
	}

	// /v1/designs reports the live generation set.
	dresp, err := http.Get(ts.URL + "/v1/designs")
	if err != nil {
		t.Fatal(err)
	}
	var dl struct {
		Live []designInfo `json:"live"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&dl); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if len(dl.Live) != 1 || dl.Live[0].Name != "net" ||
		len(dl.Live[0].Generations) != 1 || dl.Live[0].Generations[0] != 2 {
		t.Fatalf("/v1/designs live = %+v, want net with generations [2]", dl.Live)
	}

	// Admin error surface: canary on a single-generation design is a
	// 409, reload of a never-seen name a 404.
	resp, err = http.Post(ts.URL+"/v1/admin/canary?design=net&weight=0.5", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("canary without canary: status %d, want 409", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/admin/reload?design=ghost", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("reload unknown design: status %d, want 404", resp.StatusCode)
	}

	// Unregister retires the design and its queue; the name stays
	// resolvable from disk (designB's file) as a fresh generation 1.
	resp, err = http.Post(ts.URL+"/v1/admin/unregister?design=net", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unregister: status %d", resp.StatusCode)
	}
	status, pr, err = doPredictGen(ts.URL, "net", 0, imgs)
	if err != nil || status != http.StatusOK {
		t.Fatalf("post-unregister predict: status %d err %v", status, err)
	}
	checkGenLabels(t, pr, 1, designB, imgs)
}
