package homog

import (
	"fmt"
	"math"
	"math/rand"

	"sei/internal/tensor"
)

// SAConfig controls the simulated-annealing alternative to the GA.
// The paper uses a genetic algorithm; annealing over the same
// swap-move neighbourhood is the natural ablation (see
// BenchmarkAblationHomogMethod) and tends to match the GA at lower
// cost on large matrices because every step is an incremental
// two-block update.
type SAConfig struct {
	Iterations int
	// StartTemp and EndTemp bound the geometric cooling schedule, in
	// units of the distance objective.
	StartTemp, EndTemp float64
	Seed               int64
}

// DefaultSAConfig anneals for a few tens of thousands of swap moves.
func DefaultSAConfig() SAConfig {
	return SAConfig{Iterations: 20000, StartTemp: 0.05, EndTemp: 1e-5, Seed: 1}
}

// Anneal minimizes the Equ.-10 distance by simulated annealing on row
// swaps, starting from the greedy serpentine order.
func Anneal(w *tensor.Tensor, k int, cfg SAConfig) (Result, error) {
	if w.Dims() != 2 {
		return Result{}, fmt.Errorf("homog: matrix must be 2-D, got %v", w.Shape())
	}
	n := w.Dim(0)
	if k < 1 || k > n {
		return Result{}, fmt.Errorf("homog: cannot split %d rows into %d blocks", n, k)
	}
	if cfg.Iterations < 1 || cfg.StartTemp <= 0 || cfg.EndTemp <= 0 || cfg.EndTemp > cfg.StartTemp {
		return Result{}, fmt.Errorf("homog: invalid SA config %+v", cfg)
	}
	naturalDist := Distance(w, NaturalOrder(n), k)
	if k == 1 {
		return Result{Order: NaturalOrder(n), Distance: 0, NaturalDistance: 0}, nil
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	order := GreedySerpentine(w, k)
	dist := Distance(w, order, k)
	best := append([]int(nil), order...)
	bestDist := dist

	cool := math.Pow(cfg.EndTemp/cfg.StartTemp, 1/float64(cfg.Iterations))
	temp := cfg.StartTemp
	for it := 0; it < cfg.Iterations; it++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			temp *= cool
			continue
		}
		order[i], order[j] = order[j], order[i]
		cand := Distance(w, order, k)
		delta := cand - dist
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			dist = cand
			if dist < bestDist {
				bestDist = dist
				copy(best, order)
			}
		} else {
			order[i], order[j] = order[j], order[i] // reject
		}
		temp *= cool
	}
	return Result{Order: best, Distance: bestDist, NaturalDistance: naturalDist}, nil
}

// NaturalOrder re-exports the split convention's identity order so
// homog callers need not import seicore for it.
func NaturalOrder(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = i
	}
	return o
}
