package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/par"
	"sei/internal/tensor"
)

// Typed rejection errors. Handlers map them onto HTTP status codes
// (429 and 503); match with errors.Is.
var (
	// ErrQueueFull is backpressure: the bounded queue is at capacity
	// and the predict was rejected rather than buffered unboundedly.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrDraining marks predicts submitted after Close began.
	ErrDraining = errors.New("serve: draining")
)

// Metric names the batcher feeds (scraped through /metrics). The
// engine-level eval_images / predict_panics counters from internal/nn
// appear alongside these when the same Recorder is shared.
const (
	MetricBatches   = "serve_batches"
	MetricPredicts  = "serve_predicts"
	MetricQueueFull = "serve_queue_full"
	MetricCanceled  = "serve_canceled"
	MetricBatchSize = "serve_batch_size"
)

var batchSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// BatcherConfig sizes the micro-batcher.
type BatcherConfig struct {
	// MaxBatch is the most images coalesced into one engine call.
	MaxBatch int
	// MaxDelay bounds how long the first predict of a batch waits for
	// company; latency cost of coalescing is at most this.
	MaxDelay time.Duration
	// QueueCap bounds the pending-predict queue. A full queue rejects
	// with ErrQueueFull instead of buffering without limit.
	QueueCap int
	// Workers bounds the parallel engine per flush (0 = all cores,
	// 1 = serial); labels are identical for any value.
	Workers int
	// Obs receives batcher and engine counters; nil disables recording.
	Obs *obs.Recorder
}

// DefaultBatcherConfig returns serving defaults: batches of up to 64,
// 2 ms of coalescing patience, a 256-deep queue, all cores.
func DefaultBatcherConfig() BatcherConfig {
	return BatcherConfig{MaxBatch: 64, MaxDelay: 2 * time.Millisecond, QueueCap: 256}
}

// job is one image's passage through the batcher. res is buffered so
// a flush never blocks on a caller that stopped listening.
type job struct {
	c   nn.Classifier
	img *tensor.Tensor
	ctx context.Context
	res chan nn.PredictResult
}

// Batcher coalesces concurrent predicts into bounded batches and runs
// each batch on the deterministic parallel engine. Because the engine
// validates, chunks and seeds a served batch exactly as the offline
// evaluation path does, serving returns bit-identical labels to
// EvaluateDesign for any batch composition and worker count.
//
// Classifiers submitted to one batch are grouped by identity, so they
// must be comparable (the pipeline's classifiers are all pointers).
type Batcher struct {
	cfg   BatcherConfig
	queue chan *job
	done  chan struct{}

	// scr holds the coalescing loop's flush scratch — batch, group,
	// image and result buffers reused across flushes so steady-state
	// serving does not allocate per batch. Touched only by the loop
	// goroutine; pointer slots are cleared after every flush so a
	// drained batch's jobs and images are not retained.
	scr flushScratch

	mu     sync.Mutex
	closed bool
}

// group is one classifier's share of a batch.
type group struct {
	c    nn.Classifier
	jobs []*job
}

// flushScratch is the loop's reusable flush state.
type flushScratch struct {
	batch  []*job
	groups []group
	imgs   []*tensor.Tensor
	res    []nn.PredictResult
}

// NewBatcher validates the config, applies defaults for zero fields
// and starts the coalescing loop.
func NewBatcher(cfg BatcherConfig) (*Batcher, error) {
	if err := par.Validate(cfg.Workers); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	def := DefaultBatcherConfig()
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = def.MaxBatch
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = def.MaxDelay
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = def.QueueCap
	}
	b := &Batcher{
		cfg:   cfg,
		queue: make(chan *job, cfg.QueueCap),
		done:  make(chan struct{}),
	}
	go b.loop()
	return b, nil
}

// QueueDepth reports how many predicts are waiting (for health
// reporting; inherently racy).
func (b *Batcher) QueueDepth() int { return len(b.queue) }

// Draining reports whether Close has begun.
func (b *Batcher) Draining() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// Close stops accepting predicts, drains everything already queued
// and waits for the loop to finish. Safe to call more than once.
func (b *Batcher) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.queue)
	}
	b.mu.Unlock()
	<-b.done
}

// submit enqueues one job without blocking. The mutex serializes the
// send against Close so a drain can never race a send on the closed
// channel.
func (b *Batcher) submit(j *job) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrDraining
	}
	select {
	case b.queue <- j:
		return nil
	default:
		b.cfg.Obs.Counter(MetricQueueFull).Add(1)
		return ErrQueueFull
	}
}

// Predict classifies imgs against c through the batcher, returning one
// result per image in order. The whole request is rejected with
// ErrQueueFull / ErrDraining when it cannot be queued, and abandons
// with ctx.Err() when the context ends first; queued-but-unprocessed
// images of an abandoned request are skipped at flush time.
func (b *Batcher) Predict(ctx context.Context, c nn.Classifier, imgs []*tensor.Tensor) ([]nn.PredictResult, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make([]*job, len(imgs))
	for i, img := range imgs {
		j := &job{c: c, img: img, ctx: ctx, res: make(chan nn.PredictResult, 1)}
		if err := b.submit(j); err != nil {
			return nil, err
		}
		jobs[i] = j
	}
	out := make([]nn.PredictResult, len(jobs))
	for i, j := range jobs {
		select {
		case r := <-j.res:
			out[i] = r
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// loop gathers jobs into batches: the first job of a batch waits at
// most MaxDelay for up to MaxBatch-1 companions, then the batch
// flushes. Exits when the queue is closed and drained.
func (b *Batcher) loop() {
	defer close(b.done)
	for j := range b.queue {
		batch := append(b.scr.batch[:0], j)
		timer := time.NewTimer(b.cfg.MaxDelay)
	gather:
		for len(batch) < b.cfg.MaxBatch {
			select {
			case next, ok := <-b.queue:
				if !ok {
					break gather
				}
				batch = append(batch, next)
			case <-timer.C:
				break gather
			}
		}
		timer.Stop()
		b.scr.batch = batch
		b.flush(batch)
		b.scr.clear()
	}
}

// flush groups a batch by classifier and runs each group through the
// engine. Per-image panics are already contained inside the engine
// (nn.PredictBatchObs); the recover here is the last line of defense
// keeping the loop alive if the batcher's own bookkeeping fails.
func (b *Batcher) flush(batch []*job) {
	defer func() {
		if r := recover(); r != nil {
			for _, j := range batch {
				select {
				case j.res <- nn.PredictResult{Label: -1, Err: fmt.Errorf("%w: internal failure: %v", nn.ErrBadInput, r)}:
				default:
				}
			}
		}
	}()
	b.cfg.Obs.Counter(MetricBatches).Add(1)
	b.cfg.Obs.Histogram(MetricBatchSize, batchSizeBounds).Observe(float64(len(batch)))
	groups := b.scr.groups[:0]
next:
	for _, j := range batch {
		if j.ctx != nil && j.ctx.Err() != nil {
			b.cfg.Obs.Counter(MetricCanceled).Add(1)
			j.res <- nn.PredictResult{Label: -1, Err: j.ctx.Err()}
			continue
		}
		for gi := range groups {
			if groups[gi].c == j.c {
				groups[gi].jobs = append(groups[gi].jobs, j)
				continue next
			}
		}
		// Reuse the retired group slot's jobs buffer when one exists.
		if n := len(groups); n < cap(groups) {
			groups = groups[:n+1]
			groups[n].c = j.c
			groups[n].jobs = append(groups[n].jobs[:0], j)
		} else {
			groups = append(groups, group{c: j.c, jobs: []*job{j}})
		}
	}
	b.scr.groups = groups
	for gi := range groups {
		g := &groups[gi]
		imgs := b.scr.imgs[:0]
		for _, j := range g.jobs {
			imgs = append(imgs, j.img)
		}
		b.scr.imgs = imgs
		res := nn.PredictBatchInto(b.cfg.Obs, g.c, imgs, b.cfg.Workers, b.scr.res)
		b.scr.res = res
		b.cfg.Obs.Counter(MetricPredicts).Add(int64(len(res)))
		for i, j := range g.jobs {
			j.res <- res[i]
		}
	}
}

// clear drops every pointer the last flush parked in the scratch so
// finished jobs, their images and their errors become collectable; the
// backing arrays themselves are kept for the next flush.
func (s *flushScratch) clear() {
	for i := range s.batch {
		s.batch[i] = nil
	}
	s.batch = s.batch[:0]
	for gi := range s.groups {
		g := &s.groups[gi]
		g.c = nil
		for i := range g.jobs {
			g.jobs[i] = nil
		}
		g.jobs = g.jobs[:0]
	}
	s.groups = s.groups[:0]
	for i := range s.imgs {
		s.imgs[i] = nil
	}
	s.imgs = s.imgs[:0]
	for i := range s.res {
		s.res[i] = nn.PredictResult{}
	}
}
