package experiments

import (
	"fmt"
	"io"

	"sei/internal/arch"
	"sei/internal/power"
	"sei/internal/seicore"
)

// Section 2.3 motivates buffering with VGG-19: "there are totally
// 3×10⁷ pieces of intermediate data for processing single picture.
// Without any buffer, all the 10⁹ RRAM cells of all layers need to
// work simultaneously." This file reconstructs those numbers from the
// published VGG-19 configuration and extends the Table-5 cost model to
// that scale.

// vggConv describes one VGG-19 conv layer: input channels, filters,
// and the (square) input feature-map edge at that depth.
type vggConv struct {
	inC, outC, inHW int
}

// vgg19Convs is the standard VGG-19 stack (3×3 kernels, padding 1 —
// output spatial size equals input; pooling between groups halves it).
var vgg19Convs = []vggConv{
	{3, 64, 224}, {64, 64, 224},
	{64, 128, 112}, {128, 128, 112},
	{128, 256, 56}, {256, 256, 56}, {256, 256, 56}, {256, 256, 56},
	{256, 512, 28}, {512, 512, 28}, {512, 512, 28}, {512, 512, 28},
	{512, 512, 14}, {512, 512, 14}, {512, 512, 14}, {512, 512, 14},
}

// vgg19FCs is the classifier stack: 7·7·512 → 4096 → 4096 → 1000.
var vgg19FCs = [][2]int{{25088, 4096}, {4096, 4096}, {4096, 1000}}

// VGG19Geometry returns VGG-19 as mapper geometry. Same-padding
// convolutions keep Uses = inHW² evaluations per layer.
func VGG19Geometry() []arch.LayerGeom {
	var geoms []arch.LayerGeom
	for i, c := range vgg19Convs {
		geoms = append(geoms, arch.LayerGeom{
			Name:         fmt.Sprintf("conv%d", i+1),
			N:            c.inC * 9,
			M:            c.outC,
			Uses:         c.inHW * c.inHW,
			UniqueInputs: c.inC * c.inHW * c.inHW,
			OutValues:    c.outC * c.inHW * c.inHW,
			InC:          c.inC,
			InW:          c.inHW,
			KH:           3,
			PoolSize:     0,
			OutW:         c.inHW,
		})
	}
	for i, fc := range vgg19FCs {
		geoms = append(geoms, arch.LayerGeom{
			Name:         fmt.Sprintf("fc%d", i+1),
			N:            fc[0],
			M:            fc[1],
			Uses:         1,
			UniqueInputs: fc[0],
			OutValues:    fc[1],
			IsFC:         true,
		})
	}
	return geoms
}

// VGGResult collects the Section-2.3 motivation numbers.
type VGGResult struct {
	// IntermediateData is the total activation count per picture
	// (paper: ≈3×10⁷).
	IntermediateData int64
	// WeightCells is the RRAM cell count at 4 cells/weight
	// (paper: ≈10⁹).
	WeightCells int64
	// Ops per picture (2/MAC).
	Ops int64
	// Energy per picture under the two structures, and SEI's saving.
	BaseEnergyUJ, SEIEnergyUJ, Saving float64
	// SEI GOPs/J at VGG scale.
	GOPsPerJ float64
}

// VGGAnalysis reconstructs the paper's VGG-19 motivation numbers and
// runs the cost model at that scale. Conv layers wider than the
// crossbar column limit are evaluated per column group, which leaves
// the per-output counts unchanged, so the mapper's column guard is
// relaxed by splitting M.
func VGGAnalysis() (*VGGResult, error) {
	geoms := VGG19Geometry()
	res := &VGGResult{}
	for _, g := range geoms {
		if !g.IsFC {
			res.IntermediateData += int64(g.OutValues)
		}
		res.WeightCells += 4 * int64(g.N) * int64(g.M)
		res.Ops += g.Ops()
	}
	// Split wide layers into ≤511-column groups (one column reserved
	// for the SEI threshold column) so the mapper accepts them; the
	// total counts are unchanged because every count is linear in M.
	split := splitWide(geoms, 511)
	lib := power.DefaultLibrary()
	base, err := arch.Map(split, arch.DefaultConfig(seicore.StructDACADC))
	if err != nil {
		return nil, err
	}
	seiMap, err := arch.Map(split, arch.DefaultConfig(seicore.StructSEI))
	if err != nil {
		return nil, err
	}
	_, eBase := base.Energy(lib)
	_, eSEI := seiMap.Energy(lib)
	res.BaseEnergyUJ = power.MicroJoules(eBase)
	res.SEIEnergyUJ = power.MicroJoules(eSEI)
	res.Saving = 1 - eSEI.Total()/eBase.Total()
	res.GOPsPerJ = power.GOPsPerJoule(res.Ops, eSEI)
	return res, nil
}

// splitWide divides layers with more than maxCols outputs into column
// groups.
func splitWide(geoms []arch.LayerGeom, maxCols int) []arch.LayerGeom {
	var out []arch.LayerGeom
	for _, g := range geoms {
		if g.M <= maxCols {
			out = append(out, g)
			continue
		}
		groups := (g.M + maxCols - 1) / maxCols
		rem := g.M
		for b := 0; b < groups; b++ {
			cols := maxCols
			if cols > rem {
				cols = rem
			}
			gg := g
			gg.Name = fmt.Sprintf("%s.%d", g.Name, b)
			gg.M = cols
			gg.OutValues = g.OutValues / g.M * cols
			// Only the first group fetches/drives fresh inputs in the
			// DAC accounting? No — every group's rows are driven; the
			// mapper already counts DAC per row per use per layer, and
			// each column group has its own crossbars and row drivers.
			out = append(out, gg)
			rem -= cols
		}
	}
	return out
}

// PrintVGG renders the motivation numbers.
func PrintVGG(w io.Writer, r *VGGResult) {
	fmt.Fprintln(w, "VGG-19 motivation (paper Section 2.3)")
	fmt.Fprintf(w, "  intermediate data per picture: %.2e values (paper: ~3e7, which\n"+
		"    appears to count each value's write and read)\n", float64(r.IntermediateData))
	fmt.Fprintf(w, "  RRAM cells for all weights:    %.2e cells  (paper: ~1e9)\n", float64(r.WeightCells))
	fmt.Fprintf(w, "  operations per picture:        %.2e ops\n", float64(r.Ops))
	fmt.Fprintf(w, "  DAC+ADC energy: %.1f uJ/pic; SEI: %.1f uJ/pic (%.1f%% saving)\n",
		r.BaseEnergyUJ, r.SEIEnergyUJ, 100*r.Saving)
	fmt.Fprintf(w, "  SEI efficiency at VGG scale: %.0f GOPs/J\n", r.GOPsPerJ)
}
