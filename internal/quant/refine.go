package quant

import (
	"fmt"

	"sei/internal/mnist"
	"sei/internal/obs"
	"sei/internal/par"
)

// RefineConfig controls the coordinate-descent threshold refinement.
type RefineConfig struct {
	Rounds  int     // full sweeps over the layers
	Step    float64 // candidate spacing around the current threshold
	Radius  int     // candidates tried on each side of the current value
	Samples int     // training subsample (0 = all)
	Workers int     // parallel engine goroutines (0 = all cores, 1 = serial)
	// Obs, when set, receives refinement counters
	// (quant_refine_candidates and the engine scheduling metrics).
	Obs *obs.Recorder
}

// DefaultRefineConfig refines each threshold over ±5 steps of 0.01 for
// two rounds.
func DefaultRefineConfig() RefineConfig {
	return RefineConfig{Rounds: 2, Step: 0.01, Radius: 5, Samples: 500}
}

// RefineThresholds improves the greedy Algorithm-1 thresholds by
// coordinate descent: each layer's threshold is re-searched while
// evaluating accuracy through the *fully binarized* pipeline (the
// greedy pass evaluates through the float remainder, which mismatches
// the deployed network once deeper layers are also binarized). This is
// the same brute-force accuracy-driven search, applied at deployment
// semantics; it never changes weights.
func RefineThresholds(q *QuantizedNet, train *mnist.Dataset, cfg RefineConfig) (float64, error) {
	if cfg.Rounds <= 0 || cfg.Step <= 0 || cfg.Radius <= 0 {
		return 0, fmt.Errorf("quant: invalid refine config %+v", cfg)
	}
	if err := par.Validate(cfg.Workers); err != nil {
		return 0, fmt.Errorf("quant: refine config: %w", err)
	}
	data := train
	if cfg.Samples > 0 && cfg.Samples < train.Len() {
		data = train.Subset(cfg.Samples)
	}
	// Candidate thresholds mutate q between calls, but within one call
	// q is read-only, so samples fan out safely.
	accuracy := func() float64 {
		cfg.Obs.Counter("quant_refine_candidates").Add(1)
		correct := par.CountRec(cfg.Obs, cfg.Workers, data.Len(), func(i int) bool {
			return q.Predict(data.Images[i]) == data.Labels[i]
		})
		return float64(correct) / float64(data.Len())
	}
	best := accuracy()
	for round := 0; round < cfg.Rounds; round++ {
		improved := false
		for l := range q.Thresholds {
			orig := q.Thresholds[l]
			bestT := orig
			for k := -cfg.Radius; k <= cfg.Radius; k++ {
				if k == 0 {
					continue
				}
				t := orig + float64(k)*cfg.Step
				if t < 0 {
					continue
				}
				q.Thresholds[l] = t
				if acc := accuracy(); acc > best {
					best, bestT = acc, t
					improved = true
				}
			}
			q.Thresholds[l] = bestT
		}
		if !improved {
			break
		}
	}
	return best, nil
}
