package seicore

import (
	"math/rand"
	"sync"
	"testing"

	"sei/internal/nn"
	"sei/internal/rram"
)

func TestBuildSEIRejectsNegativeWorkers(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.Workers = -3
	if _, err := BuildSEI(f.q, f.train, cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("BuildSEI accepted negative Workers")
	}
}

// buildCalibrated builds a split, dynamically-thresholded SEI design
// with the given worker count from identical RNG state.
func buildCalibrated(t *testing.T, workers int, sigma float64) *SEIDesign {
	t.Helper()
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.Layer.Model = rram.DefaultDeviceModel()
	cfg.Layer.Model.ReadNoiseSigma = sigma
	cfg.Layer.MaxCrossbar = 128 // forces conv2 and FC to split
	cfg.CalibImages = 30
	cfg.Workers = workers
	d, err := BuildSEI(f.q, f.train, cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildSEICalibrationWorkerCountInvariant(t *testing.T) {
	for _, sigma := range []float64{0, 0.02} {
		ref := buildCalibrated(t, 1, sigma)
		for _, workers := range []int{2, 8, 0} {
			d := buildCalibrated(t, workers, sigma)
			for li := range ref.Convs {
				a, b := ref.Convs[li], d.Convs[li]
				if a.Gamma != b.Gamma || a.DigitalThreshold != b.DigitalThreshold {
					t.Fatalf("sigma=%v workers=%d: conv %d calibrated to (γ=%v D=%d), serial (γ=%v D=%d)",
						sigma, workers, li, b.Gamma, b.DigitalThreshold, a.Gamma, a.DigitalThreshold)
				}
				for bi := range a.OnesMean {
					if a.OnesMean[bi] != b.OnesMean[bi] {
						t.Fatalf("sigma=%v workers=%d: conv %d OnesMean[%d] differs", sigma, workers, li, bi)
					}
				}
			}
			for stage, res := range ref.CalibResults {
				got := d.CalibResults[stage]
				if got.AgreementBefore != res.AgreementBefore || got.AgreementAfter != res.AgreementAfter {
					t.Fatalf("sigma=%v workers=%d: stage %d accuracy (%v→%v), serial (%v→%v)",
						sigma, workers, stage, got.AgreementBefore, got.AgreementAfter,
						res.AgreementBefore, res.AgreementAfter)
				}
			}
		}
	}
}

func TestNoisyEvalWorkerCountInvariant(t *testing.T) {
	f := getFixture(t)
	d := buildCalibrated(t, 0, 0.03)
	sub := f.test.Subset(96)
	ref := nn.ClassifierErrorRateWorkers(d, sub, 1)
	for _, workers := range []int{2, 8, 0} {
		if got := nn.ClassifierErrorRateWorkers(d, sub, workers); got != ref {
			t.Fatalf("workers=%d: noisy error %.6f != serial %.6f", workers, got, ref)
		}
	}
}

// TestSharedDesignStress evaluates one shared noise-free SEIDesign from
// many goroutines at once; run under -race it proves the Predict path
// is read-only.
func TestSharedDesignStress(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	sub := f.test.Subset(48)
	want := make([]int, sub.Len())
	for i := range want {
		want[i] = d.Predict(sub.Images[i])
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < sub.Len(); i++ {
				// Interleave goroutines across samples.
				s := (i + g) % sub.Len()
				if got := d.Predict(sub.Images[s]); got != want[s] {
					errs <- "shared Predict diverged"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
