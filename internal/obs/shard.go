package obs

// ShardedCounter accumulates increments in per-chunk shards and folds
// them into a named counter strictly in chunk-index order. Atomic adds
// already make plain Counter totals worker-count independent (integer
// addition commutes); the sharded form additionally makes the merge
// *order* deterministic, which is the contract future non-commutative
// aggregations must follow, and it keeps chunk bodies free of even
// atomic contention (each chunk owns its slot, like the engine's
// per-index result slots). A nil ShardedCounter ignores every method.
type ShardedCounter struct {
	c      *Counter
	shards []int64
}

// Sharded returns a counter with one shard per work chunk. Chunk
// bodies call Add with their chunk index; the caller calls Merge after
// the parallel region completes.
func (r *Recorder) Sharded(name string, shards int) *ShardedCounter {
	if r == nil {
		return nil
	}
	return &ShardedCounter{c: r.Counter(name), shards: make([]int64, shards)}
}

// Add increments shard's slot by n. Safe for concurrent use as long as
// each shard index is owned by one goroutine at a time — exactly the
// engine's chunk ownership rule.
func (s *ShardedCounter) Add(shard int, n int64) {
	if s == nil {
		return
	}
	s.shards[shard] += n
}

// Merge folds the shards into the underlying counter in index order.
// Call once, after the parallel region's barrier.
func (s *ShardedCounter) Merge() {
	if s == nil {
		return
	}
	for _, v := range s.shards {
		s.c.Add(v)
	}
}
