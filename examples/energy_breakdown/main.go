// Energy breakdown: reproduces the motivation of the paper's Fig. 1 —
// in a traditional RRAM CNN the ADC/DAC interfaces, not the crossbars,
// consume nearly all energy and area — and then shows how the three
// structures of Table 5 compare on all three Table-2 networks.
//
// Run with: go run ./examples/energy_breakdown
package main

import (
	"fmt"
	"log"
	"os"

	"sei"
)

func main() {
	fmt.Println("Interface cost across structures (synthetic MNIST, 512x512 crossbars)")
	train, _ := sei.SyntheticSplit(600, 1, 1)

	for id := 1; id <= 3; id++ {
		// Geometry is what matters here, so a short training run is
		// enough to build the quantized network.
		fmt.Fprintf(os.Stderr, "training network %d (short run, geometry only)...\n", id)
		net := sei.TrainTableNetwork(id, train, 1, 1)
		q, err := sei.Quantize(net, train)
		if err != nil {
			log.Fatal(err)
		}
		costs, err := sei.MapCosts(q, 512)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nNetwork %d:\n", id)
		fmt.Printf("  %-17s %12s %10s %10s %12s\n", "structure", "energy (uJ)", "area(mm2)", "GOPs/J", "iface share")
		base := costs[0]
		for _, c := range costs {
			fmt.Printf("  %-17s %12.3f %10.4f %10.0f %11.1f%%",
				c.Structure, c.EnergyUJ, c.AreaMM2, c.GOPsPerJ, 100*c.InterfaceEnergyFraction)
			if c.Structure != base.Structure {
				fmt.Printf("   (saves %.1f%% energy, %.1f%% area)",
					100*(1-c.EnergyUJ/base.EnergyUJ), 100*(1-c.AreaMM2/base.AreaMM2))
			}
			fmt.Println()
		}
	}
	fmt.Println("\nThe DAC+ADC interfaces dominate the baseline (Fig. 1); SEI replaces")
	fmt.Println("them with sense amplifiers and saves >93% energy (Table 5).")
}
