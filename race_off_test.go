//go:build !race

package sei

const raceEnabled = false
