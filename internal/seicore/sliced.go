package seicore

// The bit-sliced (SIMD-within-a-register) batch fast path. fast.go
// packs one image's activations 64 bits per word; this file transposes
// the layout — the SAME activation bit across up to 64 images packed
// into one uint64, image L in bit (lane) L — so a pooling OR, a
// threshold write-out or a crossbar row-select test processes 64
// images per word operation, and a receptive-field window gather is a
// handful of word copies instead of per-image bit blits. The layout's
// converters live in bitvec (Transpose64/SliceLanes); here the maps
// are produced lane-major directly and never transposed back.
//
// Bit-identity contract (pinned by sliced_test.go and
// determinism_test.go): per-lane results equal the per-image fast path
// bit for bit, in labels AND in hardware-counter totals. Two
// mechanisms carry that:
//
//   - Every float accumulation replays the per-image path's exact
//     addition sequence. Stage 0 transposes the float images lane-major
//     (pixT[p·64+lane]) and gathers each window with ascending-row
//     vecf.MulAccLanes calls — strict mul-then-add rounding per
//     element, never a fused multiply-add — so each lane sees exactly
//     tensor.MatVecTInto's ascending-row accumulation. The per-image
//     path skips v == 0 terms while the lane-dense kernel adds their
//     ±0 products; that is an IEEE identity here: under
//     round-to-nearest a sum of finite products is +0 or nonzero but
//     never -0, and x + (±0) == x for every such x. Rows whose pixel
//     is zero in all 64 lanes are skipped outright — the same identity
//     applied wordwise. Deeper stages iterate a block's rows in
//     ascending local order and, per set lane, add the same
//     effective-weight row values the per-image sumsBits adds.
//
//   - Counters are recorded as lane-aggregated totals of the same
//     events: one per-image window records MVM(1); the sliced window
//     records MVM(lanes). Active-input counts are popcounts over lane
//     words (deeper stages) or coverage-weighted nonzero-pixel counts
//     (stage 0), both equal to the per-image sums by construction.
//
// Integer-weight or table-lookup accumulation tricks are deliberately
// absent: effective weights are scale-multiplied floats, so any
// regrouping of the additions would change rounding and break the
// contract. The speedup comes from amortizing row walks, window
// gathers and pooling over 64 lanes, not from reassociating sums.
//
// Eligibility is the fast path's: ideal-analog models everywhere (no
// read noise, IR drop or I-V nonlinearity), which also makes the
// receiver goroutine-safe — scratch state lives in a per-call arena
// from a sync.Pool, so steady-state sliced batches allocate nothing.

import (
	"math/bits"

	"sei/internal/nn"
	"sei/internal/tensor"
	"sei/internal/vecf"
)

// slicedScratch is one call's arena for the bit-sliced path, sized
// once for the design's largest stage. All lane-indexed buffers hold
// nn.SlicedGroupSize (64) lanes.
type slicedScratch struct {
	geom []stageGeom

	// Stage-0 gather state: per-pixel window-coverage counts
	// (precomputed from the geometry; cover[y·inW+x] windows read input
	// position (y,x)), the lane-transposed float images
	// (pixT[p·Lanes+lane]), and the per-pixel nonzero-lane words that
	// drive the all-lanes-zero row skip and the active-input counter.
	cover []int32
	pixT  []float64
	nz    []uint64
	off0  []int64     // per window row, its pixel's element offset into pixT
	srcs  [][]float64 // transpose-time image data refs, cleared after use

	cur, next []uint64 // lane-major activation maps, one word per bit position
	win       []uint64 // lane-major receptive-field window

	acc    []float64 // per-lane block column sums, lane-major [lane·M + c]
	fired  []int32   // per-lane fired-block counts, lane-major [lane·M + c]
	scores []float64 // per-lane FC scores, lane-major [lane·M + c]
	ones   []int32   // per-lane active-input count within one block
	w0     []float64 // per-lane dynamic-column sum within one block

	// Bounded-mode per-lane state (sliced_bounded.go): undecided column
	// masks, bound-decided-1 masks and last-evaluated checkpoints within
	// one block's walk, plus the cross-block output-undecided masks.
	undec    []uint64
	fired1   []uint64
	lastCp   []int32
	outUndec []uint64
	// Stage-0 live/cropped window coverage split: coverLive counts the
	// pool-covered kernel placements reading each pixel, coverSkip the
	// pool-cropped ones (coverLive + coverSkip == cover).
	coverLive, coverSkip []int32
}

// newSlicedScratch sizes an arena for d and precomputes the stage-0
// coverage table.
func newSlicedScratch(d *SEIDesign) *slicedScratch {
	s := &slicedScratch{geom: fastGeometry(d.Q)}
	maxMap, maxFan, maxM := 0, 0, 0
	for l, g := range s.geom {
		if n := g.filters * g.pooledH * g.pooledW; n > maxMap {
			maxMap = n
		}
		if l > 0 && g.fan > maxFan {
			maxFan = g.fan
		}
		if g.filters > maxM {
			maxM = g.filters
		}
	}
	if d.FC.M > maxM {
		maxM = d.FC.M
	}
	lanes := nn.SlicedGroupSize
	s.cur = make([]uint64, maxMap)
	s.next = make([]uint64, maxMap)
	s.win = make([]uint64, maxFan)
	s.acc = make([]float64, lanes*maxM)
	s.fired = make([]int32, lanes*maxM)
	s.scores = make([]float64, lanes*d.FC.M)
	s.ones = make([]int32, lanes)
	s.w0 = make([]float64, lanes)

	g := &s.geom[0]
	s.pixT = make([]float64, g.inC*g.inH*g.inW*vecf.Lanes)
	s.nz = make([]uint64, g.inC*g.inH*g.inW)
	s.srcs = make([][]float64, lanes)
	// Window-row offsets in eff's row order (ch, ky, kx ascending),
	// relative to a window's first pixel; scaled to pixT elements.
	s.off0 = make([]int64, 0, g.fan)
	for ch := 0; ch < g.inC; ch++ {
		for ky := 0; ky < g.kh; ky++ {
			for kx := 0; kx < g.kw; kx++ {
				s.off0 = append(s.off0, int64(((ch*g.inH+ky)*g.inW+kx)*vecf.Lanes))
			}
		}
	}
	// Window coverage is separable: cover(y,x) = rows(y)·cols(x), the
	// per-axis counts of kernel placements reading that coordinate.
	rows := coverage1D(g.inH, g.kh, g.stride, g.outH)
	cols := coverage1D(g.inW, g.kw, g.stride, g.outW)
	s.cover = make([]int32, g.inH*g.inW)
	for y := 0; y < g.inH; y++ {
		for x := 0; x < g.inW; x++ {
			s.cover[y*g.inW+x] = rows[y] * cols[x]
		}
	}
	// Bounded-mode split of the same coverage into pool-covered and
	// pool-cropped placements (separable like cover itself: a window is
	// live iff both its axes are).
	liveRows := coverage1DLive(g.kh, g.stride, g.outH, g.pool, g.pooledH, g.inH)
	liveCols := coverage1DLive(g.kw, g.stride, g.outW, g.pool, g.pooledW, g.inW)
	s.coverLive = make([]int32, g.inH*g.inW)
	s.coverSkip = make([]int32, g.inH*g.inW)
	for y := 0; y < g.inH; y++ {
		for x := 0; x < g.inW; x++ {
			live := liveRows[y] * liveCols[x]
			s.coverLive[y*g.inW+x] = live
			s.coverSkip[y*g.inW+x] = s.cover[y*g.inW+x] - live
		}
	}
	s.undec = make([]uint64, lanes)
	s.fired1 = make([]uint64, lanes)
	s.lastCp = make([]int32, lanes)
	s.outUndec = make([]uint64, lanes)
	return s
}

// coverage1DLive is coverage1D restricted to kernel placements the
// floor-division pool grid keeps along one axis.
func coverage1DLive(k, stride, outN, pool, pooledN, in int) []int32 {
	c := make([]int32, in)
	for o := 0; o < outN; o++ {
		if pool > 1 && o/pool >= pooledN {
			continue
		}
		for d := 0; d < k; d++ {
			c[o*stride+d]++
		}
	}
	return c
}

// coverage1D counts, per input coordinate, how many of the outN kernel
// placements along one axis read it.
func coverage1D(in, k, stride, outN int) []int32 {
	c := make([]int32, in)
	for o := 0; o < outN; o++ {
		for d := 0; d < k; d++ {
			c[o*stride+d]++
		}
	}
	return c
}

// outRange returns the inclusive range of output coordinates along one
// axis whose kernel window covers input coordinate p (empty when
// lo > hi — an edge pixel the output grid never reads).
func outRange(p, k, stride, outN int) (lo, hi int) {
	if p >= k {
		lo = (p - k + stride) / stride
	}
	hi = p / stride
	if hi > outN-1 {
		hi = outN - 1
	}
	return lo, hi
}

// SetSlicedPath enables (the default for eligible designs) or disables
// the bit-sliced batch path: disabling makes SlicedBatchEligible
// report false, so nn.PredictBatch keeps the per-image engine — used
// by benchmarks that measure the per-image path and by the
// path-equivalence tests. It cannot enable the sliced path on
// noisy/nonlinear designs. Not safe to call concurrently with
// evaluation.
func (d *SEIDesign) SetSlicedPath(on bool) { d.slicedOff = !on }

// SlicedBatchEligible implements nn.SlicedBatchPredictor: the sliced
// path applies exactly when the per-image fast path does (ideal-analog
// models; see fast.go) and neither path has been toggled off.
func (d *SEIDesign) SlicedBatchEligible() bool {
	return d.fast && !d.fastOff && !d.slicedOff && d.sliced != nil
}

var _ nn.SlicedBatchPredictor = (*SEIDesign)(nil)

// PredictBatchSliced classifies up to 64 images in one bit-sliced
// pass, writing one result per image into out. It reports false —
// leaving out untouched — when the design is not eligible, the batch
// is empty or exceeds nn.SlicedGroupSize, or an image does not match
// the design's input geometry; the caller then falls back to per-image
// prediction. Labels and hardware-counter totals are bit-identical to
// per-image Predict calls on the same images. Safe for concurrent use;
// steady-state calls allocate nothing.
func (d *SEIDesign) PredictBatchSliced(imgs []*tensor.Tensor, out []nn.PredictResult) bool {
	lanes := len(imgs)
	if !d.SlicedBatchEligible() || lanes == 0 || lanes > nn.SlicedGroupSize || len(out) < lanes {
		return false
	}
	s, _ := d.sliced.Get().(*slicedScratch)
	if s == nil {
		s = newSlicedScratch(d)
	}
	g := &s.geom[0]
	want := g.inC * g.inH * g.inW
	for _, img := range imgs {
		if img == nil || len(img.Data()) != want {
			d.sliced.Put(s)
			return false
		}
	}
	d.predictSliced(imgs, out[:lanes], s)
	d.sliced.Put(s)
	return true
}

// predictSliced runs the full bit-sliced forward pass. The caller owns
// s for the duration of the call and has validated the input shapes.
func (d *SEIDesign) predictSliced(imgs []*tensor.Tensor, out []nn.PredictResult, s *slicedScratch) {
	if d.bounded {
		d.predictSlicedBounded(imgs, out, s)
		return
	}
	q := d.Q
	lanes := len(imgs)

	// Stage 0 keeps the DAC+ADC organization: the float images are
	// transposed lane-major, every conv window accumulates all 64 lanes
	// at once through the vecf kernels, and the fired bits pool-fuse
	// straight into the lane-major map.
	g := &s.geom[0]
	mapLen := g.filters * g.pooledH * g.pooledW
	cur := s.cur[:mapLen]
	for i := range cur {
		cur[i] = 0
	}
	ones := d.slicedStage0(imgs, s, cur)
	if h := d.Input.hw; h != nil {
		positions := int64(g.outH * g.outW)
		h.MVM(positions * int64(lanes))
		h.ColumnActivations(positions * int64(g.filters) * int64(lanes))
		h.ActiveInputs(ones)
	}
	if g.pool > 1 {
		q.CountORPool(int64(lanes) * int64(mapLen))
	}

	// Deeper conv stages are SEI crossbars: lane-major windows in, SA
	// threshold counts per lane out, OR-fused pooling as word ORs.
	for l := 1; l < len(q.Convs); l++ {
		layer := d.Convs[l-1]
		g := &s.geom[l]
		in := s.cur
		outMap := s.next[:g.filters*g.pooledH*g.pooledW]
		for i := range outMap {
			outMap[i] = 0
		}
		win := s.win[:g.fan]
		fired := s.fired[:lanes*layer.M]
		dthr := int32(layer.DigitalThreshold)
		for oy := 0; oy < g.outH; oy++ {
			for ox := 0; ox < g.outW; ox++ {
				py, px := oy, ox
				cropped := false
				if g.pool > 1 {
					py /= g.pool
					px /= g.pool
					cropped = py >= g.pooledH || px >= g.pooledW
				}
				di := 0
				for ch := 0; ch < g.inC; ch++ {
					src := (ch*g.inH+oy*g.stride)*g.inW + ox*g.stride
					for ky := 0; ky < g.kh; ky++ {
						copy(win[di:di+g.kw], in[src:src+g.kw])
						di += g.kw
						src += g.inW
					}
				}
				if cropped {
					// No output bit depends on a pool-cropped window;
					// only its active-input totals are observable.
					layer.slicedOnes(win)
					continue
				}
				layer.slicedCounts(win, lanes, s)
				for k := 0; k < layer.M; k++ {
					var w uint64
					for lane := 0; lane < lanes; lane++ {
						if fired[lane*layer.M+k] >= dthr {
							w |= 1 << uint(lane)
						}
					}
					if w != 0 {
						outMap[(k*g.pooledH+py)*g.pooledW+px] |= w
					}
				}
			}
		}
		if h := layer.hw; h != nil {
			positions := int64(g.outH * g.outW)
			h.MVM(int64(layer.K) * positions * int64(lanes))
			h.SACompares(int64(layer.K*layer.M) * positions * int64(lanes))
			h.ColumnActivations(int64(layer.K*layer.M) * positions * int64(lanes))
		}
		if g.pool > 1 {
			q.CountORPool(int64(lanes) * int64(g.filters*g.pooledH*g.pooledW))
		}
		s.cur, s.next = s.next, s.cur
	}

	// FC stage: the flattened final map is already the lane-major
	// input; per-lane scores feed the argmax epilogue.
	d.FC.slicedScores(s.cur, lanes, s)
	m := d.FC.M
	for lane := 0; lane < lanes; lane++ {
		sc := s.scores[lane*m : lane*m+m]
		best, bi := sc[0], 0
		for i, v := range sc {
			if v > best { // strict >: first maximum wins, as tensor.ArgMax
				best, bi = v, i
			}
		}
		out[lane] = nn.PredictResult{Label: bi}
	}
}

// slicedStage0 convolves all lanes' float images through the merged
// input layer in one lane-dense pass, thresholds per lane and
// pool-fuses the fired bits into the lane-major map. It returns the
// active-input total across lanes (each nonzero pixel counted once per
// window covering it — the sum of evalIdealInto's per-window nonzero
// counts).
//
// Per window the kernel rows are visited in ascending fan order with
// strict mul-then-add accumulation — vecf.ConvWin4 fused when the
// layer has exactly four filters, a vecf.MulAccLanes/GtMask64 loop
// otherwise — so each lane replays MatVecTInto's ascending-row loop
// exactly; lanes whose pixel is zero accumulate a ±0 product, an IEEE
// identity (see the file header), and rows zero in every lane are
// skipped outright.
func (d *SEIDesign) slicedStage0(imgs []*tensor.Tensor, s *slicedScratch, out []uint64) int64 {
	g := &s.geom[0]
	n := g.inC * g.inH * g.inW
	plane := g.inH * g.inW
	pixT := s.pixT[:n*vecf.Lanes]
	nz := s.nz[:n]
	srcs := s.srcs[:len(imgs)]
	for lane, img := range imgs {
		srcs[lane] = img.Data()
	}
	// Pixel-outer transpose: the read side walks every image
	// sequentially (one hot cache line per lane) and the write side is
	// one contiguous 64-lane burst per pixel. Lane-outer order would
	// stride the stores eight cache lines apart and miss L1 on every
	// write.
	for p := 0; p < n; p++ {
		dst := pixT[p*vecf.Lanes : p*vecf.Lanes+vecf.Lanes]
		var w uint64
		for lane, src := range srcs {
			v := src[p]
			dst[lane] = v
			if v != 0 {
				w |= 1 << uint(lane)
			}
		}
		nz[p] = w
	}
	for lane := range srcs {
		srcs[lane] = nil // don't retain image data in the pooled arena
	}
	var ones int64
	for p, w := range nz {
		if w != 0 {
			ones += int64(bits.OnesCount64(w)) * int64(s.cover[p%plane])
		}
	}

	lanes := len(imgs)
	laneMask := ^uint64(0)
	if lanes < vecf.Lanes {
		laneMask = 1<<uint(lanes) - 1 // stale high lanes carry old batches' pixels
	}
	m := g.filters
	eff := d.Input.eff.Data()
	thr := d.Q.Thresholds[0]
	if m == 4 && g.fan <= 64 {
		// Fused-kernel form: vecf.ConvWin4 keeps all four filters'
		// accumulators in registers across the window and returns the
		// fired masks directly — same ascending-row mul-then-add
		// sequence, no scratch accumulator round trip.
		var masks [4]uint64
		for oy := 0; oy < g.outH; oy++ {
			py := oy
			if g.pool > 1 {
				py = oy / g.pool
				if py >= g.pooledH {
					continue // pool-cropped row: no output bits depend on it
				}
			}
			for ox := 0; ox < g.outW; ox++ {
				px := ox
				if g.pool > 1 {
					px = ox / g.pool
					if px >= g.pooledW {
						continue
					}
				}
				pbase := oy*g.stride*g.inW + ox*g.stride
				var rm uint64
				for r, o := range s.off0 {
					if nz[pbase+int(o)/vecf.Lanes] != 0 {
						rm |= 1 << uint(r)
					}
				}
				vecf.ConvWin4(pixT[pbase*vecf.Lanes:], eff, s.off0, rm, thr, &masks)
				for k := 0; k < 4; k++ {
					if w := masks[k] & laneMask; w != 0 {
						out[(k*g.pooledH+py)*g.pooledW+px] |= w
					}
				}
			}
		}
		return ones
	}
	acc := s.acc[:m*vecf.Lanes]
	for oy := 0; oy < g.outH; oy++ {
		py := oy
		if g.pool > 1 {
			py = oy / g.pool
			if py >= g.pooledH {
				continue // pool-cropped row: no output bits depend on it
			}
		}
		for ox := 0; ox < g.outW; ox++ {
			px := ox
			if g.pool > 1 {
				px = ox / g.pool
				if px >= g.pooledW {
					continue
				}
			}
			for i := range acc {
				acc[i] = 0
			}
			row := 0
			for ch := 0; ch < g.inC; ch++ {
				src := (ch*g.inH+oy*g.stride)*g.inW + ox*g.stride
				for ky := 0; ky < g.kh; ky++ {
					for kx := 0; kx < g.kw; kx++ {
						if nz[src+kx] != 0 {
							vecf.MulAccLanes(acc, pixT[(src+kx)*vecf.Lanes:], eff[row*m:(row+1)*m])
						}
						row++
					}
					src += g.inW
				}
			}
			for k := 0; k < m; k++ {
				if w := vecf.GtMask64(acc[k*vecf.Lanes:], thr) & laneMask; w != 0 {
					out[(k*g.pooledH+py)*g.pooledW+px] |= w
				}
			}
		}
	}
	return ones
}

// slicedCounts is evalFastCounts over a lane-major window: it fills
// s.fired (lane-major, lanes·M entries) with each lane's per-column
// fired-block counts. Rows are visited in ascending local order and
// each set lane accumulates the same effective-weight row the
// per-image path adds, so per-lane sums — and the SA compares against
// the (per-lane dynamic) reference — are bit-identical. ActiveInputs
// is recorded as the popcount total, the sum of the per-lane counts.
func (l *SEIConvLayer) slicedCounts(win []uint64, lanes int, s *slicedScratch) {
	m := l.M
	fired := s.fired[:lanes*m]
	for i := range fired {
		fired[i] = 0
	}
	for bi := range l.blocks {
		b := &l.blocks[bi]
		onesTot := b.slicedSums(win, lanes, s, l.Gamma != 0)
		l.hw.ActiveInputs(onesTot)
		dyn := b.w0 != nil
		switch {
		case l.Gamma != 0:
			for lane := 0; lane < lanes; lane++ {
				ref := l.BaseThr[bi] + l.Gamma*(float64(s.ones[lane])-l.OnesMean[bi])
				if dyn {
					ref += s.w0[lane]
				}
				a := s.acc[lane*m : lane*m+m]
				f := fired[lane*m : lane*m+m]
				for c, v := range a {
					if v > ref {
						f[c]++
					}
				}
			}
		case dyn:
			for lane := 0; lane < lanes; lane++ {
				ref := l.BaseThr[bi] + s.w0[lane]
				a := s.acc[lane*m : lane*m+m]
				f := fired[lane*m : lane*m+m]
				for c, v := range a {
					if v > ref {
						f[c]++
					}
				}
			}
		default:
			// Static reference, one value for every lane: compare the
			// whole lane-major accumulator in one pass.
			ref := l.BaseThr[bi]
			for i, v := range s.acc[:lanes*m] {
				if v > ref {
					fired[i]++
				}
			}
		}
	}
}

// slicedOnes records a pool-cropped window's per-block active-input
// totals without computing column sums: the window's fired bits never
// reach the output map, but the per-image path still evaluates it, so
// its ActiveInputs contribution must be counted.
func (l *SEIConvLayer) slicedOnes(win []uint64) {
	for bi := range l.blocks {
		b := &l.blocks[bi]
		var tot int64
		for _, j := range b.inputs {
			tot += int64(bits.OnesCount64(win[j]))
		}
		l.hw.ActiveInputs(tot)
	}
}

// slicedScores is evalFastInto over a lane-major flattened map: bias
// copy, block order and the `s − w0sum` accumulation per lane match
// the per-image path exactly, so per-lane scores are bit-identical.
func (l *SEIFCLayer) slicedScores(in []uint64, lanes int, s *slicedScratch) {
	m := l.M
	for lane := 0; lane < lanes; lane++ {
		copy(s.scores[lane*m:lane*m+m], l.Bias)
	}
	for bi := range l.blocks {
		b := &l.blocks[bi]
		onesTot := b.slicedSums(in, lanes, s, false)
		l.hw.ActiveInputs(onesTot)
		dyn := b.w0 != nil
		for lane := 0; lane < lanes; lane++ {
			var w0sum float64
			if dyn {
				w0sum = s.w0[lane]
			}
			a := s.acc[lane*m : lane*m+m]
			sc := s.scores[lane*m : lane*m+m]
			for c, v := range a {
				sc[c] += v - w0sum
			}
		}
	}
	if h := l.hw; h != nil {
		h.MVM(int64(l.K) * int64(lanes))
		h.ColumnActivations(int64(l.K*l.M) * int64(lanes))
	}
}

// slicedSums is sumsBits over a lane-major input: for every block row
// whose lane word has any bit set, each set lane accumulates the row
// into its column sums (s.acc, zeroed here) in ascending local-row
// order via vecf.AddRowLanes — one IEEE add per element, identical to
// the scalar loop. Per-lane active counts land in s.ones only when the
// caller needs them (the Gamma reference), dynamic-column sums in s.w0
// when the block carries them. Returns the popcount total — the sum
// over lanes of the per-image path's ones. One word test skips a row
// for all 64 lanes at once.
func (b *seiBlock) slicedSums(in []uint64, lanes int, s *slicedScratch, needOnes bool) int64 {
	m := b.eff.Dim(1)
	acc := s.acc[:lanes*m]
	for i := range acc {
		acc[i] = 0
	}
	dyn := b.w0 != nil
	if dyn {
		for i := range s.w0[:lanes] {
			s.w0[i] = 0
		}
	}
	if needOnes {
		for i := range s.ones[:lanes] {
			s.ones[i] = 0
		}
	}
	var onesTot int64
	data := b.eff.Data()
	for local, j := range b.inputs {
		w := in[j]
		if w == 0 {
			continue
		}
		onesTot += int64(bits.OnesCount64(w))
		vecf.AddRowLanes(acc, data[local*m:(local+1)*m], w)
		if needOnes || dyn {
			var w0v float64
			if dyn {
				w0v = b.w0[local]
			}
			for t := w; t != 0; t &= t - 1 {
				lane := bits.TrailingZeros64(t)
				if needOnes {
					s.ones[lane]++
				}
				if dyn {
					s.w0[lane] += w0v
				}
			}
		}
	}
	return onesTot
}
