// Device faults: the paper's future work calls for "considering the
// non-ideal factors of RRAM and circuit". This example sweeps the
// behavioural device model's non-idealities — programming variation,
// read noise, and stuck-at faults — and measures how the SEI design's
// classification degrades.
//
// Run with: go run ./examples/device_faults
package main

import (
	"fmt"
	"log"
	"os"

	"sei"
)

func main() {
	train, test := sei.SyntheticSplit(2000, 300, 5)
	fmt.Fprintln(os.Stderr, "training and quantizing network 2...")
	net := sei.TrainTableNetwork(2, train, 4, 9)
	q, err := sei.Quantize(net, train)
	if err != nil {
		log.Fatal(err)
	}

	eval := func(m sei.DeviceModel) float64 {
		opt := sei.DefaultBuildOptions()
		opt.Device = m
		opt.DynamicThreshold = false
		d, err := sei.BuildDesign(q, nil, opt)
		if err != nil {
			log.Fatal(err)
		}
		return sei.EvaluateDesign(d, test)
	}

	fmt.Println("SEI robustness to device non-idealities (Network 2)")

	fmt.Println("  programming variation (lognormal sigma):")
	for _, sigma := range []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4} {
		m := sei.DefaultDeviceModel()
		m.ProgramSigma = sigma
		fmt.Printf("    sigma %.2f  error %6.2f%%\n", sigma, 100*eval(m))
	}

	fmt.Println("  read noise (relative sigma per column read):")
	for _, sigma := range []float64{0, 0.01, 0.05, 0.1} {
		m := sei.DefaultDeviceModel()
		m.ReadNoiseSigma = sigma
		fmt.Printf("    sigma %.2f  error %6.2f%%\n", sigma, 100*eval(m))
	}

	fmt.Println("  stuck-at faults (fraction of cells stuck on/off):")
	for _, rate := range []float64{0, 0.001, 0.01, 0.05} {
		m := sei.DefaultDeviceModel()
		m.StuckOnRate = rate / 2
		m.StuckOffRate = rate / 2
		fmt.Printf("    rate %.3f  error %6.2f%%\n", rate, 100*eval(m))
	}

	fmt.Println("  device precision (bits per cell; paper default 4):")
	for bits := 2; bits <= 6; bits++ {
		m := sei.IdealDeviceModel(bits)
		m.ProgramSigma = 0.02
		fmt.Printf("    %d bits    error %6.2f%%\n", bits, 100*eval(m))
	}

	fmt.Println("  sinh I-V nonlinearity (VRead/V0; 1-bit inputs are immune):")
	for _, r := range []float64{0, 0.5, 1, 2, 3} {
		m := sei.DefaultDeviceModel()
		m.IVNonlinearity = r
		fmt.Printf("    r = %.1f    error %6.2f%%\n", r, 100*eval(m))
	}
	fmt.Println("\nNote how the 1-bit data path shrugs off the I-V nonlinearity that")
	fmt.Println("would distort an analog-input design — every input is either 0 or")
	fmt.Println("full swing, so the curve contributes only a uniform gain.")
}
