package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"sei/internal/mnist"
	"sei/internal/tensor"
)

func TestSoftmaxSumsToOne(t *testing.T) {
	p := Softmax([]float64{1, 2, 3, 1000})
	sum := 0.0
	for _, v := range p {
		sum += v
		if math.IsNaN(v) {
			t.Fatal("softmax produced NaN on large logits")
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sum = %v, want 1", sum)
	}
	if p[3] < 0.99 {
		t.Fatalf("softmax argmax prob %v, want ≈1", p[3])
	}
}

func TestCrossEntropyGradient(t *testing.T) {
	logits := tensor.FromSlice([]float64{0.5, -1, 2}, 3)
	loss, grad := CrossEntropyLoss(logits, 2)
	if loss <= 0 {
		t.Fatalf("loss = %v, want > 0", loss)
	}
	// Gradient must sum to 0 (softmax prob mass minus one-hot).
	if s := grad.Sum(); math.Abs(s) > 1e-12 {
		t.Fatalf("grad sum = %v, want 0", s)
	}
	if grad.Data()[2] >= 0 {
		t.Fatalf("grad at true label = %v, want < 0", grad.Data()[2])
	}
}

func TestCrossEntropyNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	logits := tensor.New(5)
	for i := range logits.Data() {
		logits.Data()[i] = rng.NormFloat64()
	}
	_, grad := CrossEntropyLoss(logits, 3)
	const eps = 1e-6
	for i := 0; i < 5; i++ {
		orig := logits.Data()[i]
		logits.Data()[i] = orig + eps
		lp, _ := CrossEntropyLoss(logits, 3)
		logits.Data()[i] = orig - eps
		lm, _ := CrossEntropyLoss(logits, 3)
		logits.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data()[i]) > 1e-5 {
			t.Fatalf("CE grad [%d]: analytic %g vs numeric %g", i, grad.Data()[i], num)
		}
	}
}

func TestTableNetworksCompose(t *testing.T) {
	for id := 1; id <= 3; id++ {
		net := NewTableNetwork(id, 1)
		out, err := net.CheckShapes([]int{1, 28, 28})
		if err != nil {
			t.Fatalf("network %d: %v", id, err)
		}
		if len(out) != 1 || out[0] != 10 {
			t.Fatalf("network %d output %v, want [10]", id, out)
		}
	}
}

func TestTableNetworkWeightMatrixDims(t *testing.T) {
	// The paper's "Weight Matrix" rows are kernelSize²·channels ×
	// filters; verify our constructors match Table 2.
	for id, spec := range Specs() {
		net := NewTableNetwork(id, 1)
		conv1 := net.Layers[0].(*Conv2D)
		conv2 := net.Layers[3].(*Conv2D)
		if got := conv1.InChannels * conv1.KH * conv1.KW; got != spec.WeightMatrix1Rows {
			t.Errorf("network %d: weight matrix 1 rows %d, want %d", id, got, spec.WeightMatrix1Rows)
		}
		if conv1.Filters != spec.WeightMatrix1Cols {
			t.Errorf("network %d: weight matrix 1 cols %d, want %d", id, conv1.Filters, spec.WeightMatrix1Cols)
		}
		if got := conv2.InChannels * conv2.KH * conv2.KW; got != spec.WeightMatrix2Rows {
			t.Errorf("network %d: weight matrix 2 rows %d, want %d", id, got, spec.WeightMatrix2Rows)
		}
		if conv2.Filters != spec.WeightMatrix2Cols {
			t.Errorf("network %d: weight matrix 2 cols %d, want %d", id, conv2.Filters, spec.WeightMatrix2Cols)
		}
	}
}

func TestUnknownNetworkIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTableNetwork(9) did not panic")
		}
	}()
	NewTableNetwork(9, 1)
}

func TestOpsCount(t *testing.T) {
	// Network 1, hand-computed: conv1 24·24·25·12 MACs, conv2
	// 8·8·300·64 MACs, FC 1024·10 MACs; ×2 ops per MAC.
	net := NewTableNetwork(1, 1)
	want := int64(2 * (24*24*25*12 + 8*8*300*64 + 1024*10))
	if got := net.Ops([]int{1, 28, 28}); got != want {
		t.Fatalf("Ops = %d, want %d", got, want)
	}
}

func TestOpsOrderingMatchesTable2(t *testing.T) {
	// The paper's complexity column orders Network1 ≫ Network3 >
	// Network2; our count must preserve that ordering.
	ops := map[int]int64{}
	for id := 1; id <= 3; id++ {
		ops[id] = NewTableNetwork(id, 1).Ops([]int{1, 28, 28})
	}
	if !(ops[1] > ops[3] && ops[3] > ops[2]) {
		t.Fatalf("ops ordering wrong: %v", ops)
	}
}

func TestForwardTapsCoverAllLayers(t *testing.T) {
	net := NewTableNetwork(2, 1)
	img := tensor.New(1, 28, 28)
	logits, taps := net.ForwardTaps(img)
	if len(taps) != len(net.Layers) {
		t.Fatalf("got %d taps, want %d", len(taps), len(net.Layers))
	}
	last := taps[len(taps)-1]
	if !tensor.EqualApprox(last.Value, logits, 0) {
		t.Fatal("final tap is not the logits")
	}
	if taps[0].LayerName != "conv3x3x4" {
		t.Fatalf("first tap name %q", taps[0].LayerName)
	}
}

func TestNumParams(t *testing.T) {
	net := NewTableNetwork(2, 1)
	// conv1 4·1·3·3, conv2 8·4·3·3, fc 200·10 + 10.
	want := 4*9 + 8*4*9 + 200*10 + 10
	if got := net.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
}

func TestTrainingReducesLossAndError(t *testing.T) {
	train, test := mnist.SyntheticSplit(800, 200, 5)
	net := NewTableNetwork(2, 7)
	before := ErrorRate(net, test)
	cfg := DefaultTrainConfig()
	loss := Train(net, train, cfg)
	after := ErrorRate(net, test)
	if loss > 1.0 {
		t.Fatalf("final loss %.3f too high; training failed", loss)
	}
	if after >= before {
		t.Fatalf("error rate did not improve: %.3f → %.3f", before, after)
	}
	if after > 0.30 {
		t.Fatalf("error rate after training %.3f, want < 0.30", after)
	}
}

func TestTrainDeterministic(t *testing.T) {
	data := mnist.Synthetic(60, 3)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	a := NewTableNetwork(2, 7)
	b := NewTableNetwork(2, 7)
	Train(a, data, cfg)
	Train(b, data, cfg)
	pa := a.Params()
	pb := b.Params()
	for i := range pa {
		if !tensor.EqualApprox(pa[i].Value, pb[i].Value, 0) {
			t.Fatalf("training is not deterministic: param %d differs", i)
		}
	}
}

func TestTrainPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Train with zero epochs did not panic")
		}
	}()
	Train(NewTableNetwork(2, 1), mnist.Synthetic(4, 1), TrainConfig{BatchSize: 4})
}

func TestSaveLoadRoundTrip(t *testing.T) {
	net := NewTableNetwork(3, 11)
	var buf bytes.Buffer
	if err := Save(net, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != net.Name {
		t.Fatalf("name %q, want %q", got.Name, net.Name)
	}
	img := mnist.Synthetic(5, 2).Images[0]
	if !tensor.EqualApprox(net.Forward(img), got.Forward(img), 1e-12) {
		t.Fatal("loaded model computes different logits")
	}
}

func TestSaveLoadFile(t *testing.T) {
	net := NewTableNetwork(2, 1)
	path := t.TempDir() + "/sub/model.gob"
	if err := SaveFile(net, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumParams() != net.NumParams() {
		t.Fatal("loaded model has different parameter count")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

func TestCloneWeightsIndependent(t *testing.T) {
	net := NewTableNetwork(2, 1)
	c := CloneWeights(net)
	img := mnist.Synthetic(1, 1).Images[0]
	if !tensor.EqualApprox(net.Forward(img), c.Forward(img), 1e-12) {
		t.Fatal("clone computes different logits")
	}
	c.Params()[0].Value.Fill(0)
	if net.Params()[0].Value.Max() == 0 {
		t.Fatal("mutating clone affected original")
	}
}

func TestClassifierErrorRateMatchesErrorRate(t *testing.T) {
	data := mnist.Synthetic(40, 4)
	net := NewTableNetwork(2, 2)
	if ErrorRate(net, data) != ClassifierErrorRate(net, data) {
		t.Fatal("ClassifierErrorRate diverges from ErrorRate")
	}
}
