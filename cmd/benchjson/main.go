// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report (ns/op, B/op, allocs/op and custom
// metrics such as images/sec and skip_rate, plus derived
// baseline/optimized ratios). It produced the recorded BENCH_PR*.json
// evidence files of the early optimization PRs.
//
// Deprecated: cmd/seibench is the benchmark front door now — `make
// bench-json` and `make bench-quant` run `seibench run`, which writes
// trend-gated reports under bench-reports/ (see README "Benchmark
// front door"). benchjson remains only to re-derive JSON from raw
// `go test -bench` output by hand; the parsing lives in
// internal/benchparse, shared with seibench.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"sei/internal/benchparse"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	rep, err := benchparse.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
