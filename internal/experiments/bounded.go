package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/power"
	"sei/internal/seicore"
)

// BoundedResult reports the runtime activation-bound study: how much
// crossbar work the input-dependent suffix bounds skip on the
// ideal-analog engines (exact, label-identical) and what the explicit
// approximate mode costs in accuracy under read noise (DESIGN.md §16).
type BoundedResult struct {
	NetworkID int
	Images    int

	// Exact bounded mode on the ideal-analog fast path.
	UnboundedErr   float64
	BoundedErr     float64
	LabelsMatch    bool
	RowsDriven     int64
	RowsSkipped    int64
	ColsEarlyExit  int64
	BoundEvals     int64
	BlocksSkipped  int64
	SkipRate       float64            // aggregate sei_skip_rate
	StageSkipRates map[string]float64 // per-stage sei_skip_rate_stageN

	// Counter-derived energy, pJ per inference (power.DefaultLibrary).
	UnboundedPJ    float64
	BoundedPJ      float64
	EnergySavedPct float64

	// Approximate mode on the noisy sampled path (read-noise sigma
	// NoisySigma, split at NoisyCrossbar): the exact noisy error, the
	// approx-mode error, and the approx run's skip rate.
	NoisySigma    float64
	NoisyCrossbar int
	NoisyExactErr float64
	NoisyApprox   float64
	NoisySkipRate float64
}

// boundedEval runs design d over data with a fresh recorder and
// returns the predicted labels, error rate and the recorder.
func boundedEval(d *seicore.SEIDesign, data *mnist.Dataset, workers int) ([]int, float64, *obs.Recorder) {
	rec := obs.New()
	d.Instrument(rec)
	res := nn.PredictBatchObs(rec, d, data.Images, workers)
	labels := make([]int, len(res))
	wrong := 0
	for i, r := range res {
		if r.Err != nil {
			panic(fmt.Sprintf("experiments: bounded study predict image %d: %v", i, r.Err))
		}
		labels[i] = r.Label
		if r.Label != data.Labels[i] {
			wrong++
		}
	}
	d.Instrument(nil)
	return labels, float64(wrong) / float64(len(labels)), rec
}

// BoundedStudy measures the runtime activation bounds on one network:
// an unbounded ideal-analog baseline, the exact bounded mode (which
// must reproduce its labels bit-for-bit while skipping rows), and the
// explicit approximate mode on a read-noise variant of the same
// network.
func BoundedStudy(c *Context, networkID int) (*BoundedResult, error) {
	q := c.QuantizedCalibrated(networkID)
	cfg := seicore.DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false // static references keep every block boundable
	d, err := seicore.BuildSEI(q, c.Train, cfg, rand.New(rand.NewSource(c.Cfg.Seed)))
	if err != nil {
		return nil, fmt.Errorf("building SEI design: %w", err)
	}
	workers := c.Cfg.Workers
	lib := power.DefaultLibrary()
	images := int64(c.Test.Len())

	c.logf("bounded study: unbounded baseline over %d images\n", images)
	baseLabels, baseErr, recU := boundedEval(d, c.Test, workers)
	unboundedPJ, err := power.EnergyPerInferencePJ(recU.Report("unbounded"), lib, images)
	if err != nil {
		return nil, err
	}

	c.logf("bounded study: exact bounded mode\n")
	d.SetBounded(true)
	bndLabels, bndErr, recB := boundedEval(d, c.Test, workers)
	d.SetBounded(false)
	recB.PublishSkipRates()
	boundedPJ, err := power.EnergyPerInferencePJ(recB.Report("bounded"), lib, images)
	if err != nil {
		return nil, err
	}

	res := &BoundedResult{
		NetworkID:      networkID,
		Images:         int(images),
		UnboundedErr:   baseErr,
		BoundedErr:     bndErr,
		LabelsMatch:    true,
		UnboundedPJ:    unboundedPJ,
		BoundedPJ:      boundedPJ,
		StageSkipRates: map[string]float64{},
	}
	for i := range baseLabels {
		if baseLabels[i] != bndLabels[i] {
			res.LabelsMatch = false
			break
		}
	}
	counters := recB.CounterValues()
	res.RowsDriven = counters[obs.SEIRowsDriven]
	res.RowsSkipped = counters[obs.SEIRowsSkipped]
	res.ColsEarlyExit = counters[obs.SEIColsEarlyExit]
	res.BoundEvals = counters[obs.SEIBoundEvals]
	res.BlocksSkipped = counters[obs.SEIBlocksSkipped]
	for name, v := range recB.GaugeValues() {
		if name == obs.SEISkipRate {
			res.SkipRate = v
		} else if suffix, ok := strings.CutPrefix(name, obs.SEISkipRate+"_"); ok {
			res.StageSkipRates[suffix] = v
		}
	}
	if unboundedPJ > 0 {
		res.EnergySavedPct = 100 * (unboundedPJ - boundedPJ) / unboundedPJ
	}

	// Approximate mode under read noise: same network, noisy sampled
	// path. The exact noisy run and the approx run share one design so
	// the comparison isolates the bound-induced sampling change.
	res.NoisySigma = 0.05
	ncfg := seicore.DefaultSEIBuildConfig()
	ncfg.DynamicThreshold = false
	ncfg.Layer.Model.ReadNoiseSigma = res.NoisySigma
	res.NoisyCrossbar = ncfg.Layer.MaxCrossbar
	nd, err := seicore.BuildSEI(q, c.Train, ncfg, rand.New(rand.NewSource(c.Cfg.Seed)))
	if err != nil {
		return nil, fmt.Errorf("building noisy SEI design: %w", err)
	}
	c.logf("bounded study: noisy exact baseline (sigma=%.2f)\n", res.NoisySigma)
	_, res.NoisyExactErr, _ = boundedEval(nd, c.Test, workers)
	c.logf("bounded study: noisy approximate mode\n")
	nd.SetBoundedApprox(true)
	_, approxErr, recA := boundedEval(nd, c.Test, workers)
	nd.SetBoundedApprox(false)
	res.NoisyApprox = approxErr
	recA.PublishSkipRates()
	if v, ok := recA.GaugeValues()[obs.SEISkipRate]; ok {
		res.NoisySkipRate = v
	}
	return res, nil
}

// Print renders the bounded study.
func (r *BoundedResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Runtime activation bounds (Network %d, %d images)\n", r.NetworkID, r.Images)
	match := "IDENTICAL"
	if !r.LabelsMatch {
		match = "DIVERGED (bug: bounded mode must be exact)"
	}
	fmt.Fprintf(w, "  exact bounded mode: labels %s (err %.2f%% unbounded, %.2f%% bounded)\n",
		match, 100*r.UnboundedErr, 100*r.BoundedErr)
	total := r.RowsDriven + r.RowsSkipped
	fmt.Fprintf(w, "  rows: %d driven, %d skipped (skip rate %.1f%% of %d)\n",
		r.RowsDriven, r.RowsSkipped, 100*r.SkipRate, total)
	fmt.Fprintf(w, "  columns decided early: %d   bound evaluations: %d   blocks skipped: %d\n",
		r.ColsEarlyExit, r.BoundEvals, r.BlocksSkipped)
	stages := make([]string, 0, len(r.StageSkipRates))
	for s := range r.StageSkipRates {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	for _, s := range stages {
		fmt.Fprintf(w, "    %-8s skip rate %.1f%%\n", s, 100*r.StageSkipRates[s])
	}
	fmt.Fprintf(w, "  energy: %.1f pJ/inference unbounded -> %.1f pJ/inference bounded (%.1f%% saved)\n",
		r.UnboundedPJ, r.BoundedPJ, r.EnergySavedPct)
	fmt.Fprintf(w, "  approx mode under read noise (sigma=%.2f, crossbar %d):\n",
		r.NoisySigma, r.NoisyCrossbar)
	fmt.Fprintf(w, "    exact noisy err %.2f%%, approx err %.2f%% (delta %+.2f pp), approx skip rate %.1f%%\n",
		100*r.NoisyExactErr, 100*r.NoisyApprox, 100*(r.NoisyApprox-r.NoisyExactErr), 100*r.NoisySkipRate)
	fmt.Fprintln(w, "  (bounded mode never dispatches on the noisy path by itself; approx mode is the explicit opt-in)")
}
