package nn

import (
	"errors"
	"fmt"
	"math"

	"sei/internal/mnist"
	"sei/internal/obs"
	"sei/internal/par"
	"sei/internal/tensor"
)

// ErrBadInput marks a prediction rejected because of a malformed image:
// wrong shape, non-finite pixels, or input-dependent evaluator state
// the layers cannot digest (surfaced as a recovered panic). Callers
// match it with errors.Is and map it to a client error, never a crash.
var ErrBadInput = errors.New("nn: bad input")

// MetricPredictPanics counts evaluator panics contained by the batch
// predict path — each one is a would-have-been process death.
const MetricPredictPanics = "predict_panics"

// PredictResult is one image's outcome in a batch: a label, or an error
// (in which case Label is -1).
type PredictResult struct {
	Label int
	Err   error
}

// ValidateImage checks that an image is structurally evaluable by the
// paper's networks: non-nil, single-channel Side×Side, with finite
// pixels. Violations return an ErrBadInput-wrapped error. This is the
// gate the serving path applies before an image reaches layer code
// whose shape checks panic.
func ValidateImage(img *tensor.Tensor) error {
	if img == nil {
		return fmt.Errorf("%w: nil image", ErrBadInput)
	}
	s := img.Shape()
	if len(s) != 3 || s[0] != 1 || s[1] != mnist.Side || s[2] != mnist.Side {
		return fmt.Errorf("%w: image shape %v, want [1 %d %d]", ErrBadInput, s, mnist.Side, mnist.Side)
	}
	for i, v := range img.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite pixel %v at index %d", ErrBadInput, v, i)
		}
	}
	return nil
}

// safePredict evaluates one image with panic containment: a malformed
// input is rejected up front, and any panic escaping the layer stack
// (shape checks, index arithmetic on unexpected geometry) comes back as
// an ErrBadInput-wrapped error instead of killing the process.
func safePredict(c Classifier, img *tensor.Tensor, rec *obs.Recorder) (res PredictResult) {
	defer func() {
		if r := recover(); r != nil {
			rec.Counter(MetricPredictPanics).Add(1)
			res = PredictResult{Label: -1, Err: fmt.Errorf("%w: evaluator panic: %v", ErrBadInput, r)}
		}
	}()
	if err := ValidateImage(img); err != nil {
		return PredictResult{Label: -1, Err: err}
	}
	return PredictResult{Label: c.Predict(img)}
}

// Predict classifies one image with validation and panic containment
// (see PredictBatch for the batch form and its determinism contract).
func Predict(c Classifier, img *tensor.Tensor) (int, error) {
	res := safePredict(c, img, nil)
	return res.Label, res.Err
}

// PredictBatch classifies a batch of images on the parallel engine and
// returns one PredictResult per image. It uses the exact chunking and
// per-chunk noise seeding of the error-rate paths, so when imgs is a
// dataset's image slice in dataset order, the labels are bit-identical
// to what ClassifierErrorRate counted — for every worker count and
// batch size. Malformed images and recovered evaluator panics produce
// per-image ErrBadInput errors; valid neighbours in the same batch are
// unaffected.
func PredictBatch(c Classifier, imgs []*tensor.Tensor, workers int) []PredictResult {
	return PredictBatchObs(nil, c, imgs, workers)
}

// PredictBatchObs is PredictBatch with instrumentation: engine
// scheduling counters, the eval_images sharded counter, and
// predict_panics on rec. A nil rec records nothing.
func PredictBatchObs(rec *obs.Recorder, c Classifier, imgs []*tensor.Tensor, workers int) []PredictResult {
	return PredictBatchInto(rec, c, imgs, workers, nil)
}

// PredictBatchInto is PredictBatchObs writing its results into dst,
// which is grown only when its capacity is insufficient — a serving
// loop can reuse one result buffer across flushes instead of
// allocating per batch. Every slot in the returned slice is
// overwritten. Returns dst resliced to len(imgs).
func PredictBatchInto(rec *obs.Recorder, c Classifier, imgs []*tensor.Tensor, workers int, dst []PredictResult) []PredictResult {
	w := evalWorkers(c, workers)
	n := len(imgs)
	if cap(dst) < n {
		dst = make([]PredictResult, n)
	}
	out := dst[:n]
	sc := rec.Sharded(MetricEvalImages, par.NumChunks(n, par.DefaultChunkSize))
	par.ForEachChunkRec(rec, w, n, par.DefaultChunkSize, func(ch par.Chunk) {
		sc.Add(ch.Index, int64(ch.Hi-ch.Lo))
		eval := chunkEvaluator(c, ch)
		for i := ch.Lo; i < ch.Hi; i++ {
			out[i] = safePredict(eval, imgs[i], rec)
		}
	})
	sc.Merge()
	return out
}
