package seicore

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/tensor"
	"sei/internal/vecf"
)

// evalBounded runs the design over data on the bounded fast path with
// full instrumentation, returning labels and counter totals.
func evalBounded(t *testing.T, d *SEIDesign, data *mnist.Dataset, workers int) ([]int, map[string]int64) {
	t.Helper()
	rec := obs.New()
	d.Instrument(rec)
	d.SetBounded(true)
	defer func() {
		d.Instrument(nil)
		d.SetBounded(false)
	}()
	res := nn.PredictBatchObs(rec, d, data.Images, workers)
	labels := make([]int, len(res))
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("image %d: %v", i, r.Err)
		}
		labels[i] = r.Label
	}
	return labels, rec.CounterValues()
}

// TestBoundedFastMatchesUnbounded pins the bounded mode's label
// contract across design shapes and worker counts: bounded fast,
// unbounded fast and float paths all agree bit-for-bit in labels,
// while the bounded run records genuine skips on the default design.
func TestBoundedFastMatchesUnbounded(t *testing.T) {
	f := getFixture(t)
	perm := rand.New(rand.NewSource(11)).Perm(36)
	cases := []struct {
		name string
		cfg  func() SEIBuildConfig
	}{
		{"default-bipolar", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.DynamicThreshold = false
			return cfg
		}},
		{"split-contiguous", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.Layer.MaxCrossbar = 16
			cfg.DynamicThreshold = false
			return cfg
		}},
		{"split-permuted-order", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.Layer.MaxCrossbar = 16
			cfg.Orders = [][]int{nil, perm}
			cfg.DynamicThreshold = false
			return cfg
		}},
		{"unipolar-dynamic", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.Layer.Mode = ModeUnipolarDynamic
			cfg.DynamicThreshold = false
			return cfg
		}},
		{"calibrated-split", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.Layer.MaxCrossbar = 16
			cfg.CalibImages = 10
			cfg.CalibPositions = 8
			return cfg
		}},
	}
	sub := f.test.Subset(60)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := BuildSEI(f.q, f.train, tc.cfg(), rand.New(rand.NewSource(3)))
			if err != nil {
				t.Fatal(err)
			}
			floatLabels, _ := evalBothPaths(t, d, f.q, sub, false, 2)
			var base []int
			for _, workers := range []int{1, 2, 8} {
				labels, counters := evalBounded(t, d, sub, workers)
				if !reflect.DeepEqual(labels, floatLabels) {
					t.Errorf("workers=%d: bounded labels diverge from float path", workers)
				}
				if base == nil {
					base = labels
					t.Logf("skipped=%d driven=%d colsEarly=%d evals=%d blocksSkipped=%d",
						counters[obs.SEIRowsSkipped], counters[obs.SEIRowsDriven],
						counters[obs.SEIColsEarlyExit], counters[obs.SEIBoundEvals],
						counters[obs.SEIBlocksSkipped])
				}
				if tc.name == "default-bipolar" && counters[obs.SEIRowsSkipped] == 0 {
					t.Errorf("workers=%d: bounded run skipped no rows on Network 2", workers)
				}
			}
		})
	}
}

// TestBoundedCounterWorkerInvariance pins that the bounded run's full
// counter map — hw_* and sei_* alike — is identical at every worker
// count.
func TestBoundedCounterWorkerInvariance(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.Layer.MaxCrossbar = 16
	cfg.DynamicThreshold = false
	d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	sub := f.test.Subset(50)
	_, base := evalBounded(t, d, sub, 1)
	for _, workers := range []int{2, 8} {
		_, counters := evalBounded(t, d, sub, workers)
		if !reflect.DeepEqual(counters, base) {
			t.Errorf("workers=%d: bounded counters diverge from serial run:\n got  %v\n want %v",
				workers, counters, base)
		}
	}
}

// TestSuffixBoundTight is the tightness property test: with integer
// weights (exactly representable, no rounding anywhere) each
// checkpoint's sufPos must equal the true maximum of the remaining
// rows' contribution over every subset of those rows — which for
// independent rows is the sum of the positive entries — and sufNeg the
// true minimum. Verified against brute-force random subsets: no subset
// sum may exceed sufPos or undercut sufNeg, and the all-positive /
// all-negative subsets must achieve them exactly.
func TestSuffixBoundTight(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(60)
		m := 1 + rng.Intn(12)
		eff := tensor.New(n, m)
		for i := range eff.Data() {
			eff.Data()[i] = float64(rng.Intn(21) - 10)
		}
		cb := newColBounds(eff)
		if cb == nil {
			t.Fatalf("trial %d: no bounds for %dx%d", trial, n, m)
		}
		ncp := checkpoints(n, cb.stride)
		for cp := 0; cp < ncp; cp++ {
			lo := cp * cb.stride
			for c := 0; c < m; c++ {
				wantPos, wantNeg := 0.0, 0.0
				for r := lo; r < n; r++ {
					v := eff.Data()[r*m+c]
					if v > 0 {
						wantPos += v
					} else {
						wantNeg += v
					}
				}
				if got := cb.sufPos[cp*m+c]; got != wantPos {
					t.Fatalf("trial %d cp %d col %d: sufPos %v, want %v", trial, cp, c, got, wantPos)
				}
				if got := cb.sufNeg[cp*m+c]; got != wantNeg {
					t.Fatalf("trial %d cp %d col %d: sufNeg %v, want %v", trial, cp, c, got, wantNeg)
				}
				// Random subsets of the remaining rows can never beat the
				// bound (tightness direction is pinned by equality above).
				for s := 0; s < 8; s++ {
					sum := 0.0
					for r := lo; r < n; r++ {
						if rng.Intn(2) == 1 {
							sum += eff.Data()[r*m+c]
						}
					}
					if sum > cb.sufPos[cp*m+c] || sum < cb.sufNeg[cp*m+c] {
						t.Fatalf("trial %d cp %d col %d: subset sum %v outside [%v,%v]",
							trial, cp, c, sum, cb.sufNeg[cp*m+c], cb.sufPos[cp*m+c])
					}
				}
			}
		}
	}
}

// TestBoundColsDecisionsSound fuzzes the shared decision kernel on
// float weights against a brute-force scan: any column BoundCols
// decides must match the full accumulation's compare, for random
// partial positions and references near the decision boundary.
func TestBoundColsDecisionsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(40)
		m := 1 + rng.Intn(8)
		eff := tensor.New(n, m)
		for i := range eff.Data() {
			eff.Data()[i] = rng.NormFloat64()
		}
		cb := newColBounds(eff)
		active := make([]bool, n)
		for r := range active {
			active[r] = rng.Intn(2) == 1
		}
		// Full scan: the ground-truth column sums.
		full := make([]float64, m)
		for r := 0; r < n; r++ {
			if !active[r] {
				continue
			}
			for c := 0; c < m; c++ {
				full[c] += eff.Data()[r*m+c]
			}
		}
		cp := rng.Intn(checkpoints(n, cb.stride))
		lo := cp * cb.stride
		// Partial sums up to (not including) row lo, as the walk holds
		// them when evaluating checkpoint cp.
		acc := make([]float64, m)
		for r := 0; r < lo; r++ {
			if !active[r] {
				continue
			}
			for c := 0; c < m; c++ {
				acc[c] += eff.Data()[r*m+c]
			}
		}
		ref := full[rng.Intn(m)] + rng.NormFloat64()*0.01
		base := cp * m
		dec0, dec1 := boundColsRef(acc, cb, base, cp, ref)
		for c := 0; c < m; c++ {
			bit := uint64(1) << uint(c)
			if dec0&bit != 0 && full[c] > ref {
				t.Fatalf("trial %d col %d: bound said 0 but full sum %v > ref %v", trial, c, full[c], ref)
			}
			if dec1&bit != 0 && full[c] <= ref {
				t.Fatalf("trial %d col %d: bound said 1 but full sum %v <= ref %v", trial, c, full[c], ref)
			}
		}
	}
}

// boundColsRef invokes the vecf kernel with the table slices for one
// checkpoint, as the walk does.
func boundColsRef(acc []float64, cb *colBounds, base, cp int, ref float64) (uint64, uint64) {
	m := cb.m
	return vecf.BoundCols(acc, cb.sufPos[base:base+m], cb.sufNeg[base:base+m],
		cb.sufAbs[base:base+m], cb.slackU[cp], ref, colMask(m))
}

// TestBoundedApproxAccuracyDelta pins the approximate mode's contract
// under read noise: it dispatches only when explicitly enabled, skips
// real work, and its accuracy stays within a small delta of the exact
// noisy path.
func TestBoundedApproxAccuracyDelta(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.Layer.MaxCrossbar = 16 // split conv stage: several boundable blocks
	cfg.Layer.Model.ReadNoiseSigma = 0.05
	cfg.DynamicThreshold = false
	d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	if d.fast {
		t.Fatalf("noisy design enabled the fast path")
	}
	sub := f.test.Subset(120)

	// Default: bounded approximation must NOT dispatch on the noisy
	// path, even with SetBounded on (that flag only gates the
	// ideal-analog engines).
	rec := obs.New()
	d.Instrument(rec)
	d.SetBounded(true)
	exactErr := nn.ClassifierErrorRateObs(rec, d, sub, 2)
	if skipped := rec.CounterValues()[obs.SEIRowsSkipped]; skipped != 0 {
		t.Fatalf("noisy path skipped %d rows without approx mode", skipped)
	}
	d.SetBounded(false)
	d.Instrument(nil)

	// Explicit approx mode: must actually skip, with bounded accuracy
	// delta.
	rec = obs.New()
	d.Instrument(rec)
	d.SetBoundedApprox(true)
	approxErr := nn.ClassifierErrorRateObs(rec, d, sub, 2)
	d.SetBoundedApprox(false)
	d.Instrument(nil)
	counters := rec.CounterValues()
	if counters[obs.SEIRowsSkipped] == 0 && counters[obs.SEIColsEarlyExit] == 0 {
		t.Fatalf("approx mode performed no skips")
	}
	delta := math.Abs(approxErr - exactErr)
	t.Logf("exact %.4f approx %.4f delta %.4f skipped=%d colsEarly=%d",
		exactErr, approxErr, delta, counters[obs.SEIRowsSkipped], counters[obs.SEIColsEarlyExit])
	if delta > 0.10 {
		t.Errorf("approx-mode accuracy delta %.4f exceeds 0.10 (exact %.4f, approx %.4f)",
			delta, exactErr, approxErr)
	}
}

// TestBoundedZeroAllocs pins that the bounded fast path stays
// allocation-free in steady state.
func TestBoundedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool is lossy under -race; allocation counts are not meaningful")
	}
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	d.SetBounded(true)
	defer d.SetBounded(false)
	img := f.test.Images[0]
	if avg := testing.AllocsPerRun(200, func() { d.Predict(img) }); avg != 0 {
		t.Errorf("bounded Predict allocates %.1f objects per image, want 0", avg)
	}
}
