package sei

// Inference-path benchmarks and allocation guards for the bit-packed
// SEI fast path (internal/seicore/fast.go) and the bit-sliced batch
// kernel (internal/seicore/sliced.go). BenchmarkSEIPredict (in
// bench_test.go) runs the default dispatch — the fast path for the
// ideal-analog default device; BenchmarkSEIPredictFloat pins the same
// design to the float path so the pair measures the fast-path speedup
// directly; BenchmarkSEIPredictBatchSliced measures the 64-images-per-
// word path against BenchmarkSEIPredict's per-image cost. `make
// bench-json` records all of them plus allocs/op in a trend-gated
// bench-reports/ report (historic figures: bench-reports/history/).

import (
	"math/rand"
	"testing"

	"sei/internal/nn"
	"sei/internal/seicore"
)

// benchSEIDesign builds the benchmark SEI design: trained/quantized
// Network 2 on the default (ideal-analog) device, static threshold.
func benchSEIDesign(b testing.TB) *seicore.SEIDesign {
	b.Helper()
	c := benchContext(b)
	q := c.QuantizedCalibrated(2)
	cfg := seicore.DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	d, err := seicore.BuildSEI(q, nil, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkSEIPredictFloat is BenchmarkSEIPredict with the fast path
// disabled: the pre-packing float implementation, the baseline for the
// speedup number in bench-reports/history/BENCH_PR4.json.
func BenchmarkSEIPredictFloat(b *testing.B) {
	d := benchSEIDesign(b)
	d.SetFastPath(false)
	defer d.SetFastPath(true)
	img := benchContext(b).Test.Images[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Predict(img)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "images/sec")
}

// BenchmarkSEIPredictBatch measures batched inference through the
// per-image parallel engine on all cores — the sliced path is pinned
// off so this stays the chunked-engine baseline the sliced benchmark
// is compared against. The result buffer is reused across iterations
// (nn.PredictBatchInto), so steady-state allocations amortize to near
// zero per image.
func BenchmarkSEIPredictBatch(b *testing.B) {
	d := benchSEIDesign(b)
	d.SetSlicedPath(false)
	defer d.SetSlicedPath(true)
	imgs := benchContext(b).Test.Images
	var res []nn.PredictResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = nn.PredictBatchInto(nil, d, imgs, 0, res)
	}
	b.StopTimer()
	for i, r := range res {
		if r.Err != nil {
			b.Fatalf("image %d: %v", i, r.Err)
		}
	}
	b.ReportMetric(float64(b.N*len(imgs))/b.Elapsed().Seconds(), "images/sec")
}

// BenchmarkSEIPredictBatchSliced measures the bit-sliced batch path:
// full 64-image groups classified one packed pass each, 64 images per
// machine word. The image count is trimmed to a multiple of 64 so every
// group takes the sliced kernel and images/sec is the pure lane-
// parallel throughput (compared against BenchmarkSEIPredict's
// per-image cost as sei_batch_sliced_speedup_x in bench-reports/history/BENCH_PR6.json).
func BenchmarkSEIPredictBatchSliced(b *testing.B) {
	d := benchSEIDesign(b)
	imgs := benchContext(b).Test.Images
	imgs = imgs[:len(imgs)/nn.SlicedGroupSize*nn.SlicedGroupSize]
	if len(imgs) == 0 {
		b.Fatalf("benchmark context has fewer than %d test images", nn.SlicedGroupSize)
	}
	var res []nn.PredictResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = nn.PredictBatchInto(nil, d, imgs, 0, res)
	}
	b.StopTimer()
	for i, r := range res {
		if r.Err != nil {
			b.Fatalf("image %d: %v", i, r.Err)
		}
	}
	b.ReportMetric(float64(b.N*len(imgs))/b.Elapsed().Seconds(), "images/sec")
}

// BenchmarkSEIPredictBounded is BenchmarkSEIPredict with the runtime
// activation bounds on (DESIGN.md §16): the same labels, with crossbar
// rows and sense-amp compares skipped when the suffix bound decides a
// column early. The delta against BenchmarkSEIPredict is the bound
// machinery's CPU cost or saving; the energy effect is what the
// seibench energy suite gates.
func BenchmarkSEIPredictBounded(b *testing.B) {
	d := benchSEIDesign(b)
	d.SetBounded(true)
	defer d.SetBounded(false)
	img := benchContext(b).Test.Images[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Predict(img)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "images/sec")
}

// BenchmarkSEIPredictBatchSlicedBounded is the sliced batch benchmark
// with runtime activation bounds on: per-lane bound walks over packed
// 64-image words.
func BenchmarkSEIPredictBatchSlicedBounded(b *testing.B) {
	d := benchSEIDesign(b)
	d.SetBounded(true)
	defer d.SetBounded(false)
	imgs := benchContext(b).Test.Images
	imgs = imgs[:len(imgs)/nn.SlicedGroupSize*nn.SlicedGroupSize]
	if len(imgs) == 0 {
		b.Fatalf("benchmark context has fewer than %d test images", nn.SlicedGroupSize)
	}
	var res []nn.PredictResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = nn.PredictBatchInto(nil, d, imgs, 0, res)
	}
	b.StopTimer()
	for i, r := range res {
		if r.Err != nil {
			b.Fatalf("image %d: %v", i, r.Err)
		}
	}
	b.ReportMetric(float64(b.N*len(imgs))/b.Elapsed().Seconds(), "images/sec")
}

// benchNoisySEIDesign is benchSEIDesign with per-column read noise
// (sigma 0.05, the Table-5 robustness configuration): the fixture for
// the packed non-ideal path benchmarks (DESIGN.md §17).
func benchNoisySEIDesign(b testing.TB) *seicore.SEIDesign {
	b.Helper()
	c := benchContext(b)
	q := c.QuantizedCalibrated(2)
	cfg := seicore.DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	cfg.Layer.Model.ReadNoiseSigma = 0.05
	d, err := seicore.BuildSEI(q, nil, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkSEIPredictNoisy measures the packed non-ideal path: column
// popcount sums with read noise applied as a separate vectorized pass.
// Bit-identical to BenchmarkSEIPredictNoisyFloat's labels; the ratio
// of the two is the Monte Carlo campaign speedup the seibench noisy
// suite gates as sei_noisy_speedup_x.
func BenchmarkSEIPredictNoisy(b *testing.B) {
	d := benchNoisySEIDesign(b)
	img := benchContext(b).Test.Images[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Predict(img)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "images/sec")
}

// BenchmarkSEIPredictNoisyFloat pins the same noisy design to the
// float path: the pre-packing baseline the noisy speedup is measured
// against.
func BenchmarkSEIPredictNoisyFloat(b *testing.B) {
	d := benchNoisySEIDesign(b)
	d.SetFastPath(false)
	defer d.SetFastPath(true)
	img := benchContext(b).Test.Images[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Predict(img)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "images/sec")
}

// TestSEIPredictBatchSlicedZeroAllocs is the engine-level allocation
// guard for the sliced path on the real benchmark design: once the
// scratch pool is warm and the result buffer is reused, a full sliced
// batch through nn.PredictBatchInto performs zero heap allocations.
func TestSEIPredictBatchSlicedZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full benchmark context")
	}
	if raceEnabled {
		t.Skip("sync.Pool is lossy under -race; allocation counts are not meaningful")
	}
	d := benchSEIDesign(t)
	imgs := benchContext(t).Test.Images[:nn.SlicedGroupSize]
	res := nn.PredictBatchInto(nil, d, imgs, 1, nil) // warm the pool and size res
	if avg := testing.AllocsPerRun(50, func() {
		res = nn.PredictBatchInto(nil, d, imgs, 1, res)
	}); avg != 0 {
		t.Errorf("sliced batch allocates %.1f objects per pass, want 0", avg)
	}
}

// TestSEIPredictZeroAllocsSteadyState is the allocation guard on the
// real benchmark design (trained Network 2, not the small test
// fixture): once the scratch pool is warm, a fast-path Predict performs
// zero heap allocations per image.
func TestSEIPredictZeroAllocsSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full benchmark context")
	}
	if raceEnabled {
		t.Skip("sync.Pool is lossy under -race; allocation counts are not meaningful")
	}
	d := benchSEIDesign(t)
	img := benchContext(t).Test.Images[0]
	if avg := testing.AllocsPerRun(100, func() { d.Predict(img) }); avg != 0 {
		t.Errorf("fast-path Predict allocates %.1f objects per image, want 0", avg)
	}
}
