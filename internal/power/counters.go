package power

import (
	"fmt"

	"sei/internal/obs"
)

// CellsPerWeight is the number of physical RRAM cells realizing one
// logical weight in the SEI mapping: positive/negative rails × hi/lo
// 4-bit slices (DESIGN.md §5; internal/arch uses the same factor in
// its static accounting).
const CellsPerWeight = 4

// CountsFromReport joins the hardware-event counter totals of an
// instrumented run (the hw_* counters internal/obs records during
// design evaluation) into per-run component usage Counts, the input of
// Library.Energy. This is the measured, data-dependent counterpart of
// internal/arch's static per-picture accounting: sense-amp events and
// row drives come straight from the simulator's event stream, so
// activity-dependent savings (the paper's switched-by-input effect,
// runtime skips) show up in the derived energy rather than only in
// wall-clock.
//
// The join is exact except for cell reads: the counters record the
// total of selected input lines (hw_active_inputs) and the total of
// column read-outs (hw_column_activations) but not their per-MVM
// product, so cell reads are reconstructed as CellsPerWeight ×
// active-lines × mean-columns-per-MVM — exact whenever every crossbar
// block has the same column count (true for the Table-2 networks at
// one crossbar size), an average otherwise.
//
// Buffer and DRAM traffic are not hardware-counter events (they are
// geometry, not activity, dependent) and stay zero here; internal/arch
// remains the accounting path for them.
//
// Noise-draw counts (sei_noise_draws) are deliberately NOT joined:
// read noise is a physical property of the analog read the crossbar
// already pays for, not an extra hardware event, so the counter is
// simulator accounting only — the RNG-consumption ledger of the
// packed non-ideal path (DESIGN.md §17). Two reports that differ only
// in sei_noise_* totals yield identical Counts and identical energy,
// pinned by TestNoiseCountersDoNotAffectEnergy.
func CountsFromReport(rep obs.Report) (Counts, error) {
	mvm := rep.Counters[obs.HWMVMOps]
	if mvm == 0 {
		return Counts{}, fmt.Errorf("power: report %q has no %s events — was the evaluation instrumented?", rep.Name, obs.HWMVMOps)
	}
	active := rep.Counters[obs.HWActiveInputs]
	cols := rep.Counters[obs.HWColumnActivations]
	meanCols := float64(cols) / float64(mvm)
	return Counts{
		SAEvaluations: rep.Counters[obs.HWSAComparisons],
		RowDrives:     active,
		CellReads:     int64(float64(CellsPerWeight*active) * meanCols),
		// The OR-pool window reductions are the digital merge tree —
		// internal/arch books the same events as adds. Runtime
		// activation-bound evaluations (seicore bounded mode) are two
		// digital compares each — the emit-0 and emit-1 checks — so the
		// skip logic's own overhead is charged, not hidden: bounded-mode
		// savings are net of the bound checker's energy.
		Adds: rep.Counters[obs.HWORPoolReductions] + 2*rep.Counters[obs.SEIBoundEvals],
	}, nil
}

// EnergyFromCounters converts an instrumented run report into a
// component energy breakdown (pJ over the whole run) by joining the
// hardware counters against the library constants. It is the single
// counter→energy accounting path shared by cmd/seibench's run reports
// and examples/energy_breakdown.
func EnergyFromCounters(rep obs.Report, lib Library) (Breakdown, error) {
	if err := lib.Validate(); err != nil {
		return Breakdown{}, err
	}
	c, err := CountsFromReport(rep)
	if err != nil {
		return Breakdown{}, err
	}
	return lib.Energy(c), nil
}

// EnergyPerInferencePJ is EnergyFromCounters normalized to one
// inference: the run's counter-derived total divided by the number of
// images evaluated (the caller passes its images counter, e.g.
// nn.MetricEvalImages, keeping this package independent of the CNN
// layer).
func EnergyPerInferencePJ(rep obs.Report, lib Library, images int64) (float64, error) {
	if images <= 0 {
		return 0, fmt.Errorf("power: %d images evaluated, cannot normalize energy per inference", images)
	}
	b, err := EnergyFromCounters(rep, lib)
	if err != nil {
		return 0, err
	}
	return b.Total() / float64(images), nil
}
