# Standard entry points; `make ci` mirrors .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race bench bench-scaling vet fmt ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over every package, including the shared-design
# concurrency stress test in internal/seicore.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Parallel-scaling row: the same deterministic workload at 1, 2 and 4
# workers (Workers=0 tracks GOMAXPROCS, which -cpu sets).
bench-scaling:
	$(GO) test -bench='Parallel|Table5' -cpu 1,2,4 -run='^$$' .

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Exactly what the GitHub Actions workflow runs.
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/obs ./internal/par ./internal/serve ./internal/seicore
	$(GO) test -count=1 -run TestServeSmokeSIGTERM ./cmd/seiserve
