package quant

import (
	"fmt"

	"sei/internal/mnist"
	"sei/internal/obs"
	"sei/internal/par"
	"sei/internal/tensor"
)

// RefineConfig controls the coordinate-descent threshold refinement.
type RefineConfig struct {
	Rounds  int     // full sweeps over the layers
	Step    float64 // candidate spacing around the current threshold
	Radius  int     // candidates tried on each side of the current value
	Samples int     // training subsample (0 = all)
	Workers int     // parallel engine goroutines (0 = all cores, 1 = serial)
	// Obs, when set, receives refinement counters
	// (quant_refine_candidates, the incremental-engine skip/eval
	// counters, and the engine scheduling metrics).
	Obs *obs.Recorder
}

// DefaultRefineConfig refines each threshold over ±5 steps of 0.01 for
// two rounds.
func DefaultRefineConfig() RefineConfig {
	return RefineConfig{Rounds: 2, Step: 0.01, Radius: 5, Samples: 500}
}

// RefineThresholds improves the greedy Algorithm-1 thresholds by
// coordinate descent: each layer's threshold is re-searched while
// evaluating accuracy through the *fully binarized* pipeline (the
// greedy pass evaluates through the float remainder, which mismatches
// the deployed network once deeper layers are also binarized). This is
// the same brute-force accuracy-driven search, applied at deployment
// semantics; it never changes weights.
//
// Candidate scoring runs on the crossing-aware incremental engine
// (engine.go): per layer, the prefix pipeline is evaluated once into
// cached entry maps, the layer's analog sums once per sample, and the
// candidate thresholds sweep the sorted sums — results are
// bit-identical to evaluating every candidate through Predict.
func RefineThresholds(q *QuantizedNet, train *mnist.Dataset, cfg RefineConfig) (float64, error) {
	if cfg.Rounds <= 0 || cfg.Step <= 0 || cfg.Radius <= 0 {
		return 0, fmt.Errorf("quant: invalid refine config %+v", cfg)
	}
	if err := par.Validate(cfg.Workers); err != nil {
		return 0, fmt.Errorf("quant: refine config: %w", err)
	}
	data := train
	if cfg.Samples > 0 && cfg.Samples < train.Len() {
		data = train.Subset(cfg.Samples)
	}
	// Baseline accuracy through the full binarized pipeline.
	cfg.Obs.Counter(MetricRefineCandidates).Add(1)
	correct := par.CountRec(cfg.Obs, cfg.Workers, data.Len(), func(i int) bool {
		return q.Predict(data.Images[i]) == data.Labels[i]
	})
	best := float64(correct) / float64(data.Len())

	var stats SweepStats
	for round := 0; round < cfg.Rounds; round++ {
		improved := false
		// entries[i] is the 0/1 map entering the layer currently being
		// refined under the thresholds chosen so far this round.
		entries := make([]*tensor.Tensor, data.Len())
		copy(entries, data.Images)
		sums := make([]*tensor.Tensor, data.Len())
		for l := range q.Thresholds {
			// The layer's analog sums are threshold-independent: compute
			// them once per sample, sweep every candidate against them,
			// and re-binarize them once more to advance the entries.
			par.ForEachRec(cfg.Obs, cfg.Workers, data.Len(), func(i int) {
				sums[i] = stageSums(&q.Convs[l], entries[i])
			})
			orig := q.Thresholds[l]
			bestT := orig
			if ts := refineCandidates(orig, cfg.Step, cfg.Radius); len(ts) > 0 {
				cfg.Obs.Counter(MetricRefineCandidates).Add(int64(len(ts)))
				sweep := newRefineSweeper(q, l, sums)
				counts := sweep(ts, data.Labels, cfg, &stats)
				for c, t := range ts {
					if acc := float64(counts[c]) / float64(data.Len()); acc > best {
						best, bestT = acc, t
						improved = true
					}
				}
			}
			q.Thresholds[l] = bestT
			par.ForEachRec(cfg.Obs, cfg.Workers, data.Len(), func(i int) {
				entries[i] = q.advanceFromSums(l, sums[i], bestT)
			})
		}
		if !improved {
			break
		}
	}
	return best, nil
}

// refineCandidates lists the coordinate-descent candidates around orig
// in ascending order: orig + k·step for k ∈ [-radius, radius] \ {0},
// negatives dropped (thresholds are ≥ 0).
func refineCandidates(orig, step float64, radius int) []float64 {
	var ts []float64
	for k := -radius; k <= radius; k++ {
		if k == 0 {
			continue
		}
		t := orig + float64(k)*step
		if t < 0 {
			continue
		}
		ts = append(ts, t)
	}
	return ts
}

// newRefineSweeper wires a crossSweep for refining conv stage l over
// precomputed analog sums: the remainder evaluator is the binarized
// tail of the pipeline, or the FC delta path when l is the last stage.
func newRefineSweeper(q *QuantizedNet, l int, sums []*tensor.Tensor) func(ts []float64, labels []int, cfg RefineConfig, stats *SweepStats) []int {
	outShape := sums[0].Shape()
	pool := q.Convs[l].PoolSize
	var newRem func() func(*tensor.Tensor) int
	if l < len(q.Convs)-1 {
		remShape := outShape
		if pool > 1 {
			remShape = []int{outShape[0], outShape[1] / pool, outShape[2] / pool}
		}
		newRem = newBinaryRemainderEval(q, l+1, remShape)
	}
	s := newCrossSweep(outShape, pool, q.FC.W, q.FC.B, newRem)
	values := make([][]float64, len(sums))
	for i, t := range sums {
		values[i] = t.Data()
	}
	return func(ts []float64, labels []int, cfg RefineConfig, stats *SweepStats) []int {
		return s.run(values, labels, ts, cfg.Workers, cfg.Obs, stats)
	}
}

// stageSums computes conv stage c's pre-threshold analog sums on in,
// accumulated in exactly digitalEval.EvalConv's skip-zero order, so
// `sum > t` reproduces the binarized pipeline's bit for any candidate
// t without re-running the convolution.
func stageSums(c *ConvSpec, in *tensor.Tensor) *tensor.Tensor {
	kh, kw := c.W.Dim(2), c.W.Dim(3)
	cols := tensor.Im2Col(in, kh, kw, c.Stride)
	positions, fan := cols.Dim(0), cols.Dim(1)
	h, w := in.Dim(1), in.Dim(2)
	outH := (h-kh)/c.Stride + 1
	outW := (w-kw)/c.Stride + 1
	f := c.Filters()
	out := tensor.New(f, outH, outW)
	od, cd, wd := out.Data(), cols.Data(), c.W.Data()
	for p := 0; p < positions; p++ {
		field := cd[p*fan : (p+1)*fan]
		for k := 0; k < f; k++ {
			row := wd[k*fan : (k+1)*fan]
			s := 0.0
			for j, x := range field {
				if x != 0 {
					s += row[j] * x
				}
			}
			od[k*positions+p] = s
		}
	}
	return out
}

// advanceFromSums binarizes precomputed stage-l analog sums at
// threshold t and applies the stage's OR pool, reproducing convStage's
// output — and its OR-pool hardware accounting — without redoing the
// convolution.
func (q *QuantizedNet) advanceFromSums(l int, sums *tensor.Tensor, t float64) *tensor.Tensor {
	bits := tensor.New(sums.Shape()...)
	bd := bits.Data()
	for i, v := range sums.Data() {
		if v > t {
			bd[i] = 1
		}
	}
	if pool := q.Convs[l].PoolSize; pool > 1 {
		pooled := tensor.New(bits.Dim(0), bits.Dim(1)/pool, bits.Dim(2)/pool)
		orPoolInto(pooled, bits, pool)
		if h := q.hw; h != nil {
			h.ORPool(int64(pooled.Len()))
		}
		return pooled
	}
	return bits
}
