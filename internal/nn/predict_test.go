package nn

import (
	"errors"
	"math"
	"testing"

	"sei/internal/mnist"
	"sei/internal/obs"
	"sei/internal/tensor"
)

// panicClassifier simulates an evaluator whose internals blow up on
// structurally valid input — the injected-panic serving case.
type panicClassifier struct{}

func (panicClassifier) Predict(*tensor.Tensor) int { panic("injected evaluator failure") }

func TestValidateImage(t *testing.T) {
	good := tensor.New(1, mnist.Side, mnist.Side)
	if err := ValidateImage(good); err != nil {
		t.Fatalf("valid image rejected: %v", err)
	}
	bad := tensor.New(1, mnist.Side, mnist.Side)
	bad.Data()[5] = math.NaN()
	cases := map[string]*tensor.Tensor{
		"nil":         nil,
		"wrong dims":  tensor.New(mnist.Side, mnist.Side),
		"wrong size":  tensor.New(1, 27, 28),
		"NaN pixel":   bad,
		"extra chans": tensor.New(3, mnist.Side, mnist.Side),
	}
	for name, img := range cases {
		err := ValidateImage(img)
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if !errors.Is(err, ErrBadInput) {
			t.Fatalf("%s: error %v is not ErrBadInput", name, err)
		}
	}
}

func TestPredictContainsPanics(t *testing.T) {
	img := tensor.New(1, mnist.Side, mnist.Side)
	label, err := Predict(panicClassifier{}, img)
	if err == nil {
		t.Fatal("panic escaped or was swallowed without error")
	}
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("recovered panic error %v is not ErrBadInput", err)
	}
	if label != -1 {
		t.Fatalf("failed prediction label = %d, want -1", label)
	}
}

func TestPredictBatchMatchesErrorRatePredictions(t *testing.T) {
	data := mnist.Synthetic(120, 3)
	net := NewTableNetwork(1, 2)
	for _, workers := range []int{1, 2, 8} {
		res := PredictBatch(net, data.Images, workers)
		if len(res) != data.Len() {
			t.Fatalf("got %d results for %d images", len(res), data.Len())
		}
		wrong := 0
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("image %d failed: %v", i, r.Err)
			}
			if r.Label != net.Predict(data.Images[i]) {
				t.Fatalf("workers=%d image %d: batch label %d != serial Predict", workers, i, r.Label)
			}
			if r.Label != data.Labels[i] {
				wrong++
			}
		}
		if got := float64(wrong) / float64(data.Len()); got != ClassifierErrorRateWorkers(net, data, workers) {
			t.Fatalf("workers=%d: batch error rate %v disagrees with offline evaluation", workers, got)
		}
	}
}

func TestPredictBatchIsolatesBadImages(t *testing.T) {
	data := mnist.Synthetic(40, 4)
	net := NewTableNetwork(1, 2)
	imgs := append([]*tensor.Tensor(nil), data.Images...)
	imgs[7] = nil
	imgs[23] = tensor.New(2, 2) // provokes the shape path
	rec := obs.New()
	res := PredictBatchObs(rec, net, imgs, 2)
	for i, r := range res {
		switch i {
		case 7, 23:
			if !errors.Is(r.Err, ErrBadInput) {
				t.Fatalf("bad image %d: err = %v, want ErrBadInput", i, r.Err)
			}
		default:
			if r.Err != nil {
				t.Fatalf("good image %d poisoned by bad neighbours: %v", i, r.Err)
			}
			if r.Label != net.Predict(data.Images[i]) {
				t.Fatalf("good image %d label changed", i)
			}
		}
	}
	if got := rec.CounterValues()[MetricEvalImages]; got != int64(len(imgs)) {
		t.Fatalf("eval_images = %d, want %d", got, len(imgs))
	}
}

func TestPredictBatchCountsContainedPanics(t *testing.T) {
	rec := obs.New()
	imgs := []*tensor.Tensor{tensor.New(1, mnist.Side, mnist.Side)}
	res := PredictBatchObs(rec, panicClassifier{}, imgs, 1)
	if !errors.Is(res[0].Err, ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", res[0].Err)
	}
	if got := rec.CounterValues()[MetricPredictPanics]; got != 1 {
		t.Fatalf("predict_panics = %d, want 1", got)
	}
}
