package power

import "strings"

// Bar renders a breakdown as a proportional ASCII bar of the given
// width, using one rune per component class — a terminal rendition of
// the paper's Fig.-1 stacked bars:
//
//	D = DAC, A = ADC, R = RRAM, o = everything else
//
// Components round to whole cells; at least one cell is shown for any
// component above half a cell so small-but-present classes stay
// visible.
func Bar(b Breakdown, width int) string {
	if width < 4 {
		width = 4
	}
	total := b.Total()
	if total == 0 {
		return strings.Repeat(".", width)
	}
	type seg struct {
		r    rune
		frac float64
	}
	segs := []seg{
		{'D', b.DAC / total},
		{'A', b.ADC / total},
		{'R', b.RRAM / total},
		{'o', b.Other() / total},
	}
	// Round each segment, keeping any component worth at least half a
	// cell visible, then reconcile the total width against the largest
	// segment.
	n := make([]int, len(segs))
	sum, largest := 0, 0
	for i, s := range segs {
		n[i] = int(s.frac*float64(width) + 0.5)
		if n[i] == 0 && s.frac*float64(width) >= 0.5 {
			n[i] = 1
		}
		sum += n[i]
		if n[i] > n[largest] {
			largest = i
		}
	}
	n[largest] += width - sum

	var sb strings.Builder
	for i, s := range segs {
		for j := 0; j < n[i]; j++ {
			sb.WriteRune(s.r)
		}
	}
	return sb.String()
}
