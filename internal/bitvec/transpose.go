package bitvec

// Lane-transposed ("bit-sliced") layout: the batch inference fast path
// packs the SAME activation bit across up to 64 images into one
// uint64, so word i of a sliced map holds bit i of every image — image
// L occupies bit position (lane) L. In that layout a pooling OR, a
// threshold write-out or a crossbar row-select test touches 64 images
// per word operation. This file provides the canonical converters
// between the per-image packed form (Vec) and the lane-major form:
// a 64×64 in-register bit transpose and the gather/scatter built on
// it. The converters are the layout's definition of record — the
// sliced inference kernels are tested against them.

// Transpose64 transposes the 64×64 bit matrix src into dst: bit c of
// dst[r] equals bit r of src[c]. Rows are words, columns are bit
// positions (LSB first), so transposing per-image rows yields
// lane-major words and vice versa. It is its own inverse. dst and src
// must each hold at least 64 words and may be the same slice.
//
// The kernel is the classic recursive block swap (Hacker's Delight
// §7-3, adapted to LSB-first bit order): at step j it exchanges the
// high-j-bit quadrant of rows k with the low-j-bit quadrant of rows
// k+j, halving j from 32 to 1 — 6·64 word operations total instead of
// 4096 single-bit moves.
func Transpose64(dst, src []uint64) {
	if len(dst) < 64 || len(src) < 64 {
		panic("bitvec: Transpose64 needs 64 words")
	}
	a := dst[:64]
	if &a[0] != &src[0] {
		copy(a, src[:64])
	}
	m := uint64(0x00000000FFFFFFFF)
	for j := uint(32); j != 0; j = j >> 1 {
		for k := uint(0); k < 64; k = (k + j + 1) &^ j {
			t := (a[k]>>j ^ a[k+j]) & m
			a[k] ^= t << j
			a[k+j] ^= t
		}
		m ^= m << (j >> 1)
	}
}

// SliceLanes gathers up to 64 equal-length per-image vectors into the
// lane-major form: dst[i] gets bit L set iff srcs[L] has bit i set.
// dst must hold at least srcs[0].Len() words (one word per bit
// position); words beyond the written range are left untouched. At
// most 64 sources are allowed; fewer leave the high lanes zero.
func SliceLanes(dst []uint64, srcs []*Vec) {
	if len(srcs) == 0 {
		return
	}
	if len(srcs) > wordBits {
		panic("bitvec: SliceLanes takes at most 64 lanes")
	}
	n := srcs[0].Len()
	for _, s := range srcs {
		if s.Len() != n {
			panic("bitvec: SliceLanes length mismatch")
		}
	}
	if len(dst) < n {
		panic("bitvec: SliceLanes destination too short")
	}
	var blk, out [wordBits]uint64
	for w0 := 0; w0 < wordsFor(n); w0++ {
		for L := range blk {
			blk[L] = 0
		}
		for L, s := range srcs {
			blk[L] = s.w[w0]
		}
		// Row L of blk is lane L's bits [64w0, 64w0+64); the transpose
		// turns bit-position rows into lane-major words.
		Transpose64(out[:], blk[:])
		lo := w0 * wordBits
		hi := lo + wordBits
		if hi > n {
			hi = n
		}
		copy(dst[lo:hi], out[:hi-lo])
	}
}

// UnsliceLanes scatters a lane-major map of n bit positions back into
// per-image vectors: dsts[L] is reset to n bits and gets bit i set iff
// src[i] has bit L set. src must hold at least n words. At most 64
// destinations are allowed; lanes beyond len(dsts) are dropped.
func UnsliceLanes(dsts []*Vec, src []uint64, n int) {
	if len(dsts) == 0 {
		return
	}
	if len(dsts) > wordBits {
		panic("bitvec: UnsliceLanes takes at most 64 lanes")
	}
	if len(src) < n {
		panic("bitvec: UnsliceLanes source too short")
	}
	for _, d := range dsts {
		d.Reset(n)
	}
	var blk, out [wordBits]uint64
	for w0 := 0; w0 < wordsFor(n); w0++ {
		lo := w0 * wordBits
		hi := lo + wordBits
		if hi > n {
			hi = n
		}
		for L := range blk {
			blk[L] = 0
		}
		copy(blk[:hi-lo], src[lo:hi])
		Transpose64(out[:], blk[:])
		for L, d := range dsts {
			d.w[w0] = out[L]
		}
	}
}
