package seicore

import (
	"fmt"
)

// CalibrationSample is one observation for split-threshold
// calibration: a binary receptive field and the digital reference bits
// the hardware should reproduce.
type CalibrationSample struct {
	In  []float64
	Ref []bool
}

// CalibrationConfig controls the dynamic-threshold optimization of
// Section 4.3 ("we use the Training Set to optimize the interval of
// dynamic threshold").
type CalibrationConfig struct {
	// GammaFactors are multiples of the auto-derived per-active-input
	// unit tried for the dynamic slope. 0 must be included so static
	// thresholds remain reachable.
	GammaFactors []float64
	// SearchDigital also searches the digital count threshold D over
	// 1..K instead of keeping the majority default.
	SearchDigital bool
}

// DefaultCalibrationConfig tries a small positive grid (the paper's
// compensation always lowers the threshold of blocks with fewer active
// inputs, i.e. γ ≥ 0) and searches D.
func DefaultCalibrationConfig() CalibrationConfig {
	return CalibrationConfig{
		GammaFactors:  []float64{0, 0.25, 0.5, 0.75, 1, 1.5, 2},
		SearchDigital: true,
	}
}

// CalibrationResult reports the calibration outcome.
type CalibrationResult struct {
	Gamma            float64
	DigitalThreshold int
	OnesMean         []float64
	// AgreementBefore/After are the fractions of output bits matching
	// the digital reference with static majority settings vs the chosen
	// settings.
	AgreementBefore, AgreementAfter float64
}

// Calibrate fits the layer's dynamic-threshold slope γ, per-block mean
// active counts, and digital count threshold D to maximize agreement
// with the digital reference bits over the samples. It mutates the
// layer in place and returns what was chosen. With K == 1 there is
// nothing to calibrate beyond the (exact) single threshold.
func (l *SEIConvLayer) Calibrate(samples []CalibrationSample, cfg CalibrationConfig) (CalibrationResult, error) {
	if len(samples) == 0 {
		return CalibrationResult{}, fmt.Errorf("seicore: no calibration samples")
	}
	if len(cfg.GammaFactors) == 0 {
		return CalibrationResult{}, fmt.Errorf("seicore: empty gamma grid")
	}
	type precomp struct {
		main [][]float64
		w0   []float64
		ones []int
		ref  []bool
	}
	pre := make([]precomp, len(samples))
	onesMean := make([]float64, l.K)
	totalOnes := 0.0
	for i, s := range samples {
		if len(s.In) != l.N || len(s.Ref) != l.M {
			return CalibrationResult{}, fmt.Errorf("seicore: sample %d has lengths %d/%d, want %d/%d",
				i, len(s.In), len(s.Ref), l.N, l.M)
		}
		main, w0, ones := l.BlockSums(s.In)
		pre[i] = precomp{main: main, w0: w0, ones: ones, ref: s.Ref}
		for b, o := range ones {
			onesMean[b] += float64(o)
			totalOnes += float64(o)
		}
	}
	for b := range onesMean {
		onesMean[b] /= float64(len(samples))
	}

	// γ unit: the layer threshold spread across the mean number of
	// active inputs — the natural scale of one input's contribution.
	meanOnes := totalOnes / float64(len(samples))
	gammaUnit := 0.0
	if meanOnes > 0 {
		gammaUnit = l.Threshold / meanOnes
	}

	agreement := func(gamma float64, d int) float64 {
		match := 0
		for i := range pre {
			p := &pre[i]
			for c := 0; c < l.M; c++ {
				fired := 0
				for b := 0; b < l.K; b++ {
					ref := l.BaseThr[b] + gamma*(float64(p.ones[b])-onesMean[b]) + p.w0[b]
					if p.main[b][c] > ref {
						fired++
					}
				}
				if (fired >= d) == p.ref[c] {
					match++
				}
			}
		}
		return float64(match) / float64(len(pre)*l.M)
	}

	defaultD := (l.K + 2) / 2
	before := agreement(0, defaultD)
	bestGamma, bestD, bestAcc := 0.0, defaultD, before
	dLo, dHi := defaultD, defaultD
	if cfg.SearchDigital {
		dLo, dHi = 1, l.K
	}
	for _, f := range cfg.GammaFactors {
		gamma := f * gammaUnit
		for d := dLo; d <= dHi; d++ {
			if acc := agreement(gamma, d); acc > bestAcc {
				bestGamma, bestD, bestAcc = gamma, d, acc
			}
		}
	}
	l.Gamma = bestGamma
	l.OnesMean = onesMean
	l.DigitalThreshold = bestD
	return CalibrationResult{
		Gamma:            bestGamma,
		DigitalThreshold: bestD,
		OnesMean:         onesMean,
		AgreementBefore:  before,
		AgreementAfter:   bestAcc,
	}, nil
}
