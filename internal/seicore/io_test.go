package seicore

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"sei/internal/nn"
)

func TestDesignSaveLoadRoundTrip(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.CalibImages = 20
	design, err := BuildSEI(f.q, f.train, cfg, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := design.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDesign(bytes.NewReader(buf.Bytes()), 1)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded design must predict bit-identically: it carries the
	// programmed effective weights and calibrated thresholds, not a
	// rebuild recipe.
	sub := f.test.Subset(150)
	for i, img := range sub.Images {
		if a, b := design.Predict(img), loaded.Predict(img); a != b {
			t.Fatalf("image %d: saved design predicts %d, loaded %d", i, a, b)
		}
	}
	if len(loaded.CalibResults) != len(design.CalibResults) {
		t.Fatalf("calibration results lost: %d vs %d", len(loaded.CalibResults), len(design.CalibResults))
	}
	for stage, want := range design.CalibResults {
		got, ok := loaded.CalibResults[stage]
		if !ok || got.Gamma != want.Gamma || got.DigitalThreshold != want.DigitalThreshold {
			t.Fatalf("stage %d calibration %+v, want %+v", stage, got, want)
		}
	}
}

func TestDesignSaveLoadNoisyModelDeterministicEval(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	cfg.Layer.Model.ReadNoiseSigma = 0.03
	design, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := design.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDesign(bytes.NewReader(buf.Bytes()), 99)
	if err != nil {
		t.Fatal(err)
	}
	// Dataset evaluation re-seeds noise per chunk through CloneForEval,
	// so saved and loaded noisy designs agree bit-identically for every
	// worker count despite their different base seeds.
	sub := f.test.Subset(120)
	want := nn.ClassifierErrorRateWorkers(design, sub, 1)
	for _, workers := range []int{1, 4} {
		if got := nn.ClassifierErrorRateWorkers(loaded, sub, workers); got != want {
			t.Fatalf("workers=%d: loaded noisy design error %v, want %v", workers, got, want)
		}
	}
}

func TestDesignSaveLoadFile(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	design, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "designs", "net2.design")
	if err := design.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDesignFile(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Predict(f.test.Images[0]) != design.Predict(f.test.Images[0]) {
		t.Fatal("file round trip changed a prediction")
	}
	if _, err := LoadDesignFile(filepath.Join(t.TempDir(), "missing.design"), 1); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

// TestDesignSaveLoadBoundTables pins version-2 persistence of the
// runtime activation-bound tables: a round-tripped design carries the
// exact suffix tables that were saved, and a version-1 snapshot (no
// tables) still loads and reproduces identical bounded behavior by
// rebuilding them from the effective weights.
func TestDesignSaveLoadBoundTables(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.Layer.MaxCrossbar = 16
	cfg.DynamicThreshold = false
	design, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(15)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := design.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDesign(bytes.NewReader(buf.Bytes()), 1)
	if err != nil {
		t.Fatal(err)
	}
	for li, l := range design.Convs {
		for bi := range l.blocks {
			want, got := l.blocks[bi].bnd, loaded.Convs[li].blocks[bi].bnd
			if (want == nil) != (got == nil) {
				t.Fatalf("conv %d block %d: bound table presence changed across round trip", li, bi)
			}
			if want != nil && !reflect.DeepEqual(want, got) {
				t.Fatalf("conv %d block %d: bound tables diverge across round trip", li, bi)
			}
		}
	}
	sub := f.test.Subset(60)
	wantLabels, wantCounters := evalBounded(t, design, sub, 2)

	// The loaded design's bounded run must match bit-for-bit — labels
	// and every counter.
	gotLabels, gotCounters := evalBounded(t, loaded, sub, 2)
	if !reflect.DeepEqual(gotLabels, wantLabels) {
		t.Error("loaded design's bounded labels diverge from the saved design")
	}
	if !reflect.DeepEqual(gotCounters, wantCounters) {
		t.Errorf("loaded design's bounded counters diverge:\n got  %v\n want %v", gotCounters, wantCounters)
	}

	// Version-1 compatibility: strip the tables, mark the snapshot v1,
	// and confirm the load rebuilds them with identical behavior.
	var snap designSnapshot
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	snap.Version = 1
	for ci := range snap.Convs {
		for bi := range snap.Convs[ci].Blocks {
			b := &snap.Convs[ci].Blocks[bi]
			b.BndStride, b.BndPos, b.BndNeg, b.BndAbs, b.BndSlack = 0, nil, nil, nil, nil
		}
	}
	var v1 bytes.Buffer
	if err := gob.NewEncoder(&v1).Encode(snap); err != nil {
		t.Fatal(err)
	}
	v1Loaded, err := LoadDesign(bytes.NewReader(v1.Bytes()), 1)
	if err != nil {
		t.Fatalf("version-1 snapshot rejected: %v", err)
	}
	v1Labels, v1Counters := evalBounded(t, v1Loaded, sub, 2)
	if !reflect.DeepEqual(v1Labels, wantLabels) || !reflect.DeepEqual(v1Counters, wantCounters) {
		t.Error("version-1 load (rebuilt tables) diverges from the saved design's bounded run")
	}
}

func TestLoadDesignRejectsGarbage(t *testing.T) {
	if _, err := LoadDesign(bytes.NewReader([]byte("not a gob stream")), 1); err == nil {
		t.Fatal("garbage accepted as a design")
	}
	// A valid gob of the wrong version must be rejected too.
	var buf bytes.Buffer
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	design, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	if err := design.Save(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadDesign(bytes.NewReader(truncated), 1); err == nil {
		t.Fatal("truncated design accepted")
	}
}
