package par

import "sei/internal/obs"

// Engine scheduling counters. Region/chunk/item counts are functions of
// (n, chunkSize) alone — the worker count only changes which goroutine
// runs a chunk — so instrumented totals are identical for every value
// of Workers.
const (
	// MetricRegions counts parallel regions entered (one per
	// ForEachChunkRec-family call with n > 0).
	MetricRegions = "par_regions"
	// MetricChunks counts work chunks scheduled across all regions.
	MetricChunks = "par_chunks"
	// MetricItems counts work items (indices) covered by those chunks.
	MetricItems = "par_items"
)

// recordRegion counts one parallel region on the calling goroutine,
// before any chunk runs.
func recordRegion(rec *obs.Recorder, n, chunkSize int) {
	if rec == nil || n <= 0 {
		return
	}
	rec.Counter(MetricRegions).Add(1)
	rec.Counter(MetricChunks).Add(int64(numChunks(n, chunkSize)))
	rec.Counter(MetricItems).Add(int64(n))
}

// RecordRegion counts one parallel region a caller runs inline — for
// hot paths that skip the closure-based helpers to stay
// allocation-free while keeping scheduling counters comparable to
// ForEachChunkRec for the same (n, chunkSize).
func RecordRegion(rec *obs.Recorder, n, chunkSize int) {
	recordRegion(rec, n, chunkSize)
}

// ForEachChunkRec is ForEachChunk plus engine scheduling counters on
// rec (nil rec records nothing).
func ForEachChunkRec(rec *obs.Recorder, workers, n, chunkSize int, fn func(Chunk)) {
	recordRegion(rec, n, chunkSize)
	ForEachChunk(workers, n, chunkSize, fn)
}

// ForEachRec is ForEach plus engine scheduling counters on rec.
func ForEachRec(rec *obs.Recorder, workers, n int, fn func(i int)) {
	recordRegion(rec, n, DefaultChunkSize)
	ForEach(workers, n, fn)
}

// MapChunksRec is MapChunks plus engine scheduling counters on rec.
func MapChunksRec[T any](rec *obs.Recorder, workers, n, chunkSize int, fn func(Chunk) T) []T {
	recordRegion(rec, n, chunkSize)
	return MapChunks(workers, n, chunkSize, fn)
}

// MapReduceRec is MapReduce plus engine scheduling counters on rec.
func MapReduceRec[T any](rec *obs.Recorder, workers, n, chunkSize int, mapper func(Chunk) T, reduce func(acc, v T) T, init T) T {
	recordRegion(rec, n, chunkSize)
	return MapReduce(workers, n, chunkSize, mapper, reduce, init)
}

// CountRec is Count plus engine scheduling counters on rec.
func CountRec(rec *obs.Recorder, workers, n int, pred func(i int) bool) int {
	recordRegion(rec, n, DefaultChunkSize)
	return Count(workers, n, pred)
}
