package bitvec

import (
	"math/rand"
	"testing"
)

// naive mirrors a Vec as []bool for cross-checking.
func toBools(v *Vec) []bool {
	out := make([]bool, v.Len())
	for i := range out {
		out[i] = v.Get(i)
	}
	return out
}

func TestSetGetUnset(t *testing.T) {
	v := New(131) // crosses two word boundaries
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 130} {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := v.OnesCount(); got != 8 {
		t.Fatalf("OnesCount = %d, want 8", got)
	}
	v.Unset(64)
	if v.Get(64) || v.OnesCount() != 7 {
		t.Fatalf("Unset(64) left bit set or wrong count %d", v.OnesCount())
	}
}

func TestResetReusesBuffer(t *testing.T) {
	v := New(500)
	for i := 0; i < 500; i += 3 {
		v.Set(i)
	}
	words := &v.Words()[0]
	v.Reset(400)
	if v.Len() != 400 || v.OnesCount() != 0 {
		t.Fatalf("Reset left len=%d ones=%d", v.Len(), v.OnesCount())
	}
	if &v.Words()[0] != words {
		t.Fatalf("Reset to a smaller size reallocated the word buffer")
	}
}

func TestNextSetAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		v := New(n)
		var want []int
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				v.Set(i)
				want = append(want, i)
			}
		}
		var got []int
		for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) {
			got = append(got, i)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: NextSet visited %d bits, want %d", n, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("n=%d: NextSet order got[%d]=%d, want %d", n, k, got[k], want[k])
			}
		}
	}
}

func TestNextSetBounds(t *testing.T) {
	v := New(70)
	v.Set(69)
	if got := v.NextSet(-5); got != 69 {
		t.Fatalf("NextSet(-5) = %d, want 69", got)
	}
	if got := v.NextSet(70); got != -1 {
		t.Fatalf("NextSet(len) = %d, want -1", got)
	}
	if got := v.NextSet(1000); got != -1 {
		t.Fatalf("NextSet past len = %d, want -1", got)
	}
}

func TestOr(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(3)
	a.Set(64)
	b.Set(64)
	b.Set(99)
	a.Or(b)
	for _, i := range []int{3, 64, 99} {
		if !a.Get(i) {
			t.Fatalf("bit %d missing after Or", i)
		}
	}
	if a.OnesCount() != 3 {
		t.Fatalf("OnesCount after Or = %d, want 3", a.OnesCount())
	}
}

func TestSetFloats(t *testing.T) {
	xs := []float64{0, 1, 0.5, 0, -2, 0}
	v := New(1)
	v.SetFloats(xs)
	if v.Len() != len(xs) {
		t.Fatalf("SetFloats len = %d, want %d", v.Len(), len(xs))
	}
	for i, x := range xs {
		if v.Get(i) != (x != 0) {
			t.Fatalf("bit %d = %v for value %v", i, v.Get(i), x)
		}
	}
}

// TestCopyRangeRandom cross-checks the word-blit against a naive
// bit-by-bit copy over random offsets, including unaligned,
// word-crossing and full-word cases.
func TestCopyRangeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		srcN := 1 + rng.Intn(400)
		dstN := 1 + rng.Intn(400)
		src, dst := New(srcN), New(dstN)
		for i := 0; i < srcN; i++ {
			if rng.Intn(2) == 0 {
				src.Set(i)
			}
		}
		for i := 0; i < dstN; i++ {
			if rng.Intn(2) == 0 {
				dst.Set(i)
			}
		}
		n := rng.Intn(min(srcN, dstN) + 1)
		srcOff := rng.Intn(srcN - n + 1)
		dstOff := rng.Intn(dstN - n + 1)

		want := toBools(dst)
		for i := 0; i < n; i++ {
			want[dstOff+i] = src.Get(srcOff + i)
		}
		CopyRange(dst, dstOff, src, srcOff, n)
		got := toBools(dst)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (srcOff=%d dstOff=%d n=%d): bit %d = %v, want %v",
					trial, srcOff, dstOff, n, i, got[i], want[i])
			}
		}
	}
}

func TestCopyRangeBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("out-of-bounds CopyRange did not panic")
		}
	}()
	CopyRange(New(10), 5, New(10), 0, 8)
}

func BenchmarkNextSetSparse(b *testing.B) {
	v := New(4096)
	for i := 0; i < 4096; i += 97 {
		v.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := v.NextSet(0); j >= 0; j = v.NextSet(j + 1) {
			_ = j
		}
	}
}

func BenchmarkCopyRange(b *testing.B) {
	src, dst := New(4096), New(4096)
	for i := 0; i < 4096; i += 3 {
		src.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CopyRange(dst, 7, src, 13, 4000)
	}
}

func TestSetAbove(t *testing.T) {
	xs := []float64{0, 1, 0.5, 0.5, -2, 0.50001}
	v := New(1)
	v.SetAbove(xs, 0.5)
	if v.Len() != len(xs) {
		t.Fatalf("SetAbove len = %d, want %d", v.Len(), len(xs))
	}
	for i, x := range xs {
		if v.Get(i) != (x > 0.5) {
			t.Fatalf("bit %d = %v for value %v at threshold 0.5", i, v.Get(i), x)
		}
	}
	// Re-packing at a higher threshold reuses the buffer and clears
	// stale bits.
	v.SetAbove(xs, 1)
	if got := v.OnesCount(); got != 0 {
		t.Fatalf("SetAbove(xs, 1) left %d bits set, want 0", got)
	}
}
