package tensor

import "fmt"

// MatVec computes y = A·x for a 2-D tensor A of shape [m,n] and a
// vector x of length n, returning a vector of length m.
func MatVec(a *Tensor, x []float64) []float64 {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatVec needs a 2-D matrix, got shape %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	if len(x) != n {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch: matrix %dx%d, vector %d", m, n, len(x)))
	}
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MatVecT computes y = Aᵀ·x for a 2-D tensor A of shape [m,n] and a
// vector x of length m, returning a vector of length n. It avoids
// materializing the transpose.
func MatVecT(a *Tensor, x []float64) []float64 {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatVecT needs a 2-D matrix, got shape %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	if len(x) != m {
		panic(fmt.Sprintf("tensor: MatVecT dimension mismatch: matrix %dx%d, vector %d", m, n, len(x)))
	}
	y := make([]float64, n)
	MatVecTInto(y, a, x)
	return y
}

// MatVecTInto computes y = Aᵀ·x into the caller-provided dst (len n),
// zeroing it first. The accumulation order is exactly MatVecT's —
// ascending rows, zero rows skipped — so results are bit-identical to
// MatVecT while letting tight loops reuse one output buffer.
func MatVecTInto(dst []float64, a *Tensor, x []float64) {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatVecTInto needs a 2-D matrix, got shape %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	if len(x) != m {
		panic(fmt.Sprintf("tensor: MatVecTInto dimension mismatch: matrix %dx%d, vector %d", m, n, len(x)))
	}
	if len(dst) != n {
		panic(fmt.Sprintf("tensor: MatVecTInto destination length %d, want %d", len(dst), n))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.data[i*n : (i+1)*n]
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// MatVecInto computes y = A·x into the caller-provided dst (len m).
// Every element is overwritten with the same full ascending fold as
// MatVec, so results are bit-identical while tight loops reuse one
// output buffer.
func MatVecInto(dst []float64, a *Tensor, x []float64) {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatVecInto needs a 2-D matrix, got shape %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	if len(x) != n {
		panic(fmt.Sprintf("tensor: MatVecInto dimension mismatch: matrix %dx%d, vector %d", m, n, len(x)))
	}
	if len(dst) != m {
		panic(fmt.Sprintf("tensor: MatVecInto destination length %d, want %d", len(dst), m))
	}
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MatMul computes C = A·B for 2-D tensors A [m,k] and B [k,n],
// returning a new [m,n] tensor. The kernel iterates in ikj order so
// the inner loop walks both B and C contiguously.
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D matrices, got %v and %v", a.shape, b.shape))
	}
	c := New(a.shape[0], b.shape[1])
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes C = A·B into the caller-provided dst ([m,n]),
// zeroing it first. The accumulation is exactly MatMul's ikj kernel
// (zero A entries skipped), so results are bit-identical to MatMul
// while letting tight loops reuse one product buffer.
func MatMulInto(dst, a, b *Tensor) {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulInto needs 2-D matrices, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulInto inner dimension mismatch: %dx%d by %dx%d", m, k, k2, n))
	}
	if dst.Dims() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto destination shape %v, want [%d %d]", dst.shape, m, n))
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		crow := dst.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// Transpose2D returns a new tensor that is the transpose of a 2-D
// tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D needs a 2-D matrix, got %v", a.shape))
	}
	t := New(a.shape[1], a.shape[0])
	Transpose2DInto(t, a)
	return t
}

// Transpose2DInto writes the transpose of 2-D a into dst ([n,m]),
// overwriting every element.
func Transpose2DInto(dst, a *Tensor) {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2DInto needs a 2-D matrix, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	if dst.Dims() != 2 || dst.shape[0] != n || dst.shape[1] != m {
		panic(fmt.Sprintf("tensor: Transpose2DInto destination shape %v, want [%d %d]", dst.shape, n, m))
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			dst.data[j*m+i] = a.data[i*n+j]
		}
	}
}

// Im2Col unrolls a [channels, height, width] input into a matrix of
// shape [outH*outW, channels*kh*kw] for valid (no-padding) convolution
// with the given kernel size and stride. Row p of the result is the
// flattened receptive field of output position p (row-major over the
// output map); the receptive field is flattened channel-major, then
// row, then column, matching the weight layout used by nn.Conv2D.
func Im2Col(in *Tensor, kh, kw, stride int) *Tensor {
	if in.Dims() != 3 {
		panic(fmt.Sprintf("tensor: Im2Col needs a 3-D [c,h,w] input, got %v", in.shape))
	}
	if kh <= 0 || kw <= 0 || stride <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col invalid kernel %dx%d stride %d", kh, kw, stride))
	}
	c, h, w := in.shape[0], in.shape[1], in.shape[2]
	if kh > h || kw > w {
		panic(fmt.Sprintf("tensor: Im2Col kernel %dx%d larger than input %dx%d", kh, kw, h, w))
	}
	outH := (h-kh)/stride + 1
	outW := (w-kw)/stride + 1
	cols := New(outH*outW, c*kh*kw)
	Im2ColInto(cols, in, kh, kw, stride)
	return cols
}

// Im2ColInto is Im2Col into the caller-provided dst, which must have
// shape [outH*outW, c*kh*kw]. Every element is overwritten in the same
// channel-major copy order, so results are bit-identical to Im2Col
// while letting tight loops reuse one unroll buffer.
func Im2ColInto(dst, in *Tensor, kh, kw, stride int) {
	if in.Dims() != 3 {
		panic(fmt.Sprintf("tensor: Im2ColInto needs a 3-D [c,h,w] input, got %v", in.shape))
	}
	if kh <= 0 || kw <= 0 || stride <= 0 {
		panic(fmt.Sprintf("tensor: Im2ColInto invalid kernel %dx%d stride %d", kh, kw, stride))
	}
	c, h, w := in.shape[0], in.shape[1], in.shape[2]
	if kh > h || kw > w {
		panic(fmt.Sprintf("tensor: Im2ColInto kernel %dx%d larger than input %dx%d", kh, kw, h, w))
	}
	outH := (h-kh)/stride + 1
	outW := (w-kw)/stride + 1
	if dst.Dims() != 2 || dst.shape[0] != outH*outW || dst.shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: Im2ColInto destination shape %v, want [%d %d]", dst.shape, outH*outW, c*kh*kw))
	}
	p := 0
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			row := dst.data[p*c*kh*kw : (p+1)*c*kh*kw]
			d := 0
			for ch := 0; ch < c; ch++ {
				base := ch * h * w
				for ky := 0; ky < kh; ky++ {
					src := base + (oy*stride+ky)*w + ox*stride
					copy(row[d:d+kw], in.data[src:src+kw])
					d += kw
				}
			}
			p++
		}
	}
}

// Col2Im scatter-adds a gradient matrix of shape
// [outH*outW, channels*kh*kw] (as produced by Im2Col) back into an
// input-shaped [channels, height, width] tensor. It is the adjoint of
// Im2Col and is used by convolution backprop.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride int) *Tensor {
	outH := (h-kh)/stride + 1
	outW := (w-kw)/stride + 1
	if cols.Dims() != 2 || cols.shape[0] != outH*outW || cols.shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: Col2Im shape %v does not match [%d,%d]", cols.shape, outH*outW, c*kh*kw))
	}
	out := New(c, h, w)
	p := 0
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			src := cols.data[p*c*kh*kw : (p+1)*c*kh*kw]
			s := 0
			for ch := 0; ch < c; ch++ {
				base := ch * h * w
				for ky := 0; ky < kh; ky++ {
					dst := base + (oy*stride+ky)*w + ox*stride
					for kx := 0; kx < kw; kx++ {
						out.data[dst+kx] += src[s]
						s++
					}
				}
			}
			p++
		}
	}
	return out
}
