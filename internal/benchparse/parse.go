// Package benchparse parses `go test -bench` text output into a
// machine-readable report: one entry per benchmark line with every
// value/unit pair (ns/op, B/op, allocs/op, custom b.ReportMetric units
// such as images/sec), the goos/goarch/pkg/cpu header, and derived
// cross-benchmark ratios for the repo's known baseline/optimized
// pairs. It is the parser behind cmd/seibench (the benchmark front
// door) and produced the recorded bench-reports/history/BENCH_PR*.json
// evidence files of the early optimization PRs.
package benchparse

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line: the benchmark name (stripped of
// the "Benchmark" prefix and the -GOMAXPROCS suffix), its iteration
// count, and every value/unit pair the line reported — ns/op, B/op,
// allocs/op and any custom b.ReportMetric units such as images/sec.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the full JSON document: the environment header lines go
// test prints (goos/goarch/pkg/cpu), the benchmarks, and derived
// cross-benchmark numbers.
type Report struct {
	GOOS       string             `json:"goos,omitempty"`
	GOARCH     string             `json:"goarch,omitempty"`
	Pkg        string             `json:"pkg,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived,omitempty"`
}

// Parse reads `go test -bench` output and extracts the report.
// Non-benchmark lines (PASS, ok, test log output) are skipped, so the
// full `go test` stream can be piped in unfiltered.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	rep.derive()
	return rep, nil
}

// parseLine parses one result line:
//
//	BenchmarkName-8   1234   5678 ns/op   90 images/sec   0 B/op   0 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// derive adds cross-benchmark ratios when both members of a known
// baseline/optimized pair are present: the fast-over-float speedup of
// the single-image SEI predict pair, the bit-sliced batch path's
// images/sec multiple over the per-image fast path, and the
// naive-over-incremental speedup and allocation reduction of the
// threshold-search pair.
func (r *Report) derive() {
	byName := map[string]*Benchmark{}
	for i := range r.Benchmarks {
		if _, ok := byName[r.Benchmarks[i].Name]; !ok {
			byName[r.Benchmarks[i].Name] = &r.Benchmarks[i]
		}
	}
	ratio := func(key, slow, fast, unit string) {
		s, f := byName[slow], byName[fast]
		if s == nil || f == nil {
			return
		}
		sv, sok := s.Metrics[unit]
		fv, fok := f.Metrics[unit]
		if sok && fok && fv > 0 {
			if r.Derived == nil {
				r.Derived = map[string]float64{}
			}
			r.Derived[key] = sv / fv
		}
	}
	ratio("sei_predict_speedup_x", "SEIPredictFloat", "SEIPredict", "ns/op")
	ratio("sei_batch_sliced_speedup_x", "SEIPredictBatchSliced", "SEIPredict", "images/sec")
	ratio("search_thresholds_speedup_x", "SearchThresholdsNaive", "SearchThresholds", "ns/op")
	ratio("search_thresholds_alloc_reduction_x", "SearchThresholdsNaive", "SearchThresholds", "allocs/op")
}
