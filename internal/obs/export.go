package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Report is the machine-readable form of one run's instrumentation —
// the schema behind `-metrics <path>` (README documents it with jq
// examples).
type Report struct {
	Name        string                     `json:"name,omitempty"`
	StartedAt   time.Time                  `json:"started_at"`
	WallSeconds float64                    `json:"wall_seconds"`
	Spans       []SpanReport               `json:"spans,omitempty"`
	Counters    map[string]int64           `json:"counters"`
	Gauges      map[string]float64         `json:"gauges,omitempty"`
	Histograms  map[string]HistogramReport `json:"histograms,omitempty"`
	Skipped     []Skipped                  `json:"skipped,omitempty"`
}

// SpanReport is one phase span with wall time and throughput.
type SpanReport struct {
	Name          string       `json:"name"`
	Seconds       float64      `json:"seconds"`
	Samples       int64        `json:"samples,omitempty"`
	SamplesPerSec float64      `json:"samples_per_sec,omitempty"`
	Children      []SpanReport `json:"children,omitempty"`
}

// HistogramReport is one histogram's buckets; Counts has one entry per
// upper bound plus a final +Inf bucket.
type HistogramReport struct {
	UpperBounds []float64 `json:"upper_bounds"`
	Counts      []int64   `json:"counts"`
	Count       int64     `json:"count"`
	Sum         float64   `json:"sum"`
}

// Quantile estimates the q-th quantile from the snapshotted buckets
// with the same deterministic interpolation as Histogram.Quantile, so
// quantiles can be re-derived from persisted JSON run reports.
func (h HistogramReport) Quantile(q float64) float64 {
	return quantile(h.UpperBounds, h.Counts, q)
}

// Report snapshots the recorder. Unended spans report their wall time
// so far.
func (r *Recorder) Report(name string) Report {
	if r == nil {
		return Report{Name: name, Counters: map[string]int64{}}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	rep := Report{
		Name:        name,
		StartedAt:   r.start,
		WallSeconds: now.Sub(r.start).Seconds(),
		Counters:    make(map[string]int64, len(r.counters)),
		Skipped:     append([]Skipped(nil), r.skipped...),
	}
	for _, sp := range r.root.children {
		rep.Spans = append(rep.Spans, spanReport(sp, now))
	}
	for name, c := range r.counters {
		rep.Counters[name] = c.Value()
	}
	if len(r.gauges) > 0 {
		rep.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			rep.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		rep.Histograms = make(map[string]HistogramReport, len(r.hists))
		for name, h := range r.hists {
			rep.Histograms[name] = HistogramReport{
				UpperBounds: h.Bounds(),
				Counts:      h.Counts(),
				Count:       h.Count(),
				Sum:         h.Sum(),
			}
		}
	}
	return rep
}

func spanReport(s *Span, now time.Time) SpanReport {
	d := s.durationLocked(now)
	sr := SpanReport{
		Name:    s.Name,
		Seconds: d.Seconds(),
		Samples: s.Samples(),
	}
	if sr.Samples > 0 && d > 0 {
		sr.SamplesPerSec = float64(sr.Samples) / d.Seconds()
	}
	for _, c := range s.children {
		sr.Children = append(sr.Children, spanReport(c, now))
	}
	return sr
}

// WriteJSON writes the run report as indented JSON.
func (r *Recorder) WriteJSON(w io.Writer, name string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Report(name))
}

// WriteText writes the human-readable form: the span tree with wall
// times and throughput, then counters, gauges, histograms and skipped
// points.
func (r *Recorder) WriteText(w io.Writer) {
	rep := r.Report("")
	fmt.Fprintf(w, "run: %.3fs wall\n", rep.WallSeconds)
	if len(rep.Spans) > 0 {
		fmt.Fprintln(w, "spans:")
		for _, sp := range rep.Spans {
			writeSpanText(w, sp, 1)
		}
	}
	if len(rep.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, name := range sortedNames(rep.Counters) {
			fmt.Fprintf(w, "  %-28s %d\n", name, rep.Counters[name])
		}
	}
	if len(rep.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, name := range sortedNames(rep.Gauges) {
			fmt.Fprintf(w, "  %-28s %g\n", name, rep.Gauges[name])
		}
	}
	if len(rep.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		for _, name := range sortedNames(rep.Histograms) {
			h := rep.Histograms[name]
			fmt.Fprintf(w, "  %s: n=%d sum=%g\n", name, h.Count, h.Sum)
			for i, c := range h.Counts {
				if c == 0 {
					continue
				}
				if i < len(h.UpperBounds) {
					fmt.Fprintf(w, "    le %g: %d\n", h.UpperBounds[i], c)
				} else {
					fmt.Fprintf(w, "    le +Inf: %d\n", c)
				}
			}
		}
	}
	if len(rep.Skipped) > 0 {
		fmt.Fprintln(w, "skipped:")
		for _, s := range rep.Skipped {
			fmt.Fprintf(w, "  %s: %s\n", s.Point, s.Reason)
		}
	}
}

func writeSpanText(w io.Writer, sp SpanReport, depth int) {
	indent := strings.Repeat("  ", depth)
	line := fmt.Sprintf("%s%s %.3fs", indent, sp.Name, sp.Seconds)
	if sp.Samples > 0 {
		line += fmt.Sprintf(" (%d samples", sp.Samples)
		if sp.SamplesPerSec > 0 {
			line += fmt.Sprintf(", %.0f/s", sp.SamplesPerSec)
		}
		line += ")"
	}
	fmt.Fprintln(w, line)
	for _, c := range sp.Children {
		writeSpanText(w, c, depth+1)
	}
}

// WritePrometheus writes counters, gauges and histograms in the
// Prometheus text exposition format, metric names prefixed "sei_".
// Spans and skip details are report-only (scrape targets want
// aggregates, not trees).
func (r *Recorder) WritePrometheus(w io.Writer) {
	rep := r.Report("")
	for _, name := range sortedNames(rep.Counters) {
		fmt.Fprintf(w, "# TYPE sei_%s counter\n", name)
		fmt.Fprintf(w, "sei_%s %d\n", name, rep.Counters[name])
	}
	for _, name := range sortedNames(rep.Gauges) {
		fmt.Fprintf(w, "# TYPE sei_%s gauge\n", name)
		fmt.Fprintf(w, "sei_%s %g\n", name, rep.Gauges[name])
	}
	for _, name := range sortedNames(rep.Histograms) {
		h := rep.Histograms[name]
		fmt.Fprintf(w, "# TYPE sei_%s histogram\n", name)
		cum := int64(0)
		for i, c := range h.Counts {
			cum += c
			if i < len(h.UpperBounds) {
				fmt.Fprintf(w, "sei_%s_bucket{le=\"%g\"} %d\n", name, h.UpperBounds[i], cum)
			} else {
				fmt.Fprintf(w, "sei_%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			}
		}
		fmt.Fprintf(w, "sei_%s_sum %g\n", name, h.Sum)
		fmt.Fprintf(w, "sei_%s_count %d\n", name, h.Count)
	}
}
