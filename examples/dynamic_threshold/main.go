// Dynamic threshold / unipolar devices: Section 4.2 of the paper. Some
// RRAM devices cannot take negative "input" voltages, so signed
// weights cannot use the ±1 extra-port trick. The linear-transform
// mapping stores w* = (w − wmin)/k as positive conductances and an
// input-selected dynamic-threshold column subtracts the bias
// k·Σ_{in=1} w0 at the sense amplifier (Equ. 9, Fig. 4).
//
// This example shows that the unipolar realization classifies
// equivalently to the bipolar one, at half the cells per weight.
//
// Run with: go run ./examples/dynamic_threshold
package main

import (
	"fmt"
	"log"
	"os"

	"sei"
)

func main() {
	train, test := sei.SyntheticSplit(2000, 400, 3)
	fmt.Fprintln(os.Stderr, "training and quantizing network 3...")
	net := sei.TrainTableNetwork(3, train, 4, 11)
	q, err := sei.Quantize(net, train)
	if err != nil {
		log.Fatal(err)
	}
	quantErr := sei.EvaluateQuantized(q, test)

	build := func(unipolar bool) float64 {
		opt := sei.DefaultBuildOptions()
		opt.Unipolar = unipolar
		d, err := sei.BuildDesign(q, train, opt)
		if err != nil {
			log.Fatal(err)
		}
		return sei.EvaluateDesign(d, test)
	}

	fmt.Println("Signed weights on SEI crossbars (Network 3)")
	fmt.Printf("  digital 1-bit reference                    %6.2f%%\n", 100*quantErr)
	fmt.Printf("  bipolar extra port (4 cells/weight)        %6.2f%%\n", 100*build(false))
	fmt.Printf("  unipolar + dynamic threshold (2 cells/wt)  %6.2f%%\n", 100*build(true))
	fmt.Println("\nThe unipolar mapping needs no negative input voltages — the")
	fmt.Println("dynamic-threshold column cancels the +w0 bias per active input —")
	fmt.Println("and it halves the physical rows per logical weight.")
}
