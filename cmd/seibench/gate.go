package main

import (
	"fmt"
	"io"
	"sort"
)

// direction says which way a metric improves.
type direction int8

const (
	higherIsBetter direction = 1
	lowerIsBetter  direction = -1
)

// headlineMetric is one gated metric: a key into Report.Metrics plus
// the direction a change must move to count as a regression.
type headlineMetric struct {
	Name string
	Dir  direction
	Unit string
}

// headlineMetrics are the trend-gated numbers: batch throughput,
// single-image latency and allocation count, calibration search cost
// and allocations, tail latency under open-loop load, counter-derived
// energy per inference (bounded mode), and the bounded run's skip
// rate. Everything else in Report.Metrics is informational. Reports
// from before a metric existed simply lack the key, and the gate's
// missing⇒warn rule phases each new metric in: warn-only on the first
// run against an old baseline, gated thereafter.
var headlineMetrics = []headlineMetric{
	{"images_per_sec", higherIsBetter, "images/sec"},
	{"predict_ns_per_op", lowerIsBetter, "ns/op"},
	{"predict_allocs_per_op", lowerIsBetter, "allocs/op"},
	{"search_ns_per_op", lowerIsBetter, "ns/op"},
	{"search_allocs_per_op", lowerIsBetter, "allocs/op"},
	{"serve_p99_ms", lowerIsBetter, "ms"},
	{"pj_per_inference", lowerIsBetter, "pJ"},
	{"sei_skip_rate", higherIsBetter, "ratio"},
	{"noisy_images_per_sec", higherIsBetter, "images/sec"},
	{"sei_noisy_speedup_x", higherIsBetter, "x"},
	{"pj_per_inference_noisy", lowerIsBetter, "pJ"},
}

// findingStatus classifies one metric's base→current movement.
type findingStatus string

const (
	statusOK        findingStatus = "ok"
	statusImproved  findingStatus = "improved"
	statusRegressed findingStatus = "regressed"
	// statusMissing means the metric is absent from one side (suite not
	// run, older schema). Missing data is a warning, not a regression —
	// failing the gate on it would punish partial runs.
	statusMissing findingStatus = "missing"
)

// finding is one gated metric's verdict.
type finding struct {
	Metric   string
	Unit     string
	Base     float64
	Cur      float64
	DeltaPct float64 // signed raw change, (cur-base)/base*100
	Status   findingStatus
}

// evaluateGate scores cur against base for every headline metric.
// A metric regresses only when it moves in its bad direction by
// strictly more than tolerancePct percent of the baseline value: the
// gate is ">10 %", so a change of exactly the tolerance passes. The
// comparison is done in multiplicative form (worsening > base·tol/100)
// rather than on a computed percentage, so the boundary is exact and
// free of the rounding a divide-then-compare would introduce.
func evaluateGate(base, cur *Report, tolerancePct float64) []finding {
	findings := make([]finding, 0, len(headlineMetrics))
	for _, hm := range headlineMetrics {
		f := finding{Metric: hm.Name, Unit: hm.Unit}
		bv, bok := base.Metrics[hm.Name]
		cv, cok := cur.Metrics[hm.Name]
		f.Base, f.Cur = bv, cv
		if !bok || !cok {
			f.Status = statusMissing
			findings = append(findings, f)
			continue
		}
		if bv != 0 {
			f.DeltaPct = (cv - bv) / bv * 100
		}
		worsening := cv - bv // lower-is-better: growth is bad
		if hm.Dir == higherIsBetter {
			worsening = bv - cv
		}
		allowance := bv * tolerancePct / 100
		if allowance < 0 {
			allowance = -allowance
		}
		switch {
		case worsening > allowance:
			f.Status = statusRegressed
		case worsening < 0:
			f.Status = statusImproved
		default:
			f.Status = statusOK
		}
		findings = append(findings, f)
	}
	return findings
}

// regressions counts gate failures in a finding set.
func regressions(findings []finding) int {
	n := 0
	for _, f := range findings {
		if f.Status == statusRegressed {
			n++
		}
	}
	return n
}

// describe renders one report's identity for compare/gate headers.
func describe(rep *Report) string {
	mode := "full"
	if rep.Quick {
		mode = "quick"
	}
	name := rep.path
	if name == "" {
		name = "(unsaved)"
	}
	return fmt.Sprintf("%s  (%s, %s, %s)", name, rep.StartedAt.Format("2006-01-02 15:04"), rep.GitSHA, mode)
}

// printFindings writes the gate/compare table: headline metrics first
// with their verdicts, then the remaining shared metrics for context.
func printFindings(w io.Writer, base, cur *Report, findings []finding) {
	fmt.Fprintf(w, "baseline: %s\n", describe(base))
	fmt.Fprintf(w, "current:  %s\n\n", describe(cur))
	fmt.Fprintf(w, "%-22s %14s %14s %9s  %s\n", "headline metric", "baseline", "current", "delta", "status")
	headline := map[string]bool{}
	for _, f := range findings {
		headline[f.Metric] = true
		if f.Status == statusMissing {
			side := "current"
			if _, ok := base.Metrics[f.Metric]; !ok {
				side = "baseline"
			}
			fmt.Fprintf(w, "%-22s %14s %14s %9s  %s (absent from %s report)\n",
				f.Metric, "-", "-", "-", f.Status, side)
			continue
		}
		fmt.Fprintf(w, "%-22s %14.1f %14.1f %+8.1f%%  %s\n", f.Metric, f.Base, f.Cur, f.DeltaPct, f.Status)
	}
	var rest []string
	for name := range cur.Metrics {
		if _, shared := base.Metrics[name]; shared && !headline[name] {
			rest = append(rest, name)
		}
	}
	if len(rest) == 0 {
		return
	}
	sort.Strings(rest)
	fmt.Fprintf(w, "\n%-22s %14s %14s %9s\n", "other metric", "baseline", "current", "delta")
	for _, name := range rest {
		bv, cv := base.Metrics[name], cur.Metrics[name]
		delta := 0.0
		if bv != 0 {
			delta = (cv - bv) / bv * 100
		}
		fmt.Fprintf(w, "%-22s %14.1f %14.1f %+8.1f%%\n", name, bv, cv, delta)
	}
}
