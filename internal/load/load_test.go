package load

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func TestScheduleDeterministicAndOpenLoop(t *testing.T) {
	cfg := Config{Rate: 1000, Requests: 500, Seed: 7}
	a, b := Schedule(cfg), Schedule(cfg)
	if len(a) != 500 {
		t.Fatalf("schedule length %d, want 500", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offset %d differs between equal-seed schedules: %v vs %v", i, a[i], b[i])
		}
	}
	if a[0] != 0 {
		t.Errorf("first arrival at %v, want 0", a[0])
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("schedule not monotone at %d: %v < %v", i, a[i], a[i-1])
		}
	}
	// Poisson arrivals at 1000/s: 500 requests span ~0.5 s. Allow wide
	// stochastic slack — the point is the scale, not the exact value.
	span := a[len(a)-1].Seconds()
	if span < 0.25 || span > 1.0 {
		t.Errorf("500 arrivals at 1000/s span %.3fs, want ≈0.5s", span)
	}
	if c := Schedule(Config{Rate: 1000, Requests: 500, Seed: 8}); c[100] == a[100] {
		t.Error("different seeds produced an identical schedule offset")
	}
}

func TestScheduleBurstClustersArrivals(t *testing.T) {
	cfg := Config{Rate: 1000, Requests: 512, Seed: 7, Burst: 16}
	a := Schedule(cfg)
	if len(a) != 512 {
		t.Fatalf("schedule length %d, want 512", len(a))
	}
	// Every 16-request group shares one schedule point; distinct groups
	// get distinct points.
	for i := 0; i < len(a); i += 16 {
		for k := i; k < i+16; k++ {
			if a[k] != a[i] {
				t.Fatalf("burst member %d at %v, group point %v", k, a[k], a[i])
			}
		}
		if i > 0 && a[i] == a[i-16] {
			t.Fatalf("groups %d and %d share a schedule point", i/16-1, i/16)
		}
	}
	// The aggregate offered rate stays ≈Rate: 512 requests at 1000/s
	// span ≈0.5s regardless of burst size.
	span := a[len(a)-1].Seconds()
	if span < 0.2 || span > 1.2 {
		t.Errorf("512 burst-16 arrivals at 1000/s span %.3fs, want ≈0.5s", span)
	}
	// A ragged tail (Requests not a multiple of Burst) still covers
	// every request.
	ragged := Schedule(Config{Rate: 1000, Requests: 50, Seed: 3, Burst: 16})
	if len(ragged) != 50 {
		t.Fatalf("ragged schedule length %d, want 50", len(ragged))
	}
}

func TestRunRecordsLatencyQuantiles(t *testing.T) {
	cfg := Config{Rate: 2000, Requests: 200, Seed: 1}
	res, err := Run(context.Background(), cfg, func(context.Context, int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 200 || res.Errors != 0 || res.Dropped != 0 || res.Canceled != 0 {
		t.Fatalf("sent/errors/dropped/canceled = %d/%d/%d/%d, want 200/0/0/0",
			res.Sent, res.Errors, res.Dropped, res.Canceled)
	}
	if res.Latency.Count != 200 {
		t.Fatalf("latency histogram count = %d, want 200", res.Latency.Count)
	}
	for name, q := range map[string]float64{"p50": res.P50, "p99": res.P99, "p999": res.P999} {
		if math.IsNaN(q) || q < 0.0005 || q > 1 {
			t.Errorf("%s = %g, want ≈1ms-scale latency", name, q)
		}
	}
	if res.P50 > res.P99 || res.P99 > res.P999 {
		t.Errorf("quantiles not monotone: p50 %g, p99 %g, p999 %g", res.P50, res.P99, res.P999)
	}
	if res.MeanLatency < 0.0005 || res.MeanLatency > 0.5 {
		t.Errorf("mean latency = %g, want ≈1ms", res.MeanLatency)
	}
	if res.AchievedRate <= 0 {
		t.Errorf("achieved rate = %g, want > 0", res.AchievedRate)
	}
	// Snapshot and live quantiles agree: reports can re-derive them.
	if got := res.Latency.Quantile(0.99); got != res.P99 {
		t.Errorf("snapshot p99 %g != run p99 %g", got, res.P99)
	}
}

// TestRunAchievedRateExcludesErrors is the regression test for the
// AchievedRate accounting: only successful completions count as
// achieved throughput, and Sent still counts every issued request.
func TestRunAchievedRateExcludesErrors(t *testing.T) {
	var n atomic.Int64
	cfg := Config{Rate: 5000, Requests: 100, Seed: 2}
	res, err := Run(context.Background(), cfg, func(context.Context, int) error {
		if n.Add(1)%2 == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 100 || res.Errors != 50 {
		t.Fatalf("sent/errors = %d/%d, want 100/50", res.Sent, res.Errors)
	}
	if res.Latency.Count != 50 {
		t.Fatalf("histogram count = %d, want 50 (errors excluded)", res.Latency.Count)
	}
	want := float64(res.Sent-res.Errors) / res.Elapsed.Seconds()
	if res.AchievedRate != want {
		t.Fatalf("achieved rate %g, want successes/elapsed = %g", res.AchievedRate, want)
	}
	// Sanity: a 50%-error run must achieve roughly half its issue rate.
	issueRate := float64(res.Sent) / res.Elapsed.Seconds()
	if res.AchievedRate > 0.6*issueRate {
		t.Errorf("achieved rate %g vs issue rate %g: errors not excluded", res.AchievedRate, issueRate)
	}
}

// TestRunCountsSentAtIssueTime is the regression test for the Sent
// accounting: requests still in flight are already "sent" — the doc
// says "requests actually issued", not "completed".
func TestRunCountsSentAtIssueTime(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 64)
	cfg := Config{Rate: 100000, Requests: 8, Seed: 5}
	done := make(chan *Result, 1)
	go func() {
		res, err := Run(context.Background(), cfg, func(context.Context, int) error {
			started <- struct{}{}
			<-release // every request is in flight, none completed
			return nil
		})
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	for i := 0; i < 8; i++ {
		<-started // all 8 issued while all 8 are incomplete
	}
	close(release)
	res := <-done
	if res == nil {
		t.Fatal("run failed")
	}
	if res.Sent != 8 || res.Errors != 0 {
		t.Fatalf("sent/errors = %d/%d, want 8/0", res.Sent, res.Errors)
	}
}

func TestRunMaxInFlightDropsInsteadOfDelaying(t *testing.T) {
	block := make(chan struct{})
	cfg := Config{Rate: 100000, Requests: 50, Seed: 3, MaxInFlight: 4}
	done := make(chan *Result, 1)
	go func() {
		res, err := Run(context.Background(), cfg, func(context.Context, int) error {
			<-block
			return nil
		})
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	time.Sleep(50 * time.Millisecond) // let the schedule drain into the cap
	close(block)
	res := <-done
	if res == nil {
		t.Fatal("run failed")
	}
	if res.Sent+res.Dropped != 50 {
		t.Fatalf("sent %d + dropped %d != 50", res.Sent, res.Dropped)
	}
	if res.Dropped == 0 {
		t.Error("expected drops with 4 in-flight slots against a blocked server")
	}
	if res.Canceled != 0 {
		t.Errorf("canceled = %d, want 0 (nothing canceled the run)", res.Canceled)
	}
}

// TestRunContextCancelCountsCanceledNotDropped pins the split between
// the two shedding causes: a canceled run context must not masquerade
// as MaxInFlight pressure.
func TestRunContextCancelCountsCanceledNotDropped(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{Rate: 100, Requests: 100, Seed: 4, MaxInFlight: 64} // ~1s schedule
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	res, err := Run(ctx, cfg, func(context.Context, int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Canceled == 0 {
		t.Error("expected canceled tail to be counted as Canceled")
	}
	if res.Dropped != 0 {
		t.Errorf("dropped = %d, want 0 (cap never hit; cancellation is not MaxInFlight pressure)", res.Dropped)
	}
	if res.Sent+res.Dropped+res.Canceled != 100 {
		t.Fatalf("sent %d + dropped %d + canceled %d != 100", res.Sent, res.Dropped, res.Canceled)
	}
}

// TestRunPassesScheduleIndex pins that do receives each request's
// schedule index exactly once — the hook request mixes key off.
func TestRunPassesScheduleIndex(t *testing.T) {
	seen := make([]atomic.Int64, 40)
	cfg := Config{Rate: 100000, Requests: 40, Seed: 6}
	res, err := Run(context.Background(), cfg, func(_ context.Context, i int) error {
		seen[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 40 {
		t.Fatalf("sent = %d, want 40", res.Sent)
	}
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("index %d seen %d times, want 1", i, got)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{
		{Rate: 0, Requests: 10},
		{Rate: -1, Requests: 10},
		{Rate: 100, Requests: 0},
		{Rate: 100, Requests: 10, MaxInFlight: -1},
		{Rate: 100, Requests: 10, Burst: -1},
	} {
		if _, err := Run(context.Background(), cfg, func(context.Context, int) error { return nil }); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
	if _, err := Run(context.Background(), Config{Rate: 1, Requests: 1}, nil); err == nil {
		t.Error("nil do accepted, want error")
	}
}
