package seicore

import (
	"fmt"
	"math/bits"
	"math/rand"

	"sei/internal/bitvec"
	"sei/internal/obs"
	"sei/internal/rram"
	"sei/internal/tensor"
)

// SignedMode selects how signed weights are realized in a single SEI
// crossbar (Section 4.1 vs 4.2).
type SignedMode int

const (
	// ModeBipolar uses positive and negative voltages on the extra
	// port: four cells per weight with coefficients ±2⁴ and ±1.
	ModeBipolar SignedMode = iota
	// ModeUnipolarDynamic is for devices that cannot take negative
	// inputs: weights are linearly mapped to positive values (two cells
	// per weight) and an input-selected dynamic-threshold column
	// subtracts the bias (Section 4.2, Fig. 4).
	ModeUnipolarDynamic
)

// CellsPerWeight returns how many physical rows one logical input
// occupies in this mode with the paper's default 4-bit device
// (ceil(8/4) = 2 slices). For other device precisions use
// CellsPerWeightFor.
func (m SignedMode) CellsPerWeight() int { return m.CellsPerWeightFor(4) }

// CellsPerWeightFor returns physical rows per logical input for a
// device with the given bits per cell: ceil(8/bits) slices, doubled
// for the bipolar positive/negative pair.
func (m SignedMode) CellsPerWeightFor(deviceBits int) int {
	n := rram.SliceCount(rram.WeightBits, deviceBits)
	if m == ModeUnipolarDynamic {
		return n
	}
	return 2 * n
}

func (m SignedMode) String() string {
	if m == ModeUnipolarDynamic {
		return "unipolar-dynamic"
	}
	return "bipolar"
}

// LayerOptions configures the mapping of one logical matrix onto SEI
// crossbars.
type LayerOptions struct {
	Model       rram.DeviceModel
	MaxCrossbar int // physical row/column limit (paper: 512 or 256)
	Mode        SignedMode
	Order       []int // logical-row permutation for splitting; nil = natural
}

// DefaultLayerOptions uses the paper's default experiment setup.
func DefaultLayerOptions() LayerOptions {
	return LayerOptions{
		Model:       rram.DefaultDeviceModel(),
		MaxCrossbar: rram.MaxCrossbarSize,
		Mode:        ModeBipolar,
	}
}

func (o LayerOptions) validate(n, m int) error {
	if err := o.Model.Validate(); err != nil {
		return err
	}
	if o.MaxCrossbar <= 0 || o.MaxCrossbar > rram.MaxCrossbarSize {
		return fmt.Errorf("seicore: max crossbar size %d outside (0,%d]", o.MaxCrossbar, rram.MaxCrossbarSize)
	}
	// One column is reserved for the dynamic-threshold column.
	if m+1 > o.MaxCrossbar {
		return fmt.Errorf("seicore: %d output columns (+1 threshold) exceed crossbar width %d", m, o.MaxCrossbar)
	}
	if o.Order != nil {
		if len(o.Order) != n {
			return fmt.Errorf("seicore: order length %d, want %d", len(o.Order), n)
		}
		seen := make([]bool, n)
		for _, idx := range o.Order {
			if idx < 0 || idx >= n || seen[idx] {
				return fmt.Errorf("seicore: order is not a permutation of 0..%d", n-1)
			}
			seen[idx] = true
		}
	}
	return nil
}

// seiBlock is one physical crossbar holding a contiguous slice of the
// (permuted) logical inputs.
type seiBlock struct {
	inputs []int          // logical input indices stored in this block
	eff    *tensor.Tensor // [len(inputs), M] effective weights
	w0     []float64      // per-local-row dynamic column (unipolar mode), nil otherwise
	// contig marks blocks whose inputs are consecutive ascending
	// logical indices (the natural-order split). The bit-packed fast
	// path then iterates set bits of the input word directly instead of
	// testing one bit per row. Derived from inputs at construction and
	// load; see initFast.
	contig bool
	// bnd is the runtime activation-bound suffix table (bounds.go);
	// nil when the block can't be bounded (dynamic w0 column, too many
	// columns). Built by SEIDesign.initBounds or restored from a
	// snapshot; a function of eff only.
	bnd *colBounds
	// sq is eff with every entry squared — the per-column variance
	// table of the aggregated-noise approximation (noise.go). Built by
	// initNoiseTables only for layers with per-cell read noise; a
	// function of eff only, so never persisted.
	sq *tensor.Tensor
}

// initSquares builds the block's squared-weight table (sq), the
// per-column variance source of the aggregated-noise approximation.
// Idempotent; a function of eff only.
func (b *seiBlock) initSquares() {
	if b.sq != nil {
		return
	}
	sq := tensor.New(b.eff.Shape()...)
	for i, v := range b.eff.Data() {
		sq.Data()[i] = v * v
	}
	b.sq = sq
}

// initFast derives the fast-path metadata from the block's input list.
func (b *seiBlock) initFast() {
	b.contig = len(b.inputs) > 0
	for i, j := range b.inputs {
		if j != b.inputs[0]+i {
			b.contig = false
			break
		}
	}
}

// sums accumulates the block's analog column outputs for one input
// vector: the main column sums, the dynamic-threshold column sum, and
// the number of active inputs. IR drop and read noise are applied by
// the caller, which owns the device model.
func (b *seiBlock) sums(in []float64, m int) (main []float64, w0sum float64, ones int) {
	main = make([]float64, m)
	for local, j := range b.inputs {
		if in[j] == 0 {
			continue
		}
		ones++
		row := b.eff.Data()[local*m : (local+1)*m]
		for c, v := range row {
			main[c] += v
		}
		if b.w0 != nil {
			w0sum += b.w0[local]
		}
	}
	return main, w0sum, ones
}

// sumsBits is the bit-packed, allocation-free variant of sums: the
// active inputs arrive as a packed bit vector indexed in the block's
// logical input space and the column sums are accumulated into the
// caller's scratch slice main (len M, zeroed here). Rows are visited
// in ascending local order — exactly the order of sums's skip-zero
// loop — so the float accumulation is bit-identical to the float path
// (the determinism goldens depend on this; see DESIGN.md §11).
func (b *seiBlock) sumsBits(in *bitvec.Vec, main []float64) (w0sum float64, ones int) {
	for c := range main {
		main[c] = 0
	}
	m := len(main)
	data := b.eff.Data()
	if b.contig {
		// Consecutive ascending inputs: walk the set bits of the
		// block's window range word-wise, skipping 64 inactive rows per
		// word test. Ascending logical order is ascending local order.
		lo := b.inputs[0]
		hi := lo + len(b.inputs)
		for j := in.NextSet(lo); j >= 0 && j < hi; j = in.NextSet(j + 1) {
			local := j - lo
			ones++
			row := data[local*m : (local+1)*m]
			for c, v := range row {
				main[c] += v
			}
			if b.w0 != nil {
				w0sum += b.w0[local]
			}
		}
		return w0sum, ones
	}
	for local, j := range b.inputs {
		if !in.Get(j) {
			continue
		}
		ones++
		row := data[local*m : (local+1)*m]
		for c, v := range row {
			main[c] += v
		}
		if b.w0 != nil {
			w0sum += b.w0[local]
		}
	}
	return w0sum, ones
}

// SEIConvLayer is one conv stage mapped on SEI crossbars with sense-
// amplifier threshold readout: outputs are bits. Splitting produces K
// blocks, each thresholding locally (BaseThr + dynamic compensation);
// the final bit fires when at least DigitalThreshold blocks fire
// (Section 4.3, Fig. 2d).
type SEIConvLayer struct {
	N, M, K int
	Mode    SignedMode

	blocks []seiBlock
	model  rram.DeviceModel
	// noise is the per-column read-noise RNG (one multiplicative draw
	// per column current); cells is the per-cell draw stream (one draw
	// per selected cell, noise.go). At most one is non-nil, selected by
	// the device model's ReadNoisePerCell flag.
	noise *rand.Rand
	cells *noiseStream
	hw    *obs.HW     // hardware-event counters; nil = not instrumented
	skip  *obs.SkipHW // activation-bound skip counters; nil = not instrumented
	// approx enables the bounded walk on the noisy float path: bound
	// decisions are exact for the ideal sums but approximate once read
	// noise perturbs them, so this is opt-in (SetBoundedApprox) and
	// reported with a measured accuracy delta.
	approx bool

	// Threshold is the layer's logical binarization threshold (from
	// Algorithm 1), in weight·input units.
	Threshold float64
	// BaseThr is each block's static SA reference; defaults to the
	// block's share Threshold·|block|/N.
	BaseThr []float64
	// Gamma is the dynamic-threshold slope: block b's reference becomes
	// BaseThr[b] + Gamma·(ones_b − OnesMean[b]). Zero = static.
	Gamma float64
	// OnesMean is the calibrated mean active-input count per block.
	OnesMean []float64
	// DigitalThreshold is D: minimum fired blocks for an output 1.
	DigitalThreshold int
}

// NewSEIConvLayer maps the real weight matrix w [N inputs, M kernels]
// with binarization threshold thr onto SEI crossbars.
func NewSEIConvLayer(w *tensor.Tensor, thr float64, opt LayerOptions, rng *rand.Rand) (*SEIConvLayer, error) {
	n, m := w.Dim(0), w.Dim(1)
	if err := opt.validate(n, m); err != nil {
		return nil, err
	}
	var (
		eff *tensor.Tensor
		w0  []float64
		err error
	)
	if opt.Mode == ModeUnipolarDynamic {
		eff, w0, err = EffectiveUnipolarMatrix(w, opt.Model, rng)
	} else {
		eff, _, err = EffectiveSignedMatrix(w, opt.Model, rng)
	}
	if err != nil {
		return nil, err
	}
	order := opt.Order
	if order == nil {
		order = NaturalOrder(n)
	}
	k := BlocksFor(n, opt.Mode.CellsPerWeightFor(opt.Model.Bits), opt.MaxCrossbar)
	l := &SEIConvLayer{
		N: n, M: m, K: k, Mode: opt.Mode,
		model:            opt.Model,
		Threshold:        thr,
		BaseThr:          make([]float64, k),
		OnesMean:         make([]float64, k),
		DigitalThreshold: (k + 2) / 2, // majority: ceil((K+1)/2)
	}
	if opt.Model.ReadNoiseSigma > 0 {
		if opt.Model.ReadNoisePerCell {
			l.cells = newNoiseStream(int64(rng.Uint64()))
		} else {
			l.noise = rng
		}
	}
	for _, blockInputs := range SplitOrder(order, k) {
		b := seiBlock{
			inputs: append([]int(nil), blockInputs...),
			eff:    gatherRows(eff, blockInputs),
		}
		if w0 != nil {
			b.w0 = make([]float64, len(blockInputs))
			for i, j := range blockInputs {
				b.w0[i] = w0[j]
			}
		}
		b.initFast()
		l.blocks = append(l.blocks, b)
	}
	for bi, b := range l.blocks {
		l.BaseThr[bi] = thr * float64(len(b.inputs)) / float64(n)
	}
	return l, nil
}

// gatherRows builds the sub-matrix of the given rows.
func gatherRows(w *tensor.Tensor, rows []int) *tensor.Tensor {
	m := w.Dim(1)
	out := tensor.New(len(rows), m)
	for i, r := range rows {
		copy(out.Data()[i*m:(i+1)*m], w.Data()[r*m:(r+1)*m])
	}
	return out
}

// Eval computes the layer's output bits for one 0/1 input vector.
//
// With the approximate bounded mode on (SetBoundedApprox), blocks with
// a static reference and a built bound table run the bounded row walk
// even under read noise: the bound decides against the *ideal* sums,
// and noise is drawn only for the columns whose decision still needs
// the analog value (in ascending column order — fewer RNG draws is
// precisely the "work actually performed" semantics, and precisely the
// approximation). Labels can therefore differ from the exact path;
// cmd/seisim's bounded experiment measures the accuracy delta.
func (l *SEIConvLayer) Eval(in []float64) []bool {
	if len(in) != l.N {
		panic(fmt.Sprintf("seicore: SEIConvLayer input length %d, want %d", len(in), l.N))
	}
	fired := make([]int, l.M)
	var g []float64
	if l.cells != nil {
		g = make([]float64, l.M)
	}
	var saCmps int64
	for bi := range l.blocks {
		b := &l.blocks[bi]
		if l.approx && l.cells == nil && b.bnd != nil && b.w0 == nil && l.Gamma == 0 && l.model.IRDropAlpha == 0 {
			ref := l.BaseThr[bi]
			main, st := b.sumsBounded(in, l.M, ref)
			l.hw.ActiveInputs(int64(st.ones))
			firedMask := st.fired1
			var draws int64
			for t := st.undecided; t != 0; t &= t - 1 {
				c := bits.TrailingZeros64(t)
				s := main[c]
				if l.noise != nil {
					s *= 1 + l.model.ReadNoiseSigma*l.noise.NormFloat64()
					draws++
				}
				if s > ref {
					firedMask |= 1 << uint(c)
				}
			}
			l.hw.NoiseDraws(draws)
			for t := firedMask; t != 0; t &= t - 1 {
				fired[bits.TrailingZeros64(t)]++
			}
			undec := bits.OnesCount64(st.undecided)
			saCmps += int64(undec)
			l.skip.Record(int64(st.ones), int64(st.skipped),
				int64(bits.OnesCount64(colMask(l.M)&^st.undecided)), int64(st.evals), 0)
			continue
		}
		main, w0sum, ones := b.sums(in, l.M)
		l.hw.ActiveInputs(int64(ones))
		l.applyAnalog(b, in, main, ones, g)
		ref := l.BaseThr[bi] + l.Gamma*(float64(ones)-l.OnesMean[bi]) + w0sum
		for c, s := range main {
			if s > ref {
				fired[c]++
			}
		}
		saCmps += int64(l.M)
	}
	if h := l.hw; h != nil {
		h.MVM(int64(l.K))
		h.SACompares(saCmps)
		h.ColumnActivations(saCmps)
	}
	out := make([]bool, l.M)
	for c, f := range fired {
		out[c] = f >= l.DigitalThreshold
	}
	return out
}

// evalFastCounts is the bit-packed, allocation-free core of Eval for
// the ideal-analog case (no IR drop, no read noise, no I-V
// nonlinearity — the fast-path dispatch guarantees applyAnalog would
// be a no-op). It fills fired (len M, the per-column count of blocks
// whose SA fired) using the caller's scratch slices; the caller turns
// fired into output bits with the same `>= DigitalThreshold` compare
// Eval uses. Hardware counters are recorded exactly as Eval records
// them.
func (l *SEIConvLayer) evalFastCounts(in *bitvec.Vec, fired []int, col []float64) {
	for c := range fired {
		fired[c] = 0
	}
	for bi := range l.blocks {
		b := &l.blocks[bi]
		w0sum, ones := b.sumsBits(in, col)
		l.hw.ActiveInputs(int64(ones))
		ref := l.BaseThr[bi] + l.Gamma*(float64(ones)-l.OnesMean[bi]) + w0sum
		for c, s := range col {
			if s > ref {
				fired[c]++
			}
		}
	}
	if h := l.hw; h != nil {
		h.MVM(int64(l.K))
		h.SACompares(int64(l.K * l.M))
		h.ColumnActivations(int64(l.K * l.M))
	}
}

// BlockSums exposes the per-block analog sums and active counts for
// one input — used by calibration and by tests.
func (l *SEIConvLayer) BlockSums(in []float64) (main [][]float64, w0 []float64, ones []int) {
	main = make([][]float64, l.K)
	w0 = make([]float64, l.K)
	ones = make([]int, l.K)
	var g []float64
	if l.cells != nil {
		g = make([]float64, l.M)
	}
	for bi := range l.blocks {
		b := &l.blocks[bi]
		m, w, o := b.sums(in, l.M)
		l.hw.ActiveInputs(int64(o))
		l.applyAnalog(b, in, m, o, g)
		main[bi], w0[bi], ones[bi] = m, w, o
	}
	if h := l.hw; h != nil {
		h.MVM(int64(l.K))
		h.ColumnActivations(int64(l.K * l.M))
	}
	return main, w0, ones
}

// applyAnalog applies the model's read-time effects to one block's
// column sums. Per-cell read noise perturbs the raw cell currents
// first (noise.go, ascending active rows — g is the caller's length-M
// draw scratch, unused when l.cells is nil), then the IR-drop factor
// scales the column current, then per-column read noise multiplies
// the scaled sum (the original ordering — per-column and per-cell are
// mutually exclusive by construction). The sinh I-V nonlinearity does
// not appear here: SEI inputs are 0 or full swing, and the full-swing
// gain is removed by one-point calibration (rram.TransferCalibrated),
// so 1-bit layers are exactly immune to it.
func (l *SEIConvLayer) applyAnalog(b *seiBlock, in []float64, sums []float64, ones int, g []float64) {
	if l.cells != nil {
		l.hw.NoiseDraws(int64(cellNoiseFloat(l.cells, l.model.ReadNoiseSigma, b, in, sums, g)))
	}
	if a := l.model.IRDropAlpha; a > 0 {
		scale := 1 - a*float64(ones*l.Mode.CellsPerWeightFor(l.model.Bits))/float64(rram.MaxCrossbarSize)
		for c := range sums {
			sums[c] *= scale
		}
	}
	if l.noise != nil {
		for c := range sums {
			sums[c] *= 1 + l.model.ReadNoiseSigma*l.noise.NormFloat64()
		}
		l.hw.NoiseDraws(int64(len(sums)))
	}
}

// SEIFCLayer is the final fully-connected stage on SEI crossbars. Its
// outputs feed the classifier's argmax rather than a threshold, so
// each block's columns are read out once per picture (M·K conversions
// — e.g. 10×3 for Network 3, a negligible interface cost accounted by
// package arch) and summed digitally, with the bias added digitally.
type SEIFCLayer struct {
	N, M, K int
	Mode    SignedMode

	blocks []seiBlock
	model  rram.DeviceModel
	// noise/cells: per-column RNG or per-cell draw stream, as on
	// SEIConvLayer; at most one is non-nil.
	noise *rand.Rand
	cells *noiseStream
	hw    *obs.HW // hardware-event counters; nil = not instrumented
	Bias  []float64
}

// NewSEIFCLayer maps the FC matrix w [N inputs, M classes] and bias
// onto SEI crossbars.
func NewSEIFCLayer(w *tensor.Tensor, bias []float64, opt LayerOptions, rng *rand.Rand) (*SEIFCLayer, error) {
	n, m := w.Dim(0), w.Dim(1)
	if len(bias) != m {
		return nil, fmt.Errorf("seicore: FC bias length %d, want %d", len(bias), m)
	}
	if err := opt.validate(n, m); err != nil {
		return nil, err
	}
	var (
		eff *tensor.Tensor
		w0  []float64
		err error
	)
	if opt.Mode == ModeUnipolarDynamic {
		eff, w0, err = EffectiveUnipolarMatrix(w, opt.Model, rng)
	} else {
		eff, _, err = EffectiveSignedMatrix(w, opt.Model, rng)
	}
	if err != nil {
		return nil, err
	}
	order := opt.Order
	if order == nil {
		order = NaturalOrder(n)
	}
	k := BlocksFor(n, opt.Mode.CellsPerWeightFor(opt.Model.Bits), opt.MaxCrossbar)
	l := &SEIFCLayer{
		N: n, M: m, K: k, Mode: opt.Mode,
		model: opt.Model,
		Bias:  append([]float64(nil), bias...),
	}
	if opt.Model.ReadNoiseSigma > 0 {
		if opt.Model.ReadNoisePerCell {
			l.cells = newNoiseStream(int64(rng.Uint64()))
		} else {
			l.noise = rng
		}
	}
	for _, blockInputs := range SplitOrder(order, k) {
		b := seiBlock{
			inputs: append([]int(nil), blockInputs...),
			eff:    gatherRows(eff, blockInputs),
		}
		if w0 != nil {
			b.w0 = make([]float64, len(blockInputs))
			for i, j := range blockInputs {
				b.w0[i] = w0[j]
			}
		}
		b.initFast()
		l.blocks = append(l.blocks, b)
	}
	return l, nil
}

// Eval computes the classifier scores for one 0/1 input vector.
func (l *SEIFCLayer) Eval(in []float64) []float64 {
	if len(in) != l.N {
		panic(fmt.Sprintf("seicore: SEIFCLayer input length %d, want %d", len(in), l.N))
	}
	out := append([]float64(nil), l.Bias...)
	var g []float64
	if l.cells != nil {
		g = make([]float64, l.M)
	}
	for bi := range l.blocks {
		b := &l.blocks[bi]
		main, w0sum, ones := b.sums(in, l.M)
		l.hw.ActiveInputs(int64(ones))
		w0sum = l.applyAnalogFC(b, in, main, w0sum, ones, g)
		for c, s := range main {
			out[c] += s - w0sum
		}
	}
	if h := l.hw; h != nil {
		h.MVM(int64(l.K))
		h.ColumnActivations(int64(l.K * l.M))
	}
	return out
}

// applyAnalogFC applies the model's read-time effects to one FC
// block's column sums, in the same order as SEIConvLayer.applyAnalog:
// per-cell noise on the raw sums, IR drop on main and the dynamic
// column, per-column noise on main. Returns the (possibly IR-scaled)
// w0 sum — the dynamic column carries no read noise in either mode,
// matching the original per-column behaviour.
func (l *SEIFCLayer) applyAnalogFC(b *seiBlock, in []float64, main []float64, w0sum float64, ones int, g []float64) float64 {
	if l.cells != nil {
		l.hw.NoiseDraws(int64(cellNoiseFloat(l.cells, l.model.ReadNoiseSigma, b, in, main, g)))
	}
	if a := l.model.IRDropAlpha; a > 0 {
		scale := 1 - a*float64(ones*l.Mode.CellsPerWeightFor(l.model.Bits))/float64(rram.MaxCrossbarSize)
		for c := range main {
			main[c] *= scale
		}
		w0sum *= scale
	}
	if l.noise != nil {
		for c := range main {
			main[c] *= 1 + l.model.ReadNoiseSigma*l.noise.NormFloat64()
		}
		l.hw.NoiseDraws(int64(len(main)))
	}
	return w0sum
}

// evalFastInto is the bit-packed, allocation-free variant of Eval for
// the ideal-analog case: the flattened 0/1 activation map arrives
// packed, scores are written into out (len M) and col is a per-block
// column scratch (len M). Bias copy, block order and the `s − w0sum`
// accumulation match Eval exactly, so scores are bit-identical.
func (l *SEIFCLayer) evalFastInto(in *bitvec.Vec, out, col []float64) {
	copy(out, l.Bias)
	for bi := range l.blocks {
		b := &l.blocks[bi]
		w0sum, ones := b.sumsBits(in, col)
		l.hw.ActiveInputs(int64(ones))
		for c, s := range col {
			out[c] += s - w0sum
		}
	}
	if h := l.hw; h != nil {
		h.MVM(int64(l.K))
		h.ColumnActivations(int64(l.K * l.M))
	}
}
