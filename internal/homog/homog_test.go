package homog

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sei/internal/seicore"
	"sei/internal/tensor"
)

func randomMatrix(n, m int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	w := tensor.New(n, m)
	for i := range w.Data() {
		w.Data()[i] = rng.NormFloat64()
	}
	return w
}

func TestDistanceZeroForIdenticalBlocks(t *testing.T) {
	// Two identical blocks → distance 0.
	w := tensor.FromSlice([]float64{
		1, 2,
		3, 4,
		1, 2,
		3, 4,
	}, 4, 2)
	order := []int{0, 1, 2, 3}
	if d := Distance(w, order, 2); d != 0 {
		t.Fatalf("Distance = %v, want 0", d)
	}
}

func TestDistanceHandComputed(t *testing.T) {
	// Block means: [1,0] and [0,1] → distance √2.
	w := tensor.FromSlice([]float64{
		1, 0,
		0, 1,
	}, 2, 2)
	if d := Distance(w, []int{0, 1}, 2); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Fatalf("Distance = %v, want √2", d)
	}
}

func TestDistanceOrderInvariantWithinBlocks(t *testing.T) {
	w := randomMatrix(8, 3, 1)
	a := Distance(w, []int{0, 1, 2, 3, 4, 5, 6, 7}, 2)
	b := Distance(w, []int{3, 1, 2, 0, 7, 5, 6, 4}, 2) // same block contents
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("distance depends on within-block order: %v vs %v", a, b)
	}
}

// Property: Distance is non-negative and symmetric under block swap.
func TestDistanceProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(8)
		if n%2 == 1 {
			n++
		}
		w := randomMatrix(n, 1+r.Intn(4), seed)
		order := RandomOrder(n, r)
		d := Distance(w, order, 2)
		if d < 0 {
			return false
		}
		// Swap block halves: pairwise distances unchanged.
		swapped := append(append([]int(nil), order[n/2:]...), order[:n/2]...)
		return math.Abs(d-Distance(w, swapped, 2)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedySerpentineIsPermutation(t *testing.T) {
	w := randomMatrix(17, 4, 2)
	order := GreedySerpentine(w, 3)
	if len(order) != 17 {
		t.Fatalf("order length %d", len(order))
	}
	seen := make([]bool, 17)
	for _, idx := range order {
		if idx < 0 || idx >= 17 || seen[idx] {
			t.Fatalf("not a permutation: %v", order)
		}
		seen[idx] = true
	}
}

func TestGreedySerpentineImprovesSortedMatrix(t *testing.T) {
	// A matrix whose rows grow linearly is the worst case for natural
	//-order splitting; serpentine should cut the distance sharply.
	n, m := 60, 4
	w := tensor.New(n, m)
	for r := 0; r < n; r++ {
		for c := 0; c < m; c++ {
			w.Set(float64(r), r, c)
		}
	}
	natural := Distance(w, seicore.NaturalOrder(n), 3)
	greedy := Distance(w, GreedySerpentine(w, 3), 3)
	if greedy > natural*0.2 {
		t.Fatalf("serpentine distance %v vs natural %v; want ≥80%% reduction", greedy, natural)
	}
}

func TestHomogenizeReducesDistance(t *testing.T) {
	// The paper: "the total distance can be reduced about 80% to 90%
	// compared with directly splitting the matrix by natural order"
	// for trained matrices. Random Gaussian matrices behave similarly.
	w := randomMatrix(120, 8, 3)
	cfg := DefaultGAConfig()
	cfg.Generations = 150
	res, err := Homogenize(w, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance > res.NaturalDistance {
		t.Fatalf("GA made distance worse: %v > %v", res.Distance, res.NaturalDistance)
	}
	if res.Reduction() < 0.5 {
		t.Fatalf("reduction %.2f too small (dist %v → %v)", res.Reduction(), res.NaturalDistance, res.Distance)
	}
	// Returned order must be a permutation.
	seen := make([]bool, 120)
	for _, idx := range res.Order {
		if seen[idx] {
			t.Fatal("GA order is not a permutation")
		}
		seen[idx] = true
	}
}

func TestHomogenizeDeterministicWithSeed(t *testing.T) {
	w := randomMatrix(40, 4, 4)
	cfg := DefaultGAConfig()
	cfg.Generations = 50
	a, _ := Homogenize(w, 2, cfg)
	b, _ := Homogenize(w, 2, cfg)
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatal("GA is not deterministic under a fixed seed")
		}
	}
}

func TestHomogenizeNearExhaustiveOnTinyInstance(t *testing.T) {
	w := randomMatrix(8, 2, 5)
	exact, err := ExhaustiveBest(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGAConfig()
	cfg.Generations = 200
	ga, err := Homogenize(w, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ga.Distance > exact.Distance*1.2+1e-9 {
		t.Fatalf("GA distance %v far from exhaustive optimum %v", ga.Distance, exact.Distance)
	}
}

func TestHomogenizeK1Trivial(t *testing.T) {
	w := randomMatrix(10, 2, 6)
	res, err := Homogenize(w, 1, DefaultGAConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance != 0 || len(res.Order) != 10 {
		t.Fatalf("K=1 result %+v", res)
	}
}

func TestHomogenizeValidation(t *testing.T) {
	w := randomMatrix(10, 2, 7)
	if _, err := Homogenize(w, 0, DefaultGAConfig()); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := Homogenize(w, 11, DefaultGAConfig()); err == nil {
		t.Fatal("accepted k>n")
	}
	bad := DefaultGAConfig()
	bad.Population = 1
	if _, err := Homogenize(w, 2, bad); err == nil {
		t.Fatal("accepted population of 1")
	}
	bad = DefaultGAConfig()
	bad.Elite = 99
	if _, err := Homogenize(w, 2, bad); err == nil {
		t.Fatal("accepted elite ≥ population")
	}
}

func TestExhaustiveBestRejectsLarge(t *testing.T) {
	if _, err := ExhaustiveBest(randomMatrix(11, 2, 8), 2); err == nil {
		t.Fatal("accepted n=11")
	}
}

func TestReductionZeroNatural(t *testing.T) {
	r := Result{Distance: 0, NaturalDistance: 0}
	if r.Reduction() != 0 {
		t.Fatal("Reduction with zero natural distance should be 0")
	}
}
