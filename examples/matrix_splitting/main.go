// Matrix splitting: demonstrates Section 4.3 of the paper. When a
// logical weight column is longer than the physical crossbar, it is
// split across arrays and each sub-block thresholds locally with
// Thres/K — and the row order then matters enormously: across random
// orders the error spans a wide range (the paper reports 3.9–45.9% on
// Network 1). Matrix homogenization (GA row reordering minimizing the
// Equ.-10 distance between sub-matrix means) picks a reliably good
// arrangement, and the input-dynamic threshold compensates residual
// input randomness.
//
// Run with: go run ./examples/matrix_splitting
package main

import (
	"fmt"
	"log"
	"os"

	"sei"
)

func main() {
	train, test := sei.SyntheticSplit(2500, 400, 1)
	fmt.Fprintln(os.Stderr, "training and quantizing network 3...")
	net := sei.TrainTableNetwork(3, train, 4, 7)
	q, err := sei.Quantize(net, train)
	if err != nil {
		log.Fatal(err)
	}
	quantErr := sei.EvaluateQuantized(q, test)

	// A 64-row crossbar forces Network 3's conv2 (54 weights × 4 cells
	// = 216 physical rows) to split into 4 blocks.
	const crossbar = 64

	build := func(order sei.OrderStrategy, dynamic bool, seed int64) float64 {
		opt := sei.DefaultBuildOptions()
		opt.MaxCrossbar = crossbar
		opt.Order = order
		opt.DynamicThreshold = dynamic
		opt.Seed = seed
		d, err := sei.BuildDesign(q, train, opt)
		if err != nil {
			log.Fatal(err)
		}
		return sei.EvaluateDesign(d, test)
	}

	fmt.Printf("Matrix splitting study (Network 3, %dx%d crossbars)\n", crossbar, crossbar)
	fmt.Printf("  digital 1-bit reference (no splitting)   %6.2f%%\n", 100*quantErr)

	lo, hi := 1.0, 0.0
	const samples = 8
	for s := int64(0); s < samples; s++ {
		e := build(sei.OrderRandom, false, 100+s)
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	fmt.Printf("  split, %d random orders, static thr.     %6.2f%% - %.2f%%\n", samples, 100*lo, 100*hi)
	fmt.Printf("  split + matrix homogenization            %6.2f%%\n", 100*build(sei.OrderHomogenized, false, 1))
	fmt.Printf("  split + homogenization + dynamic thr.    %6.2f%%\n", 100*build(sei.OrderHomogenized, true, 1))
	fmt.Println("\nHomogenization equalizes the sub-matrix column means so each block's")
	fmt.Println("local Thres/K threshold sees a fair share of the sum (paper Table 4).")
}
