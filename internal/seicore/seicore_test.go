package seicore

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sei/internal/rram"
	"sei/internal/tensor"
)

func idealModel() rram.DeviceModel {
	return rram.IdealDeviceModel(4)
}

func randomMatrix(n, m int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	w := tensor.New(n, m)
	for i := range w.Data() {
		w.Data()[i] = rng.NormFloat64()
	}
	return w
}

func TestEffectiveSignedMatrixIdealRoundTrip(t *testing.T) {
	w := randomMatrix(12, 5, 1)
	rng := rand.New(rand.NewSource(2))
	eff, scale, err := EffectiveSignedMatrix(w, idealModel(), rng)
	if err != nil {
		t.Fatal(err)
	}
	q, scale2, _ := rram.QuantizeSymmetric(w, rram.WeightBits)
	if scale != scale2 {
		t.Fatalf("scale %v vs %v", scale, scale2)
	}
	for i := range w.Data() {
		want := float64(q[i]) * scale
		if math.Abs(eff.Data()[i]-want) > 1e-9 {
			t.Fatalf("eff[%d] = %v, want %v (ideal device must be exact)", i, eff.Data()[i], want)
		}
	}
	// And the 8-bit round trip bounds the error vs the original weight.
	for i, v := range w.Data() {
		if math.Abs(eff.Data()[i]-v) > scale/2+1e-9 {
			t.Fatalf("weight %d drifted beyond 8-bit quantization error", i)
		}
	}
}

// The generalized slicing must be exact for every device precision on
// ideal devices: with b-bit cells, ceil(8/b) slices reconstruct the
// 8-bit weight.
func TestEffectiveSignedMatrixAllDevicePrecisions(t *testing.T) {
	w := randomMatrix(15, 6, 41)
	q, scale, _ := rram.QuantizeSymmetric(w, rram.WeightBits)
	for bits := 2; bits <= 8; bits++ {
		model := rram.IdealDeviceModel(bits)
		eff, s2, err := EffectiveSignedMatrix(w, model, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("bits %d: %v", bits, err)
		}
		if s2 != scale {
			t.Fatalf("bits %d: scale %v, want %v", bits, s2, scale)
		}
		for i := range q {
			want := float64(q[i]) * scale
			if math.Abs(eff.Data()[i]-want) > 1e-9 {
				t.Fatalf("bits %d: eff[%d] = %v, want %v", bits, i, eff.Data()[i], want)
			}
		}
	}
}

// Unipolar mapping likewise for all precisions, including the Equ.-9
// identity.
func TestEffectiveUnipolarAllDevicePrecisions(t *testing.T) {
	w := randomMatrix(10, 4, 43)
	q, scale, _ := rram.QuantizeSymmetric(w, rram.WeightBits)
	for bits := 2; bits <= 8; bits++ {
		model := rram.IdealDeviceModel(bits)
		eff, w0, err := EffectiveUnipolarMatrix(w, model, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatalf("bits %d: %v", bits, err)
		}
		for c := 0; c < 4; c++ {
			lhs, rhs := 0.0, 0.0
			for j := 0; j < 10; j++ {
				lhs += eff.At(j, c) - w0[j]
				rhs += float64(q[j*4+c]) * scale
			}
			if math.Abs(lhs-rhs) > 10*scale*1.01 {
				t.Fatalf("bits %d col %d: identity off by %v", bits, c, lhs-rhs)
			}
		}
	}
}

func TestCellsPerWeightFor(t *testing.T) {
	if ModeBipolar.CellsPerWeightFor(4) != 4 || ModeUnipolarDynamic.CellsPerWeightFor(4) != 2 {
		t.Fatal("4-bit cells-per-weight wrong")
	}
	if ModeBipolar.CellsPerWeightFor(2) != 8 || ModeUnipolarDynamic.CellsPerWeightFor(2) != 4 {
		t.Fatal("2-bit cells-per-weight wrong")
	}
	if ModeBipolar.CellsPerWeightFor(8) != 2 || ModeUnipolarDynamic.CellsPerWeightFor(8) != 1 {
		t.Fatal("8-bit cells-per-weight wrong")
	}
	if ModeBipolar.CellsPerWeight() != 4 {
		t.Fatal("default cells-per-weight changed")
	}
}

func TestEffectiveSignedMatrixVariationPerturbs(t *testing.T) {
	w := randomMatrix(10, 10, 3)
	m := idealModel()
	m.ProgramSigma = 0.1
	rng := rand.New(rand.NewSource(4))
	eff, scale, err := EffectiveSignedMatrix(w, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	q, _, _ := rram.QuantizeSymmetric(w, rram.WeightBits)
	diff := 0
	for i := range w.Data() {
		if math.Abs(eff.Data()[i]-float64(q[i])*scale) > 1e-12 {
			diff++
		}
	}
	if diff < 50 {
		t.Fatalf("variation changed only %d/100 weights", diff)
	}
}

// Property: the unipolar mapping with an ideal device satisfies
// Σ_{j∈S} eff[j][c] − Σ_{j∈S} w0[j] == Σ_{j∈S} q_j·scale for every
// active set S — the Equ. 9 identity.
func TestEffectiveUnipolarIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m := 2+r.Intn(8), 1+r.Intn(4)
		w := randomMatrix(n, m, seed+100)
		eff, w0, err := EffectiveUnipolarMatrix(w, idealModel(), r)
		if err != nil {
			return false
		}
		q, scale, _ := rram.QuantizeSymmetric(w, rram.WeightBits)
		// Random active set.
		for c := 0; c < m; c++ {
			lhs, rhs := 0.0, 0.0
			for j := 0; j < n; j++ {
				if r.Float64() < 0.5 {
					continue
				}
				lhs += eff.At(j, c) - w0[j]
				rhs += float64(q[j*m+c]) * scale
			}
			// The w* storage is 8-bit over the weight span, so each term
			// carries at most span·scale/255/2 ≈ scale rounding error.
			if math.Abs(lhs-rhs) > float64(n)*scale*1.01 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUnipolarCellsNonNegative(t *testing.T) {
	// Unipolar storage must never require negative conductance.
	w := randomMatrix(20, 6, 9)
	eff, w0, err := EffectiveUnipolarMatrix(w, idealModel(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range eff.Data() {
		if v < -1e-12 {
			t.Fatalf("unipolar effective weight %v < 0", v)
		}
	}
	for _, v := range w0 {
		if v < -1e-12 {
			t.Fatalf("unipolar w0 %v < 0", v)
		}
	}
}

func TestMergedLayerIdealExact(t *testing.T) {
	w := randomMatrix(30, 7, 5)
	rng := rand.New(rand.NewSource(6))
	layer, err := NewMergedLayer(w, idealModel(), rng)
	if err != nil {
		t.Fatal(err)
	}
	q, scale, _ := rram.QuantizeSymmetric(w, rram.WeightBits)
	in := make([]float64, 30)
	for i := range in {
		in[i] = rng.Float64()
	}
	got := layer.Eval(in)
	for c := 0; c < 7; c++ {
		want := 0.0
		for j := 0; j < 30; j++ {
			want += in[j] * float64(q[j*7+c]) * scale
		}
		if math.Abs(got[c]-want) > 1e-9 {
			t.Fatalf("MergedLayer col %d = %v, want %v", c, got[c], want)
		}
	}
}

func TestMergedLayerInputLengthPanics(t *testing.T) {
	layer, _ := NewMergedLayer(randomMatrix(4, 2, 1), idealModel(), rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input length did not panic")
		}
	}()
	layer.Eval(make([]float64, 3))
}

func TestBlocksForPaperExample(t *testing.T) {
	// "we still need three 400×64 crossbars to implement the huge
	// 1200×64 RRAM array": 300 logical inputs × 4 cells, 512 limit → 3.
	if k := BlocksFor(300, 4, 512); k != 3 {
		t.Fatalf("BlocksFor(300,4,512) = %d, want 3", k)
	}
	// Network 1 FC: 1024 inputs × 4 cells / 512 → 8 blocks.
	if k := BlocksFor(1024, 4, 512); k != 8 {
		t.Fatalf("BlocksFor(1024,4,512) = %d, want 8", k)
	}
	// Network 3 FC: 300 × 4 / 512 → 3 blocks.
	if k := BlocksFor(300, 4, 512); k != 3 {
		t.Fatalf("BlocksFor(300,4,512) = %d, want 3", k)
	}
	// Fits in one crossbar.
	if k := BlocksFor(100, 4, 512); k != 1 {
		t.Fatalf("BlocksFor(100,4,512) = %d, want 1", k)
	}
	// 256-size crossbars need more blocks.
	if k := BlocksFor(300, 4, 256); k != 5 {
		t.Fatalf("BlocksFor(300,4,256) = %d, want 5", k)
	}
}

func TestSplitOrderBalanced(t *testing.T) {
	blocks := SplitOrder(NaturalOrder(10), 3)
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks", len(blocks))
	}
	sizes := []int{len(blocks[0]), len(blocks[1]), len(blocks[2])}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("block sizes %v, want [4 3 3]", sizes)
	}
	// All indices covered exactly once.
	seen := map[int]bool{}
	for _, b := range blocks {
		for _, idx := range b {
			if seen[idx] {
				t.Fatalf("index %d appears twice", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("covered %d indices, want 10", len(seen))
	}
}

func TestSEIConvSingleBlockMatchesDigital(t *testing.T) {
	// With an ideal device and no splitting, the SEI layer must produce
	// exactly the bits of the 8-bit-quantized digital computation.
	w := randomMatrix(40, 6, 7)
	thr := 0.8
	opt := DefaultLayerOptions()
	opt.Model = idealModel()
	rng := rand.New(rand.NewSource(8))
	layer, err := NewSEIConvLayer(w, thr, opt, rng)
	if err != nil {
		t.Fatal(err)
	}
	if layer.K != 1 {
		t.Fatalf("K = %d, want 1", layer.K)
	}
	q, scale, _ := rram.QuantizeSymmetric(w, rram.WeightBits)
	for trial := 0; trial < 30; trial++ {
		in := make([]float64, 40)
		for i := range in {
			if rng.Float64() < 0.4 {
				in[i] = 1
			}
		}
		got := layer.Eval(in)
		for c := 0; c < 6; c++ {
			sum := 0.0
			for j := 0; j < 40; j++ {
				if in[j] == 1 {
					sum += float64(q[j*6+c]) * scale
				}
			}
			if got[c] != (sum > thr) {
				t.Fatalf("trial %d col %d: SEI bit %v, digital %v (sum %v thr %v)", trial, c, got[c], sum > thr, sum, thr)
			}
		}
	}
}

func TestSEIConvUnipolarMatchesBipolarBits(t *testing.T) {
	// Both signed-weight realizations must agree on nearly all bits
	// under ideal devices (they differ only in sub-LSB rounding).
	w := randomMatrix(30, 5, 11)
	thr := 0.5
	rng := rand.New(rand.NewSource(12))
	optB := DefaultLayerOptions()
	optB.Model = idealModel()
	bip, err := NewSEIConvLayer(w, thr, optB, rng)
	if err != nil {
		t.Fatal(err)
	}
	optU := optB
	optU.Mode = ModeUnipolarDynamic
	uni, err := NewSEIConvLayer(w, thr, optU, rng)
	if err != nil {
		t.Fatal(err)
	}
	agree, total := 0, 0
	for trial := 0; trial < 50; trial++ {
		in := make([]float64, 30)
		for i := range in {
			if rng.Float64() < 0.4 {
				in[i] = 1
			}
		}
		a := bip.Eval(in)
		b := uni.Eval(in)
		for c := range a {
			total++
			if a[c] == b[c] {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.95 {
		t.Fatalf("unipolar/bipolar agreement %.3f, want ≥ 0.95", frac)
	}
}

func TestSEIConvSplitBlockSumsConserve(t *testing.T) {
	// Splitting must partition the total sum: Σ_blocks blockSum == the
	// unsplit sum, for ideal devices.
	w := randomMatrix(200, 4, 13)
	opt := DefaultLayerOptions()
	opt.Model = idealModel()
	opt.MaxCrossbar = 256 // 200×4 cells = 800 rows → 4 blocks
	rng := rand.New(rand.NewSource(14))
	layer, err := NewSEIConvLayer(w, 1.0, opt, rng)
	if err != nil {
		t.Fatal(err)
	}
	if layer.K != 4 {
		t.Fatalf("K = %d, want 4", layer.K)
	}
	q, scale, _ := rram.QuantizeSymmetric(w, rram.WeightBits)
	in := make([]float64, 200)
	for i := range in {
		if rng.Float64() < 0.3 {
			in[i] = 1
		}
	}
	main, _, ones := layer.BlockSums(in)
	for c := 0; c < 4; c++ {
		total := 0.0
		for b := 0; b < layer.K; b++ {
			total += main[b][c]
		}
		want := 0.0
		for j := 0; j < 200; j++ {
			if in[j] == 1 {
				want += float64(q[j*4+c]) * scale
			}
		}
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("col %d: block sums total %v, want %v", c, total, want)
		}
	}
	totalOnes := 0
	for _, o := range ones {
		totalOnes += o
	}
	wantOnes := 0
	for _, v := range in {
		if v == 1 {
			wantOnes++
		}
	}
	if totalOnes != wantOnes {
		t.Fatalf("block ones total %d, want %d", totalOnes, wantOnes)
	}
}

func TestSEIConvOrderPermutesBlocks(t *testing.T) {
	w := randomMatrix(8, 2, 15)
	opt := DefaultLayerOptions()
	opt.Model = idealModel()
	opt.MaxCrossbar = 16 // 4 weights per block → 2 blocks
	opt.Order = []int{7, 6, 5, 4, 3, 2, 1, 0}
	rng := rand.New(rand.NewSource(16))
	layer, err := NewSEIConvLayer(w, 0.1, opt, rng)
	if err != nil {
		t.Fatal(err)
	}
	if layer.K != 2 {
		t.Fatalf("K = %d, want 2", layer.K)
	}
	if layer.blocks[0].inputs[0] != 7 || layer.blocks[1].inputs[3] != 0 {
		t.Fatalf("order not respected: %v / %v", layer.blocks[0].inputs, layer.blocks[1].inputs)
	}
}

func TestLayerOptionsValidation(t *testing.T) {
	w := randomMatrix(8, 2, 17)
	rng := rand.New(rand.NewSource(1))
	opt := DefaultLayerOptions()
	opt.Order = []int{0, 1, 2} // wrong length
	if _, err := NewSEIConvLayer(w, 0.1, opt, rng); err == nil {
		t.Fatal("accepted wrong-length order")
	}
	opt = DefaultLayerOptions()
	opt.Order = []int{0, 0, 1, 2, 3, 4, 5, 6} // not a permutation
	if _, err := NewSEIConvLayer(w, 0.1, opt, rng); err == nil {
		t.Fatal("accepted non-permutation order")
	}
	opt = DefaultLayerOptions()
	opt.MaxCrossbar = 1000
	if _, err := NewSEIConvLayer(w, 0.1, opt, rng); err == nil {
		t.Fatal("accepted crossbar beyond fabrication limit")
	}
	opt = DefaultLayerOptions()
	opt.MaxCrossbar = 2 // too narrow for 2 cols + threshold column
	if _, err := NewSEIConvLayer(w, 0.1, opt, rng); err == nil {
		t.Fatal("accepted too-narrow crossbar")
	}
}

func TestSEIFCMatchesDigital(t *testing.T) {
	w := randomMatrix(50, 10, 18)
	bias := make([]float64, 10)
	rng := rand.New(rand.NewSource(19))
	for i := range bias {
		bias[i] = rng.NormFloat64()
	}
	opt := DefaultLayerOptions()
	opt.Model = idealModel()
	opt.MaxCrossbar = 64 // 50×4 = 200 rows → 13 blocks... capped by weightsPerBlock=16 → 4 blocks
	layer, err := NewSEIFCLayer(w, bias, opt, rng)
	if err != nil {
		t.Fatal(err)
	}
	if layer.K < 2 {
		t.Fatalf("expected a split FC, got K=%d", layer.K)
	}
	q, scale, _ := rram.QuantizeSymmetric(w, rram.WeightBits)
	in := make([]float64, 50)
	for i := range in {
		if rng.Float64() < 0.5 {
			in[i] = 1
		}
	}
	got := layer.Eval(in)
	for c := 0; c < 10; c++ {
		want := bias[c]
		for j := 0; j < 50; j++ {
			if in[j] == 1 {
				want += float64(q[j*10+c]) * scale
			}
		}
		if math.Abs(got[c]-want) > 1e-9 {
			t.Fatalf("FC col %d = %v, want %v", c, got[c], want)
		}
	}
}

func TestSEIFCUnipolarCloseToDigital(t *testing.T) {
	w := randomMatrix(40, 10, 20)
	bias := make([]float64, 10)
	opt := DefaultLayerOptions()
	opt.Model = idealModel()
	opt.Mode = ModeUnipolarDynamic
	rng := rand.New(rand.NewSource(21))
	layer, err := NewSEIFCLayer(w, bias, opt, rng)
	if err != nil {
		t.Fatal(err)
	}
	q, scale, _ := rram.QuantizeSymmetric(w, rram.WeightBits)
	in := make([]float64, 40)
	for i := range in {
		if rng.Float64() < 0.5 {
			in[i] = 1
		}
	}
	got := layer.Eval(in)
	for c := 0; c < 10; c++ {
		want := 0.0
		for j := 0; j < 40; j++ {
			if in[j] == 1 {
				want += float64(q[j*10+c]) * scale
			}
		}
		// Unipolar storage rounds each active weight to ~scale.
		if math.Abs(got[c]-want) > 40*scale {
			t.Fatalf("unipolar FC col %d = %v, want ≈%v", c, got[c], want)
		}
	}
}

func TestStructureString(t *testing.T) {
	if StructDACADC.String() != "DAC+ADC" || StructSEI.String() != "SEI" || StructOneBitADC.String() != "1-bit-Input+ADC" {
		t.Fatal("structure names wrong")
	}
	if Structure(99).String() == "" {
		t.Fatal("unknown structure produced empty string")
	}
	if ModeBipolar.String() != "bipolar" || ModeUnipolarDynamic.String() != "unipolar-dynamic" {
		t.Fatal("mode names wrong")
	}
}
