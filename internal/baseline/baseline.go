// Package baseline holds the published CPU-alternative efficiency
// figures the paper compares against in Section 5.3: the FPGA
// accelerator of Zhang et al. (FPGA'15, the paper's reference [2]) and
// the Nvidia K40 GPU. The paper claims SEI's >2000 GOPs/J is "about 2
// orders of magnitude higher" than these platforms.
package baseline

// Platform is one published comparison point.
type Platform struct {
	Name string
	// ThroughputGOPs is the reported sustained throughput.
	ThroughputGOPs float64
	// PowerW is the reported board/chip power.
	PowerW float64
	// Source cites where the numbers come from.
	Source string
}

// EfficiencyGOPsPerJ returns throughput per watt.
func (p Platform) EfficiencyGOPsPerJ() float64 {
	if p.PowerW == 0 {
		return 0
	}
	return p.ThroughputGOPs / p.PowerW
}

// FPGA is Zhang et al.'s VC707 accelerator: 61.62 GOPs at 18.61 W
// (FPGA'15, the paper's [2]).
func FPGA() Platform {
	return Platform{
		Name:           "FPGA (Zhang FPGA'15)",
		ThroughputGOPs: 61.62,
		PowerW:         18.61,
		Source:         "C. Zhang et al., Optimizing FPGA-based accelerator design for deep CNNs, FPGA 2015",
	}
}

// GPU is the Nvidia K40 the paper measured against: ~4290 GOPs peak
// single-precision at a 235 W board budget.
func GPU() Platform {
	return Platform{
		Name:           "GPU (Nvidia K40)",
		ThroughputGOPs: 4290,
		PowerW:         235,
		Source:         "Nvidia Tesla K40 datasheet (peak SP throughput, board TDP)",
	}
}

// All returns every comparison platform.
func All() []Platform { return []Platform{FPGA(), GPU()} }
