//go:build race

package serve

// raceEnabled mirrors internal/seicore's test constant: allocation-
// count assertions are skipped under the race detector, whose
// instrumentation perturbs them.
const raceEnabled = true
