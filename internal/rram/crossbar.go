package rram

import (
	"fmt"
	"math/rand"

	"sei/internal/tensor"
)

// MaxCrossbarSize is the largest fabricable crossbar edge the paper
// assumes (512×512, limited by IR drop [15]).
const MaxCrossbarSize = 512

// Crossbar is a programmed rows×cols RRAM array. Row j carries input
// voltage v_j; column k sums current i_k = Σ_j g_{j,k}·v_j (Equ. 3 of
// the paper, with the row/column orientation used throughout this
// repo: rows = inputs, columns = outputs).
type Crossbar struct {
	Rows, Cols int
	Model      DeviceModel

	g      *tensor.Tensor // programmed conductances [rows, cols]
	levels []int          // programmed level per cell (row-major), for inspection
	nv     []float64      // scratch for the nonlinear-transfer input copy
}

// NewCrossbar allocates an unprogrammed crossbar (all cells at GOff).
func NewCrossbar(rows, cols int, m DeviceModel) (*Crossbar, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("rram: crossbar size %dx%d invalid", rows, cols)
	}
	if rows > MaxCrossbarSize || cols > MaxCrossbarSize {
		return nil, fmt.Errorf("rram: crossbar %dx%d exceeds the %d×%d fabrication limit",
			rows, cols, MaxCrossbarSize, MaxCrossbarSize)
	}
	c := &Crossbar{Rows: rows, Cols: cols, Model: m, g: tensor.New(rows, cols), levels: make([]int, rows*cols)}
	c.g.Fill(m.GOff)
	return c, nil
}

// needsProgramRNG reports whether programming draws random numbers
// under this model (variation or stuck faults).
func (m DeviceModel) needsProgramRNG() bool {
	return m.ProgramSigma > 0 || m.StuckOnRate > 0 || m.StuckOffRate > 0
}

// checkProgramRNG rejects a nil rng when the model's programming is
// stochastic, so the failure surfaces as an error at Program time
// instead of a nil-pointer panic inside ProgramConductance.
func (c *Crossbar) checkProgramRNG(rng *rand.Rand) error {
	if rng == nil && c.Model.needsProgramRNG() {
		return fmt.Errorf("rram: programming with variation sigma %g and stuck rates %g/%g requires an rng",
			c.Model.ProgramSigma, c.Model.StuckOnRate, c.Model.StuckOffRate)
	}
	return nil
}

// Program writes a matrix of normalized weights in [0,1] into the
// array: each value is quantized to the nearest device level and
// programmed with the model's variation and faults. target must be
// [Rows, Cols].
func (c *Crossbar) Program(target *tensor.Tensor, rng *rand.Rand) error {
	s := target.Shape()
	if len(s) != 2 || s[0] != c.Rows || s[1] != c.Cols {
		return fmt.Errorf("rram: Program target shape %v, want [%d %d]", s, c.Rows, c.Cols)
	}
	if err := c.checkProgramRNG(rng); err != nil {
		return err
	}
	for j := 0; j < c.Rows; j++ {
		for k := 0; k < c.Cols; k++ {
			lvl := c.Model.QuantizeToLevel(target.At(j, k))
			c.levels[j*c.Cols+k] = lvl
			c.g.Set(c.Model.ProgramConductance(lvl, rng), j, k)
		}
	}
	return nil
}

// ProgramLevels writes explicit level indices (row-major, len
// Rows·Cols).
func (c *Crossbar) ProgramLevels(levels []int, rng *rand.Rand) error {
	if len(levels) != c.Rows*c.Cols {
		return fmt.Errorf("rram: ProgramLevels got %d levels, want %d", len(levels), c.Rows*c.Cols)
	}
	if err := c.checkProgramRNG(rng); err != nil {
		return err
	}
	for j := 0; j < c.Rows; j++ {
		for k := 0; k < c.Cols; k++ {
			lvl := levels[j*c.Cols+k]
			if lvl < 0 || lvl > c.Model.MaxLevel() {
				return fmt.Errorf("rram: level %d at (%d,%d) outside [0,%d]", lvl, j, k, c.Model.MaxLevel())
			}
			c.levels[j*c.Cols+k] = lvl
			c.g.Set(c.Model.ProgramConductance(lvl, rng), j, k)
		}
	}
	return nil
}

// Level returns the programmed level of cell (row, col).
func (c *Crossbar) Level(row, col int) int { return c.levels[row*c.Cols+col] }

// Conductance returns the actual (post-variation) conductance of a
// cell.
func (c *Crossbar) Conductance(row, col int) float64 { return c.g.At(row, col) }

// MVM performs the analog read: output currents i_k = Σ_j g_{j,k}·v_j
// for input voltages v, with the model's IR-drop degradation and read
// noise applied. rng may be nil when the model has no read noise;
// passing nil with ReadNoiseSigma > 0 is an error (a read cannot
// invent its noise stream), as is an input of the wrong length — both
// are reachable from user data and must not kill the process.
//
// When IVNonlinearity > 0 the transfer-curve input copy is kept in a
// scratch slice on the crossbar (reused across calls), so MVM is not
// safe for concurrent use on a shared crossbar under that model. No
// current caller shares a nonlinear crossbar across goroutines; clone
// the crossbar if one ever must.
func (c *Crossbar) MVM(v []float64, rng *rand.Rand) ([]float64, error) {
	if len(v) != c.Rows {
		return nil, fmt.Errorf("rram: MVM input length %d, want %d", len(v), c.Rows)
	}
	if c.Model.ReadNoiseSigma > 0 && rng == nil {
		return nil, fmt.Errorf("rram: read noise sigma %g requires an rng", c.Model.ReadNoiseSigma)
	}
	if c.Model.IVNonlinearity > 0 {
		f := c.Model.Transfer()
		if cap(c.nv) < len(v) {
			c.nv = make([]float64, len(v))
		}
		nv := c.nv[:len(v)]
		for j, x := range v {
			nv[j] = f(x)
		}
		v = nv
	}
	out := tensor.MatVecT(c.g, v)
	if c.Model.IRDropAlpha > 0 {
		active := 0
		for _, x := range v {
			if x != 0 {
				active++
			}
		}
		scale := 1 - c.Model.IRDropAlpha*float64(active)/float64(MaxCrossbarSize)
		for k := range out {
			out[k] *= scale
		}
	}
	if c.Model.ReadNoiseSigma > 0 {
		for k := range out {
			out[k] *= 1 + c.Model.ReadNoiseSigma*rng.NormFloat64()
		}
	}
	return out, nil
}

// WeightedSum performs an MVM and converts the column currents back to
// weight units: the GOff baseline current (GOff·Σv) is subtracted —
// physically realized with a reference column — and the remainder is
// scaled by MaxLevel/ΔG, recovering Σ_j v_j·w_j for the programmed
// normalized weights w·MaxLevel.
func (c *Crossbar) WeightedSum(v []float64, rng *rand.Rand) ([]float64, error) {
	out, err := c.MVM(v, rng)
	if err != nil {
		return nil, err
	}
	vsum := 0.0
	for _, x := range v {
		vsum += x
	}
	base := c.Model.GOff * vsum
	scale := float64(c.Model.MaxLevel()) / (c.Model.GOn - c.Model.GOff)
	for k := range out {
		out[k] = (out[k] - base) * scale
	}
	return out, nil
}

// EffectiveWeights returns the matrix of per-cell effective weights in
// level units: (g − GOff)·MaxLevel/ΔG. A digital MVM against this
// matrix is exactly equivalent to WeightedSum with no read noise or IR
// drop, and is the fast path the full-test-set simulations use.
func (c *Crossbar) EffectiveWeights() *tensor.Tensor {
	scale := float64(c.Model.MaxLevel()) / (c.Model.GOn - c.Model.GOff)
	w := tensor.New(c.Rows, c.Cols)
	for i, g := range c.g.Data() {
		w.Data()[i] = (g - c.Model.GOff) * scale
	}
	return w
}

// ReadEnergyCellCount returns how many cells are active (nonzero input
// row) for one MVM with the given input — the quantity the power model
// multiplies by per-cell read energy.
func (c *Crossbar) ReadEnergyCellCount(v []float64) int64 {
	active := 0
	for _, x := range v {
		if x != 0 {
			active++
		}
	}
	return int64(active) * int64(c.Cols)
}
