package nn

import (
	"sei/internal/mnist"
	"sei/internal/obs"
	"sei/internal/par"
)

// MetricEvalImages counts images evaluated by the error-rate paths. It
// is accumulated through a per-chunk ShardedCounter merged in
// chunk-index order, so the total — like the error rate itself — is
// bit-identical for every worker count.
const MetricEvalImages = "eval_images"

// ClassifierErrorRateObs is ClassifierErrorRateWorkers with
// instrumentation: engine scheduling counters plus the eval_images
// sharded counter on rec. A nil rec records nothing and adds only
// nil-check overhead.
func ClassifierErrorRateObs(rec *obs.Recorder, c Classifier, data *mnist.Dataset, workers int) float64 {
	w := evalWorkers(c, workers)
	n := data.Len()
	sc := rec.Sharded(MetricEvalImages, par.NumChunks(n, par.DefaultChunkSize))
	wrong := par.MapReduceRec(rec, w, n, par.DefaultChunkSize,
		func(ch par.Chunk) int {
			sc.Add(ch.Index, int64(ch.Hi-ch.Lo))
			eval := chunkEvaluator(c, ch)
			local := 0
			for i := ch.Lo; i < ch.Hi; i++ {
				if eval.Predict(data.Images[i]) != data.Labels[i] {
					local++
				}
			}
			return local
		},
		func(a, b int) int { return a + b }, 0)
	sc.Merge()
	return float64(wrong) / float64(n)
}

// ErrorRateObs evaluates a float network with instrumentation (see
// ClassifierErrorRateObs).
func ErrorRateObs(rec *obs.Recorder, net *Network, data *mnist.Dataset, workers int) float64 {
	return ClassifierErrorRateObs(rec, net, data, workers)
}
