// Energy breakdown: reproduces the motivation of the paper's Fig. 1 —
// in a traditional RRAM CNN the ADC/DAC interfaces, not the crossbars,
// consume nearly all energy and area — then shows how the three
// structures of Table 5 compare on all three Table-2 networks, and
// finally derives a *measured* per-inference SEI energy by joining the
// hardware-event counters of an instrumented evaluation against the
// same power library (sei.EnergyFromCounters — the accounting path
// cmd/seibench's run reports use).
//
// Run with: go run ./examples/energy_breakdown
package main

import (
	"fmt"
	"log"
	"os"

	"sei"
)

// measuredEnergy evaluates an SEI design with instrumentation and
// prints the counter-derived per-inference energy breakdown.
func measuredEnergy(q *sei.QuantizedNet, train, test *sei.Dataset) {
	opts := sei.DefaultBuildOptions()
	opts.DynamicThreshold = false // geometry/activity demo; skip calibration
	design, err := sei.BuildDesign(q, train, opts)
	if err != nil {
		log.Fatal(err)
	}
	rec := sei.NewRecorder()
	sei.EvaluateDesignObs(rec, design, test, 0)
	rep := rec.Report("energy_breakdown")
	breakdown, err := sei.EnergyFromCounters(rep, sei.DefaultPowerLibrary())
	if err != nil {
		log.Fatal(err)
	}
	perInf, err := sei.EnergyPerInferencePJ(rep, sei.DefaultPowerLibrary())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMeasured (counter-derived) SEI energy over %d images:\n", test.Len())
	fmt.Printf("  %-10s %14s\n", "component", "energy (pJ)")
	for _, row := range []struct {
		name string
		pj   float64
	}{{"SA", breakdown.SA}, {"RRAM", breakdown.RRAM}, {"driver", breakdown.Driver}, {"digital", breakdown.Digital}} {
		fmt.Printf("  %-10s %14.1f\n", row.name, row.pj)
	}
	fmt.Printf("  %-10s %14.1f  (%.2f pJ/inference)\n", "total", breakdown.Total(), perInf)
	fmt.Println("  (sense-amp events replace every ADC conversion; DAC energy is 0 by construction)")
}

func main() {
	fmt.Println("Interface cost across structures (synthetic MNIST, 512x512 crossbars)")
	train, test := sei.SyntheticSplit(600, 60, 1)

	var q2 *sei.QuantizedNet // kept for the measured-energy section
	for id := 1; id <= 3; id++ {
		// Geometry is what matters here, so a short training run is
		// enough to build the quantized network.
		fmt.Fprintf(os.Stderr, "training network %d (short run, geometry only)...\n", id)
		net := sei.TrainTableNetwork(id, train, 1, 1)
		q, err := sei.Quantize(net, train)
		if err != nil {
			log.Fatal(err)
		}
		if id == 2 {
			q2 = q
		}
		costs, err := sei.MapCosts(q, 512)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nNetwork %d:\n", id)
		fmt.Printf("  %-17s %12s %10s %10s %12s\n", "structure", "energy (uJ)", "area(mm2)", "GOPs/J", "iface share")
		base := costs[0]
		for _, c := range costs {
			fmt.Printf("  %-17s %12.3f %10.4f %10.0f %11.1f%%",
				c.Structure, c.EnergyUJ, c.AreaMM2, c.GOPsPerJ, 100*c.InterfaceEnergyFraction)
			if c.Structure != base.Structure {
				fmt.Printf("   (saves %.1f%% energy, %.1f%% area)",
					100*(1-c.EnergyUJ/base.EnergyUJ), 100*(1-c.AreaMM2/base.AreaMM2))
			}
			fmt.Println()
		}
	}
	fmt.Println("\nThe DAC+ADC interfaces dominate the baseline (Fig. 1); SEI replaces")
	fmt.Println("them with sense amplifiers and saves >93% energy (Table 5).")

	measuredEnergy(q2, train, test)
}
