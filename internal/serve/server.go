package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/tensor"
)

// HTTP limits. Requests beyond them are rejected with 400, never
// buffered.
const (
	// MaxImagesPerRequest bounds one predict request; larger batches
	// should be split client-side (the batcher re-coalesces them).
	MaxImagesPerRequest = 1024
	// maxBodyBytes bounds the request body (1024 images of 784 JSON
	// floats fit comfortably).
	maxBodyBytes = 32 << 20
)

// MetricHTTPPanics counts handler panics contained by the recovery
// middleware (500 to the client, process stays up).
const MetricHTTPPanics = "serve_http_panics"

// MetricRequestSeconds is the end-to-end predict latency histogram:
// request decode through batcher queue wait, engine evaluation and
// response encode, observed once per POST /v1/predict (including
// rejected and failed requests — backpressure latency is part of the
// distribution). Buckets are obs.LatencyBounds(); /metrics exposes it
// as a standard cumulative Prometheus histogram, and seibench derives
// serve p50/p99/p999 from the same bounds client-side.
const MetricRequestSeconds = "serve_request_seconds"

// MetricQueueDepth is the batcher's pending-predict gauge, sampled at
// scrape/health time (the queue drains in microseconds, so a sampled
// gauge is the honest representation — a per-event gauge would only
// ever show the scraper its own flush).
const MetricQueueDepth = "serve_queue_depth"

// Options wires a handler together.
type Options struct {
	Registry *Registry
	Batcher  *Batcher
	// Obs backs /metrics and the handler counters; sharing it with the
	// batcher gives one scrape surface. Nil disables recording.
	Obs *obs.Recorder
	// Timeout bounds one predict request end to end (queue wait plus
	// evaluation). Zero means DefaultTimeout.
	Timeout time.Duration
}

// DefaultTimeout bounds a predict request when Options.Timeout is 0.
const DefaultTimeout = 30 * time.Second

// predictRequest is the POST /v1/predict body: a design name and a
// batch of flattened 28×28 images (784 pixels each, values in [0,1]).
type predictRequest struct {
	Design string      `json:"design"`
	Images [][]float64 `json:"images"`
}

// predictResult is one image's outcome. Failed images carry label -1
// and an error string; the rest of the batch is unaffected.
type predictResult struct {
	Label int    `json:"label"`
	Error string `json:"error,omitempty"`
}

type predictResponse struct {
	Design  string          `json:"design"`
	Results []predictResult `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

type server struct {
	opts Options
}

// NewHandler returns the service's HTTP surface:
//
//	POST /v1/predict  — batched classification
//	GET  /v1/designs  — resolvable design names
//	GET  /healthz     — liveness and drain state
//	GET  /metrics     — Prometheus text exposition
//
// Every handler is wrapped in panic recovery: a bug answers 500 and
// increments serve_http_panics instead of killing the process.
func NewHandler(opts Options) http.Handler {
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	s := &server{opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("GET /v1/designs", s.handleDesigns)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.recoverPanics(mux)
}

func (s *server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.opts.Obs.Counter(MetricHTTPPanics).Add(1)
				writeJSON(w, http.StatusInternalServerError,
					errorResponse{Error: fmt.Sprintf("internal error: %v", rec)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// statusFor maps the service's typed errors onto HTTP codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownDesign):
		return http.StatusNotFound
	case errors.Is(err, nn.ErrBadInput):
		return http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	default:
		return http.StatusInternalServerError
	}
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		s.opts.Obs.Histogram(MetricRequestSeconds, obs.LatencyBounds()).
			Observe(time.Since(start).Seconds())
	}()
	var req predictRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed request body: " + err.Error()})
		return
	}
	if req.Design == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing design name"})
		return
	}
	if len(req.Images) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no images"})
		return
	}
	if len(req.Images) > MaxImagesPerRequest {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("%d images exceeds the per-request limit of %d", len(req.Images), MaxImagesPerRequest)})
		return
	}
	c, err := s.opts.Registry.Get(req.Design)
	if err != nil {
		writeJSON(w, statusFor(err), errorResponse{Error: err.Error()})
		return
	}
	imgs := make([]*tensor.Tensor, len(req.Images))
	for i, px := range req.Images {
		if len(px) != mnist.Side*mnist.Side {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: fmt.Sprintf("image %d has %d pixels, want %d", i, len(px), mnist.Side*mnist.Side)})
			return
		}
		imgs[i] = tensor.FromSlice(px, 1, mnist.Side, mnist.Side)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	res, err := s.opts.Batcher.Predict(ctx, c, imgs)
	if err != nil {
		writeJSON(w, statusFor(err), errorResponse{Error: err.Error()})
		return
	}
	resp := predictResponse{Design: req.Design, Results: make([]predictResult, len(res))}
	failed := 0
	for i, pr := range res {
		resp.Results[i].Label = pr.Label
		if pr.Err != nil {
			resp.Results[i].Error = pr.Err.Error()
			failed++
		}
	}
	// Per-image failures ride inside a 200 as long as something
	// succeeded; a fully failed batch answers with the first error's
	// status so single-image clients see a plain 4xx/5xx.
	status := http.StatusOK
	if failed == len(res) {
		for _, pr := range res {
			if pr.Err != nil {
				status = statusFor(pr.Err)
				break
			}
		}
	}
	writeJSON(w, status, resp)
}

func (s *server) handleDesigns(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Designs []string `json:"designs"`
	}{Designs: s.opts.Registry.Names()})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	type health struct {
		Status     string `json:"status"`
		QueueDepth int    `json:"queue_depth"`
	}
	if s.opts.Batcher.Draining() {
		writeJSON(w, http.StatusServiceUnavailable,
			health{Status: "draining", QueueDepth: s.opts.Batcher.QueueDepth()})
		return
	}
	writeJSON(w, http.StatusOK, health{Status: "ok", QueueDepth: s.opts.Batcher.QueueDepth()})
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if s.opts.Obs != nil {
		// Sample the queue depth at scrape time so the gauge reflects
		// standing backlog rather than the scraper's own flush cycle.
		s.opts.Obs.Gauge(MetricQueueDepth).Set(float64(s.opts.Batcher.QueueDepth()))
		s.opts.Obs.WritePrometheus(w)
	}
}
