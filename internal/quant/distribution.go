package quant

import (
	"fmt"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/tensor"
)

// PaperBinEdges are the normalized-data bins of Table 1:
// 0–1/16, 1/16–1/8, 1/8–1/4, 1/4–1.
var PaperBinEdges = []float64{0, 1.0 / 16, 1.0 / 8, 1.0 / 4, 1}

// LayerDistribution is one row of a Table-1-style analysis: the
// fraction of a conv layer's (post-ReLU) intermediate data falling in
// each bin after normalization by the layer maximum.
type LayerDistribution struct {
	LayerName string
	MaxValue  float64
	Count     int64
	Fractions [4]float64
}

// String renders the row like the paper's table.
func (d LayerDistribution) String() string {
	return fmt.Sprintf("%-12s %6.2f%% %6.2f%% %6.2f%% %6.2f%%",
		d.LayerName,
		100*d.Fractions[0], 100*d.Fractions[1], 100*d.Fractions[2], 100*d.Fractions[3])
}

// AnalyzeDistribution measures the intermediate-data distribution of
// every conv layer of a trained float network over a dataset,
// reproducing the analysis of Table 1 (the paper measured CaffeNet;
// we measure the Table-2 networks, which the paper states share the
// same long-tail shape). The returned slice has one entry per conv
// layer plus a final "All Layers" aggregate.
func AnalyzeDistribution(net *nn.Network, data *mnist.Dataset) []LayerDistribution {
	type acc struct {
		name   string
		values []float64
	}
	var accs []*acc

	for _, img := range data.Images {
		_, taps := net.ForwardTaps(img)
		convIdx := 0
		for ti, tap := range taps {
			// A conv layer's intermediate data is its post-ReLU output:
			// take the ReLU tap that immediately follows a Conv2D.
			if ti == 0 {
				continue
			}
			if _, isConv := net.Layers[ti-1].(*nn.Conv2D); !isConv {
				continue
			}
			if _, isReLU := net.Layers[ti].(*nn.ReLU); !isReLU {
				continue
			}
			if convIdx >= len(accs) {
				accs = append(accs, &acc{name: fmt.Sprintf("Layer %d", convIdx+1)})
			}
			accs[convIdx].values = append(accs[convIdx].values, tap.Value.Data()...)
			convIdx++
		}
	}

	var out []LayerDistribution
	var all []float64
	for _, a := range accs {
		out = append(out, distributionOf(a.name, a.values))
		all = append(all, a.values...)
	}
	if len(accs) > 1 {
		out = append(out, distributionOf("All Layers", all))
	}
	return out
}

// distributionOf normalizes values by their maximum and bins them with
// the paper's edges.
func distributionOf(name string, values []float64) LayerDistribution {
	d := LayerDistribution{LayerName: name, Count: int64(len(values))}
	if len(values) == 0 {
		return d
	}
	t := tensor.FromSlice(values, len(values))
	max := t.Max()
	d.MaxValue = max
	if max <= 0 {
		d.Fractions[0] = 1
		return d
	}
	norm := t.Clone()
	norm.Scale(1 / max)
	counts := norm.Histogram(PaperBinEdges)
	for i, c := range counts {
		d.Fractions[i] = float64(c) / float64(len(values))
	}
	return d
}
