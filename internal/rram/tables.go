package rram

// Device-model parameters in table form. The behavioural model's
// methods recompute level conductances and re-read individual model
// fields on every call; the hot paths — programming a large matrix,
// and the packed non-ideal inference engine (seicore/fastnoisy.go) —
// want the same information resolved once: a nominal conductance per
// level, and the read-out coefficients that decide which inference
// path a device model is eligible for.

// ReadoutParams is a device model's read-time behaviour, resolved into
// the coefficients the inference paths consume directly.
type ReadoutParams struct {
	// NoiseSigma is the relative read-noise sigma; zero = noiseless.
	NoiseSigma float64
	// PerCell selects the per-selected-cell noise model (one Gaussian
	// per active cell) over the default per-column model (one Gaussian
	// per column current).
	PerCell bool
	// IRAlpha is the first-order IR-drop coefficient on the column
	// current; zero = no wire loss.
	IRAlpha float64
	// IVUnits is the read voltage in sinh-conduction units V₀; zero =
	// linear conduction.
	IVUnits float64
}

// Readout resolves the model's read-time parameters.
func (m DeviceModel) Readout() ReadoutParams {
	return ReadoutParams{
		NoiseSigma: m.ReadNoiseSigma,
		PerCell:    m.ReadNoisePerCell && m.ReadNoiseSigma > 0,
		IRAlpha:    m.IRDropAlpha,
		IVUnits:    m.IVNonlinearity,
	}
}

// Ideal reports a fully exact read-out: no noise, no IR drop, no I-V
// nonlinearity. Programming-time effects (variation, stuck faults,
// level quantization) are not read-out effects — they are baked into
// effective weights at programming time and never disqualify an exact
// path.
func (p ReadoutParams) Ideal() bool {
	return p.NoiseSigma == 0 && p.IRAlpha == 0 && p.IVUnits == 0
}

// Linear reports whether the device conducts linearly at the read
// voltage. The packed non-ideal paths require it: noise and IR drop
// commute with the packed column sums, the sinh transfer on analog
// inputs does not.
func (p ReadoutParams) Linear() bool { return p.IVUnits == 0 }

// LevelTable returns the nominal conductance of every programmable
// level, levels 0..MaxLevel — LevelConductance in table form, for
// programming loops that touch each of a matrix's cells.
func (m DeviceModel) LevelTable() []float64 {
	t := make([]float64, m.Levels())
	for lvl := range t {
		t[lvl] = m.LevelConductance(lvl)
	}
	return t
}
