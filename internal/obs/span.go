package obs

import (
	"sync/atomic"
	"time"
)

// Span is one node of the hierarchical phase tree (train → quantize →
// build → calibrate → evaluate). Spans measure wall time and sample
// throughput of *serial orchestration phases*: StartSpan/End call
// time.Now and manipulate the recorder's current-span stack, so they
// must never run inside parallel chunk bodies (DESIGN.md §9 — chunk
// bodies record only scheduling-independent event counts). A nil Span
// ignores every method.
type Span struct {
	rec  *Recorder
	Name string

	parent   *Span
	children []*Span
	start    time.Time
	dur      time.Duration
	ended    bool
	samples  atomic.Int64
}

// StartSpan opens a child of the current span and makes it current.
// End it with Span.End; spans form a proper nesting (the last started
// unended span is closed first).
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sp := &Span{rec: r, Name: name, parent: r.cur, start: r.now()}
	r.cur.children = append(r.cur.children, sp)
	r.cur = sp
	return sp
}

// AddSamples attributes n processed samples to the span; exporters
// report samples and samples/s.
func (s *Span) AddSamples(n int64) {
	if s == nil {
		return
	}
	s.samples.Add(n)
}

// End closes the span, recording its wall time, and makes its parent
// current. Ending a span that is not current also closes any unended
// descendants (they keep their own wall time up to this End).
func (s *Span) End() {
	if s == nil {
		return
	}
	r := s.rec
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.ended {
		return
	}
	now := r.now()
	for cur := r.cur; cur != nil && cur != r.root; cur = cur.parent {
		if !cur.ended {
			cur.ended = true
			cur.dur = now.Sub(cur.start)
		}
		if cur == s {
			r.cur = cur.parent
			return
		}
	}
	// s was not on the current stack (already-popped subtree); just
	// close it.
	s.ended = true
	s.dur = now.Sub(s.start)
}

// Duration returns the span's wall time — the time so far when the
// span has not ended.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	r := s.rec
	r.mu.Lock()
	defer r.mu.Unlock()
	return s.durationLocked(r.now())
}

func (s *Span) durationLocked(now time.Time) time.Duration {
	if s.ended {
		return s.dur
	}
	return now.Sub(s.start)
}

// Samples returns the samples attributed so far.
func (s *Span) Samples() int64 {
	if s == nil {
		return 0
	}
	return s.samples.Load()
}
