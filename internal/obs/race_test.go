package obs

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRecorder hammers one recorder from 16 goroutines —
// counters, gauges, histograms, the HW bundle, sharded slots, span
// samples, skips and progress — and checks the totals. Run under
// -race (the CI workflow does) this is the package's thread-safety
// proof.
func TestConcurrentRecorder(t *testing.T) {
	const goroutines = 16
	const iters = 1000

	r := New()
	r.EnableProgress(io.Discard, time.Millisecond)
	sc := r.Sharded("sharded_items", goroutines)
	sp := r.StartSpan("stress")

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hw := r.HW()
			for i := 0; i < iters; i++ {
				r.Counter("shared_events").Add(1)
				hw.MVM(1)
				hw.SACompares(2)
				hw.ActiveInputs(int64(i % 8))
				r.Histogram("lat", []float64{1, 10, 100}).Observe(float64(i % 100))
				r.Gauge("last_worker").Set(float64(g))
				sc.Add(g, 1) // each goroutine owns its shard
				sp.AddSamples(1)
				if i == 0 {
					r.Skip(fmt.Sprintf("point-%d", g), "stress")
				}
				r.Progress("stress", g*iters+i+1, goroutines*iters)
			}
		}(g)
	}
	wg.Wait()
	sp.End()
	sc.Merge()

	vals := r.CounterValues()
	const total = goroutines * iters
	for name, want := range map[string]int64{
		"shared_events": total,
		HWMVMOps:        total,
		HWSAComparisons: 2 * total,
		"sharded_items": total,
	} {
		if vals[name] != want {
			t.Errorf("%s = %d, want %d", name, vals[name], want)
		}
	}
	if got := r.Histogram("lat", nil).Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	if got := r.Histogram(HWActiveInputsPerMVM, nil).Count(); got != total {
		t.Errorf("active-inputs histogram count = %d, want %d", got, total)
	}
	if got := sp.Samples(); got != total {
		t.Errorf("span samples = %d, want %d", got, total)
	}
	if got := len(r.SkippedPoints()); got != goroutines {
		t.Errorf("skipped = %d points, want %d", got, goroutines)
	}
}
