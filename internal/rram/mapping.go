package rram

import (
	"fmt"
	"math"

	"sei/internal/tensor"
)

// WeightBits is the CNN weight precision the paper assumes ("the
// precision of weight matrix is 8-bit").
const WeightBits = 8

// QuantizeSymmetric quantizes a real weight matrix to signed integers
// with the given total precision (sign + magnitude): values are scaled
// by max|w|/(2^(bits-1)−1) and rounded. It returns the integer matrix
// (same shape, row-major) and the scale such that w ≈ q·scale.
func QuantizeSymmetric(w *tensor.Tensor, bits int) ([]int, float64, error) {
	if bits < 2 || bits > 16 {
		return nil, 0, fmt.Errorf("rram: weight bits %d outside [2,16]", bits)
	}
	maxAbs := 0.0
	for _, v := range w.Data() {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	qmax := float64(int(1)<<(bits-1) - 1)
	if maxAbs == 0 {
		return make([]int, w.Len()), 1, nil
	}
	scale := maxAbs / qmax
	q := make([]int, w.Len())
	for i, v := range w.Data() {
		q[i] = int(math.Round(v / scale))
		if q[i] > int(qmax) {
			q[i] = int(qmax)
		}
		if q[i] < -int(qmax) {
			q[i] = -int(qmax)
		}
	}
	return q, scale, nil
}

// Nibbles splits a non-negative magnitude into its high and low
// device-precision slices: m = hi·2^deviceBits + lo. With 8-bit
// weights and 4-bit devices this is the paper's two-cell
// high-bits/low-bits decomposition (A_k ∈ {1, 2⁴}).
func Nibbles(m, deviceBits int) (hi, lo int) {
	if m < 0 {
		panic(fmt.Sprintf("rram: Nibbles of negative magnitude %d", m))
	}
	mask := 1<<deviceBits - 1
	hi = m >> deviceBits
	lo = m & mask
	if hi > mask {
		panic(fmt.Sprintf("rram: magnitude %d does not fit in two %d-bit slices", m, deviceBits))
	}
	return hi, lo
}

// SliceWeight decomposes a signed integer weight into the four cells
// of the paper's representation: positive-high, positive-low,
// negative-high, negative-low, each in [0, 2^deviceBits−1]. Exactly
// one sign's pair is nonzero.
func SliceWeight(q, deviceBits int) (posHi, posLo, negHi, negLo int) {
	if q >= 0 {
		posHi, posLo = Nibbles(q, deviceBits)
		return posHi, posLo, 0, 0
	}
	negHi, negLo = Nibbles(-q, deviceBits)
	return 0, 0, negHi, negLo
}

// ReconstructWeight inverts SliceWeight: q = (posHi·2^b + posLo) −
// (negHi·2^b + negLo).
func ReconstructWeight(posHi, posLo, negHi, negLo, deviceBits int) int {
	return (posHi<<deviceBits + posLo) - (negHi<<deviceBits + negLo)
}

// SliceCount returns how many device cells one unsigned magnitude of
// weightBits needs at deviceBits per cell: ceil(weightBits/deviceBits).
// With the paper's 8-bit weights and 4-bit devices this is 2; weaker
// 2-bit devices need 4 cells, and 8-bit devices store a weight whole.
func SliceCount(weightBits, deviceBits int) int {
	if weightBits < 1 || deviceBits < 1 {
		panic(fmt.Sprintf("rram: SliceCount(%d,%d) invalid", weightBits, deviceBits))
	}
	return (weightBits + deviceBits - 1) / deviceBits
}

// SliceMagnitude decomposes a non-negative magnitude into little-
// endian base-2^deviceBits digits, one per cell:
// m = Σ_i slices[i]·2^(deviceBits·i). Each digit fits a device level.
func SliceMagnitude(m, weightBits, deviceBits int) []int {
	if m < 0 {
		panic(fmt.Sprintf("rram: SliceMagnitude of negative magnitude %d", m))
	}
	n := SliceCount(weightBits, deviceBits)
	mask := 1<<deviceBits - 1
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = m & mask
		m >>= deviceBits
	}
	if m != 0 {
		panic(fmt.Sprintf("rram: magnitude does not fit %d slices of %d bits", n, deviceBits))
	}
	return out
}
