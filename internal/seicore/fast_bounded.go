package seicore

// The bounded variant of the per-image fast path (see bounds.go for
// the bound machinery and the soundness argument). Two skips stack on
// top of predictFast:
//
//   - Pool-crop skip: window positions in edge rows/columns the
//     floor-division pool grid never covers (poolSet drops their bit)
//     are skipped wholesale at every stage — their outputs are
//     unreadable, so not driving them cannot change anything.
//   - Row-bound skip: deeper SEI stages run evalBoundedCounts, which
//     stops driving a block's rows once the suffix bound has decided
//     every column and skips trailing blocks once the cross-block
//     digital threshold has resolved every output.
//
// Labels are bit-identical to predictFast; hw_* counters record only
// work actually performed, and the rows avoided land on the sei_*
// skip counters (obs/skip.go).

import "sei/internal/tensor"

// cropped reports whether output position (oy, ox) falls outside the
// floor-division pool grid — the mirror of poolSet's drop condition.
func (g *stageGeom) croppedAt(oy, ox int) bool {
	return g.pool > 1 && (oy/g.pool >= g.pooledH || ox/g.pool >= g.pooledW)
}

// predictFastBounded is predictFast with the activation-bound and
// pool-crop skips. The caller owns s for the duration of the call.
func (d *SEIDesign) predictFastBounded(img *tensor.Tensor, s *seiScratch) int {
	q := d.Q

	// Stage 0 (DAC-driven, float): no row bounding — the merged layer
	// has no threshold readout to bound against — but pool-cropped
	// windows skip the whole MVM, their active inputs counted skipped.
	g := &s.geom[0]
	out := s.cur
	out.Reset(g.filters * g.pooledH * g.pooledW)
	thr := q.Thresholds[0]
	col := s.col[:g.filters]
	data := img.Data()
	var driven0, skipped0 int64
	for oy := 0; oy < g.outH; oy++ {
		for ox := 0; ox < g.outW; ox++ {
			gatherFloatWindow(data, g, oy, ox, s.field)
			if g.croppedAt(oy, ox) {
				for _, v := range s.field {
					if v != 0 {
						skipped0++
					}
				}
				continue
			}
			driven0 += int64(d.Input.evalIdealInto(s.field, col))
			for k, v := range col {
				if v > thr {
					poolSet(out, g, k, oy, ox)
				}
			}
		}
	}
	if g.pool > 1 {
		q.CountORPool(int64(g.filters * g.pooledH * g.pooledW))
	}
	d.Input.skip.Record(driven0, skipped0, 0, 0, 0)

	// Deeper SEI stages: pool-crop skip plus the bounded row walk.
	for l := 1; l < len(q.Convs); l++ {
		layer := d.Convs[l-1]
		g := &s.geom[l]
		in := s.cur
		out := s.next
		out.Reset(g.filters * g.pooledH * g.pooledW)
		s.win.Reset(g.fan)
		fired := s.fired[:layer.M]
		col := s.col[:layer.M]
		var cropSkip int64
		for oy := 0; oy < g.outH; oy++ {
			for ox := 0; ox < g.outW; ox++ {
				gatherBitWindow(in, g, oy, ox, s.win)
				if g.croppedAt(oy, ox) {
					cropSkip += int64(s.win.OnesCount())
					continue
				}
				layer.evalBoundedCounts(s.win, fired, col)
				for k, f := range fired {
					if f >= layer.DigitalThreshold {
						poolSet(out, g, k, oy, ox)
					}
				}
			}
		}
		if g.pool > 1 {
			q.CountORPool(int64(g.filters * g.pooledH * g.pooledW))
		}
		if cropSkip > 0 {
			layer.skip.Record(0, cropSkip, 0, 0, 0)
		}
		s.cur, s.next = out, in
	}

	// FC stage: argmax readout, nothing to bound.
	d.FC.evalFastInto(s.cur, s.scores, s.col[:d.FC.M])
	best, bi := s.scores[0], 0
	for i, v := range s.scores {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}
