package sei_test

import (
	"fmt"

	"sei"
)

// The dataset generator is deterministic: the same seed always yields
// the same samples, with classes balanced.
func ExampleSyntheticDataset() {
	d := sei.SyntheticDataset(20, 1)
	counts := d.ClassCounts()
	fmt.Println(d.Len(), counts[0], counts[9])
	// Output: 20 2 2
}

// MapCosts compares the three hardware structures without any
// training — geometry alone determines interface counts.
func ExampleMapCosts() {
	train, _ := sei.SyntheticSplit(200, 1, 1)
	net := sei.TrainTableNetwork(2, train, 1, 1)
	q, err := sei.Quantize(net, train)
	if err != nil {
		fmt.Println(err)
		return
	}
	costs, _ := sei.MapCosts(q, 512)
	for _, c := range costs {
		fmt.Printf("%s saves %.0f%%\n", c.Structure, 100*(1-c.EnergyUJ/costs[0].EnergyUJ))
	}
	// Output:
	// DAC+ADC saves 0%
	// 1-bit-Input+ADC saves 4%
	// SEI saves 94%
}

// Device models are plain values; non-idealities are opt-in fields.
func ExampleDefaultDeviceModel() {
	m := sei.DefaultDeviceModel()
	fmt.Println(m.Bits, m.Levels())
	// Output: 4 16
}
