package seicore

import (
	"fmt"
	"math/rand"
	"sync"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/par"
	"sei/internal/quant"
	"sei/internal/rram"
	"sei/internal/tensor"
)

// Structure identifies the three crossbar organizations of Table 5.
type Structure int

const (
	// StructDACADC is the original design: 8-bit data through DACs,
	// four crossbars per matrix merged by ADCs (Fig. 2b).
	StructDACADC Structure = iota
	// StructOneBitADC keeps ADC merging but feeds quantized 1-bit
	// intermediate data (no DACs except the input layer).
	StructOneBitADC
	// StructSEI is the proposed design: 1-bit inputs as selection
	// signals, merging inside the analog sum, sense amplifiers instead
	// of ADCs (Fig. 2c/d).
	StructSEI
)

func (s Structure) String() string {
	switch s {
	case StructDACADC:
		return "DAC+ADC"
	case StructOneBitADC:
		return "1-bit-Input+ADC"
	case StructSEI:
		return "SEI"
	default:
		return fmt.Sprintf("Structure(%d)", int(s))
	}
}

// SEIBuildConfig configures BuildSEI.
type SEIBuildConfig struct {
	Layer LayerOptions
	// Orders[l] permutes conv stage l's logical rows before splitting
	// (from package homog); nil entries use natural order. Only stages
	// that actually split (K > 1) are affected.
	Orders [][]int
	// DynamicThreshold enables the Section-4.3 input-dynamic
	// compensation, calibrated on the training set.
	DynamicThreshold bool
	// Calibration controls the γ/D search when DynamicThreshold or
	// SearchDigital calibration is wanted.
	Calibration CalibrationConfig
	// CalibImages and CalibPositions bound the calibration workload:
	// up to CalibImages training images, up to CalibPositions receptive
	// fields sampled per image and stage.
	CalibImages, CalibPositions int
	// Workers bounds the calibration's parallel engine (0 = all cores,
	// 1 = the serial path). Calibration results are bit-identical for
	// every worker count.
	Workers int
	// Obs, when set, instruments the built design (hardware-event
	// counters) and records calibration counters
	// (sei_calib_candidates, sei_calib_samples); nil disables recording.
	Obs *obs.Recorder
}

// DefaultSEIBuildConfig returns the paper's default SEI setup.
func DefaultSEIBuildConfig() SEIBuildConfig {
	return SEIBuildConfig{
		Layer:            DefaultLayerOptions(),
		DynamicThreshold: true,
		Calibration:      DefaultCalibrationConfig(),
		CalibImages:      60,
		CalibPositions:   24,
	}
}

// SEIDesign is a quantized network mapped onto the SEI structure. The
// input layer keeps the DAC+ADC organization (Section 3.2: input
// pictures still need high precision); deeper conv stages are SEI
// crossbars with SA readout; the FC stage is SEI with per-block
// digital summation feeding the argmax.
type SEIDesign struct {
	Q     *quant.QuantizedNet
	Input *MergedLayer // conv stage 0 (DAC-driven)
	Convs []*SEIConvLayer
	FC    *SEIFCLayer
	// CalibResults records per-stage calibration outcomes (stage index
	// ≥ 1), when calibration ran.
	CalibResults map[int]CalibrationResult

	// fast caches the fast-path eligibility decision (ideal-analog
	// device models everywhere; see fast.go), scratch holds the shared
	// *seiScratch arena pool and sliced the *slicedScratch pool of the
	// bit-sliced batch path (sliced.go). All are set once by
	// initFastPath at build/load time, before the design is shared
	// across goroutines. fastOff/slicedOff are the SetFastPath/
	// SetSlicedPath overrides for benchmarks and path-equivalence
	// tests.
	fast      bool
	fastOff   bool
	slicedOff bool
	scratch   *sync.Pool
	sliced    *sync.Pool
	// bounded enables the runtime activation-bound walk (bounds.go) on
	// the ideal-analog fast paths: labels stay bit-identical, hw_*
	// counters record only work actually performed, and the sei_*
	// counters account for what was skipped. Off by default
	// (SetBounded) so existing counter-parity goldens are unaffected.
	bounded bool
	// noisyPacked caches the packed non-ideal path's eligibility
	// (fastnoisy.go): a linear but non-exact read-out — read noise
	// (per-column or per-cell) and/or IR drop, no I-V nonlinearity.
	// Mutually exclusive with fast (an ideal design takes the ideal
	// path). Set by initFastPath.
	noisyPacked bool
	// approxNoise enables the aggregated-variance noise approximation
	// on the packed path (SetNoiseApprox); boundedApprox records that
	// SetBoundedApprox turned the float path's approximate bounded walk
	// on, which forces noisy predicts back onto the float path — see
	// Predict for the precedence between the two.
	approxNoise   bool
	boundedApprox bool
}

// initFastPath caches the fast-path decision and creates the scratch
// arena pools (per-image and bit-sliced). Called once at construction
// (BuildSEI / LoadDesign). Bound tables are built for every design —
// noisy ones included, since the approximate mode needs them — but the
// bounded walk itself stays off until SetBounded/SetBoundedApprox.
func (d *SEIDesign) initFastPath() {
	d.fast = d.fastEligible()
	d.noisyPacked = !d.fast && d.noisyEligible()
	if d.fast || d.noisyPacked {
		d.scratch = &sync.Pool{}
	}
	if d.fast {
		d.sliced = &sync.Pool{}
	}
	d.initBounds()
	d.initNoiseTables()
}

// SetFastPath enables (the default for eligible designs) or disables
// the bit-packed fast path. Disabling forces the float path — used by
// benchmarks and by the determinism tests that pin fast-vs-float
// bit-identity. It cannot enable the fast path on noisy/nonlinear
// designs. Not safe to call concurrently with evaluation.
func (d *SEIDesign) SetFastPath(on bool) { d.fastOff = !on }

// SetBounded enables the runtime activation-bound walk on the
// ideal-analog fast paths (per-image and bit-sliced): crossbar rows
// that provably cannot change any undecided column's sense-amp
// decision are never driven, and pool-cropped window positions are
// skipped wholesale. Labels are bit-identical to the unbounded paths;
// hw_* counters shrink exactly where work was skipped, with the
// avoided work recorded on the sei_* skip counters. No effect on the
// float path (noisy designs need SetBoundedApprox). Not safe to call
// concurrently with evaluation.
func (d *SEIDesign) SetBounded(on bool) { d.bounded = on }

// Bounded reports whether the activation-bound walk is enabled.
func (d *SEIDesign) Bounded() bool { return d.bounded }

// SetBoundedApprox enables the explicit *approximate* bounded mode on
// the noisy float path: bound decisions are made against the ideal
// column sums, so read noise can flip a decision the bound already
// made. Off by default; cmd/seisim's bounded experiment reports the
// measured accuracy delta. Implies nothing about the ideal-analog
// paths (use SetBounded for those). Not safe to call concurrently with
// evaluation.
func (d *SEIDesign) SetBoundedApprox(on bool) {
	d.boundedApprox = on
	for _, l := range d.Convs {
		l.approx = on
	}
}

// SetNoiseApprox enables the aggregated-variance noise approximation
// on the packed non-ideal path (DESIGN.md §17): layers with per-cell
// read noise draw one Gaussian per column per block, scaled by the
// summed per-cell variance, instead of one per active cell. The
// per-column draw distribution is identical to the exact pass (pinned
// by noise_test.go's KS harness) but the draws are not bit-identical
// to it — an explicit Monte Carlo throughput trade; cmd/seisim's
// noisy study measures the accuracy delta. Layers with per-column
// noise are unaffected (their exact pass is already one draw per
// column). Precedence over SetBoundedApprox: when both are on, the
// noise approximation wins and predicts stay on the packed path (the
// float path's approximate bounded walk never runs). Not safe to call
// concurrently with evaluation.
func (d *SEIDesign) SetNoiseApprox(on bool) { d.approxNoise = on }

// NoiseApprox reports whether the aggregated-variance approximation
// is enabled.
func (d *SEIDesign) NoiseApprox() bool { return d.approxNoise }

// noisyEligible reports whether every stage reads out linearly —
// read noise and IR drop commute with the packed column sums
// (fastnoisy.go applies them as separate passes over the bit-summed
// ideal values), the sinh I-V transfer on the analog input stage does
// not.
func (d *SEIDesign) noisyEligible() bool {
	if !d.Input.model.Readout().Linear() {
		return false
	}
	for _, l := range d.Convs {
		if !l.model.Readout().Linear() {
			return false
		}
	}
	return d.FC.model.Readout().Linear()
}

// initNoiseTables builds the squared-weight variance tables the
// aggregated-noise approximation folds into the packed sum — only for
// layers whose device model draws per-cell noise (the approximation
// is an identity elsewhere). Tables are functions of the effective
// weights, so they are derived at build/load time and never persisted.
func (d *SEIDesign) initNoiseTables() {
	for _, l := range d.Convs {
		if l.cells == nil {
			continue
		}
		for bi := range l.blocks {
			l.blocks[bi].initSquares()
		}
	}
	if d.FC.cells != nil {
		for bi := range d.FC.blocks {
			d.FC.blocks[bi].initSquares()
		}
	}
}

var _ quant.StageEval = (*SEIDesign)(nil)

// BuildSEI maps the quantized network onto SEI hardware. train is used
// only for dynamic-threshold calibration and may be nil when
// cfg.DynamicThreshold is false.
func BuildSEI(q *quant.QuantizedNet, train *mnist.Dataset, cfg SEIBuildConfig, rng *rand.Rand) (*SEIDesign, error) {
	if len(q.Convs) < 1 {
		return nil, fmt.Errorf("seicore: quantized net has no conv stages")
	}
	if err := par.Validate(cfg.Workers); err != nil {
		return nil, fmt.Errorf("seicore: build config: %w", err)
	}
	d := &SEIDesign{Q: q, CalibResults: map[int]CalibrationResult{}}

	input, err := NewMergedLayer(q.ConvMatrix(0), cfg.Layer.Model, rng)
	if err != nil {
		return nil, fmt.Errorf("seicore: input stage: %w", err)
	}
	d.Input = input

	for l := 1; l < len(q.Convs); l++ {
		opt := cfg.Layer
		if cfg.Orders != nil && l < len(cfg.Orders) {
			opt.Order = cfg.Orders[l]
		}
		layer, err := NewSEIConvLayer(q.ConvMatrix(l), q.Thresholds[l], opt, rng)
		if err != nil {
			return nil, fmt.Errorf("seicore: conv stage %d: %w", l, err)
		}
		d.Convs = append(d.Convs, layer)
	}

	fcOpt := cfg.Layer
	fcOpt.Order = nil // FC blocks are summed exactly; order is irrelevant
	fc, err := NewSEIFCLayer(q.FCMatrix(), q.FC.B, fcOpt, rng)
	if err != nil {
		return nil, fmt.Errorf("seicore: FC stage: %w", err)
	}
	d.FC = fc

	// Instrument before calibration so the γ/D search's hardware
	// activity is part of the run report, and enable the fast path so
	// the search itself runs on it (results are bit-identical either
	// way).
	d.Instrument(cfg.Obs)
	d.initFastPath()

	if cfg.DynamicThreshold && train != nil && train.Len() > 0 {
		if err := d.calibrate(train, cfg); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Instrument routes the design's hardware-event counters to rec; nil
// detaches. Evaluation clones made later share the counters (struct
// copies keep the pointer; the counters are atomic). The embedded
// quantized net is instrumented too: the OR-pool reductions of the
// binarized data path are recorded through it (CountORPool), so a
// design instrumented after the fact — a loaded snapshot, or
// EvaluateDesignObs on a net quantized without a recorder — reports
// the same counter set as one built inside an instrumented pipeline.
func (d *SEIDesign) Instrument(rec *obs.Recorder) {
	hw := rec.HW()
	d.Input.hw = hw
	d.Input.skip = rec.SkipHW("stage0")
	for i, l := range d.Convs {
		l.hw = hw
		l.skip = rec.SkipHW(fmt.Sprintf("stage%d", i+1))
	}
	d.FC.hw = hw
	if d.Q != nil {
		d.Q.Instrument(rec)
	}
}

// calibrate runs the Section-4.3 dynamic-threshold optimization for
// every split SEI conv stage. The paper optimizes "the interval of
// dynamic threshold" on the training set; we grid-search each split
// layer's slope γ and digital count threshold D directly against
// classification accuracy on the calibration images (the per-bit
// agreement objective of SEIConvLayer.Calibrate is too flat to
// discriminate D choices reliably).
func (d *SEIDesign) calibrate(train *mnist.Dataset, cfg SEIBuildConfig) error {
	data := train
	if cfg.CalibImages > 0 && cfg.CalibImages < train.Len() {
		data = train.Subset(cfg.CalibImages)
	}
	// The γ/D grid search mutates the layer between accuracy calls;
	// within one call d is read-only (noisy designs clone per chunk,
	// snapshotting the current γ/D), so samples fan out safely.
	accuracy := func() float64 {
		cfg.Obs.Counter("sei_calib_candidates").Add(1)
		return 1 - nn.ClassifierErrorRateObs(cfg.Obs, d, data, cfg.Workers)
	}
	for li, layer := range d.Convs {
		stage := li + 1 // conv stage index in the quantized net
		if layer.K <= 1 {
			continue // no splitting, nothing to compensate
		}
		// Per-block mean active counts from the digital pipeline.
		samples := d.collectCalibration(stage, data.Images, cfg.CalibPositions, cfg.Workers, cfg.Obs)
		if len(samples) == 0 {
			return fmt.Errorf("seicore: no calibration samples for stage %d", stage)
		}
		cfg.Obs.Counter("sei_calib_samples").Add(int64(len(samples)))
		// Active counts are noise-independent ints, but BlockSums draws
		// from the layer's noise RNG when the model has read noise, so
		// each chunk works on a re-seeded clone. Integer-valued float
		// sums are exact; folding in chunk order keeps the division
		// bit-identical anyway.
		onesMean := make([]float64, layer.K)
		meanOnes := 0.0
		type onesPartial struct {
			perBlock []float64
			total    float64
		}
		for _, p := range par.MapChunksRec(cfg.Obs, cfg.Workers, len(samples), par.DefaultChunkSize,
			func(c par.Chunk) onesPartial {
				eval := layer.evalClone(layerSeed(calibSeedBase, c.Index))
				p := onesPartial{perBlock: make([]float64, layer.K)}
				for i := c.Lo; i < c.Hi; i++ {
					_, _, ones := eval.BlockSums(samples[i].In)
					for b, o := range ones {
						p.perBlock[b] += float64(o)
						p.total += float64(o)
					}
				}
				return p
			}) {
			for b, v := range p.perBlock {
				onesMean[b] += v
			}
			meanOnes += p.total
		}
		for b := range onesMean {
			onesMean[b] /= float64(len(samples))
		}
		meanOnes /= float64(len(samples))
		layer.OnesMean = onesMean

		gammaUnit := 0.0
		if meanOnes > 0 {
			gammaUnit = layer.Threshold / meanOnes
		}
		defaultD := (layer.K + 2) / 2
		layer.Gamma, layer.DigitalThreshold = 0, defaultD
		before := accuracy()
		bestGamma, bestD, bestAcc := 0.0, defaultD, before
		for _, f := range cfg.Calibration.GammaFactors {
			gamma := f * gammaUnit
			dLo, dHi := defaultD, defaultD
			if cfg.Calibration.SearchDigital {
				dLo, dHi = 1, layer.K
			}
			for dt := dLo; dt <= dHi; dt++ {
				layer.Gamma, layer.DigitalThreshold = gamma, dt
				if acc := accuracy(); acc > bestAcc {
					bestGamma, bestD, bestAcc = gamma, dt, acc
				}
			}
		}
		layer.Gamma, layer.DigitalThreshold = bestGamma, bestD
		d.CalibResults[stage] = CalibrationResult{
			Gamma:            bestGamma,
			DigitalThreshold: bestD,
			OnesMean:         onesMean,
			AgreementBefore:  before,
			AgreementAfter:   bestAcc,
		}
	}
	return nil
}

// calibSeedBase anchors the noise streams consumed while measuring
// per-block active counts; a fixed constant keeps calibration
// reproducible and worker-count independent.
const calibSeedBase int64 = 0xCA11B

// collectCalibration gathers (receptive field, digital reference bits)
// pairs for one conv stage from training images, using the exact
// digital pipeline for both the stage inputs and the reference. Images
// are processed in parallel; per-image sample lists concatenate in
// image order, so the result is independent of the worker count.
func (d *SEIDesign) collectCalibration(stage int, images []*tensor.Tensor, maxPositions, workers int, rec *obs.Recorder) []CalibrationSample {
	q := d.Q
	digital := q.Digital()
	perImage := make([][]CalibrationSample, len(images))
	par.ForEachRec(rec, workers, len(images), func(i int) {
		acts := q.BinaryActivations(images[i])
		in := acts[stage-1] // activation map entering this stage
		c := &q.Convs[stage]
		kh, kw := c.W.Dim(2), c.W.Dim(3)
		cols := tensor.Im2Col(in, kh, kw, c.Stride)
		positions := cols.Dim(0)
		fan := cols.Dim(1)
		step := 1
		if maxPositions > 0 && positions > maxPositions {
			step = positions / maxPositions
		}
		for p := 0; p < positions; p += step {
			field := append([]float64(nil), cols.Data()[p*fan:(p+1)*fan]...)
			perImage[i] = append(perImage[i], CalibrationSample{
				In:  field,
				Ref: digital.EvalConv(stage, field),
			})
		}
	})
	var samples []CalibrationSample
	for _, s := range perImage {
		samples = append(samples, s...)
	}
	return samples
}

// EvalConv implements quant.StageEval.
func (d *SEIDesign) EvalConv(l int, in []float64) []bool {
	if l == 0 {
		out := d.Input.Eval(in)
		bits := make([]bool, len(out))
		thr := d.Q.Thresholds[0]
		for k, v := range out {
			bits[k] = v > thr
		}
		return bits
	}
	return d.Convs[l-1].Eval(in)
}

// EvalFC implements quant.StageEval.
func (d *SEIDesign) EvalFC(in []float64) []float64 { return d.FC.Eval(in) }

// Predict classifies one image through the SEI hardware simulation.
// This is the single dispatch point for every inference path:
//
//   - Ideal-analog designs (no read noise, IR drop or I-V
//     nonlinearity — the Table 4/5 default) run the bit-packed,
//     allocation-free path of fast.go.
//   - Linearly non-ideal designs (read noise and/or IR drop, no I-V
//     nonlinearity) run the packed non-ideal path of fastnoisy.go —
//     bit-identical to the float path in labels, counters and RNG
//     consumption — unless SetBoundedApprox demanded the float path's
//     approximate bounded walk; SetNoiseApprox overrides that demand
//     (the two approximations' precedence, pinned by noise_test.go).
//   - Everything else (sinh I-V designs; boundedApprox without
//     noiseApprox) keeps the float path.
//
// The scratch pool hands each goroutine its own arena, so a shared
// noise-free design stays safe under the parallel engine; noisy
// designs additionally carry per-layer noise streams and go through
// CloneForEval's per-chunk clones, exactly as on the float path.
func (d *SEIDesign) Predict(img *tensor.Tensor) int {
	if !d.fastOff && d.scratch != nil {
		if d.fast {
			s, _ := d.scratch.Get().(*seiScratch)
			if s == nil {
				s = newSEIScratch(d)
			}
			label := d.predictFast(img, s)
			d.scratch.Put(s)
			return label
		}
		if d.noisyPacked && (d.approxNoise || !d.boundedApprox) {
			s, _ := d.scratch.Get().(*seiScratch)
			if s == nil {
				s = newSEIScratch(d)
			}
			label := d.predictFastNoisy(img, s)
			d.scratch.Put(s)
			return label
		}
	}
	return d.Q.PredictWith(d, img)
}

// MergedDesign is a quantized network in which every stage keeps the
// ADC-merging organization (StructOneBitADC): functionally the digital
// quantized network computed against device-perturbed weights.
type MergedDesign struct {
	Q      *quant.QuantizedNet
	Stages []*MergedLayer
	FC     *MergedLayer
}

var _ quant.StageEval = (*MergedDesign)(nil)

// BuildOneBitADC maps the quantized network onto the 1-bit-input,
// ADC-merged structure.
func BuildOneBitADC(q *quant.QuantizedNet, model rram.DeviceModel, rng *rand.Rand) (*MergedDesign, error) {
	d := &MergedDesign{Q: q}
	for l := range q.Convs {
		layer, err := NewMergedLayer(q.ConvMatrix(l), model, rng)
		if err != nil {
			return nil, fmt.Errorf("seicore: conv stage %d: %w", l, err)
		}
		d.Stages = append(d.Stages, layer)
	}
	fc, err := NewMergedLayer(q.FCMatrix(), model, rng)
	if err != nil {
		return nil, fmt.Errorf("seicore: FC stage: %w", err)
	}
	d.FC = fc
	return d, nil
}

// Instrument routes the design's hardware-event counters to rec; nil
// detaches (see SEIDesign.Instrument).
func (d *MergedDesign) Instrument(rec *obs.Recorder) {
	hw := rec.HW()
	for _, l := range d.Stages {
		l.hw = hw
	}
	d.FC.hw = hw
}

// EvalConv implements quant.StageEval.
func (d *MergedDesign) EvalConv(l int, in []float64) []bool {
	out := d.Stages[l].Eval(in)
	bits := make([]bool, len(out))
	thr := d.Q.Thresholds[l]
	for k, v := range out {
		bits[k] = v > thr
	}
	return bits
}

// EvalFC implements quant.StageEval.
func (d *MergedDesign) EvalFC(in []float64) []float64 {
	out := d.FC.Eval(in)
	for i := range out {
		out[i] += d.Q.FC.B[i]
	}
	return out
}

// Predict classifies one image through the merged-hardware simulation.
func (d *MergedDesign) Predict(img *tensor.Tensor) int {
	return d.Q.PredictWith(d, img)
}

// FloatDesign is the original full-precision design (StructDACADC):
// 8-bit data everywhere, conv stages and FC computed on ADC-merged
// crossbars, ReLU and max pooling in the digital domain. It reproduces
// the "before quantization" accuracy against device-perturbed weights.
type FloatDesign struct {
	specs []quant.ConvSpec
	fcB   []float64
	conv  []*MergedLayer
	fc    *MergedLayer
}

// BuildDACADC maps a trained float network onto the traditional
// structure.
func BuildDACADC(net *nn.Network, inShape []int, model rram.DeviceModel, rng *rand.Rand) (*FloatDesign, error) {
	q, err := quant.Extract(net, inShape)
	if err != nil {
		return nil, err
	}
	d := &FloatDesign{specs: q.Convs, fcB: q.FC.B}
	for l := range q.Convs {
		layer, err := NewMergedLayer(q.ConvMatrix(l), model, rng)
		if err != nil {
			return nil, fmt.Errorf("seicore: conv stage %d: %w", l, err)
		}
		d.conv = append(d.conv, layer)
	}
	fc, err := NewMergedLayer(q.FCMatrix(), model, rng)
	if err != nil {
		return nil, fmt.Errorf("seicore: FC stage: %w", err)
	}
	d.fc = fc
	return d, nil
}

// Instrument routes the design's hardware-event counters to rec; nil
// detaches (see SEIDesign.Instrument).
func (d *FloatDesign) Instrument(rec *obs.Recorder) {
	hw := rec.HW()
	for _, l := range d.conv {
		l.hw = hw
	}
	d.fc.hw = hw
}

// Predict classifies one image with full-precision data flow.
func (d *FloatDesign) Predict(img *tensor.Tensor) int {
	cur := img
	for l := range d.specs {
		c := &d.specs[l]
		kh, kw := c.W.Dim(2), c.W.Dim(3)
		cols := tensor.Im2Col(cur, kh, kw, c.Stride)
		positions, fan := cols.Dim(0), cols.Dim(1)
		h, w := cur.Dim(1), cur.Dim(2)
		outH := (h-kh)/c.Stride + 1
		outW := (w-kw)/c.Stride + 1
		next := tensor.New(c.Filters(), outH, outW)
		for p := 0; p < positions; p++ {
			out := d.conv[l].Eval(cols.Data()[p*fan : (p+1)*fan])
			oy, ox := p/outW, p%outW
			for k, v := range out {
				if v > 0 { // digital ReLU
					next.Set(v, k, oy, ox)
				}
			}
		}
		if c.PoolSize > 1 {
			next = floatMaxPool(next, c.PoolSize)
		}
		cur = next
	}
	scores := d.fc.Eval(cur.Data())
	for i := range scores {
		scores[i] += d.fcB[i]
	}
	return tensor.FromSlice(scores, len(scores)).ArgMax()
}

// floatMaxPool is digital max pooling for the full-precision design.
func floatMaxPool(x *tensor.Tensor, size int) *tensor.Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := h/size, w/size
	out := tensor.New(c, oh, ow)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := x.At(ch, oy*size, ox*size)
				for ky := 0; ky < size; ky++ {
					for kx := 0; kx < size; kx++ {
						if v := x.At(ch, oy*size+ky, ox*size+kx); v > best {
							best = v
						}
					}
				}
				out.Set(best, ch, oy, ox)
			}
		}
	}
	return out
}
