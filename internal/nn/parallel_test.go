package nn

import (
	"bytes"
	"strings"
	"testing"

	"sei/internal/mnist"
	"sei/internal/tensor"
)

// outOfRange always predicts an invalid class; it is deliberately not
// a ParallelClassifier so it also exercises the serial fallback.
type outOfRange struct{}

func (outOfRange) Predict(in *tensor.Tensor) int { return mnist.NumClasses + 3 }

func trainedNet(t *testing.T) (*Network, *mnist.Dataset) {
	t.Helper()
	data := mnist.Synthetic(160, 11)
	net := NewTableNetwork(2, 4)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	Train(net, data, cfg)
	return net, data
}

func TestErrorRateWorkersDeterministic(t *testing.T) {
	net, data := trainedNet(t)
	ref := ErrorRateWorkers(net, data, 1)
	for _, workers := range []int{2, 8, 0} {
		if got := ErrorRateWorkers(net, data, workers); got != ref {
			t.Fatalf("workers=%d: error %.6f != serial %.6f", workers, got, ref)
		}
	}
	// The convenience wrappers must agree with the serial path too.
	if got := ErrorRate(net, data); got != ref {
		t.Fatalf("ErrorRate %.6f != serial %.6f", got, ref)
	}
	if got := ClassifierErrorRate(net, data); got != ref {
		t.Fatalf("ClassifierErrorRate %.6f != serial %.6f", got, ref)
	}
}

func TestEvalCloneSharesParamsOwnsScratch(t *testing.T) {
	net, data := trainedNet(t)
	clone := net.EvalClone()
	for i := range data.Images {
		if clone.Predict(data.Images[i]) != net.Predict(data.Images[i]) {
			t.Fatalf("clone disagrees with original on sample %d", i)
		}
	}
	// Parameters are shared, not copied.
	po := net.Params()
	pc := clone.Params()
	if len(po) != len(pc) {
		t.Fatalf("clone has %d params, original %d", len(pc), len(po))
	}
	for i := range po {
		if po[i] != pc[i] {
			t.Fatalf("param %d is copied, want shared", i)
		}
	}
}

func TestConfusionMatrixOverflowBucket(t *testing.T) {
	data := mnist.Synthetic(40, 2)
	cm := ConfusionMatrix(outOfRange{}, data)
	if len(cm) != mnist.NumClasses || len(cm[0]) != mnist.NumClasses+1 {
		t.Fatalf("matrix shape %dx%d, want %dx%d",
			len(cm), len(cm[0]), mnist.NumClasses, mnist.NumClasses+1)
	}
	total, overflow := 0, 0
	for _, row := range cm {
		for p, n := range row {
			total += n
			if p == mnist.NumClasses {
				overflow += n
			}
		}
	}
	if total != data.Len() {
		t.Fatalf("matrix total %d, want %d (out-of-range predictions dropped?)", total, data.Len())
	}
	if overflow != data.Len() {
		t.Fatalf("overflow bucket holds %d, want all %d", overflow, data.Len())
	}
	// Every class with samples is 100% wrong.
	for cls, e := range PerClassError(cm) {
		sum := 0
		for _, n := range cm[cls] {
			sum += n
		}
		if sum > 0 && e != 1 {
			t.Fatalf("class %d error %.2f, want 1.0", cls, e)
		}
	}
	// The overflow column is not a class pair.
	if _, pred, n := MostConfusedPair(cm); n != 0 {
		t.Fatalf("MostConfusedPair picked overflow column (pred %d, n %d)", pred, n)
	}
	var buf bytes.Buffer
	PrintConfusion(&buf, cm)
	if !strings.Contains(buf.String(), "inv") {
		t.Fatalf("PrintConfusion missing overflow header:\n%s", buf.String())
	}
}

func TestConfusionMatrixMatchesErrorRateParallel(t *testing.T) {
	net, data := trainedNet(t)
	cm := ConfusionMatrix(net, data)
	diag, total := 0, 0
	for tgt, row := range cm {
		for p, n := range row {
			total += n
			if p == tgt {
				diag += n
			}
		}
	}
	if total != data.Len() {
		t.Fatalf("total %d, want %d", total, data.Len())
	}
	if got, want := 1-float64(diag)/float64(total), ErrorRate(net, data); got != want {
		t.Fatalf("matrix error %.6f, ErrorRate %.6f", got, want)
	}
}

func TestTrainRejectsNegativeWorkers(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Train with Workers=-1 did not panic")
		}
		if !strings.Contains(r.(string), "negative") {
			t.Fatalf("panic message %q does not explain the error", r)
		}
	}()
	cfg := DefaultTrainConfig()
	cfg.Workers = -1
	Train(NewTableNetwork(2, 1), mnist.Synthetic(4, 1), cfg)
}

func TestTrainLogsValidation(t *testing.T) {
	train, val := mnist.SyntheticSplit(60, 30, 4)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	var buf bytes.Buffer
	cfg.Log = &buf
	cfg.Val = val
	cfg.Workers = 2
	Train(NewTableNetwork(2, 3), train, cfg)
	if !strings.Contains(buf.String(), "val error") {
		t.Fatalf("per-epoch validation not logged:\n%s", buf.String())
	}
}
