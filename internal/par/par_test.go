package par

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := Validate(-1); err == nil {
		t.Fatal("Validate(-1) must fail")
	}
	if err := Validate(0); err != nil {
		t.Fatalf("Validate(0): %v", err)
	}
	if err := Validate(8); err != nil {
		t.Fatalf("Validate(8): %v", err)
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(3); got != 3 {
		t.Fatalf("Resolve(3) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Resolve(-1) must panic")
		}
	}()
	Resolve(-1)
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		const n = 1003
		hits := make([]int32, n)
		ForEach(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachChunkBoundaries(t *testing.T) {
	var got []Chunk
	ForEachChunk(1, 10, 4, func(c Chunk) { got = append(got, c) })
	want := []Chunk{{0, 0, 4}, {1, 4, 8}, {2, 8, 10}}
	if len(got) != len(want) {
		t.Fatalf("chunks %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chunk %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Empty range: no calls, no panic.
	ForEachChunk(4, 0, 4, func(Chunk) { t.Fatal("called on empty range") })
}

func TestMapChunksOrderIndependentOfWorkers(t *testing.T) {
	const n = 257
	ref := MapChunks(1, n, 8, func(c Chunk) int { return c.Lo*31 + c.Hi })
	for _, workers := range []int{2, 5, 0} {
		got := MapChunks(workers, n, 8, func(c Chunk) int { return c.Lo*31 + c.Hi })
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d chunks, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: chunk %d = %d, want %d", workers, i, got[i], ref[i])
			}
		}
	}
}

// Float summation is not associative; MapReduce must still be
// bit-identical across worker counts because the fold is serial in
// chunk order.
func TestMapReduceFloatDeterminism(t *testing.T) {
	const n = 1000
	vals := make([]float64, n)
	rng := rand.New(rand.NewSource(42))
	for i := range vals {
		vals[i] = rng.NormFloat64() * 1e3
	}
	sum := func(workers int) float64 {
		return MapReduce(workers, n, DefaultChunkSize,
			func(c Chunk) float64 {
				s := 0.0
				for i := c.Lo; i < c.Hi; i++ {
					s += vals[i]
				}
				return s
			},
			func(a, b float64) float64 { return a + b }, 0)
	}
	ref := sum(1)
	for _, workers := range []int{2, 3, 8, 0} {
		if got := sum(workers); got != ref {
			t.Fatalf("workers=%d: sum %v != serial %v", workers, got, ref)
		}
	}
}

func TestCount(t *testing.T) {
	const n = 500
	want := 0
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			want++
		}
	}
	for _, workers := range []int{1, 2, 8, 0} {
		if got := Count(workers, n, func(i int) bool { return i%3 == 0 }); got != want {
			t.Fatalf("workers=%d: count %d, want %d", workers, got, want)
		}
	}
}

func TestChunkSeedDecorrelated(t *testing.T) {
	seen := map[int64]bool{}
	for c := 0; c < 1000; c++ {
		s := ChunkSeed(1, c)
		if seen[s] {
			t.Fatalf("duplicate seed for chunk %d", c)
		}
		seen[s] = true
	}
	if ChunkSeed(1, 0) == ChunkSeed(2, 0) {
		t.Fatal("base seed does not alter chunk seeds")
	}
	// Stable across calls (pure function).
	if ChunkSeed(7, 3) != ChunkSeed(7, 3) {
		t.Fatal("ChunkSeed is not deterministic")
	}
}
