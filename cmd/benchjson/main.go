// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report. The repo's `make bench-json` target
// pipes the inference benchmarks through it to produce BENCH_PR4.json,
// the recorded before/after evidence for the bit-packed fast path,
// and `make bench-quant` pipes the calibration benchmarks into
// BENCH_PR5.json, the evidence for the incremental threshold-search
// engine (ns/op, B/op, allocs/op and custom metrics such as
// images/sec and skip_rate, plus derived baseline/optimized ratios).
//
// The parsing itself lives in internal/benchparse, shared with
// cmd/seibench — the benchmark front door that writes trend-gated
// bench-reports (see README "Benchmark front door").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"sei/internal/benchparse"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	rep, err := benchparse.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
