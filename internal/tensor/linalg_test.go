package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveConv computes valid convolution (really cross-correlation, as
// in CNN frameworks) directly from the definition, as a reference for
// the im2col path.
func naiveConv(in *Tensor, w *Tensor, stride int) *Tensor {
	c, h, wd := in.Dim(0), in.Dim(1), in.Dim(2)
	f, kc, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	if kc != c {
		panic("channel mismatch")
	}
	outH := (h-kh)/stride + 1
	outW := (wd-kw)/stride + 1
	out := New(f, outH, outW)
	for o := 0; o < f; o++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				s := 0.0
				for ch := 0; ch < c; ch++ {
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							s += in.At(ch, oy*stride+ky, ox*stride+kx) * w.At(o, ch, ky, kx)
						}
					}
				}
				out.Set(s, o, oy, ox)
			}
		}
	}
	return out
}

func TestIm2ColShape(t *testing.T) {
	in := New(3, 10, 8)
	cols := Im2Col(in, 3, 3, 1)
	if cols.Dim(0) != 8*6 || cols.Dim(1) != 27 {
		t.Fatalf("Im2Col shape %v, want [48 27]", cols.Shape())
	}
}

func TestIm2ColStride(t *testing.T) {
	in := New(1, 6, 6)
	cols := Im2Col(in, 2, 2, 2)
	if cols.Dim(0) != 9 || cols.Dim(1) != 4 {
		t.Fatalf("strided Im2Col shape %v, want [9 4]", cols.Shape())
	}
}

// Property: convolution via im2col + MatMul matches the naive
// definition for random shapes and values.
func TestIm2ColConvMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := 1 + r.Intn(3)
		kh := 1 + r.Intn(3)
		kw := 1 + r.Intn(3)
		h := kh + r.Intn(5)
		w := kw + r.Intn(5)
		filters := 1 + r.Intn(4)
		stride := 1 + r.Intn(2)
		in := New(c, h, w)
		for i := range in.Data() {
			in.Data()[i] = r.NormFloat64()
		}
		wt := New(filters, c, kh, kw)
		for i := range wt.Data() {
			wt.Data()[i] = r.NormFloat64()
		}
		want := naiveConv(in, wt, stride)

		cols := Im2Col(in, kh, kw, stride)      // [P, c*kh*kw]
		wmat := wt.Reshape(filters, c*kh*kw)    // [F, c*kh*kw]
		prod := MatMul(wmat, Transpose2D(cols)) // [F, P]
		got := prod.Reshape(filters, want.Dim(1), want.Dim(2))
		return EqualApprox(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColPanicsOnBadInput(t *testing.T) {
	cases := []func(){
		func() { Im2Col(New(4, 4), 2, 2, 1) },    // not 3-D
		func() { Im2Col(New(1, 4, 4), 5, 2, 1) }, // kernel too big
		func() { Im2Col(New(1, 4, 4), 2, 2, 0) }, // zero stride
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: Col2Im is the adjoint of Im2Col, i.e.
// <Im2Col(x), y> == <x, Col2Im(y)> for all x, y. This is the exact
// condition backprop needs.
func TestCol2ImAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := 1 + r.Intn(3)
		kh := 1 + r.Intn(3)
		kw := 1 + r.Intn(3)
		h := kh + r.Intn(4)
		w := kw + r.Intn(4)
		stride := 1 + r.Intn(2)
		x := New(c, h, w)
		for i := range x.Data() {
			x.Data()[i] = r.NormFloat64()
		}
		ax := Im2Col(x, kh, kw, stride)
		y := New(ax.Dim(0), ax.Dim(1))
		for i := range y.Data() {
			y.Data()[i] = r.NormFloat64()
		}
		aty := Col2Im(y, c, h, w, kh, kw, stride)
		lhs := 0.0
		for i := range ax.Data() {
			lhs += ax.Data()[i] * y.Data()[i]
		}
		rhs := 0.0
		for i := range x.Data() {
			rhs += x.Data()[i] * aty.Data()[i]
		}
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCol2ImShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Col2Im with wrong shape did not panic")
		}
	}()
	Col2Im(New(3, 3), 1, 4, 4, 2, 2, 1)
}

// TestIntoKernelsMatchAllocatingKernels pins the Into variants against
// their allocating counterparts bit-for-bit on random inputs, with the
// destination pre-poisoned to catch any element that is not
// overwritten (or, for MatMulInto, not zeroed).
func TestIntoKernelsMatchAllocatingKernels(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		randFill := func(x *Tensor) {
			d := x.Data()
			for i := range d {
				d[i] = r.NormFloat64()
				if r.Intn(4) == 0 { // exercise the zero-skip branches
					d[i] = 0
				}
			}
		}
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := New(m, k)
		b := New(k, n)
		randFill(a)
		randFill(b)

		want := MatMul(a, b)
		got := New(m, n)
		got.Fill(math.NaN())
		MatMulInto(got, a, b)
		for i := range want.Data() {
			if want.Data()[i] != got.Data()[i] {
				return false
			}
		}

		wantT := Transpose2D(a)
		gotT := New(k, m)
		gotT.Fill(math.NaN())
		Transpose2DInto(gotT, a)
		for i := range wantT.Data() {
			if wantT.Data()[i] != gotT.Data()[i] {
				return false
			}
		}

		x := make([]float64, k)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		wantY := MatVec(a, x)
		gotY := make([]float64, m)
		for i := range gotY {
			gotY[i] = math.NaN()
		}
		MatVecInto(gotY, a, x)
		for i := range wantY {
			if wantY[i] != gotY[i] {
				return false
			}
		}

		c := 1 + r.Intn(3)
		kh, kw := 1+r.Intn(3), 1+r.Intn(3)
		h, w := kh+r.Intn(4), kw+r.Intn(4)
		stride := 1 + r.Intn(2)
		in := New(c, h, w)
		randFill(in)
		wantC := Im2Col(in, kh, kw, stride)
		gotC := New(wantC.Dim(0), wantC.Dim(1))
		gotC.Fill(math.NaN())
		Im2ColInto(gotC, in, kh, kw, stride)
		for i := range wantC.Data() {
			if wantC.Data()[i] != gotC.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestIntoKernelShapePanics pins the destination-shape validation of
// the Into kernels.
func TestIntoKernelShapePanics(t *testing.T) {
	cases := []func(){
		func() { MatMulInto(New(2, 2), New(2, 3), New(3, 3)) },                   // wrong dst shape
		func() { MatMulInto(New(2, 3), New(2, 2), New(3, 3)) },                   // inner mismatch
		func() { Transpose2DInto(New(2, 3), New(2, 3)) },                         // dst not transposed shape
		func() { MatVecInto(make([]float64, 3), New(2, 3), make([]float64, 3)) }, // wrong dst len
		func() { Im2ColInto(New(4, 4), New(1, 4, 4), 2, 2, 1) },                  // wrong dst shape
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
