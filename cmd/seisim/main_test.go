package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseFlagsDefaults(t *testing.T) {
	var buf bytes.Buffer
	opt, err := parseFlags([]string{"table5"}, &buf)
	if err != nil {
		t.Fatalf("parseFlags: %v", err)
	}
	if opt.what != "table5" {
		t.Errorf("what = %q, want table5", opt.what)
	}
	if opt.cfg.Workers != 0 {
		t.Errorf("workers = %d, want 0", opt.cfg.Workers)
	}
	if got, want := opt.sizes, []int{512, 256}; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("sizes = %v, want %v", got, want)
	}
	if opt.obs.Enabled() {
		t.Error("observability enabled by default")
	}
}

func TestParseFlagsObservability(t *testing.T) {
	var buf bytes.Buffer
	opt, err := parseFlags([]string{"-metrics", "out.json", "-trace", "-progress", "-prom", "m.prom", "-pprof", "localhost:0", "table4"}, &buf)
	if err != nil {
		t.Fatalf("parseFlags: %v", err)
	}
	if opt.obs.Metrics != "out.json" || !opt.obs.Trace || !opt.obs.Progress ||
		opt.obs.Prom != "m.prom" || opt.obs.PProf != "localhost:0" {
		t.Errorf("obs flags = %+v", opt.obs)
	}
	if !opt.obs.Enabled() {
		t.Error("Enabled() = false with -metrics set")
	}
}

// TestParseFlagsWorkersValidation pins the unified -workers error both
// CLIs share (see cmd/seisweep for its twin).
func TestParseFlagsWorkersValidation(t *testing.T) {
	var buf bytes.Buffer
	_, err := parseFlags([]string{"-workers", "-2", "table5"}, &buf)
	if err == nil {
		t.Fatal("parseFlags accepted -workers -2")
	}
	want := "invalid -workers -2: must be 0 (all cores), 1 (serial), or a positive worker count"
	if err.Error() != want {
		t.Errorf("error = %q, want %q", err.Error(), want)
	}
}

func TestParseFlagsBadSize(t *testing.T) {
	var buf bytes.Buffer
	if _, err := parseFlags([]string{"-sizes", "512,zero", "table4"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "bad size") {
		t.Errorf("error = %v, want bad size", err)
	}
}

func TestParseFlagsMissingExperiment(t *testing.T) {
	var buf bytes.Buffer
	if _, err := parseFlags(nil, &buf); err == nil {
		t.Fatal("parseFlags accepted zero arguments")
	}
	if !strings.Contains(buf.String(), "usage: seisim") {
		t.Errorf("usage not printed, got %q", buf.String())
	}
}
