package arch

import (
	"bytes"
	"strings"
	"testing"

	"sei/internal/power"
	"sei/internal/seicore"
)

func TestApplyActivityScalesDataDependentCounts(t *testing.T) {
	geoms := netGeometry(t, 1)
	m, _ := Map(geoms, DefaultConfig(seicore.StructSEI))
	cellsBefore := m.TotalCounts().CellReads
	adcBefore := m.TotalCounts().ADCConversions
	drivesL0 := m.Layers[0].Counts.RowDrives
	if err := m.ApplyActivity([]float64{1, 0.1, 0.1}); err != nil {
		t.Fatal(err)
	}
	after := m.TotalCounts()
	if after.CellReads >= cellsBefore {
		t.Fatalf("cell reads did not shrink: %d vs %d", after.CellReads, cellsBefore)
	}
	if after.ADCConversions != adcBefore {
		t.Fatal("activity must not change ADC conversions")
	}
	// Analog input layer's drives unchanged; deeper layers scaled.
	if m.Layers[0].Counts.RowDrives != drivesL0 {
		t.Fatal("analog layer drives changed")
	}
	if m.Layers[1].Counts.RowDrives*9 > m.Layers[1].Geom.Ops() {
		// loose sanity: drives scaled down by 10×
	}
	lib := power.DefaultLibrary()
	_, e := m.Energy(lib)
	fresh, _ := Map(geoms, DefaultConfig(seicore.StructSEI))
	_, e0 := fresh.Energy(lib)
	if e.RRAM >= e0.RRAM {
		t.Fatalf("RRAM energy did not shrink: %v vs %v", e.RRAM, e0.RRAM)
	}
	if e.ADC != e0.ADC || e.DAC != e0.DAC {
		t.Fatal("interface energy changed under activity scaling")
	}
}

func TestApplyActivityValidation(t *testing.T) {
	geoms := netGeometry(t, 2)
	m, _ := Map(geoms, DefaultConfig(seicore.StructSEI))
	if err := m.ApplyActivity([]float64{1}); err == nil {
		t.Fatal("accepted wrong-length activity")
	}
	if err := m.ApplyActivity([]float64{1, 0, 1}); err == nil {
		t.Fatal("accepted zero activity")
	}
	if err := m.ApplyActivity([]float64{1, 2, 1}); err == nil {
		t.Fatal("accepted activity > 1")
	}
}

func TestDescribeOutput(t *testing.T) {
	geoms := netGeometry(t, 1)
	m, _ := Map(geoms, DefaultConfig(seicore.StructSEI))
	var buf bytes.Buffer
	m.Describe(&buf, power.DefaultLibrary())
	out := buf.String()
	for _, want := range []string{"Conv 1", "Conv 2", "FC", "totals:", "energy", "300x64"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe output missing %q:\n%s", want, out)
		}
	}
}
