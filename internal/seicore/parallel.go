package seicore

import (
	"math/rand"

	"sei/internal/nn"
	"sei/internal/par"
)

// The SEI simulators carry mutable state only in their read-noise RNGs
// (l.noise / l.readNoise); everything else an Eval touches is
// read-only. Noise-free designs (the default device model) are
// therefore safe to share across goroutines as-is, and noisy designs
// hand out value clones whose RNGs are re-seeded per chunk so results
// stay bit-identical for every worker count.
//
// The bit-packed fast path adds per-goroutine mutable scratch, but it
// never lives on the shared design: Predict borrows an arena from the
// design's sync.Pool (fast.go), so the chunked engine's workers each
// reuse their own scratch across the images of a chunk — per-position
// allocations are gone and CloneForEval can keep returning the shared
// receiver for noise-free designs.

// evalClone returns a copy sharing the blocks and threshold slices but
// owning its noise RNG. rng may be nil for the noise-free case.
func (l *SEIConvLayer) evalClone(rng *rand.Rand) *SEIConvLayer {
	clone := *l
	clone.noise = rng
	return &clone
}

// evalClone returns a copy sharing the blocks but owning its noise
// RNG.
func (l *SEIFCLayer) evalClone(rng *rand.Rand) *SEIFCLayer {
	clone := *l
	clone.noise = rng
	return &clone
}

// evalClone returns a copy sharing the effective weights but owning
// its read-noise RNG.
func (l *MergedLayer) evalClone(rng *rand.Rand) *MergedLayer {
	clone := *l
	clone.readNoise = rng
	return &clone
}

// noisy reports whether any layer of the design draws read noise.
func (d *SEIDesign) noisy() bool {
	if d.Input.readNoise != nil {
		return true
	}
	for _, l := range d.Convs {
		if l.noise != nil {
			return true
		}
	}
	return d.FC.noise != nil
}

// layerRNG derives layer idx's RNG for one evaluation clone.
func layerRNG(seed int64, idx int) *rand.Rand {
	return rand.New(rand.NewSource(par.ChunkSeed(seed, idx)))
}

// CloneForEval implements nn.ParallelClassifier. Noise-free designs
// are read-only under Predict and return the receiver; noisy designs
// return a clone whose per-layer noise streams are re-seeded from
// seed, so evaluation is deterministic for every worker count.
func (d *SEIDesign) CloneForEval(seed int64) nn.Classifier {
	if !d.noisy() {
		return d
	}
	clone := *d
	idx := 0
	if d.Input.readNoise != nil {
		clone.Input = d.Input.evalClone(layerRNG(seed, idx))
	}
	idx++
	clone.Convs = make([]*SEIConvLayer, len(d.Convs))
	for i, l := range d.Convs {
		if l.noise != nil {
			clone.Convs[i] = l.evalClone(layerRNG(seed, idx+i))
		} else {
			clone.Convs[i] = l
		}
	}
	idx += len(d.Convs)
	if d.FC.noise != nil {
		clone.FC = d.FC.evalClone(layerRNG(seed, idx))
	}
	return &clone
}

// CloneForEval implements nn.ParallelClassifier (see SEIDesign).
func (d *MergedDesign) CloneForEval(seed int64) nn.Classifier {
	noisy := d.FC.readNoise != nil
	for _, l := range d.Stages {
		noisy = noisy || l.readNoise != nil
	}
	if !noisy {
		return d
	}
	clone := *d
	clone.Stages = make([]*MergedLayer, len(d.Stages))
	for i, l := range d.Stages {
		if l.readNoise != nil {
			clone.Stages[i] = l.evalClone(layerRNG(seed, i))
		} else {
			clone.Stages[i] = l
		}
	}
	if d.FC.readNoise != nil {
		clone.FC = d.FC.evalClone(layerRNG(seed, len(d.Stages)))
	}
	return &clone
}

// CloneForEval implements nn.ParallelClassifier (see SEIDesign).
func (d *FloatDesign) CloneForEval(seed int64) nn.Classifier {
	noisy := d.fc.readNoise != nil
	for _, l := range d.conv {
		noisy = noisy || l.readNoise != nil
	}
	if !noisy {
		return d
	}
	clone := *d
	clone.conv = make([]*MergedLayer, len(d.conv))
	for i, l := range d.conv {
		if l.readNoise != nil {
			clone.conv[i] = l.evalClone(layerRNG(seed, i))
		} else {
			clone.conv[i] = l
		}
	}
	if d.fc.readNoise != nil {
		clone.fc = d.fc.evalClone(layerRNG(seed, len(d.conv)))
	}
	return &clone
}

var (
	_ nn.ParallelClassifier = (*SEIDesign)(nil)
	_ nn.ParallelClassifier = (*MergedDesign)(nil)
	_ nn.ParallelClassifier = (*FloatDesign)(nil)
)
