// Package quant implements Section 3 of the paper: the software
// quantization that turns every intermediate activation of a trained
// CNN into a single bit, eliminating DACs.
//
// It extracts the conv/pool/FC structure from a trained nn.Network,
// runs Algorithm 1 (per-layer weight re-scaling plus greedy
// brute-force threshold search on the training set), and provides the
// binarized inference path in which ReLU is subsumed by thresholding
// and max-pooling degenerates into an OR of bits. The binarized
// forward pass is parameterized over a StageEval so that the digital
// reference implementation and the RRAM/SEI hardware simulators share
// one data path.
package quant

import (
	"fmt"

	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/tensor"
)

// ConvSpec is one convolution stage of the quantized network, with the
// re-scaled weights. PoolSize is the OR-pool window applied to its
// binarized output (0 means no pooling).
type ConvSpec struct {
	W        *tensor.Tensor // [Filters, InChannels, KH, KW]
	Stride   int
	PoolSize int
}

// Filters returns the number of output channels.
func (c *ConvSpec) Filters() int { return c.W.Dim(0) }

// FanIn returns the receptive-field size InChannels·KH·KW — the RRAM
// row count of the layer's weight matrix.
func (c *ConvSpec) FanIn() int { return c.W.Dim(1) * c.W.Dim(2) * c.W.Dim(3) }

// FCSpec is the final fully-connected stage (never binarized; its
// argmax is the classification).
type FCSpec struct {
	W *tensor.Tensor // [Out, In]
	B []float64
}

// QuantizedNet is a CNN with 1-bit intermediate data: a chain of conv
// stages, each followed by threshold binarization and an optional OR
// pool, ending in a fully-connected classifier.
type QuantizedNet struct {
	Name       string
	Convs      []ConvSpec
	FC         FCSpec
	Thresholds []float64 // one per conv stage
	InShape    []int     // input image shape, e.g. [1,28,28]

	// hw receives hardware-event counts (OR-pool reductions) when the
	// net is instrumented. Unexported so gob serialization skips it:
	// nets coming back from the cache load uninstrumented and must be
	// re-instrumented by the caller. Struct copies (CloneForEval of the
	// simulators) share the pointer, which is safe — the counters are
	// atomic.
	hw *obs.HW
}

// Instrument routes the net's hardware-event counts to rec; nil
// detaches. The binarized data path is shared by the digital reference
// and the crossbar simulators, so OR-pool reductions are counted here
// once for all of them.
func (q *QuantizedNet) Instrument(rec *obs.Recorder) { q.hw = rec.HW() }

// CountORPool records n OR-pool window reductions on the net's
// hardware counters (a no-op when uninstrumented). External binarized
// data paths that fuse pooling into the stage write-out — seicore's
// bit-packed fast path — use it to keep counter totals bit-identical
// to convStage's own accounting.
func (q *QuantizedNet) CountORPool(n int64) { q.hw.ORPool(n) }

// Extract decomposes a trained nn.Network of the paper's shape
// (conv [relu] [pool] ... flatten dense) into quantizable stages. The
// weights are deep-copied. Thresholds are zero and must be set by
// SearchThresholds before the binarized path is meaningful.
func Extract(net *nn.Network, inShape []int) (*QuantizedNet, error) {
	q := &QuantizedNet{Name: net.Name, InShape: append([]int(nil), inShape...)}
	i := 0
	for i < len(net.Layers) {
		switch l := net.Layers[i].(type) {
		case *nn.Conv2D:
			if l.Bias != nil {
				return nil, fmt.Errorf("quant: conv layer %d has a bias; the paper's conv kernels are bias-free", i)
			}
			spec := ConvSpec{W: l.Weight.Value.Clone(), Stride: l.Stride}
			i++
			// Optional ReLU (subsumed by the threshold, which is ≥ 0).
			if i < len(net.Layers) {
				if _, ok := net.Layers[i].(*nn.ReLU); ok {
					i++
				}
			}
			// Optional pooling.
			if i < len(net.Layers) {
				if p, ok := net.Layers[i].(*nn.MaxPool2D); ok {
					spec.PoolSize = p.Size
					i++
				}
			}
			q.Convs = append(q.Convs, spec)
		case *nn.Flatten:
			i++
		case *nn.Dense:
			if i != len(net.Layers)-1 {
				return nil, fmt.Errorf("quant: dense layer %d is not final; hidden FC layers are not supported", i)
			}
			q.FC = FCSpec{W: l.Weight.Value.Clone(), B: append([]float64(nil), l.Bias.Value.Data()...)}
			i++
		default:
			return nil, fmt.Errorf("quant: unsupported layer %T at %d", net.Layers[i], i)
		}
	}
	if len(q.Convs) == 0 || q.FC.W == nil {
		return nil, fmt.Errorf("quant: network %q lacks conv or FC stages", net.Name)
	}
	q.Thresholds = make([]float64, len(q.Convs))
	return q, nil
}

// ConvMatrix returns conv stage l's kernels as the RRAM-oriented
// weight matrix [FanIn, Filters]: column k holds kernel k, exactly the
// layout of the paper's "25×12"-style weight matrices (Table 2).
func (q *QuantizedNet) ConvMatrix(l int) *tensor.Tensor {
	c := &q.Convs[l]
	wmat := c.W.Reshape(c.Filters(), c.FanIn())
	return tensor.Transpose2D(wmat)
}

// FCMatrix returns the FC weights as [In, Out] — the RRAM orientation
// (e.g. 1024×10 for Network 1).
func (q *QuantizedNet) FCMatrix() *tensor.Tensor {
	return tensor.Transpose2D(q.FC.W)
}

// StageEval evaluates the two kinds of mapped matrix operations. The
// digital reference, the ADC-merged crossbar design and the SEI design
// all implement it; everything else about the binarized data path
// (im2col walking, OR pooling, layer sequencing) is shared.
type StageEval interface {
	// EvalConv returns the binarized outputs (one bit per filter) of
	// conv stage l for one receptive field. For l == 0 the input is the
	// real-valued (8-bit, DAC-driven) image window; for l > 0 it is 0/1.
	EvalConv(l int, in []float64) []bool
	// EvalFC returns the classifier scores for the flattened 0/1 input
	// of the final stage.
	EvalFC(in []float64) []float64
}

// digitalEval is the exact software implementation of the binarized
// network: Equ. (4) of the paper with float arithmetic.
type digitalEval struct{ q *QuantizedNet }

func (d digitalEval) EvalConv(l int, in []float64) []bool {
	c := &d.q.Convs[l]
	t := d.q.Thresholds[l]
	f, fan := c.Filters(), c.FanIn()
	w := c.W.Data()
	out := make([]bool, f)
	for k := 0; k < f; k++ {
		row := w[k*fan : (k+1)*fan]
		s := 0.0
		for j, x := range in {
			if x != 0 {
				s += row[j] * x
			}
		}
		out[k] = s > t
	}
	return out
}

func (d digitalEval) EvalFC(in []float64) []float64 {
	y := tensor.MatVec(d.q.FC.W, in)
	for i := range y {
		y[i] += d.q.FC.B[i]
	}
	return y
}

// Digital returns the exact software evaluator for the quantized
// network.
func (q *QuantizedNet) Digital() StageEval { return digitalEval{q} }

// ForwardWith runs the full binarized pipeline on one image using the
// given evaluator and returns the classifier scores.
func (q *QuantizedNet) ForwardWith(eval StageEval, img *tensor.Tensor) []float64 {
	cur := img
	for l := range q.Convs {
		cur = q.convStage(eval, l, cur)
	}
	return eval.EvalFC(cur.Data())
}

// convStage applies conv stage l (matrix eval + binarize + OR pool) to
// the current activation map and returns the next 0/1 map.
func (q *QuantizedNet) convStage(eval StageEval, l int, cur *tensor.Tensor) *tensor.Tensor {
	c := &q.Convs[l]
	kh, kw := c.W.Dim(2), c.W.Dim(3)
	cols := tensor.Im2Col(cur, kh, kw, c.Stride)
	positions := cols.Dim(0)
	h, w := cur.Dim(1), cur.Dim(2)
	outH := (h-kh)/c.Stride + 1
	outW := (w-kw)/c.Stride + 1
	f := c.Filters()
	bits := tensor.New(f, outH, outW)
	fan := cols.Dim(1)
	for p := 0; p < positions; p++ {
		field := cols.Data()[p*fan : (p+1)*fan]
		ob := eval.EvalConv(l, field)
		oy, ox := p/outW, p%outW
		for k, b := range ob {
			if b {
				bits.Set(1, k, oy, ox)
			}
		}
	}
	if c.PoolSize > 1 {
		bits = orPool(bits, c.PoolSize)
		if h := q.hw; h != nil {
			h.ORPool(int64(bits.Dim(0) * bits.Dim(1) * bits.Dim(2)))
		}
	}
	return bits
}

// orPool reduces each size×size window to the OR of its bits — the
// degenerate form of max pooling on 1-bit data (Section 3.1).
func orPool(bits *tensor.Tensor, size int) *tensor.Tensor {
	ch, h, w := bits.Dim(0), bits.Dim(1), bits.Dim(2)
	oh, ow := h/size, w/size
	out := tensor.New(ch, oh, ow)
	for c := 0; c < ch; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				v := 0.0
				for ky := 0; ky < size && v == 0; ky++ {
					for kx := 0; kx < size; kx++ {
						if bits.At(c, oy*size+ky, ox*size+kx) != 0 {
							v = 1
							break
						}
					}
				}
				out.Set(v, c, oy, ox)
			}
		}
	}
	return out
}

// Predict classifies one image with the exact digital evaluator.
func (q *QuantizedNet) Predict(img *tensor.Tensor) int {
	scores := q.ForwardWith(q.Digital(), img)
	return tensor.FromSlice(scores, len(scores)).ArgMax()
}

// CloneForEval implements nn.ParallelClassifier. The digital evaluator
// is stateless and Predict only reads the network, so the receiver
// itself is safe to share across goroutines; the seed is ignored.
func (q *QuantizedNet) CloneForEval(seed int64) nn.Classifier { return q }

// PredictWith classifies one image with an arbitrary evaluator
// (e.g. a hardware simulation).
func (q *QuantizedNet) PredictWith(eval StageEval, img *tensor.Tensor) int {
	scores := q.ForwardWith(eval, img)
	return tensor.FromSlice(scores, len(scores)).ArgMax()
}

// BinaryActivations runs the digital pipeline and returns the 0/1
// activation map entering each conv stage l ≥ 1 and the FC stage —
// the data the hardware simulators consume as selection signals.
func (q *QuantizedNet) BinaryActivations(img *tensor.Tensor) []*tensor.Tensor {
	var acts []*tensor.Tensor
	cur := img
	eval := q.Digital()
	for l := range q.Convs {
		cur = q.convStage(eval, l, cur)
		acts = append(acts, cur)
	}
	return acts
}
