package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// gateArgs runs the CLI entry point and returns (exit code, stdout,
// stderr) — the contract CI depends on.
func gateArgs(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestGateRegressionFixtureExitsNonZero(t *testing.T) {
	code, out, errb := gateArgs(t, "gate", "-tolerance", "10", "testdata/base.json", "testdata/regressed.json")
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(errb, "gate failed") {
		t.Errorf("stderr lacks gate failure message:\n%s", errb)
	}
	// images/sec fell 15%, predict ns/op rose 15% and predict allocs/op
	// rose 20%: all named.
	for _, m := range []string{"images_per_sec", "predict_ns_per_op", "predict_allocs_per_op"} {
		if !strings.Contains(out, m) {
			t.Errorf("stdout does not mention %s:\n%s", m, out)
		}
	}
	// Only the three >10% movements fail; the 2% search, 5% p99 and 5%
	// search-allocs worsenings are inside tolerance.
	findings := mustFindings(t, "testdata/base.json", "testdata/regressed.json", 10)
	byName := map[string]findingStatus{}
	for _, f := range findings {
		byName[f.Metric] = f.Status
	}
	for _, m := range []string{"images_per_sec", "predict_ns_per_op", "predict_allocs_per_op"} {
		if byName[m] != statusRegressed {
			t.Errorf("expected %s regressed, got %v", m, byName)
		}
	}
	for _, m := range []string{"search_ns_per_op", "serve_p99_ms", "search_allocs_per_op", "sei_skip_rate"} {
		if byName[m] == statusRegressed {
			t.Errorf("within-tolerance %s flagged as a regression: %v", m, byName)
		}
	}
	if regressions(findings) != 3 {
		t.Errorf("regressions = %d, want 3: %v", regressions(findings), byName)
	}
}

func TestCompareReportsButNeverFails(t *testing.T) {
	code, out, _ := gateArgs(t, "compare", "testdata/base.json", "testdata/regressed.json")
	if code != 0 {
		t.Fatalf("compare exit code %d, want 0 (compare informs, gate enforces)\n%s", code, out)
	}
	if !strings.Contains(out, "regressed") {
		t.Errorf("compare output does not flag the regression:\n%s", out)
	}
}

func TestGateExactThresholdBoundaryPasses(t *testing.T) {
	// Every headline metric in boundary.json is worse by exactly 10%.
	// The gate is ">10%": exactly at the line passes.
	code, out, errb := gateArgs(t, "gate", "-tolerance", "10", "testdata/base.json", "testdata/boundary.json")
	if code != 0 {
		t.Fatalf("exact-boundary gate exit code %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	// One epsilon beyond the boundary fails: tighten the tolerance the
	// tiniest representable amount below the actual 10% movement.
	code, _, _ = gateArgs(t, "gate", "-tolerance", "9.999999", "testdata/base.json", "testdata/boundary.json")
	if code != 1 {
		t.Fatalf("just-beyond-boundary gate exit code %d, want 1", code)
	}
}

func TestGateMissingMetricWarnsButPasses(t *testing.T) {
	code, out, errb := gateArgs(t, "gate", "testdata/base.json", "testdata/missing.json")
	if code != 0 {
		t.Fatalf("missing-metric gate exit code %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(errb, "pj_per_inference") || !strings.Contains(errb, "warning") {
		t.Errorf("stderr lacks missing-metric warning for pj_per_inference:\n%s", errb)
	}
	// Metrics added after the baseline was recorded — the allocation
	// counts and the skip rate here — warn the same way: the gate
	// phases them in rather than failing old baselines.
	for _, m := range []string{"predict_allocs_per_op", "sei_skip_rate"} {
		if !strings.Contains(errb, m) {
			t.Errorf("stderr lacks missing-metric warning for %s:\n%s", m, errb)
		}
	}
	if !strings.Contains(out, "missing") {
		t.Errorf("stdout does not mark the metric missing:\n%s", out)
	}
}

func TestGateFirstRunHasNoBaselineAndPasses(t *testing.T) {
	dir := t.TempDir()
	rep := testReport("eeee555", time.Date(2026, 8, 3, 10, 0, 0, 0, time.UTC))
	if _, err := writeReport(dir, rep); err != nil {
		t.Fatal(err)
	}
	code, out, errb := gateArgs(t, "gate", "-dir", dir)
	if code != 0 {
		t.Fatalf("first-run gate exit code %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(out, "no comparable baseline") {
		t.Errorf("stdout lacks first-run note:\n%s", out)
	}
}

func TestGateEmptyDirIsAnError(t *testing.T) {
	code, _, errb := gateArgs(t, "gate", "-dir", t.TempDir())
	if code != 2 {
		t.Fatalf("empty-dir gate exit code %d, want 2\nstderr:\n%s", code, errb)
	}
	if !strings.Contains(errb, "seibench run") {
		t.Errorf("error does not tell the user to run first:\n%s", errb)
	}
}

func TestBaselineSkipsOtherMachinesAndModes(t *testing.T) {
	at := func(day int) time.Time { return time.Date(2026, 8, day, 10, 0, 0, 0, time.UTC) }
	cur := testReport("cur0000", at(10))
	otherCPU := testReport("aaa0001", at(9))
	otherCPU.Machine.CPU = "Different CPU"
	fullMode := testReport("aaa0002", at(8))
	fullMode.Quick = false
	match := testReport("aaa0003", at(7))
	newerMatch := testReport("aaa0004", at(9))
	future := testReport("aaa0005", at(11))
	history := []*Report{match, fullMode, otherCPU, newerMatch, cur, future}
	if got := baselineFor(cur, history); got != newerMatch {
		t.Fatalf("baselineFor picked %+v, want the newest comparable older report (aaa0004)", got)
	}
	// A machine with no comparable history gates against nothing.
	lone := testReport("lone000", at(12))
	lone.Machine.GOARCH = "arm64"
	if got := baselineFor(lone, append(history, lone)); got != nil {
		t.Fatalf("baselineFor found %+v for a foreign machine, want nil", got)
	}
}

func TestEvaluateGateDirections(t *testing.T) {
	base := testReport("b", time.Time{})
	cur := testReport("c", time.Time{})
	// Throughput up and latency down are improvements, never failures,
	// no matter how large.
	cur.Metrics["images_per_sec"] = base.Metrics["images_per_sec"] * 5
	cur.Metrics["predict_ns_per_op"] = base.Metrics["predict_ns_per_op"] / 5
	findings := evaluateGate(base, cur, 10)
	if regressions(findings) != 0 {
		t.Fatalf("improvements counted as regressions: %+v", findings)
	}
	improved := 0
	for _, f := range findings {
		if f.Status == statusImproved {
			improved++
		}
	}
	if improved != 2 {
		t.Errorf("improved = %d, want 2: %+v", improved, findings)
	}
}

func TestReportRoundTripAndOrdering(t *testing.T) {
	dir := t.TempDir()
	newer := testReport("new0000", time.Date(2026, 8, 5, 10, 0, 0, 0, time.UTC))
	older := testReport("old0000", time.Date(2026, 8, 4, 10, 0, 0, 0, time.UTC))
	// Write newest first: ordering must come from StartedAt, not
	// directory listing order.
	for _, rep := range []*Report{newer, older} {
		if _, err := writeReport(dir, rep); err != nil {
			t.Fatal(err)
		}
	}
	history, err := loadReports(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 {
		t.Fatalf("loaded %d reports, want 2", len(history))
	}
	if history[0].GitSHA != "old0000" || history[1].GitSHA != "new0000" {
		t.Fatalf("history order %s, %s; want old0000, new0000", history[0].GitSHA, history[1].GitSHA)
	}
	got := history[1]
	if got.Schema != SchemaVersion || !got.StartedAt.Equal(newer.StartedAt) || !got.Machine.Comparable(newer.Machine) {
		t.Errorf("round-trip mangled the report: %+v", got)
	}
	if got.Metrics["images_per_sec"] != newer.Metrics["images_per_sec"] {
		t.Errorf("metrics did not survive the round trip")
	}
	if got.path == "" || filepath.Dir(got.path) != dir {
		t.Errorf("loaded report path %q not under %s", got.path, dir)
	}
}

func TestSameDayRerunDoesNotClobber(t *testing.T) {
	dir := t.TempDir()
	first := testReport("same000", time.Date(2026, 8, 6, 10, 0, 0, 0, time.UTC))
	second := testReport("same000", time.Date(2026, 8, 6, 11, 30, 0, 0, time.UTC))
	p1, err := writeReport(dir, first)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := writeReport(dir, second)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatalf("second same-day run reused %s", p1)
	}
	history, err := loadReports(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 {
		t.Fatalf("loaded %d reports, want 2", len(history))
	}
}

// mustFindings loads two fixture reports and gates them.
func mustFindings(t *testing.T, basePath, curPath string, tol float64) []finding {
	t.Helper()
	base, err := loadReport(basePath)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := loadReport(curPath)
	if err != nil {
		t.Fatal(err)
	}
	return evaluateGate(base, cur, tol)
}

// testReport builds an in-memory report matching the testdata machine.
func testReport(sha string, at time.Time) *Report {
	return &Report{
		Schema:    SchemaVersion,
		StartedAt: at,
		GitSHA:    sha,
		Quick:     true,
		Suites:    []string{"inference", "search", "serve", "energy"},
		Machine: Machine{
			GOOS: "linux", GOARCH: "amd64",
			CPU: "Test CPU @ 2.00GHz", NumCPU: 1, GoVersion: "go1.24.0",
		},
		Metrics: map[string]float64{
			"images_per_sec":    1000,
			"predict_ns_per_op": 100000,
			"search_ns_per_op":  500000000,
			"serve_p99_ms":      20,
			"pj_per_inference":  1200,
		},
	}
}
