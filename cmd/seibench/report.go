package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"sei/internal/benchparse"
	"sei/internal/obs"
)

// SchemaVersion identifies the bench-report JSON layout; bump on
// incompatible changes so gate/compare can refuse mixed histories.
const SchemaVersion = 1

// DefaultReportDir is where `seibench run` writes and the other
// subcommands read.
const DefaultReportDir = "bench-reports"

// Machine identifies the hardware/toolchain a report was produced on.
// compare and gate only look at reports from the same machine — a
// laptop's images/sec regressing against a CI runner's is noise, not
// signal.
type Machine struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPU       string `json:"cpu,omitempty"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
}

// Comparable reports whether two reports were produced under
// conditions where a metric delta means something: same platform, CPU
// model, core count and run mode (quick vs full measurement).
func (m Machine) Comparable(o Machine) bool {
	return m.GOOS == o.GOOS && m.GOARCH == o.GOARCH && m.CPU == o.CPU && m.NumCPU == o.NumCPU
}

// ServeResult is the serving suite's section of a report: the
// open-loop generator's client-side view of the sharded serving stack.
// The steady run drives a deterministic multi-image request mix; Burst
// repeats a shorter schedule with clustered arrivals.
type ServeResult struct {
	OfferedRPS  float64             `json:"offered_rps"`
	AchievedRPS float64             `json:"achieved_rps"`
	Requests    int                 `json:"requests"`
	Errors      int                 `json:"errors"`
	Dropped     int                 `json:"dropped"`
	Canceled    int                 `json:"canceled,omitempty"`
	Images      int                 `json:"images,omitempty"`
	Mix         map[string]int      `json:"mix,omitempty"`
	Latency     obs.HistogramReport `json:"latency"`
	Burst       *BurstResult        `json:"burst,omitempty"`
}

// BurstResult is the burst sub-run: the same stack under clustered
// arrivals (load.Config.Burst), the worst case for queue headroom.
type BurstResult struct {
	BurstSize   int                 `json:"burst_size"`
	OfferedRPS  float64             `json:"offered_rps"`
	AchievedRPS float64             `json:"achieved_rps"`
	Requests    int                 `json:"requests"`
	Errors      int                 `json:"errors"`
	Dropped     int                 `json:"dropped"`
	Canceled    int                 `json:"canceled,omitempty"`
	Latency     obs.HistogramReport `json:"latency"`
}

// Report is one `seibench run` outcome: machine metadata, every suite
// metric, and the raw benchmark lines for archaeology. DESIGN.md §14
// documents the schema.
type Report struct {
	Schema     int                    `json:"schema"`
	StartedAt  time.Time              `json:"started_at"`
	GitSHA     string                 `json:"git_sha,omitempty"`
	Quick      bool                   `json:"quick"`
	Suites     []string               `json:"suites"`
	Machine    Machine                `json:"machine"`
	Metrics    map[string]float64     `json:"metrics"`
	Counters   map[string]int64       `json:"counters,omitempty"`
	Serve      *ServeResult           `json:"serve,omitempty"`
	Benchmarks []benchparse.Benchmark `json:"benchmarks,omitempty"`
	Derived    map[string]float64     `json:"derived,omitempty"`
	Notes      []string               `json:"notes,omitempty"`

	// path is where the report was loaded from (not serialized).
	path string `json:"-"`
}

// hostMachine collects the current process's machine identity. The
// CPU model prefers go test's own "cpu:" header (already normalized
// by the toolchain) and falls back to /proc/cpuinfo.
func hostMachine(benchCPU string) Machine {
	m := Machine{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPU:       benchCPU,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
	if m.CPU == "" {
		m.CPU = procCPUModel()
	}
	return m
}

// procCPUModel extracts the first "model name" from /proc/cpuinfo
// (empty off Linux or on failure — comparability then keys on the
// remaining fields).
func procCPUModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// reportFileName is <date>-<sha>.json; a second run of the same
// commit on the same day gets a time suffix instead of clobbering the
// earlier report.
func reportFileName(dir string, at time.Time, sha string) string {
	if sha == "" {
		sha = "nogit"
	}
	base := fmt.Sprintf("%s-%s", at.Format("2006-01-02"), sha)
	path := filepath.Join(dir, base+".json")
	if _, err := os.Stat(path); err == nil {
		path = filepath.Join(dir, fmt.Sprintf("%s-%s.json", base, at.Format("150405")))
	}
	return path
}

// writeReport persists rep under dir, creating it.
func writeReport(dir string, rep *Report) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := reportFileName(dir, rep.StartedAt, rep.GitSHA)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return "", err
	}
	return path, nil
}

// loadReport reads one report file.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != SchemaVersion {
		return nil, fmt.Errorf("%s: schema %d, this seibench reads %d", path, rep.Schema, SchemaVersion)
	}
	rep.path = path
	return &rep, nil
}

// loadReports reads every report in dir, oldest first (by embedded
// StartedAt, not filename, so same-day re-runs order correctly).
// Unreadable or foreign-schema files are skipped with a warning on
// stderr rather than poisoning the whole history.
func loadReports(dir string) ([]*Report, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var reps []*Report
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		rep, err := loadReport(filepath.Join(dir, e.Name()))
		if err != nil {
			fmt.Fprintln(os.Stderr, "seibench: skipping", err)
			continue
		}
		reps = append(reps, rep)
	}
	sort.SliceStable(reps, func(i, j int) bool { return reps[i].StartedAt.Before(reps[j].StartedAt) })
	return reps, nil
}

// baselineFor returns the most recent report older than cur that was
// produced on a comparable machine in the same run mode, or nil when
// cur is the first of its kind (first run on a new machine: nothing
// to gate against).
func baselineFor(cur *Report, history []*Report) *Report {
	var base *Report
	for _, r := range history {
		if r == cur || !r.StartedAt.Before(cur.StartedAt) {
			continue
		}
		if r.Quick != cur.Quick || !r.Machine.Comparable(cur.Machine) {
			continue
		}
		if base == nil || r.StartedAt.After(base.StartedAt) {
			base = r
		}
	}
	return base
}

// gitSHA returns the current short commit hash ("" outside a repo).
func gitSHA() string {
	out, err := execOutput("git", "rev-parse", "--short", "HEAD")
	if err != nil {
		return ""
	}
	return strings.TrimSpace(out)
}
