// Package sei is a simulator and design-space explorer for
// "Switched by Input: Power Efficient Structure for RRAM-based
// Convolutional Neural Network" (Xia et al., DAC 2016).
//
// It reproduces the paper end to end: a from-scratch CNN framework
// trains the Table-2 MNIST networks; Algorithm 1 quantizes every
// intermediate activation to one bit (eliminating DACs); the SEI
// structure maps signed 8-bit weights onto single 4-bit RRAM crossbars
// whose transmission gates are selected by the 1-bit inputs
// (eliminating merging ADCs); large matrices split across crossbars
// with matrix homogenization and dynamic-threshold compensation; and a
// component-level power/area model regenerates Fig. 1 and Tables 1–5.
//
// This package is the public facade. The high-level entry point is
// RunPipeline, which takes a dataset through training, quantization,
// hardware mapping and evaluation:
//
//	res, err := sei.RunPipeline(sei.DefaultPipelineConfig())
//	fmt.Printf("SEI error %.2f%%, energy saving %.1f%%\n",
//		100*res.SEIError, 100*res.EnergySaving)
//
// Individual stages are exposed for finer control (TrainTableNetwork,
// Quantize, BuildDesign, MapCosts), and the experiments API
// regenerates every table and figure of the paper (see
// RunAllExperiments and cmd/seisim).
package sei

import (
	"fmt"
	"io"
	"math/rand"

	"sei/internal/arch"
	"sei/internal/experiments"
	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/par"
	"sei/internal/power"
	"sei/internal/quant"
	"sei/internal/rram"
	"sei/internal/seicore"
	"sei/internal/tensor"
)

// Re-exported core types. They originate in internal packages; every
// capability a downstream user needs is reachable through this facade.
type (
	// Dataset is a labelled set of 28×28 images.
	Dataset = mnist.Dataset
	// Network is a trainable float CNN.
	Network = nn.Network
	// QuantizedNet is a CNN with 1-bit intermediate data (Section 3).
	QuantizedNet = quant.QuantizedNet
	// SEIDesign is a quantized network mapped onto SEI hardware
	// (Section 4).
	SEIDesign = seicore.SEIDesign
	// DeviceModel is the behavioural RRAM device.
	DeviceModel = rram.DeviceModel
	// Structure selects among DAC+ADC, 1-bit-input+ADC and SEI.
	Structure = seicore.Structure
	// PowerLibrary holds component energy/area constants.
	PowerLibrary = power.Library
	// ExperimentConfig sizes the table/figure reproductions.
	ExperimentConfig = experiments.Config
	// Recorder collects phase spans, hardware-event counters and run
	// reports; attach one via PipelineConfig.Obs or
	// ExperimentConfig.Obs. A nil Recorder disables all recording.
	Recorder = obs.Recorder
	// RunReport is one run's instrumentation snapshot
	// (Recorder.Report): spans, counters, gauges, histograms.
	RunReport = obs.Report
	// EnergyBreakdown groups energy (pJ) or area (µm²) by component
	// class — the grouping of the paper's Fig. 1.
	EnergyBreakdown = power.Breakdown
)

// NewRecorder returns an empty instrumentation recorder whose clock
// starts now.
func NewRecorder() *Recorder { return obs.New() }

// The three hardware structures of Table 5.
const (
	StructDACADC    = seicore.StructDACADC
	StructOneBitADC = seicore.StructOneBitADC
	StructSEI       = seicore.StructSEI
)

// SyntheticDataset generates n deterministic synthetic MNIST-style
// samples (see internal/mnist for the substitution rationale).
func SyntheticDataset(n int, seed int64) *Dataset { return mnist.Synthetic(n, seed) }

// SyntheticSplit returns disjoint train/test synthetic datasets.
func SyntheticSplit(nTrain, nTest int, seed int64) (train, test *Dataset) {
	return mnist.SyntheticSplit(nTrain, nTest, seed)
}

// LoadMNIST loads the real MNIST IDX files from dir.
func LoadMNIST(dir string) (train, test *Dataset, err error) {
	return mnist.LoadIDXDir(dir)
}

// TrainTableNetwork trains Table-2 network id (1, 2 or 3) on the
// dataset for the given epochs with deterministic seeding.
func TrainTableNetwork(id int, train *Dataset, epochs int, seed int64) *Network {
	net := nn.NewTableNetwork(id, seed)
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = epochs
	cfg.Seed = seed
	nn.Train(net, train, cfg)
	return net
}

// TrainTableNetworkObs is TrainTableNetwork with instrumentation:
// training counters and per-epoch progress feed rec (nil = off).
func TrainTableNetworkObs(rec *Recorder, id int, train *Dataset, epochs int, seed int64) *Network {
	net := nn.NewTableNetwork(id, seed)
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = epochs
	cfg.Seed = seed
	cfg.Obs = rec
	nn.Train(net, train, cfg)
	return net
}

// EvaluateNetwork returns the float network's test error rate.
func EvaluateNetwork(net *Network, test *Dataset) float64 { return nn.ErrorRate(net, test) }

// Quantize runs Algorithm 1 (weight re-scaling plus greedy threshold
// search) on a trained network, then the FC-recalibration and
// threshold-refinement calibration passes, using all cores.
func Quantize(net *Network, train *Dataset) (*QuantizedNet, error) {
	return quantizeWorkers(net, train, 0)
}

func quantizeWorkers(net *Network, train *Dataset, workers int) (*QuantizedNet, error) {
	return quantizeObs(nil, net, train, workers)
}

// QuantizeObs is Quantize with instrumentation and an explicit worker
// bound; the quantized net comes back instrumented so later hardware
// evaluations feed rec's counters.
func QuantizeObs(rec *Recorder, net *Network, train *Dataset, workers int) (*QuantizedNet, error) {
	return quantizeObs(rec, net, train, workers)
}

func quantizeObs(rec *obs.Recorder, net *Network, train *Dataset, workers int) (*QuantizedNet, error) {
	cfg := quant.DefaultSearchConfig()
	cfg.Workers = workers
	cfg.Obs = rec
	q, _, err := quant.QuantizeNetwork(net, train, []int{1, 28, 28}, cfg)
	if err != nil {
		return nil, err
	}
	ccfg := quant.DefaultRecalibrateConfig()
	ccfg.Workers = workers
	ccfg.Obs = rec
	if err := quant.RecalibrateFC(q, train, ccfg); err != nil {
		return nil, err
	}
	rcfg := quant.DefaultRefineConfig()
	rcfg.Workers = workers
	rcfg.Obs = rec
	if _, err := quant.RefineThresholds(q, train, rcfg); err != nil {
		return nil, err
	}
	if err := quant.RecalibrateFC(q, train, ccfg); err != nil {
		return nil, err
	}
	return q, nil
}

// EvaluateQuantized returns the digital binarized network's test error
// rate.
func EvaluateQuantized(q *QuantizedNet, test *Dataset) float64 { return q.ErrorRate(test) }

// BuildSEIDesign maps the quantized network onto SEI crossbars with
// the default device (4-bit, mild variation), 512×512 crossbars,
// homogenized split orders and calibrated dynamic thresholds.
func BuildSEIDesign(q *QuantizedNet, train *Dataset, seed int64) (*SEIDesign, error) {
	cfg := seicore.DefaultSEIBuildConfig()
	orders := experiments.HomogenizedOrdersFor(q, cfg.Layer.MaxCrossbar, seed)
	cfg.Orders = orders
	return seicore.BuildSEI(q, train, cfg, rand.New(rand.NewSource(seed)))
}

// SaveDesignFile persists a built design — programmed effective
// weights and calibrated thresholds — to path, creating parent
// directories. A design loaded back predicts bit-identically.
func SaveDesignFile(d *SEIDesign, path string) error { return d.SaveFile(path) }

// LoadDesignFile reads a design written by SaveDesignFile. seed
// re-anchors read-noise streams for designs whose device model is
// noisy; noise-free designs (the default) ignore it.
func LoadDesignFile(path string, seed int64) (*SEIDesign, error) {
	return seicore.LoadDesignFile(path, seed)
}

// Classifier is anything that maps an image to a class — float
// networks, quantized networks, and hardware designs all implement it.
type Classifier = nn.Classifier

// Image is one input picture: a [1, 28, 28] tensor with pixel values
// in [0, 1]. Dataset.Images holds them; the serving API predicts them.
type Image = tensor.Tensor

// ErrBadInput marks predictions rejected because of malformed input —
// wrong image shape, non-finite pixels, or a layer panic recovered at
// the facade boundary. Match with errors.Is.
var ErrBadInput = nn.ErrBadInput

// PredictResult is one image's outcome in a batch predict: a label, or
// an ErrBadInput-wrapped error (in which case Label is -1).
type PredictResult = nn.PredictResult

// EvaluateDesign returns any classifier's test error rate.
func EvaluateDesign(d Classifier, test *Dataset) float64 {
	return nn.ClassifierErrorRate(d, test)
}

// EvaluateDesignObs is EvaluateDesign with instrumentation: engine
// scheduling counters, the eval_images counter and — for hardware
// designs — the hw_* hardware-event counters feed rec (nil = off),
// ready for counter-derived energy accounting via EnergyFromCounters.
// Designs that support it (SEIDesign and the merged/float references)
// are re-instrumented onto rec for the evaluation and stay attached
// afterwards, exactly as if they had been built with that recorder.
func EvaluateDesignObs(rec *Recorder, d Classifier, test *Dataset, workers int) float64 {
	if rec != nil {
		if ins, ok := d.(interface{ Instrument(*obs.Recorder) }); ok {
			ins.Instrument(rec)
		}
	}
	return nn.ClassifierErrorRateObs(rec, d, test, workers)
}

// DefaultPowerLibrary returns the calibrated component energy/area
// constants behind Fig. 1 and Table 5 (see internal/power).
func DefaultPowerLibrary() PowerLibrary { return power.DefaultLibrary() }

// EnergyFromCounters joins an instrumented run's hardware-event
// counter totals (hw_sa_comparisons, hw_active_inputs,
// hw_column_activations, …) against the power library's component
// constants: the measured, data-dependent counterpart of MapCosts's
// static accounting. The breakdown covers the whole run; divide by
// the image count (EnergyPerInferencePJ) for a per-picture figure.
func EnergyFromCounters(rep RunReport, lib PowerLibrary) (EnergyBreakdown, error) {
	return power.EnergyFromCounters(rep, lib)
}

// EnergyPerInferencePJ returns the counter-derived energy of one
// inference in picojoules: the run total from EnergyFromCounters
// divided by the run's eval_images counter.
func EnergyPerInferencePJ(rep RunReport, lib PowerLibrary) (float64, error) {
	return power.EnergyPerInferencePJ(rep, lib, rep.Counters[nn.MetricEvalImages])
}

// Predict classifies one image, validating it first and containing any
// layer panic a malformed image provokes: the process never dies, the
// caller gets an ErrBadInput-wrapped error instead.
func Predict(d Classifier, img *Image) (int, error) {
	return nn.Predict(d, img)
}

// PredictBatch classifies a batch of images on the deterministic
// parallel engine (workers as in PipelineConfig: 0 = all cores, 1 =
// serial) and returns one result per image. Ideal-analog SEI designs
// route full 64-image groups through the bit-sliced batch kernel (64
// images per machine word; ragged tails run per-image) — labels stay
// bit-identical to offline evaluation at any batch size and worker
// count, noisy designs keep the per-image chunk grid with its
// per-chunk noise seeding. Malformed images fail individually with
// ErrBadInput; the rest of the batch is unaffected.
func PredictBatch(d Classifier, imgs []*Image, workers int) ([]PredictResult, error) {
	if err := par.Validate(workers); err != nil {
		return nil, fmt.Errorf("sei: %w", err)
	}
	return nn.PredictBatch(d, imgs, workers), nil
}

// PipelineConfig sizes RunPipeline.
type PipelineConfig struct {
	NetworkID    int
	TrainSamples int
	TestSamples  int
	Epochs       int
	Seed         int64
	MaxCrossbar  int
	Log          io.Writer
	// Workers bounds the parallel engine for every stage (0 = all
	// cores, 1 = the serial path); results are bit-identical for any
	// worker count.
	Workers int
	// Obs, when set, records phase spans (train → quantize → build →
	// evaluate), hardware-event counters and throughput for the run;
	// nil disables recording. Instrumentation never feeds back into
	// computation, so recorded runs are bit-identical to unrecorded
	// ones.
	Obs *obs.Recorder
}

// DefaultPipelineConfig runs Network 2 at a laptop-friendly size.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		NetworkID:    2,
		TrainSamples: 2000,
		TestSamples:  400,
		Epochs:       4,
		Seed:         1,
		MaxCrossbar:  rram.MaxCrossbarSize,
	}
}

// PipelineResult summarizes one end-to-end run.
type PipelineResult struct {
	FloatError   float64
	QuantError   float64
	SEIError     float64
	EnergyUJ     float64 // SEI design, per picture
	BaseEnergyUJ float64 // DAC+ADC design, per picture
	EnergySaving float64
	AreaMM2      float64
	BaseAreaMM2  float64
	AreaSaving   float64
	GOPsPerJ     float64
}

// RunPipeline executes the full paper pipeline: train → quantize →
// map to SEI → evaluate accuracy and energy/area against the DAC+ADC
// baseline.
func RunPipeline(cfg PipelineConfig) (*PipelineResult, error) {
	if cfg.NetworkID < 1 || cfg.NetworkID > 3 {
		return nil, fmt.Errorf("sei: network id %d outside [1,3]", cfg.NetworkID)
	}
	if err := par.Validate(cfg.Workers); err != nil {
		return nil, fmt.Errorf("sei: %w", err)
	}
	train, test := SyntheticSplit(cfg.TrainSamples, cfg.TestSamples, cfg.Seed)
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format, args...)
		}
	}
	logf("sei: training network %d on %d samples\n", cfg.NetworkID, train.Len())
	sp := cfg.Obs.StartSpan("train")
	net := nn.NewTableNetwork(cfg.NetworkID, cfg.Seed)
	tcfg := nn.DefaultTrainConfig()
	tcfg.Epochs = cfg.Epochs
	tcfg.Seed = cfg.Seed
	tcfg.Workers = cfg.Workers
	tcfg.Obs = cfg.Obs
	nn.Train(net, train, tcfg)
	sp.AddSamples(int64(train.Len() * cfg.Epochs))
	sp.End()
	res := &PipelineResult{FloatError: nn.ErrorRateObs(cfg.Obs, net, test, cfg.Workers)}
	logf("sei: float error %.4f; quantizing\n", res.FloatError)

	sp = cfg.Obs.StartSpan("quantize")
	q, err := quantizeObs(cfg.Obs, net, train, cfg.Workers)
	sp.End()
	if err != nil {
		return nil, err
	}
	res.QuantError = q.ErrorRateObs(cfg.Obs, test, cfg.Workers)
	logf("sei: quantized error %.4f; mapping to SEI\n", res.QuantError)

	sp = cfg.Obs.StartSpan("build")
	bcfg := seicore.DefaultSEIBuildConfig()
	bcfg.Layer.MaxCrossbar = cfg.MaxCrossbar
	bcfg.Orders = experiments.HomogenizedOrdersFor(q, cfg.MaxCrossbar, cfg.Seed)
	bcfg.Workers = cfg.Workers
	bcfg.Obs = cfg.Obs
	design, err := seicore.BuildSEI(q, train, bcfg, rand.New(rand.NewSource(cfg.Seed)))
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = cfg.Obs.StartSpan("evaluate")
	res.SEIError = nn.ClassifierErrorRateObs(cfg.Obs, design, test, cfg.Workers)
	sp.AddSamples(int64(test.Len()))
	sp.End()
	logf("sei: SEI hardware error %.4f; computing energy/area\n", res.SEIError)

	geoms, err := arch.GeometryOf(q)
	if err != nil {
		return nil, err
	}
	lib := power.DefaultLibrary()
	baseCfg := arch.DefaultConfig(StructDACADC)
	baseCfg.MaxCrossbar = cfg.MaxCrossbar
	baseMap, err := arch.Map(geoms, baseCfg)
	if err != nil {
		return nil, err
	}
	seiCfg := arch.DefaultConfig(StructSEI)
	seiCfg.MaxCrossbar = cfg.MaxCrossbar
	seiMap, err := arch.Map(geoms, seiCfg)
	if err != nil {
		return nil, err
	}
	_, eBase := baseMap.Energy(lib)
	_, eSEI := seiMap.Energy(lib)
	_, aBase := baseMap.Area(lib)
	_, aSEI := seiMap.Area(lib)
	res.BaseEnergyUJ = power.MicroJoules(eBase)
	res.EnergyUJ = power.MicroJoules(eSEI)
	res.EnergySaving = 1 - eSEI.Total()/eBase.Total()
	res.BaseAreaMM2 = power.SquareMM(aBase)
	res.AreaMM2 = power.SquareMM(aSEI)
	res.AreaSaving = 1 - aSEI.Total()/aBase.Total()
	res.GOPsPerJ = seiMap.Efficiency(lib)
	return res, nil
}

// RunAllExperiments regenerates every table and figure of the paper,
// printing each in the paper's layout. It is the programmatic form of
// `seisim all`.
func RunAllExperiments(cfg ExperimentConfig, w io.Writer) error {
	c := experiments.NewContext(cfg)
	fig1, err := experiments.Figure1(c, 1)
	if err != nil {
		return err
	}
	fig1.Print(w)
	fmt.Fprintln(w)
	experiments.Table1(c, 1, 2, 3).Print(w)
	fmt.Fprintln(w)
	experiments.PrintTable2(w, experiments.Table2(c))
	fmt.Fprintln(w)
	experiments.PrintTable3(w, experiments.Table3(c, 1, 2, 3))
	fmt.Fprintln(w)
	experiments.Table4(c, 1, []int{512, 256}).Print(w)
	fmt.Fprintln(w)
	t5, err := experiments.Table5(c, experiments.PaperTable5Points())
	if err != nil {
		return err
	}
	t5.Print(w)
	fmt.Fprintln(w)
	experiments.PrintHomogStudy(w, 1, experiments.HomogenizationStudy(c, 1, 512))
	fmt.Fprintln(w)
	experiments.PrintEfficiency(w, experiments.EfficiencyComparison(c, 1, 2, 3))
	fmt.Fprintln(w)
	timing, err := experiments.TimingStudy(c, 1, 8)
	if err != nil {
		return err
	}
	experiments.PrintTiming(w, 1, timing)
	fmt.Fprintln(w)
	vgg, err := experiments.VGGAnalysis()
	if err != nil {
		return err
	}
	experiments.PrintVGG(w, vgg)
	return nil
}
