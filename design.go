package sei

import (
	"fmt"
	"math/rand"

	"sei/internal/arch"
	"sei/internal/experiments"
	"sei/internal/power"
	"sei/internal/quant"
	"sei/internal/rram"
	"sei/internal/seicore"
	"sei/internal/snn"
)

// DefaultDeviceModel returns the paper's 4-bit RRAM device with mild
// programming variation.
func DefaultDeviceModel() DeviceModel { return rram.DefaultDeviceModel() }

// IdealDeviceModel returns a noiseless device with the given
// programming precision, for what-if studies.
func IdealDeviceModel(bits int) DeviceModel { return rram.IdealDeviceModel(bits) }

// BuildOptions configures BuildDesign.
type BuildOptions struct {
	// Device is the RRAM model (defaults to DefaultDeviceModel).
	Device DeviceModel
	// MaxCrossbar is the physical array limit (default 512).
	MaxCrossbar int
	// Unipolar selects the Section-4.2 linear-transform realization for
	// devices that cannot take negative inputs.
	Unipolar bool
	// DynamicThreshold enables the Section-4.3 split compensation
	// (requires a training set).
	DynamicThreshold bool
	// Order selects how split layers' rows are arranged across blocks.
	Order OrderStrategy
	Seed  int64
}

// OrderStrategy selects the row ordering for split layers.
type OrderStrategy int

const (
	// OrderHomogenized runs the GA homogenization (the paper's method).
	OrderHomogenized OrderStrategy = iota
	// OrderNatural keeps the training-time row order.
	OrderNatural
	// OrderRandom draws a seeded random permutation — the Table-4
	// "Random Order Splitting" condition.
	OrderRandom
)

// DefaultBuildOptions mirrors the paper's SEI setup.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{
		Device:           rram.DefaultDeviceModel(),
		MaxCrossbar:      rram.MaxCrossbarSize,
		DynamicThreshold: true,
		Order:            OrderHomogenized,
		Seed:             1,
	}
}

// BuildDesign maps a quantized network onto SEI hardware with explicit
// options. train may be nil when DynamicThreshold is false.
func BuildDesign(q *QuantizedNet, train *Dataset, opt BuildOptions) (*SEIDesign, error) {
	if opt.MaxCrossbar == 0 {
		opt.MaxCrossbar = rram.MaxCrossbarSize
	}
	if opt.Device.Bits == 0 {
		opt.Device = rram.DefaultDeviceModel()
	}
	cfg := seicore.DefaultSEIBuildConfig()
	cfg.Layer.Model = opt.Device
	cfg.Layer.MaxCrossbar = opt.MaxCrossbar
	if opt.Unipolar {
		cfg.Layer.Mode = seicore.ModeUnipolarDynamic
	}
	cfg.DynamicThreshold = opt.DynamicThreshold
	if opt.DynamicThreshold && train == nil {
		return nil, fmt.Errorf("sei: dynamic threshold calibration needs a training set")
	}
	switch opt.Order {
	case OrderHomogenized:
		cfg.Orders = experiments.HomogenizedOrdersFor(q, opt.MaxCrossbar, opt.Seed)
	case OrderRandom:
		cfg.Orders = experiments.RandomOrdersFor(q, opt.MaxCrossbar, opt.Seed)
	case OrderNatural:
		// nil orders: natural.
	default:
		return nil, fmt.Errorf("sei: unknown order strategy %d", opt.Order)
	}
	return seicore.BuildSEI(q, train, cfg, rand.New(rand.NewSource(opt.Seed)))
}

// SpikingErrorRate evaluates the quantized network on rate-coded
// (1-bit, DAC-free) spiking input over the given timestep budget —
// the Section-6 SNN direction. design may be a hardware design built
// with BuildDesign, or nil to use the exact digital evaluator.
func SpikingErrorRate(q *QuantizedNet, design *SEIDesign, data *Dataset, timesteps int, seed int64) (float64, error) {
	var eval quant.StageEval = q.Digital()
	if design != nil {
		eval = design
	}
	return snn.ErrorRate(q, eval, data, snn.Config{
		Timesteps:   timesteps,
		Aggregation: snn.SumScores,
		Seed:        seed,
	})
}

// DeploymentCost estimates the one-time energy of programming a
// quantized network's weights onto SEI crossbars under the
// program-and-verify write model (the paper's [13]): total µJ, mean
// pulses per cell, and the cell count.
func DeploymentCost(q *QuantizedNet, model DeviceModel) (energyUJ, pulsesPerCell float64, cells int64) {
	geoms, err := arch.GeometryOf(q)
	if err != nil {
		return 0, 0, 0
	}
	for _, g := range geoms {
		cells += 4 * int64(g.N) * int64(g.M) // pos/neg × hi/lo at 4-bit devices
	}
	cfg := rram.DefaultWriteConfig()
	pulsesPerCell = rram.ExpectedPulses(model, cfg)
	energyUJ = rram.DeploymentEnergyPJ(cells, model, cfg) * 1e-6
	return energyUJ, pulsesPerCell, cells
}

// DesignCosts summarizes the mapper's energy/area result for one
// structure.
type DesignCosts struct {
	Structure Structure
	EnergyUJ  float64
	AreaMM2   float64
	GOPsPerJ  float64
	// InterfaceEnergyFraction is the DAC+ADC share of the energy.
	InterfaceEnergyFraction float64
}

// MapCosts computes a network's per-picture energy, area and
// efficiency under each of the three structures at the given crossbar
// size.
func MapCosts(q *QuantizedNet, maxCrossbar int) ([]DesignCosts, error) {
	geoms, err := arch.GeometryOf(q)
	if err != nil {
		return nil, err
	}
	lib := power.DefaultLibrary()
	var out []DesignCosts
	for _, s := range []Structure{StructDACADC, StructOneBitADC, StructSEI} {
		cfg := arch.DefaultConfig(s)
		cfg.MaxCrossbar = maxCrossbar
		m, err := arch.Map(geoms, cfg)
		if err != nil {
			return nil, err
		}
		_, e := m.Energy(lib)
		_, a := m.Area(lib)
		out = append(out, DesignCosts{
			Structure:               s,
			EnergyUJ:                power.MicroJoules(e),
			AreaMM2:                 power.SquareMM(a),
			GOPsPerJ:                m.Efficiency(lib),
			InterfaceEnergyFraction: e.InterfaceFraction(),
		})
	}
	return out, nil
}
