// Command seiserve is the batched inference service: it loads SEI
// design snapshots (sei.SaveDesignFile) into a sharded registry and
// answers HTTP predicts, coalescing concurrent requests into
// per-design micro-batches on the deterministic parallel engine.
// Served labels are bit-identical to the offline sei.EvaluateDesign /
// sei.PredictBatch paths per design generation.
//
// Usage:
//
//	seiserve [flags]
//
// Endpoints:
//
//	POST /v1/predict          {"design":"<name>","images":[[784 pixels]...]}
//	                          (?generation=N pins one live generation)
//	GET  /v1/designs          resolvable design names + live generations
//	POST /v1/admin/reload     swap a design to a fresh generation from disk
//	                          (?design=, ?canary=W for a weighted split)
//	POST /v1/admin/canary     adjust/promote/rollback a canary split
//	POST /v1/admin/unregister retire a design, tear down its queue
//	GET  /healthz             liveness and drain state
//	GET  /metrics             Prometheus counters and histograms
//
// Robustness: malformed requests answer 4xx, a full per-design queue
// answers 429 without touching other designs' queues, requests whose
// deadline is below the observed flush latency are shed at admission
// (429), per-image library panics are contained into per-image errors,
// SIGHUP reloads every disk-backed design as a new generation while
// in-flight batches drain on the old one, and SIGTERM/SIGINT drains
// in-flight requests before exiting (bounded by -drain).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sei/internal/cliutil"
	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/serve"
)

type options struct {
	addr     string
	designs  string
	seed     int64
	demo     bool
	maxBatch int
	maxDelay time.Duration
	queueCap int
	workers  int
	retain   int
	timeout  time.Duration
	drain    time.Duration
}

// parseFlags parses args (without the program name) into options,
// following the seisim conventions: cliutil.ErrUsage for failures the
// flag package already reported, flag.ErrHelp for -h.
func parseFlags(args []string, stderr io.Writer) (*options, error) {
	opt := &options{}
	fs := flag.NewFlagSet("seiserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&opt.addr, "addr", ":8080", "listen address")
	fs.StringVar(&opt.designs, "designs", "", "directory of *.design snapshots (see sei.SaveDesignFile)")
	fs.Int64Var(&opt.seed, "seed", 1, "read-noise seed for loaded noisy designs")
	fs.BoolVar(&opt.demo, "demo", false, "register a small built-in classifier under the name \"demo\"")
	fs.IntVar(&opt.maxBatch, "max-batch", 64, "most images coalesced into one engine batch")
	fs.DurationVar(&opt.maxDelay, "max-delay", 2*time.Millisecond, "most time a predict waits for batch companions")
	fs.IntVar(&opt.queueCap, "queue", 256, "pending-predict queue bound; beyond it requests get 429")
	fs.IntVar(&opt.workers, "workers", 0, cliutil.WorkersUsage)
	fs.IntVar(&opt.retain, "retain", serve.DefaultRetain,
		"live generations kept per design: the two newest route traffic, older ones stay pinnable via ?generation=")
	fs.DurationVar(&opt.timeout, "timeout", serve.DefaultTimeout, "per-request predict deadline")
	fs.DurationVar(&opt.drain, "drain", 10*time.Second, "shutdown drain bound after SIGTERM/SIGINT")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil, err
		}
		return nil, cliutil.ErrUsage
	}
	if err := cliutil.CheckWorkers(opt.workers); err != nil {
		return nil, err
	}
	if !opt.demo && opt.designs == "" {
		return nil, errors.New("nothing to serve: pass -designs and/or -demo")
	}
	return opt, nil
}

// buildDemo trains a small deterministic classifier so the service can
// be exercised without design snapshots on disk.
func buildDemo(seed int64) nn.Classifier {
	net := nn.NewTableNetwork(1, seed)
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 1
	cfg.Seed = seed
	nn.Train(net, mnist.Synthetic(400, seed), cfg)
	return net
}

// run starts the service and blocks until SIGTERM/SIGINT (clean drain,
// nil) or a server failure. SIGHUP reloads every disk-backed design as
// a fresh full-swap generation without interrupting traffic. ready,
// when non-nil, is called with the bound listen address once the
// service accepts connections.
func run(opt *options, stdout io.Writer, ready func(addr string)) error {
	rec := obs.New()
	reg := serve.NewRegistry(opt.designs, opt.seed)
	reg.SetRetain(opt.retain)
	if opt.demo {
		fmt.Fprintln(stdout, "seiserve: training demo classifier")
		reg.Register("demo", buildDemo(opt.seed))
	}
	pool, err := serve.NewPool(serve.BatcherConfig{
		MaxBatch: opt.maxBatch,
		MaxDelay: opt.maxDelay,
		QueueCap: opt.queueCap,
		Workers:  opt.workers,
		Obs:      rec,
	})
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.NewHandler(serve.Options{
		Registry: reg,
		Pool:     pool,
		Obs:      rec,
		Timeout:  opt.timeout,
	})}
	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		pool.Close()
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "seiserve: listening on %s (designs: %v)\n", ln.Addr(), reg.Names())
	if ready != nil {
		ready(ln.Addr().String())
	}
serving:
	for {
		select {
		case err := <-errc:
			pool.Close()
			return err
		case <-hup:
			reloaded, err := reg.ReloadAll()
			if err != nil {
				fmt.Fprintf(stdout, "seiserve: SIGHUP reload: %v\n", err)
			}
			rec.Counter(serve.MetricReloads).Add(int64(len(reloaded)))
			fmt.Fprintf(stdout, "seiserve: SIGHUP reloaded %v\n", reloaded)
		case <-ctx.Done():
			break serving
		}
	}
	stop() // restore default signal handling: a second SIGTERM kills
	fmt.Fprintln(stdout, "seiserve: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), opt.drain)
	defer cancel()
	err = srv.Shutdown(drainCtx) // in-flight handlers finish first,
	pool.Close()                 // then the queued predicts drain
	if err != nil {
		return fmt.Errorf("seiserve: drain: %w", err)
	}
	fmt.Fprintln(stdout, "seiserve: drained")
	return nil
}

func main() {
	opt, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		if !errors.Is(err, cliutil.ErrUsage) {
			fmt.Fprintln(os.Stderr, "seiserve:", err)
		}
		os.Exit(2)
	}
	if err := run(opt, os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "seiserve:", err)
		os.Exit(1)
	}
}
