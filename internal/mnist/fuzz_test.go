package mnist

import (
	"bytes"
	"testing"
)

// FuzzReadIDXImages hardens the IDX parser against corrupt files: it
// must either return an error or a structurally valid dataset, never
// panic or over-allocate.
func FuzzReadIDXImages(f *testing.F) {
	// Seed with a valid stream and a few mutations.
	d := Synthetic(2, 1)
	var img, lbl bytes.Buffer
	if err := WriteIDX(d, &img, &lbl); err != nil {
		f.Fatal(err)
	}
	valid := img.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte{})
	truncatedHeader := append([]byte(nil), valid[:15]...)
	f.Add(truncatedHeader)
	corrupt := append([]byte(nil), valid...)
	corrupt[3] = 0xFF // wrong magic
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		images, err := ReadIDXImages(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, im := range images {
			s := im.Shape()
			if len(s) != 3 || s[0] != 1 || s[1] != Side || s[2] != Side {
				t.Fatalf("parsed image with shape %v", s)
			}
			if im.Min() < 0 || im.Max() > 1 {
				t.Fatal("parsed image outside [0,1]")
			}
		}
	})
}

// FuzzReadIDXLabels likewise for the label stream.
func FuzzReadIDXLabels(f *testing.F) {
	d := Synthetic(3, 2)
	var img, lbl bytes.Buffer
	if err := WriteIDX(d, &img, &lbl); err != nil {
		f.Fatal(err)
	}
	f.Add(lbl.Bytes())
	f.Add([]byte{0, 0, 8, 1, 0, 0, 0, 1, 99}) // out-of-range label
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		labels, err := ReadIDXLabels(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, l := range labels {
			if l < 0 || l >= NumClasses {
				t.Fatalf("parsed out-of-range label %d", l)
			}
		}
	})
}
