// Write cost: the paper's energy metric (Table 5) excludes the
// one-time cost of programming the weights. This example quantifies it
// with the iterative program-and-verify model (the paper's reference
// [13]) and computes the break-even picture count: after how many
// inferences SEI's per-picture saving has repaid the deployment energy.
//
// Run with: go run ./examples/write_cost
package main

import (
	"fmt"
	"log"
	"os"

	"sei"
)

func main() {
	train, _ := sei.SyntheticSplit(600, 1, 1)
	fmt.Fprintln(os.Stderr, "training network 1 (short run, geometry only)...")
	net := sei.TrainTableNetwork(1, train, 1, 1)
	q, err := sei.Quantize(net, train)
	if err != nil {
		log.Fatal(err)
	}
	costs, err := sei.MapCosts(q, 512)
	if err != nil {
		log.Fatal(err)
	}
	base, seiCost := costs[0], costs[2]
	savingUJ := base.EnergyUJ - seiCost.EnergyUJ

	fmt.Println("Deployment write cost vs per-picture saving (Network 1)")
	fmt.Printf("  per-picture: baseline %.2f uJ, SEI %.2f uJ (saves %.2f uJ/pic)\n",
		base.EnergyUJ, seiCost.EnergyUJ, savingUJ)

	for _, sigma := range []float64{0, 0.02, 0.05, 0.1} {
		model := sei.DefaultDeviceModel()
		model.ProgramSigma = sigma
		deployUJ, pulses, cells := sei.DeploymentCost(q, model)
		breakEven := deployUJ / savingUJ
		fmt.Printf("  sigma %.2f: %.0f cells x %.1f pulses -> %.1f uJ to program; break-even after %.1f pictures\n",
			sigma, float64(cells), pulses, deployUJ, breakEven)
	}
	fmt.Println("\nEven with heavy programming variation the write cost amortizes")
	fmt.Println("within a handful of classified pictures — which is why the paper's")
	fmt.Println("per-picture energy metric fairly ignores it.")
}
