package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sei/internal/tensor"
)

// The gob snapshot format is intentionally simple: each layer is
// reduced to a kind tag, its integer configuration, and flat parameter
// buffers. This keeps saved models independent of internal struct
// layout.

type layerSnapshot struct {
	Kind    string
	Ints    []int
	HasBias bool
	Weight  []float64
	Bias    []float64
}

type netSnapshot struct {
	Version int
	Name    string
	Layers  []layerSnapshot
}

const snapshotVersion = 1

// Save serializes the network to w.
func Save(net *Network, w io.Writer) error {
	snap := netSnapshot{Version: snapshotVersion, Name: net.Name}
	for _, l := range net.Layers {
		var ls layerSnapshot
		switch ll := l.(type) {
		case *Conv2D:
			ls.Kind = "conv2d"
			ls.Ints = []int{ll.Filters, ll.InChannels, ll.KH, ll.KW, ll.Stride}
			ls.Weight = append([]float64(nil), ll.Weight.Value.Data()...)
			if ll.Bias != nil {
				ls.HasBias = true
				ls.Bias = append([]float64(nil), ll.Bias.Value.Data()...)
			}
		case *ReLU:
			ls.Kind = "relu"
		case *MaxPool2D:
			ls.Kind = "maxpool2d"
			ls.Ints = []int{ll.Size}
		case *Flatten:
			ls.Kind = "flatten"
		case *Dense:
			ls.Kind = "dense"
			ls.Ints = []int{ll.In, ll.Out}
			ls.Weight = append([]float64(nil), ll.Weight.Value.Data()...)
			ls.HasBias = true
			ls.Bias = append([]float64(nil), ll.Bias.Value.Data()...)
		default:
			return fmt.Errorf("nn: cannot serialize layer type %T", l)
		}
		snap.Layers = append(snap.Layers, ls)
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load deserializes a network written by Save.
func Load(r io.Reader) (*Network, error) {
	var snap netSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("nn: decoding model: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("nn: unsupported model version %d", snap.Version)
	}
	net := &Network{Name: snap.Name}
	for i, ls := range snap.Layers {
		switch ls.Kind {
		case "conv2d":
			if len(ls.Ints) != 5 {
				return nil, fmt.Errorf("nn: layer %d: conv2d needs 5 ints, got %d", i, len(ls.Ints))
			}
			f, c, kh, kw, stride := ls.Ints[0], ls.Ints[1], ls.Ints[2], ls.Ints[3], ls.Ints[4]
			conv := &Conv2D{
				Filters: f, InChannels: c, KH: kh, KW: kw, Stride: stride,
				Weight: newParam(f, c, kh, kw),
			}
			if len(ls.Weight) != conv.Weight.Value.Len() {
				return nil, fmt.Errorf("nn: layer %d: conv2d weight length %d, want %d", i, len(ls.Weight), conv.Weight.Value.Len())
			}
			copy(conv.Weight.Value.Data(), ls.Weight)
			if ls.HasBias {
				conv.Bias = newParam(f)
				if len(ls.Bias) != f {
					return nil, fmt.Errorf("nn: layer %d: conv2d bias length %d, want %d", i, len(ls.Bias), f)
				}
				copy(conv.Bias.Value.Data(), ls.Bias)
			}
			net.Layers = append(net.Layers, conv)
		case "relu":
			net.Layers = append(net.Layers, NewReLU())
		case "maxpool2d":
			if len(ls.Ints) != 1 {
				return nil, fmt.Errorf("nn: layer %d: maxpool2d needs 1 int", i)
			}
			net.Layers = append(net.Layers, NewMaxPool2D(ls.Ints[0]))
		case "flatten":
			net.Layers = append(net.Layers, NewFlatten())
		case "dense":
			if len(ls.Ints) != 2 {
				return nil, fmt.Errorf("nn: layer %d: dense needs 2 ints", i)
			}
			in, out := ls.Ints[0], ls.Ints[1]
			d := &Dense{In: in, Out: out, Weight: newParam(out, in), Bias: newParam(out)}
			if len(ls.Weight) != in*out || len(ls.Bias) != out {
				return nil, fmt.Errorf("nn: layer %d: dense parameter lengths %d/%d, want %d/%d",
					i, len(ls.Weight), len(ls.Bias), in*out, out)
			}
			copy(d.Weight.Value.Data(), ls.Weight)
			copy(d.Bias.Value.Data(), ls.Bias)
			net.Layers = append(net.Layers, d)
		default:
			return nil, fmt.Errorf("nn: layer %d: unknown kind %q", i, ls.Kind)
		}
	}
	return net, nil
}

// SaveFile writes the network to path, creating parent directories.
func SaveFile(net *Network, path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(net, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a network from path.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// CloneWeights returns a deep copy of the network (architecture and
// parameters, not transient caches). The quantizer uses it so weight
// re-scaling never mutates the caller's trained model.
func CloneWeights(net *Network) *Network {
	c := &Network{Name: net.Name}
	for _, l := range net.Layers {
		switch ll := l.(type) {
		case *Conv2D:
			nc := &Conv2D{
				Filters: ll.Filters, InChannels: ll.InChannels,
				KH: ll.KH, KW: ll.KW, Stride: ll.Stride,
				Weight: &Param{Value: ll.Weight.Value.Clone(), Grad: tensor.New(ll.Weight.Value.Shape()...)},
			}
			if ll.Bias != nil {
				nc.Bias = &Param{Value: ll.Bias.Value.Clone(), Grad: tensor.New(ll.Bias.Value.Shape()...)}
			}
			c.Layers = append(c.Layers, nc)
		case *ReLU:
			c.Layers = append(c.Layers, NewReLU())
		case *MaxPool2D:
			c.Layers = append(c.Layers, NewMaxPool2D(ll.Size))
		case *Flatten:
			c.Layers = append(c.Layers, NewFlatten())
		case *Dense:
			c.Layers = append(c.Layers, &Dense{
				In: ll.In, Out: ll.Out,
				Weight: &Param{Value: ll.Weight.Value.Clone(), Grad: tensor.New(ll.Out, ll.In)},
				Bias:   &Param{Value: ll.Bias.Value.Clone(), Grad: tensor.New(ll.Out)},
			})
		default:
			panic(fmt.Sprintf("nn: cannot clone layer type %T", l))
		}
	}
	return c
}
