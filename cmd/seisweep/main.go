// Command seisweep explores the SEI design space and emits CSV:
// structure × crossbar size × device precision × programming
// variation, with energy, area, efficiency, and (optionally)
// simulated classification error per point.
//
// Usage:
//
//	seisweep [flags] > sweep.csv
//
// Examples:
//
//	seisweep -net 2 -sizes 512,256,128 -bits 3,4,5
//	seisweep -net 1 -accuracy -train 2500 -test 300
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"sei"
	"sei/internal/arch"
	"sei/internal/experiments"
	"sei/internal/nn"
	"sei/internal/par"
	"sei/internal/power"
	"sei/internal/rram"
	"sei/internal/seicore"
)

func main() {
	var (
		netID    = flag.Int("net", 2, "Table-2 network id (1-3)")
		train    = flag.Int("train", 2000, "training samples")
		test     = flag.Int("test", 300, "test samples (accuracy mode)")
		epochs   = flag.Int("epochs", 4, "training epochs")
		seed     = flag.Int64("seed", 1, "random seed")
		sizes    = flag.String("sizes", "512,256,128", "crossbar sizes to sweep")
		bits     = flag.String("bits", "4", "device bits to sweep")
		sigmas   = flag.String("sigmas", "0.02", "programming sigmas to sweep")
		accuracy = flag.Bool("accuracy", false, "also simulate classification error (slower)")
		workers  = flag.Int("workers", 0, "parallel evaluation workers (0 = all cores, 1 = serial); results are identical for any value")
	)
	flag.Parse()
	if err := par.Validate(*workers); err != nil {
		fail(err)
	}

	trainSet, testSet := sei.SyntheticSplit(*train, *test, *seed)
	fmt.Fprintf(os.Stderr, "seisweep: training network %d on %d samples\n", *netID, trainSet.Len())
	net := sei.TrainTableNetwork(*netID, trainSet, *epochs, *seed)
	q, err := sei.Quantize(net, trainSet)
	if err != nil {
		fail(err)
	}
	geoms, err := arch.GeometryOf(q)
	if err != nil {
		fail(err)
	}
	lib := power.DefaultLibrary()

	w := csv.NewWriter(os.Stdout)
	header := []string{"network", "structure", "crossbar", "device_bits", "sigma",
		"energy_uJ", "area_mm2", "gops_per_j", "latency_us", "throughput_kpics"}
	if *accuracy {
		header = append(header, "error_pct")
	}
	must(w.Write(header))

	// Enumerate the sweep grid up front so the expensive accuracy
	// simulations can fan out over independent points while the CSV
	// rows still stream in grid order.
	type sweepPoint struct {
		size, bits int
		sigma      float64
		s          seicore.Structure
	}
	var pts []sweepPoint
	for _, size := range parseInts(*sizes) {
		for _, b := range parseInts(*bits) {
			for _, sigma := range parseFloats(*sigmas) {
				for _, s := range []seicore.Structure{seicore.StructDACADC, seicore.StructOneBitADC, seicore.StructSEI} {
					pts = append(pts, sweepPoint{size, b, sigma, s})
				}
			}
		}
	}

	// Serial pass: the cheap mapper/timing columns (Map failures skip
	// the row, matching the serial sweep's stderr order).
	rows := make([][]string, len(pts))
	for i, pt := range pts {
		cfg := arch.DefaultConfig(pt.s)
		cfg.MaxCrossbar = pt.size
		m, err := arch.Map(geoms, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seisweep: skipping %v@%d: %v\n", pt.s, pt.size, err)
			continue
		}
		_, e := m.Energy(lib)
		_, a := m.Area(lib)
		tm, err := m.Timing(arch.DefaultTimingConfig())
		if err != nil {
			fail(err)
		}
		rows[i] = []string{
			strconv.Itoa(*netID), pt.s.String(), strconv.Itoa(pt.size),
			strconv.Itoa(pt.bits), fmt.Sprintf("%g", pt.sigma),
			fmt.Sprintf("%.4f", power.MicroJoules(e)),
			fmt.Sprintf("%.5f", power.SquareMM(a)),
			fmt.Sprintf("%.1f", m.Efficiency(lib)),
			fmt.Sprintf("%.2f", tm.LatencyNS/1000),
			fmt.Sprintf("%.1f", tm.ThroughputPicsPerSec/1000),
		}
	}

	// Parallel pass: the functional hardware simulations. Each point is
	// an independent design with its own seeded RNG, so fanning out and
	// filling indexed slots reproduces the serial column exactly.
	if *accuracy {
		live := 0
		for _, row := range rows {
			if row != nil {
				live++
			}
		}
		inner := 1
		if live > 0 {
			if inner = par.Resolve(*workers) / live; inner < 1 {
				inner = 1
			}
		}
		simErrs := make([]error, len(pts))
		par.ForEachChunk(*workers, len(pts), 1, func(ch par.Chunk) {
			i := ch.Lo
			if rows[i] == nil {
				return
			}
			pt := pts[i]
			errRate, err := simulateError(net, q, trainSet, testSet, pt.s, pt.size, pt.bits, pt.sigma, *seed, inner)
			if err != nil {
				simErrs[i] = err
				return
			}
			rows[i] = append(rows[i], fmt.Sprintf("%.2f", 100*errRate))
		})
		for _, err := range simErrs {
			if err != nil {
				fail(err)
			}
		}
	}

	for _, row := range rows {
		if row != nil {
			must(w.Write(row))
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		fail(err)
	}
}

// simulateError runs the functional hardware simulation for one design
// point. workers bounds the evaluation's inner parallelism; the sweep
// fans out over points and hands each a share of the budget.
func simulateError(net *sei.Network, q *sei.QuantizedNet, trainSet, testSet *sei.Dataset,
	s seicore.Structure, size, bits int, sigma float64, seed int64, workers int) (float64, error) {
	model := rram.IdealDeviceModel(bits)
	model.ProgramSigma = sigma
	rng := rand.New(rand.NewSource(seed))
	switch s {
	case seicore.StructDACADC:
		d, err := seicore.BuildDACADC(net, []int{1, 28, 28}, model, rng)
		if err != nil {
			return 0, err
		}
		return nn.ClassifierErrorRateWorkers(d, testSet, workers), nil
	case seicore.StructOneBitADC:
		d, err := seicore.BuildOneBitADC(q, model, rng)
		if err != nil {
			return 0, err
		}
		return nn.ClassifierErrorRateWorkers(d, testSet, workers), nil
	case seicore.StructSEI:
		cfg := seicore.DefaultSEIBuildConfig()
		cfg.Layer.Model = model
		cfg.Layer.MaxCrossbar = size
		cfg.Orders = experiments.HomogenizedOrdersFor(q, size, seed)
		cfg.Workers = workers
		d, err := seicore.BuildSEI(q, trainSet, cfg, rng)
		if err != nil {
			return 0, err
		}
		return nn.ClassifierErrorRateWorkers(d, testSet, workers), nil
	}
	return 0, fmt.Errorf("unknown structure %v", s)
}

func parseInts(s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fail(fmt.Errorf("bad int %q", p))
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			fail(fmt.Errorf("bad float %q", p))
		}
		out = append(out, v)
	}
	return out
}

func must(err error) {
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "seisweep: %v\n", err)
	os.Exit(1)
}
