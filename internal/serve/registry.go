// Package serve is the batched inference service over the sei
// pipeline: a design registry backed by gob snapshots on disk, a
// micro-batcher that coalesces concurrent predicts onto the
// deterministic parallel engine, and an HTTP front end with panic
// containment, backpressure and graceful drain. Results are
// bit-identical to the offline evaluation path (nn.PredictBatch /
// EvaluateDesign) for any batch composition and worker count.
package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"sei/internal/nn"
	"sei/internal/seicore"
)

// ErrUnknownDesign marks lookups of names that are neither registered
// nor present as a snapshot file. Match with errors.Is.
var ErrUnknownDesign = errors.New("serve: unknown design")

// DesignExt is the snapshot filename extension the registry scans for.
const DesignExt = ".design"

// Registry resolves design names to classifiers. Programmatic entries
// come in through Register; everything else is loaded lazily from
// <dir>/<name>.design snapshots (seicore.LoadDesignFile) and cached,
// so repeated predicts against the same design pay the gob decode
// once.
type Registry struct {
	dir  string
	seed int64

	mu     sync.Mutex
	loaded map[string]nn.Classifier
}

// NewRegistry returns a registry over dir (may be empty for a purely
// programmatic registry). seed re-anchors read-noise streams of noisy
// loaded designs, as in seicore.LoadDesign.
func NewRegistry(dir string, seed int64) *Registry {
	return &Registry{dir: dir, seed: seed, loaded: map[string]nn.Classifier{}}
}

// Register adds (or replaces) a named classifier, shadowing any
// snapshot file of the same name.
func (r *Registry) Register(name string, c nn.Classifier) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.loaded[name] = c
}

// validName rejects anything that could escape the snapshot directory
// or hide files: path separators, traversal, leading dots.
func validName(name string) bool {
	if name == "" || strings.HasPrefix(name, ".") {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// Get resolves a design name, loading and caching its snapshot on
// first use. Unknown names (and names that do not survive path
// validation) fail with ErrUnknownDesign.
func (r *Registry) Get(name string) (nn.Classifier, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.loaded[name]; ok {
		return c, nil
	}
	if !validName(name) || r.dir == "" {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDesign, name)
	}
	path := filepath.Join(r.dir, name+DesignExt)
	if _, err := os.Stat(path); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDesign, name)
	}
	d, err := seicore.LoadDesignFile(path, r.seed)
	if err != nil {
		return nil, fmt.Errorf("serve: loading design %q: %w", name, err)
	}
	r.loaded[name] = d
	return d, nil
}

// Names lists every resolvable design: registered classifiers plus
// snapshot files in the directory, sorted and deduplicated.
func (r *Registry) Names() []string {
	r.mu.Lock()
	seen := map[string]bool{}
	for name := range r.loaded {
		seen[name] = true
	}
	r.mu.Unlock()
	if r.dir != "" {
		if entries, err := os.ReadDir(r.dir); err == nil {
			for _, e := range entries {
				name := strings.TrimSuffix(e.Name(), DesignExt)
				if !e.IsDir() && strings.HasSuffix(e.Name(), DesignExt) && validName(name) {
					seen[name] = true
				}
			}
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
