package cliutil

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sei/internal/obs"
)

func TestCheckWorkers(t *testing.T) {
	for _, w := range []int{0, 1, 2, 16} {
		if err := CheckWorkers(w); err != nil {
			t.Fatalf("workers=%d rejected: %v", w, err)
		}
	}
	for _, w := range []int{-1, -8} {
		err := CheckWorkers(w)
		if err == nil {
			t.Fatalf("workers=%d accepted", w)
		}
		if !strings.Contains(err.Error(), "-workers") {
			t.Fatalf("workers=%d error %q does not name the flag", w, err)
		}
	}
}

func TestObsFlagsRegisterAndEnabled(t *testing.T) {
	var f ObsFlags
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f.Register(fs)
	if f.Enabled() {
		t.Fatal("zero ObsFlags reports enabled")
	}
	if f.Recorder() != nil {
		t.Fatal("disabled flags produced a recorder")
	}
	if err := fs.Parse([]string{"-metrics", "m.json", "-trace", "-prom", "p.prom"}); err != nil {
		t.Fatal(err)
	}
	if f.Metrics != "m.json" || !f.Trace || f.Prom != "p.prom" || f.Progress {
		t.Fatalf("parsed flags %+v", f)
	}
	if !f.Enabled() {
		t.Fatal("parsed flags report disabled")
	}
	if f.Recorder() == nil {
		t.Fatal("enabled flags produced no recorder")
	}
}

func TestFinishWritesReports(t *testing.T) {
	dir := t.TempDir()
	f := ObsFlags{
		Metrics: filepath.Join(dir, "report.json"),
		Prom:    filepath.Join(dir, "metrics.prom"),
		Trace:   true,
	}
	rec := obs.New()
	rec.Counter("test_events").Add(3)
	var stderr bytes.Buffer
	if err := f.Finish(rec, "unit", &stderr); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(f.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	var report map[string]any
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("JSON report does not parse: %v", err)
	}
	prom, err := os.ReadFile(f.Prom)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "test_events") {
		t.Fatalf("prometheus output missing counter:\n%s", prom)
	}
	if stderr.Len() == 0 {
		t.Fatal("-trace wrote nothing to stderr")
	}
}

func TestFinishNilRecorderIsNoop(t *testing.T) {
	f := ObsFlags{Metrics: filepath.Join(t.TempDir(), "never.json"), Trace: true}
	if err := f.Finish(nil, "unit", io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(f.Metrics); !os.IsNotExist(err) {
		t.Fatal("nil recorder still wrote a report")
	}
}

func TestFinishReportsUnwritablePaths(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no", "such", "dir")
	rec := obs.New()
	if err := (&ObsFlags{Metrics: filepath.Join(missing, "m.json")}).Finish(rec, "unit", io.Discard); err == nil {
		t.Fatal("unwritable -metrics path not reported")
	}
	if err := (&ObsFlags{Prom: filepath.Join(missing, "p.prom")}).Finish(rec, "unit", io.Discard); err == nil {
		t.Fatal("unwritable -prom path not reported")
	}
}
