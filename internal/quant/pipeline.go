package quant

import (
	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/obs"
)

// QuantizeNetwork is the end-to-end Section-3 pipeline: extract the
// stages of a trained network and run Algorithm 1 on the training set.
// The input network is not mutated (weights are deep-copied by
// Extract before re-scaling).
func QuantizeNetwork(net *nn.Network, train *mnist.Dataset, inShape []int, cfg SearchConfig) (*QuantizedNet, *SearchReport, error) {
	q, err := Extract(net, inShape)
	if err != nil {
		return nil, nil, err
	}
	q.Instrument(cfg.Obs)
	report, err := SearchThresholds(q, train, cfg)
	if err != nil {
		return nil, nil, err
	}
	return q, report, nil
}

// ErrorRate evaluates the exact digital binarized network on a
// dataset, returning the misclassification fraction — the "After
// Quantization" rows of Table 3. It runs on the parallel engine with
// all cores; see ErrorRateWorkers.
func (q *QuantizedNet) ErrorRate(data *mnist.Dataset) float64 {
	return q.ErrorRateWorkers(data, 0)
}

// ErrorRateWorkers evaluates the digital binarized network with the
// given worker count (0 = all cores, 1 = the serial path). The digital
// pipeline is deterministic and misclassification counting is
// order-independent, so the result is bit-identical for every worker
// count.
func (q *QuantizedNet) ErrorRateWorkers(data *mnist.Dataset, workers int) float64 {
	return nn.ClassifierErrorRateWorkers(q, data, workers)
}

// ErrorRateObs evaluates the digital binarized network with
// instrumentation: eval_images and engine scheduling counters on rec
// (see nn.ClassifierErrorRateObs). rec does not re-route the net's
// hardware counters — pair with Instrument for those.
func (q *QuantizedNet) ErrorRateObs(rec *obs.Recorder, data *mnist.Dataset, workers int) float64 {
	return nn.ClassifierErrorRateObs(rec, q, data, workers)
}
