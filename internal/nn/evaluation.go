package nn

import (
	"fmt"
	"io"

	"sei/internal/mnist"
	"sei/internal/par"
)

// ConfusionMatrix evaluates a classifier and returns
// counts[target][predicted]. Each row has NumClasses+1 columns: the
// extra final column is an overflow bucket counting predictions
// outside [0, NumClasses) — a broken evaluator must show up in the
// matrix, not vanish from it. Evaluation runs on the parallel engine
// and is bit-identical for every worker count.
func ConfusionMatrix(c Classifier, data *mnist.Dataset) [][]int {
	cm := make([][]int, mnist.NumClasses)
	for i := range cm {
		cm[i] = make([]int, mnist.NumClasses+1)
	}
	w := evalWorkers(c, 0)
	locals := par.MapChunks(w, data.Len(), par.DefaultChunkSize,
		func(ch par.Chunk) [][]int {
			eval := chunkEvaluator(c, ch)
			local := make([][]int, mnist.NumClasses)
			for i := range local {
				local[i] = make([]int, mnist.NumClasses+1)
			}
			for i := ch.Lo; i < ch.Hi; i++ {
				pred := eval.Predict(data.Images[i])
				if pred < 0 || pred >= mnist.NumClasses {
					pred = mnist.NumClasses
				}
				local[data.Labels[i]][pred]++
			}
			return local
		})
	for _, local := range locals {
		for t, row := range local {
			for p, n := range row {
				cm[t][p] += n
			}
		}
	}
	return cm
}

// PerClassError returns each class's error rate from a confusion
// matrix (NaN-free: classes with no samples report 0).
func PerClassError(cm [][]int) []float64 {
	out := make([]float64, len(cm))
	for t, row := range cm {
		total, correct := 0, 0
		for p, n := range row {
			total += n
			if p == t {
				correct += n
			}
		}
		if total > 0 {
			out[t] = 1 - float64(correct)/float64(total)
		}
	}
	return out
}

// PrintConfusion renders the matrix with per-class error rates. Rows
// wider than the class count get their trailing columns labelled
// "inv" (the out-of-range overflow bucket).
func PrintConfusion(w io.Writer, cm [][]int) {
	fmt.Fprintf(w, "      ")
	width := len(cm)
	if len(cm) > 0 && len(cm[0]) > width {
		width = len(cm[0])
	}
	for p := 0; p < width; p++ {
		if p < len(cm) {
			fmt.Fprintf(w, "%5d", p)
		} else {
			fmt.Fprintf(w, "%5s", "inv")
		}
	}
	fmt.Fprintf(w, "   err\n")
	errs := PerClassError(cm)
	for t, row := range cm {
		fmt.Fprintf(w, "  %2d: ", t)
		for _, n := range row {
			fmt.Fprintf(w, "%5d", n)
		}
		fmt.Fprintf(w, " %5.1f%%\n", 100*errs[t])
	}
}

// MostConfusedPair returns the (target, predicted) off-diagonal cell
// with the highest count — the single most frequent mistake between
// real classes. The overflow bucket is not a class and is skipped.
func MostConfusedPair(cm [][]int) (target, predicted, count int) {
	for t, row := range cm {
		for p, n := range row {
			if p >= len(cm) {
				break
			}
			if t != p && n > count {
				target, predicted, count = t, p, n
			}
		}
	}
	return target, predicted, count
}
