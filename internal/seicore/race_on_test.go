//go:build race

package seicore

// raceEnabled reports that this test binary runs under the race
// detector, where sync.Pool intentionally drops items to widen the
// race surface — allocation-count assertions are meaningless there.
const raceEnabled = true
