package seicore

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/quant"
	"sei/internal/rram"
)

// evalBothPaths runs the same design over data on the requested path
// with full instrumentation and returns the labels plus every counter
// total. The design and quantized net are detached again afterwards so
// the shared fixture stays uninstrumented.
func evalBothPaths(t *testing.T, d *SEIDesign, q *quant.QuantizedNet, data *mnist.Dataset, fast bool, workers int) ([]int, map[string]int64) {
	t.Helper()
	rec := obs.New()
	d.Instrument(rec)
	q.Instrument(rec)
	d.SetFastPath(fast)
	defer func() {
		d.Instrument(nil)
		q.Instrument(nil)
		d.SetFastPath(true)
	}()
	res := nn.PredictBatchObs(rec, d, data.Images, workers)
	labels := make([]int, len(res))
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("image %d: %v", i, r.Err)
		}
		labels[i] = r.Label
	}
	return labels, rec.CounterValues()
}

// TestFastPathMatchesFloatPath pins the fast path's core contract on
// several design shapes: bit-identical labels AND bit-identical
// hardware-counter totals versus the float path.
func TestFastPathMatchesFloatPath(t *testing.T) {
	f := getFixture(t)
	perm := rand.New(rand.NewSource(11)).Perm(36)
	cases := []struct {
		name string
		cfg  func() SEIBuildConfig
	}{
		{"default-bipolar", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.DynamicThreshold = false
			return cfg
		}},
		{"split-contiguous", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.Layer.MaxCrossbar = 16 // forces conv stage 1 and FC to split
			cfg.DynamicThreshold = false
			return cfg
		}},
		{"split-permuted-order", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.Layer.MaxCrossbar = 16
			cfg.Orders = [][]int{nil, perm} // non-contiguous blocks
			cfg.DynamicThreshold = false
			return cfg
		}},
		{"unipolar-dynamic", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.Layer.Mode = ModeUnipolarDynamic
			cfg.DynamicThreshold = false
			return cfg
		}},
		{"calibrated-split", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.Layer.MaxCrossbar = 16
			cfg.CalibImages = 10
			cfg.CalibPositions = 8
			return cfg
		}},
	}
	sub := f.test.Subset(60)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := BuildSEI(f.q, f.train, tc.cfg(), rand.New(rand.NewSource(3)))
			if err != nil {
				t.Fatal(err)
			}
			if !d.fast {
				t.Fatalf("ideal-analog design did not enable the fast path")
			}
			fastLabels, fastCounters := evalBothPaths(t, d, f.q, sub, true, 2)
			floatLabels, floatCounters := evalBothPaths(t, d, f.q, sub, false, 2)
			if !reflect.DeepEqual(fastLabels, floatLabels) {
				t.Errorf("fast-path labels diverge from float path")
			}
			if !reflect.DeepEqual(fastCounters, floatCounters) {
				t.Errorf("counters diverge:\n fast  %v\n float %v", fastCounters, floatCounters)
			}
		})
	}
}

// TestFastPathDisabledForNonIdealModels pins the dispatch rule: any
// analog read-out effect (read noise, IR drop, I-V nonlinearity)
// must keep the design on the float path.
func TestFastPathDisabledForNonIdealModels(t *testing.T) {
	f := getFixture(t)
	mods := map[string]func(*rram.DeviceModel){
		"read-noise":   func(m *rram.DeviceModel) { m.ReadNoiseSigma = 0.05 },
		"ir-drop":      func(m *rram.DeviceModel) { m.IRDropAlpha = 0.1 },
		"nonlinearity": func(m *rram.DeviceModel) { m.IVNonlinearity = 1.0 },
	}
	for name, mod := range mods {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultSEIBuildConfig()
			cfg.DynamicThreshold = false
			mod(&cfg.Layer.Model)
			d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(4)))
			if err != nil {
				t.Fatal(err)
			}
			if d.fast {
				t.Fatalf("%s model enabled the fast path", name)
			}
			// The float path must still evaluate.
			if _, err := nn.Predict(d, f.test.Images[0]); err != nil {
				t.Fatalf("float-path predict: %v", err)
			}
		})
	}
}

// TestFastPathZeroAllocs pins the arena design: after the scratch pool
// is warm, a fast-path Predict performs zero heap allocations.
func TestFastPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool is lossy under -race; allocation counts are not meaningful")
	}
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	img := f.test.Images[0]
	if avg := testing.AllocsPerRun(200, func() { d.Predict(img) }); avg != 0 {
		t.Errorf("fast-path Predict allocates %.1f objects per image, want 0", avg)
	}
}

// TestFastPathSurvivesSaveLoad pins that a snapshot round-trip
// re-derives the fast path and predicts identically.
func TestFastPathSurvivesSaveLoad(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.Layer.MaxCrossbar = 16
	cfg.DynamicThreshold = false
	d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDesign(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.fast {
		t.Fatalf("loaded ideal-analog design did not re-enable the fast path")
	}
	sub := f.test.Subset(40)
	for i, img := range sub.Images {
		if a, b := d.Predict(img), loaded.Predict(img); a != b {
			t.Fatalf("image %d: original %d, loaded %d", i, a, b)
		}
	}
	if raceEnabled {
		return // sync.Pool is lossy under -race; skip the alloc count
	}
	if avg := testing.AllocsPerRun(100, func() { loaded.Predict(sub.Images[0]) }); avg != 0 {
		t.Errorf("loaded design's Predict allocates %.1f objects per image, want 0", avg)
	}
}
