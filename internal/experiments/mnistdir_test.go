package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"sei/internal/mnist"
)

// When $MNIST_DIR holds the real IDX files, NewContext must load them
// instead of synthesizing data. We exercise the path by exporting
// synthetic data in IDX format.
func TestContextLoadsMNISTDir(t *testing.T) {
	dir := t.TempDir()
	train := mnist.Synthetic(60, 77)
	test := mnist.Synthetic(30, 78)
	writePair := func(imgName, lblName string, d *mnist.Dataset) {
		imgF, err := os.Create(filepath.Join(dir, imgName))
		if err != nil {
			t.Fatal(err)
		}
		defer imgF.Close()
		lblF, err := os.Create(filepath.Join(dir, lblName))
		if err != nil {
			t.Fatal(err)
		}
		defer lblF.Close()
		if err := mnist.WriteIDX(d, imgF, lblF); err != nil {
			t.Fatal(err)
		}
	}
	writePair("train-images-idx3-ubyte", "train-labels-idx1-ubyte", train)
	writePair("t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte", test)

	t.Setenv("MNIST_DIR", dir)
	cfg := QuickConfig()
	cfg.TrainSamples = 50
	cfg.TestSamples = 20
	c := NewContext(cfg)
	if c.Train.Len() != 50 || c.Test.Len() != 20 {
		t.Fatalf("context sizes %d/%d, want 50/20", c.Train.Len(), c.Test.Len())
	}
	// The loaded data must be the IDX-exported samples (shuffled), not
	// fresh synthetic ones: the multiset of labels over the full train
	// file is fixed, so every loaded label must appear in the source.
	if err := c.Train.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestContextFallsBackWithoutMNISTDir(t *testing.T) {
	t.Setenv("MNIST_DIR", t.TempDir()) // empty dir → loader fails → synthetic
	cfg := QuickConfig()
	cfg.TrainSamples = 30
	cfg.TestSamples = 10
	c := NewContext(cfg)
	if c.Train.Len() != 30 || c.Test.Len() != 10 {
		t.Fatalf("fallback sizes %d/%d", c.Train.Len(), c.Test.Len())
	}
}
