package quant

// The crossing-aware incremental sweep engine behind SearchThresholds
// and RefineThresholds.
//
// Both calibration loops score a list of ascending candidate
// thresholds t₁ < t₂ < … for one conv stage by counting how many
// samples the rest of the network classifies correctly when that
// stage binarizes at t. The naive form pays a full remainder forward
// pass per (sample, candidate) pair. The engine exploits the crossing
// invariant instead: a stage output bit is on iff its analog value v
// exceeds t, so as t ascends bits only ever turn off, exactly when t
// crosses v. Sorting each sample's stage outputs once yields the full
// crossing schedule; between consecutive candidates with no crossing
// (the common case — the paper's Table 1 long-tail observation) the
// bitmap, hence the prediction, is provably unchanged and the
// remainder evaluation is skipped outright. OR pooling absorbs further
// work: a crossing only reaches the remainder when it empties its pool
// window (the pooled bit's live count hits zero).
//
// For the last conv stage the remainder is just the FC classifier, and
// a pooled bit turning off changes the scores by exactly minus its
// weight column: y -= W[:,j], an O(classes) delta update in place of a
// full MatVec. Delta updates are exact in real arithmetic; in floats
// they can differ from a fresh fold by an ulp, which cannot flip an
// argmax unless two class scores tie to ~1e-15 — the property tests
// pin bit-identical reports on every supported configuration.
//
// All per-sample state lives in sweepArenas pooled per crossSweep
// (sync.Pool, the seicore seiScratch pattern): a chunk body takes an
// arena, sweeps its samples, and returns it, so steady-state candidate
// scoring allocates nothing. Chunk boundaries and chunk-order folds
// come from internal/par, so results are bit-identical at every worker
// count.

import (
	"sort"
	"sync"

	"sei/internal/bitvec"
	"sei/internal/obs"
	"sei/internal/par"
	"sei/internal/tensor"
)

// crossSweep scores candidate thresholds for one conv stage with the
// crossing-aware incremental schedule. It is parameterized over the
// remainder evaluator, so the greedy search (float remainder) and the
// refinement (binarized remainder) share the sweep core.
type crossSweep struct {
	filters, outH, outW int // swept stage's conv-output geometry
	pool                int // OR-pool window (≤1 = no pooling)
	pooledH, pooledW    int
	planeLen            int // outH*outW
	outLen              int // filters*planeLen

	// last marks the final conv stage: the remainder is the FC
	// classifier, maintained incrementally via delta updates.
	last     bool
	fcW      *tensor.Tensor
	fcB      []float64
	remShape []int // shape of the remainder input (pooled 0/1 map)
	remLen   int

	// newRem builds one arena's remainder evaluator — a closure owning
	// its scratch buffers that classifies a remainder input. Nil when
	// last.
	newRem func() func(*tensor.Tensor) int

	arenas sync.Pool
}

// newCrossSweep builds the sweep for a stage with conv outputs of
// shape [filters, outH, outW] and the given OR-pool window. fcW/fcB
// are the classifier weights (used for the delta path when newRem is
// nil, marking the last stage).
func newCrossSweep(outShape []int, pool int, fcW *tensor.Tensor, fcB []float64, newRem func() func(*tensor.Tensor) int) *crossSweep {
	s := &crossSweep{
		filters: outShape[0], outH: outShape[1], outW: outShape[2],
		pool:   pool,
		last:   newRem == nil,
		fcW:    fcW,
		fcB:    fcB,
		newRem: newRem,
	}
	s.planeLen = s.outH * s.outW
	s.outLen = s.filters * s.planeLen
	if pool > 1 {
		s.pooledH, s.pooledW = s.outH/pool, s.outW/pool
		s.remShape = []int{s.filters, s.pooledH, s.pooledW}
	} else {
		s.remShape = []int{s.filters, s.outH, s.outW}
	}
	s.remLen = s.remShape[0] * s.remShape[1] * s.remShape[2]
	return s
}

// sweepArena is one goroutine's scratch for sweeping samples: the
// sorted crossing schedule, the packed bitmap, the pool-window live
// counts, the remainder input, and the incrementally maintained
// classifier scores.
type sweepArena struct {
	order   []int32     // stage-output indices, ascending by (value, index)
	vals    []float64   // the values in that order
	bits    *bitvec.Vec // packed binarization at the current candidate
	cnt     []int32     // live bits per pool window (pool > 1 only)
	rem     *tensor.Tensor
	y       []float64 // classifier scores (last stage only)
	remEval func(*tensor.Tensor) int
}

func (s *crossSweep) getArena() *sweepArena {
	if a, ok := s.arenas.Get().(*sweepArena); ok {
		return a
	}
	a := &sweepArena{
		order: make([]int32, s.outLen),
		vals:  make([]float64, s.outLen),
		bits:  bitvec.New(s.outLen),
		rem:   tensor.New(s.remShape...),
	}
	if s.pool > 1 {
		a.cnt = make([]int32, s.remLen)
	}
	if s.last {
		a.y = make([]float64, len(s.fcB))
	} else {
		a.remEval = s.newRem()
	}
	return a
}

// pooledIndex maps a flat stage-output index to its pool-window index,
// or -1 when the position falls in the edge rows/columns the
// floor-division pool drops.
func (s *crossSweep) pooledIndex(j int) int {
	k := j / s.planeLen
	r := j - k*s.planeLen
	py := r / s.outW / s.pool
	px := r % s.outW / s.pool
	if py >= s.pooledH || px >= s.pooledW {
		return -1
	}
	return (k*s.pooledH+py)*s.pooledW + px
}

// sweepChunk is one chunk's fold state: per-candidate correct counts
// plus engine accounting, combined in chunk order by run.
type sweepChunk struct {
	counts []int64
	stats  SweepStats
}

// run scores every candidate in ts (ascending) against every sample
// and returns the per-candidate correct counts. values[i] is sample
// i's flat stage-output buffer. Counter totals and counts are
// bit-identical for every worker count: integer sums fold per chunk
// and chunks are fixed.
func (s *crossSweep) run(values [][]float64, labels []int, ts []float64, workers int, rec *obs.Recorder, stats *SweepStats) []int {
	if len(ts) == 0 {
		return nil
	}
	res := par.MapChunksRec(rec, workers, len(values), par.DefaultChunkSize, func(c par.Chunk) sweepChunk {
		a := s.getArena()
		defer s.arenas.Put(a)
		out := sweepChunk{counts: make([]int64, len(ts))}
		for i := c.Lo; i < c.Hi; i++ {
			s.sweepSample(a, values[i], labels[i], ts, &out)
		}
		return out
	})
	counts := make([]int, len(ts))
	var agg SweepStats
	for _, r := range res {
		for c, v := range r.counts {
			counts[c] += int(v)
		}
		agg.add(r.stats)
	}
	stats.add(agg)
	rec.Counter(MetricRemainderSkipped).Add(agg.RemainderSkipped)
	rec.Counter(MetricRemainderEvals).Add(agg.RemainderEvals)
	rec.Counter(MetricFCDeltaUpdates).Add(agg.FCDeltaUpdates)
	return counts
}

// sweepSample scores one sample against the full ascending candidate
// list using its crossing schedule.
func (s *crossSweep) sweepSample(a *sweepArena, data []float64, label int, ts []float64, out *sweepChunk) {
	n := len(data)
	order := a.order[:n]
	for j := range order {
		order[j] = int32(j)
	}
	// Total order (value, index): equal values cross in deterministic
	// index order, keeping last-stage delta updates order-stable.
	sort.Slice(order, func(x, y int) bool {
		vx, vy := data[order[x]], data[order[y]]
		if vx != vy {
			return vx < vy
		}
		return order[x] < order[y]
	})
	vals := a.vals[:n]
	for j, id := range order {
		vals[j] = data[id]
	}

	// Seed state at the first candidate: packed bitmap, pool-window
	// live counts, pooled remainder input, and one full remainder
	// evaluation.
	t0 := ts[0]
	a.bits.SetAbove(data, t0)
	remData := a.rem.Data()
	for i := range remData {
		remData[i] = 0
	}
	if s.pool > 1 {
		cnt := a.cnt
		for i := range cnt {
			cnt[i] = 0
		}
		for j := a.bits.NextSet(0); j >= 0; j = a.bits.NextSet(j + 1) {
			if pi := s.pooledIndex(j); pi >= 0 {
				cnt[pi]++
				remData[pi] = 1
			}
		}
	} else {
		for j := a.bits.NextSet(0); j >= 0; j = a.bits.NextSet(j + 1) {
			remData[j] = 1
		}
	}
	var pred int
	if s.last {
		tensor.MatVecInto(a.y, s.fcW, remData)
		for o, b := range s.fcB {
			a.y[o] += b
		}
		pred = argmaxFirst(a.y)
	} else {
		pred = a.remEval(a.rem)
	}
	out.stats.RemainderEvals++
	if pred == label {
		out.counts[0]++
	}

	// p points at the first schedule entry still above the current
	// candidate; entries before it have crossed (turned off).
	p := sort.Search(n, func(k int) bool { return vals[k] > t0 })
	for c := 1; c < len(ts); c++ {
		t := ts[c]
		remChanged := false
		for p < n && vals[p] <= t {
			j := int(order[p])
			p++
			a.bits.Unset(j)
			ri := j
			if s.pool > 1 {
				pi := s.pooledIndex(j)
				if pi < 0 {
					continue // edge position dropped by the pool
				}
				a.cnt[pi]--
				if a.cnt[pi] != 0 {
					continue // window still populated: OR unchanged
				}
				ri = pi
			}
			remData[ri] = 0
			remChanged = true
			if s.last {
				w := s.fcW.Data()
				in := s.fcW.Dim(1)
				for o := range a.y {
					a.y[o] -= w[o*in+ri]
				}
				out.stats.FCDeltaUpdates++
			}
		}
		switch {
		case !remChanged:
			out.stats.RemainderSkipped++
		case s.last:
			pred = argmaxFirst(a.y)
		default:
			pred = a.remEval(a.rem)
			out.stats.RemainderEvals++
		}
		if pred == label {
			out.counts[c]++
		}
	}
	out.stats.Evaluations += int64(len(ts))
}

// argmaxFirst is tensor.ArgMax on a plain slice: index of the largest
// element, first on ties.
func argmaxFirst(y []float64) int {
	best, bi := y[0], 0
	for i, v := range y {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// newIncrementalSweeper wires a crossSweep for Algorithm 1's stage-l
// candidate scoring: the remainder evaluator is the float tail of the
// network (bit-identical to floatRemainder), or the FC delta path when
// l is the last conv stage.
func newIncrementalSweeper(q *QuantizedNet, l int, convOut []*tensor.Tensor, labels []int, cfg SearchConfig, stats *SweepStats) layerSweeper {
	outShape := convOut[0].Shape()
	pool := q.Convs[l].PoolSize
	var newRem func() func(*tensor.Tensor) int
	if l < len(q.Convs)-1 {
		remShape := outShape
		if pool > 1 {
			remShape = []int{outShape[0], outShape[1] / pool, outShape[2] / pool}
		}
		newRem = newFloatRemainderEval(q, l+1, remShape)
	}
	s := newCrossSweep(outShape, pool, q.FC.W, q.FC.B, newRem)
	values := make([][]float64, len(convOut))
	for i, t := range convOut {
		values[i] = t.Data()
	}
	return func(ts []float64) []int {
		return s.run(values, labels, ts, cfg.Workers, cfg.Obs, stats)
	}
}

// remStageGeom is the static geometry of one remainder conv stage.
type remStageGeom struct {
	kh, kw, stride, pool int
	fan, positions       int
	wmat                 *tensor.Tensor // [filters, fan] view of the stage weights (shared, read-only)
	wdata                []float64      // the same weights flat (binarized path)
	outShape             []int          // [filters, outH, outW]
	pooledShape          []int          // nil when pool ≤ 1
	l                    int
}

// remainderGeometry chains activation shapes from inShape through conv
// stages from..end, precomputing the per-stage geometry both remainder
// evaluators share.
func remainderGeometry(q *QuantizedNet, from int, inShape []int) []remStageGeom {
	var gs []remStageGeom
	shape := inShape
	for l := from; l < len(q.Convs); l++ {
		c := &q.Convs[l]
		kh, kw := c.W.Dim(2), c.W.Dim(3)
		outH := (shape[1]-kh)/c.Stride + 1
		outW := (shape[2]-kw)/c.Stride + 1
		g := remStageGeom{
			kh: kh, kw: kw, stride: c.Stride, pool: c.PoolSize,
			fan: c.FanIn(), positions: outH * outW,
			wmat:     c.W.Reshape(c.Filters(), c.FanIn()),
			wdata:    c.W.Data(),
			outShape: []int{c.Filters(), outH, outW},
			l:        l,
		}
		shape = g.outShape
		if c.PoolSize > 1 {
			g.pooledShape = []int{c.Filters(), outH / c.PoolSize, outW / c.PoolSize}
			shape = g.pooledShape
		}
		gs = append(gs, g)
	}
	return gs
}

// remStageBufs is one arena's scratch for one remainder conv stage.
type remStageBufs struct {
	cols, colsT *tensor.Tensor
	out2        *tensor.Tensor // [filters, positions] product buffer
	out         *tensor.Tensor // the same data viewed [filters, outH, outW]
	pooled      *tensor.Tensor // nil when pool ≤ 1
}

func newRemStageBufs(gs []remStageGeom, withColsT bool) []remStageBufs {
	bufs := make([]remStageBufs, len(gs))
	for i, g := range gs {
		b := remStageBufs{
			cols: tensor.New(g.positions, g.fan),
			out2: tensor.New(g.outShape[0], g.positions),
		}
		if withColsT {
			b.colsT = tensor.New(g.fan, g.positions)
		}
		b.out = b.out2.Reshape(g.outShape...)
		if g.pooledShape != nil {
			b.pooled = tensor.New(g.pooledShape...)
		}
		bufs[i] = b
	}
	return bufs
}

// newFloatRemainderEval returns an arena factory for the float
// remainder of the greedy search: conv, ReLU, max pool per stage, then
// the FC classifier. Kernels and accumulation order replicate
// floatRemainder exactly (Im2Col/Transpose2D/ikj MatMul, full-fold
// MatVec), so predictions are bit-identical; the Into variants reuse
// the arena's buffers instead of allocating.
func newFloatRemainderEval(q *QuantizedNet, from int, inShape []int) func() func(*tensor.Tensor) int {
	gs := remainderGeometry(q, from, inShape)
	fcW, fcB := q.FC.W, q.FC.B
	return func() func(*tensor.Tensor) int {
		bufs := newRemStageBufs(gs, true)
		y := make([]float64, len(fcB))
		return func(rem *tensor.Tensor) int {
			x := rem
			for i, g := range gs {
				b := &bufs[i]
				tensor.Im2ColInto(b.cols, x, g.kh, g.kw, g.stride)
				tensor.Transpose2DInto(b.colsT, b.cols)
				tensor.MatMulInto(b.out2, g.wmat, b.colsT)
				d := b.out.Data()
				for k, v := range d {
					if v < 0 {
						d[k] = 0
					}
				}
				if g.pool > 1 {
					maxPoolInto(b.pooled, b.out, g.pool)
					x = b.pooled
				} else {
					x = b.out
				}
			}
			tensor.MatVecInto(y, fcW, x.Data())
			for o, b := range fcB {
				y[o] += b
			}
			return argmaxFirst(y)
		}
	}
}

// newBinaryRemainderEval returns an arena factory for the refinement's
// remainder: the *binarized* pipeline from conv stage `from` on — each
// stage's analog sums accumulated in digitalEval's skip-zero order,
// thresholded at the stage's current q.Thresholds value (read at call
// time, since refinement mutates deeper thresholds between sweeps),
// OR-pooled, and classified by the FC stage. Predictions are
// bit-identical to QuantizedNet.Predict's tail.
func newBinaryRemainderEval(q *QuantizedNet, from int, inShape []int) func() func(*tensor.Tensor) int {
	gs := remainderGeometry(q, from, inShape)
	fcW, fcB := q.FC.W, q.FC.B
	return func() func(*tensor.Tensor) int {
		bufs := newRemStageBufs(gs, false)
		y := make([]float64, len(fcB))
		return func(rem *tensor.Tensor) int {
			x := rem
			for i, g := range gs {
				b := &bufs[i]
				binaryConvStageInto(b.out, b.cols, g, x, q.Thresholds[g.l])
				if g.pool > 1 {
					orPoolInto(b.pooled, b.out, g.pool)
					x = b.pooled
				} else {
					x = b.out
				}
			}
			tensor.MatVecInto(y, fcW, x.Data())
			for o, b := range fcB {
				y[o] += b
			}
			return argmaxFirst(y)
		}
	}
}

// binaryConvStageInto evaluates one binarized conv stage into dst
// ([filters, outH, outW] of 0/1 floats): per receptive field, per
// filter, the skip-zero dot product of digitalEval.EvalConv, then
// `sum > t`. cols is the arena's im2col scratch.
func binaryConvStageInto(dst, cols *tensor.Tensor, g remStageGeom, x *tensor.Tensor, t float64) {
	tensor.Im2ColInto(cols, x, g.kh, g.kw, g.stride)
	cd, dd := cols.Data(), dst.Data()
	f := g.outShape[0]
	for p := 0; p < g.positions; p++ {
		field := cd[p*g.fan : (p+1)*g.fan]
		for k := 0; k < f; k++ {
			row := g.wdata[k*g.fan : (k+1)*g.fan]
			s := 0.0
			for j, xv := range field {
				if xv != 0 {
					s += row[j] * xv
				}
			}
			if s > t {
				dd[k*g.positions+p] = 1
			} else {
				dd[k*g.positions+p] = 0
			}
		}
	}
}

// orPoolInto writes the OR pool of a 0/1 map ([c,h,w]) into dst
// ([c, h/size, w/size]) with direct indexing; values match orPool.
func orPoolInto(dst, bits *tensor.Tensor, size int) {
	ch, h, w := bits.Dim(0), bits.Dim(1), bits.Dim(2)
	oh, ow := dst.Dim(1), dst.Dim(2)
	bd, dd := bits.Data(), dst.Data()
	for c := 0; c < ch; c++ {
		base := c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				v := 0.0
				for ky := 0; ky < size && v == 0; ky++ {
					row := base + (oy*size+ky)*w + ox*size
					for kx := 0; kx < size; kx++ {
						if bd[row+kx] != 0 {
							v = 1
							break
						}
					}
				}
				dd[(c*oh+oy)*ow+ox] = v
			}
		}
	}
}
