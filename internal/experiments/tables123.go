package experiments

import (
	"fmt"
	"io"

	"sei/internal/nn"
	"sei/internal/quant"
)

// Table1Result reproduces Table 1: the distribution of intermediate
// (post-ReLU conv) data, normalized per layer, binned at 1/16, 1/8 and
// 1/4. The paper measured CaffeNet; we measure the Table-2 networks,
// which the paper states share the distribution shape ("all the
// networks have a similar data distribution with CaffeNet").
type Table1Result struct {
	Networks map[int][]quant.LayerDistribution
}

// Table1 analyzes the given trained networks over the test set.
func Table1(c *Context, networkIDs ...int) *Table1Result {
	res := &Table1Result{Networks: map[int][]quant.LayerDistribution{}}
	for _, id := range networkIDs {
		net := c.Network(id)
		res.Networks[id] = quant.AnalyzeDistribution(net, c.Test)
	}
	return res
}

// Print renders the rows like the paper's Table 1.
func (r *Table1Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 1: distribution of normalized intermediate data")
	fmt.Fprintf(w, "  %-22s %9s %9s %9s %9s\n", "", "0-1/16", "1/16-1/8", "1/8-1/4", "1/4-1")
	for id := 1; id <= 3; id++ {
		rows, ok := r.Networks[id]
		if !ok {
			continue
		}
		for _, d := range rows {
			fmt.Fprintf(w, "  Network %d %-12s %8.2f%% %8.2f%% %8.2f%% %8.2f%%\n",
				id, d.LayerName, 100*d.Fractions[0], 100*d.Fractions[1], 100*d.Fractions[2], 100*d.Fractions[3])
		}
	}
}

// Table2Row is one column of Table 2: a network configuration plus its
// measured complexity.
type Table2Row struct {
	NetworkID  int
	Spec       nn.NetworkSpec
	Ops        int64
	OpsGOPs    float64
	ParamCount int
}

// Table2 reports the experiment setup of the three networks.
func Table2(c *Context) []Table2Row {
	var rows []Table2Row
	for id := 1; id <= 3; id++ {
		net := c.Network(id)
		spec := nn.Specs()[id]
		ops := net.Ops([]int{1, 28, 28})
		rows = append(rows, Table2Row{
			NetworkID:  id,
			Spec:       spec,
			Ops:        ops,
			OpsGOPs:    float64(ops) / 1e9,
			ParamCount: net.NumParams(),
		})
	}
	return rows
}

// PrintTable2 renders the setup like the paper's Table 2.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: experiment setup")
	for _, r := range rows {
		s := r.Spec
		fmt.Fprintf(w, "  Network %d: conv1 %d kernels %dx%d (matrix %dx%d), conv2 %d kernels %dx%d (matrix %dx%d), FC %dx%d, %.2e GOPs (2 ops/MAC), %d params\n",
			r.NetworkID,
			s.Conv1Filters, s.Conv1Kernel, s.Conv1Kernel, s.WeightMatrix1Rows, s.WeightMatrix1Cols,
			s.Conv2Filters, s.Conv2Kernel, s.Conv2Kernel, s.WeightMatrix2Rows, s.WeightMatrix2Cols,
			s.FCIn, s.FCOut, r.OpsGOPs, r.ParamCount)
	}
}

// Table3Row is one column of Table 3: error rates before and after
// 1-bit quantization for a network, plus the calibrated variant this
// repo adds (FC recalibration + threshold refinement).
type Table3Row struct {
	NetworkID          int
	BeforeQuantization float64
	AfterQuantization  float64
	AfterCalibration   float64
}

// Table3 measures the quantization cost on the test set.
func Table3(c *Context, networkIDs ...int) []Table3Row {
	var rows []Table3Row
	for _, id := range networkIDs {
		rows = append(rows, Table3Row{
			NetworkID:          id,
			BeforeQuantization: c.FloatError(id),
			AfterQuantization:  c.QuantError(id),
			AfterCalibration:   c.QuantCalibratedError(id),
		})
	}
	return rows
}

// PrintTable3 renders the rows like the paper's Table 3.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: error rate of the quantization method")
	fmt.Fprintf(w, "  %-22s", "Network")
	for _, r := range rows {
		fmt.Fprintf(w, " %8d", r.NetworkID)
	}
	fmt.Fprintln(w)
	line := func(name string, get func(Table3Row) float64) {
		fmt.Fprintf(w, "  %-22s", name)
		for _, r := range rows {
			fmt.Fprintf(w, " %7.2f%%", 100*get(r))
		}
		fmt.Fprintln(w)
	}
	line("Before Quantization", func(r Table3Row) float64 { return r.BeforeQuantization })
	line("After Quantization", func(r Table3Row) float64 { return r.AfterQuantization })
	line("After Calibration*", func(r Table3Row) float64 { return r.AfterCalibration })
	fmt.Fprintln(w, "  (*) FC recalibration + threshold refinement — this repo's extension")
}
