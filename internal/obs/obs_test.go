package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// withTestClock replaces the recorder's clock with a deterministic one
// ticking one second per reading, and rebases the run start.
func withTestClock(r *Recorder) time.Time {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	n := 0
	r.now = func() time.Time { n++; return base.Add(time.Duration(n) * time.Second) }
	r.start = base
	r.root.start = base
	return base
}

func TestSpanNesting(t *testing.T) {
	r := New()
	withTestClock(r)
	outer := r.StartSpan("outer") // t+1
	inner := r.StartSpan("inner") // t+2
	inner.AddSamples(10)
	inner.End() // t+3: inner ran 1s
	outer.End() // t+4: outer ran 3s
	if got := inner.Duration(); got != time.Second {
		t.Errorf("inner duration = %v, want 1s", got)
	}
	if got := outer.Duration(); got != 3*time.Second {
		t.Errorf("outer duration = %v, want 3s", got)
	}
	if got := inner.Samples(); got != 10 {
		t.Errorf("inner samples = %d, want 10", got)
	}
	rep := r.Report("test")
	if len(rep.Spans) != 1 || rep.Spans[0].Name != "outer" {
		t.Fatalf("top-level spans = %+v, want [outer]", rep.Spans)
	}
	if len(rep.Spans[0].Children) != 1 || rep.Spans[0].Children[0].Name != "inner" {
		t.Fatalf("outer children = %+v, want [inner]", rep.Spans[0].Children)
	}
	if got := rep.Spans[0].Children[0].SamplesPerSec; got != 10 {
		t.Errorf("inner samples/s = %v, want 10", got)
	}
}

// Ending an outer span closes its unended descendants, so a forgotten
// End cannot corrupt the stack.
func TestSpanEndClosesDescendants(t *testing.T) {
	r := New()
	withTestClock(r)
	outer := r.StartSpan("outer") // t+1
	inner := r.StartSpan("inner") // t+2
	outer.End()                   // t+3: closes both
	if got := inner.Duration(); got != time.Second {
		t.Errorf("inner duration = %v, want 1s", got)
	}
	if got := outer.Duration(); got != 2*time.Second {
		t.Errorf("outer duration = %v, want 2s", got)
	}
	next := r.StartSpan("next") // t+4: child of root again
	next.End()
	rep := r.Report("test")
	if len(rep.Spans) != 2 || rep.Spans[1].Name != "next" {
		t.Fatalf("spans = %+v, want [outer next] at top level", rep.Spans)
	}
}

func TestSpanDoubleEnd(t *testing.T) {
	r := New()
	withTestClock(r)
	sp := r.StartSpan("phase") // t+1
	sp.End()                   // t+2
	sp.End()                   // no-op
	if got := sp.Duration(); got != time.Second {
		t.Errorf("duration = %v, want 1s after double End", got)
	}
}

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("events")
	c.Add(3)
	c.Add(4)
	if got := c.Value(); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	if r.Counter("events") != c {
		t.Error("Counter did not return the same instance on reuse")
	}
	g := r.Gauge("workers")
	g.Set(8)
	g.Set(2)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %v, want last-write 2", got)
	}
	vals := r.CounterValues()
	if vals["events"] != 7 {
		t.Errorf("CounterValues = %v, want events:7", vals)
	}
	if gv := r.GaugeValues(); gv["workers"] != 2 {
		t.Errorf("GaugeValues = %v, want workers:2", gv)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := New()
	h := r.Histogram("dist", []float64{1, 2, 4})
	// Bucket i holds v ≤ bounds[i]; the last bucket is +Inf.
	for _, v := range []float64{0.5, 1, 1.5, 3, 4, 9} {
		h.Observe(v)
	}
	want := []int64{2, 1, 2, 1} // le1:{0.5,1} le2:{1.5} le4:{3,4} +Inf:{9}
	got := h.Counts()
	if len(got) != len(want) {
		t.Fatalf("counts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 19 {
		t.Errorf("sum = %v, want 19", h.Sum())
	}
	if b := h.Bounds(); len(b) != 3 || b[2] != 4 {
		t.Errorf("bounds = %v, want [1 2 4]", b)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds did not panic")
		}
	}()
	newHistogram([]float64{2, 1})
}

func TestShardedCounterMergesInOrder(t *testing.T) {
	r := New()
	sc := r.Sharded("items", 4)
	for shard := 0; shard < 4; shard++ {
		sc.Add(shard, int64(shard+1))
	}
	if got := r.Counter("items").Value(); got != 0 {
		t.Errorf("counter = %d before Merge, want 0", got)
	}
	sc.Merge()
	if got := r.Counter("items").Value(); got != 10 {
		t.Errorf("counter = %d after Merge, want 10", got)
	}
}

func TestSkip(t *testing.T) {
	r := New()
	r.Skip("SEI@64", "crossbar too small")
	r.Skip("DAC+ADC@32", "mapper failure")
	got := r.SkippedPoints()
	if len(got) != 2 || got[0].Point != "SEI@64" || got[1].Reason != "mapper failure" {
		t.Errorf("skipped = %+v", got)
	}
	if n := r.CounterValues()["sweep_skipped_points"]; n != 2 {
		t.Errorf("sweep_skipped_points = %d, want 2", n)
	}
}

func TestHWBundle(t *testing.T) {
	r := New()
	hw := r.HW()
	hw.MVM(2)
	hw.SACompares(3)
	hw.ColumnActivations(4)
	hw.ActiveInputs(5)
	hw.ORPool(6)
	vals := r.CounterValues()
	for name, want := range map[string]int64{
		HWMVMOps: 2, HWSAComparisons: 3, HWColumnActivations: 4,
		HWActiveInputs: 5, HWORPoolReductions: 6,
	} {
		if vals[name] != want {
			t.Errorf("%s = %d, want %d", name, vals[name], want)
		}
	}
	if got := r.Histogram(HWActiveInputsPerMVM, nil).Count(); got != 1 {
		t.Errorf("active-inputs histogram count = %d, want 1", got)
	}
}

// The nil recorder and everything it hands out must be safe no-ops:
// that is the disabled fast path every hot loop relies on.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Counter("x").Add(1)
	r.Gauge("x").Set(1)
	r.Histogram("x", []float64{1}).Observe(1)
	r.HW().MVM(1)
	r.HW().ActiveInputs(1)
	sc := r.Sharded("x", 4)
	sc.Add(0, 1)
	sc.Merge()
	sp := r.StartSpan("x")
	sp.AddSamples(1)
	sp.End()
	r.Skip("p", "r")
	r.EnableProgress(nil, time.Second)
	r.Progress("x", 1, 2)
	if r.CounterValues() != nil || r.SkippedPoints() != nil {
		t.Error("nil recorder returned non-nil snapshots")
	}
	rep := r.Report("off")
	if rep.Name != "off" || len(rep.Counters) != 0 {
		t.Errorf("nil report = %+v", rep)
	}
}

func TestProgress(t *testing.T) {
	r := New()
	withTestClock(r)
	var buf bytes.Buffer
	r.EnableProgress(&buf, 0)
	r.Progress("sweep", 1, 4)
	r.Progress("sweep", 4, 4)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("progress lines = %q, want 2 lines", buf.String())
	}
	if lines[0] != "obs: sweep 1/4 (25%)" {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "obs: sweep 4/4 (100%)") {
		t.Errorf("line 1 = %q", lines[1])
	}
}

func TestProgressRateLimit(t *testing.T) {
	r := New()
	withTestClock(r) // ticks 1s per reading
	var buf bytes.Buffer
	r.EnableProgress(&buf, 10*time.Second)
	r.Progress("sweep", 1, 100)   // prints (first)
	r.Progress("sweep", 2, 100)   // suppressed: 1s < 10s
	r.Progress("sweep", 3, 100)   // suppressed
	r.Progress("sweep", 100, 100) // prints (completion)
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Errorf("printed %d lines, want 2 (first + completion):\n%s", got, buf.String())
	}
}
