// Package homog implements the paper's matrix homogenization
// (Section 4.3, "Enhancing priori knowledge of weight matrix"):
// reordering the rows of a weight matrix before splitting it across
// crossbars, so that the K sub-matrices have near-equal column-mean
// vectors. The objective is Equ. 10 — the total Euclidean distance
// between the sub-matrix average vectors — minimized with the paper's
// genetic algorithm (random row-position exchanges), plus a greedy
// serpentine seeding heuristic and an exhaustive reference for tiny
// instances.
package homog

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sei/internal/seicore"
	"sei/internal/tensor"
)

// Distance evaluates Equ. 10 for a row order: the matrix's rows, in
// the given order, are split into k contiguous balanced blocks (the
// same convention seicore uses), and the sum of pairwise L2 distances
// between block column-mean vectors is returned.
func Distance(w *tensor.Tensor, order []int, k int) float64 {
	means := blockMeans(w, order, k)
	total := 0.0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			total += l2(means[i], means[j])
		}
	}
	return total
}

// blockMeans returns the k column-mean vectors of the blocks.
func blockMeans(w *tensor.Tensor, order []int, k int) [][]float64 {
	if w.Dims() != 2 {
		panic(fmt.Sprintf("homog: matrix must be 2-D, got %v", w.Shape()))
	}
	m := w.Dim(1)
	blocks := seicore.SplitOrder(order, k)
	means := make([][]float64, k)
	for b, rows := range blocks {
		mean := make([]float64, m)
		for _, r := range rows {
			row := w.Data()[r*m : (r+1)*m]
			for c, v := range row {
				mean[c] += v
			}
		}
		for c := range mean {
			mean[c] /= float64(len(rows))
		}
		means[b] = mean
	}
	return means
}

func l2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// RandomOrder returns a uniformly random permutation of n rows.
func RandomOrder(n int, rng *rand.Rand) []int { return rng.Perm(n) }

// GreedySerpentine is the seeding heuristic: rows sorted by their sum
// are dealt to the K blocks in serpentine (snake) order, which already
// balances the block means well when row magnitudes dominate the
// imbalance. The returned order is the concatenation of the blocks.
func GreedySerpentine(w *tensor.Tensor, k int) []int {
	n := w.Dim(0)
	m := w.Dim(1)
	type rowSum struct {
		idx int
		sum float64
	}
	rows := make([]rowSum, n)
	for r := 0; r < n; r++ {
		s := 0.0
		for _, v := range w.Data()[r*m : (r+1)*m] {
			s += v
		}
		rows[r] = rowSum{idx: r, sum: s}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].sum > rows[j].sum })
	// Deal in snake order: 0..k−1, k−1..0, 0..k−1, ...
	blocks := make([][]int, k)
	for i, rs := range rows {
		round := i / k
		pos := i % k
		b := pos
		if round%2 == 1 {
			b = k - 1 - pos
		}
		blocks[b] = append(blocks[b], rs.idx)
	}
	// Match the balanced split convention: block sizes must equal
	// SplitOrder's (first n%k blocks one larger). Snake dealing already
	// yields sizes within one of each other; rebalance if the shapes
	// disagree.
	want := make([]int, k)
	for b, rows := range seicore.SplitOrder(seicore.NaturalOrder(n), k) {
		want[b] = len(rows)
	}
	rebalance(blocks, want)
	var order []int
	for _, b := range blocks {
		order = append(order, b...)
	}
	return order
}

// rebalance moves trailing rows between blocks until sizes match want.
func rebalance(blocks [][]int, want []int) {
	for {
		from, to := -1, -1
		for b := range blocks {
			if len(blocks[b]) > want[b] {
				from = b
			}
			if len(blocks[b]) < want[b] {
				to = b
			}
		}
		if from == -1 || to == -1 {
			return
		}
		last := blocks[from][len(blocks[from])-1]
		blocks[from] = blocks[from][:len(blocks[from])-1]
		blocks[to] = append(blocks[to], last)
	}
}

// GAConfig controls the genetic optimization.
type GAConfig struct {
	Population  int
	Generations int
	// SwapsPerMutation is the maximum number of random row exchanges a
	// mutation applies (the paper's "randomly exchange the position of
	// two vectors").
	SwapsPerMutation int
	// Elite individuals survive unchanged each generation.
	Elite int
	Seed  int64
}

// DefaultGAConfig converges on the Table-2 matrices within a second.
func DefaultGAConfig() GAConfig {
	return GAConfig{
		Population:       24,
		Generations:      300,
		SwapsPerMutation: 3,
		Elite:            4,
		Seed:             1,
	}
}

// Result is the outcome of a homogenization run.
type Result struct {
	Order []int
	// Distance is Equ. 10 for the returned order; NaturalDistance for
	// the identity order, for the paper's "80% to 90% reduction" claim.
	Distance, NaturalDistance float64
}

// Reduction returns the fractional distance reduction vs natural
// order.
func (r Result) Reduction() float64 {
	if r.NaturalDistance == 0 {
		return 0
	}
	return 1 - r.Distance/r.NaturalDistance
}

// Homogenize minimizes Equ. 10 with a mutation-only genetic algorithm
// seeded by the natural order, random orders, and the greedy
// serpentine heuristic.
func Homogenize(w *tensor.Tensor, k int, cfg GAConfig) (Result, error) {
	if w.Dims() != 2 {
		return Result{}, fmt.Errorf("homog: matrix must be 2-D, got %v", w.Shape())
	}
	n := w.Dim(0)
	if k < 1 || k > n {
		return Result{}, fmt.Errorf("homog: cannot split %d rows into %d blocks", n, k)
	}
	if cfg.Population < 2 || cfg.Generations < 1 || cfg.SwapsPerMutation < 1 {
		return Result{}, fmt.Errorf("homog: invalid GA config %+v", cfg)
	}
	if cfg.Elite < 1 || cfg.Elite >= cfg.Population {
		return Result{}, fmt.Errorf("homog: elite %d outside [1,%d)", cfg.Elite, cfg.Population)
	}
	natural := seicore.NaturalOrder(n)
	naturalDist := Distance(w, natural, k)
	if k == 1 {
		return Result{Order: natural, Distance: 0, NaturalDistance: 0}, nil
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	type indiv struct {
		order []int
		dist  float64
	}
	pop := make([]indiv, 0, cfg.Population)
	add := func(order []int) {
		pop = append(pop, indiv{order: order, dist: Distance(w, order, k)})
	}
	add(natural)
	add(GreedySerpentine(w, k))
	for len(pop) < cfg.Population {
		add(RandomOrder(n, rng))
	}
	byDist := func() {
		sort.Slice(pop, func(i, j int) bool { return pop[i].dist < pop[j].dist })
	}
	byDist()

	for gen := 0; gen < cfg.Generations; gen++ {
		next := make([]indiv, 0, cfg.Population)
		next = append(next, pop[:cfg.Elite]...)
		for len(next) < cfg.Population {
			// Tournament of two.
			a, b := pop[rng.Intn(len(pop))], pop[rng.Intn(len(pop))]
			parent := a
			if b.dist < a.dist {
				parent = b
			}
			child := append([]int(nil), parent.order...)
			swaps := 1 + rng.Intn(cfg.SwapsPerMutation)
			for s := 0; s < swaps; s++ {
				i, j := rng.Intn(n), rng.Intn(n)
				child[i], child[j] = child[j], child[i]
			}
			next = append(next, indiv{order: child, dist: Distance(w, child, k)})
		}
		pop = next
		byDist()
	}
	return Result{
		Order:           pop[0].order,
		Distance:        pop[0].dist,
		NaturalDistance: naturalDist,
	}, nil
}

// ExhaustiveBest finds the optimal block assignment for tiny matrices
// (n ≤ 10) by enumerating all permutations. It exists to validate the
// GA in tests.
func ExhaustiveBest(w *tensor.Tensor, k int) (Result, error) {
	n := w.Dim(0)
	if n > 10 {
		return Result{}, fmt.Errorf("homog: ExhaustiveBest limited to n ≤ 10, got %d", n)
	}
	if k < 1 || k > n {
		return Result{}, fmt.Errorf("homog: cannot split %d rows into %d blocks", n, k)
	}
	natural := seicore.NaturalOrder(n)
	best := Result{
		Order:           natural,
		Distance:        Distance(w, natural, k),
		NaturalDistance: Distance(w, natural, k),
	}
	perm := append([]int(nil), natural...)
	var recurse func(depth int)
	recurse = func(depth int) {
		if depth == n {
			if d := Distance(w, perm, k); d < best.Distance {
				best.Distance = d
				best.Order = append([]int(nil), perm...)
			}
			return
		}
		for i := depth; i < n; i++ {
			perm[depth], perm[i] = perm[i], perm[depth]
			recurse(depth + 1)
			perm[depth], perm[i] = perm[i], perm[depth]
		}
	}
	recurse(0)
	return best, nil
}
