package vecf

// Counter-indexed Gaussian kernel for the packed non-ideal inference
// paths (seicore/fastnoisy.go). Unlike math/rand's ziggurat — whose
// draws depend on hidden generator state and a variable number of
// uniforms per sample — every draw here is a pure function of
// (seed, index): splitmix64's finalizer turns the counter into a
// uniform, and the inverse normal CDF (Φ⁻¹ via math.Erfinv) turns the
// uniform into a Gaussian. Two properties follow by construction:
//
//   - Seed stability: GaussAt(seed, i) never changes, so a stream
//     sliced into blocks of any size — GaussBlock(seed, 0, dst[:k])
//     then GaussBlock(seed, k, ...) — reproduces the scalar sequence
//     exactly, at every block size and worker count (property-tested
//     in gauss_test.go).
//   - Exactly one index per draw: consumers can account RNG
//     consumption as a counter (sei_noise_draws) and two paths that
//     record equal counts have consumed identical stream prefixes.
//
// The inverse-CDF method costs more per draw than the ziggurat but
// draws in any order and in blocks, which is what lets the bit-packed
// noisy path replay the float path's row-ascending draw order without
// simulating it row by row.

import "math"

// gaussGamma is splitmix64's golden-ratio increment.
const gaussGamma = 0x9E3779B97F4A7C15

// mix64 is the splitmix64 output finalizer: a bijective avalanche over
// uint64.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// UniformAt returns draw i of seed's uniform stream: the splitmix64
// output for counter i, mapped to the open interval (0, 1) on the
// centered 2⁻⁵³ grid (never exactly 0 or 1, so Φ⁻¹ stays finite).
func UniformAt(seed, i uint64) float64 {
	x := mix64(seed + (i+1)*gaussGamma)
	return (float64(x>>11) + 0.5) * 0x1p-53
}

// GaussAt returns draw i of seed's standard normal stream:
// Φ⁻¹(UniformAt(seed, i)) = √2·erfinv(2u − 1).
func GaussAt(seed, i uint64) float64 {
	return math.Sqrt2 * math.Erfinv(2*UniformAt(seed, i)-1)
}

// GaussBlock fills dst with draws start, start+1, … of seed's standard
// normal stream. Equivalent to len(dst) GaussAt calls; block size
// never changes the stream.
func GaussBlock(seed, start uint64, dst []float64) {
	for k := range dst {
		dst[k] = GaussAt(seed, start+uint64(k))
	}
}
