// Command seisweep explores the SEI design space and emits CSV:
// structure × crossbar size × device precision × programming
// variation, with energy, area, efficiency, and (optionally)
// simulated classification error per point.
//
// Usage:
//
//	seisweep [flags] > sweep.csv
//
// Examples:
//
//	seisweep -net 2 -sizes 512,256,128 -bits 3,4,5
//	seisweep -net 1 -accuracy -train 2500 -test 300
//
// Observability mirrors seisim: -metrics writes a JSON run report
// whose "skipped" section lists the grid points the mapper rejected,
// -trace dumps the report as text, -progress prints live progress,
// -prom writes Prometheus text format, -pprof serves net/http/pprof.
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync/atomic"

	"sei"
	"sei/internal/arch"
	"sei/internal/cliutil"
	"sei/internal/experiments"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/par"
	"sei/internal/power"
	"sei/internal/rram"
	"sei/internal/seicore"
)

// options is the parsed command line.
type options struct {
	netID    int
	train    int
	test     int
	epochs   int
	seed     int64
	sizes    []int
	bits     []int
	sigmas   []float64
	accuracy bool
	workers  int
	obs      cliutil.ObsFlags
}

// parseFlags parses args (without the program name) into options. It
// returns cliutil.ErrUsage for failures the flag package has already
// reported on stderr, flag.ErrHelp for -h, and a descriptive error —
// including the unified -workers message — otherwise.
func parseFlags(args []string, stderr io.Writer) (*options, error) {
	opt := &options{}
	fs := flag.NewFlagSet("seisweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		netID    = fs.Int("net", 2, "Table-2 network id (1-3)")
		train    = fs.Int("train", 2000, "training samples")
		test     = fs.Int("test", 300, "test samples (accuracy mode)")
		epochs   = fs.Int("epochs", 4, "training epochs")
		seed     = fs.Int64("seed", 1, "random seed")
		sizes    = fs.String("sizes", "512,256,128", "crossbar sizes to sweep")
		bits     = fs.String("bits", "4", "device bits to sweep")
		sigmas   = fs.String("sigmas", "0.02", "programming sigmas to sweep")
		accuracy = fs.Bool("accuracy", false, "also simulate classification error (slower)")
		workers  = fs.Int("workers", 0, cliutil.WorkersUsage)
	)
	opt.obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil, err
		}
		return nil, cliutil.ErrUsage
	}
	if err := cliutil.CheckWorkers(*workers); err != nil {
		return nil, err
	}
	var err error
	if opt.sizes, err = parseInts(*sizes); err != nil {
		return nil, err
	}
	if opt.bits, err = parseInts(*bits); err != nil {
		return nil, err
	}
	if opt.sigmas, err = parseFloats(*sigmas); err != nil {
		return nil, err
	}
	opt.netID, opt.train, opt.test = *netID, *train, *test
	opt.epochs, opt.seed = *epochs, *seed
	opt.accuracy, opt.workers = *accuracy, *workers
	return opt, nil
}

func main() {
	opt, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		if !errors.Is(err, cliutil.ErrUsage) {
			fmt.Fprintf(os.Stderr, "seisweep: %v\n", err)
		}
		os.Exit(2)
	}
	rec := opt.obs.Recorder()
	if err := sweep(opt, rec, os.Stdout, os.Stderr); err != nil {
		fail(err)
	}
	if err := opt.obs.Finish(rec, "sweep", os.Stderr); err != nil {
		fail(err)
	}
}

func sweep(opt *options, rec *obs.Recorder, stdout, stderr io.Writer) error {
	trainSet, testSet := sei.SyntheticSplit(opt.train, opt.test, opt.seed)
	fmt.Fprintf(stderr, "seisweep: training network %d on %d samples\n", opt.netID, trainSet.Len())
	sp := rec.StartSpan("train")
	net := sei.TrainTableNetworkObs(rec, opt.netID, trainSet, opt.epochs, opt.seed)
	sp.AddSamples(int64(trainSet.Len() * opt.epochs))
	sp.End()
	sp = rec.StartSpan("quantize")
	q, err := sei.QuantizeObs(rec, net, trainSet, opt.workers)
	sp.End()
	if err != nil {
		return err
	}
	geoms, err := arch.GeometryOf(q)
	if err != nil {
		return err
	}
	lib := power.DefaultLibrary()

	w := csv.NewWriter(stdout)
	header := []string{"network", "structure", "crossbar", "device_bits", "sigma",
		"energy_uJ", "area_mm2", "gops_per_j", "latency_us", "throughput_kpics"}
	if opt.accuracy {
		header = append(header, "error_pct")
	}
	if err := w.Write(header); err != nil {
		return err
	}

	// Enumerate the sweep grid up front so the expensive accuracy
	// simulations can fan out over independent points while the CSV
	// rows still stream in grid order.
	type sweepPoint struct {
		size, bits int
		sigma      float64
		s          seicore.Structure
	}
	var pts []sweepPoint
	for _, size := range opt.sizes {
		for _, b := range opt.bits {
			for _, sigma := range opt.sigmas {
				for _, s := range []seicore.Structure{seicore.StructDACADC, seicore.StructOneBitADC, seicore.StructSEI} {
					pts = append(pts, sweepPoint{size, b, sigma, s})
				}
			}
		}
	}

	// Serial pass: the cheap mapper/timing columns. Map failures skip
	// the row — logged to stderr in grid order and recorded in the run
	// report's skipped section.
	rows := make([][]string, len(pts))
	for i, pt := range pts {
		cfg := arch.DefaultConfig(pt.s)
		cfg.MaxCrossbar = pt.size
		m, err := arch.Map(geoms, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "seisweep: skipping %v@%d: %v\n", pt.s, pt.size, err)
			rec.Skip(fmt.Sprintf("%v@%d", pt.s, pt.size), err.Error())
			continue
		}
		_, e := m.Energy(lib)
		_, a := m.Area(lib)
		tm, err := m.Timing(arch.DefaultTimingConfig())
		if err != nil {
			return err
		}
		rows[i] = []string{
			strconv.Itoa(opt.netID), pt.s.String(), strconv.Itoa(pt.size),
			strconv.Itoa(pt.bits), fmt.Sprintf("%g", pt.sigma),
			fmt.Sprintf("%.4f", power.MicroJoules(e)),
			fmt.Sprintf("%.5f", power.SquareMM(a)),
			fmt.Sprintf("%.1f", m.Efficiency(lib)),
			fmt.Sprintf("%.2f", tm.LatencyNS/1000),
			fmt.Sprintf("%.1f", tm.ThroughputPicsPerSec/1000),
		}
	}

	// Parallel pass: the functional hardware simulations. Each point is
	// an independent design with its own seeded RNG, so fanning out and
	// filling indexed slots reproduces the serial column exactly.
	if opt.accuracy {
		sp := rec.StartSpan("evaluate")
		live := 0
		for _, row := range rows {
			if row != nil {
				live++
			}
		}
		inner := 1
		if live > 0 {
			if inner = par.Resolve(opt.workers) / live; inner < 1 {
				inner = 1
			}
		}
		simErrs := make([]error, len(pts))
		var done atomic.Int64
		par.ForEachChunkRec(rec, opt.workers, len(pts), 1, func(ch par.Chunk) {
			i := ch.Lo
			if rows[i] == nil {
				return
			}
			pt := pts[i]
			errRate, err := simulateError(rec, net, q, trainSet, testSet, pt.s, pt.size, pt.bits, pt.sigma, opt.seed, inner)
			if err != nil {
				simErrs[i] = err
				return
			}
			rows[i] = append(rows[i], fmt.Sprintf("%.2f", 100*errRate))
			rec.Progress("sweep points", int(done.Add(1)), live)
		})
		sp.AddSamples(int64(live * testSet.Len()))
		sp.End()
		for _, err := range simErrs {
			if err != nil {
				return err
			}
		}
	}

	for _, row := range rows {
		if row != nil {
			if err := w.Write(row); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}

// simulateError runs the functional hardware simulation for one design
// point. workers bounds the evaluation's inner parallelism; the sweep
// fans out over points and hands each a share of the budget.
func simulateError(rec *obs.Recorder, net *sei.Network, q *sei.QuantizedNet, trainSet, testSet *sei.Dataset,
	s seicore.Structure, size, bits int, sigma float64, seed int64, workers int) (float64, error) {
	model := rram.IdealDeviceModel(bits)
	model.ProgramSigma = sigma
	rng := rand.New(rand.NewSource(seed))
	switch s {
	case seicore.StructDACADC:
		d, err := seicore.BuildDACADC(net, []int{1, 28, 28}, model, rng)
		if err != nil {
			return 0, err
		}
		d.Instrument(rec)
		return nn.ClassifierErrorRateObs(rec, d, testSet, workers), nil
	case seicore.StructOneBitADC:
		d, err := seicore.BuildOneBitADC(q, model, rng)
		if err != nil {
			return 0, err
		}
		d.Instrument(rec)
		return nn.ClassifierErrorRateObs(rec, d, testSet, workers), nil
	case seicore.StructSEI:
		cfg := seicore.DefaultSEIBuildConfig()
		cfg.Layer.Model = model
		cfg.Layer.MaxCrossbar = size
		cfg.Orders = experiments.HomogenizedOrdersFor(q, size, seed)
		cfg.Workers = workers
		cfg.Obs = rec
		d, err := seicore.BuildSEI(q, trainSet, cfg, rng)
		if err != nil {
			return 0, err
		}
		return nn.ClassifierErrorRateObs(rec, d, testSet, workers), nil
	}
	return 0, fmt.Errorf("unknown structure %v", s)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad int %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "seisweep: %v\n", err)
	os.Exit(1)
}
