package sei

// Parallel-scaling benchmarks for the deterministic evaluation engine
// (internal/par). Every benchmark passes Workers=0, which resolves to
// runtime.GOMAXPROCS(0), so `go test -bench=Parallel -cpu 1,2,4`
// measures the same workload at 1, 2 and 4 workers — the results are
// bit-identical across the row, only wall-clock changes.

import (
	"math/rand"
	"testing"

	"sei/internal/nn"
	"sei/internal/quant"
	"sei/internal/seicore"
)

// BenchmarkParallelFloatEval measures full-test-set float inference.
func BenchmarkParallelFloatEval(b *testing.B) {
	c := benchContext(b)
	net := c.Network(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.ErrorRateWorkers(net, c.Test, 0)
	}
}

// BenchmarkParallelQuantEval measures full-test-set binarized inference.
func BenchmarkParallelQuantEval(b *testing.B) {
	c := benchContext(b)
	q := c.QuantizedCalibrated(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.ErrorRateWorkers(c.Test, 0)
	}
}

// BenchmarkParallelSEIEval measures full-test-set SEI hardware
// simulation — the dominant cost of Tables 4 and 5.
func BenchmarkParallelSEIEval(b *testing.B) {
	c := benchContext(b)
	q := c.QuantizedCalibrated(2)
	cfg := seicore.DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	d, err := seicore.BuildSEI(q, nil, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.ClassifierErrorRateWorkers(d, c.Test, 0)
	}
}

// BenchmarkParallelThresholdSearch measures the Algorithm-1 greedy
// threshold search — the calibration hot path.
func BenchmarkParallelThresholdSearch(b *testing.B) {
	c := benchContext(b)
	net := c.Network(2)
	cfg := quant.DefaultSearchConfig()
	cfg.Samples = 200
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := quant.QuantizeNetwork(net, c.Train, []int{1, 28, 28}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
