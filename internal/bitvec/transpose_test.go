package bitvec

import (
	"math/rand"
	"testing"
)

// naiveTranspose64 is the per-bit reference: bit c of row r moves to
// bit r of row c.
func naiveTranspose64(src []uint64) []uint64 {
	out := make([]uint64, 64)
	for r := 0; r < 64; r++ {
		for c := 0; c < 64; c++ {
			if src[r]>>uint(c)&1 != 0 {
				out[c] |= 1 << uint(r)
			}
		}
	}
	return out
}

func randWords(rng *rand.Rand, n int) []uint64 {
	w := make([]uint64, n)
	for i := range w {
		w[i] = rng.Uint64()
	}
	return w
}

func TestTranspose64MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][]uint64{
		make([]uint64, 64), // all zero
	}
	ones := make([]uint64, 64)
	for i := range ones {
		ones[i] = ^uint64(0)
	}
	cases = append(cases, ones)
	diag := make([]uint64, 64)
	for i := range diag {
		diag[i] = 1 << uint(i)
	}
	cases = append(cases, diag)
	single := make([]uint64, 64)
	single[17] = 1 << 42
	cases = append(cases, single)
	for i := 0; i < 50; i++ {
		cases = append(cases, randWords(rng, 64))
	}
	for ci, src := range cases {
		want := naiveTranspose64(src)
		dst := make([]uint64, 64)
		Transpose64(dst, src)
		for r := range want {
			if dst[r] != want[r] {
				t.Fatalf("case %d: Transpose64 row %d = %016x, want %016x", ci, r, dst[r], want[r])
			}
		}
		// Involution: transposing twice restores the input.
		back := make([]uint64, 64)
		Transpose64(back, dst)
		for r := range src {
			if back[r] != src[r] {
				t.Fatalf("case %d: double transpose row %d = %016x, want %016x", ci, r, back[r], src[r])
			}
		}
		// In-place: same slice as source and destination.
		inPlace := append([]uint64(nil), src...)
		Transpose64(inPlace, inPlace)
		for r := range want {
			if inPlace[r] != want[r] {
				t.Fatalf("case %d: in-place row %d = %016x, want %016x", ci, r, inPlace[r], want[r])
			}
		}
	}
}

func TestTranspose64ShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Transpose64 with short slices did not panic")
		}
	}()
	Transpose64(make([]uint64, 63), make([]uint64, 64))
}

// randomVec returns a vector of n bits with each bit set with
// probability 1/2.
func randomVec(rng *rand.Rand, n int) *Vec {
	v := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

// Ragged widths straddle every word-boundary case: empty, sub-word,
// exact words, one bit over, and multi-word remainders.
var raggedWidths = []int{0, 1, 7, 63, 64, 65, 127, 128, 130, 200, 449}

func TestSliceLanesMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range raggedWidths {
		for _, lanes := range []int{1, 2, 3, 63, 64} {
			srcs := make([]*Vec, lanes)
			for L := range srcs {
				srcs[L] = randomVec(rng, n)
			}
			dst := make([]uint64, n)
			SliceLanes(dst, srcs)
			for i := 0; i < n; i++ {
				var want uint64
				for L, s := range srcs {
					if s.Get(i) {
						want |= 1 << uint(L)
					}
				}
				if dst[i] != want {
					t.Fatalf("n=%d lanes=%d: sliced word %d = %016x, want %016x", n, lanes, i, dst[i], want)
				}
			}
		}
	}
}

func TestUnsliceLanesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range raggedWidths {
		for _, lanes := range []int{1, 2, 63, 64} {
			srcs := make([]*Vec, lanes)
			for L := range srcs {
				srcs[L] = randomVec(rng, n)
			}
			sliced := make([]uint64, n)
			SliceLanes(sliced, srcs)
			dsts := make([]*Vec, lanes)
			for L := range dsts {
				dsts[L] = New(0) // UnsliceLanes must resize
			}
			UnsliceLanes(dsts, sliced, n)
			for L := range dsts {
				if dsts[L].Len() != n {
					t.Fatalf("n=%d lanes=%d: lane %d length %d", n, lanes, L, dsts[L].Len())
				}
				for i := 0; i < n; i++ {
					if dsts[L].Get(i) != srcs[L].Get(i) {
						t.Fatalf("n=%d lanes=%d: lane %d bit %d diverges after round trip", n, lanes, L, i)
					}
				}
				// Bits past Len in the last word must stay zero, or
				// popcounts downstream would drift.
				if w := dsts[L].Words(); len(w) > 0 {
					if tail := uint(n) & 63; tail != 0 && w[len(w)-1]>>tail != 0 {
						t.Fatalf("n=%d lanes=%d: lane %d has stray bits past Len", n, lanes, L)
					}
				}
			}
		}
	}
}

// UnsliceLanes must drop lane bits beyond len(dsts) and SliceLanes
// must leave high lanes zero when fewer than 64 sources are given.
func TestLaneSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 130
	full := make([]*Vec, 64)
	for L := range full {
		full[L] = randomVec(rng, n)
	}
	sliced := make([]uint64, n)
	SliceLanes(sliced, full)

	few := make([]*Vec, 5)
	for L := range few {
		few[L] = New(0)
	}
	UnsliceLanes(few, sliced, n)
	for L := range few {
		for i := 0; i < n; i++ {
			if few[L].Get(i) != full[L].Get(i) {
				t.Fatalf("lane %d bit %d wrong with 5 destinations", L, i)
			}
		}
	}

	partial := make([]uint64, n)
	SliceLanes(partial, full[:3])
	for i := 0; i < n; i++ {
		if partial[i]>>3 != 0 {
			t.Fatalf("word %d has lanes ≥ 3 set: %016x", i, partial[i])
		}
	}
}

func BenchmarkTranspose64(b *testing.B) {
	src := randWords(rand.New(rand.NewSource(5)), 64)
	dst := make([]uint64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transpose64(dst, src)
	}
}
