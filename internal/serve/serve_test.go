package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/quant"
	"sei/internal/seicore"
	"sei/internal/tensor"
)

// fastFixture is a quickly trained float network plus data — the
// classifier for batching/robustness tests where building real RRAM
// hardware would only add seconds, not coverage.
type fastFixture struct {
	net  *nn.Network
	data *mnist.Dataset
}

var (
	fastOnce sync.Once
	fastFix  fastFixture
)

func getFastFixture(t *testing.T) fastFixture {
	t.Helper()
	fastOnce.Do(func() {
		data := mnist.Synthetic(300, 7)
		net := nn.NewTableNetwork(1, 3)
		cfg := nn.DefaultTrainConfig()
		cfg.Epochs = 1
		nn.Train(net, data, cfg)
		fastFix = fastFixture{net: net, data: data}
	})
	return fastFix
}

// panicClassifier stands in for a design whose internals blow up on
// structurally valid input.
type panicClassifier struct{}

func (*panicClassifier) Predict(*tensor.Tensor) int { panic("injected evaluator failure") }

// gatedClassifier blocks every Predict until the gate closes, letting
// tests hold the batcher loop in a known state without sleeps. When
// entered is non-nil it receives one signal per Predict call, marking
// the moment the loop is inside a flush.
type gatedClassifier struct {
	gate    chan struct{}
	entered chan struct{}
}

func (g *gatedClassifier) Predict(*tensor.Tensor) int {
	if g.entered != nil {
		select {
		case g.entered <- struct{}{}:
		default:
		}
	}
	<-g.gate
	return 0
}

func newTestServer(t *testing.T, reg *Registry, bcfg BatcherConfig, opts Options) (*httptest.Server, *Pool) {
	t.Helper()
	p, err := NewPool(bcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	opts.Registry = reg
	opts.Pool = p
	ts := httptest.NewServer(NewHandler(opts))
	t.Cleanup(ts.Close)
	return ts, p
}

// batcherFor resolves a design's batcher from the pool, failing the
// test on error.
func batcherFor(t *testing.T, p *Pool, name string) *Batcher {
	t.Helper()
	b, err := p.For(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// doPredict is goroutine-safe (no *testing.T): it returns transport
// and decode errors instead of failing the test directly.
func doPredict(url, design string, imgs []*tensor.Tensor) (int, predictResponse, error) {
	req := predictRequest{Design: design}
	for _, img := range imgs {
		req.Images = append(req.Images, img.Data())
	}
	body, err := json.Marshal(req)
	if err != nil {
		return 0, predictResponse{}, err
	}
	resp, err := http.Post(url+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, predictResponse{}, err
	}
	defer resp.Body.Close()
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return resp.StatusCode, predictResponse{}, fmt.Errorf("decoding response (status %d): %w", resp.StatusCode, err)
	}
	return resp.StatusCode, pr, nil
}

func postPredict(t *testing.T, url, design string, imgs []*tensor.Tensor) (int, predictResponse) {
	t.Helper()
	status, pr, err := doPredict(url, design, imgs)
	if err != nil {
		t.Fatal(err)
	}
	return status, pr
}

func TestServeConcurrentPredictsBitIdenticalToOffline(t *testing.T) {
	f := getFastFixture(t)
	reg := NewRegistry("", 0)
	reg.Register("demo", f.net)
	rec := obs.New()
	ts, _ := newTestServer(t, reg,
		BatcherConfig{MaxBatch: 16, MaxDelay: 5 * time.Millisecond, Workers: 4, Obs: rec},
		Options{Obs: rec})

	// The offline truth: the engine's batch path, which is itself
	// bit-identical to EvaluateDesign (see nn and facade tests).
	offline := nn.PredictBatch(f.net, f.data.Images, 1)

	// Hammer the server from many goroutines with differently sized
	// slices of the dataset so the batcher coalesces across requests.
	const clients = 8
	got := make([]int, f.data.Len())
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		lo := c * f.data.Len() / clients
		hi := (c + 1) * f.data.Len() / clients
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo; i < hi; i += 7 {
				end := i + 7
				if end > hi {
					end = hi
				}
				status, pr, err := doPredict(ts.URL, "demo", f.data.Images[i:end])
				if err != nil {
					errs <- err
					return
				}
				if status != http.StatusOK {
					errs <- fmt.Errorf("images [%d,%d): status %d", i, end, status)
					return
				}
				for k, r := range pr.Results {
					if r.Error != "" {
						errs <- fmt.Errorf("image %d: %s", i+k, r.Error)
						return
					}
					got[i+k] = r.Label
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != offline[i].Label {
			t.Fatalf("image %d: served label %d, offline %d", i, got[i], offline[i].Label)
		}
	}
	if rec.CounterValues()[MetricPredicts] != int64(f.data.Len()) {
		t.Fatalf("serve_predicts = %d, want %d", rec.CounterValues()[MetricPredicts], f.data.Len())
	}
}

func TestServeDesignSnapshotFromDisk(t *testing.T) {
	train, test := mnist.SyntheticSplit(500, 80, 5)
	net := nn.NewTableNetwork(1, 3)
	tcfg := nn.DefaultTrainConfig()
	tcfg.Epochs = 2
	nn.Train(net, train, tcfg)
	qcfg := quant.DefaultSearchConfig()
	qcfg.Samples = 200
	q, _, err := quant.QuantizeNetwork(net, train, []int{1, 28, 28}, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := seicore.DefaultSEIBuildConfig()
	bcfg.DynamicThreshold = false
	design, err := seicore.BuildSEI(q, nil, bcfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := design.SaveFile(filepath.Join(dir, "net1"+DesignExt)); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry(dir, 1)
	ts, _ := newTestServer(t, reg, BatcherConfig{Workers: 2}, Options{})
	status, pr := postPredict(t, ts.URL, "net1", test.Images)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	for i, r := range pr.Results {
		if r.Error != "" {
			t.Fatalf("image %d: %s", i, r.Error)
		}
		if want := design.Predict(test.Images[i]); r.Label != want {
			t.Fatalf("image %d: served %d, offline design predicts %d", i, r.Label, want)
		}
	}
	names := reg.Names()
	if len(names) != 1 || names[0] != "net1" {
		t.Fatalf("registry names = %v, want [net1]", names)
	}
}

func TestServeMalformedRequests(t *testing.T) {
	f := getFastFixture(t)
	reg := NewRegistry("", 0)
	reg.Register("demo", f.net)
	ts, _ := newTestServer(t, reg, BatcherConfig{Workers: 1}, Options{})

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	good := f.data.Images[0].Data()
	goodJSON, _ := json.Marshal(good)
	nan := append([]float64(nil), good...)
	nan[12] = math.NaN()
	nanImg := tensor.FromSlice(nan, 1, mnist.Side, mnist.Side)

	if got := post(`{not json`); got != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d, want 400", got)
	}
	if got := post(`{"images":[[0.5]]}`); got != http.StatusBadRequest {
		t.Fatalf("missing design: status %d, want 400", got)
	}
	if got := post(`{"design":"demo","images":[]}`); got != http.StatusBadRequest {
		t.Fatalf("no images: status %d, want 400", got)
	}
	if got := post(`{"design":"demo","images":[[0.1,0.2,0.3]]}`); got != http.StatusBadRequest {
		t.Fatalf("short image: status %d, want 400", got)
	}
	if got := post(`{"design":"nope","images":[` + string(goodJSON) + `]}`); got != http.StatusNotFound {
		t.Fatalf("unknown design: status %d, want 404", got)
	}
	if got := post(`{"design":"../etc/passwd","images":[` + string(goodJSON) + `]}`); got != http.StatusNotFound {
		t.Fatalf("path-traversal design: status %d, want 404", got)
	}
	// NaN pixels survive JSON decoding only as an ErrBadInput from the
	// engine's validator — NaN is not valid JSON, so build the request
	// through the tensor round trip and expect the decode-level 400.
	if status, _ := postPredict(t, ts.URL, "demo", []*tensor.Tensor{f.data.Images[1]}); status != http.StatusOK {
		t.Fatalf("control predict: status %d", status)
	}
	if _, err := json.Marshal(predictRequest{Design: "demo", Images: [][]float64{nanImg.Data()}}); err == nil {
		t.Fatal("expected NaN to be unmarshalable JSON (decode-level rejection)")
	}
	// A mixed batch: one good image, one short image — rejected whole
	// at decode time, before anything reaches the batcher.
	if got := post(`{"design":"demo","images":[` + string(goodJSON) + `,[0.1]]}`); got != http.StatusBadRequest {
		t.Fatalf("mixed batch with short image: status %d, want 400", got)
	}
}

func TestServeInjectedPanicIsContained(t *testing.T) {
	f := getFastFixture(t)
	reg := NewRegistry("", 0)
	reg.Register("demo", f.net)
	reg.Register("boom", &panicClassifier{})
	rec := obs.New()
	ts, _ := newTestServer(t, reg, BatcherConfig{Workers: 1, Obs: rec}, Options{Obs: rec})

	status, pr := postPredict(t, ts.URL, "boom", []*tensor.Tensor{f.data.Images[0]})
	if status != http.StatusBadRequest {
		t.Fatalf("panicking design: status %d, want 400", status)
	}
	if len(pr.Results) != 1 || pr.Results[0].Error == "" || pr.Results[0].Label != -1 {
		t.Fatalf("panicking design results: %+v", pr.Results)
	}
	if got := rec.CounterValues()[nn.MetricPredictPanics]; got != 1 {
		t.Fatalf("predict_panics = %d, want 1", got)
	}
	// The process (and the batcher loop) survived: a normal predict
	// still succeeds.
	status, pr = postPredict(t, ts.URL, "demo", []*tensor.Tensor{f.data.Images[0]})
	if status != http.StatusOK || pr.Results[0].Error != "" {
		t.Fatalf("predict after contained panic: status %d, results %+v", status, pr.Results)
	}
}

func TestServeBackpressureAndDrain(t *testing.T) {
	f := getFastFixture(t)
	gate := &gatedClassifier{gate: make(chan struct{})}
	reg := NewRegistry("", 0)
	reg.Register("slow", gate)
	rec := obs.New()
	ts, p := newTestServer(t, reg,
		BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond, QueueCap: 2, Workers: 1, Obs: rec},
		Options{Obs: rec})
	b := batcherFor(t, p, "slow")

	// Occupy the loop with a gated predict, then fill the queue.
	results := make(chan error, 3)
	submit := func() {
		_, err := b.Predict(context.Background(), gate, []*tensor.Tensor{f.data.Images[0]})
		results <- err
	}
	go submit()
	waitFor(t, func() bool { return b.QueueDepth() == 0 }) // loop took it
	go submit()
	go submit()
	waitFor(t, func() bool { return b.QueueDepth() == 2 })

	// Queue full: direct submits and HTTP predicts are rejected, not
	// buffered.
	if _, err := b.Predict(context.Background(), gate, []*tensor.Tensor{f.data.Images[0]}); err != ErrQueueFull {
		t.Fatalf("overfull submit error = %v, want ErrQueueFull", err)
	}
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"design":"slow","images":[`+pixelJSON(f.data.Images[0])+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overfull HTTP predict: status %d, want 429", resp.StatusCode)
	}
	if rec.CounterValues()[MetricQueueFull] < 2 {
		t.Fatalf("serve_queue_full = %d, want >= 2", rec.CounterValues()[MetricQueueFull])
	}

	// Release the gate and drain: the three queued predicts complete.
	close(gate.gate)
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued predict %d failed: %v", i, err)
		}
	}
	p.Close()
	if _, err := b.Predict(context.Background(), gate, []*tensor.Tensor{f.data.Images[0]}); err != ErrDraining {
		t.Fatalf("post-drain submit error = %v, want ErrDraining", err)
	}
	if _, err := p.For("other"); err != ErrDraining {
		t.Fatalf("post-drain pool lookup error = %v, want ErrDraining", err)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d, want 503", hresp.StatusCode)
	}
}

func TestServeRequestTimeout(t *testing.T) {
	f := getFastFixture(t)
	gate := &gatedClassifier{gate: make(chan struct{})}
	defer close(gate.gate)
	reg := NewRegistry("", 0)
	reg.Register("slow", gate)
	ts, _ := newTestServer(t, reg,
		BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond, Workers: 1},
		Options{Timeout: 30 * time.Millisecond})

	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"design":"slow","images":[`+pixelJSON(f.data.Images[0])+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out predict: status %d, want 504", resp.StatusCode)
	}
}

func TestServeCoalescesQueuedPredicts(t *testing.T) {
	f := getFastFixture(t)
	gate := &gatedClassifier{gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	rec := obs.New()
	b, err := NewBatcher(BatcherConfig{MaxBatch: 16, MaxDelay: 300 * time.Millisecond, QueueCap: 16, Workers: 1, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	// Hold the loop inside the first flush, queue five more predicts,
	// then release: the five must flush together as one batch.
	done := make(chan error, 6)
	go func() {
		_, err := b.Predict(context.Background(), gate, []*tensor.Tensor{f.data.Images[0]})
		done <- err
	}()
	<-gate.entered // the loop is now blocked in flush, past its gather
	for i := 1; i <= 5; i++ {
		img := f.data.Images[i]
		go func() {
			_, err := b.Predict(context.Background(), gate, []*tensor.Tensor{img})
			done <- err
		}()
	}
	waitFor(t, func() bool { return b.QueueDepth() == 5 })
	close(gate.gate)
	for i := 0; i < 6; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	if got := rec.CounterValues()[MetricBatches]; got != 2 {
		t.Fatalf("serve_batches = %d, want 2 (1 + coalesced 5)", got)
	}
}

// TestServeSlicedBurstCoalesces pins the serving-side tentpole payoff:
// a 64-request burst against an ideal-analog design coalesces into one
// flush, that flush runs as one bit-sliced group, and every label is
// bit-identical to 64 sequential offline predicts.
func TestServeSlicedBurstCoalesces(t *testing.T) {
	f := getFastFixture(t)
	qcfg := quant.DefaultSearchConfig()
	qcfg.Samples = 120
	q, _, err := quant.QuantizeNetwork(f.net, f.data, []int{1, 28, 28}, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := seicore.DefaultSEIBuildConfig()
	bcfg.DynamicThreshold = false
	design, err := seicore.BuildSEI(q, nil, bcfg, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	if !design.SlicedBatchEligible() {
		t.Fatal("ideal-analog design is not sliced-eligible")
	}

	rec := obs.New()
	b, err := NewBatcher(BatcherConfig{MaxBatch: 64, MaxDelay: 20 * time.Millisecond, QueueCap: 128, Workers: 2, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Hold the loop inside a gated flush, queue the full burst, then
	// release: the 64 jobs must gather into exactly one batch.
	gate := &gatedClassifier{gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	gateDone := make(chan error, 1)
	go func() {
		_, err := b.Predict(context.Background(), gate, []*tensor.Tensor{f.data.Images[0]})
		gateDone <- err
	}()
	<-gate.entered // the loop is now blocked in flush, past its gather

	const burst = 64
	got := make([]int, burst)
	errs := make(chan error, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := b.Predict(context.Background(), design, []*tensor.Tensor{f.data.Images[i]})
			if err == nil && res[0].Err != nil {
				err = res[0].Err
			}
			if err != nil {
				errs <- fmt.Errorf("request %d: %w", i, err)
				return
			}
			got[i] = res[0].Label
		}(i)
	}
	waitFor(t, func() bool { return b.QueueDepth() == burst })
	close(gate.gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := <-gateDone; err != nil {
		t.Fatal(err)
	}

	for i := 0; i < burst; i++ {
		if want := design.Predict(f.data.Images[i]); got[i] != want {
			t.Fatalf("image %d: served label %d, sequential offline predict %d", i, got[i], want)
		}
	}
	counters := rec.CounterValues()
	if counters[MetricBatches] != 2 {
		t.Errorf("serve_batches = %d, want 2 (gate + coalesced burst)", counters[MetricBatches])
	}
	if counters[nn.MetricSlicedGroups] != 1 {
		t.Errorf("%s = %d, want 1 (one packed pass for the whole burst)", nn.MetricSlicedGroups, counters[nn.MetricSlicedGroups])
	}
	if counters[nn.MetricSlicedFallbacks] != 0 {
		t.Errorf("%s = %d, want 0", nn.MetricSlicedFallbacks, counters[nn.MetricSlicedFallbacks])
	}
	if counters[MetricPredicts] != burst+1 {
		t.Errorf("serve_predicts = %d, want %d", counters[MetricPredicts], burst+1)
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	f := getFastFixture(t)
	reg := NewRegistry("", 0)
	reg.Register("demo", f.net)
	rec := obs.New()
	ts, _ := newTestServer(t, reg, BatcherConfig{Workers: 1, Obs: rec}, Options{Obs: rec})
	if status, _ := postPredict(t, ts.URL, "demo", f.data.Images[:3]); status != http.StatusOK {
		t.Fatalf("predict status %d", status)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	body := buf.String()
	for _, metric := range []string{MetricPredicts, MetricBatches, nn.MetricEvalImages} {
		if !strings.Contains(body, metric) {
			t.Fatalf("/metrics missing %q:\n%s", metric, body)
		}
	}
	// Per-request latency rides /metrics as a standard cumulative
	// histogram, and the queue-depth gauge is sampled at scrape time.
	for _, line := range []string{
		"sei_" + MetricRequestSeconds + `_bucket{le="+Inf"} 1`,
		"sei_" + MetricRequestSeconds + "_count 1",
		"# TYPE sei_" + MetricQueueDepth + " gauge",
	} {
		if !strings.Contains(body, line) {
			t.Fatalf("/metrics missing %q:\n%s", line, body)
		}
	}
	hist := rec.Report("").Histograms[MetricRequestSeconds]
	if hist.Count != 1 {
		t.Fatalf("request latency histogram count = %d, want 1", hist.Count)
	}
	if p99 := hist.Quantile(0.99); p99 <= 0 {
		t.Errorf("p99 = %g, want > 0", p99)
	}
}

func TestRegistryRejectsUnsafeNames(t *testing.T) {
	reg := NewRegistry(t.TempDir(), 0)
	for _, name := range []string{"", ".", "..", "../x", "a/b", `a\b`, ".hidden", "a b"} {
		if _, err := reg.Get(name); err == nil || !strings.Contains(err.Error(), "unknown design") {
			t.Fatalf("name %q: err = %v, want unknown-design", name, err)
		}
	}
}

func pixelJSON(img *tensor.Tensor) string {
	b, _ := json.Marshal(img.Data())
	return string(b)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
