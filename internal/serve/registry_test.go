package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/tensor"
)

// constClassifier answers every image with a fixed label — the
// cheapest way to tell generations apart.
type constClassifier int

func (c constClassifier) Predict(*tensor.Tensor) int { return int(c) }

// touchDesignFile creates an empty snapshot file so the registry's
// stat check passes; tests pair it with a swapped loadFn, so the file
// contents never matter.
func touchDesignFile(t *testing.T, dir, name string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name+DesignExt), nil, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryColdLoadDoesNotSerializeOtherGets is the regression test
// for the registry lock held across gob decode: one slow cold load
// must block neither cache hits nor another design's cold load.
func TestRegistryColdLoadDoesNotSerializeOtherGets(t *testing.T) {
	dir := t.TempDir()
	touchDesignFile(t, dir, "slowload")
	touchDesignFile(t, dir, "otherdisk")
	reg := NewRegistry(dir, 0)
	gate := make(chan struct{})
	reg.loadFn = func(path string, _ int64) (nn.Classifier, error) {
		if filepath.Base(path) == "slowload"+DesignExt {
			<-gate // a gob decode that takes forever
		}
		return constClassifier(1), nil
	}
	reg.Register("cached", constClassifier(2))

	slowDone := make(chan error, 1)
	go func() {
		_, err := reg.Get("slowload")
		slowDone <- err
	}()
	// While the slow load is stuck, a cache hit and an unrelated cold
	// load must both complete promptly.
	fast := make(chan error, 2)
	go func() {
		_, err := reg.Get("cached")
		fast <- err
	}()
	go func() {
		_, err := reg.Get("otherdisk")
		fast <- err
	}()
	for i := 0; i < 2; i++ {
		select {
		case err := <-fast:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("an unrelated Get serialized behind a slow cold load")
		}
	}
	select {
	case err := <-slowDone:
		t.Fatalf("slow load finished early: %v", err)
	default:
	}
	close(gate)
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
}

// TestRegistryColdLoadSingleflight pins that concurrent Gets of one
// uncached design share a single decode.
func TestRegistryColdLoadSingleflight(t *testing.T) {
	dir := t.TempDir()
	touchDesignFile(t, dir, "shared")
	reg := NewRegistry(dir, 0)
	var loads atomic.Int64
	gate := make(chan struct{})
	reg.loadFn = func(string, int64) (nn.Classifier, error) {
		loads.Add(1)
		<-gate
		return constClassifier(5), nil
	}
	const callers = 8
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := reg.Get("shared")
			if err == nil && c.Predict(nil) != 5 {
				err = fmt.Errorf("wrong classifier")
			}
			errs <- err
		}()
	}
	waitFor(t, func() bool { return loads.Load() == 1 })
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := loads.Load(); got != 1 {
		t.Fatalf("loadFn called %d times for 8 concurrent Gets, want 1", got)
	}
	// Cached now: another Get must not load again.
	if _, err := reg.Get("shared"); err != nil {
		t.Fatal(err)
	}
	if got := loads.Load(); got != 1 {
		t.Fatalf("cache hit reloaded: %d loads", got)
	}
}

// TestPublishGenerationsAndCanaryRouting pins the generation
// lifecycle: full-swap publishes, pinned resolution, the exact
// deterministic canary split, promote and rollback.
func TestPublishGenerationsAndCanaryRouting(t *testing.T) {
	reg := NewRegistry("", 0)
	if gen := reg.Publish("d", constClassifier(3), 1); gen != 1 {
		t.Fatalf("first publish generation = %d, want 1", gen)
	}
	if gen := reg.Publish("d", constClassifier(7), 0.25); gen != 2 {
		t.Fatalf("canary publish generation = %d, want 2", gen)
	}
	d := reg.Lookup("d")
	if got := d.Generations(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("live generations = %v, want [1 2]", got)
	}
	// Pinned resolution addresses each generation exactly.
	for pin, want := range map[int]int{1: 3, 2: 7} {
		c, gen, err := reg.Resolve("d", pin)
		if err != nil || gen != pin || c.Predict(nil) != want {
			t.Fatalf("pin %d: label %v gen %d err %v, want label %d gen %d", pin, c, gen, err, want, pin)
		}
	}
	if _, _, err := reg.Resolve("d", 9); !errors.Is(err, ErrUnknownGeneration) {
		t.Fatalf("pin 9 err = %v, want ErrUnknownGeneration", err)
	}
	// The 0.25 split is deterministic and exact: every 4th unpinned
	// request routes to the new generation.
	newGen := 0
	for i := 0; i < 400; i++ {
		_, gen, err := reg.Resolve("d", 0)
		if err != nil {
			t.Fatal(err)
		}
		if gen == 2 {
			newGen++
		}
	}
	if newGen != 100 {
		t.Fatalf("canary 0.25 routed %d/400 to the new generation, want exactly 100", newGen)
	}
	// Promote: only the new generation stays live.
	if err := reg.SetCanary("d", 1); err != nil {
		t.Fatal(err)
	}
	if got := reg.Lookup("d").Generations(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("after promote generations = %v, want [2]", got)
	}
	if _, gen, _ := reg.Resolve("d", 0); gen != 2 {
		t.Fatalf("after promote unpinned gen = %d, want 2", gen)
	}
	if err := reg.SetCanary("d", 0.5); !errors.Is(err, ErrNoCanary) {
		t.Fatalf("reweight without canary err = %v, want ErrNoCanary", err)
	}
	// Rollback path: publish a canary then roll it back.
	reg.Publish("d", constClassifier(9), 0.5)
	if err := reg.SetCanary("d", 0); err != nil {
		t.Fatal(err)
	}
	if got := reg.Lookup("d").Generations(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("after rollback generations = %v, want [2]", got)
	}
	c, _, _ := reg.Resolve("d", 0)
	if c.Predict(nil) != 7 {
		t.Fatalf("after rollback label = %d, want 7 (old generation)", c.Predict(nil))
	}
	if !reg.Unregister("d") {
		t.Fatal("unregister reported absent design")
	}
	if _, err := reg.Get("d"); !errors.Is(err, ErrUnknownDesign) {
		t.Fatalf("post-unregister err = %v, want ErrUnknownDesign", err)
	}
}

// TestGenerationSwapAtomicUnderConcurrentStream drives a predict
// stream through the HTTP surface while the design swaps generations:
// every response must be wholly one generation's labels — status 200,
// generation ∈ {1,2}, labels matching that generation — with zero
// requests dropped by the swap itself.
func TestGenerationSwapAtomicUnderConcurrentStream(t *testing.T) {
	f := getFastFixture(t)
	reg := NewRegistry("", 0)
	reg.Register("swap", constClassifier(3))
	rec := obs.New()
	ts, _ := newTestServer(t, reg,
		BatcherConfig{MaxBatch: 8, MaxDelay: time.Millisecond, QueueCap: 128, Workers: 2, Obs: rec},
		Options{Obs: rec})

	const clients, perClient = 4, 30
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	sawOld := new(atomic.Int64)
	sawNew := new(atomic.Int64)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				status, pr, err := doPredict(ts.URL, "swap", f.data.Images[:4])
				if err != nil {
					errs <- err
					return
				}
				if status != http.StatusOK {
					errs <- fmt.Errorf("request dropped during swap: status %d", status)
					return
				}
				want := -1
				switch pr.Generation {
				case 1:
					want = 3
					sawOld.Add(1)
				case 2:
					want = 7
					sawNew.Add(1)
				default:
					errs <- fmt.Errorf("generation %d, want 1 or 2", pr.Generation)
					return
				}
				for k, r := range pr.Results {
					if r.Label != want {
						errs <- fmt.Errorf("torn response: generation %d image %d label %d, want %d",
							pr.Generation, k, r.Label, want)
						return
					}
				}
			}
		}()
	}
	// Swap mid-stream.
	time.Sleep(10 * time.Millisecond)
	reg.Register("swap", constClassifier(7))
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if sawNew.Load() == 0 {
		t.Fatal("no request observed the new generation after the swap")
	}
}

// TestInFlightBatchDrainsOnOldGeneration pins that a batch already
// flushing against generation 1 completes on generation 1's
// classifier even though generation 2 replaced it mid-flight.
func TestInFlightBatchDrainsOnOldGeneration(t *testing.T) {
	f := getFastFixture(t)
	reg := NewRegistry("", 0)
	gate := &gatedClassifier{gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	reg.Register("d", gate)
	rec := obs.New()
	b, err := NewBatcher(BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond, Workers: 1, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	c1, gen1, err := reg.Resolve("d", 0)
	if err != nil || gen1 != 1 {
		t.Fatalf("resolve: gen %d err %v", gen1, err)
	}
	done := make(chan []nn.PredictResult, 1)
	go func() {
		res, err := b.Predict(context.Background(), c1, []*tensor.Tensor{f.data.Images[0]})
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	<-gate.entered // flush in progress on generation 1

	// Generation 2 lands while the old batch is mid-flush.
	reg.Register("d", constClassifier(9))
	c2, gen2, err := reg.Resolve("d", 0)
	if err != nil || gen2 != 2 || c2.Predict(nil) != 9 {
		t.Fatalf("post-swap resolve: gen %d err %v", gen2, err)
	}
	close(gate.gate)
	res := <-done
	if len(res) != 1 || res[0].Err != nil || res[0].Label != 0 {
		t.Fatalf("in-flight batch result %+v, want old generation's label 0", res)
	}
	if got := rec.CounterValues()[MetricCanceled]; got != 0 {
		t.Fatalf("serve_canceled = %d, want 0 (swap dropped an in-flight request)", got)
	}
}
