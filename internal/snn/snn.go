// Package snn implements the paper's Section-6 outlook: using the SEI
// structure "to support other applications using 1-bit data like
// RRAM-based Spiking Neural Networks". It rate-codes analog inputs
// into Bernoulli spike trains so that even the input layer sees 1-bit
// data — removing the last DACs of the SEI design — and aggregates the
// classifier's scores over timesteps.
package snn

import (
	"fmt"
	"math/rand"

	"sei/internal/mnist"
	"sei/internal/quant"
	"sei/internal/tensor"
)

// Encoder converts an analog image into binary spike frames.
type Encoder struct {
	rng *rand.Rand
}

// NewEncoder returns a deterministic rate encoder seeded with seed.
func NewEncoder(seed int64) *Encoder {
	return &Encoder{rng: rand.New(rand.NewSource(seed))}
}

// Frame draws one Bernoulli spike frame: pixel p spikes with
// probability equal to its intensity, so the spike rate over many
// frames converges to the analog value.
func (e *Encoder) Frame(img *tensor.Tensor) *tensor.Tensor {
	spikes := tensor.New(img.Shape()...)
	for p, v := range img.Data() {
		if v < 0 || v > 1 {
			panic(fmt.Sprintf("snn: pixel %d = %v outside [0,1]", p, v))
		}
		if e.rng.Float64() < v {
			spikes.Data()[p] = 1
		}
	}
	return spikes
}

// Aggregation selects how per-timestep outputs combine.
type Aggregation int

const (
	// SumScores accumulates the classifier scores over timesteps
	// (population-rate readout).
	SumScores Aggregation = iota
	// MajorityVote counts each timestep's argmax and picks the most
	// frequent class.
	MajorityVote
)

// Config controls spiking classification.
type Config struct {
	Timesteps   int
	Aggregation Aggregation
	Seed        int64
}

// DefaultConfig uses 8 timesteps with score accumulation.
func DefaultConfig() Config {
	return Config{Timesteps: 8, Aggregation: SumScores, Seed: 1}
}

// Classify runs the quantized network (under the given hardware
// evaluator — pass q.Digital() for the software path or an SEI design)
// on rate-coded spike frames of img and returns the aggregated class.
func Classify(q *quant.QuantizedNet, eval quant.StageEval, img *tensor.Tensor, cfg Config, enc *Encoder) (int, error) {
	if cfg.Timesteps < 1 {
		return 0, fmt.Errorf("snn: timesteps %d < 1", cfg.Timesteps)
	}
	numClasses := q.FC.W.Dim(0)
	scores := make([]float64, numClasses)
	votes := make([]float64, numClasses)
	for step := 0; step < cfg.Timesteps; step++ {
		out := q.ForwardWith(eval, enc.Frame(img))
		for c, v := range out {
			scores[c] += v
		}
		votes[tensor.FromSlice(out, len(out)).ArgMax()]++
	}
	switch cfg.Aggregation {
	case SumScores:
		return tensor.FromSlice(scores, numClasses).ArgMax(), nil
	case MajorityVote:
		return tensor.FromSlice(votes, numClasses).ArgMax(), nil
	default:
		return 0, fmt.Errorf("snn: unknown aggregation %d", cfg.Aggregation)
	}
}

// ErrorRate evaluates spiking classification over a dataset. One
// encoder drives the whole evaluation so results are reproducible for
// a fixed cfg.Seed.
func ErrorRate(q *quant.QuantizedNet, eval quant.StageEval, data *mnist.Dataset, cfg Config) (float64, error) {
	enc := NewEncoder(cfg.Seed)
	wrong := 0
	for i, img := range data.Images {
		got, err := Classify(q, eval, img, cfg, enc)
		if err != nil {
			return 0, err
		}
		if got != data.Labels[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(data.Len()), nil
}

// RateSweep evaluates the error at each timestep budget, returning one
// value per entry of timesteps — the latency/accuracy trade-off curve.
func RateSweep(q *quant.QuantizedNet, eval quant.StageEval, data *mnist.Dataset, timesteps []int, seed int64) ([]float64, error) {
	out := make([]float64, len(timesteps))
	for i, t := range timesteps {
		cfg := Config{Timesteps: t, Aggregation: SumScores, Seed: seed}
		e, err := ErrorRate(q, eval, data, cfg)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}
