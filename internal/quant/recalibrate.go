package quant

import (
	"fmt"
	"math/rand"

	"sei/internal/bitvec"
	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/par"
)

// RecalibrateConfig controls the optional FC recalibration step.
type RecalibrateConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
	// Workers parallelizes the frozen-feature precomputation (0 = all
	// cores, 1 = serial). The SGD loop itself stays serial: it is
	// order-dependent and cheap next to the feature extraction.
	Workers int
	// Obs, when set, receives the engine scheduling metrics for the
	// feature precomputation.
	Obs *obs.Recorder
}

// DefaultRecalibrateConfig trains the classifier head for a few cheap
// epochs.
func DefaultRecalibrateConfig() RecalibrateConfig {
	return RecalibrateConfig{Epochs: 5, BatchSize: 16, LR: 0.05, Seed: 1}
}

// RecalibrateFC retrains only the final FC layer on the binarized
// features (softmax regression; the conv stages and thresholds are
// frozen). The paper does not need this step — its Caffe-trained
// networks lose <1 % from binarization — but on a weaker substrate the
// FC layer, trained against real-valued activations, can be mis-scaled
// for 0/1 inputs; recalibration removes exactly that mismatch without
// touching the hardware-relevant parts of the design. It is opt-in and
// reported separately in EXPERIMENTS.md.
func RecalibrateFC(q *QuantizedNet, train *mnist.Dataset, cfg RecalibrateConfig) error {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.LR <= 0 {
		return fmt.Errorf("quant: invalid recalibrate config %+v", cfg)
	}
	if err := par.Validate(cfg.Workers); err != nil {
		return fmt.Errorf("quant: recalibrate config: %w", err)
	}
	// Precompute the frozen binary features once, one slot per sample,
	// bit-packed: the features are 0/1 by construction, so a bitvec
	// stores them 64× denser and NextSet iteration visits exactly the
	// indices the dense `xv != 0` scan visited, in the same ascending
	// order — gradients and logits stay bit-identical.
	features := make([]*bitvec.Vec, train.Len())
	par.ForEachRec(cfg.Obs, cfg.Workers, train.Len(), func(i int) {
		acts := q.BinaryActivations(train.Images[i])
		v := &bitvec.Vec{}
		v.SetFloats(acts[len(acts)-1].Data())
		features[i] = v
	})

	out, in := q.FC.W.Dim(0), q.FC.W.Dim(1)
	w := q.FC.W.Data()
	b := q.FC.B
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := rng.Perm(train.Len())

	// Gradient and logit buffers hoisted out of the batch loop; the
	// serial SGD reuses them across every batch and epoch.
	gw := make([]float64, len(w))
	gb := make([]float64, len(b))
	logits := make([]float64, out)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for i := range gw {
				gw[i] = 0
			}
			for i := range gb {
				gb[i] = 0
			}
			for _, s := range idx[start:end] {
				x := features[s]
				for o := 0; o < out; o++ {
					row := w[o*in : (o+1)*in]
					acc := b[o]
					for j := x.NextSet(0); j >= 0; j = x.NextSet(j + 1) {
						acc += row[j]
					}
					logits[o] = acc
				}
				p := nn.Softmax(logits)
				p[train.Labels[s]] -= 1
				for o := 0; o < out; o++ {
					if p[o] == 0 {
						continue
					}
					row := gw[o*in : (o+1)*in]
					for j := x.NextSet(0); j >= 0; j = x.NextSet(j + 1) {
						row[j] += p[o]
					}
					gb[o] += p[o]
				}
			}
			scale := cfg.LR / float64(end-start)
			for i := range w {
				w[i] -= scale * gw[i]
			}
			for i := range b {
				b[i] -= scale * gb[i]
			}
		}
	}
	return nil
}
