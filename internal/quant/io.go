package quant

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sei/internal/tensor"
)

type convSnapshot struct {
	Shape    []int
	Data     []float64
	Stride   int
	PoolSize int
}

type quantSnapshot struct {
	Version    int
	Name       string
	Convs      []convSnapshot
	FCShape    []int
	FCData     []float64
	FCBias     []float64
	Thresholds []float64
	InShape    []int
}

const quantSnapshotVersion = 1

// Save serializes the quantized network (re-scaled weights and
// thresholds) so experiment harnesses can cache the expensive
// Algorithm-1 output.
func (q *QuantizedNet) Save(w io.Writer) error {
	snap := quantSnapshot{
		Version:    quantSnapshotVersion,
		Name:       q.Name,
		FCShape:    q.FC.W.Shape(),
		FCData:     append([]float64(nil), q.FC.W.Data()...),
		FCBias:     append([]float64(nil), q.FC.B...),
		Thresholds: append([]float64(nil), q.Thresholds...),
		InShape:    append([]int(nil), q.InShape...),
	}
	for _, c := range q.Convs {
		snap.Convs = append(snap.Convs, convSnapshot{
			Shape:    c.W.Shape(),
			Data:     append([]float64(nil), c.W.Data()...),
			Stride:   c.Stride,
			PoolSize: c.PoolSize,
		})
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load reads a quantized network written by Save.
func Load(r io.Reader) (*QuantizedNet, error) {
	var snap quantSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("quant: decoding: %w", err)
	}
	if snap.Version != quantSnapshotVersion {
		return nil, fmt.Errorf("quant: unsupported snapshot version %d", snap.Version)
	}
	if len(snap.Thresholds) != len(snap.Convs) {
		return nil, fmt.Errorf("quant: %d thresholds for %d conv stages", len(snap.Thresholds), len(snap.Convs))
	}
	q := &QuantizedNet{
		Name:       snap.Name,
		FC:         FCSpec{W: tensor.FromSlice(snap.FCData, snap.FCShape...), B: snap.FCBias},
		Thresholds: snap.Thresholds,
		InShape:    snap.InShape,
	}
	for _, c := range snap.Convs {
		q.Convs = append(q.Convs, ConvSpec{
			W:        tensor.FromSlice(c.Data, c.Shape...),
			Stride:   c.Stride,
			PoolSize: c.PoolSize,
		})
	}
	return q, nil
}

// SaveFile writes the quantized network to path, creating parents.
func (q *QuantizedNet) SaveFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := q.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a quantized network from path.
func LoadFile(path string) (*QuantizedNet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
