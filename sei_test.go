package sei

import (
	"bytes"
	"strings"
	"testing"
)

func TestSyntheticSplitSizes(t *testing.T) {
	train, test := SyntheticSplit(50, 20, 1)
	if train.Len() != 50 || test.Len() != 20 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
}

func TestLoadMNISTMissingDir(t *testing.T) {
	if _, _, err := LoadMNIST(t.TempDir()); err == nil {
		t.Fatal("LoadMNIST succeeded on empty dir")
	}
}

func TestRunPipelineEndToEnd(t *testing.T) {
	cfg := DefaultPipelineConfig()
	cfg.TrainSamples = 1200
	cfg.TestSamples = 250
	cfg.Epochs = 3
	res, err := RunPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pipeline: float %.4f quant %.4f sei %.4f, energy %.3f→%.3f uJ (%.1f%% saving), area %.4f→%.4f mm2 (%.1f%%), %.0f GOPs/J",
		res.FloatError, res.QuantError, res.SEIError,
		res.BaseEnergyUJ, res.EnergyUJ, 100*res.EnergySaving,
		res.BaseAreaMM2, res.AreaMM2, 100*res.AreaSaving, res.GOPsPerJ)
	if res.FloatError > 0.25 {
		t.Fatalf("float error %.4f too high", res.FloatError)
	}
	if res.SEIError > res.QuantError+0.10 {
		t.Fatalf("SEI hardware error %.4f far above quantized %.4f", res.SEIError, res.QuantError)
	}
	if res.EnergySaving < 0.90 {
		t.Fatalf("energy saving %.4f < 0.90", res.EnergySaving)
	}
	if res.AreaSaving < 0.70 {
		t.Fatalf("area saving %.4f < 0.70", res.AreaSaving)
	}
	if res.GOPsPerJ <= 0 {
		t.Fatal("no efficiency computed")
	}
}

func TestRunPipelineValidation(t *testing.T) {
	cfg := DefaultPipelineConfig()
	cfg.NetworkID = 9
	if _, err := RunPipeline(cfg); err == nil {
		t.Fatal("accepted invalid network id")
	}
}

func TestStageAPIs(t *testing.T) {
	train, test := SyntheticSplit(800, 150, 3)
	net := TrainTableNetwork(2, train, 3, 7)
	floatErr := EvaluateNetwork(net, test)
	q, err := Quantize(net, train)
	if err != nil {
		t.Fatal(err)
	}
	quantErr := EvaluateQuantized(q, test)
	design, err := BuildSEIDesign(q, train, 1)
	if err != nil {
		t.Fatal(err)
	}
	seiErr := EvaluateDesign(design, test)
	t.Logf("float %.4f quant %.4f sei %.4f", floatErr, quantErr, seiErr)
	if seiErr > quantErr+0.10 {
		t.Fatalf("SEI error %.4f far above quantized %.4f", seiErr, quantErr)
	}
	// Facade classifiers are interchangeable.
	var c Classifier = design
	if EvaluateDesign(c, test) != seiErr {
		t.Fatal("Classifier alias broken")
	}
}

func TestRunAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite is slow")
	}
	// A drastically reduced configuration that still walks every
	// harness, including Network 1.
	cfg := ExperimentConfig{
		TrainSamples:  400,
		TestSamples:   80,
		Epochs:        1,
		Seed:          1,
		SearchSamples: 80,
		RandomOrders:  2,
		CalibImages:   10,
	}
	var buf bytes.Buffer
	if err := RunAllExperiments(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 1", "Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Homogenization study", "Efficiency comparison"} {
		if !strings.Contains(out, want) {
			t.Fatalf("experiment output missing %q", want)
		}
	}
}
