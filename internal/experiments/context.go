// Package experiments contains one harness per table and figure of the
// paper's evaluation (Section 5 plus the motivating Fig. 1 and
// Table 1). Each harness returns a typed result and can print itself
// in the paper's row format; cmd/seisim and the root benchmarks drive
// them, and EXPERIMENTS.md records paper-vs-measured numbers from a
// full run.
package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"sync"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/par"
	"sei/internal/quant"
)

// Config sizes the experiment workloads. The defaults fit a
// single-core full run in minutes; the paper's 60k/10k MNIST split is
// approached by raising TrainSamples/TestSamples.
type Config struct {
	TrainSamples int
	TestSamples  int
	Epochs       int
	Seed         int64
	// SearchSamples bounds the Algorithm-1 threshold search workload.
	SearchSamples int
	// RandomOrders is how many random row orders the Table-4 splitting
	// study samples (the paper uses 500).
	RandomOrders int
	// CalibImages bounds the dynamic-threshold calibration workload.
	CalibImages int
	// CacheDir, when non-empty, caches trained and quantized models on
	// disk keyed by network id, seed and workload size.
	CacheDir string
	// Log receives progress lines; nil silences them.
	Log io.Writer
	// Workers bounds the parallel engine across every harness
	// (0 = all cores, 1 = the serial path). All results are
	// bit-identical for every worker count; only wall-clock changes.
	Workers int
	// Obs, when set, records phase spans, hardware-event counters and
	// progress for every harness run under this config; nil disables
	// recording. Instrumentation never feeds back into computation, so
	// recorded runs produce bit-identical results to unrecorded ones.
	Obs *obs.Recorder
}

// DefaultConfig returns the standard experiment sizing.
func DefaultConfig() Config {
	return Config{
		TrainSamples:  3000,
		TestSamples:   600,
		Epochs:        4,
		Seed:          1,
		SearchSamples: 400,
		RandomOrders:  20,
		CalibImages:   50,
	}
}

// QuickConfig returns a much smaller sizing for tests and smoke runs.
func QuickConfig() Config {
	return Config{
		TrainSamples:  800,
		TestSamples:   200,
		Epochs:        3,
		Seed:          1,
		SearchSamples: 200,
		RandomOrders:  6,
		CalibImages:   25,
	}
}

// Context owns the shared expensive artifacts — datasets, trained
// networks, quantized networks — reused across harnesses. The lazy
// caches are not safe for concurrent use: harnesses that fan out must
// populate them serially first (prefetch), then treat the context as
// read-only inside the parallel region. logf is safe everywhere.
type Context struct {
	Cfg   Config
	Train *mnist.Dataset
	Test  *mnist.Dataset

	logMu sync.Mutex

	nets        map[int]*nn.Network
	quants      map[int]*quant.QuantizedNet
	quantsCal   map[int]*quant.QuantizedNet
	floatErr    map[int]float64
	quantErr    map[int]float64
	quantCalErr map[int]float64
}

// NewContext builds the datasets (real MNIST from $MNIST_DIR if
// present, synthetic otherwise) and an empty model cache. It panics
// when cfg.Workers is negative; front ends validate with par.Validate
// first to report a friendly error.
func NewContext(cfg Config) *Context {
	if err := par.Validate(cfg.Workers); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	var train, test *mnist.Dataset
	if dir := os.Getenv("MNIST_DIR"); dir != "" {
		if tr, te, err := mnist.LoadIDXDir(dir); err == nil {
			tr.Shuffle(rand.New(rand.NewSource(cfg.Seed)))
			te.Shuffle(rand.New(rand.NewSource(cfg.Seed + 1)))
			train, test = tr.Subset(cfg.TrainSamples), te.Subset(cfg.TestSamples)
		}
	}
	if train == nil {
		train, test = mnist.SyntheticSplit(cfg.TrainSamples, cfg.TestSamples, cfg.Seed)
	}
	return &Context{
		Cfg:   cfg,
		Train: train,
		Test:  test,

		nets:        map[int]*nn.Network{},
		quants:      map[int]*quant.QuantizedNet{},
		quantsCal:   map[int]*quant.QuantizedNet{},
		floatErr:    map[int]float64{},
		quantErr:    map[int]float64{},
		quantCalErr: map[int]float64{},
	}
}

func (c *Context) logf(format string, args ...any) {
	if c.Cfg.Log != nil {
		c.logMu.Lock()
		fmt.Fprintf(c.Cfg.Log, format, args...)
		c.logMu.Unlock()
	}
}

// cachePath returns the on-disk cache file for an artifact kind and
// network id, or "" when caching is disabled.
func (c *Context) cachePath(kind string, id int) string {
	if c.Cfg.CacheDir == "" {
		return ""
	}
	name := fmt.Sprintf("%s_net%d_seed%d_n%d_e%d.gob",
		kind, id, c.Cfg.Seed, c.Cfg.TrainSamples, c.Cfg.Epochs)
	return filepath.Join(c.Cfg.CacheDir, name)
}

// Network returns Table-2 network id trained on the context's training
// set, from cache when available.
func (c *Context) Network(id int) *nn.Network {
	if net, ok := c.nets[id]; ok {
		return net
	}
	if path := c.cachePath("net", id); path != "" {
		if net, err := nn.LoadFile(path); err == nil {
			c.logf("experiments: loaded %s from cache\n", net.Name)
			c.nets[id] = net
			return net
		}
	}
	net := nn.NewTableNetwork(id, c.Cfg.Seed+int64(id)*101)
	tcfg := nn.DefaultTrainConfig()
	tcfg.Epochs = c.Cfg.Epochs
	tcfg.Seed = c.Cfg.Seed
	tcfg.Log = c.Cfg.Log
	tcfg.Workers = c.Cfg.Workers
	tcfg.Obs = c.Cfg.Obs
	c.logf("experiments: training %s on %d samples, %d epochs\n", net.Name, c.Train.Len(), tcfg.Epochs)
	sp := c.Cfg.Obs.StartSpan(fmt.Sprintf("train/net%d", id))
	nn.Train(net, c.Train, tcfg)
	sp.AddSamples(int64(c.Train.Len() * tcfg.Epochs))
	sp.End()
	if path := c.cachePath("net", id); path != "" {
		if err := nn.SaveFile(net, path); err != nil {
			c.logf("experiments: cache write failed: %v\n", err)
		}
	}
	c.nets[id] = net
	return net
}

// Quantized returns network id after the plain Algorithm-1
// quantization (weight re-scaling + greedy threshold search), from
// cache when available.
func (c *Context) Quantized(id int) *quant.QuantizedNet {
	if q, ok := c.quants[id]; ok {
		return q
	}
	if path := c.cachePath("quant", id); path != "" {
		if q, err := quant.LoadFile(path); err == nil {
			c.logf("experiments: loaded quantized net %d from cache\n", id)
			// gob skips the unexported recorder hook; re-attach it.
			q.Instrument(c.Cfg.Obs)
			c.quants[id] = q
			return q
		}
	}
	net := c.Network(id)
	scfg := quant.DefaultSearchConfig()
	scfg.Samples = c.Cfg.SearchSamples
	scfg.Workers = c.Cfg.Workers
	scfg.Obs = c.Cfg.Obs
	c.logf("experiments: quantizing %s (Algorithm 1)\n", net.Name)
	sp := c.Cfg.Obs.StartSpan(fmt.Sprintf("quantize/net%d", id))
	q, report, err := quant.QuantizeNetwork(net, c.Train, []int{1, 28, 28}, scfg)
	sp.End()
	if err != nil {
		panic(fmt.Sprintf("experiments: quantizing network %d: %v", id, err))
	}
	for _, lr := range report.Layers {
		c.logf("experiments:   layer %d threshold %.4f (train acc %.4f)\n", lr.Layer, lr.Threshold, lr.Accuracy)
	}
	if path := c.cachePath("quant", id); path != "" {
		if err := q.SaveFile(path); err != nil {
			c.logf("experiments: cache write failed: %v\n", err)
		}
	}
	c.quants[id] = q
	return q
}

// QuantizedCalibrated returns network id after Algorithm 1 plus the
// FC-recalibration and threshold-refinement extensions (DESIGN.md §2;
// reported separately from the paper's plain numbers).
func (c *Context) QuantizedCalibrated(id int) *quant.QuantizedNet {
	if q, ok := c.quantsCal[id]; ok {
		return q
	}
	if path := c.cachePath("quantcal", id); path != "" {
		if q, err := quant.LoadFile(path); err == nil {
			q.Instrument(c.Cfg.Obs)
			c.quantsCal[id] = q
			return q
		}
	}
	// Re-run extraction so the plain quantized model is not mutated.
	base := c.Quantized(id)
	clone := cloneQuantized(base)
	clone.Instrument(c.Cfg.Obs)
	sp := c.Cfg.Obs.StartSpan(fmt.Sprintf("calibrate/net%d", id))
	defer sp.End()
	ccfg := quant.DefaultRecalibrateConfig()
	ccfg.Workers = c.Cfg.Workers
	ccfg.Obs = c.Cfg.Obs
	if err := quant.RecalibrateFC(clone, c.Train, ccfg); err != nil {
		panic(fmt.Sprintf("experiments: recalibrating network %d: %v", id, err))
	}
	rcfg := quant.DefaultRefineConfig()
	rcfg.Samples = c.Cfg.SearchSamples
	rcfg.Workers = c.Cfg.Workers
	rcfg.Obs = c.Cfg.Obs
	if _, err := quant.RefineThresholds(clone, c.Train, rcfg); err != nil {
		panic(fmt.Sprintf("experiments: refining network %d: %v", id, err))
	}
	if err := quant.RecalibrateFC(clone, c.Train, ccfg); err != nil {
		panic(fmt.Sprintf("experiments: recalibrating network %d: %v", id, err))
	}
	if path := c.cachePath("quantcal", id); path != "" {
		if err := clone.SaveFile(path); err != nil {
			c.logf("experiments: cache write failed: %v\n", err)
		}
	}
	c.quantsCal[id] = clone
	return clone
}

// cloneQuantized deep-copies a quantized network via its snapshot
// round trip.
func cloneQuantized(q *quant.QuantizedNet) *quant.QuantizedNet {
	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		panic(fmt.Sprintf("experiments: cloning quantized net: %v", err))
	}
	clone, err := quant.Load(&buf)
	if err != nil {
		panic(fmt.Sprintf("experiments: cloning quantized net: %v", err))
	}
	return clone
}

// FloatError returns network id's test error rate (cached).
func (c *Context) FloatError(id int) float64 {
	if e, ok := c.floatErr[id]; ok {
		return e
	}
	e := nn.ErrorRateObs(c.Cfg.Obs, c.Network(id), c.Test, c.Cfg.Workers)
	c.floatErr[id] = e
	return e
}

// QuantError returns the plain-quantized test error rate (cached).
func (c *Context) QuantError(id int) float64 {
	if e, ok := c.quantErr[id]; ok {
		return e
	}
	e := c.Quantized(id).ErrorRateObs(c.Cfg.Obs, c.Test, c.Cfg.Workers)
	c.quantErr[id] = e
	return e
}

// QuantCalibratedError returns the calibrated-quantized test error
// rate (cached).
func (c *Context) QuantCalibratedError(id int) float64 {
	if e, ok := c.quantCalErr[id]; ok {
		return e
	}
	e := c.QuantizedCalibrated(id).ErrorRateObs(c.Cfg.Obs, c.Test, c.Cfg.Workers)
	c.quantCalErr[id] = e
	return e
}
