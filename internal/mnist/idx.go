package mnist

import (
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sei/internal/tensor"
)

// IDX magic numbers: 0x00000803 for 3-D uint8 (images), 0x00000801 for
// 1-D uint8 (labels), per the format description on the MNIST page.
const (
	idxMagicImages = 0x00000803
	idxMagicLabels = 0x00000801
)

// ReadIDXImages parses an idx3-ubyte stream of 28×28 images into
// [1,28,28] tensors with pixels scaled to [0,1].
func ReadIDXImages(r io.Reader) ([]*tensor.Tensor, error) {
	var hdr [4]uint32
	if err := binary.Read(r, binary.BigEndian, &hdr); err != nil {
		return nil, fmt.Errorf("mnist: reading IDX image header: %w", err)
	}
	if hdr[0] != idxMagicImages {
		return nil, fmt.Errorf("mnist: bad IDX image magic %#x", hdr[0])
	}
	n, rows, cols := int(hdr[1]), int(hdr[2]), int(hdr[3])
	if rows != Side || cols != Side {
		return nil, fmt.Errorf("mnist: IDX images are %dx%d, want %dx%d", rows, cols, Side, Side)
	}
	// Do not trust the header count for allocation: a corrupt file can
	// claim billions of images. Grow as data actually arrives.
	capHint := n
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	buf := make([]byte, rows*cols)
	images := make([]*tensor.Tensor, 0, capHint)
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("mnist: reading IDX image %d: %w", i, err)
		}
		img := tensor.New(1, Side, Side)
		d := img.Data()
		for j, b := range buf {
			d[j] = float64(b) / 255
		}
		images = append(images, img)
	}
	return images, nil
}

// ReadIDXLabels parses an idx1-ubyte stream of labels.
func ReadIDXLabels(r io.Reader) ([]int, error) {
	var hdr [2]uint32
	if err := binary.Read(r, binary.BigEndian, &hdr); err != nil {
		return nil, fmt.Errorf("mnist: reading IDX label header: %w", err)
	}
	if hdr[0] != idxMagicLabels {
		return nil, fmt.Errorf("mnist: bad IDX label magic %#x", hdr[0])
	}
	n := int(hdr[1])
	// Read in bounded chunks so a corrupt count cannot force a giant
	// allocation before the stream inevitably runs dry.
	labels := make([]int, 0, min(n, 1<<16))
	chunk := make([]byte, 4096)
	remaining := n
	for remaining > 0 {
		want := len(chunk)
		if want > remaining {
			want = remaining
		}
		if _, err := io.ReadFull(r, chunk[:want]); err != nil {
			return nil, fmt.Errorf("mnist: reading IDX labels: %w", err)
		}
		for _, b := range chunk[:want] {
			if int(b) >= NumClasses {
				return nil, fmt.Errorf("mnist: label %d out of range: %d", len(labels), b)
			}
			labels = append(labels, int(b))
		}
		remaining -= want
	}
	return labels, nil
}

// openMaybeGzip opens path, or path+".gz" with transparent
// decompression if the plain file does not exist.
func openMaybeGzip(path string) (io.ReadCloser, error) {
	if f, err := os.Open(path); err == nil {
		return f, nil
	}
	f, err := os.Open(path + ".gz")
	if err != nil {
		return nil, err
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &gzipFile{zr: zr, f: f}, nil
}

type gzipFile struct {
	zr *gzip.Reader
	f  *os.File
}

func (g *gzipFile) Read(p []byte) (int, error) { return g.zr.Read(p) }

func (g *gzipFile) Close() error {
	zerr := g.zr.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// loadIDXPair loads one images/labels file pair into a Dataset.
func loadIDXPair(imgPath, lblPath string) (*Dataset, error) {
	ir, err := openMaybeGzip(imgPath)
	if err != nil {
		return nil, err
	}
	defer ir.Close()
	lr, err := openMaybeGzip(lblPath)
	if err != nil {
		return nil, err
	}
	defer lr.Close()
	images, err := ReadIDXImages(ir)
	if err != nil {
		return nil, err
	}
	labels, err := ReadIDXLabels(lr)
	if err != nil {
		return nil, err
	}
	if len(images) != len(labels) {
		return nil, fmt.Errorf("mnist: %d images but %d labels in %s", len(images), len(labels), imgPath)
	}
	return &Dataset{Images: images, Labels: labels}, nil
}

// LoadIDXDir loads the standard four MNIST files (train-images-idx3-ubyte
// etc., optionally gzipped) from dir. It is used when real MNIST data
// is available; the experiment harnesses fall back to Synthetic
// otherwise.
func LoadIDXDir(dir string) (train, test *Dataset, err error) {
	train, err = loadIDXPair(
		filepath.Join(dir, "train-images-idx3-ubyte"),
		filepath.Join(dir, "train-labels-idx1-ubyte"))
	if err != nil {
		return nil, nil, err
	}
	test, err = loadIDXPair(
		filepath.Join(dir, "t10k-images-idx3-ubyte"),
		filepath.Join(dir, "t10k-labels-idx1-ubyte"))
	if err != nil {
		return nil, nil, err
	}
	return train, test, nil
}

// WriteIDX writes the dataset in IDX format (one images file, one
// labels file), for interoperability tests and for exporting synthetic
// data to other tools.
func WriteIDX(d *Dataset, imgW, lblW io.Writer) error {
	ih := [4]uint32{idxMagicImages, uint32(d.Len()), Side, Side}
	if err := binary.Write(imgW, binary.BigEndian, ih); err != nil {
		return err
	}
	buf := make([]byte, Side*Side)
	for _, img := range d.Images {
		for j, v := range img.Data() {
			p := int(v*255 + 0.5)
			if p < 0 {
				p = 0
			} else if p > 255 {
				p = 255
			}
			buf[j] = byte(p)
		}
		if _, err := imgW.Write(buf); err != nil {
			return err
		}
	}
	lh := [2]uint32{idxMagicLabels, uint32(d.Len())}
	if err := binary.Write(lblW, binary.BigEndian, lh); err != nil {
		return err
	}
	lbl := make([]byte, d.Len())
	for i, l := range d.Labels {
		lbl[i] = byte(l)
	}
	_, err := lblW.Write(lbl)
	return err
}
