package nn

import (
	"math"
	"math/rand"
	"testing"

	"sei/internal/tensor"
)

// numericalGrad estimates dLoss/dx[i] by central differences, where
// loss(x) = Σ c_j · layer(x)_j for fixed random coefficients c.
func checkLayerGradients(t *testing.T, l Layer, inShape []int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	in := tensor.New(inShape...)
	for i := range in.Data() {
		in.Data()[i] = rng.NormFloat64()
	}
	out := l.Forward(in)
	coef := make([]float64, out.Len())
	for i := range coef {
		coef[i] = rng.NormFloat64()
	}
	loss := func(o *tensor.Tensor) float64 {
		s := 0.0
		for i, v := range o.Data() {
			s += coef[i] * v
		}
		return s
	}

	// Analytic gradients.
	for _, p := range l.Params() {
		p.Grad.Zero()
	}
	upstream := tensor.FromSlice(append([]float64(nil), coef...), out.Shape()...)
	dIn := l.Backward(upstream)

	const eps = 1e-5
	const tol = 1e-4

	// Input gradient.
	for i := 0; i < in.Len(); i += 1 + in.Len()/20 { // sample ~20 coords
		orig := in.Data()[i]
		in.Data()[i] = orig + eps
		lp := loss(l.Forward(in))
		in.Data()[i] = orig - eps
		lm := loss(l.Forward(in))
		in.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if diff := math.Abs(num - dIn.Data()[i]); diff > tol*(1+math.Abs(num)) {
			t.Fatalf("%s: input grad [%d]: analytic %g vs numeric %g", l.Name(), i, dIn.Data()[i], num)
		}
	}

	// Parameter gradients.
	for pi, p := range l.Params() {
		for i := 0; i < p.Value.Len(); i += 1 + p.Value.Len()/20 {
			orig := p.Value.Data()[i]
			p.Value.Data()[i] = orig + eps
			lp := loss(l.Forward(in))
			p.Value.Data()[i] = orig - eps
			lm := loss(l.Forward(in))
			p.Value.Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			if diff := math.Abs(num - p.Grad.Data()[i]); diff > tol*(1+math.Abs(num)) {
				t.Fatalf("%s: param %d grad [%d]: analytic %g vs numeric %g", l.Name(), pi, i, p.Grad.Data()[i], num)
			}
		}
	}
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	checkLayerGradients(t, NewConv2D(4, 2, 3, 3, 1, rng), []int{2, 7, 6}, 10)
}

func TestConv2DWithBiasGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	checkLayerGradients(t, NewConv2D(3, 1, 2, 2, 1, rng).WithBias(), []int{1, 5, 5}, 11)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	checkLayerGradients(t, NewConv2D(2, 2, 3, 3, 2, rng), []int{2, 9, 9}, 12)
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	checkLayerGradients(t, NewDense(12, 7, rng), []int{12}, 13)
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU()
	in := tensor.FromSlice([]float64{-2, -0.5, 0, 1, 3}, 5)
	out := r.Forward(in)
	want := []float64{0, 0, 0, 1, 3}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("ReLU forward = %v, want %v", out.Data(), want)
		}
	}
	grad := r.Backward(tensor.FromSlice([]float64{1, 1, 1, 1, 1}, 5))
	wantG := []float64{0, 0, 0, 1, 1}
	for i, v := range wantG {
		if grad.Data()[i] != v {
			t.Fatalf("ReLU backward = %v, want %v", grad.Data(), wantG)
		}
	}
}

func TestMaxPoolForward(t *testing.T) {
	in := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		0, 0, 1, 1,
		9, 0, 1, 2,
	}, 1, 4, 4)
	p := NewMaxPool2D(2)
	out := p.Forward(in)
	want := []float64{4, 8, 9, 2}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("MaxPool forward = %v, want %v", out.Data(), want)
		}
	}
}

func TestMaxPoolDropsRaggedEdge(t *testing.T) {
	// 5×5 input with 2×2 pooling → 2×2 output (paper: 11×11 → 5×5).
	p := NewMaxPool2D(2)
	out := p.Forward(tensor.New(3, 5, 5))
	s := out.Shape()
	if s[0] != 3 || s[1] != 2 || s[2] != 2 {
		t.Fatalf("ragged pool shape %v, want [3 2 2]", s)
	}
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	in := tensor.FromSlice([]float64{
		1, 2,
		3, 4,
	}, 1, 2, 2)
	p := NewMaxPool2D(2)
	p.Forward(in)
	g := p.Backward(tensor.FromSlice([]float64{10}, 1, 1, 1))
	want := []float64{0, 0, 0, 10}
	for i, v := range want {
		if g.Data()[i] != v {
			t.Fatalf("MaxPool backward = %v, want %v", g.Data(), want)
		}
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	in := tensor.New(2, 3, 4)
	out := f.Forward(in)
	if out.Dims() != 1 || out.Len() != 24 {
		t.Fatalf("Flatten forward shape %v", out.Shape())
	}
	back := f.Backward(tensor.New(24))
	if back.Dims() != 3 {
		t.Fatalf("Flatten backward shape %v", back.Shape())
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	layers := []Layer{
		NewConv2D(1, 1, 2, 2, 1, rng),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(2, 2, rng),
	}
	for _, l := range layers {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Backward before Forward did not panic", l.Name())
				}
			}()
			l.Backward(tensor.New(2))
		}()
	}
}

func TestConv2DOutShapeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(2, 3, 3, 3, 1, rng)
	for _, in := range [][]int{{2, 5, 5}, {3, 2, 2}, {3, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("OutShape(%v) did not panic", in)
				}
			}()
			c.OutShape(in)
		}()
	}
	out := c.OutShape([]int{3, 6, 7})
	if out[0] != 2 || out[1] != 4 || out[2] != 5 {
		t.Fatalf("OutShape = %v, want [2 4 5]", out)
	}
}

func TestHeInitScale(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv2D(64, 8, 3, 3, 1, rng)
	std := c.Weight.Value.Std()
	wantStd := math.Sqrt(2.0 / (8 * 3 * 3))
	if std < wantStd*0.8 || std > wantStd*1.2 {
		t.Fatalf("He init std %.4f, want ≈%.4f", std, wantStd)
	}
	if math.Abs(c.Weight.Value.Mean()) > 0.02 {
		t.Fatalf("He init mean %.4f, want ≈0", c.Weight.Value.Mean())
	}
}
