package arch

import (
	"fmt"

	"sei/internal/power"
	"sei/internal/seicore"
)

// TimingConfig holds the circuit-level timing constants for the
// latency/throughput model. The paper trades buffer amounts against
// time ("we can use buffer amounts to trade-off the power with time",
// Section 5.3); Replicas expresses that trade-off: a conv layer with R
// crossbar replicas evaluates R feature-map positions per cycle at R×
// the array area.
type TimingConfig struct {
	// CrossbarReadNS is one analog evaluation (settle + sense), ~10 ns
	// for a 512×512 array at low read voltage.
	CrossbarReadNS float64
	// ADCConversionNS is one 8-bit conversion of a per-column ADC.
	ADCConversionNS float64
	// SAEvalNS is one sense-amplifier decision.
	SAEvalNS float64
	// DigitalCycleNS is one digital merge/count cycle (pipelined with
	// the array, so it binds only when longer than the read).
	DigitalCycleNS float64
	// Replicas is how many copies of each conv layer's crossbars are
	// built; Uses positions are processed in ceil(Uses/Replicas)
	// waves.
	Replicas int
}

// DefaultTimingConfig uses the literature numbers behind the power
// library.
func DefaultTimingConfig() TimingConfig {
	return TimingConfig{
		CrossbarReadNS:  10,
		ADCConversionNS: 1,
		SAEvalNS:        0.5,
		DigitalCycleNS:  1,
		Replicas:        1,
	}
}

// Validate rejects non-physical timing configs.
func (c TimingConfig) Validate() error {
	if c.CrossbarReadNS <= 0 || c.ADCConversionNS <= 0 || c.SAEvalNS <= 0 || c.DigitalCycleNS <= 0 {
		return fmt.Errorf("arch: timing constants must be positive: %+v", c)
	}
	if c.Replicas < 1 {
		return fmt.Errorf("arch: replicas %d < 1", c.Replicas)
	}
	return nil
}

// LayerTiming is one layer's latency contribution.
type LayerTiming struct {
	Geom LayerGeom
	// EvalNS is the time of one evaluation wave (analog read plus the
	// slower of readout and digital merge).
	EvalNS float64
	// Waves is how many evaluation waves the layer needs per picture.
	Waves int
	// LatencyNS is Waves·EvalNS.
	LatencyNS float64
}

// Timing is the mapped network's latency/throughput summary.
type Timing struct {
	Layers []LayerTiming
	// LatencyNS is the end-to-end single-picture latency (layers run
	// sequentially for one picture).
	LatencyNS float64
	// ThroughputPicsPerSec assumes layer-level pipelining across
	// pictures: the slowest layer binds.
	ThroughputPicsPerSec float64
	// Bottleneck is the index of the slowest layer.
	Bottleneck int
}

// Timing evaluates the mapped network under the timing constants.
func (m *Mapping) Timing(cfg TimingConfig) (Timing, error) {
	if err := cfg.Validate(); err != nil {
		return Timing{}, err
	}
	var t Timing
	worst := 0.0
	for i, l := range m.Layers {
		lt := LayerTiming{Geom: l.Geom}
		// Readout time per evaluation: merged structures convert every
		// column with its own ADC in parallel (one conversion), but the
		// four sign/precision crossbars of a row-block read
		// simultaneously, so only the row-block accumulation serializes
		// digitally. SEI conv stages use SAs.
		readout := cfg.ADCConversionNS
		mergeCycles := float64(l.RowBlocks) // multi-bit adder chain
		if m.Config.Structure == seicore.StructSEI && !l.Geom.IsFC {
			readout = cfg.SAEvalNS
			mergeCycles = 1 // K-input popcount tree, single cycle
		}
		merge := cfg.DigitalCycleNS * mergeCycles
		post := readout
		if merge > post {
			post = merge
		}
		lt.EvalNS = cfg.CrossbarReadNS + post

		replicas := cfg.Replicas
		if l.Geom.IsFC {
			replicas = 1 // the FC runs once; replicas buy nothing
		}
		lt.Waves = (l.Geom.Uses + replicas - 1) / replicas
		lt.LatencyNS = float64(lt.Waves) * lt.EvalNS
		t.Layers = append(t.Layers, lt)
		t.LatencyNS += lt.LatencyNS
		if lt.LatencyNS > worst {
			worst = lt.LatencyNS
			t.Bottleneck = i
		}
	}
	if worst > 0 {
		t.ThroughputPicsPerSec = 1e9 / worst
	}
	return t, nil
}

// ReplicaArea returns the total area breakdown when every conv layer's
// crossbars (and their interfaces) are replicated — the other side of
// the buffer/time trade-off. The FC layer is never replicated.
func (m *Mapping) ReplicaArea(lib power.Library, replicas int) (power.Breakdown, error) {
	if replicas < 1 {
		return power.Breakdown{}, fmt.Errorf("arch: replicas %d < 1", replicas)
	}
	var total power.Breakdown
	for _, l := range m.Layers {
		inv := l.Inventory
		if !l.Geom.IsFC && replicas > 1 {
			inv = power.Inventory{
				DACs:          inv.DACs * int64(replicas),
				ADCs:          inv.ADCs * int64(replicas),
				SAs:           inv.SAs * int64(replicas),
				Cells:         inv.Cells * int64(replicas),
				DriverRows:    inv.DriverRows * int64(replicas),
				Crossbars:     inv.Crossbars * int64(replicas),
				DigitalBlocks: inv.DigitalBlocks * int64(replicas),
				BufferBytes:   inv.BufferBytes, // the feature map is shared
			}
		}
		total.Add(lib.Area(inv))
	}
	return total, nil
}
